// Package storage simulates the storage hierarchy the paper's checkpointing
// stack writes to: node-local SSDs (fast, but lost with their node) and a
// shared parallel file system (slow, reliable, bandwidth-contended). Data
// is held in memory; devices additionally report the *simulated* transfer
// time that the same operation would take on the modeled hardware
// (TSUBAME2's 360 MB/s SSDs and 10 GB/s Lustre), so experiments can compare
// checkpoint costs at paper scale without the hardware.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hierclust/internal/topology"
)

// Device models a storage device's performance envelope.
type Device struct {
	// Name labels the device in errors and reports.
	Name string
	// ReadBps and WriteBps are sustained bandwidths in bytes/second.
	ReadBps, WriteBps float64
	// Latency is the fixed per-operation setup cost.
	Latency time.Duration
}

// WriteTime returns the simulated time to write n bytes with `sharing`
// concurrent writers contending for the device (sharing <= 1 means
// exclusive access).
func (d *Device) WriteTime(n int64, sharing int) time.Duration {
	if sharing < 1 {
		sharing = 1
	}
	if d.WriteBps <= 0 {
		return d.Latency
	}
	sec := float64(n) * float64(sharing) / d.WriteBps
	return d.Latency + time.Duration(sec*float64(time.Second))
}

// ReadTime returns the simulated time to read n bytes with contention.
func (d *Device) ReadTime(n int64, sharing int) time.Duration {
	if sharing < 1 {
		sharing = 1
	}
	if d.ReadBps <= 0 {
		return d.Latency
	}
	sec := float64(n) * float64(sharing) / d.ReadBps
	return d.Latency + time.Duration(sec*float64(time.Second))
}

// ErrFailed is wrapped by operations on stores whose node has failed.
type FailedError struct {
	Node topology.NodeID
}

func (e *FailedError) Error() string {
	return fmt.Sprintf("storage: node %d storage failed", e.Node)
}

// NotFoundError is returned when a key is absent.
type NotFoundError struct {
	Store string
	Key   string
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("storage: %s: key %q not found", e.Store, e.Key)
}

// LocalStore is one node's local SSD: byte blobs keyed by string. A failed
// store loses all contents and rejects every operation until Repair.
type LocalStore struct {
	node   topology.NodeID
	dev    *Device
	mu     sync.Mutex
	data   map[string][]byte
	failed bool
}

// NewLocalStore creates the store for one node backed by dev.
func NewLocalStore(node topology.NodeID, dev *Device) *LocalStore {
	return &LocalStore{node: node, dev: dev, data: map[string][]byte{}}
}

// Node returns the owning node.
func (s *LocalStore) Node() topology.NodeID { return s.node }

// Put stores a copy of val under key and returns the simulated write time.
func (s *LocalStore) Put(key string, val []byte) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return 0, &FailedError{s.node}
	}
	s.data[key] = append([]byte(nil), val...)
	return s.dev.WriteTime(int64(len(val)), 1), nil
}

// Get returns a copy of the blob under key and the simulated read time.
func (s *LocalStore) Get(key string) ([]byte, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return nil, 0, &FailedError{s.node}
	}
	v, ok := s.data[key]
	if !ok {
		return nil, 0, &NotFoundError{Store: fmt.Sprintf("node %d SSD", s.node), Key: key}
	}
	return append([]byte(nil), v...), s.dev.ReadTime(int64(len(v)), 1), nil
}

// Delete removes a key; deleting an absent key is a no-op.
func (s *LocalStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return &FailedError{s.node}
	}
	delete(s.data, key)
	return nil
}

// Keys returns the stored keys in sorted order.
func (s *LocalStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Fail simulates losing the node: contents are dropped and operations
// error until Repair.
func (s *LocalStore) Fail() {
	s.mu.Lock()
	s.failed = true
	s.data = map[string][]byte{}
	s.mu.Unlock()
}

// Repair brings a failed store back empty (a replacement node).
func (s *LocalStore) Repair() {
	s.mu.Lock()
	s.failed = false
	s.mu.Unlock()
}

// Failed reports whether the store is down.
func (s *LocalStore) Failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// PFS is the shared parallel file system: reliable, but all writers share
// its aggregate bandwidth, which is what makes PFS-only checkpointing
// uncompetitive at scale (§II-A of the paper).
type PFS struct {
	dev  *Device
	mu   sync.Mutex
	data map[string][]byte
}

// NewPFS creates a parallel file system backed by dev's aggregate bandwidth.
func NewPFS(dev *Device) *PFS {
	return &PFS{dev: dev, data: map[string][]byte{}}
}

// Put stores val under key; sharing is the number of concurrent writers
// contending for the aggregate bandwidth (e.g. all checkpointing nodes).
func (p *PFS) Put(key string, val []byte, sharing int) (time.Duration, error) {
	p.mu.Lock()
	p.data[key] = append([]byte(nil), val...)
	p.mu.Unlock()
	return p.dev.WriteTime(int64(len(val)), sharing), nil
}

// Get returns a copy of the blob under key.
func (p *PFS) Get(key string, sharing int) ([]byte, time.Duration, error) {
	p.mu.Lock()
	v, ok := p.data[key]
	if ok {
		v = append([]byte(nil), v...)
	}
	p.mu.Unlock()
	if !ok {
		return nil, 0, &NotFoundError{Store: "pfs", Key: key}
	}
	return v, p.dev.ReadTime(int64(len(v)), sharing), nil
}

// Delete removes a key; absent keys are a no-op.
func (p *PFS) Delete(key string) {
	p.mu.Lock()
	delete(p.data, key)
	p.mu.Unlock()
}

// Keys returns stored keys sorted.
func (p *PFS) Keys() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.data))
	for k := range p.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Cluster bundles the per-node local stores and the shared PFS for a
// machine, with failure injection by node.
type Cluster struct {
	machine *topology.Machine
	local   []*LocalStore
	pfs     *PFS
}

// NewCluster builds stores for every node of m using its Table-I bandwidth
// constants.
func NewCluster(m *topology.Machine) *Cluster {
	ssd := &Device{Name: "ssd", ReadBps: m.SSDReadBps, WriteBps: m.SSDWriteBps}
	pfsDev := &Device{Name: "pfs", ReadBps: m.PFSReadBps, WriteBps: m.PFSWriteBps}
	c := &Cluster{machine: m, local: make([]*LocalStore, m.Nodes), pfs: NewPFS(pfsDev)}
	for n := range c.local {
		c.local[n] = NewLocalStore(topology.NodeID(n), ssd)
	}
	return c
}

// Local returns node n's SSD store.
func (c *Cluster) Local(n topology.NodeID) (*LocalStore, error) {
	if int(n) < 0 || int(n) >= len(c.local) {
		return nil, fmt.Errorf("storage: node %d out of range 0..%d", n, len(c.local)-1)
	}
	return c.local[n], nil
}

// PFS returns the shared file system.
func (c *Cluster) PFS() *PFS { return c.pfs }

// FailNode simulates node n crashing: its local storage is lost.
func (c *Cluster) FailNode(n topology.NodeID) error {
	s, err := c.Local(n)
	if err != nil {
		return err
	}
	s.Fail()
	return nil
}

// RepairNode restores node n with empty storage.
func (c *Cluster) RepairNode(n topology.NodeID) error {
	s, err := c.Local(n)
	if err != nil {
		return err
	}
	s.Repair()
	return nil
}

// FailedNodes lists the currently failed nodes.
func (c *Cluster) FailedNodes() []topology.NodeID {
	var out []topology.NodeID
	for _, s := range c.local {
		if s.Failed() {
			out = append(out, s.Node())
		}
	}
	return out
}
