package storage

import (
	"errors"
	"testing"
	"time"

	"hierclust/internal/topology"
)

func TestDeviceTimes(t *testing.T) {
	d := &Device{Name: "ssd", ReadBps: 500e6, WriteBps: 360e6, Latency: time.Millisecond}
	// 360 MB at 360 MB/s = 1 s + latency
	if got := d.WriteTime(360e6, 1); got != time.Second+time.Millisecond {
		t.Errorf("WriteTime = %v, want 1.001s", got)
	}
	// contention doubles time
	if got := d.WriteTime(360e6, 2); got != 2*time.Second+time.Millisecond {
		t.Errorf("contended WriteTime = %v, want 2.001s", got)
	}
	if got := d.ReadTime(500e6, 1); got != time.Second+time.Millisecond {
		t.Errorf("ReadTime = %v, want 1.001s", got)
	}
	// sharing < 1 clamps
	if got := d.WriteTime(360e6, 0); got != time.Second+time.Millisecond {
		t.Errorf("WriteTime sharing=0 = %v", got)
	}
	zero := &Device{Name: "z", Latency: time.Millisecond}
	if got := zero.WriteTime(100, 1); got != time.Millisecond {
		t.Errorf("zero-bandwidth WriteTime = %v, want latency only", got)
	}
	if got := zero.ReadTime(100, 1); got != time.Millisecond {
		t.Errorf("zero-bandwidth ReadTime = %v, want latency only", got)
	}
}

func TestLocalStorePutGetDelete(t *testing.T) {
	s := NewLocalStore(3, &Device{Name: "ssd", ReadBps: 1e9, WriteBps: 1e9})
	if s.Node() != 3 {
		t.Errorf("Node = %d", s.Node())
	}
	if _, err := s.Put("a", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	v, _, err := s.Get("a")
	if err != nil || len(v) != 2 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	// stored value is a copy
	v[0] = 99
	v2, _, _ := s.Get("a")
	if v2[0] != 1 {
		t.Error("Get returned aliased storage")
	}
	var nf *NotFoundError
	if _, _, err := s.Get("missing"); !errors.As(err, &nf) {
		t.Errorf("Get(missing) err = %v, want NotFoundError", err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("a"); err == nil {
		t.Error("Get after Delete succeeded")
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Errorf("Delete of absent key: %v", err)
	}
}

func TestLocalStorePutCopies(t *testing.T) {
	s := NewLocalStore(0, &Device{Name: "ssd", ReadBps: 1, WriteBps: 1})
	buf := []byte{7}
	_, _ = s.Put("k", buf)
	buf[0] = 8
	v, _, _ := s.Get("k")
	if v[0] != 7 {
		t.Error("Put aliased the caller's buffer")
	}
}

func TestLocalStoreFailRepair(t *testing.T) {
	s := NewLocalStore(1, &Device{Name: "ssd", ReadBps: 1e9, WriteBps: 1e9})
	_, _ = s.Put("ckpt", make([]byte, 10))
	s.Fail()
	if !s.Failed() {
		t.Error("Failed() = false after Fail")
	}
	var fe *FailedError
	if _, err := s.Put("x", nil); !errors.As(err, &fe) || fe.Node != 1 {
		t.Errorf("Put on failed store err = %v", err)
	}
	if _, _, err := s.Get("ckpt"); !errors.As(err, &fe) {
		t.Errorf("Get on failed store err = %v", err)
	}
	if err := s.Delete("ckpt"); !errors.As(err, &fe) {
		t.Errorf("Delete on failed store err = %v", err)
	}
	s.Repair()
	if s.Failed() {
		t.Error("Failed() = true after Repair")
	}
	// data was lost
	if _, _, err := s.Get("ckpt"); err == nil {
		t.Error("data survived Fail/Repair")
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewLocalStore(0, &Device{Name: "ssd", ReadBps: 1, WriteBps: 1})
	_, _ = s.Put("b", nil)
	_, _ = s.Put("a", nil)
	_, _ = s.Put("c", nil)
	k := s.Keys()
	if len(k) != 3 || k[0] != "a" || k[2] != "c" {
		t.Errorf("Keys = %v", k)
	}
}

func TestPFS(t *testing.T) {
	p := NewPFS(&Device{Name: "lustre", ReadBps: 10e3, WriteBps: 10e3})
	dur, err := p.Put("k", make([]byte, 1e3), 10)
	if err != nil {
		t.Fatal(err)
	}
	// 1 KB * 10 writers / 10 KB/s = 1s of simulated time
	if dur != time.Second {
		t.Errorf("contended PFS write = %v, want 1s", dur)
	}
	v, _, err := p.Get("k", 1)
	if err != nil || len(v) != 1e3 {
		t.Fatalf("Get: %d bytes, %v", len(v), err)
	}
	if _, _, err := p.Get("nope", 1); err == nil {
		t.Error("Get of absent key succeeded")
	}
	p.Delete("k")
	if _, _, err := p.Get("k", 1); err == nil {
		t.Error("Get after Delete succeeded")
	}
	_, _ = p.Put("z", nil, 1)
	_, _ = p.Put("a", nil, 1)
	if k := p.Keys(); len(k) != 2 || k[0] != "a" {
		t.Errorf("Keys = %v", k)
	}
}

func TestCluster(t *testing.T) {
	m := &topology.Machine{Name: "t", Nodes: 4, SSDWriteBps: 360e6, SSDReadBps: 500e6, PFSWriteBps: 10e9, PFSReadBps: 10e9}
	c := NewCluster(m)
	s, err := c.Local(2)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = s.Put("x", []byte{1})
	if _, err := c.Local(9); err == nil {
		t.Error("Local accepted out-of-range node")
	}
	if err := c.FailNode(2); err != nil {
		t.Fatal(err)
	}
	if got := c.FailedNodes(); len(got) != 1 || got[0] != 2 {
		t.Errorf("FailedNodes = %v", got)
	}
	if err := c.FailNode(9); err == nil {
		t.Error("FailNode accepted out-of-range node")
	}
	if err := c.RepairNode(2); err != nil {
		t.Fatal(err)
	}
	if got := c.FailedNodes(); got != nil {
		t.Errorf("FailedNodes after repair = %v", got)
	}
	if err := c.RepairNode(-1); err == nil {
		t.Error("RepairNode accepted out-of-range node")
	}
	if c.PFS() == nil {
		t.Error("PFS is nil")
	}
}
