//go:build race

package racedetect

// Enabled reports whether this binary was built with -race.
const Enabled = true
