// Package racedetect reports whether the race detector is compiled into
// the binary. Latency-bound tests (the cancellation-promptness suite) use
// it to scale their deadlines instead of flaking under `go test -race`,
// where everything runs several times slower.
package racedetect
