// Package faultinject is a dependency-free registry of named fault points
// for chaos testing. Code on a failure-path seam places a single call —
//
//	if err := faultinject.Hit("tracecache.disk.write"); err != nil { ... }
//
// — and the point does nothing until a test (Arm) or an operator
// (`hcserve -fault`, via ArmSpec) arms it with an action: return an error,
// inject latency, or panic, each at a configurable probability. The whole
// design budget goes to the disarmed path: Hit is one atomic load when no
// point anywhere is armed, so fault points can sit on production hot paths
// permanently instead of being compiled in and out.
//
// The registry is process-global on purpose. Fault points are addressed by
// stable dotted names (documented in docs/OPERATIONS.md), and arming is a
// test/operator action, not a per-component configuration — exactly like
// the failure injection the source paper performs on its target systems.
// Tests that arm points must DisarmAll in cleanup; points are cheap enough
// that call sites never need to guard them.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what an armed fault point does when it triggers.
type Kind uint8

const (
	// KindError makes Hit return an error (ErrInjected unless overridden).
	KindError Kind = iota
	// KindLatency makes Hit sleep for the configured delay, then succeed.
	KindLatency
	// KindPanic makes Hit panic.
	KindPanic
)

// String names the kind the way ArmSpec spells it.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ErrInjected is the error a triggered KindError fault returns (wrapped
// with the point name); match it with errors.Is.
var ErrInjected = errors.New("injected fault")

// Fault configures one armed fault point.
type Fault struct {
	// Kind is the action taken when the point triggers.
	Kind Kind
	// P is the probability in (0, 1] that a single Hit triggers. Values
	// outside that range (including the zero value) mean "always".
	P float64
	// Delay is how long a KindLatency trigger sleeps.
	Delay time.Duration
	// Err, when non-nil, replaces ErrInjected for a KindError trigger.
	Err error
}

// point is one armed registry entry.
type point struct {
	fault     Fault
	triggered int64
}

var (
	// armedTotal counts armed points. The disarmed fast path of Hit is a
	// single load of this counter — no map, no lock, no allocation.
	armedTotal atomic.Int32

	mu       sync.Mutex
	points          = map[string]*point{}
	rngState uint64 = 0x9e3779b97f4a7c15
)

// Hit consults the named fault point. It returns nil when the point is
// disarmed or its probability draw does not trigger; otherwise it performs
// the armed action: returns an error (KindError), sleeps then returns nil
// (KindLatency), or panics (KindPanic). Safe for concurrent use; when
// nothing is armed anywhere the cost is one atomic load.
func Hit(name string) error {
	if armedTotal.Load() == 0 {
		return nil
	}
	return hitSlow(name)
}

func hitSlow(name string) error {
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	f := p.fault
	trigger := f.P <= 0 || f.P > 1 || rngFloatLocked() < f.P
	if trigger {
		p.triggered++
	}
	mu.Unlock()
	if !trigger {
		return nil
	}
	switch f.Kind {
	case KindLatency:
		time.Sleep(f.Delay)
		return nil
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %q", name))
	default:
		if f.Err != nil {
			return f.Err
		}
		return fmt.Errorf("faultinject: %w at %q", ErrInjected, name)
	}
}

// rngFloatLocked draws a uniform float64 in [0, 1). Callers hold mu; the
// generator is splitmix64, reseedable via Seed for deterministic tests.
func rngFloatLocked() float64 {
	rngState += 0x9e3779b97f4a7c15
	z := rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Seed reseeds the probability generator, making sub-1.0 probability draws
// reproducible in tests.
func Seed(s uint64) {
	mu.Lock()
	rngState = s
	mu.Unlock()
}

// Arm installs (or replaces) the fault at the named point.
func Arm(name string, f Fault) {
	mu.Lock()
	if _, ok := points[name]; !ok {
		armedTotal.Add(1)
	}
	points[name] = &point{fault: f}
	mu.Unlock()
}

// Disarm removes the fault at the named point, if armed.
func Disarm(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armedTotal.Add(-1)
	}
	mu.Unlock()
}

// DisarmAll removes every armed fault. Tests that Arm must defer this.
func DisarmAll() {
	mu.Lock()
	if n := len(points); n > 0 {
		points = map[string]*point{}
		armedTotal.Add(int32(-n))
	}
	mu.Unlock()
}

// Triggered returns how many times the named point has triggered since it
// was (last) armed; 0 when disarmed.
func Triggered(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.triggered
	}
	return 0
}

// Armed lists the currently armed point names, sorted.
func Armed() []string {
	mu.Lock()
	names := make([]string, 0, len(points))
	for n := range points {
		names = append(names, n)
	}
	mu.Unlock()
	sort.Strings(names)
	return names
}

// ArmSpec arms fault points from a comma-separated spec string, the syntax
// behind `hcserve -fault`:
//
//	point=error[:p]        Hit returns an error (probability p, default 1)
//	point=panic[:p]        Hit panics
//	point=latency:dur[:p]  Hit sleeps dur (time.ParseDuration syntax)
//
// e.g. "tracecache.disk.write=error:1.0,pipeline.worker=latency:50ms:0.3".
func ArmSpec(spec string) error {
	for _, one := range strings.Split(spec, ",") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		name, action, ok := strings.Cut(one, "=")
		if !ok || name == "" || action == "" {
			return fmt.Errorf("faultinject: spec %q is not point=action", one)
		}
		parts := strings.Split(action, ":")
		f := Fault{P: 1}
		var probPart string
		switch parts[0] {
		case "error":
			f.Kind = KindError
			if len(parts) > 2 {
				return fmt.Errorf("faultinject: spec %q: error takes at most a probability", one)
			}
			if len(parts) == 2 {
				probPart = parts[1]
			}
		case "panic":
			f.Kind = KindPanic
			if len(parts) > 2 {
				return fmt.Errorf("faultinject: spec %q: panic takes at most a probability", one)
			}
			if len(parts) == 2 {
				probPart = parts[1]
			}
		case "latency":
			f.Kind = KindLatency
			if len(parts) < 2 || len(parts) > 3 {
				return fmt.Errorf("faultinject: spec %q: latency needs a duration (latency:50ms[:p])", one)
			}
			d, err := time.ParseDuration(parts[1])
			if err != nil || d < 0 {
				return fmt.Errorf("faultinject: spec %q: bad duration %q", one, parts[1])
			}
			f.Delay = d
			if len(parts) == 3 {
				probPart = parts[2]
			}
		default:
			return fmt.Errorf("faultinject: spec %q: unknown action %q (error, panic, or latency)", one, parts[0])
		}
		if probPart != "" {
			p, err := strconv.ParseFloat(probPart, 64)
			if err != nil || p <= 0 || p > 1 {
				return fmt.Errorf("faultinject: spec %q: probability %q not in (0, 1]", one, probPart)
			}
			f.P = p
		}
		Arm(name, f)
	}
	return nil
}
