package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedHitIsFree(t *testing.T) {
	DisarmAll()
	if err := Hit("nonexistent.point"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = Hit("nonexistent.point") }); allocs != 0 {
		t.Fatalf("disarmed Hit allocates %.1f per call", allocs)
	}
}

func TestErrorFault(t *testing.T) {
	t.Cleanup(DisarmAll)
	Arm("t.err", Fault{Kind: KindError})
	err := Hit("t.err")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("armed error point returned %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "t.err") {
		t.Fatalf("injected error %q does not name the point", err)
	}
	if got := Triggered("t.err"); got != 1 {
		t.Fatalf("Triggered = %d, want 1", got)
	}
	// Other points stay disarmed.
	if err := Hit("t.other"); err != nil {
		t.Fatalf("unarmed sibling point returned %v", err)
	}
	custom := errors.New("boom")
	Arm("t.err", Fault{Kind: KindError, Err: custom})
	if err := Hit("t.err"); !errors.Is(err, custom) {
		t.Fatalf("custom error fault returned %v, want %v", err, custom)
	}

	Disarm("t.err")
	if err := Hit("t.err"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
	if got := Triggered("t.err"); got != 0 {
		t.Fatalf("Triggered after disarm = %d, want 0", got)
	}
}

func TestPanicFault(t *testing.T) {
	t.Cleanup(DisarmAll)
	Arm("t.panic", Fault{Kind: KindPanic})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("armed panic point did not panic")
		}
		if !strings.Contains(v.(string), "t.panic") {
			t.Fatalf("panic value %v does not name the point", v)
		}
	}()
	_ = Hit("t.panic")
}

func TestLatencyFault(t *testing.T) {
	t.Cleanup(DisarmAll)
	Arm("t.slow", Fault{Kind: KindLatency, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Hit("t.slow"); err != nil {
		t.Fatalf("latency fault returned %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency fault slept %v, want >= 30ms", d)
	}
}

func TestProbability(t *testing.T) {
	t.Cleanup(DisarmAll)
	Seed(12345)
	Arm("t.half", Fault{Kind: KindError, P: 0.5})
	hits := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if Hit("t.half") != nil {
			hits++
		}
	}
	if hits < 4500 || hits > 5500 {
		t.Fatalf("p=0.5 point triggered %d/%d times", hits, n)
	}
	if got := Triggered("t.half"); got != int64(hits) {
		t.Fatalf("Triggered = %d, observed %d errors", got, hits)
	}
}

func TestArmSpec(t *testing.T) {
	t.Cleanup(DisarmAll)
	spec := "a.b=error:1.0, c.d=latency:5ms:0.25 ,e.f=panic"
	if err := ArmSpec(spec); err != nil {
		t.Fatalf("ArmSpec(%q): %v", spec, err)
	}
	want := []string{"a.b", "c.d", "e.f"}
	got := Armed()
	if len(got) != len(want) {
		t.Fatalf("Armed() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Armed() = %v, want %v", got, want)
		}
	}
	if err := Hit("a.b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("a.b armed via spec returned %v", err)
	}

	for _, bad := range []string{
		"nameonly",
		"x=",
		"=error",
		"x=warp",
		"x=latency",          // missing duration
		"x=latency:fast",     // bad duration
		"x=error:2",          // probability out of range
		"x=error:0",          // probability out of range
		"x=error:1.0:extra",  // too many parts
		"x=panic:0.5:extra",  // too many parts
		"x=latency:5ms:1:oh", // too many parts
	} {
		if err := ArmSpec(bad); err == nil {
			t.Errorf("ArmSpec(%q) accepted, want error", bad)
		}
	}
}

func TestConcurrentArmAndHit(t *testing.T) {
	t.Cleanup(DisarmAll)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = Hit("t.race")
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		Arm("t.race", Fault{Kind: KindError})
		Disarm("t.race")
	}
	close(stop)
	wg.Wait()
}

func BenchmarkHitDisarmed(b *testing.B) {
	DisarmAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Hit("bench.point")
	}
}
