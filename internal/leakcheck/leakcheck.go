// Package leakcheck asserts, at TestMain exit, that a test suite did not
// leak goroutines. The serve and pipeline packages spawn worker pools,
// singleflight builders, and cancellation watchers on every request; a
// boundary that forgets to join one of them under an injected fault shows
// up here as a hard test failure with a full stack dump, instead of as a
// slow memory leak in a long-lived hcserve process.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// slack tolerates runtime-owned goroutines that come and go outside the
// suite's control (finalizer, netpoll, idle HTTP keep-alive teardown).
const slack = 4

// Main wraps m.Run with a goroutine-leak assertion: the count after the
// suite (given a settle window for request teardown) must return to the
// pre-suite baseline plus slack. Use from TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
func Main(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 && !settle(base+slack, 10*time.Second) {
		n := runtime.NumGoroutine()
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		fmt.Fprintf(os.Stderr, "leakcheck: %d goroutines after suite, baseline %d (+%d slack); stacks:\n%s\n",
			n, base, slack, buf)
		code = 1
	}
	os.Exit(code)
}

// settle polls until the goroutine count drops to at most want or the
// deadline passes — in-flight teardown (connection close, worker drain) is
// normal, goroutines still alive after the window are leaks.
func settle(want int, window time.Duration) bool {
	deadline := time.Now().Add(window)
	for {
		if runtime.NumGoroutine() <= want {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}
