package hybrid

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"hierclust/internal/checkpoint"
	"hierclust/internal/topology"
)

// toyApp is a deterministic 1-D neighbor-exchange application: each rank
// holds a uint64 state, sends it to both neighbors every iteration, and
// folds received values in with a non-commutative-over-time mix. It is
// send-deterministic, so it satisfies the protocol's assumptions.
type toyApp struct {
	n     int
	state []uint64
	iter  []int
}

func newToyApp(n int) *toyApp {
	a := &toyApp{n: n, state: make([]uint64, n), iter: make([]int, n)}
	for r := range a.state {
		a.state[r] = uint64(r + 1)
	}
	return a
}

func (a *toyApp) Produce(rank, iter int) ([]Message, error) {
	if a.iter[rank] != iter {
		return nil, fmt.Errorf("toy: rank %d asked to produce iter %d while at %d", rank, iter, a.iter[rank])
	}
	var out []Message
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], a.state[rank])
	if rank > 0 {
		out = append(out, Message{Dest: rank - 1, Payload: append([]byte(nil), buf[:]...)})
	}
	if rank < a.n-1 {
		out = append(out, Message{Dest: rank + 1, Payload: append([]byte(nil), buf[:]...)})
	}
	return out, nil
}

func (a *toyApp) Advance(rank, iter int, inbox []Message) error {
	if a.iter[rank] != iter {
		return fmt.Errorf("toy: rank %d asked to advance iter %d while at %d", rank, iter, a.iter[rank])
	}
	acc := a.state[rank] * 31
	for _, m := range inbox {
		acc += binary.LittleEndian.Uint64(m.Payload) * uint64(m.Src+7)
	}
	a.state[rank] = acc + uint64(iter)
	a.iter[rank]++
	return nil
}

func (a *toyApp) Snapshot(rank int) ([]byte, error) {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], a.state[rank])
	binary.LittleEndian.PutUint64(buf[8:], uint64(a.iter[rank]))
	return buf[:], nil
}

func (a *toyApp) Restore(rank int, b []byte) error {
	if len(b) != 16 {
		return fmt.Errorf("toy: bad snapshot size %d", len(b))
	}
	a.state[rank] = binary.LittleEndian.Uint64(b[:8])
	a.iter[rank] = int(binary.LittleEndian.Uint64(b[8:]))
	return nil
}

// reference runs the app failure-free without any protocol, as ground truth.
func reference(n, iters int) []uint64 {
	a := newToyApp(n)
	inbox := make([][]Message, n)
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			msgs, _ := a.Produce(r, it)
			for _, m := range msgs {
				m.Src, m.Iter = r, it
				inbox[m.Dest] = append(inbox[m.Dest], m)
			}
		}
		for r := 0; r < n; r++ {
			_ = a.Advance(r, it, sortedBySrc(inbox[r]))
			inbox[r] = nil
		}
	}
	return a.state
}

func sortedBySrc(ms []Message) []Message {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Src < ms[j-1].Src; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
	return ms
}

// testConfig builds 16 ranks on 4 nodes (4 per node), clusters = nodes,
// transversal L2 groups of 4 (one member per node), checkpoint every 4.
func testConfig(t *testing.T, level checkpoint.Level) (Config, *toyApp) {
	t.Helper()
	mach := &topology.Machine{
		Name: "t", Nodes: 4,
		SSDWriteBps: 1e9, SSDReadBps: 1e9, PFSWriteBps: 1e9, PFSReadBps: 1e9, NetBps: 1e9,
	}
	p, err := topology.Block(mach, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	clusters := make([]int, 16)
	for r := range clusters {
		clusters[r] = r / 4
	}
	var groups [][]topology.Rank
	for i := 0; i < 4; i++ {
		groups = append(groups, []topology.Rank{
			topology.Rank(i), topology.Rank(4 + i), topology.Rank(8 + i), topology.Rank(12 + i),
		})
	}
	return Config{
		Placement:       p,
		Clusters:        clusters,
		Groups:          groups,
		CheckpointEvery: 4,
		Level:           level,
	}, newToyApp(16)
}

func TestFailureFreeMatchesReference(t *testing.T) {
	cfg, app := testConfig(t, checkpoint.L3Encoded)
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run.Run(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := reference(16, 10)
	for r := range want {
		if app.state[r] != want[r] {
			t.Fatalf("rank %d state %d != reference %d", r, app.state[r], want[r])
		}
	}
	if rep.CheckpointsTaken < 3 {
		t.Errorf("CheckpointsTaken = %d, want >= 3", rep.CheckpointsTaken)
	}
	if len(rep.Failures) != 0 {
		t.Errorf("failure-free run reported failures: %+v", rep.Failures)
	}
}

func TestLoggedFractionLineTopology(t *testing.T) {
	// 16 ranks in a line, clusters of 4: 3 crossing channels of 30
	// directed messages per iteration → exactly 6/30 = 20% logged.
	cfg, app := testConfig(t, checkpoint.L1Local)
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run.Run(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.LoggedFraction; got < 0.199 || got > 0.201 {
		t.Errorf("LoggedFraction = %g, want 0.2", got)
	}
	if rep.TotalBytes != int64(10*30*8) {
		t.Errorf("TotalBytes = %d, want %d", rep.TotalBytes, 10*30*8)
	}
	if rep.PeakLogBytes <= 0 {
		t.Error("PeakLogBytes not tracked")
	}
}

func TestContainedRecoverySingleNode(t *testing.T) {
	// Node 2 (ranks 8..11, cluster 2) fails at iteration 6, between the
	// checkpoints at 4 and 8. Only cluster 2 restarts; the final state
	// must equal the failure-free reference.
	cfg, app := testConfig(t, checkpoint.L3Encoded)
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run.Run(12, map[int][]topology.NodeID{6: {2}})
	if err != nil {
		t.Fatal(err)
	}
	want := reference(16, 12)
	for r := range want {
		if app.state[r] != want[r] {
			t.Fatalf("rank %d state %d != reference %d after recovery", r, app.state[r], want[r])
		}
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("failures = %+v", rep.Failures)
	}
	ev := rep.Failures[0]
	if ev.RestartedRanks != 4 {
		t.Errorf("RestartedRanks = %d, want 4 (containment)", ev.RestartedRanks)
	}
	if ev.RestartedFraction != 0.25 {
		t.Errorf("RestartedFraction = %g, want 0.25", ev.RestartedFraction)
	}
	if ev.ReExecutedIters != 2 { // checkpoint at 4, failure at 6
		t.Errorf("ReExecutedIters = %d, want 2", ev.ReExecutedIters)
	}
	if ev.ReplayedMessages == 0 {
		t.Error("no messages replayed from sender logs")
	}
	if ev.SuppressedDuplicates == 0 {
		t.Error("no duplicates suppressed at unaffected receivers")
	}
	// Ranks on the failed node lost their local checkpoints: they must
	// have been recovered via RS decode (L3); co-cluster ranks on healthy
	// nodes restore locally (L1).
	if ev.RestoreLevels[checkpoint.L3Encoded] == 0 {
		t.Errorf("RestoreLevels = %v, want some L3 recoveries", ev.RestoreLevels)
	}
	// The L3 recoveries above ran a real RS decode, so the event must
	// carry its measured reconstruction time.
	if ev.DecodeWallTime <= 0 {
		t.Errorf("DecodeWallTime = %v, want > 0 when L3 decode ran", ev.DecodeWallTime)
	}
}

func TestRecoveryViaPartnerCopies(t *testing.T) {
	cfg, app := testConfig(t, checkpoint.L2Partner)
	cfg.Groups = nil
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	_, err = run.Run(12, map[int][]topology.NodeID{6: {1}})
	if err != nil {
		t.Fatal(err)
	}
	want := reference(16, 12)
	for r := range want {
		if app.state[r] != want[r] {
			t.Fatalf("rank %d diverged after partner-copy recovery", r)
		}
	}
}

func TestL1OnlyNodeFailureIsUnrecoverable(t *testing.T) {
	// The motivating pathology: local-only checkpoints die with the node.
	cfg, app := testConfig(t, checkpoint.L1Local)
	cfg.Groups = nil
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	_, err = run.Run(12, map[int][]topology.NodeID{6: {2}})
	if !checkpoint.Unrecoverable(err) {
		t.Errorf("err = %v, want unrecoverable", err)
	}
}

func TestFailureImmediatelyAfterCheckpoint(t *testing.T) {
	cfg, app := testConfig(t, checkpoint.L3Encoded)
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run.Run(12, map[int][]topology.NodeID{8: {0}})
	if err != nil {
		t.Fatal(err)
	}
	want := reference(16, 12)
	for r := range want {
		if app.state[r] != want[r] {
			t.Fatalf("rank %d diverged", r)
		}
	}
	if rep.Failures[0].ReExecutedIters != 0 {
		t.Errorf("ReExecutedIters = %d, want 0 (failure on the checkpoint line)", rep.Failures[0].ReExecutedIters)
	}
}

func TestMultipleFailuresDifferentIterations(t *testing.T) {
	cfg, app := testConfig(t, checkpoint.L3Encoded)
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run.Run(20, map[int][]topology.NodeID{5: {3}, 13: {0}})
	if err != nil {
		t.Fatal(err)
	}
	want := reference(16, 20)
	for r := range want {
		if app.state[r] != want[r] {
			t.Fatalf("rank %d diverged after two failures", r)
		}
	}
	if len(rep.Failures) != 2 {
		t.Fatalf("handled %d failures, want 2", len(rep.Failures))
	}
}

func TestMultiNodeFailureRestartsBothClusters(t *testing.T) {
	cfg, app := testConfig(t, checkpoint.L3Encoded)
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run.Run(12, map[int][]topology.NodeID{6: {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := reference(16, 12)
	for r := range want {
		if app.state[r] != want[r] {
			t.Fatalf("rank %d diverged", r)
		}
	}
	if rep.Failures[0].RestartedRanks != 8 {
		t.Errorf("RestartedRanks = %d, want 8 (two clusters)", rep.Failures[0].RestartedRanks)
	}
}

func TestDistributedClusteringAmplifiesRestart(t *testing.T) {
	// The paper's Fig. 4c effect: with clusters striped across nodes, one
	// node failure drags every cluster down — here all 16 ranks.
	cfg, app := testConfig(t, checkpoint.L3Encoded)
	for r := 0; r < 16; r++ {
		cfg.Clusters[r] = r % 4 // stripe clusters across nodes
	}
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run.Run(12, map[int][]topology.NodeID{6: {2}})
	if err != nil {
		t.Fatal(err)
	}
	want := reference(16, 12)
	for r := range want {
		if app.state[r] != want[r] {
			t.Fatalf("rank %d diverged", r)
		}
	}
	if rep.Failures[0].RestartedRanks != 16 {
		t.Errorf("RestartedRanks = %d, want 16 (no containment)", rep.Failures[0].RestartedRanks)
	}
}

func TestLogTrimKeepsMemoryBounded(t *testing.T) {
	cfg, app := testConfig(t, checkpoint.L1Local)
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Run(40, nil); err != nil {
		t.Fatal(err)
	}
	// After the last checkpoint (iter 36), at most 4 iterations of logged
	// traffic remain: 6 crossing messages × 8 bytes × 4 iters per rank set.
	var live int64
	for r := 0; r < 16; r++ {
		live += run.logs[r].Bytes()
	}
	if live > 6*8*4 {
		t.Errorf("live log bytes = %d, want <= %d (trim failed)", live, 6*8*4)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg, app := testConfig(t, checkpoint.L1Local)
	bad := cfg
	bad.Placement = nil
	if _, err := NewRunner(bad, app); err == nil {
		t.Error("accepted nil placement")
	}
	bad = cfg
	bad.Clusters = []int{0}
	if _, err := NewRunner(bad, app); err == nil {
		t.Error("accepted short cluster list")
	}
	bad = cfg
	bad.CheckpointEvery = 0
	if _, err := NewRunner(bad, app); err == nil {
		t.Error("accepted CheckpointEvery=0")
	}
	bad = cfg
	bad.Clusters = append([]int(nil), cfg.Clusters...)
	bad.Clusters[3] = -1
	if _, err := NewRunner(bad, app); err == nil {
		t.Error("accepted negative cluster id")
	}
	good, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := good.Run(-1, nil); err == nil {
		t.Error("accepted negative iterations")
	}
	if good.Manager() == nil || good.Storage() == nil {
		t.Error("accessors returned nil")
	}
}

func TestAppErrorsPropagate(t *testing.T) {
	cfg, app := testConfig(t, checkpoint.L1Local)
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	// Poison the app state so Produce errors at iteration 3.
	app.iter[5] = 99
	_, err = run.Run(5, nil)
	if err == nil {
		t.Fatal("app error swallowed")
	}
	if !strings.Contains(err.Error(), "rank 5") {
		t.Errorf("error %q lost rank context", err)
	}
}
