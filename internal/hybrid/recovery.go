package hybrid

import (
	"fmt"
	"sort"

	"hierclust/internal/checkpoint"
	"hierclust/internal/msglog"
	"hierclust/internal/topology"
)

// Run executes the application for the given number of iterations, taking
// coordinated checkpoints and handling the injected failures:
// failures[iter] lists nodes that crash at that iteration boundary (before
// the iteration executes). An initial checkpoint is taken at iteration 0.
func (ru *Runner) Run(iterations int, failures map[int][]topology.NodeID) (*Report, error) {
	if iterations < 0 {
		return nil, fmt.Errorf("hybrid: negative iteration count %d", iterations)
	}
	if err := ru.takeCheckpoint(0); err != nil {
		return nil, err
	}
	for it := 0; it < iterations; it++ {
		if nodes := failures[it]; len(nodes) > 0 {
			if err := ru.handleFailure(it, nodes); err != nil {
				return nil, err
			}
		}
		if err := ru.routeNormal(it); err != nil {
			return nil, err
		}
		if err := ru.advanceAll(it); err != nil {
			return nil, err
		}
		if (it+1)%ru.cfg.CheckpointEvery == 0 && it+1 < iterations {
			if err := ru.takeCheckpoint(it + 1); err != nil {
				return nil, err
			}
		}
	}
	ru.rep.Iterations = iterations
	if ru.rep.TotalBytes > 0 {
		ru.rep.LoggedFraction = float64(ru.rep.LoggedBytes) / float64(ru.rep.TotalBytes)
	}
	rep := ru.rep
	return &rep, nil
}

// handleFailure implements failure containment: the nodes crash, the L1
// clusters hosting their ranks roll back to the last coordinated checkpoint
// and re-execute, fed by sender logs; everyone else keeps their state.
func (ru *Runner) handleFailure(it int, nodes []topology.NodeID) error {
	ev := FailureEvent{
		Iter: it, Nodes: append([]topology.NodeID(nil), nodes...),
		RestoreLevels: map[checkpoint.Level]int{},
	}

	// Storage of the failed nodes is lost; the nodes come back empty
	// (replacement hardware or reboot), which is what makes L1-only
	// checkpoints insufficient and L3 encoding valuable.
	for _, n := range nodes {
		if err := ru.store.FailNode(n); err != nil {
			return err
		}
	}
	for _, n := range nodes {
		if err := ru.store.RepairNode(n); err != nil {
			return err
		}
	}

	// Failure containment: restart exactly the clusters touched.
	failedClusters := map[int]bool{}
	for _, n := range nodes {
		for _, r := range ru.cfg.Placement.RanksOn(n) {
			if int(r) < len(ru.cfg.Clusters) {
				failedClusters[ru.cfg.Clusters[r]] = true
			}
		}
	}
	var restart []topology.Rank
	inRestart := make([]bool, ru.nranks)
	for r := 0; r < ru.nranks; r++ {
		if failedClusters[ru.cfg.Clusters[r]] {
			restart = append(restart, topology.Rank(r))
			inRestart[r] = true
		}
	}
	ev.RestartedRanks = len(restart)
	ev.RestartedFraction = float64(len(restart)) / float64(ru.nranks)

	// Restore state from the cheapest surviving checkpoint level.
	ru.mgr.DrainDecodeTime() // reset so the event sees only this failure
	restored, err := ru.mgr.Restore(ru.epoch, restart)
	if err != nil {
		return fmt.Errorf("hybrid: recovering clusters %v at iter %d: %w", keys(failedClusters), it, err)
	}
	ev.DecodeWallTime = ru.mgr.DrainDecodeTime()
	for _, re := range restored {
		if err := ru.app.Restore(int(re.Rank), re.Data); err != nil {
			return fmt.Errorf("hybrid: app restore rank %d: %w", re.Rank, err)
		}
		ev.RestoreLevels[re.Level]++
	}
	// Rewind protocol cursors of restarted ranks to the checkpoint line.
	for _, r := range restart {
		ru.logs[r].RestoreSeq(ru.seqSnap[r])
		ru.dedup[r].Restore(ru.dedupSnap[r])
		ru.inbox[r] = nil
	}

	// Pre-fetch replayable inter-cluster messages destined to restarted
	// ranks, remembering the sender (logs are per-sender; entries aren't).
	type replayMsg struct {
		src int
		e   msglog.Entry
	}
	replay := map[int][]replayMsg{}
	for s := 0; s < ru.nranks; s++ {
		if inRestart[s] {
			continue
		}
		for _, d := range ru.logs[s].Dests() {
			if !inRestart[d] {
				continue
			}
			for _, e := range ru.logs[s].Replay(d, ru.dedup[d].Cursor(s)) {
				replay[d] = append(replay[d], replayMsg{src: s, e: e})
			}
		}
	}

	// Re-execute the lost iterations for the restarted cluster(s) only.
	for tt := ru.ckptIt; tt < it; tt++ {
		for _, r := range restart {
			msgs, err := ru.app.Produce(int(r), tt)
			if err != nil {
				return fmt.Errorf("hybrid: re-produce rank %d iter %d: %w", r, tt, err)
			}
			for _, msg := range msgs {
				msg.Src, msg.Iter = int(r), tt
				var seq uint64
				if ru.interCluster(msg.Src, msg.Dest) {
					e := ru.logs[msg.Src].Append(msg.Dest, int64(tt), ru.epoch, msg.Payload)
					seq = e.Seq
				} else {
					seq = ru.logs[msg.Src].Advance(msg.Dest)
				}
				if !inRestart[msg.Dest] {
					// Duplicate of a message the receiver already has.
					ok, err := ru.dedup[msg.Dest].Accept(msg.Src, seq)
					if err != nil {
						return err
					}
					if ok {
						return fmt.Errorf("hybrid: rank %d unexpectedly accepted re-sent message seq %d from %d",
							msg.Dest, seq, msg.Src)
					}
					ev.SuppressedDuplicates++
					continue
				}
				ok, err := ru.dedup[msg.Dest].Accept(msg.Src, seq)
				if err != nil {
					return err
				}
				if ok {
					ru.inbox[msg.Dest] = append(ru.inbox[msg.Dest], msg)
				}
			}
		}
		// Inject the logged inter-cluster messages of this iteration.
		for _, r := range restart {
			for _, rm := range replay[int(r)] {
				if int(rm.e.Tag) != tt {
					continue
				}
				ok, err := ru.dedup[r].Accept(rm.src, rm.e.Seq)
				if err != nil {
					return err
				}
				if ok {
					ru.inbox[r] = append(ru.inbox[r], Message{
						Src: rm.src, Dest: int(r), Iter: tt, Payload: rm.e.Payload,
					})
					ev.ReplayedMessages++
				}
			}
		}
		for _, r := range restart {
			inbox := ru.inbox[r]
			sort.SliceStable(inbox, func(i, j int) bool { return inbox[i].Src < inbox[j].Src })
			if err := ru.app.Advance(int(r), tt, inbox); err != nil {
				return fmt.Errorf("hybrid: re-advance rank %d iter %d: %w", r, tt, err)
			}
			ru.inbox[r] = nil
		}
		ev.ReExecutedIters++
	}

	ru.rep.Failures = append(ru.rep.Failures, ev)
	return nil
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
