package hybrid

import (
	"fmt"
	"math/rand"
	"testing"

	"hierclust/internal/checkpoint"
	"hierclust/internal/topology"
)

// TestRandomFailureSchedulesProperty is the protocol's strongest guarantee,
// checked stochastically: for ANY schedule of single-node failures at
// distinct iterations, the run either completes with state bit-identical to
// the failure-free reference, or fails with an explicit unrecoverable error
// (never silently wrong, never deadlocked).
func TestRandomFailureSchedulesProperty(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 977))
			iters := 10 + rng.Intn(30)
			ckptEvery := 2 + rng.Intn(6)
			nFailures := 1 + rng.Intn(3)
			failures := map[int][]topology.NodeID{}
			for len(failures) < nFailures {
				it := rng.Intn(iters)
				if _, dup := failures[it]; !dup {
					failures[it] = []topology.NodeID{topology.NodeID(rng.Intn(4))}
				}
			}

			cfg, app := testConfig(t, checkpoint.L3Encoded)
			cfg.CheckpointEvery = ckptEvery
			run, err := NewRunner(cfg, app)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := run.Run(iters, failures)
			if err != nil {
				if checkpoint.Unrecoverable(err) {
					return // honest failure is acceptable
				}
				t.Fatalf("iters=%d ckpt=%d failures=%v: %v", iters, ckptEvery, failures, err)
			}
			if len(rep.Failures) != nFailures {
				t.Fatalf("handled %d failures, want %d", len(rep.Failures), nFailures)
			}
			want := reference(16, iters)
			for r := range want {
				if app.state[r] != want[r] {
					t.Fatalf("iters=%d ckpt=%d failures=%v: rank %d diverged",
						iters, ckptEvery, failures, r)
				}
			}
		})
	}
}

// TestBackToBackFailuresSameEpoch injects two failures inside the same
// checkpoint epoch, hitting different clusters.
func TestBackToBackFailuresSameEpoch(t *testing.T) {
	cfg, app := testConfig(t, checkpoint.L3Encoded)
	cfg.CheckpointEvery = 10
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run.Run(16, map[int][]topology.NodeID{
		12: {0},
		14: {3},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := reference(16, 16)
	for r := range want {
		if app.state[r] != want[r] {
			t.Fatalf("rank %d diverged after same-epoch failures", r)
		}
	}
	if rep.Failures[1].ReExecutedIters != 4 { // checkpoint at 10, failure at 14
		t.Errorf("second failure re-ran %d iters, want 4", rep.Failures[1].ReExecutedIters)
	}
}

// TestRepeatedFailureSameCluster fails the same node twice: the second
// recovery replays from the refreshed checkpoint and logs.
func TestRepeatedFailureSameCluster(t *testing.T) {
	cfg, app := testConfig(t, checkpoint.L3Encoded)
	run, err := NewRunner(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	_, err = run.Run(20, map[int][]topology.NodeID{
		6:  {2},
		15: {2},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := reference(16, 20)
	for r := range want {
		if app.state[r] != want[r] {
			t.Fatalf("rank %d diverged after repeated failures", r)
		}
	}
}
