// Package hybrid implements the paper's HydEE-style hybrid rollback-recovery
// protocol (reference [13]): checkpoints are coordinated *within* process
// clusters, only *inter-cluster* messages are payload-logged at senders, and
// a failure rolls back exactly the clusters it touches. Surviving clusters
// keep their state; the restarted cluster re-executes from its checkpoint,
// re-receiving inter-cluster messages from sender logs and regenerating
// intra-cluster traffic by deterministic re-execution, while receivers
// outside the cluster suppress the duplicates by sequence number.
//
// The protocol drives a send-deterministic iterative application through
// the App interface — the assumption HydEE makes of MPI HPC codes, and one
// the paper's tsunami stencil satisfies.
package hybrid

import (
	"fmt"
	"sort"
	"time"

	"hierclust/internal/checkpoint"
	"hierclust/internal/msglog"
	"hierclust/internal/storage"
	"hierclust/internal/topology"
)

// Message is one application message within an iteration.
type Message struct {
	// Src and Dest are world ranks.
	Src, Dest int
	// Iter is the iteration the message belongs to.
	Iter int
	// Payload is the body; the runner treats it as opaque.
	Payload []byte
}

// App is a send-deterministic iterative application: Produce and Advance
// must depend only on the rank's restored state (and the inbox), so that
// re-execution from a checkpoint regenerates identical messages — the
// send-determinism HydEE requires.
type App interface {
	// Produce returns the messages rank emits at iteration iter. The
	// runner fills Src and Iter; Dest and Payload come from the app.
	Produce(rank, iter int) ([]Message, error)
	// Advance applies the inbox (sorted by Src) and moves rank from
	// iteration iter to iter+1.
	Advance(rank, iter int, inbox []Message) error
	// Snapshot serializes the rank's state.
	Snapshot(rank int) ([]byte, error)
	// Restore replaces the rank's state from a snapshot.
	Restore(rank int, state []byte) error
}

// Config assembles a protocol instance.
type Config struct {
	// Placement maps ranks to nodes (and exposes the machine).
	Placement *topology.Placement
	// Clusters assigns each rank its L1 cluster id (dense from 0).
	Clusters []int
	// Groups are the encoding groups (L2 clusters) handed to the
	// checkpoint manager; may be nil when Level < L3.
	Groups [][]topology.Rank
	// CheckpointEvery is the iteration period between coordinated
	// checkpoints (an initial checkpoint is always taken at iteration 0).
	CheckpointEvery int
	// Level is the checkpoint protection level.
	Level checkpoint.Level
	// Storage is the backing cluster; if nil a new one is built from the
	// placement's machine.
	Storage *storage.Cluster
}

// FailureEvent describes one handled failure.
type FailureEvent struct {
	// Iter is the iteration boundary where the failure struck.
	Iter int
	// Nodes lists the failed nodes.
	Nodes []topology.NodeID
	// RestartedRanks is the containment cost: how many ranks rolled back.
	RestartedRanks int
	// RestartedFraction is RestartedRanks over world size.
	RestartedFraction float64
	// RestoreLevels counts how many ranks were recovered from each level.
	RestoreLevels map[checkpoint.Level]int
	// ReplayedMessages counts sender-log entries re-delivered.
	ReplayedMessages int
	// SuppressedDuplicates counts re-sent messages dropped at unaffected
	// receivers.
	SuppressedDuplicates int
	// ReExecutedIters is how many iterations the cluster re-ran.
	ReExecutedIters int
	// DecodeWallTime is the measured erasure reconstruction time (RS or
	// XOR group decode) spent restoring this failure's ranks; zero when
	// every rank restored from an intact copy.
	DecodeWallTime time.Duration
}

// Report summarizes a run.
type Report struct {
	Iterations       int
	CheckpointsTaken int
	TotalBytes       int64
	LoggedBytes      int64
	LoggedFraction   float64
	PeakLogBytes     int64
	Failures         []FailureEvent
}

// Runner executes an App under the hybrid protocol.
type Runner struct {
	cfg    Config
	app    App
	nranks int
	mgr    *checkpoint.Manager
	store  *storage.Cluster
	logs   []*msglog.Log
	dedup  []*msglog.Dedup
	epoch  int
	ckptIt int // iteration of the last stable checkpoint
	inbox  [][]Message
	rep    Report
	// snapshots of per-rank cursors taken at the checkpoint line
	seqSnap   []map[int]uint64
	dedupSnap []map[int]uint64
}

// NewRunner validates the configuration and builds a runner.
func NewRunner(cfg Config, app App) (*Runner, error) {
	if cfg.Placement == nil {
		return nil, fmt.Errorf("hybrid: nil placement")
	}
	n := cfg.Placement.NumRanks()
	if len(cfg.Clusters) != n {
		return nil, fmt.Errorf("hybrid: %d cluster ids for %d ranks", len(cfg.Clusters), n)
	}
	if cfg.CheckpointEvery <= 0 {
		return nil, fmt.Errorf("hybrid: CheckpointEvery %d must be positive", cfg.CheckpointEvery)
	}
	for r, c := range cfg.Clusters {
		if c < 0 {
			return nil, fmt.Errorf("hybrid: rank %d has negative cluster id", r)
		}
	}
	st := cfg.Storage
	if st == nil {
		st = storage.NewCluster(cfg.Placement.Machine())
	}
	mgr, err := checkpoint.New(st, cfg.Placement, cfg.Groups)
	if err != nil {
		return nil, err
	}
	run := &Runner{
		cfg: cfg, app: app, nranks: n, mgr: mgr, store: st,
		logs:      make([]*msglog.Log, n),
		dedup:     make([]*msglog.Dedup, n),
		inbox:     make([][]Message, n),
		seqSnap:   make([]map[int]uint64, n),
		dedupSnap: make([]map[int]uint64, n),
	}
	for r := 0; r < n; r++ {
		run.logs[r] = msglog.NewLog(r)
		run.dedup[r] = msglog.NewDedup()
	}
	return run, nil
}

// Manager exposes the checkpoint manager (for inspection in tests and
// experiments).
func (ru *Runner) Manager() *checkpoint.Manager { return ru.mgr }

// Storage exposes the backing storage cluster (for failure injection).
func (ru *Runner) Storage() *storage.Cluster { return ru.store }

// interCluster reports whether a message crosses L1 boundaries.
func (ru *Runner) interCluster(src, dest int) bool {
	return ru.cfg.Clusters[src] != ru.cfg.Clusters[dest]
}

// takeCheckpoint coordinates a full checkpoint at iteration it.
func (ru *Runner) takeCheckpoint(it int) error {
	ru.epoch++
	data := make(map[topology.Rank][]byte, ru.nranks)
	for r := 0; r < ru.nranks; r++ {
		blob, err := ru.app.Snapshot(r)
		if err != nil {
			return fmt.Errorf("hybrid: snapshot rank %d: %w", r, err)
		}
		data[topology.Rank(r)] = blob
	}
	if _, err := ru.mgr.Checkpoint(ru.epoch, ru.cfg.Level, data); err != nil {
		return err
	}
	for r := 0; r < ru.nranks; r++ {
		ru.seqSnap[r] = ru.logs[r].SeqSnapshot()
		ru.dedupSnap[r] = ru.dedup[r].Snapshot()
	}
	ru.ckptIt = it
	ru.rep.CheckpointsTaken++
	// Every cluster now has a stable checkpoint of this epoch: earlier log
	// entries can never be replayed.
	var peak int64
	for r := 0; r < ru.nranks; r++ {
		peak += ru.logs[r].Bytes()
	}
	if peak > ru.rep.PeakLogBytes {
		ru.rep.PeakLogBytes = peak
	}
	for r := 0; r < ru.nranks; r++ {
		ru.logs[r].Trim(ru.epoch)
	}
	ru.mgr.GC(ru.epoch)
	return nil
}

// routeNormal produces and delivers all messages of iteration it.
func (ru *Runner) routeNormal(it int) error {
	for r := 0; r < ru.nranks; r++ {
		msgs, err := ru.app.Produce(r, it)
		if err != nil {
			return fmt.Errorf("hybrid: produce rank %d iter %d: %w", r, it, err)
		}
		for _, msg := range msgs {
			if msg.Dest < 0 || msg.Dest >= ru.nranks {
				return fmt.Errorf("hybrid: rank %d sent to invalid rank %d", r, msg.Dest)
			}
			msg.Src, msg.Iter = r, it
			var seq uint64
			if ru.interCluster(r, msg.Dest) {
				e := ru.logs[r].Append(msg.Dest, int64(it), ru.epoch, msg.Payload)
				seq = e.Seq
				ru.rep.LoggedBytes += int64(len(msg.Payload))
			} else {
				seq = ru.logs[r].Advance(msg.Dest)
			}
			ru.rep.TotalBytes += int64(len(msg.Payload))
			ok, err := ru.dedup[msg.Dest].Accept(r, seq)
			if err != nil {
				return err
			}
			if ok {
				ru.inbox[msg.Dest] = append(ru.inbox[msg.Dest], msg)
			}
		}
	}
	return nil
}

// advanceAll applies inboxes and steps every rank once.
func (ru *Runner) advanceAll(it int) error {
	for r := 0; r < ru.nranks; r++ {
		inbox := ru.inbox[r]
		sort.SliceStable(inbox, func(i, j int) bool { return inbox[i].Src < inbox[j].Src })
		if err := ru.app.Advance(r, it, inbox); err != nil {
			return fmt.Errorf("hybrid: advance rank %d iter %d: %w", r, it, err)
		}
		ru.inbox[r] = nil
	}
	return nil
}
