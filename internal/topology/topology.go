// Package topology models the physical structure of an HPC machine —
// compute nodes, processes per node, power-supply pairs, racks — and the
// mapping of application process ranks onto that structure (the placement).
//
// The paper's evaluation platform is TSUBAME2 (Table I); Tsubame2 returns a
// machine model built from those published constants. Clustering strategies
// in internal/core consume a Machine plus a Placement to decide which
// processes share compute nodes, which nodes share a power supply, and hence
// which failures are correlated.
package topology

import (
	"fmt"
)

// NodeID identifies a compute node within a Machine.
type NodeID int

// Rank identifies a process in the parallel application (MPI-style rank).
type Rank int

// Machine describes the fault-relevant physical structure of a cluster.
//
// Nodes are numbered 0..Nodes-1. Consecutive node pairs (2i, 2i+1) share a
// power supply when PowerPairs is true, so both fail together on a supply
// fault. Racks group NodesPerRack consecutive nodes and model correlated
// rack-level faults (cooling, PDU).
type Machine struct {
	// Name labels the machine in reports, e.g. "TSUBAME2".
	Name string
	// Nodes is the number of compute nodes.
	Nodes int
	// CoresPerNode is the hardware core count of one node.
	CoresPerNode int
	// PowerPairs indicates whether nodes 2i and 2i+1 share a power supply.
	PowerPairs bool
	// NodesPerRack groups consecutive nodes into racks; 0 disables racks.
	NodesPerRack int

	// SSDWriteBps is the node-local SSD write bandwidth in bytes/second.
	SSDWriteBps float64
	// SSDReadBps is the node-local SSD read bandwidth in bytes/second.
	SSDReadBps float64
	// PFSWriteBps is the aggregate parallel-file-system write bandwidth in
	// bytes/second, shared by all concurrent writers.
	PFSWriteBps float64
	// PFSReadBps is the aggregate parallel-file-system read bandwidth.
	PFSReadBps float64
	// NetBps is the per-node injection bandwidth in bytes/second.
	NetBps float64
	// MemPerNode is the usable memory per node in bytes.
	MemPerNode int64
}

// Validate reports an error if the machine description is unusable.
func (m *Machine) Validate() error {
	if m.Nodes <= 0 {
		return fmt.Errorf("topology: machine %q has %d nodes; need at least 1", m.Name, m.Nodes)
	}
	if m.NodesPerRack < 0 {
		return fmt.Errorf("topology: machine %q has negative NodesPerRack", m.Name)
	}
	return nil
}

// PowerGroup returns the set of nodes sharing node n's power supply,
// including n itself. Without power pairing the group is {n}.
func (m *Machine) PowerGroup(n NodeID) []NodeID {
	if !m.PowerPairs {
		return []NodeID{n}
	}
	base := n &^ 1
	group := []NodeID{base}
	if int(base)+1 < m.Nodes {
		group = append(group, base+1)
	}
	return group
}

// Rack returns the rack index of node n, or 0 if racks are disabled.
func (m *Machine) Rack(n NodeID) int {
	if m.NodesPerRack <= 0 {
		return 0
	}
	return int(n) / m.NodesPerRack
}

// RackNodes returns all nodes in rack r. With racks disabled it returns all
// nodes of the machine.
func (m *Machine) RackNodes(r int) []NodeID {
	if m.NodesPerRack <= 0 {
		all := make([]NodeID, m.Nodes)
		for i := range all {
			all[i] = NodeID(i)
		}
		return all
	}
	lo := r * m.NodesPerRack
	hi := lo + m.NodesPerRack
	if hi > m.Nodes {
		hi = m.Nodes
	}
	if lo >= hi {
		return nil
	}
	nodes := make([]NodeID, 0, hi-lo)
	for i := lo; i < hi; i++ {
		nodes = append(nodes, NodeID(i))
	}
	return nodes
}

// Tsubame2 returns the TSUBAME2 machine model using the constants of the
// paper's Table I: 1408 high-bandwidth compute nodes, 12 cores (24 hardware
// threads), 120 GB node-local SSD writing at 360 MB/s (RAID0), dual-rail QDR
// InfiniBand at 4 GB/s per rail, and a measured 10 GB/s Lustre write
// throughput.
func Tsubame2() *Machine {
	return &Machine{
		Name:         "TSUBAME2",
		Nodes:        1408,
		CoresPerNode: 12,
		PowerPairs:   true,
		NodesPerRack: 32,
		SSDWriteBps:  360e6,
		SSDReadBps:   500e6,
		PFSWriteBps:  10e9,
		PFSReadBps:   10e9,
		NetBps:       8e9, // dual rail QDR IB, 4 GB/s x 2
		MemPerNode:   55_800_000_000,
	}
}

// Subset returns a machine identical to m but restricted to the first nodes
// compute nodes, as when a job allocation uses part of the cluster.
func (m *Machine) Subset(nodes int) (*Machine, error) {
	if nodes <= 0 || nodes > m.Nodes {
		return nil, fmt.Errorf("topology: subset of %d nodes out of range 1..%d", nodes, m.Nodes)
	}
	sub := *m
	sub.Nodes = nodes
	sub.Name = fmt.Sprintf("%s[0:%d]", m.Name, nodes)
	return &sub, nil
}
