package topology

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTsubame2TableI(t *testing.T) {
	m := Tsubame2()
	if err := m.Validate(); err != nil {
		t.Fatalf("Tsubame2 invalid: %v", err)
	}
	if m.Nodes != 1408 {
		t.Errorf("Nodes = %d, want 1408 (Table I)", m.Nodes)
	}
	if m.CoresPerNode != 12 {
		t.Errorf("CoresPerNode = %d, want 12 (Table I)", m.CoresPerNode)
	}
	if m.SSDWriteBps != 360e6 {
		t.Errorf("SSDWriteBps = %g, want 360e6 (Table I: 360 MB/s RAID0)", m.SSDWriteBps)
	}
	if m.PFSWriteBps != 10e9 {
		t.Errorf("PFSWriteBps = %g, want 10e9 (Table I: measured Lustre 10GB/s)", m.PFSWriteBps)
	}
	if m.NetBps != 8e9 {
		t.Errorf("NetBps = %g, want 8e9 (dual rail QDR 4GB/s x2)", m.NetBps)
	}
}

func TestValidate(t *testing.T) {
	bad := &Machine{Name: "empty", Nodes: 0}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a 0-node machine")
	}
	bad2 := &Machine{Name: "negrack", Nodes: 4, NodesPerRack: -1}
	if err := bad2.Validate(); err == nil {
		t.Error("Validate accepted negative NodesPerRack")
	}
}

func TestPowerGroup(t *testing.T) {
	m := &Machine{Name: "t", Nodes: 5, PowerPairs: true}
	cases := []struct {
		n    NodeID
		want []NodeID
	}{
		{0, []NodeID{0, 1}},
		{1, []NodeID{0, 1}},
		{2, []NodeID{2, 3}},
		{3, []NodeID{2, 3}},
		{4, []NodeID{4}}, // odd tail: no partner
	}
	for _, c := range cases {
		got := m.PowerGroup(c.n)
		if len(got) != len(c.want) {
			t.Errorf("PowerGroup(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PowerGroup(%d) = %v, want %v", c.n, got, c.want)
			}
		}
	}

	solo := &Machine{Name: "solo", Nodes: 4, PowerPairs: false}
	if g := solo.PowerGroup(2); len(g) != 1 || g[0] != 2 {
		t.Errorf("without PowerPairs, PowerGroup(2) = %v, want [2]", g)
	}
}

func TestRacks(t *testing.T) {
	m := &Machine{Name: "t", Nodes: 10, NodesPerRack: 4}
	if m.Rack(0) != 0 || m.Rack(3) != 0 || m.Rack(4) != 1 || m.Rack(9) != 2 {
		t.Errorf("rack assignment wrong: %d %d %d %d", m.Rack(0), m.Rack(3), m.Rack(4), m.Rack(9))
	}
	last := m.RackNodes(2)
	if len(last) != 2 || last[0] != 8 || last[1] != 9 {
		t.Errorf("RackNodes(2) = %v, want [8 9]", last)
	}
	if got := m.RackNodes(3); got != nil {
		t.Errorf("RackNodes(3) = %v, want nil", got)
	}
	flat := &Machine{Name: "flat", Nodes: 3}
	if got := flat.RackNodes(0); len(got) != 3 {
		t.Errorf("rackless RackNodes = %v, want all 3 nodes", got)
	}
}

func TestBlockPlacement(t *testing.T) {
	m := &Machine{Name: "t", Nodes: 64}
	p, err := Block(m, 1024, 16)
	if err != nil {
		t.Fatalf("Block: %v", err)
	}
	if p.NumRanks() != 1024 {
		t.Fatalf("NumRanks = %d, want 1024", p.NumRanks())
	}
	if p.NodeOf(0) != 0 || p.NodeOf(15) != 0 || p.NodeOf(16) != 1 || p.NodeOf(1023) != 63 {
		t.Errorf("block mapping wrong: %d %d %d %d",
			p.NodeOf(0), p.NodeOf(15), p.NodeOf(16), p.NodeOf(1023))
	}
	if got := p.RanksOn(1); len(got) != 16 || got[0] != 16 || got[15] != 31 {
		t.Errorf("RanksOn(1) = %v", got)
	}
	if p.MaxProcsPerNode() != 16 {
		t.Errorf("MaxProcsPerNode = %d, want 16", p.MaxProcsPerNode())
	}
	if !p.SameNode(0, 15) || p.SameNode(15, 16) {
		t.Error("SameNode wrong for block placement")
	}
	if p.LocalIndex(17) != 1 {
		t.Errorf("LocalIndex(17) = %d, want 1", p.LocalIndex(17))
	}
}

func TestBlockPlacementErrors(t *testing.T) {
	m := &Machine{Name: "t", Nodes: 2}
	if _, err := Block(m, 100, 16); err == nil {
		t.Error("Block accepted more ranks than the machine holds")
	}
	if _, err := Block(m, 4, 0); err == nil {
		t.Error("Block accepted procsPerNode=0")
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	m := &Machine{Name: "t", Nodes: 8}
	p, err := RoundRobin(m, 32, 8)
	if err != nil {
		t.Fatalf("RoundRobin: %v", err)
	}
	for r := 0; r < 32; r++ {
		if p.NodeOf(Rank(r)) != NodeID(r%8) {
			t.Fatalf("NodeOf(%d) = %d, want %d", r, p.NodeOf(Rank(r)), r%8)
		}
	}
	if got := p.RanksOn(3); len(got) != 4 || got[0] != 3 || got[1] != 11 {
		t.Errorf("RanksOn(3) = %v", got)
	}
	if _, err := RoundRobin(m, 32, 0); err == nil {
		t.Error("RoundRobin accepted usedNodes=0")
	}
	if _, err := RoundRobin(m, 32, 9); err == nil {
		t.Error("RoundRobin accepted usedNodes > machine nodes")
	}
}

func TestNewPlacementRejectsBadNode(t *testing.T) {
	m := &Machine{Name: "t", Nodes: 2}
	if _, err := NewPlacement(m, []NodeID{0, 1, 2}); err == nil {
		t.Error("NewPlacement accepted node out of range")
	}
	if _, err := NewPlacement(m, []NodeID{0, -1}); err == nil {
		t.Error("NewPlacement accepted negative node")
	}
}

func TestUsedNodes(t *testing.T) {
	m := &Machine{Name: "t", Nodes: 10}
	p, err := NewPlacement(m, []NodeID{0, 0, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	used := p.UsedNodes()
	want := []NodeID{0, 3, 7}
	if len(used) != len(want) {
		t.Fatalf("UsedNodes = %v, want %v", used, want)
	}
	for i := range used {
		if used[i] != want[i] {
			t.Fatalf("UsedNodes = %v, want %v", used, want)
		}
	}
}

func TestCorrelatedNodes(t *testing.T) {
	m := &Machine{Name: "t", Nodes: 8, PowerPairs: true, NodesPerRack: 4}
	p, err := Block(m, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := p.CorrelatedNodes(2, false)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("CorrelatedNodes(2, no rack) = %v, want [2 3]", got)
	}
	got = p.CorrelatedNodes(2, true)
	if len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Errorf("CorrelatedNodes(2, rack) = %v, want [0 1 2 3]", got)
	}
}

func TestSubset(t *testing.T) {
	m := Tsubame2()
	sub, err := m.Subset(64)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Nodes != 64 || sub.SSDWriteBps != m.SSDWriteBps {
		t.Errorf("Subset lost parameters: %+v", sub)
	}
	if _, err := m.Subset(0); err == nil {
		t.Error("Subset accepted 0 nodes")
	}
	if _, err := m.Subset(2000); err == nil {
		t.Error("Subset accepted more nodes than the machine has")
	}
}

// Property: for any block placement, LocalIndex(r) == r mod procsPerNode and
// every node's rank list is consecutive.
func TestBlockPlacementProperty(t *testing.T) {
	f := func(nodesRaw, ppnRaw uint8) bool {
		nodes := int(nodesRaw%32) + 1
		ppn := int(ppnRaw%8) + 1
		m := &Machine{Name: "q", Nodes: nodes}
		nranks := nodes * ppn
		p, err := Block(m, nranks, ppn)
		if err != nil {
			return false
		}
		for r := 0; r < nranks; r++ {
			if p.LocalIndex(Rank(r)) != r%ppn {
				return false
			}
			if p.NodeOf(Rank(r)) != NodeID(r/ppn) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: round-robin and block placements host the same total rank count
// per machine, and RanksOn partitions the rank space.
func TestPlacementPartitionProperty(t *testing.T) {
	f := func(nodesRaw, ranksRaw uint8) bool {
		nodes := int(nodesRaw%16) + 1
		nranks := int(ranksRaw%64) + 1
		m := &Machine{Name: "q", Nodes: nodes}
		p, err := RoundRobin(m, nranks, nodes)
		if err != nil {
			return false
		}
		seen := make(map[Rank]bool)
		for n := 0; n < nodes; n++ {
			for _, r := range p.RanksOn(NodeID(n)) {
				if seen[r] {
					return false // duplicated rank
				}
				seen[r] = true
				if p.NodeOf(r) != NodeID(n) {
					return false
				}
			}
		}
		return len(seen) == nranks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestUsedNodesCached pins the construction-time cache: repeated calls
// return the same ascending list (and the same backing array — no per-call
// scan of every node).
func TestUsedNodesCached(t *testing.T) {
	m := &Machine{Name: "t", Nodes: 1024}
	p, err := RoundRobin(m, 48, 16) // nodes 0..15 used, 16..1023 empty
	if err != nil {
		t.Fatal(err)
	}
	used := p.UsedNodes()
	if len(used) != 16 {
		t.Fatalf("UsedNodes = %v, want 16 nodes", used)
	}
	for i, n := range used {
		if n != NodeID(i) {
			t.Fatalf("UsedNodes[%d] = %d, want %d (ascending)", i, n, i)
		}
	}
	again := p.UsedNodes()
	if &again[0] != &used[0] {
		t.Error("UsedNodes rebuilt its slice; expected the construction-time cache")
	}
}

// referencePlacement is the pre-refactor [][]Rank layout, rebuilt naively:
// the behavioral oracle for the flat-span Placement.
type referencePlacement struct {
	node  []NodeID
	ranks [][]Rank
}

func newReferencePlacement(nodes int, nodeOf []NodeID) *referencePlacement {
	ref := &referencePlacement{node: nodeOf, ranks: make([][]Rank, nodes)}
	for r, n := range nodeOf {
		ref.ranks[n] = append(ref.ranks[n], Rank(r))
	}
	for n := range ref.ranks {
		sort.Slice(ref.ranks[n], func(i, j int) bool { return ref.ranks[n][i] < ref.ranks[n][j] })
	}
	return ref
}

// Property: the CSR-span Placement is behaviorally identical to the old
// per-node slice layout on arbitrary (including non-contiguous and
// gap-heavy) rank→node assignments.
func TestPlacementSparseEquivalence(t *testing.T) {
	f := func(seed int64, nodesRaw, ranksRaw uint8) bool {
		nodes := int(nodesRaw%48) + 2
		nranks := int(ranksRaw%96) + 1
		rng := rand.New(rand.NewSource(seed))
		nodeOf := make([]NodeID, nranks)
		for r := range nodeOf {
			// Bias toward low nodes so some nodes stay empty (gaps).
			nodeOf[r] = NodeID(rng.Intn(nodes/2 + 1))
		}
		m := &Machine{Name: "eq", Nodes: nodes}
		p, err := NewPlacement(m, nodeOf)
		if err != nil {
			return false
		}
		ref := newReferencePlacement(nodes, nodeOf)
		maxProcs := 0
		var wantUsed []NodeID
		for n := 0; n < nodes; n++ {
			got, want := p.RanksOn(NodeID(n)), ref.ranks[n]
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			if p.CountOn(NodeID(n)) != len(want) {
				return false
			}
			if len(want) > maxProcs {
				maxProcs = len(want)
			}
			if len(want) > 0 {
				wantUsed = append(wantUsed, NodeID(n))
			}
		}
		if p.MaxProcsPerNode() != maxProcs {
			return false
		}
		used := p.UsedNodes()
		if len(used) != len(wantUsed) {
			return false
		}
		for i := range used {
			if used[i] != wantUsed[i] {
				return false
			}
		}
		for r := 0; r < nranks; r++ {
			if p.NodeOf(Rank(r)) != ref.node[r] {
				return false
			}
			// Reference LocalIndex: linear scan of the node's slice.
			want := -1
			for i, rr := range ref.ranks[ref.node[r]] {
				if rr == Rank(r) {
					want = i
					break
				}
			}
			if p.LocalIndex(Rank(r)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
