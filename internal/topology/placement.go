package topology

import (
	"fmt"
	"sort"
)

// Placement maps application ranks to compute nodes. It is the bridge
// between the logical process space (ranks) and the physical machine
// (nodes): clustering strategies need it to know which processes die
// together and which communications stay inside a node.
//
// Per-node rank lists live in one flat backing array with per-node offset
// spans (CSR-style): 8 bytes of offset per node instead of a 24-byte slice
// header plus its own allocation. At exascale node counts the old [][]Rank
// layout was the last dense per-node structure in the pipeline; the spans
// also build by counting sort in O(ranks + nodes) with no per-node sorting.
type Placement struct {
	machine  *Machine
	node     []NodeID // node[r] = node hosting rank r
	rankPtr  []int64  // node n's ranks occupy rankData[rankPtr[n]:rankPtr[n+1]]
	rankData []Rank   // all ranks grouped by node, ascending within a node
	used     []NodeID // nodes hosting at least one rank, ascending (cached)
}

// NewPlacement builds a placement from an explicit rank→node assignment.
// Every referenced node must exist in the machine.
func NewPlacement(m *Machine, nodeOf []NodeID) (*Placement, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	p := &Placement{
		machine:  m,
		node:     make([]NodeID, len(nodeOf)),
		rankPtr:  make([]int64, m.Nodes+1),
		rankData: make([]Rank, len(nodeOf)),
	}
	for r, n := range nodeOf {
		if n < 0 || int(n) >= m.Nodes {
			return nil, fmt.Errorf("topology: rank %d placed on node %d; machine has %d nodes", r, n, m.Nodes)
		}
		p.node[r] = n
		p.rankPtr[n+1]++
	}
	for n := 0; n < m.Nodes; n++ {
		p.rankPtr[n+1] += p.rankPtr[n]
	}
	// Stable counting-sort fill: ranks ascend, so each node's span comes
	// out ascending with no per-node sort.
	fill := make([]int64, m.Nodes)
	for r, n := range nodeOf {
		p.rankData[p.rankPtr[n]+fill[n]] = Rank(r)
		fill[n]++
	}
	p.refreshUsed()
	return p, nil
}

// refreshUsed recomputes the cached used-node list. Placements are immutable
// after NewPlacement today; any future mutating method must call this so
// UsedNodes stays O(1) per call instead of O(total nodes).
func (p *Placement) refreshUsed() {
	p.used = p.used[:0]
	for n := 0; n+1 < len(p.rankPtr); n++ {
		if p.rankPtr[n+1] > p.rankPtr[n] {
			p.used = append(p.used, NodeID(n))
		}
	}
}

// Block places ranks in consecutive blocks of procsPerNode per node:
// ranks 0..procsPerNode-1 on node 0, and so on. This is the topology-aware
// positioning the paper's tsunami runs use (consecutive MPI ranks share a
// node to maximize intra-node communication).
func Block(m *Machine, nranks, procsPerNode int) (*Placement, error) {
	if procsPerNode <= 0 {
		return nil, fmt.Errorf("topology: procsPerNode must be positive, got %d", procsPerNode)
	}
	need := (nranks + procsPerNode - 1) / procsPerNode
	if need > m.Nodes {
		return nil, fmt.Errorf("topology: %d ranks at %d per node need %d nodes; machine has %d",
			nranks, procsPerNode, need, m.Nodes)
	}
	nodeOf := make([]NodeID, nranks)
	for r := range nodeOf {
		nodeOf[r] = NodeID(r / procsPerNode)
	}
	return NewPlacement(m, nodeOf)
}

// RoundRobin places consecutive ranks on consecutive nodes, wrapping around:
// rank r lands on node r mod usedNodes. It is the adversarial placement for
// locality but the friendly one for erasure-code distribution.
func RoundRobin(m *Machine, nranks, usedNodes int) (*Placement, error) {
	if usedNodes <= 0 || usedNodes > m.Nodes {
		return nil, fmt.Errorf("topology: RoundRobin over %d nodes; machine has %d", usedNodes, m.Nodes)
	}
	nodeOf := make([]NodeID, nranks)
	for r := range nodeOf {
		nodeOf[r] = NodeID(r % usedNodes)
	}
	return NewPlacement(m, nodeOf)
}

// Machine returns the machine this placement maps onto.
func (p *Placement) Machine() *Machine { return p.machine }

// NumRanks returns the number of placed ranks.
func (p *Placement) NumRanks() int { return len(p.node) }

// NodeOf returns the node hosting rank r.
func (p *Placement) NodeOf(r Rank) NodeID { return p.node[r] }

// RanksOn returns the ranks hosted on node n in ascending order — a view
// into the flat backing array, allocation-free. The caller must not modify
// the returned slice.
func (p *Placement) RanksOn(n NodeID) []Rank { return p.rankData[p.rankPtr[n]:p.rankPtr[n+1]] }

// CountOn returns the number of ranks hosted on node n in O(1), without
// materializing the span.
func (p *Placement) CountOn(n NodeID) int { return int(p.rankPtr[n+1] - p.rankPtr[n]) }

// UsedNodes returns the nodes that host at least one rank, ascending. The
// list is computed once at construction — reliability-model setup calls this
// per evaluation, and a scan of all nodes per call is O(total nodes) at
// exascale node counts. The caller must not modify the returned slice.
func (p *Placement) UsedNodes() []NodeID { return p.used }

// MaxProcsPerNode returns the largest number of ranks on any node.
func (p *Placement) MaxProcsPerNode() int {
	max := 0
	for n := 0; n+1 < len(p.rankPtr); n++ {
		if c := int(p.rankPtr[n+1] - p.rankPtr[n]); c > max {
			max = c
		}
	}
	return max
}

// SameNode reports whether two ranks are hosted on the same node.
func (p *Placement) SameNode(a, b Rank) bool { return p.node[a] == p.node[b] }

// LocalIndex returns the position of rank r among the ranks of its node
// (0-based). With block placement and k procs per node this is r mod k.
// The hierarchical L2 clustering groups the i-th process of each node.
// Spans are ascending, so the lookup is a binary search.
func (p *Placement) LocalIndex(r Rank) int {
	rs := p.RanksOn(p.node[r])
	i := sort.Search(len(rs), func(i int) bool { return rs[i] >= r })
	if i < len(rs) && rs[i] == r {
		return i
	}
	return -1 // unreachable for ranks built through NewPlacement
}

// CorrelatedNodes returns every node whose failure is correlated with node
// n's: the power-supply partner and, when racks are modeled with
// includeRack, the rest of n's rack.
func (p *Placement) CorrelatedNodes(n NodeID, includeRack bool) []NodeID {
	set := map[NodeID]bool{}
	for _, g := range p.machine.PowerGroup(n) {
		set[g] = true
	}
	if includeRack && p.machine.NodesPerRack > 0 {
		for _, g := range p.machine.RackNodes(p.machine.Rack(n)) {
			set[g] = true
		}
	}
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
