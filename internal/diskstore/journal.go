package diskstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// Journal record wire format, designed so a crash mid-append can corrupt
// at most the tail, and the tail is detectably corrupt:
//
//	magic "HCJL" (4) | kind (1) | payload len (4, BE) | crc32(payload) (4, BE) | payload
//
// Records are appended with a single Write followed by Sync; a torn write
// leaves a record whose length or CRC does not check out, and OpenJournal
// quarantines everything from the first bad byte onward into
// <path>.bad and truncates the journal back to the last good record.
var journalMagic = [4]byte{'H', 'C', 'J', 'L'}

const journalHeaderLen = 13

// maxJournalPayload rejects absurd length fields during recovery parsing
// (a corrupt length would otherwise read as a multi-gigabyte record).
const maxJournalPayload = 64 << 20

// Record is one journal entry. Kind is caller-defined; Payload is opaque
// to the journal and CRC-protected on disk.
type Record struct {
	Kind    byte
	Payload []byte
}

// Journal is an append-only, checksummed record log. Safe for concurrent
// appends.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// OpenJournal opens (creating if needed) the journal at path and replays
// it, returning every intact record in append order. A corrupt tail —
// torn final append, disk corruption — is copied to <path>.bad and the
// journal is truncated back to the last intact record, so recovery always
// starts from a self-consistent log.
func OpenJournal(path string) (*Journal, []Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("diskstore: journal: %w", err)
	}

	var recs []Record
	off := 0
	for off < len(raw) {
		rec, n, ok := parseRecord(raw[off:])
		if !ok {
			break
		}
		recs = append(recs, rec)
		off += n
	}
	if off < len(raw) {
		// Corrupt tail: preserve the evidence, then truncate past it.
		if werr := os.WriteFile(path+QuarantineExt, raw[off:], 0o644); werr != nil {
			return nil, nil, fmt.Errorf("diskstore: journal: quarantine tail: %w", werr)
		}
		if terr := os.Truncate(path, int64(off)); terr != nil {
			return nil, nil, fmt.Errorf("diskstore: journal: truncate tail: %w", terr)
		}
	}

	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("diskstore: journal: %w", err)
	}
	return &Journal{path: path, f: f}, recs, nil
}

// parseRecord decodes one record from the front of raw, returning the
// record, its encoded length, and whether it was intact.
func parseRecord(raw []byte) (Record, int, bool) {
	if len(raw) < journalHeaderLen {
		return Record{}, 0, false
	}
	if string(raw[:4]) != string(journalMagic[:]) {
		return Record{}, 0, false
	}
	kind := raw[4]
	n := binary.BigEndian.Uint32(raw[5:9])
	crc := binary.BigEndian.Uint32(raw[9:13])
	if n > maxJournalPayload || len(raw) < journalHeaderLen+int(n) {
		return Record{}, 0, false
	}
	payload := raw[journalHeaderLen : journalHeaderLen+int(n)]
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, 0, false
	}
	return Record{Kind: kind, Payload: append([]byte(nil), payload...)}, journalHeaderLen + int(n), true
}

func encodeRecord(kind byte, payload []byte) []byte {
	buf := make([]byte, journalHeaderLen+len(payload))
	copy(buf, journalMagic[:])
	buf[4] = kind
	binary.BigEndian.PutUint32(buf[5:9], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[9:13], crc32.ChecksumIEEE(payload))
	copy(buf[journalHeaderLen:], payload)
	return buf
}

// Append durably appends one record: a single Write (so a crash tears at
// most this record, which the CRC catches on the next open) followed by
// Sync (so an acknowledged append survives power loss).
func (j *Journal) Append(kind byte, payload []byte) error {
	buf := encodeRecord(kind, payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("diskstore: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("diskstore: journal append: %w", err)
	}
	return nil
}

// Rewrite atomically replaces the journal's contents with recs (compaction:
// drop records that no longer matter). The replacement is written to a
// temp file, synced, and renamed over the journal, then the append handle
// is reopened on the new inode.
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()

	tmp, err := os.CreateTemp(filepath.Dir(j.path), "journal-*")
	if err != nil {
		return fmt.Errorf("diskstore: journal rewrite: %w", err)
	}
	defer os.Remove(tmp.Name())
	for _, r := range recs {
		if _, err := tmp.Write(encodeRecord(r.Kind, r.Payload)); err != nil {
			tmp.Close()
			return fmt.Errorf("diskstore: journal rewrite: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("diskstore: journal rewrite: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("diskstore: journal rewrite: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("diskstore: journal rewrite: %w", err)
	}
	// The rename replaced the inode the append handle points at.
	f, err := os.OpenFile(j.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: journal rewrite: %w", err)
	}
	old := j.f
	j.f = f
	_ = old.Close()
	return nil
}

// Close closes the append handle. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
