package diskstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hierclust/internal/faultinject"
)

func openTest(t *testing.T, dir string, max int64, o func(*Options)) *Store {
	t.Helper()
	opts := Options{
		Dir:         dir,
		Ext:         ".blob",
		MaxBytes:    max,
		Checksum:    true,
		FaultPrefix: "diskstoretest",
		ProbeEvery:  time.Hour, // tests opt in to probing explicitly
	}
	if o != nil {
		o(&opts)
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), 1<<20, nil)
	want := []byte("payload bytes")
	s.Put("a", want)
	got, ok := s.Get("a")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, want)
	}
	// The returned slice must not alias store or caller memory.
	got[0] = 'X'
	again, ok := s.Get("a")
	if !ok || !bytes.Equal(again, want) {
		t.Fatalf("Get after mutation = %q, %v; want %q, true", again, ok, want)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) reported a hit")
	}
}

func TestStoreRestartReindex(t *testing.T) {
	dir := t.TempDir()
	s1 := openTest(t, dir, 1<<20, nil)
	s1.Put("a", []byte("alpha"))
	s1.Put("b", []byte("beta"))

	// A fresh Store over the same directory sees both blobs.
	s2 := openTest(t, dir, 1<<20, nil)
	if st := s2.Stats(); st.Entries != 2 {
		t.Fatalf("Entries after reopen = %d; want 2", st.Entries)
	}
	for stem, want := range map[string]string{"a": "alpha", "b": "beta"} {
		got, ok := s2.Get(stem)
		if !ok || string(got) != want {
			t.Fatalf("Get(%q) after reopen = %q, %v; want %q", stem, got, ok, want)
		}
	}
}

func TestStoreEvictsToBudget(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	sz := int64(blobHeaderLen + len(payload))
	s := openTest(t, dir, 2*sz, nil)
	s.Put("a", payload)
	s.Put("b", payload)
	s.Put("c", payload) // evicts a (least recently used)
	if st := s.Stats(); st.Entries != 2 || st.Bytes != 2*sz {
		t.Fatalf("Stats = %+v; want 2 entries, %d bytes", st, 2*sz)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("evicted blob still served")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.blob"))
	if len(files) != 2 {
		t.Fatalf("disk has %d blobs; want 2", len(files))
	}
}

func TestStoreQuarantinesCorruptChecksum(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 1<<20, nil)
	s.Put("a", []byte("good bytes"))

	garbage := []byte("HCDS1 corrupted beyond the header")
	if err := os.WriteFile(filepath.Join(dir, "a.blob"), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("corrupt blob served as a hit")
	}
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d; want 1", st.Quarantined)
	}
	if st.ReadErrors != 0 {
		t.Fatalf("ReadErrors = %d; corruption is not an IO error", st.ReadErrors)
	}
	if st.Degraded {
		t.Fatal("corruption degraded the store; only IO failures should")
	}
	bad, err := os.ReadFile(filepath.Join(dir, "a.blob"+QuarantineExt))
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if !bytes.Equal(bad, garbage) {
		t.Fatal("quarantine file does not preserve the corrupt bytes")
	}
	if _, err := os.Stat(filepath.Join(dir, "a.blob")); !os.IsNotExist(err) {
		t.Fatal("corrupt blob still present under its real name")
	}
	// The stem is rebuildable.
	s.Put("a", []byte("rebuilt"))
	if got, ok := s.Get("a"); !ok || string(got) != "rebuilt" {
		t.Fatalf("Get after rebuild = %q, %v", got, ok)
	}
}

func TestStoreDegradesOnWriteFaultsAndRecoversViaProbe(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	s := openTest(t, dir, 1<<20, func(o *Options) { o.ProbeEvery = 5 * time.Millisecond })

	faultinject.Arm("diskstoretest.write", faultinject.Fault{Kind: faultinject.KindError})
	s.Put("a", []byte("alpha"))
	st := s.Stats()
	if st.WriteErrors != OpAttempts {
		t.Fatalf("WriteErrors = %d; want %d", st.WriteErrors, OpAttempts)
	}
	if !st.Degraded {
		t.Fatal("store not degraded after a retried-out write")
	}
	if st.MemEntries != 1 {
		t.Fatalf("MemEntries = %d; want 1 (fallback holds the blob)", st.MemEntries)
	}
	if got, ok := s.Get("a"); !ok || string(got) != "alpha" {
		t.Fatalf("degraded Get = %q, %v; want alpha via fallback", got, ok)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*")); len(files) != 0 {
		t.Fatalf("degraded store left files on disk: %v", files)
	}

	faultinject.DisarmAll()
	time.Sleep(10 * time.Millisecond)
	s.Put("b", []byte("beta")) // probe: disk healthy again
	st = s.Stats()
	if st.Degraded {
		t.Fatal("store still degraded after a successful probe write")
	}
	if st.Entries != 1 {
		t.Fatalf("Entries = %d; want 1 (the probe blob)", st.Entries)
	}
	if got, ok := s.Get("b"); !ok || string(got) != "beta" {
		t.Fatalf("post-recovery Get = %q, %v", got, ok)
	}
}

func TestStoreReadFaultKeepsIndex(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	s := openTest(t, dir, 1<<20, func(o *Options) { o.DegradeAfter = 100 })
	s.Put("a", []byte("alpha"))

	faultinject.Arm("diskstoretest.read", faultinject.Fault{Kind: faultinject.KindError})
	if _, ok := s.Get("a"); ok {
		t.Fatal("Get served a hit through an injected read fault")
	}
	st := s.Stats()
	if st.ReadErrors != OpAttempts {
		t.Fatalf("ReadErrors = %d; want %d", st.ReadErrors, OpAttempts)
	}
	if st.Entries != 1 {
		t.Fatalf("Entries = %d; transient read failure must keep the index", st.Entries)
	}
	if st.Degraded {
		t.Fatal("degraded despite DegradeAfter=100")
	}
	faultinject.DisarmAll()
	if got, ok := s.Get("a"); !ok || string(got) != "alpha" {
		t.Fatalf("Get after disarm = %q, %v", got, ok)
	}
}

func TestStoreRenameFaultCleansTemp(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	s := openTest(t, dir, 1<<20, func(o *Options) { o.DegradeAfter = 100 })

	faultinject.Arm("diskstoretest.rename", faultinject.Fault{Kind: faultinject.KindError})
	s.Put("a", []byte("alpha"))
	if st := s.Stats(); st.WriteErrors != OpAttempts || st.Entries != 0 {
		t.Fatalf("Stats = %+v; want %d write errors, 0 entries", s.Stats(), OpAttempts)
	}
	if temps, _ := filepath.Glob(filepath.Join(dir, "put-*")); len(temps) != 0 {
		t.Fatalf("failed writes left temp files: %v", temps)
	}
	// The blob still serves from the fallback, bit-identical.
	if got, ok := s.Get("a"); !ok || string(got) != "alpha" {
		t.Fatalf("fallback Get = %q, %v", got, ok)
	}
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(byte(i%2+1), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("replayed %d records; want 5", len(recs))
	}
	for i, r := range recs {
		if r.Kind != byte(i%2+1) || string(r.Payload) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("record %d = kind %d payload %q", i, r.Kind, r.Payload)
		}
	}
}

func TestJournalCorruptTailQuarantinedAndTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(1, []byte("first"))
	j.Append(1, []byte("second"))
	j.Close()

	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn final append: a header promising more bytes than
	// the file holds.
	torn := append(append([]byte(nil), intact...), encodeRecord(1, []byte("third incomplete"))[:journalHeaderLen+4]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Payload) != "first" || string(recs[1].Payload) != "second" {
		t.Fatalf("replay after torn tail = %d records", len(recs))
	}
	bad, err := os.ReadFile(path + QuarantineExt)
	if err != nil {
		t.Fatalf("quarantined tail: %v", err)
	}
	if !bytes.Equal(bad, torn[len(intact):]) {
		t.Fatal("quarantined tail does not preserve the torn bytes")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, intact) {
		t.Fatal("journal not truncated back to the last intact record")
	}
}

func TestJournalCorruptCRCTruncatesFromBadRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(1, []byte("keep me"))
	j.Close()
	intact, _ := os.ReadFile(path)

	bad := encodeRecord(2, []byte("bitrot victim"))
	bad[len(bad)-1] ^= 0xFF // flip a payload bit; CRC now fails
	tail := append(bad, encodeRecord(1, []byte("after the corruption"))...)
	if err := os.WriteFile(path, append(append([]byte(nil), intact...), tail...), 0o644); err != nil {
		t.Fatal(err)
	}

	// Everything from the first bad record onward is dropped, even intact
	// records after it — order is the journal's semantic content.
	_, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "keep me" {
		t.Fatalf("replay = %d records; want just the pre-corruption one", len(recs))
	}
}

func TestJournalRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		j.Append(1, []byte(fmt.Sprintf("r%d", i)))
	}
	if err := j.Rewrite([]Record{{Kind: 1, Payload: []byte("survivor")}}); err != nil {
		t.Fatal(err)
	}
	// The append handle must follow the rewrite onto the new inode.
	if err := j.Append(2, []byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Payload) != "survivor" || string(recs[1].Payload) != "post-compact" {
		t.Fatalf("replay after rewrite = %+v", recs)
	}
}
