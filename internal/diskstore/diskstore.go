// Package diskstore is the shared hardened disk persistence layer behind
// hierclust's durable caches and the hcserve sweep journal. It extracts
// the degrade-don't-fail discipline the disk trace cache pioneered so
// every on-disk subsystem inherits the same guarantees:
//
//   - Atomic writes: every file lands via temp file + rename, so a crash
//     mid-write never leaves a half-written blob under its real name.
//   - Retried transient IO: each disk operation gets capped-backoff
//     retries, with every failed attempt counted (Stats.ReadErrors /
//     WriteErrors) so metrics move before users notice.
//   - Quarantine, not delete: corrupt files are renamed to <name>.bad —
//     the bytes are the only evidence of how they got corrupted.
//   - Degraded mode: after enough consecutive failed attempts the store
//     goes memory-only (a bounded fallback LRU keeps serving the hottest
//     entries) and probes the disk periodically until a write succeeds.
//   - Optional checksum framing: Options.Checksum wraps payloads in a
//     magic + CRC32 header so corruption is detected at read time without
//     the caller having to parse anything. Self-validating formats (the
//     HCTR trace serialization) can opt out and report corruption back
//     via Quarantine.
//
// The Journal in this package shares the same philosophy for append-only
// record logs: checksummed records, single-write appends, and a corrupt
// tail that is quarantined and truncated instead of poisoning recovery.
package diskstore

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hierclust/internal/faultinject"
)

const (
	// QuarantineExt is appended to a corrupt file's full name, preserving
	// the original extension (cache.hctr -> cache.hctr.bad).
	QuarantineExt = ".bad"

	// OpAttempts is how many times a transiently failing disk operation is
	// tried before the store gives up on it.
	OpAttempts = 3

	retryBackoff    = 2 * time.Millisecond
	retryBackoffMax = 8 * time.Millisecond

	// DefaultProbeEvery is how often a degraded store lets one write
	// through to test whether the disk recovered.
	DefaultProbeEvery = 30 * time.Second

	// DefaultMemFallback bounds the degraded-mode memory LRU, in entries.
	DefaultMemFallback = 32
)

// blobMagic opens every checksum-framed blob: "HCDS" + format version 1.
var blobMagic = [5]byte{'H', 'C', 'D', 'S', '1'}

// blobHeaderLen is magic (5) + crc32 (4) + payload length (4).
const blobHeaderLen = len(blobMagic) + 8

// Options configures Open.
type Options struct {
	// Dir is the store's directory, created if needed.
	Dir string
	// Ext is the filename extension of stored blobs, dot included
	// (".hctr"). Files without it are ignored by the restart re-index.
	Ext string
	// MaxBytes bounds the stored size; least-recently-used blobs are
	// evicted past it. Must be positive.
	MaxBytes int64
	// Checksum wraps payloads in a magic+CRC32 header so Get detects
	// corruption itself (quarantining the file and reporting a miss).
	// Leave false for self-validating payload formats, whose callers
	// signal corruption via Quarantine instead.
	Checksum bool
	// FaultPrefix, when non-empty, names the store's fault-injection
	// points: <prefix>.read, <prefix>.write, and <prefix>.rename fire at
	// the top of each read attempt, write attempt, and rename.
	FaultPrefix string
	// DegradeAfter is how many consecutive failed attempts flip the store
	// to memory-only; <= 0 picks OpAttempts (one retried-out operation).
	DegradeAfter int
	// ProbeEvery is the degraded-mode disk probe interval; <= 0 picks
	// DefaultProbeEvery.
	ProbeEvery time.Duration
	// MemFallback bounds the degraded-mode memory LRU in entries; <= 0
	// picks DefaultMemFallback.
	MemFallback int
}

// Stats is the store's observability surface.
type Stats struct {
	// Entries and Bytes describe the on-disk index.
	Entries int
	Bytes   int64
	// ReadErrors and WriteErrors count failed disk operation *attempts*
	// (each retry of a transiently failing op counts).
	ReadErrors, WriteErrors int64
	// Quarantined counts corrupt files renamed to .bad.
	Quarantined int64
	// Degraded reports memory-only fallback mode.
	Degraded bool
	// MemEntries is the degraded-mode fallback's entry count.
	MemEntries int
}

// Store is a size-bounded directory of blobs keyed by filename stem, with
// the retry/quarantine/degrade hardening described in the package comment.
// All methods are safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	ext    string
	max    int64
	total  int64
	ll     *list.List // front = most recently used
	byStem map[string]*list.Element

	checksum    bool
	faultRead   string
	faultWrite  string
	faultRename string

	degradeAfter int
	probeEvery   time.Duration
	consecFails  atomic.Int32
	degraded     atomic.Bool
	degradedAt   atomic.Int64 // unix nanos; advanced when a probe is claimed
	readErrs     atomic.Int64
	writeErrs    atomic.Int64
	quarantined  atomic.Int64
	mem          *memLRU
}

type storeEntry struct {
	stem string
	size int64
}

// Open opens (creating if needed) a store rooted at o.Dir. Existing blobs
// are re-indexed oldest-first by modification time — the restart-survival
// path — and evicted down to the byte budget; quarantined .bad files and
// foreign extensions are ignored.
func Open(o Options) (*Store, error) {
	if o.MaxBytes <= 0 {
		return nil, fmt.Errorf("diskstore: MaxBytes must be positive")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s := &Store{
		dir:          o.Dir,
		ext:          o.Ext,
		max:          o.MaxBytes,
		ll:           list.New(),
		byStem:       map[string]*list.Element{},
		checksum:     o.Checksum,
		degradeAfter: o.DegradeAfter,
		probeEvery:   o.ProbeEvery,
	}
	if s.degradeAfter <= 0 {
		s.degradeAfter = OpAttempts
	}
	if s.probeEvery <= 0 {
		s.probeEvery = DefaultProbeEvery
	}
	memCap := o.MemFallback
	if memCap <= 0 {
		memCap = DefaultMemFallback
	}
	s.mem = newMemLRU(memCap)
	if p := o.FaultPrefix; p != "" {
		s.faultRead, s.faultWrite, s.faultRename = p+".read", p+".write", p+".rename"
	}

	entries, err := os.ReadDir(o.Dir)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	type found struct {
		stem  string
		size  int64
		mtime int64
	}
	var olds []found
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != s.ext {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		olds = append(olds, found{stem: name[:len(name)-len(s.ext)], size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(olds, func(i, j int) bool { return olds[i].mtime < olds[j].mtime })
	for _, f := range olds {
		s.byStem[f.stem] = s.ll.PushFront(&storeEntry{stem: f.stem, size: f.size})
		s.total += f.size
	}
	s.evictLocked()
	return s, nil
}

func (s *Store) path(stem string) string {
	return filepath.Join(s.dir, stem+s.ext)
}

// hitFault fires a named fault point, or nothing when the store was opened
// without a FaultPrefix.
func hitFault(name string) error {
	if name == "" {
		return nil
	}
	return faultinject.Hit(name)
}

// permanentErr marks a failure retrying cannot fix — the bytes are wrong,
// not the IO. retry returns it immediately, uncharged.
type permanentErr struct{ error }

func (e permanentErr) Unwrap() error { return e.error }

func isPermanent(err error) bool {
	if _, ok := err.(permanentErr); ok {
		return true
	}
	return os.IsNotExist(err)
}

// retry runs op with capped-backoff retries, charging every failed
// transient attempt to errs and to the consecutive-failure degradation
// trigger. Permanent failures return immediately, uncharged.
func (s *Store) retry(errs *atomic.Int64, op func() error) error {
	backoff := retryBackoff
	var err error
	for attempt := 0; attempt < OpAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff < retryBackoffMax {
				backoff *= 2
			}
		}
		err = op()
		if err == nil {
			return nil
		}
		if isPermanent(err) {
			return err
		}
		errs.Add(1)
		s.noteFailure()
	}
	return err
}

// noteFailure records one failed disk attempt; degradeAfter of them in a
// row (no intervening success) flip the store to memory-only.
func (s *Store) noteFailure() {
	if int(s.consecFails.Add(1)) >= s.degradeAfter && !s.degraded.Swap(true) {
		s.degradedAt.Store(time.Now().UnixNano())
	}
}

// noteSuccess resets the failure streak and leaves degraded mode (a disk
// success while degraded can only come from a recovery probe).
func (s *Store) noteSuccess() {
	s.consecFails.Store(0)
	s.degraded.Store(false)
}

// shouldProbe reports whether a degraded store should let this Put through
// to the disk as a recovery probe. At most one caller wins per probeEvery
// window (CAS on the timestamp), so a degraded store under load does not
// hammer a dead disk.
func (s *Store) shouldProbe() bool {
	at := s.degradedAt.Load()
	if time.Since(time.Unix(0, at)) < s.probeEvery {
		return false
	}
	return s.degradedAt.CompareAndSwap(at, time.Now().UnixNano())
}

// Get returns the blob stored under stem. Transient read failures are
// retried with backoff and fall back to the degraded-mode memory LRU; with
// Checksum on, a corrupt file is quarantined and reported as a miss; in
// degraded mode the disk is not touched at all. The returned slice is the
// caller's to keep — it never aliases store-internal memory.
func (s *Store) Get(stem string) ([]byte, bool) {
	if s.degraded.Load() {
		return s.mem.get(stem)
	}
	s.mu.Lock()
	el, ok := s.byStem[stem]
	if !ok {
		s.mu.Unlock()
		// Not on disk — but a Put during an earlier failure window may
		// have landed the blob in the memory fallback.
		return s.mem.get(stem)
	}
	s.ll.MoveToFront(el)
	s.mu.Unlock()

	var raw []byte
	err := s.retry(&s.readErrs, func() error {
		if err := hitFault(s.faultRead); err != nil {
			return err
		}
		b, err := os.ReadFile(s.path(stem))
		if err != nil {
			return err
		}
		raw = b
		return nil
	})
	switch {
	case err == nil:
		s.noteSuccess()
		payload, ok := s.unframe(raw)
		if !ok {
			// Framing says the bytes are corrupt: a content problem, not a
			// disk-health problem.
			s.Quarantine(stem)
			return s.mem.get(stem)
		}
		return payload, true
	case os.IsNotExist(err):
		// Vanished behind our back (concurrent cleanup): index drift, not
		// a disk fault.
		s.dropIndex(stem)
	default:
		// Transient IO that survived every retry (already counted). Keep
		// the index entry — the bytes are probably fine, the IO was not.
	}
	return s.mem.get(stem)
}

// frame wraps data in the checksum header (or returns it as-is when the
// store was opened without Checksum).
func (s *Store) frame(data []byte) []byte {
	if !s.checksum {
		return data
	}
	out := make([]byte, blobHeaderLen+len(data))
	copy(out, blobMagic[:])
	binary.BigEndian.PutUint32(out[len(blobMagic):], crc32.ChecksumIEEE(data))
	binary.BigEndian.PutUint32(out[len(blobMagic)+4:], uint32(len(data)))
	copy(out[blobHeaderLen:], data)
	return out
}

// unframe validates and strips the checksum header.
func (s *Store) unframe(raw []byte) ([]byte, bool) {
	if !s.checksum {
		return raw, true
	}
	if len(raw) < blobHeaderLen || string(raw[:len(blobMagic)]) != string(blobMagic[:]) {
		return nil, false
	}
	crc := binary.BigEndian.Uint32(raw[len(blobMagic):])
	n := binary.BigEndian.Uint32(raw[len(blobMagic)+4:])
	payload := raw[blobHeaderLen:]
	if uint32(len(payload)) != n || crc32.ChecksumIEEE(payload) != crc {
		return nil, false
	}
	return payload, true
}

// Put stores data under stem: framed, written to a temp file, renamed into
// place, then LRU-evicted down to the byte budget. Transient write
// failures are retried with backoff; a Put that still fails keeps the blob
// in the memory fallback so the work behind it is not lost. In degraded
// mode the disk is skipped entirely except for one recovery probe per
// probe interval. Stored blobs are deterministic per stem: a stem already
// present is left untouched.
func (s *Store) Put(stem string, data []byte) {
	if s.degraded.Load() && !s.shouldProbe() {
		s.mem.put(stem, data)
		return
	}
	s.mu.Lock()
	_, exists := s.byStem[stem]
	s.mu.Unlock()
	if exists {
		return
	}

	blob := s.frame(data)
	err := s.retry(&s.writeErrs, func() error {
		return s.writeAttempt(stem, blob)
	})
	if err != nil {
		s.mem.put(stem, data)
		return
	}
	s.noteSuccess()

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byStem[stem]; dup {
		return // concurrent Put of the same stem; file contents identical
	}
	s.byStem[stem] = s.ll.PushFront(&storeEntry{stem: stem, size: int64(len(blob))})
	s.total += int64(len(blob))
	s.evictLocked()
}

// writeAttempt is one try at writing a blob: temp file, write, close,
// rename into place. The write error and the rename error are tracked as
// separate fault points, and the temp file is removed on every failure
// path so failed writes leave nothing behind.
func (s *Store) writeAttempt(stem string, blob []byte) error {
	if err := hitFault(s.faultWrite); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return fmt.Errorf("create temp: %w", err)
	}
	_, err = tmp.Write(blob)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("write: %w", err)
	}
	if err := hitFault(s.faultRename); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("rename: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(stem)); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("rename: %w", err)
	}
	return nil
}

// dropIndex removes a stem from the index only; the caller decides what
// happens to the file.
func (s *Store) dropIndex(stem string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byStem[stem]; ok {
		s.total -= el.Value.(*storeEntry).size
		s.ll.Remove(el)
		delete(s.byStem, stem)
	}
}

// Quarantine moves a corrupt blob aside as <stem><ext>.bad instead of
// deleting it — destroying the only evidence of how data got corrupted is
// how storage bugs stay unfixed. Callers of non-checksummed stores invoke
// it when their own decode fails; checksummed stores invoke it themselves.
func (s *Store) Quarantine(stem string) {
	s.dropIndex(stem)
	if err := os.Rename(s.path(stem), s.path(stem)+QuarantineExt); err != nil {
		// Cannot preserve it; remove so the stem is rebuildable.
		_ = os.Remove(s.path(stem))
	}
	s.quarantined.Add(1)
}

// evictLocked removes least-recently-used blobs until total <= max, always
// keeping at least the most recent entry (a single blob larger than the
// budget still stores — evicting it would defeat the point).
func (s *Store) evictLocked() {
	for s.total > s.max && s.ll.Len() > 1 {
		oldest := s.ll.Back()
		e := oldest.Value.(*storeEntry)
		s.ll.Remove(oldest)
		delete(s.byStem, e.stem)
		s.total -= e.size
		_ = os.Remove(s.path(e.stem))
	}
}

// Stats returns the index size and the disk-health counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n, b := s.ll.Len(), s.total
	s.mu.Unlock()
	return Stats{
		Entries:     n,
		Bytes:       b,
		ReadErrors:  s.readErrs.Load(),
		WriteErrors: s.writeErrs.Load(),
		Quarantined: s.quarantined.Load(),
		Degraded:    s.degraded.Load(),
		MemEntries:  s.mem.len(),
	}
}

// memLRU is the degraded-mode fallback: a bounded stem -> bytes LRU.
// Both put and get copy, so fallback contents never alias caller memory.
type memLRU struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	byK map[string]*list.Element
}

type memEntry struct {
	stem string
	data []byte
}

func newMemLRU(capacity int) *memLRU {
	return &memLRU{cap: capacity, ll: list.New(), byK: map[string]*list.Element{}}
}

func (m *memLRU) get(stem string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byK[stem]
	if !ok {
		return nil, false
	}
	m.ll.MoveToFront(el)
	return append([]byte(nil), el.Value.(*memEntry).data...), true
}

func (m *memLRU) put(stem string, data []byte) {
	if m.cap <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byK[stem]; ok {
		m.ll.MoveToFront(el)
		return // deterministic per stem; keep the resident bytes
	}
	m.byK[stem] = m.ll.PushFront(&memEntry{stem: stem, data: append([]byte(nil), data...)})
	for m.ll.Len() > m.cap {
		oldest := m.ll.Back()
		m.ll.Remove(oldest)
		delete(m.byK, oldest.Value.(*memEntry).stem)
	}
}

func (m *memLRU) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}
