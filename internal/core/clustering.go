// Package core implements the paper's contribution: clustering strategies
// for coupling fast erasure-coded checkpointing (FTI) with failure
// containment (HydEE), evaluated in the four-dimensional optimization space
// of §III — message-logging overhead, recovery cost, encoding time, and
// reliability (probability of catastrophic failure).
//
// Four strategies are provided, mirroring the paper's §III–§IV:
//
//   - Naive: clusters of consecutive ranks sized for the logging/recovery
//     sweet spot (32 in the paper), used directly as encoding groups.
//   - SizeGuided: the same construction at the encoding sweet spot (8),
//     which lands whole groups on single nodes under topology-aware
//     placement and collapses reliability.
//   - Distributed: clusters striped across nodes so every member lives on
//     a different node — reliable, but logging and recovery explode.
//   - Hierarchical: the paper's two-level solution. L1 clusters come from
//     partitioning the node-based communication graph (≥4 nodes per
//     cluster); L2 encoding groups take the i-th process of each node
//     within 4-node sub-groups, giving small, homogeneous, fully
//     distributed groups inside every L1 cluster.
package core

import (
	"fmt"
	"sort"

	"hierclust/internal/graph"
	"hierclust/internal/topology"
	"hierclust/internal/trace"
)

// Clustering is a complete clustering decision: the L1 assignment drives
// the hybrid protocol (coordination + containment) and the L2 groups drive
// erasure encoding. For the flat strategies (naive, size-guided,
// distributed) the encoding groups are the L1 clusters themselves, which is
// exactly the coupling constraint of §III ("the processes of the encoding
// clusters must checkpoint in a coordinated fashion").
type Clustering struct {
	// Name labels the strategy in reports.
	Name string
	// L1 maps each rank to its failure-containment cluster id (dense).
	L1 []int
	// Groups are the erasure-encoding groups, each a set of ranks.
	Groups [][]topology.Rank
}

// NumClusters returns the number of distinct L1 clusters.
func (c *Clustering) NumClusters() int { return graph.NumParts(c.L1) }

// ClusterMembers returns the ranks of every L1 cluster.
func (c *Clustering) ClusterMembers() [][]int { return graph.Members(c.L1) }

// Validate checks structural invariants: dense non-negative L1 ids, and
// encoding groups that are disjoint, within range, and — the coupling
// requirement — each fully contained in a single L1 cluster.
func (c *Clustering) Validate(nranks int) error {
	if len(c.L1) != nranks {
		return fmt.Errorf("core: clustering %q covers %d ranks, want %d", c.Name, len(c.L1), nranks)
	}
	for r, id := range c.L1 {
		if id < 0 {
			return fmt.Errorf("core: clustering %q: rank %d has negative cluster", c.Name, r)
		}
	}
	seen := make(map[topology.Rank]bool)
	for gi, g := range c.Groups {
		if len(g) == 0 {
			return fmt.Errorf("core: clustering %q: empty group %d", c.Name, gi)
		}
		owner := -1
		for _, r := range g {
			if int(r) < 0 || int(r) >= nranks {
				return fmt.Errorf("core: clustering %q: group %d rank %d out of range", c.Name, gi, r)
			}
			if seen[r] {
				return fmt.Errorf("core: clustering %q: rank %d in multiple groups", c.Name, r)
			}
			seen[r] = true
			if owner == -1 {
				owner = c.L1[r]
			} else if c.L1[r] != owner {
				return fmt.Errorf("core: clustering %q: group %d spans L1 clusters %d and %d",
					c.Name, gi, owner, c.L1[r])
			}
		}
	}
	return nil
}

// MaxGroupSize returns the largest encoding-group size (the encode-time
// driver).
func (c *Clustering) MaxGroupSize() int {
	max := 0
	for _, g := range c.Groups {
		if len(g) > max {
			max = len(g)
		}
	}
	return max
}

// consecutive builds clusters of `size` consecutive ranks and mirrors them
// as encoding groups.
func consecutive(name string, nranks, size int) (*Clustering, error) {
	if size <= 0 || size > nranks {
		return nil, fmt.Errorf("core: %s cluster size %d out of range 1..%d", name, size, nranks)
	}
	c := &Clustering{Name: name, L1: make([]int, nranks)}
	for r := 0; r < nranks; r++ {
		c.L1[r] = r / size
	}
	for base := 0; base < nranks; base += size {
		var g []topology.Rank
		for r := base; r < base+size && r < nranks; r++ {
			g = append(g, topology.Rank(r))
		}
		c.Groups = append(c.Groups, g)
	}
	return c, nil
}

// Naive builds the paper's naive clustering: consecutive-rank clusters at
// the message-logging/recovery sweet spot (32 in the paper's study),
// reused as encoding groups.
func Naive(nranks, size int) (*Clustering, error) {
	return consecutive(fmt.Sprintf("naive-%d", size), nranks, size)
}

// SizeGuided builds the size-guided clustering: the same consecutive-rank
// construction, sized instead for the encoding/logging trade-off (8 in the
// paper).
func SizeGuided(nranks, size int) (*Clustering, error) {
	return consecutive(fmt.Sprintf("size-guided-%d", size), nranks, size)
}

// Distributed builds the distributed clustering: cluster ids striped over
// ranks (rank r joins cluster r mod K), so under block placement every
// member of a cluster lives on a different node. Encoding groups mirror
// the clusters.
func Distributed(nranks, size int) (*Clustering, error) {
	if size <= 0 || size > nranks {
		return nil, fmt.Errorf("core: distributed cluster size %d out of range 1..%d", size, nranks)
	}
	k := nranks / size
	if k == 0 {
		k = 1
	}
	c := &Clustering{Name: fmt.Sprintf("distributed-%d", size), L1: make([]int, nranks)}
	groups := make([][]topology.Rank, k)
	for r := 0; r < nranks; r++ {
		id := r % k
		c.L1[r] = id
		groups[id] = append(groups[id], topology.Rank(r))
	}
	c.Groups = groups
	return c, nil
}

// HierOptions tunes the hierarchical construction.
type HierOptions struct {
	// MinNodesPerL1 is the minimum nodes per L1 cluster (paper: 4), which
	// guarantees room to distribute L2 groups inside each L1 cluster.
	MinNodesPerL1 int
	// TargetNodesPerL1 is the partitioner growth target; 0 means
	// MinNodesPerL1.
	TargetNodesPerL1 int
	// MaxNodesPerL1 caps L1 clusters (0 = unbounded); restart cost grows
	// with it.
	MaxNodesPerL1 int
	// SubgroupNodes is the node count of each L2 transversal sub-group
	// (paper: 4).
	SubgroupNodes int
	// AlignPowerPairs forces both nodes of every power-supply pair into
	// the same L1 cluster (the paper's §II-C2: correlated failures should
	// be contained in one cluster). It partitions the pair-quotient graph
	// instead of the node graph; it has no effect on machines without
	// power pairing.
	AlignPowerPairs bool
	// Multilevel enables the graph package's coarsen/partition/uncoarsen
	// partitioner — the scalable path for 10k+-node machines. Off (the
	// default) reproduces the single-level greedy partitioner exactly.
	Multilevel bool
	// CoarsenThreshold is the vertex count where multilevel coarsening
	// stops (0 = the partitioner default).
	CoarsenThreshold int
	// MatchingRounds bounds each coarsening level's heavy-edge matching
	// rounds (0 = the partitioner default).
	MatchingRounds int
	// PartitionWorkers bounds the partitioner's worker pool — the
	// multilevel matching/contraction phases and the refinement's
	// speculative gain scans (0 = GOMAXPROCS). The clustering never
	// depends on it.
	PartitionWorkers int
	// Cancel, when non-nil, is polled by the partitioner between
	// coarsening levels and refinement passes; once it returns true,
	// Hierarchical abandons the build and returns graph.ErrCancelled.
	// It is never consulted for results — an uncancelled build is
	// bit-identical with or without it. Not part of the scenario surface;
	// the pipeline wires a context check here.
	Cancel func() bool
}

func (o *HierOptions) normalize() {
	if o.MinNodesPerL1 <= 0 {
		o.MinNodesPerL1 = 4
	}
	if o.TargetNodesPerL1 <= 0 {
		o.TargetNodesPerL1 = o.MinNodesPerL1
	}
	if o.SubgroupNodes <= 0 {
		o.SubgroupNodes = 4
	}
}

// Hierarchical builds the paper's two-level clustering from a traced
// communication matrix (dense *trace.Matrix or sparse *trace.CSR — any
// trace.Comm):
//
//  1. Aggregate the rank matrix into a node-based graph (so all processes
//     of a node share a cluster and one node failure touches one cluster).
//  2. Partition it with the size-constrained min-cut partitioner, at least
//     MinNodesPerL1 nodes per cluster.
//  3. Inside each L1 cluster, split the nodes into sub-groups of
//     SubgroupNodes (or more, never fewer) and build one L2 encoding group
//     per local process index: the i-th process of every node in the
//     sub-group.
func Hierarchical(m trace.Comm, p *topology.Placement, opts HierOptions) (*Clustering, error) {
	opts.normalize()
	if m.Ranks() != p.NumRanks() {
		return nil, fmt.Errorf("core: matrix covers %d ranks, placement %d", m.Ranks(), p.NumRanks())
	}
	nodeGraph, err := m.NodeGraph(p)
	if err != nil {
		return nil, err
	}
	used := p.UsedNodes()
	if len(used) < opts.MinNodesPerL1 {
		return nil, fmt.Errorf("core: %d used nodes < MinNodesPerL1 %d", len(used), opts.MinNodesPerL1)
	}
	nodePart, err := partitionNodes(nodeGraph, used, p, opts)
	if err != nil {
		return nil, err
	}

	c := &Clustering{Name: "hierarchical", L1: make([]int, p.NumRanks())}
	idx := map[topology.NodeID]int{}
	for i, n := range used {
		idx[n] = i
	}
	for r := 0; r < p.NumRanks(); r++ {
		c.L1[r] = nodePart[idx[p.NodeOf(topology.Rank(r))]]
	}

	// L2: transversal groups inside each L1 cluster.
	byCluster := map[int][]topology.NodeID{}
	for i, n := range used {
		byCluster[nodePart[i]] = append(byCluster[nodePart[i]], n)
	}
	clusterIDs := make([]int, 0, len(byCluster))
	for id := range byCluster {
		clusterIDs = append(clusterIDs, id)
	}
	sort.Ints(clusterIDs)
	for _, id := range clusterIDs {
		nodes := byCluster[id]
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		for _, sub := range splitSubgroups(nodes, opts.SubgroupNodes) {
			// One group per local process index present on every node.
			width := 0
			for _, n := range sub {
				if w := p.CountOn(n); width == 0 || w < width {
					width = w
				}
			}
			for i := 0; i < width; i++ {
				var g []topology.Rank
				for _, n := range sub {
					g = append(g, p.RanksOn(n)[i])
				}
				c.Groups = append(c.Groups, g)
			}
			// Leftover ranks on nodes with more processes than the
			// sub-group minimum join a trailing group per node level.
			for _, n := range sub {
				for i := width; i < p.CountOn(n); i++ {
					// Attach to the group of level i%width to keep the
					// distribution property.
					gidx := len(c.Groups) - width + i%width
					c.Groups[gidx] = append(c.Groups[gidx], p.RanksOn(n)[i])
				}
			}
		}
	}
	return c, nil
}

// partitionNodes runs the size-constrained partitioner over the node graph,
// or — with AlignPowerPairs — over its power-pair quotient, so that both
// nodes of each pair always share an L1 cluster.
func partitionNodes(nodeGraph *graph.Graph, used []topology.NodeID, p *topology.Placement, opts HierOptions) ([]int, error) {
	partOpts := func(minSize, targetSize, maxSize int) graph.PartitionOptions {
		return graph.PartitionOptions{
			MinSize:          minSize,
			TargetSize:       targetSize,
			MaxSize:          maxSize,
			Multilevel:       opts.Multilevel,
			CoarsenThreshold: opts.CoarsenThreshold,
			MatchingRounds:   opts.MatchingRounds,
			Workers:          opts.PartitionWorkers,
			Cancel:           opts.Cancel,
		}
	}
	if !opts.AlignPowerPairs || !p.Machine().PowerPairs {
		return graph.Partition(nodeGraph, partOpts(opts.MinNodesPerL1, opts.TargetNodesPerL1, opts.MaxNodesPerL1))
	}
	// Quotient the node graph by power pair (node/2) and partition pairs.
	pairIDs := map[topology.NodeID]int{}
	var pairCount int
	pairOfIdx := make([]int, len(used))
	for i, n := range used {
		key := n &^ 1
		id, ok := pairIDs[key]
		if !ok {
			id = pairCount
			pairIDs[key] = id
			pairCount++
		}
		pairOfIdx[i] = id
	}
	pairGraph, err := nodeGraph.Quotient(pairOfIdx, pairCount)
	if err != nil {
		return nil, err
	}
	halve := func(v int) int {
		if v <= 0 {
			return v
		}
		return (v + 1) / 2
	}
	pairPart, err := graph.Partition(pairGraph, partOpts(
		halve(opts.MinNodesPerL1), halve(opts.TargetNodesPerL1), opts.MaxNodesPerL1/2))
	if err != nil {
		return nil, err
	}
	nodePart := make([]int, len(used))
	for i := range used {
		nodePart[i] = pairPart[pairOfIdx[i]]
	}
	return nodePart, nil
}

// splitSubgroups partitions nodes into consecutive sub-groups of at least
// `size` nodes each, as equal as possible ("groups of 4 nodes or more").
func splitSubgroups(nodes []topology.NodeID, size int) [][]topology.NodeID {
	n := len(nodes)
	if n == 0 {
		return nil
	}
	k := n / size
	if k == 0 {
		k = 1
	}
	base := n / k
	extra := n % k
	var out [][]topology.NodeID
	pos := 0
	for i := 0; i < k; i++ {
		sz := base
		if i < extra {
			sz++
		}
		out = append(out, nodes[pos:pos+sz])
		pos += sz
	}
	return out
}
