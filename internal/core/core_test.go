package core

import (
	"math"
	"sync"
	"testing"

	"hierclust/internal/reliability"
	"hierclust/internal/topology"
	"hierclust/internal/trace"
)

// paperRig reproduces the paper's evaluation platform: 1024 ranks on 64
// nodes (16 per node, block placement) running a 1-D neighbor-exchange
// tsunami stencil (the ±1 double diagonal of Fig. 5b).
func paperRig(t *testing.T) (*trace.Matrix, *topology.Placement) {
	t.Helper()
	mach := &topology.Machine{Name: "t", Nodes: 64}
	p, err := topology.Block(mach, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := trace.NewMatrix(1024)
	for r := 0; r+1 < 1024; r++ {
		_ = m.Add(r, r+1, 1_000_000)
		_ = m.Add(r+1, r, 1_000_000)
	}
	return m, p
}

func TestNaiveClusteringShape(t *testing.T) {
	c, err := Naive(1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(1024); err != nil {
		t.Fatal(err)
	}
	if c.NumClusters() != 32 {
		t.Errorf("NumClusters = %d, want 32", c.NumClusters())
	}
	if c.MaxGroupSize() != 32 {
		t.Errorf("MaxGroupSize = %d, want 32", c.MaxGroupSize())
	}
	if c.L1[0] != 0 || c.L1[31] != 0 || c.L1[32] != 1 {
		t.Error("naive clusters not consecutive")
	}
	if _, err := Naive(10, 0); err == nil {
		t.Error("accepted size 0")
	}
	if _, err := Naive(10, 11); err == nil {
		t.Error("accepted size > nranks")
	}
}

func TestDistributedClusteringShape(t *testing.T) {
	_, p := paperRig(t)
	c, err := Distributed(1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(1024); err != nil {
		t.Fatal(err)
	}
	if c.NumClusters() != 64 {
		t.Errorf("NumClusters = %d, want 64", c.NumClusters())
	}
	// Every group's members must all live on different nodes.
	for gi, g := range c.Groups {
		seen := map[topology.NodeID]bool{}
		for _, r := range g {
			n := p.NodeOf(r)
			if seen[n] {
				t.Fatalf("group %d has two members on node %d", gi, n)
			}
			seen[n] = true
		}
	}
	if _, err := Distributed(10, 0); err == nil {
		t.Error("accepted size 0")
	}
}

func TestHierarchicalConstruction(t *testing.T) {
	m, p := paperRig(t)
	c, err := Hierarchical(m, p, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(1024); err != nil {
		t.Fatal(err)
	}
	// 64 path-connected nodes with min/target 4 → 16 L1 clusters of 64
	// consecutive ranks.
	if c.NumClusters() != 16 {
		t.Errorf("NumClusters = %d, want 16", c.NumClusters())
	}
	for _, members := range c.ClusterMembers() {
		if len(members) != 64 {
			t.Fatalf("L1 cluster size %d, want 64", len(members))
		}
	}
	// L2 groups: 4 ranks each, one per node, inside one L1 cluster.
	if len(c.Groups) != 256 { // 16 clusters × 16 process levels
		t.Errorf("groups = %d, want 256", len(c.Groups))
	}
	for gi, g := range c.Groups {
		if len(g) != 4 {
			t.Fatalf("group %d size %d, want 4", gi, len(g))
		}
		nodes := map[topology.NodeID]bool{}
		for _, r := range g {
			nodes[p.NodeOf(r)] = true
		}
		if len(nodes) != 4 {
			t.Fatalf("group %d spans %d nodes, want 4 (distribution)", gi, len(nodes))
		}
	}
	if c.MaxGroupSize() != 4 {
		t.Errorf("MaxGroupSize = %d, want 4", c.MaxGroupSize())
	}
}

func TestHierarchicalValidation(t *testing.T) {
	m, p := paperRig(t)
	short := trace.NewMatrix(10)
	if _, err := Hierarchical(short, p, HierOptions{}); err == nil {
		t.Error("accepted mismatched matrix")
	}
	tiny := &topology.Machine{Name: "t", Nodes: 2}
	tp, _ := topology.Block(tiny, 4, 2)
	tm := trace.NewMatrix(4)
	if _, err := Hierarchical(tm, tp, HierOptions{MinNodesPerL1: 4}); err == nil {
		t.Error("accepted fewer nodes than MinNodesPerL1")
	}
	_ = m
}

func TestSplitSubgroups(t *testing.T) {
	nodes := func(n int) []topology.NodeID {
		out := make([]topology.NodeID, n)
		for i := range out {
			out[i] = topology.NodeID(i)
		}
		return out
	}
	cases := []struct {
		n    int
		want []int
	}{
		{8, []int{4, 4}},
		{6, []int{6}},
		{9, []int{5, 4}},
		{4, []int{4}},
		{3, []int{3}}, // degenerate: fewer nodes than size → single group
		{13, []int{5, 4, 4}},
	}
	for _, c := range cases {
		subs := splitSubgroups(nodes(c.n), 4)
		if len(subs) != len(c.want) {
			t.Errorf("n=%d: %d subgroups, want %d", c.n, len(subs), len(c.want))
			continue
		}
		for i, s := range subs {
			if len(s) != c.want[i] {
				t.Errorf("n=%d: subgroup %d size %d, want %d", c.n, i, len(s), c.want[i])
			}
		}
	}
	if got := splitSubgroups(nil, 4); got != nil {
		t.Errorf("empty input → %v", got)
	}
}

func TestValidateRejectsCrossClusterGroups(t *testing.T) {
	c := &Clustering{
		Name:   "bad",
		L1:     []int{0, 0, 1, 1},
		Groups: [][]topology.Rank{{1, 2}}, // spans clusters 0 and 1
	}
	if err := c.Validate(4); err == nil {
		t.Error("accepted group spanning L1 clusters")
	}
	dup := &Clustering{
		Name:   "dup",
		L1:     []int{0, 0},
		Groups: [][]topology.Rank{{0, 1}, {1}},
	}
	if err := dup.Validate(2); err == nil {
		t.Error("accepted duplicated group membership")
	}
	empty := &Clustering{Name: "e", L1: []int{0}, Groups: [][]topology.Rank{{}}}
	if err := empty.Validate(1); err == nil {
		t.Error("accepted empty group")
	}
}

// ---------- the Table II reproduction ----------

var (
	evalCache     map[string]*Evaluation
	evalCacheOnce sync.Once
)

// evalAll computes the four Table-II evaluations once per test binary; the
// reliability model dominates the cost and is deterministic.
func evalAll(t *testing.T) map[string]*Evaluation {
	t.Helper()
	evalCacheOnce.Do(func() { evalCache = computeEvalAll(t) })
	if evalCache == nil {
		t.Fatal("evaluation cache failed to build")
	}
	return evalCache
}

func computeEvalAll(t *testing.T) map[string]*Evaluation {
	t.Helper()
	m, p := paperRig(t)
	mix := reliability.DefaultMix()
	out := map[string]*Evaluation{}
	naive, err := Naive(1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := SizeGuided(1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Distributed(1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := Hierarchical(m, p, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Clustering{naive, sg, dist, hier} {
		e, err := Evaluate(c, m, p, mix)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		out[c.Name] = e
	}
	return out
}

func TestTableIINaive(t *testing.T) {
	e := evalAll(t)["naive-32"]
	// Paper: 3.5% logged, 3.1% recovery, 204s, ~1e-4.
	if math.Abs(e.LoggedFraction-31.0/1023.0) > 1e-9 {
		t.Errorf("logged = %.4f, want %.4f (paper ~3.5%%)", e.LoggedFraction, 31.0/1023.0)
	}
	if math.Abs(e.RecoveryFraction-0.03125) > 1e-9 {
		t.Errorf("recovery = %.4f, want 0.03125 (paper 3.1%%)", e.RecoveryFraction)
	}
	if e.EncodeSecondsPerGB != 204 {
		t.Errorf("encode = %g, want 204", e.EncodeSecondsPerGB)
	}
	if e.CatastropheProb < 2e-5 || e.CatastropheProb > 5e-4 {
		t.Errorf("P(cat) = %g, want ~1e-4", e.CatastropheProb)
	}
}

func TestTableIISizeGuided(t *testing.T) {
	e := evalAll(t)["size-guided-8"]
	// Paper: 12.9% logged, 0.7% recovery, 51s, 0.95. The paper's 0.7% is
	// the single-process-failure metric (one 8-rank cluster of 1024); the
	// node-failure metric doubles it because a 16-core node hosts two
	// 8-rank clusters.
	if math.Abs(e.LoggedFraction-127.0/1023.0) > 1e-9 {
		t.Errorf("logged = %.4f, want %.4f (paper ~12.9%%)", e.LoggedFraction, 127.0/1023.0)
	}
	sg, _ := SizeGuided(1024, 8)
	procRec, err := RecoveryFractionProcess(sg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(procRec-8.0/1024.0) > 1e-9 {
		t.Errorf("process recovery = %.4f, want %.4f (paper 0.7%%)", procRec, 8.0/1024.0)
	}
	if math.Abs(e.RecoveryFraction-16.0/1024.0) > 1e-9 {
		t.Errorf("node recovery = %.4f, want %.4f (two clusters per node)", e.RecoveryFraction, 16.0/1024.0)
	}
	if e.EncodeSecondsPerGB != 51 {
		t.Errorf("encode = %g, want 51", e.EncodeSecondsPerGB)
	}
	if e.CatastropheProb < 0.9 {
		t.Errorf("P(cat) = %g, want ~0.95 (groups die with their node)", e.CatastropheProb)
	}
}

func TestTableIIDistributed(t *testing.T) {
	e := evalAll(t)["distributed-16"]
	// Paper: 100% logged, 25% recovery, 102s, ~1e-15.
	if e.LoggedFraction < 0.99 {
		t.Errorf("logged = %.4f, want ~1.0", e.LoggedFraction)
	}
	if math.Abs(e.RecoveryFraction-0.25) > 1e-9 {
		t.Errorf("recovery = %.4f, want 0.25", e.RecoveryFraction)
	}
	if e.EncodeSecondsPerGB != 102 {
		t.Errorf("encode = %g, want 102", e.EncodeSecondsPerGB)
	}
	if e.CatastropheProb > 1e-9 {
		t.Errorf("P(cat) = %g, want ≲1e-10", e.CatastropheProb)
	}
}

func TestTableIIHierarchical(t *testing.T) {
	e := evalAll(t)["hierarchical"]
	// Paper: 1.9% logged, 6.25% recovery, 25s, ~1e-6.
	if math.Abs(e.LoggedFraction-15.0/1023.0) > 1e-9 {
		t.Errorf("logged = %.4f, want %.4f (paper ~1.9%%)", e.LoggedFraction, 15.0/1023.0)
	}
	if math.Abs(e.RecoveryFraction-0.0625) > 1e-9 {
		t.Errorf("recovery = %.4f, want 0.0625 (paper 6.25%%)", e.RecoveryFraction)
	}
	if e.EncodeSecondsPerGB != 25.5 {
		t.Errorf("encode = %g, want 25.5 (paper rounds to 25)", e.EncodeSecondsPerGB)
	}
	if e.CatastropheProb < 1e-8 || e.CatastropheProb > 1e-4 {
		t.Errorf("P(cat) = %g, want ~1e-6", e.CatastropheProb)
	}
}

func TestOnlyHierarchicalMeetsBaseline(t *testing.T) {
	// The paper's headline claim (Fig. 5c): hierarchical is the only
	// strategy inside the baseline envelope.
	evals := evalAll(t)
	b := DefaultBaseline()
	ok, violations := evals["hierarchical"].Meets(b)
	if !ok {
		t.Errorf("hierarchical violates baseline: %v", violations)
	}
	for _, name := range []string{"naive-32", "size-guided-8", "distributed-16"} {
		if ok, _ := evals[name].Meets(b); ok {
			t.Errorf("%s unexpectedly meets the baseline", name)
		}
	}
}

func TestBaselineViolationMessages(t *testing.T) {
	evals := evalAll(t)
	_, v := evals["distributed-16"].Meets(DefaultBaseline())
	if len(v) < 2 {
		t.Errorf("distributed should violate ≥2 dimensions, got %v", v)
	}
}

func TestNormalizedRadar(t *testing.T) {
	evals := evalAll(t)
	b := DefaultBaseline()
	h := evals["hierarchical"].Normalized(b)
	for i, v := range h {
		if v > 1 {
			t.Errorf("hierarchical dimension %s = %.2f > 1", DimensionNames()[i], v)
		}
	}
	d := evals["distributed-16"].Normalized(b)
	if d[0] <= 1 || d[1] <= 1 {
		t.Errorf("distributed should exceed 1 on logging (%.2f) and recovery (%.2f)", d[0], d[1])
	}
}

func TestRecoveryFractionDistributedAmplification(t *testing.T) {
	// Fig. 4c: at cluster size 32 distributed recovery hits 50% while
	// non-distributed stays at 3.1%.
	_, p := paperRig(t)
	dist, _ := Distributed(1024, 32)
	rd, err := RecoveryFraction(dist, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rd-0.5) > 1e-9 {
		t.Errorf("distributed-32 recovery = %g, want 0.50", rd)
	}
	naive, _ := Naive(1024, 32)
	rn, _ := RecoveryFraction(naive, p)
	if math.Abs(rn-0.03125) > 1e-9 {
		t.Errorf("naive-32 recovery = %g, want 0.03125", rn)
	}
}

func TestCompareTableRendering(t *testing.T) {
	evals := evalAll(t)
	table := CompareTable([]*Evaluation{evals["naive-32"], evals["hierarchical"]}, DefaultBaseline())
	if len(table) == 0 {
		t.Fatal("empty table")
	}
	for _, want := range []string{"naive-32", "hierarchical", "FAIL", "ok"} {
		if !contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if s := evals["hierarchical"].String(); !contains(s, "hierarchical") {
		t.Errorf("String() = %q", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
