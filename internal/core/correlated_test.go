package core

import (
	"testing"

	"hierclust/internal/reliability"
	"hierclust/internal/topology"
	"hierclust/internal/trace"
)

// pairRig builds a power-paired machine: 32 nodes (16 pairs), 8 ranks per
// node, 256 ranks, stencil traffic.
func pairRig(t *testing.T) (*trace.Matrix, *topology.Placement) {
	t.Helper()
	mach := &topology.Machine{Name: "t", Nodes: 32, PowerPairs: true}
	p, err := topology.Block(mach, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := trace.NewMatrix(256)
	for r := 0; r+1 < 256; r++ {
		_ = m.Add(r, r+1, 1000)
		_ = m.Add(r+1, r, 1000)
	}
	return m, p
}

func TestAlignPowerPairsKeepsPairsTogether(t *testing.T) {
	m, p := pairRig(t)
	c, err := Hierarchical(m, p, HierOptions{AlignPowerPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(256); err != nil {
		t.Fatal(err)
	}
	for base := topology.NodeID(0); int(base)+1 < 32; base += 2 {
		r0 := p.RanksOn(base)[0]
		r1 := p.RanksOn(base + 1)[0]
		if c.L1[r0] != c.L1[r1] {
			t.Errorf("power pair (%d,%d) split across clusters %d and %d",
				base, base+1, c.L1[r0], c.L1[r1])
		}
	}
}

func TestAlignPowerPairsNoOpWithoutPairs(t *testing.T) {
	mach := &topology.Machine{Name: "t", Nodes: 32, PowerPairs: false}
	p, err := topology.Block(mach, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := trace.NewMatrix(256)
	for r := 0; r+1 < 256; r++ {
		_ = m.Add(r, r+1, 1000)
	}
	aligned, err := Hierarchical(m, p, HierOptions{AlignPowerPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Hierarchical(m, p, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for r := range plain.L1 {
		if aligned.L1[r] != plain.L1[r] {
			t.Fatal("AlignPowerPairs changed the clustering on a pairless machine")
		}
	}
}

func TestPairCorrelationRaisesNaiveCatastropheRisk(t *testing.T) {
	// Naive-32 groups occupy exactly one power pair under 16-rank nodes.
	// With correlated pair failures, P(cat) jumps by orders of magnitude;
	// hierarchical transversal groups of 4 (tolerance 2) survive a pair
	// loss and barely move.
	mach := &topology.Machine{Name: "t", Nodes: 64, PowerPairs: true}
	p, err := topology.Block(mach, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Naive(1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	var naiveGroups []reliability.Group
	for _, g := range naive.Groups {
		naiveGroups = append(naiveGroups, reliability.GroupFromRanks(p, g))
	}

	plain := reliability.DefaultMix()
	correlated := reliability.DefaultMix()
	correlated.PairCorrelation = 1.0

	mdlPlain := &reliability.Model{Nodes: 64, Mix: plain}
	mdlCorr := &reliability.Model{Nodes: 64, Mix: correlated}
	pPlain, err := mdlPlain.CatastropheProb(naiveGroups)
	if err != nil {
		t.Fatal(err)
	}
	pCorr, err := mdlCorr.CatastropheProb(naiveGroups)
	if err != nil {
		t.Fatal(err)
	}
	if pCorr < 10*pPlain {
		t.Errorf("correlated pair failures should raise naive-32 P(cat) by ≫10x: %g -> %g", pPlain, pCorr)
	}

	// Hierarchical groups of 4 across 4 nodes tolerate 2 losses: an
	// aligned pair failure removes exactly 2 members — survivable.
	m := trace.NewMatrix(1024)
	for r := 0; r+1 < 1024; r++ {
		_ = m.Add(r, r+1, 1000)
		_ = m.Add(r+1, r, 1000)
	}
	hier, err := Hierarchical(m, p, HierOptions{AlignPowerPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	var hierGroups []reliability.Group
	for _, g := range hier.Groups {
		hierGroups = append(hierGroups, reliability.GroupFromRanks(p, g))
	}
	hPlain, err := mdlPlain.CatastropheProb(hierGroups)
	if err != nil {
		t.Fatal(err)
	}
	hCorr, err := mdlCorr.CatastropheProb(hierGroups)
	if err != nil {
		t.Fatal(err)
	}
	if hCorr > 2*hPlain+1e-9 {
		t.Errorf("hierarchical should absorb pair correlation: %g -> %g", hPlain, hCorr)
	}
	if hCorr > pCorr/100 {
		t.Errorf("under correlated failures hierarchical (%g) should beat naive (%g) by ≫100x", hCorr, pCorr)
	}
}

func TestRecoveryFractionPairAlignment(t *testing.T) {
	m, p := pairRig(t)
	aligned, err := Hierarchical(m, p, HierOptions{AlignPowerPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := RecoveryFractionPair(aligned, p)
	if err != nil {
		t.Fatal(err)
	}
	// An offset clustering that deliberately straddles pairs: clusters of
	// 4 nodes starting at node 1 (ranks shifted by one node width).
	straddle := &Clustering{Name: "straddle", L1: make([]int, 256)}
	for r := 0; r < 256; r++ {
		straddle.L1[r] = ((r / 8) + 1) / 4 // node+1 grouped by 4
	}
	rs, err := RecoveryFractionPair(straddle, p)
	if err != nil {
		t.Fatal(err)
	}
	if ra >= rs {
		t.Errorf("pair-aligned recovery %g should beat straddling %g", ra, rs)
	}
	// Node-failure recovery must not regress vs the plain construction.
	plainRec, err := RecoveryFraction(aligned, p)
	if err != nil {
		t.Fatal(err)
	}
	if plainRec > 0.25 {
		t.Errorf("aligned hierarchical node recovery = %g, too large", plainRec)
	}
}

func TestMixPairCorrelationValidation(t *testing.T) {
	bad := reliability.DefaultMix()
	bad.PairCorrelation = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("accepted PairCorrelation > 1")
	}
	bad.PairCorrelation = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("accepted negative PairCorrelation")
	}
}
