package core

import (
	"context"
	"fmt"
	"strings"

	"hierclust/internal/erasure"
	"hierclust/internal/graph"
	"hierclust/internal/reliability"
	"hierclust/internal/topology"
	"hierclust/internal/trace"
)

// Evaluation scores a clustering on the paper's four dimensions (§III).
type Evaluation struct {
	Name string
	// LoggedFraction is the share of traffic bytes crossing L1 clusters
	// (message-logging overhead, dimension 1).
	LoggedFraction float64
	// RecoveryFraction is the expected share of processes restarted after
	// a single-node failure (recovery cost, dimension 2).
	RecoveryFraction float64
	// EncodeSecondsPerGB is the modeled time to erasure-code 1 GB per
	// process at the largest group size (encoding time, dimension 3).
	EncodeSecondsPerGB float64
	// CatastropheProb is the probability that a failure is unrecoverable
	// from node-level storage (reliability, dimension 4).
	CatastropheProb float64
}

// Baseline is the paper's §III requirement envelope: any clustering
// exceeding one of these maxima "is not suitable for FT in future large
// scale HPC systems".
type Baseline struct {
	MaxLoggedFraction   float64
	MaxRecoveryFraction float64
	MaxEncodeSecPerGB   float64
	MaxCatastropheProb  float64
}

// DefaultBaseline returns the paper's numbers: ≤20% messages logged, ≤20%
// processes restarted, ≤1 minute/GB encoding, at most one in (several)
// thousand failures unrecoverable.
func DefaultBaseline() Baseline {
	return Baseline{
		MaxLoggedFraction:   0.20,
		MaxRecoveryFraction: 0.20,
		MaxEncodeSecPerGB:   60,
		MaxCatastropheProb:  1e-3,
	}
}

// EvalOptions tunes Evaluate's reliability-model execution without changing
// its numbers: results are bit-identical at any worker count.
type EvalOptions struct {
	// Workers bounds the reliability model's worker pool (0 = GOMAXPROCS).
	Workers int
	// Ctx, when non-nil, cancels the evaluation: the reliability model's
	// enumeration and sampling loops observe it within a bounded number of
	// iterations and EvaluateOpts returns Ctx.Err(). An uncancelled
	// evaluation is bit-identical with or without a context.
	Ctx context.Context
}

// Evaluate scores a clustering against a traced communication matrix
// (dense or sparse), a placement, and a failure mix.
func Evaluate(c *Clustering, m trace.Comm, p *topology.Placement, mix reliability.Mix) (*Evaluation, error) {
	return EvaluateOpts(c, m, p, mix, EvalOptions{})
}

// EvaluateOpts is Evaluate with execution options.
func EvaluateOpts(c *Clustering, m trace.Comm, p *topology.Placement, mix reliability.Mix, opts EvalOptions) (*Evaluation, error) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := c.Validate(p.NumRanks()); err != nil {
		return nil, err
	}
	if m.Ranks() != p.NumRanks() {
		return nil, fmt.Errorf("core: matrix covers %d ranks, placement %d", m.Ranks(), p.NumRanks())
	}
	logged, err := m.LoggedFraction(c.L1)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec, err := RecoveryFraction(c, p)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var groups []reliability.Group
	for _, g := range c.Groups {
		groups = append(groups, reliability.GroupFromRanks(p, g))
	}
	mdl := &reliability.Model{Nodes: len(p.UsedNodes()), Mix: mix, Workers: opts.Workers}
	pcat, err := mdl.CatastropheProbCtx(ctx, groups)
	if err != nil {
		return nil, err
	}
	return &Evaluation{
		Name:               c.Name,
		LoggedFraction:     logged,
		RecoveryFraction:   rec,
		EncodeSecondsPerGB: erasure.ModelEncodeSeconds(c.MaxGroupSize(), 1e9),
		CatastropheProb:    pcat,
	}, nil
}

// RecoveryFractionProcess computes the expected fraction of ranks that
// restart after a uniformly random single-process failure: exactly the
// failed process's L1 cluster rolls back. This is the metric behind the
// paper's Table II numbers for the consecutive-rank clusterings (e.g. 0.7%
// for size-guided-8 = one 8-rank cluster of 1024).
func RecoveryFractionProcess(c *Clustering) (float64, error) {
	if len(c.L1) == 0 {
		return 0, nil
	}
	sizes := graph.PartSizes(c.L1)
	var total float64
	for _, s := range sizes {
		// a failure of any of the s members restarts s ranks
		total += float64(s) * float64(s)
	}
	n := float64(len(c.L1))
	return total / (n * n), nil
}

// clusterSizes returns the rank count of each L1 cluster without
// materializing the member lists — the recovery metrics only need sizes,
// and ClusterMembers is O(ranks) slice churn at 262k ranks.
func clusterSizes(c *Clustering) []int {
	return graph.PartSizes(c.L1)
}

// RecoveryFraction computes the expected fraction of ranks that restart
// after a uniformly random single-node failure: all ranks of every L1
// cluster touched by the failed node roll back. Node failures are the
// dominant unit in the paper's failure observations, and this is the metric
// that exposes the distributed clustering's restart amplification (Fig. 4c).
//
// The per-node distinct-cluster scan uses an epoch-stamped scratch array
// over the placement's rank spans — no per-node map allocations, which
// dominated evaluation time on 10k+-node machines.
func RecoveryFraction(c *Clustering, p *topology.Placement) (float64, error) {
	if err := c.Validate(p.NumRanks()); err != nil {
		return 0, err
	}
	sizes := clusterSizes(c)
	used := p.UsedNodes()
	if len(used) == 0 || p.NumRanks() == 0 {
		return 0, nil
	}
	stamp := make([]int32, len(sizes))
	epoch := int32(0)
	var total float64
	for _, n := range used {
		epoch++
		restarted := 0
		for _, r := range p.RanksOn(n) {
			if id := c.L1[r]; stamp[id] != epoch {
				stamp[id] = epoch
				restarted += sizes[id]
			}
		}
		total += float64(restarted) / float64(p.NumRanks())
	}
	return total / float64(len(used)), nil
}

// RecoveryFractionPair computes the expected fraction of ranks restarted
// after a power-supply-pair failure (both nodes 2i and 2i+1 die). Pair-
// aligned L1 clusters contain such failures in one cluster; straddling
// clusterings pay for two. Pairs are visited in ascending node order, so
// the accumulated expectation is deterministic.
func RecoveryFractionPair(c *Clustering, p *topology.Placement) (float64, error) {
	if err := c.Validate(p.NumRanks()); err != nil {
		return 0, err
	}
	sizes := clusterSizes(c)
	used := p.UsedNodes()
	if len(used) == 0 || p.NumRanks() == 0 {
		return 0, nil
	}
	stamp := make([]int32, len(sizes))
	epoch := int32(0)
	var total float64
	var count int
	for i := 0; i < len(used); {
		base := used[i] &^ 1
		j := i
		for j < len(used) && used[j]&^1 == base { // used ascends; pairs are adjacent
			j++
		}
		epoch++
		restarted := 0
		for _, n := range used[i:j] {
			for _, r := range p.RanksOn(n) {
				if id := c.L1[r]; stamp[id] != epoch {
					stamp[id] = epoch
					restarted += sizes[id]
				}
			}
		}
		total += float64(restarted) / float64(p.NumRanks())
		count++
		i = j
	}
	return total / float64(count), nil
}

// Meets reports whether the evaluation satisfies every baseline bound, and
// the list of violated dimensions.
func (e *Evaluation) Meets(b Baseline) (bool, []string) {
	var violations []string
	if e.LoggedFraction > b.MaxLoggedFraction {
		violations = append(violations, fmt.Sprintf("message logging %.1f%% > %.0f%%",
			e.LoggedFraction*100, b.MaxLoggedFraction*100))
	}
	if e.RecoveryFraction > b.MaxRecoveryFraction {
		violations = append(violations, fmt.Sprintf("recovery cost %.1f%% > %.0f%%",
			e.RecoveryFraction*100, b.MaxRecoveryFraction*100))
	}
	if e.EncodeSecondsPerGB > b.MaxEncodeSecPerGB {
		violations = append(violations, fmt.Sprintf("encoding %.0fs/GB > %.0fs/GB",
			e.EncodeSecondsPerGB, b.MaxEncodeSecPerGB))
	}
	if e.CatastropheProb > b.MaxCatastropheProb {
		violations = append(violations, fmt.Sprintf("P(catastrophic) %.2g > %.2g",
			e.CatastropheProb, b.MaxCatastropheProb))
	}
	return len(violations) == 0, violations
}

// Normalized returns the four dimensions scaled by the baseline maxima
// (1.0 = exactly at the requirement), the radial coordinates of the
// paper's Figure 5c.
func (e *Evaluation) Normalized(b Baseline) [4]float64 {
	return [4]float64{
		e.LoggedFraction / b.MaxLoggedFraction,
		e.RecoveryFraction / b.MaxRecoveryFraction,
		e.EncodeSecondsPerGB / b.MaxEncodeSecPerGB,
		e.CatastropheProb / b.MaxCatastropheProb,
	}
}

// String renders the evaluation as a Table-II style row.
func (e *Evaluation) String() string {
	return fmt.Sprintf("%-20s log=%5.1f%% recovery=%5.2f%% encode=%6.1fs/GB P(cat)=%.2g",
		e.Name, e.LoggedFraction*100, e.RecoveryFraction*100, e.EncodeSecondsPerGB, e.CatastropheProb)
}

// DimensionNames labels the four axes in Figure 5c order.
func DimensionNames() [4]string {
	return [4]string{"msg-logging", "recovery-cost", "encoding-time", "reliability"}
}

// CompareTable renders evaluations as an aligned ASCII table (Table II).
func CompareTable(evals []*Evaluation, b Baseline) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %12s %12s %14s %12s %s\n",
		"clustering", "msg.log", "recovery", "encode(1GB)", "P(cat)", "baseline")
	for _, e := range evals {
		ok, _ := e.Meets(b)
		verdict := "FAIL"
		if ok {
			verdict = "ok"
		}
		fmt.Fprintf(&sb, "%-20s %11.1f%% %11.2f%% %13.1fs %12.2g %s\n",
			e.Name, e.LoggedFraction*100, e.RecoveryFraction*100,
			e.EncodeSecondsPerGB, e.CatastropheProb, verdict)
	}
	return sb.String()
}
