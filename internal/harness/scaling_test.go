package harness

import (
	"strings"
	"testing"

	"hierclust/internal/core"
	"hierclust/internal/reliability"
)

// The synthetic axis must extend the scaling table with rows that stay
// inside the baseline — the 64k-rank acceptance scenario at test-friendly
// scale — and the whole pipeline must run on the sparse path (the rig here
// never materializes a dense matrix).
func TestScalingSyntheticAxis(t *testing.T) {
	table, err := Scaling(Config{Quick: true, MaxRanks: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 { // 64, 128, 256 traced + 4096, 8192 synthetic
		t.Fatalf("rows = %d, want 5 (%v)", len(table.Rows), table.Rows)
	}
	last := table.Rows[len(table.Rows)-1]
	if last[0] != "8192" {
		t.Fatalf("last row ranks = %s, want 8192", last[0])
	}
	for _, row := range table.Rows[3:] {
		if row[len(row)-1] != "yes" {
			t.Errorf("synthetic row %v outside baseline", row)
		}
	}
	found := false
	for _, n := range table.Notes {
		if strings.Contains(n, "synthetic") {
			found = true
		}
	}
	if !found {
		t.Error("synthetic rows present but no note explains them")
	}
}

// MaxRanks = 0 must leave the scaling table exactly as before — the
// backwards-compatibility contract for existing figure output.
func TestScalingDefaultUnchangedByMaxRanks(t *testing.T) {
	base, err := Scaling(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) != 3 {
		t.Fatalf("default quick scaling rows = %d, want 3", len(base.Rows))
	}
	for _, n := range base.Notes {
		if strings.Contains(n, "synthetic") {
			t.Errorf("default scaling table mentions synthetic rows: %q", n)
		}
	}
}

// Rank counts that do not divide evenly must still get a machine large
// enough for the straggler node.
func TestSyntheticRigNonMultipleRanks(t *testing.T) {
	m, placement, err := SyntheticRig(23000, 16) // 1438 nodes > Tsubame2's 1408
	if err != nil {
		t.Fatal(err)
	}
	if m.Ranks() != 23000 || placement.NumRanks() != 23000 {
		t.Fatalf("rig covers %d/%d ranks, want 23000", m.Ranks(), placement.NumRanks())
	}
	if got := len(placement.UsedNodes()); got != 1438 {
		t.Errorf("used nodes = %d, want 1438", got)
	}
}

// The synthetic rig end to end at a 16k-rank scale: hierarchical
// clustering plus full evaluation against the default baseline, all sparse.
func TestSyntheticRigPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("16k-rank pipeline in -short mode")
	}
	m, placement, err := SyntheticRig(16384, 16)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := core.Hierarchical(m, placement, core.HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := hier.Validate(16384); err != nil {
		t.Fatal(err)
	}
	e, err := core.Evaluate(hier, m, placement, reliability.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	if ok, viol := e.Meets(core.DefaultBaseline()); !ok {
		t.Errorf("16k-rank synthetic evaluation violates baseline: %v", viol)
	}
	// Logging should stay near the 2-D stencil's analytic cut share and
	// recovery near one L1 cluster's share of the machine.
	if e.LoggedFraction <= 0 || e.LoggedFraction > 0.2 {
		t.Errorf("logged fraction %g outside (0, 0.2]", e.LoggedFraction)
	}
	if e.RecoveryFraction <= 0 || e.RecoveryFraction > 0.01 {
		t.Errorf("recovery fraction %g outside (0, 0.01]", e.RecoveryFraction)
	}
}

// The 262,144-rank / 16,384-node acceptance scenario: the full clustering →
// reliability pipeline through the multilevel partitioner and the flat-span
// placement, end to end, with every number — the L1 assignment and all four
// evaluation dimensions — bit-identical at any worker count.
func TestSynthetic256kWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("262k-rank pipeline in -short mode")
	}
	const ranks = 262144
	m, placement, err := SyntheticRig(ranks, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(placement.UsedNodes()); got != 16384 {
		t.Fatalf("rig uses %d nodes, want 16384", got)
	}
	type result struct {
		l1 []int
		e  *core.Evaluation
	}
	run := func(workers int) result {
		hier, err := core.Hierarchical(m, placement, core.HierOptions{
			Multilevel: true, PartitionWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.EvaluateOpts(hier, m, placement, reliability.DefaultMix(),
			core.EvalOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return result{l1: hier.L1, e: e}
	}
	ref := run(1)
	if ok, viol := ref.e.Meets(core.DefaultBaseline()); !ok {
		t.Errorf("256k-rank evaluation violates baseline: %v", viol)
	}
	for _, workers := range []int{4, 0} { // 0 = GOMAXPROCS
		got := run(workers)
		for r := range ref.l1 {
			if ref.l1[r] != got.l1[r] {
				t.Fatalf("workers=%d: rank %d in cluster %d, want %d", workers, r, got.l1[r], ref.l1[r])
			}
		}
		if *got.e != *ref.e {
			t.Fatalf("workers=%d: evaluation %+v differs from serial %+v", workers, got.e, ref.e)
		}
	}
}
