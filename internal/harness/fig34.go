package harness

import (
	"fmt"
	"time"

	"hierclust/internal/core"
	"hierclust/internal/erasure"
	"hierclust/internal/reliability"
	"hierclust/internal/topology"
)

// sweepSizes returns the cluster-size axis, bounded by the rank count.
func sweepSizes(max int, from int) []int {
	var out []int
	for s := from; s <= max; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Fig3a reproduces Figure 3a: message-logging overhead (left axis) versus
// restart cost (right axis) as the naive cluster size grows. The paper's
// sweet spot is 32 processes: <4% logged, ~3% restarted.
func Fig3a(cfg Config) (*Table, error) {
	cfg.normalize()
	r, err := tracedRig(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3a",
		Title:   fmt.Sprintf("naive clustering sweep, %d ranks", cfg.Ranks),
		Columns: []string{"cluster size", "logged %", "restart % (node failure)", "restart % (proc failure)"},
	}
	bestSize, bestScore := 0, 1e18
	for _, size := range sweepSizes(cfg.Ranks/2, 1) {
		c, err := core.Naive(cfg.Ranks, size)
		if err != nil {
			return nil, err
		}
		logged, err := r.matrix.LoggedFraction(c.L1)
		if err != nil {
			return nil, err
		}
		recNode, err := core.RecoveryFraction(c, r.placement)
		if err != nil {
			return nil, err
		}
		recProc, err := core.RecoveryFractionProcess(c)
		if err != nil {
			return nil, err
		}
		t.AddRow(size, logged*100, recNode*100, recProc*100)
		if score := logged + recNode; score < bestScore {
			bestScore, bestSize = score, size
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"sweet spot (min logged+restart) at cluster size %d; paper reports 32 for 1024 ranks", bestSize))
	return t, nil
}

// Fig3b reproduces Figure 3b: encoding time (log-scale axis in the paper)
// versus message logging overhead by cluster size, from size 4 upward. The
// modeled column uses the paper-calibrated α·k s/GB law; the measured
// column erasure-codes real MiB-scale shards and reports the throughput-
// derived extrapolation, validating the linear-in-k shape.
func Fig3b(cfg Config) (*Table, error) {
	cfg.normalize()
	r, err := tracedRig(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3b",
		Title:   fmt.Sprintf("encoding time vs. logging overhead, %d ranks", cfg.Ranks),
		Columns: []string{"cluster size", "logged %", "encode s/GB (model)", "encode ms (measured, 1MiB shards)"},
	}
	shard := 1 << 20
	if cfg.Quick {
		shard = 64 << 10
	}
	// RS(k,k) over GF(256) caps the group size at 128 (k+k <= 256); the
	// paper's sweep also stops well below that.
	for _, size := range sweepSizes(min(cfg.Ranks/2, 128), 4) {
		c, err := core.Naive(cfg.Ranks, size)
		if err != nil {
			return nil, err
		}
		logged, err := r.matrix.LoggedFraction(c.L1)
		if err != nil {
			return nil, err
		}
		model := erasure.ModelEncodeSeconds(size, 1e9)
		if cfg.Timings {
			measured, err := measureEncode(size, shard)
			if err != nil {
				return nil, err
			}
			t.AddRow(size, logged*100, model, float64(measured.Milliseconds()))
		} else {
			t.AddRow(size, logged*100, model, "-")
		}
	}
	t.Notes = append(t.Notes,
		"model: 6.375 s/(GB*member), calibrated from paper Table II (204s@32, 102s@16, 51s@8)")
	if cfg.Timings {
		t.Notes = append(t.Notes,
			"measured column encodes real Reed-Solomon shards; time grows ~linearly with group size")
	} else {
		t.Notes = append(t.Notes,
			"measured column disabled for deterministic output; rerun with -timings to fill it")
	}
	return t, nil
}

// measureEncode erasure-codes one group of k shards of the given size and
// returns the wall time.
func measureEncode(k, shardBytes int) (time.Duration, error) {
	enc, err := erasure.NewGroupEncoder(k, k, 0, 0)
	if err != nil {
		return 0, err
	}
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, shardBytes)
		for j := range data[i] {
			data[i][j] = byte(i*31 + j)
		}
	}
	res, err := enc.Encode(data)
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}

// fig4Machine is the Fig. 4a platform: 128 nodes × 8 processes.
func fig4Machine(cfg Config) (*topology.Placement, error) {
	nodes, ppn := 128, 8
	if cfg.Quick {
		nodes, ppn = 32, 4
	}
	mach, err := topology.Tsubame2().Subset(nodes)
	if err != nil {
		return nil, err
	}
	return topology.Block(mach, nodes*ppn, ppn)
}

// fig4Groups builds non-distributed (consecutive ranks) and distributed
// (striped) encoding groups of the given size.
func fig4Groups(p *topology.Placement, size int) (nonDist, dist []reliability.Group) {
	n := p.NumRanks()
	for base := 0; base+size <= n; base += size {
		var mem []topology.Rank
		for r := base; r < base+size; r++ {
			mem = append(mem, topology.Rank(r))
		}
		nonDist = append(nonDist, reliability.GroupFromRanks(p, mem))
	}
	k := n / size
	for g := 0; g < k; g++ {
		var mem []topology.Rank
		for j := 0; j < size; j++ {
			mem = append(mem, topology.Rank(g+j*k))
		}
		dist = append(dist, reliability.GroupFromRanks(p, mem))
	}
	return nonDist, dist
}

// Fig4a reproduces Figure 4a: probability of catastrophic failure for
// distributed versus non-distributed encoding groups of 4, 8 and 16
// processes on 128 nodes × 8 processes. Distributed grouping wins by orders
// of magnitude.
func Fig4a(cfg Config) (*Table, error) {
	cfg.normalize()
	p, err := fig4Machine(cfg)
	if err != nil {
		return nil, err
	}
	mdl := &reliability.Model{Nodes: len(p.UsedNodes()), Mix: reliability.DefaultMix()}
	t := &Table{
		ID:      "fig4a",
		Title:   fmt.Sprintf("reliability, %d nodes x %d procs", len(p.UsedNodes()), p.MaxProcsPerNode()),
		Columns: []string{"group size", "P(cat) non-distributed", "P(cat) distributed", "improvement (x)"},
	}
	for _, size := range []int{4, 8, 16} {
		nonDist, dist := fig4Groups(p, size)
		pn, err := mdl.CatastropheProb(nonDist)
		if err != nil {
			return nil, err
		}
		pd, err := mdl.CatastropheProb(dist)
		if err != nil {
			return nil, err
		}
		improvement := "inf"
		if pd > 0 {
			improvement = fmt.Sprintf("%.2g", pn/pd)
		}
		t.AddRow(size, pn, pd, improvement)
	}
	t.Notes = append(t.Notes, "paper: non-distributed groups of 4 or 8 die with a single node; distributed is orders of magnitude safer")
	return t, nil
}

// Fig4b reproduces Figure 4b: message-logging overhead of distributed
// versus non-distributed clusterings by size. Striped clusters log nearly
// everything regardless of size.
func Fig4b(cfg Config) (*Table, error) {
	cfg.normalize()
	r, err := tracedRig(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4b",
		Title:   fmt.Sprintf("logging overhead vs. distribution, %d ranks", cfg.Ranks),
		Columns: []string{"cluster size", "logged % non-distributed", "logged % distributed"},
	}
	for _, size := range sweepSizes(min(cfg.Ranks/2, 64), 2) {
		nonDist, err := core.Naive(cfg.Ranks, size)
		if err != nil {
			return nil, err
		}
		dist, err := core.Distributed(cfg.Ranks, size)
		if err != nil {
			return nil, err
		}
		ln, err := r.matrix.LoggedFraction(nonDist.L1)
		if err != nil {
			return nil, err
		}
		ld, err := r.matrix.LoggedFraction(dist.L1)
		if err != nil {
			return nil, err
		}
		t.AddRow(size, ln*100, ld*100)
	}
	t.Notes = append(t.Notes, "paper: distribution + topology-aware placement logs ~100% at every size")
	return t, nil
}

// Fig4c reproduces Figure 4c: restart cost after a node failure for
// distributed versus non-distributed clusterings on 64 nodes × 16
// processes. At size 32 the paper reports 3% vs 50%.
func Fig4c(cfg Config) (*Table, error) {
	cfg.normalize()
	r, err := tracedRig(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4c",
		Title:   fmt.Sprintf("restart cost vs. distribution, %d ranks", cfg.Ranks),
		Columns: []string{"cluster size", "restart % non-distributed", "restart % distributed"},
	}
	for _, size := range sweepSizes(min(cfg.Ranks/2, 64), 2) {
		nonDist, err := core.Naive(cfg.Ranks, size)
		if err != nil {
			return nil, err
		}
		dist, err := core.Distributed(cfg.Ranks, size)
		if err != nil {
			return nil, err
		}
		rn, err := core.RecoveryFraction(nonDist, r.placement)
		if err != nil {
			return nil, err
		}
		rd, err := core.RecoveryFraction(dist, r.placement)
		if err != nil {
			return nil, err
		}
		t.AddRow(size, rn*100, rd*100)
	}
	t.Notes = append(t.Notes, "paper: at size 32, 3% non-distributed vs 50% distributed")
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
