package harness

import (
	"fmt"

	"hierclust/internal/core"
	"hierclust/internal/reliability"
	"hierclust/internal/trace"
	"hierclust/internal/tsunami"
)

// encodedRig traces the full FTI-style execution of Figures 5a/5b: one
// encoder process per node (world ranks ≡ 0 mod ppn+1), checkpoint rounds,
// and the application stencil.
func encodedRig(cfg Config) (*trace.Matrix, int, error) {
	cfg.normalize()
	nodes := cfg.Ranks / cfg.ProcsPerNode
	world := cfg.Ranks + nodes
	rec := trace.NewRecorder(world)
	ckptBytes := 64 << 10
	if cfg.Quick {
		ckptBytes = 4 << 10
	}
	_, err := tsunami.RunTraced(tsunami.TracedOptions{
		Params:          tsunamiParams(cfg.Ranks),
		Iterations:      cfg.Iterations,
		ProcsPerNode:    cfg.ProcsPerNode,
		EncoderRanks:    true,
		CheckpointEvery: cfg.Iterations / 4,
		CheckpointBytes: ckptBytes,
		Tracer:          rec,
	})
	if err != nil {
		return nil, 0, err
	}
	return rec.Matrix(), world, nil
}

// Fig5a reproduces Figure 5a: the communication matrix of the full traced
// execution (application + encoder processes). The table summarizes the
// pattern; the notes carry a downsampled ASCII heatmap. Use cmd/hcrun -out
// to write the full-resolution PGM/CSV for plotting.
func Fig5a(cfg Config) (*Table, error) {
	cfg.normalize()
	m, world, err := encodedRig(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5a",
		Title:   fmt.Sprintf("communication heatmap, %d world ranks (%d app + %d encoders)", world, cfg.Ranks, world-cfg.Ranks),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("world ranks", world)
	t.AddRow("total bytes", m.TotalBytes())
	t.AddRow("total messages", m.TotalMsgs())
	stride := cfg.ProcsPerNode + 1
	var diag, encoder int64
	for s := 0; s < m.N; s++ {
		for d, b := range m.Bytes[s] {
			if b == 0 {
				continue
			}
			if s%stride == 0 || d%stride == 0 {
				encoder += b
			} else if d == s+1 || d == s-1 {
				diag += b
			}
		}
	}
	t.AddRow("double-diagonal bytes (ghost exchange)", diag)
	t.AddRow("encoder-related bytes", encoder)
	t.AddRow("diagonal share %", 100*float64(diag)/float64(m.TotalBytes()))
	for _, p := range m.TopPairs(3) {
		t.AddRow(fmt.Sprintf("top pair %d->%d", p.Src, p.Dst), p.Bytes)
	}
	t.Notes = append(t.Notes, "heatmap (log scale, downsampled):\n"+m.ASCIIHeatmap(64))
	return t, nil
}

// Fig5b reproduces Figure 5b: the zoom on the first four nodes — 4·(ppn+1)
// world ranks (68 in the paper's 16-per-node run) — and verifies the three
// structures the paper describes: the ±1 double diagonal interrupted at
// encoder ranks, the application↔encoder rows, and the power-of-two
// allgather diagonals from FTI's MPI_Allgather initialization.
func Fig5b(cfg Config) (*Table, error) {
	cfg.normalize()
	m, _, err := encodedRig(cfg)
	if err != nil {
		return nil, err
	}
	stride := cfg.ProcsPerNode + 1
	zoomN := 4 * stride
	if zoomN > m.N {
		zoomN = m.N
	}
	zoom, err := m.Submatrix(0, zoomN)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5b",
		Title:   fmt.Sprintf("zoom on first %d world ranks (4 nodes)", zoomN),
		Columns: []string{"feature", "present", "detail"},
	}

	// Feature 1: the double diagonal between consecutive app ranks,
	// interrupted at encoder ranks (0, stride, 2·stride, ...).
	diagOK, interruptedOK := true, true
	for s := 0; s+1 < zoomN; s++ {
		encoderPair := s%stride == 0 || (s+1)%stride == 0
		heavy := zoom.Bytes[s][s+1] > 0 && zoom.Bytes[s+1][s] > 0
		if encoderPair {
			ghost := int64(3 * tsunamiParams(cfg.Ranks).NX * 8)
			if zoom.Bytes[s][s+1] >= ghost*int64(cfg.Iterations) {
				interruptedOK = false // encoder should not carry ghost rows
			}
		} else if !heavy {
			diagOK = false
		}
	}
	t.AddRow("±1 double diagonal (boundary exchange)", yes(diagOK), "consecutive app ranks exchange ghost rows")
	t.AddRow("diagonal interrupted at encoder ranks", yes(interruptedOK),
		fmt.Sprintf("encoders at world ranks 0, %d, %d, %d", stride, 2*stride, 3*stride))

	// Feature 2: application ↔ encoder checkpoint rows.
	encRows := true
	for node := 0; node < 4; node++ {
		enc := node * stride
		for k := 1; k <= cfg.ProcsPerNode; k++ {
			if enc+k < zoomN && zoom.Bytes[enc+k][enc] == 0 {
				encRows = false
			}
		}
	}
	t.AddRow("app→encoder checkpoint rows", yes(encRows), "each rank posts checkpoints to its node encoder")

	// Feature 3: encoder↔encoder parity points.
	encPts := zoom.Bytes[0][stride] > 0 && zoom.Bytes[stride][0] > 0
	t.AddRow("encoder↔encoder parity points", yes(encPts), "4-node Reed-Solomon groups exchange parity")

	// Feature 4: power-of-two allgather diagonals (recursive doubling).
	pow2 := false
	for s := 0; s < zoomN; s++ {
		for _, d := range []int{s ^ 1, s ^ 2, s ^ 4, s ^ 8} {
			if d < zoomN && d != s+1 && d != s-1 && zoom.Bytes[s][d] > 0 {
				pow2 = true
			}
		}
	}
	t.AddRow("power-of-two allgather diagonals", yes(pow2), "MPICH2 recursive-doubling MPI_Allgather at init")

	t.Notes = append(t.Notes, "zoom heatmap (log scale):\n"+zoom.ASCIIHeatmap(zoomN))
	return t, nil
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// strategies builds the four Table-II clusterings against the traced rig.
func strategies(cfg Config, r *rig) (map[string]*core.Clustering, []string, error) {
	cfg.normalize()
	naiveSize, sgSize, distSize := 32, 8, 16
	if cfg.Quick {
		naiveSize, sgSize, distSize = 16, 8, 8
	}
	naive, err := core.Naive(cfg.Ranks, naiveSize)
	if err != nil {
		return nil, nil, err
	}
	sg, err := core.SizeGuided(cfg.Ranks, sgSize)
	if err != nil {
		return nil, nil, err
	}
	dist, err := core.Distributed(cfg.Ranks, distSize)
	if err != nil {
		return nil, nil, err
	}
	// Multilevel is the production configuration for the hierarchical
	// strategy. At the paper's 64-node scale the graph sits below the
	// default CoarsenThreshold, where the flag is provably inert
	// (TestTable2PaperScaleMultilevelEquivalence pins exact equality), so
	// the golden tables are unchanged by construction — but table2/fig5c
	// now exercise the same code path the large-scale experiments use.
	hier, err := core.Hierarchical(r.matrix, r.placement, core.HierOptions{Multilevel: true})
	if err != nil {
		return nil, nil, err
	}
	order := []string{naive.Name, sg.Name, dist.Name, hier.Name}
	return map[string]*core.Clustering{
		naive.Name: naive, sg.Name: sg, dist.Name: dist, hier.Name: hier,
	}, order, nil
}

// Fig5c reproduces Figure 5c: each strategy's four dimensions normalized by
// the baseline requirement (1.0 = at the limit; anything above 1 fails).
func Fig5c(cfg Config) (*Table, error) {
	cfg.normalize()
	r, err := tracedRig(cfg)
	if err != nil {
		return nil, err
	}
	clusterings, order, err := strategies(cfg, r)
	if err != nil {
		return nil, err
	}
	b := core.DefaultBaseline()
	names := core.DimensionNames()
	t := &Table{
		ID:      "fig5c",
		Title:   "normalized 4-dimension comparison (1.0 = baseline limit)",
		Columns: []string{"clustering", names[0], names[1], names[2], names[3], "within baseline"},
	}
	for _, name := range order {
		e, err := core.Evaluate(clusterings[name], r.matrix, r.placement, reliability.DefaultMix())
		if err != nil {
			return nil, err
		}
		norm := e.Normalized(b)
		ok, _ := e.Meets(b)
		t.AddRow(name, norm[0], norm[1], norm[2], norm[3], yes(ok))
	}
	t.Notes = append(t.Notes, "paper Fig. 5c: only the hierarchical clustering stays inside the baseline on all four axes")
	return t, nil
}

// Table2 reproduces the paper's Table II: the four strategies scored on all
// four dimensions, with the paper's reported values alongside.
func Table2(cfg Config) (*Table, error) {
	cfg.normalize()
	r, err := tracedRig(cfg)
	if err != nil {
		return nil, err
	}
	clusterings, order, err := strategies(cfg, r)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table2",
		Title: fmt.Sprintf("clustering comparison, %d ranks on %d nodes", cfg.Ranks, len(r.placement.UsedNodes())),
		Columns: []string{"clustering", "logged %", "recovery %", "encode s/GB", "P(cat)",
			"paper logged %", "paper recovery %", "paper encode s", "paper P(cat)"},
	}
	for _, name := range order {
		e, err := core.Evaluate(clusterings[name], r.matrix, r.placement, reliability.DefaultMix())
		if err != nil {
			return nil, err
		}
		exp, hasExp := PaperTable2[name]
		if !hasExp {
			exp = PaperRow{Logged: -1, Recovery: -1, EncodeSec: -1, PCat: -1}
		}
		t.AddRow(name,
			e.LoggedFraction*100, e.RecoveryFraction*100, e.EncodeSecondsPerGB, e.CatastropheProb,
			paperCell(exp.Logged*100, hasExp), paperCell(exp.Recovery*100, hasExp),
			paperCell(exp.EncodeSec, hasExp), paperCellG(exp.PCat, hasExp))
	}
	t.Notes = append(t.Notes,
		"recovery % uses the node-failure metric; the paper's size-guided 0.7% is the process-failure metric (see EXPERIMENTS.md)",
		"paper columns apply to the full 1024-rank configuration")
	return t, nil
}

func paperCell(v float64, has bool) string {
	if !has || v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

func paperCellG(v float64, has bool) string {
	if !has || v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2g", v)
}
