package harness

import (
	"fmt"
	"sort"
	"sync"

	"hierclust/internal/topology"
	"hierclust/internal/trace"
	"hierclust/internal/tsunami"
)

// Config scales the experiments. The zero value is upgraded to the paper's
// full configuration (1024 ranks, 64 nodes × 16); Quick shrinks everything
// for tests and laptops.
type Config struct {
	// Ranks is the application process count (paper: 1024).
	Ranks int
	// ProcsPerNode is the application ranks per node (paper: 16).
	ProcsPerNode int
	// Iterations is the traced stencil length (paper: 100).
	Iterations int
	// Quick shrinks the run for fast smoke tests.
	Quick bool
	// MaxRanks extends the scaling experiment beyond traced runs with
	// synthetically generated stencil traces, doubling from 4096 ranks up
	// to this bound (hcrun -maxranks). 0 disables the synthetic axis, and
	// the scaling table is then byte-identical to previous releases. The
	// synthetic rows exercise the sparse (CSR) pipeline end to end: no
	// dense matrix and no simmpi run is involved at any size.
	MaxRanks int
	// Multilevel runs every hierarchical clustering of the scaling
	// experiment through the multilevel node partitioner (hcrun
	// -multilevel) — the scalable path for the 100k+-node synthetic rows.
	// Off (the default) keeps the single-level partitioner and the
	// historical table bytes.
	Multilevel bool
	// Timings enables wall-clock measurement columns (fig3b's measured
	// encode times). Off by default so experiment tables are deterministic
	// and byte-comparable across runs and worker counts; turn on (hcrun
	// -timings) to validate the measured linear-in-k encode law.
	Timings bool
}

func (c *Config) normalize() {
	if c.Quick {
		// 256 ranks on 32 nodes: the smallest scale where a 4-node L1
		// cluster (32 ranks) stays under the 20% restart baseline.
		if c.Ranks == 0 {
			c.Ranks = 256
		}
		if c.ProcsPerNode == 0 {
			c.ProcsPerNode = 8
		}
		if c.Iterations == 0 {
			c.Iterations = 20
		}
		return
	}
	if c.Ranks == 0 {
		c.Ranks = 1024
	}
	if c.ProcsPerNode == 0 {
		c.ProcsPerNode = 16
	}
	if c.Iterations == 0 {
		c.Iterations = 100
	}
}

// Experiment pairs an identifier with its generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "TSUBAME2 architecture (paper Table I)", Table1},
		{"fig3a", "Recovery cost vs. message logging overhead (naive clustering)", Fig3a},
		{"fig3b", "Encoding time vs. message logging overhead", Fig3b},
		{"fig4a", "Reliability: distributed vs. non-distributed groups", Fig4a},
		{"fig4b", "Logging overhead: distributed vs. non-distributed", Fig4b},
		{"fig4c", "Restart cost: distributed vs. non-distributed", Fig4c},
		{"fig5a", "Traced communication matrix, full run", Fig5a},
		{"fig5b", "Traced communication matrix, zoom on first 4 nodes", Fig5b},
		{"fig5c", "Normalized four-dimension comparison vs. baseline", Fig5c},
		{"table2", "Clustering comparison (paper Table II)", Table2},
		{"protocol", "Hybrid protocol end-to-end with failure injection (extension)", Protocol},
		{"ablation", "Design-choice ablations from DESIGN.md (extension)", Ablation},
		{"scaling", "Hierarchical clustering from 64 to 1024 ranks (extension)", Scaling},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var known []string
	for _, e := range All() {
		known = append(known, e.ID)
	}
	sort.Strings(known)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, known)
}

// tracedRig is the shared backbone: the tsunami communication matrix traced
// on the simmpi runtime, plus the matching placement. Cached per (ranks,
// procsPerNode, iterations) because several experiments reuse it. The lock
// only guards the map; each entry builds under its own sync.Once, so the
// parallel runner can construct rigs with different keys concurrently while
// same-key experiments still share one build.
type rigKey struct{ ranks, ppn, iters int }

var (
	rigMu    sync.Mutex
	rigCache = map[rigKey]*rigEntry{}
)

type rigEntry struct {
	once sync.Once
	rig  *rig
	err  error
}

type rig struct {
	matrix    *trace.Matrix
	placement *topology.Placement
}

// tsunamiParams picks the tracing grid; the choice lives in the tsunami
// package (TraceParams) so the public pipeline traces identically.
func tsunamiParams(ranks int) tsunami.Params {
	return tsunami.TraceParams(ranks)
}

func tracedRig(cfg Config) (*rig, error) {
	cfg.normalize()
	key := rigKey{cfg.Ranks, cfg.ProcsPerNode, cfg.Iterations}
	rigMu.Lock()
	e, ok := rigCache[key]
	if !ok {
		e = &rigEntry{}
		rigCache[key] = e
	}
	rigMu.Unlock()
	e.once.Do(func() { e.rig, e.err = buildRig(cfg) })
	return e.rig, e.err
}

func buildRig(cfg Config) (*rig, error) {
	if cfg.Ranks%cfg.ProcsPerNode != 0 {
		return nil, fmt.Errorf("harness: %d ranks not divisible by %d per node", cfg.Ranks, cfg.ProcsPerNode)
	}
	nodes := cfg.Ranks / cfg.ProcsPerNode
	mach, err := topology.Tsubame2().Subset(nodes)
	if err != nil {
		return nil, err
	}
	placement, err := topology.Block(mach, cfg.Ranks, cfg.ProcsPerNode)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder(cfg.Ranks)
	if _, err := tsunami.RunTraced(tsunami.TracedOptions{
		Params:     tsunamiParams(cfg.Ranks),
		Iterations: cfg.Iterations,
		Tracer:     rec,
	}); err != nil {
		return nil, err
	}
	return &rig{matrix: rec.Matrix(), placement: placement}, nil
}

// Table1 renders the TSUBAME2 constants used by the models (paper Table I).
func Table1(cfg Config) (*Table, error) {
	m := topology.Tsubame2()
	t := &Table{
		ID:      "table1",
		Title:   "TSUBAME2 architecture model",
		Columns: []string{"parameter", "value"},
	}
	t.AddRow("nodes", m.Nodes)
	t.AddRow("cores/node", m.CoresPerNode)
	t.AddRow("SSD write (MB/s)", m.SSDWriteBps/1e6)
	t.AddRow("SSD read (MB/s)", m.SSDReadBps/1e6)
	t.AddRow("Lustre write (GB/s)", m.PFSWriteBps/1e9)
	t.AddRow("network (GB/s, dual-rail QDR)", m.NetBps/1e9)
	t.AddRow("memory/node (GB)", float64(m.MemPerNode)/1e9)
	t.Notes = append(t.Notes, "constants from paper Table I; consumed by internal/storage and internal/models")
	return t, nil
}
