package harness

import (
	"encoding/json"
	"runtime"
	"sync"
	"time"
)

// RunResult is one experiment's outcome under the pooled runner.
type RunResult struct {
	Experiment Experiment
	Table      *Table
	Err        error
	Elapsed    time.Duration
}

// Run executes the experiments on a pool of workers and returns results in
// input order, so output is byte-identical regardless of worker count or
// completion order. workers <= 1 runs serially; workers == 0 and
// DefaultWorkers() pick GOMAXPROCS. Every experiment is independent (the
// traced-rig cache is the only shared state and is mutex-guarded), which is
// what makes the pool safe.
func Run(cfg Config, exps []Experiment, workers int) []RunResult {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	results := make([]RunResult, len(exps))
	if workers <= 1 {
		for i, e := range exps {
			results[i] = runOne(cfg, e)
		}
		return results
	}
	jobs := make(chan int, len(exps))
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runOne(cfg, exps[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// DefaultWorkers is the pool size used when the caller passes 0.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// RunOne executes and times a single experiment. Serial callers (hcrun
// without -parallel) use it to stream each table as it completes and stop
// at the first failure instead of batching through Run.
func RunOne(cfg Config, e Experiment) RunResult { return runOne(cfg, e) }

func runOne(cfg Config, e Experiment) RunResult {
	start := time.Now()
	table, err := e.Run(cfg)
	return RunResult{Experiment: e, Table: table, Err: err, Elapsed: time.Since(start)}
}

// jsonResult is the machine-readable form of one experiment result.
type jsonResult struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Columns   []string   `json:"columns,omitempty"`
	Rows      [][]string `json:"rows,omitempty"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Error     string     `json:"error,omitempty"`
}

// ResultsJSON renders the results as an indented JSON array, the emitter
// behind hcrun -json.
func ResultsJSON(results []RunResult) ([]byte, error) {
	out := make([]jsonResult, len(results))
	for i, r := range results {
		out[i] = jsonResult{
			ID:        r.Experiment.ID,
			Title:     r.Experiment.Title,
			ElapsedMS: float64(r.Elapsed) / float64(time.Millisecond),
		}
		if r.Table != nil {
			out[i].Columns = r.Table.Columns
			out[i].Rows = r.Table.Rows
			out[i].Notes = r.Table.Notes
		}
		if r.Err != nil {
			out[i].Error = r.Err.Error()
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
