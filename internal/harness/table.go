// Package harness regenerates every table and figure of the paper's
// evaluation section from the substrates in this repository: the traced
// tsunami communication matrix, the clustering strategies, the reliability
// model, and the hybrid protocol. Each experiment returns a Table that
// prints as aligned ASCII (and CSV), with paper-expected values recorded in
// expect.go for side-by-side comparison in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("fig3a", "table2", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the cells, already formatted.
	Rows [][]string
	// Notes carry free-form commentary (heatmaps, verdicts, caveats).
	Notes []string
}

// AddRow appends a row of cells formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1000 || av < 0.001:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// ASCII renders the table with aligned columns.
func (t *Table) ASCII() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	sb.WriteByte('\n')
	for i := range t.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]))
		sb.WriteString("  ")
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", w, cell)
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (header + rows). Cells
// containing commas are quoted.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			sb.WriteString(c)
		}
	}
	sb.WriteByte('\n')
}
