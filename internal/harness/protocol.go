package harness

import (
	"fmt"

	"hierclust/internal/checkpoint"
	"hierclust/internal/core"
	"hierclust/internal/hybrid"
	"hierclust/internal/topology"
	"hierclust/internal/tsunami"
)

// Protocol runs the full stack end-to-end — tsunami application, hybrid
// protocol, multi-level checkpointing, real Reed–Solomon — once per
// clustering strategy, injecting a node failure mid-run, and reports what
// each clustering costs in practice: ranks restarted, messages replayed,
// duplicates suppressed, recovery level used, and whether the final state
// matches the failure-free reference bit-for-bit.
//
// This experiment goes beyond the paper's tables: it demonstrates the
// behaviours the paper argues about (size-guided groups dying with their
// node, distributed clusterings restarting everyone) as executable facts.
func Protocol(cfg Config) (*Table, error) {
	cfg.normalize()
	ranks, ppn := 64, 8
	if !cfg.Quick {
		ranks, ppn = 128, 16
	}
	nodes := ranks / ppn
	iters := 20
	ckptEvery := 5
	failAt := 13
	failNode := topology.NodeID(nodes / 2)

	mach, err := topology.Tsubame2().Subset(nodes)
	if err != nil {
		return nil, err
	}
	placement, err := topology.Block(mach, ranks, ppn)
	if err != nil {
		return nil, err
	}

	// Reference field, failure-free.
	params := tsunamiParams(ranks)
	ref, err := tsunami.NewFTApp(params)
	if err != nil {
		return nil, err
	}
	if err := ref.RunSequential(iters); err != nil {
		return nil, err
	}

	// Clusterings scaled to this rig. The size-guided size equals the
	// node width so each group is co-located — the paper's reliability
	// pathology.
	naive, err := core.Naive(ranks, 2*ppn)
	if err != nil {
		return nil, err
	}
	sg, err := core.SizeGuided(ranks, ppn)
	if err != nil {
		return nil, err
	}
	dist, err := core.Distributed(ranks, 2*ppn)
	if err != nil {
		return nil, err
	}
	// Hierarchical from the synthetic stencil matrix of this scale.
	r, err := tracedRig(Config{Ranks: ranks, ProcsPerNode: ppn, Iterations: 10, Quick: true})
	if err != nil {
		return nil, err
	}
	hier, err := core.Hierarchical(r.matrix, r.placement, core.HierOptions{})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "protocol",
		Title: fmt.Sprintf("end-to-end recovery, %d ranks on %d nodes, node %d fails at iter %d", ranks, nodes, failNode, failAt),
		Columns: []string{"clustering", "restarted ranks", "restart %", "replayed msgs",
			"suppressed dups", "restore levels", "logged %", "state == reference"},
	}
	for _, c := range []*core.Clustering{naive, sg, dist, hier} {
		row, err := runProtocolOnce(c, params, placement, iters, ckptEvery, failAt, failNode, ref)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"size-guided groups are co-located with their node: the node failure is unrecoverable (the paper's reliability collapse)",
		"distributed clustering recovers but restarts every rank (Fig. 4c's amplification)")
	return t, nil
}

func runProtocolOnce(c *core.Clustering, params tsunami.Params, placement *topology.Placement,
	iters, ckptEvery, failAt int, failNode topology.NodeID, ref *tsunami.FTApp) ([]string, error) {

	app, err := tsunami.NewFTApp(params)
	if err != nil {
		return nil, err
	}
	runner, err := hybrid.NewRunner(hybrid.Config{
		Placement:       placement,
		Clusters:        c.L1,
		Groups:          c.Groups,
		CheckpointEvery: ckptEvery,
		Level:           checkpoint.L3Encoded,
	}, app)
	if err != nil {
		return nil, err
	}
	rep, err := runner.Run(iters, map[int][]topology.NodeID{failAt: {failNode}})
	if err != nil {
		if checkpoint.Unrecoverable(err) {
			return []string{c.Name, "-", "-", "-", "-", "UNRECOVERABLE", "-", "no"}, nil
		}
		return nil, fmt.Errorf("harness: protocol run %s: %w", c.Name, err)
	}
	if len(rep.Failures) != 1 {
		return nil, fmt.Errorf("harness: %s handled %d failures, want 1", c.Name, len(rep.Failures))
	}
	ev := rep.Failures[0]
	match := "yes"
	for rk := 0; rk < params.Ranks && match == "yes"; rk++ {
		s, sr := app.Solver(rk), ref.Solver(rk)
		for j := 0; j < s.Rows(); j++ {
			for i := 0; i < params.NX; i++ {
				if s.Eta(j, i) != sr.Eta(j, i) {
					match = "NO"
				}
			}
		}
	}
	levels := ""
	for _, lv := range []checkpoint.Level{checkpoint.L1Local, checkpoint.L2Partner, checkpoint.L3Encoded, checkpoint.L4PFS} {
		if n := ev.RestoreLevels[lv]; n > 0 {
			if levels != "" {
				levels += " "
			}
			levels += fmt.Sprintf("%s:%d", lv, n)
		}
	}
	return []string{
		c.Name,
		fmt.Sprintf("%d", ev.RestartedRanks),
		fmt.Sprintf("%.1f", ev.RestartedFraction*100),
		fmt.Sprintf("%d", ev.ReplayedMessages),
		fmt.Sprintf("%d", ev.SuppressedDuplicates),
		levels,
		fmt.Sprintf("%.1f", rep.LoggedFraction*100),
		match,
	}, nil
}
