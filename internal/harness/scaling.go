package harness

import (
	"fmt"

	"hierclust/internal/core"
	"hierclust/internal/reliability"
)

// Scaling evaluates the hierarchical clustering from 64 to 1024 ranks —
// the paper's §V notes the tsunami application was launched "from 64 to
// 1024 processes" though it only tabulates the largest. All four dimensions
// should stay inside the baseline at every scale, with logging overhead
// *improving* as the machine grows (more nodes per L1 cut boundary).
func Scaling(cfg Config) (*Table, error) {
	cfg.normalize()
	t := &Table{
		ID:      "scaling",
		Title:   "hierarchical clustering vs. application scale",
		Columns: []string{"ranks", "nodes", "L1 clusters", "logged %", "restart %", "encode s/GB", "P(cat)", "within baseline"},
	}
	sizes := []int{64, 128, 256, 512, 1024}
	if cfg.Quick {
		sizes = []int{64, 128, 256}
	}
	b := core.DefaultBaseline()
	for _, ranks := range sizes {
		ppn := 16
		if ranks <= 256 {
			ppn = 8 // keep enough nodes that 4-node L1 clusters stay small
		}
		r, err := tracedRig(Config{Ranks: ranks, ProcsPerNode: ppn, Iterations: cfg.Iterations, Quick: cfg.Quick})
		if err != nil {
			return nil, err
		}
		hier, err := core.Hierarchical(r.matrix, r.placement, core.HierOptions{})
		if err != nil {
			return nil, err
		}
		e, err := core.Evaluate(hier, r.matrix, r.placement, reliability.DefaultMix())
		if err != nil {
			return nil, err
		}
		ok, _ := e.Meets(b)
		verdict := "yes"
		if !ok {
			verdict = fmt.Sprintf("NO (scale too small for 4-node L1: %d nodes)", len(r.placement.UsedNodes()))
		}
		t.AddRow(ranks, len(r.placement.UsedNodes()), hier.NumClusters(),
			e.LoggedFraction*100, e.RecoveryFraction*100, e.EncodeSecondsPerGB, e.CatastropheProb, verdict)
	}
	t.Notes = append(t.Notes,
		"restart % falls as 4-node L1 clusters shrink relative to the machine; logging falls with boundary count over volume")
	return t, nil
}
