package harness

import (
	"fmt"

	"hierclust/internal/core"
	"hierclust/internal/reliability"
	"hierclust/internal/topology"
	"hierclust/internal/trace"
)

// Scaling evaluates the hierarchical clustering from 64 to 1024 ranks —
// the paper's §V notes the tsunami application was launched "from 64 to
// 1024 processes" though it only tabulates the largest. All four dimensions
// should stay inside the baseline at every scale, with logging overhead
// *improving* as the machine grows (more nodes per L1 cut boundary).
//
// With cfg.MaxRanks set, the table continues past the traced sizes on
// synthetically generated 2-D stencil traces (4096 ranks doubling up to
// MaxRanks), running the whole clustering→reliability pipeline on the
// sparse CSR path — the regime where a dense matrix would need O(n²)
// memory and a traced run would need hours of simulated MPI.
//
// The experiment defines its own rank/ppn ladder (8 per node up to 256
// ranks, 16 above, for both traced and synthetic rows); cfg.Ranks and
// cfg.ProcsPerNode overrides are ignored here, unlike in the single-scale
// experiments.
func Scaling(cfg Config) (*Table, error) {
	cfg.normalize()
	t := &Table{
		ID:      "scaling",
		Title:   "hierarchical clustering vs. application scale",
		Columns: []string{"ranks", "nodes", "L1 clusters", "logged %", "restart %", "encode s/GB", "P(cat)", "within baseline"},
	}
	sizes := []int{64, 128, 256, 512, 1024}
	if cfg.Quick {
		sizes = []int{64, 128, 256}
	}
	b := core.DefaultBaseline()
	for _, ranks := range sizes {
		ppn := 16
		if ranks <= 256 {
			ppn = 8 // keep enough nodes that 4-node L1 clusters stay small
		}
		r, err := tracedRig(Config{Ranks: ranks, ProcsPerNode: ppn, Iterations: cfg.Iterations, Quick: cfg.Quick})
		if err != nil {
			return nil, err
		}
		if err := scalingRow(t, b, r.matrix, r.placement, cfg.Multilevel); err != nil {
			return nil, err
		}
	}
	for ranks := 4096; ranks <= cfg.MaxRanks; ranks *= 2 {
		m, placement, err := SyntheticRig(ranks, 16)
		if err != nil {
			return nil, err
		}
		if err := scalingRow(t, b, m, placement, cfg.Multilevel); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"restart % falls as 4-node L1 clusters shrink relative to the machine; logging falls with boundary count over volume")
	if cfg.MaxRanks >= 4096 {
		t.Notes = append(t.Notes,
			"rows from 4096 ranks up use synthetic 2-D stencil traces on the sparse (CSR) pipeline — no dense matrix, no traced run")
	}
	if cfg.Multilevel {
		t.Notes = append(t.Notes,
			"hierarchical rows use the multilevel (coarsen/partition/uncoarsen) node partitioner")
	}
	return t, nil
}

// scalingRow evaluates one machine scale and appends its table row.
func scalingRow(t *Table, b core.Baseline, m trace.Comm, placement *topology.Placement, multilevel bool) error {
	hier, err := core.Hierarchical(m, placement, core.HierOptions{Multilevel: multilevel})
	if err != nil {
		return err
	}
	e, err := core.Evaluate(hier, m, placement, reliability.DefaultMix())
	if err != nil {
		return err
	}
	ok, _ := e.Meets(b)
	verdict := "yes"
	if !ok {
		verdict = fmt.Sprintf("NO (scale too small for 4-node L1: %d nodes)", len(placement.UsedNodes()))
	}
	t.AddRow(m.Ranks(), len(placement.UsedNodes()), hier.NumClusters(),
		e.LoggedFraction*100, e.RecoveryFraction*100, e.EncodeSecondsPerGB, e.CatastropheProb, verdict)
	return nil
}

// SyntheticRig builds the large-scale evaluation input: a synthetic 2-D
// stencil trace in CSR form (grid width = procsPerNode, so horizontal ghost
// exchange stays intra-node under block placement and vertical exchange
// crosses node boundaries, mirroring a blocked 2-D domain decomposition)
// plus a block placement on a TSUBAME2-like machine grown to the required
// node count. Exported for reuse by the benchmark suite.
func SyntheticRig(ranks, procsPerNode int) (*trace.CSR, *topology.Placement, error) {
	nodes := (ranks + procsPerNode - 1) / procsPerNode
	mach := topology.Tsubame2()
	if nodes > mach.Nodes {
		scaled := *mach
		scaled.Nodes = nodes
		scaled.Name = fmt.Sprintf("%s-scaled[%d]", mach.Name, nodes)
		mach = &scaled
	}
	placement, err := topology.Block(mach, ranks, procsPerNode)
	if err != nil {
		return nil, nil, err
	}
	m, err := trace.Synthetic(ranks, trace.SyntheticOptions{
		Pattern: trace.Stencil2D,
		Width:   procsPerNode,
	})
	if err != nil {
		return nil, nil, err
	}
	return m, placement, nil
}
