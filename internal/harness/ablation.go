package harness

import (
	"fmt"

	"hierclust/internal/core"
	"hierclust/internal/graph"
	"hierclust/internal/reliability"
	"hierclust/internal/topology"
)

// Ablation quantifies the design choices DESIGN.md calls out for the
// hierarchical clustering, each against the default construction:
//
//  1. L1 on the node graph vs. directly on the process graph — the node
//     graph guarantees one cluster restarts per node failure.
//  2. Minimum 4 nodes per L1 cluster vs. 2 — four nodes give L2 groups
//     room to distribute, and reliability collapses without them.
//  3. Transversal L2 groups vs. co-located (consecutive-rank) L2 groups
//     inside the same L1 clusters.
func Ablation(cfg Config) (*Table, error) {
	cfg.normalize()
	r, err := tracedRig(cfg)
	if err != nil {
		return nil, err
	}
	mix := reliability.DefaultMix()
	t := &Table{
		ID:      "ablation",
		Title:   fmt.Sprintf("hierarchical design ablations, %d ranks", cfg.Ranks),
		Columns: []string{"variant", "logged %", "restart % (node failure)", "P(cat)", "verdict"},
	}

	base, err := core.Hierarchical(r.matrix, r.placement, core.HierOptions{})
	if err != nil {
		return nil, err
	}
	if err := addAblationRow(t, "hierarchical (default)", base, r, mix, ""); err != nil {
		return nil, err
	}

	// Ablation 1: partition the process graph directly, ignoring nodes.
	procPart, err := graph.Partition(r.matrix.ToGraph(), graph.PartitionOptions{
		MinSize:    4 * cfg.ProcsPerNode,
		TargetSize: 4 * cfg.ProcsPerNode,
	})
	if err != nil {
		return nil, err
	}
	procHier := &core.Clustering{Name: "L1-on-process-graph", L1: procPart, Groups: base.Groups}
	// Groups may now cross L1 clusters; drop the coupled groups and keep
	// the L1 effect only (the point is the restart metric).
	procHier.Groups = nil
	if err := addAblationRow(t, "L1 on process graph", procHier, r, mix,
		"a node failure can straddle clusters"); err != nil {
		return nil, err
	}

	// Ablation 2: allow 2-node L1 clusters; L2 groups span only 2 nodes.
	small, err := core.Hierarchical(r.matrix, r.placement, core.HierOptions{
		MinNodesPerL1: 2, TargetNodesPerL1: 2, SubgroupNodes: 2,
	})
	if err != nil {
		return nil, err
	}
	small.Name = "min 2 nodes per L1"
	if err := addAblationRow(t, "min 2 nodes per L1", small, r, mix,
		"L2 groups span 2 nodes: half the group dies with one node"); err != nil {
		return nil, err
	}

	// Ablation 3: co-located L2 groups (consecutive ranks inside L1).
	colocated := &core.Clustering{Name: "co-located L2", L1: base.L1}
	for _, members := range base.ClusterMembers() {
		for lo := 0; lo < len(members); lo += 4 {
			hi := lo + 4
			if hi > len(members) {
				hi = len(members)
			}
			var g []topology.Rank
			for _, rk := range members[lo:hi] {
				g = append(g, topology.Rank(rk))
			}
			colocated.Groups = append(colocated.Groups, g)
		}
	}
	if err := addAblationRow(t, "co-located L2 groups", colocated, r, mix,
		"same L1 cut, but groups die with their node"); err != nil {
		return nil, err
	}

	t.Notes = append(t.Notes, "every variant relaxes exactly one DESIGN.md decision; compare against the first row")
	return t, nil
}

func addAblationRow(t *Table, label string, c *core.Clustering, r *rig, mix reliability.Mix, note string) error {
	logged, err := r.matrix.LoggedFraction(c.L1)
	if err != nil {
		return err
	}
	rec, err := core.RecoveryFraction(c, r.placement)
	if err != nil {
		return err
	}
	pcat := 0.0
	if len(c.Groups) > 0 {
		var groups []reliability.Group
		for _, g := range c.Groups {
			groups = append(groups, reliability.GroupFromRanks(r.placement, g))
		}
		mdl := &reliability.Model{Nodes: len(r.placement.UsedNodes()), Mix: mix}
		pcat, err = mdl.CatastropheProb(groups)
		if err != nil {
			return err
		}
	}
	pcatCell := fmt.Sprintf("%.2g", pcat)
	if len(c.Groups) == 0 {
		pcatCell = "-"
	}
	t.Rows = append(t.Rows, []string{
		label,
		fmt.Sprintf("%.2f", logged*100),
		fmt.Sprintf("%.2f", rec*100),
		pcatCell,
		note,
	})
	return nil
}
