package harness

// PaperRow holds one Table II row as published.
type PaperRow struct {
	// Logged is the message-logging overhead fraction.
	Logged float64
	// Recovery is the restart-cost fraction.
	Recovery float64
	// EncodeSec is the seconds to encode 1 GB.
	EncodeSec float64
	// PCat is the probability of catastrophic failure.
	PCat float64
}

// PaperTable2 records the paper's Table II verbatim: Naive (32 procs),
// Size-guided (8), Distributed (16), Hierarchical (64-rank L1 clusters with
// 4-process L2 groups). The "1−4"-style entries of the published table are
// read as powers of ten (1e-4, 1e-15, 1e-6).
var PaperTable2 = map[string]PaperRow{
	"naive-32":       {Logged: 0.035, Recovery: 0.031, EncodeSec: 204, PCat: 1e-4},
	"size-guided-8":  {Logged: 0.129, Recovery: 0.007, EncodeSec: 51, PCat: 0.95},
	"distributed-16": {Logged: 1.00, Recovery: 0.25, EncodeSec: 102, PCat: 1e-15},
	"hierarchical":   {Logged: 0.019, Recovery: 0.0625, EncodeSec: 25, PCat: 1e-6},
}

// PaperBaseline repeats the paper's §III requirements: log ≤20% of
// messages, encode 1 GB in ≤1 minute, at most ~1/1000 failures
// unrecoverable, restart ≤20% of processes.
var PaperBaseline = struct {
	MaxLogged, MaxEncodeSec, MaxPCat, MaxRecovery float64
}{0.20, 60, 1e-3, 0.20}

// PaperFig3aSweetSpot is the cluster size the paper identifies as the
// logging/recovery sweet spot for the 1024-rank tsunami run.
const PaperFig3aSweetSpot = 32

// PaperFig4c records the paper's headline Fig. 4c point: at cluster size
// 32, restart cost is ~3% without distribution and ~50% with it.
var PaperFig4c = struct {
	Size                        int
	NonDistributed, Distributed float64
}{32, 0.03, 0.50}
