package harness

import (
	"os"
	"path/filepath"

	"hierclust/internal/trace"
	"hierclust/internal/tsunami"
)

// WriteArtifacts stores the table CSV in dir and, for the heatmap
// experiments (fig5a/fig5b), re-traces at the configured scale to dump the
// full-resolution communication matrix as PGM and CSV — the inputs for
// external plotting of the paper's Figures 5a/5b. With cfg.MaxRanks set it
// additionally renders the synthetic-scale heatmap through the sparse
// downsampler (<id>_synthetic.pgm plus a triplet CSV) — no dense recorder
// and no simulated MPI run at any rank count.
func WriteArtifacts(dir string, table *Table, cfg Config, id string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, id+".csv"), []byte(table.CSV()), 0o644); err != nil {
		return err
	}
	if id != "fig5a" && id != "fig5b" {
		return nil
	}
	if cfg.MaxRanks > 0 {
		if err := writeSyntheticHeatmap(dir, cfg, id); err != nil {
			return err
		}
	}
	// Re-trace at the configured scale to dump the raw matrix.
	cfgFull := cfg
	if cfgFull.Ranks == 0 {
		if cfgFull.Quick {
			cfgFull.Ranks, cfgFull.ProcsPerNode, cfgFull.Iterations = 256, 8, 20
		} else {
			cfgFull.Ranks, cfgFull.ProcsPerNode, cfgFull.Iterations = 1024, 16, 100
		}
	}
	nodes := cfgFull.Ranks / cfgFull.ProcsPerNode
	rec := trace.NewRecorder(cfgFull.Ranks + nodes)
	p := tsunami.DefaultParams(cfgFull.Ranks)
	p.NX, p.NY = 64, 2*cfgFull.Ranks
	if _, err := tsunami.RunTraced(tsunami.TracedOptions{
		Params:          p,
		Iterations:      cfgFull.Iterations,
		ProcsPerNode:    cfgFull.ProcsPerNode,
		EncoderRanks:    true,
		CheckpointEvery: cfgFull.Iterations / 4,
		CheckpointBytes: 64 << 10,
		Tracer:          rec,
	}); err != nil {
		return err
	}
	m := rec.Matrix()
	if id == "fig5b" {
		zoomN := 4 * (cfgFull.ProcsPerNode + 1)
		if zoomN > m.N {
			zoomN = m.N
		}
		var err error
		if m, err = m.Submatrix(0, zoomN); err != nil {
			return err
		}
	}
	if err := os.WriteFile(filepath.Join(dir, id+"_matrix.csv"), []byte(m.CSV()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".pgm"), []byte(m.PGM()), 0o644)
}

// writeSyntheticHeatmap renders the synthetic-axis (cfg.MaxRanks) stencil
// trace as a downsampled PGM and sparse triplet CSV, entirely on the CSR
// path — the artifact equivalent of the scaling experiment's synthetic
// rows. fig5b keeps its meaning as the zoom on the first four nodes.
func writeSyntheticHeatmap(dir string, cfg Config, id string) error {
	cfg.normalize()
	m, _, err := SyntheticRig(cfg.MaxRanks, cfg.ProcsPerNode)
	if err != nil {
		return err
	}
	if id == "fig5b" {
		zoomN := 4 * cfg.ProcsPerNode
		if zoomN > m.Ranks() {
			zoomN = m.Ranks()
		}
		if m, err = m.Submatrix(0, zoomN); err != nil {
			return err
		}
	}
	if err := os.WriteFile(filepath.Join(dir, id+"_synthetic.csv"), []byte(m.CSV()), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+"_synthetic.pgm"), []byte(m.PGM(1024)), 0o644)
}
