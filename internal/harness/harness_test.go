package harness

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var quick = Config{Quick: true}

// runExp runs one experiment in quick mode and sanity-checks the table.
func runExp(t *testing.T, id string) *Table {
	t.Helper()
	exp, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	table, err := exp.Run(quick)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if table.ID != id {
		t.Errorf("table ID = %q, want %q", table.ID, id)
	}
	if len(table.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	ascii := table.ASCII()
	if !strings.Contains(ascii, id) {
		t.Errorf("%s ASCII missing id:\n%s", id, ascii)
	}
	if csv := table.CSV(); !strings.Contains(csv, table.Columns[0]) {
		t.Errorf("%s CSV missing header", id)
	}
	return table
}

// cell parses a float cell.
func cell(t *testing.T, table *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(table.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, table.Rows[row][col], err)
	}
	return v
}

func findRow(t *testing.T, table *Table, key string) []string {
	t.Helper()
	for _, row := range table.Rows {
		if row[0] == key || strings.HasPrefix(row[0], key) {
			return row
		}
	}
	t.Fatalf("row %q not found in %s:\n%s", key, table.ID, table.ASCII())
	return nil
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("nonsense"); err == nil {
		t.Error("ByID accepted unknown id")
	}
	if len(All()) < 10 {
		t.Errorf("All() returned %d experiments", len(All()))
	}
}

func TestTable1(t *testing.T) {
	table := runExp(t, "table1")
	row := findRow(t, table, "nodes")
	if row[1] != "1408" {
		t.Errorf("nodes = %q, want 1408", row[1])
	}
}

func TestFig3aShape(t *testing.T) {
	table := runExp(t, "fig3a")
	// logged % must decrease monotonically with size; restart % (node)
	// must be non-decreasing.
	for i := 1; i < len(table.Rows); i++ {
		prevLogged, curLogged := cell(t, table, i-1, 1), cell(t, table, i, 1)
		if curLogged > prevLogged+1e-9 {
			t.Errorf("logged %% increased from %g to %g at row %d", prevLogged, curLogged, i)
		}
		prevRec, curRec := cell(t, table, i-1, 2), cell(t, table, i, 2)
		if curRec < prevRec-1e-9 {
			t.Errorf("restart %% decreased from %g to %g at row %d", prevRec, curRec, i)
		}
	}
}

func TestFig3bEncodeLinear(t *testing.T) {
	exp, err := ByID("fig3b")
	if err != nil {
		t.Fatal(err)
	}
	table, err := exp.Run(Config{Quick: true, Timings: true})
	if err != nil {
		t.Fatal(err)
	}
	// model column doubles with size
	for i := 1; i < len(table.Rows); i++ {
		prev, cur := cell(t, table, i-1, 2), cell(t, table, i, 2)
		if cur/prev < 1.9 || cur/prev > 2.1 {
			t.Errorf("model encode time not linear: %g -> %g", prev, cur)
		}
	}
	// measured column must grow with size too (loosely: last > first)
	first, last := cell(t, table, 0, 3), cell(t, table, len(table.Rows)-1, 3)
	if last <= first {
		t.Errorf("measured encode not growing: first %gms last %gms", first, last)
	}
	// without Timings the measured column is deterministic
	plain := runExp(t, "fig3b")
	for i := range plain.Rows {
		if got := plain.Rows[i][3]; got != "-" {
			t.Errorf("row %d measured cell = %q without Timings, want \"-\"", i, got)
		}
	}
}

func TestFig4aDistributionWins(t *testing.T) {
	table := runExp(t, "fig4a")
	for i := range table.Rows {
		nonDist, dist := cell(t, table, i, 1), cell(t, table, i, 2)
		if dist*100 > nonDist {
			t.Errorf("row %d: distributed %g not ≫ better than non-distributed %g", i, dist, nonDist)
		}
	}
}

func TestFig4bDistributedLogsEverything(t *testing.T) {
	table := runExp(t, "fig4b")
	for i := range table.Rows {
		if d := cell(t, table, i, 2); d < 90 {
			t.Errorf("distributed logged%% = %g, want ~100", d)
		}
		if n := cell(t, table, i, 1); n >= cell(t, table, i, 2) {
			t.Errorf("non-distributed (%g) should log less than distributed", n)
		}
	}
}

func TestFig4cAmplification(t *testing.T) {
	table := runExp(t, "fig4c")
	// At some cluster size the distributed restart cost must be at least
	// 4x the non-distributed one (paper: 3% vs 50% at size 32).
	best := 0.0
	for i := range table.Rows {
		nd, d := cell(t, table, i, 1), cell(t, table, i, 2)
		if nd > 0 && d/nd > best {
			best = d / nd
		}
	}
	if best < 4 {
		t.Errorf("max distributed/non-distributed restart ratio = %g, want >= 4\n%s", best, table.ASCII())
	}
}

func TestFig5aDiagonalDominates(t *testing.T) {
	table := runExp(t, "fig5a")
	row := findRow(t, table, "diagonal share %")
	share, err := strconv.ParseFloat(row[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if share < 50 {
		t.Errorf("double diagonal carries %g%% of bytes, want >50%%", share)
	}
}

func TestFig5bFeaturesPresent(t *testing.T) {
	table := runExp(t, "fig5b")
	for _, row := range table.Rows {
		if row[1] != "yes" {
			t.Errorf("feature %q = %q, want yes", row[0], row[1])
		}
	}
}

func TestFig5cOnlyHierarchicalPasses(t *testing.T) {
	table := runExp(t, "fig5c")
	passes := map[string]string{}
	for _, row := range table.Rows {
		passes[row[0]] = row[len(row)-1]
	}
	if passes["hierarchical"] != "yes" {
		t.Errorf("hierarchical verdict = %q, want yes\n%s", passes["hierarchical"], table.ASCII())
	}
	for name, verdict := range passes {
		if name != "hierarchical" && verdict == "yes" {
			t.Errorf("%s unexpectedly within baseline", name)
		}
	}
}

func TestTable2QuickShape(t *testing.T) {
	table := runExp(t, "table2")
	if len(table.Rows) != 4 {
		t.Fatalf("table2 has %d rows, want 4", len(table.Rows))
	}
	hier := findRow(t, table, "hierarchical")
	logged, _ := strconv.ParseFloat(hier[1], 64)
	if logged > 20 {
		t.Errorf("hierarchical logged %% = %g, want small", logged)
	}
	// paper columns present for all strategies at quick scale except the
	// renamed quick sizes
	if table.Columns[5] != "paper logged %" {
		t.Errorf("missing paper columns: %v", table.Columns)
	}
}

func TestProtocolEndToEnd(t *testing.T) {
	table := runExp(t, "protocol")
	if len(table.Rows) != 4 {
		t.Fatalf("protocol rows = %d, want 4", len(table.Rows))
	}
	for _, row := range table.Rows {
		name, match := row[0], row[len(row)-1]
		switch {
		case strings.HasPrefix(name, "size-guided"):
			if row[5] != "UNRECOVERABLE" {
				t.Errorf("size-guided should be unrecoverable, got %v", row)
			}
		default:
			if match != "yes" {
				t.Errorf("%s final state does not match reference: %v", name, row)
			}
		}
	}
	// distributed restarts everything; hierarchical restarts less.
	dist := findRow(t, table, "distributed")
	hier := findRow(t, table, "hierarchical")
	distPct, _ := strconv.ParseFloat(dist[2], 64)
	hierPct, _ := strconv.ParseFloat(hier[2], 64)
	if distPct != 100 {
		t.Errorf("distributed restart %% = %g, want 100", distPct)
	}
	if hierPct >= distPct {
		t.Errorf("hierarchical restart %% (%g) should be below distributed (%g)", hierPct, distPct)
	}
}

func TestAblation(t *testing.T) {
	table := runExp(t, "ablation")
	if len(table.Rows) < 4 {
		t.Fatalf("ablation rows = %d, want >= 4", len(table.Rows))
	}
	base := table.Rows[0]
	basePcat, err := strconv.ParseFloat(base[3], 64)
	if err != nil {
		t.Fatalf("base P(cat) %q: %v", base[3], err)
	}
	coloc := findRow(t, table, "co-located L2 groups")
	colocPcat, err := strconv.ParseFloat(coloc[3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if colocPcat < 100*basePcat {
		t.Errorf("co-located L2 P(cat) %g should be ≫ default %g", colocPcat, basePcat)
	}
	small := findRow(t, table, "min 2 nodes per L1")
	smallPcat, err := strconv.ParseFloat(small[3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if smallPcat <= basePcat {
		t.Errorf("2-node L1 P(cat) %g should exceed default %g", smallPcat, basePcat)
	}
}

func TestScaling(t *testing.T) {
	table := runExp(t, "scaling")
	if len(table.Rows) < 3 {
		t.Fatalf("scaling rows = %d", len(table.Rows))
	}
	// Restart % must be non-increasing with scale; the largest quick scale
	// must be within the baseline.
	for i := 1; i < len(table.Rows); i++ {
		prev, cur := cell(t, table, i-1, 4), cell(t, table, i, 4)
		if cur > prev+1e-9 {
			t.Errorf("restart %% grew with scale: %g -> %g", prev, cur)
		}
	}
	last := table.Rows[len(table.Rows)-1]
	if last[len(last)-1] != "yes" {
		t.Errorf("largest scale not within baseline: %v", last)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("with,comma", 1e-7)
	ascii := tb.ASCII()
	if !strings.Contains(ascii, "2.500") {
		t.Errorf("float formatting wrong:\n%s", ascii)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Errorf("CSV quoting wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "1e-07") {
		t.Errorf("small float formatting wrong:\n%s", csv)
	}
}

// TestSyntheticHeatmapArtifacts: with the synthetic axis configured,
// fig5a/fig5b artifact dumps must include the sparse-downsampled PGM and
// triplet CSV rendered from the generated CSR — no dense recorder at the
// synthetic scale.
func TestSyntheticHeatmapArtifacts(t *testing.T) {
	dir := t.TempDir()
	table := &Table{ID: "fig5a", Title: "t", Columns: []string{"a"}}
	table.AddRow("x")
	cfg := Config{Quick: true, MaxRanks: 4096}
	if err := WriteArtifacts(dir, table, cfg, "fig5a"); err != nil {
		t.Fatal(err)
	}
	pgm, err := os.ReadFile(filepath.Join(dir, "fig5a_synthetic.pgm"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(pgm), "P2\n1024 1024\n255\n") {
		t.Fatalf("synthetic PGM header = %q", string(pgm[:24]))
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig5a_synthetic.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "src,dst,bytes,msgs\n") {
		t.Fatal("synthetic CSV missing triplet header")
	}
	// fig5b: the zoom artifact covers the first four nodes' ranks only.
	if err := WriteArtifacts(dir, table, cfg, "fig5b"); err != nil {
		t.Fatal(err)
	}
	zoom, err := os.ReadFile(filepath.Join(dir, "fig5b_synthetic.pgm"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(zoom), "P2\n32 32\n255\n") { // 4 nodes × 8 ranks (quick)
		t.Fatalf("fig5b synthetic PGM header = %q", string(zoom[:16]))
	}
}
