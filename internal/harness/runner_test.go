package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

// subset keeps the runner test fast while still covering experiments that
// share the traced-rig cache (fig3a/fig4a) and ones that do not (table1).
func runnerSubset(t *testing.T) []Experiment {
	t.Helper()
	var out []Experiment
	for _, id := range []string{"table1", "fig3a", "fig4a", "table2"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func renderAll(t *testing.T, results []RunResult) string {
	t.Helper()
	var sb strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Experiment.ID, r.Err)
		}
		sb.WriteString(r.Table.ASCII())
	}
	return sb.String()
}

// TestRunParallelMatchesSerial is the acceptance property behind
// `hcrun -exp all -quick -parallel`: pooled execution must produce
// byte-identical tables in the same order as a serial run.
func TestRunParallelMatchesSerial(t *testing.T) {
	exps := runnerSubset(t)
	serial := renderAll(t, Run(quick, exps, 1))
	parallel := renderAll(t, Run(quick, exps, 4))
	if serial != parallel {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestRunPreservesOrderAndElapsed(t *testing.T) {
	exps := runnerSubset(t)
	results := Run(quick, exps, 0) // 0 = DefaultWorkers
	if len(results) != len(exps) {
		t.Fatalf("got %d results, want %d", len(results), len(exps))
	}
	for i, r := range results {
		if r.Experiment.ID != exps[i].ID {
			t.Errorf("result %d is %s, want %s", i, r.Experiment.ID, exps[i].ID)
		}
		if r.Err == nil && r.Elapsed <= 0 {
			t.Errorf("%s: non-positive elapsed %v", r.Experiment.ID, r.Elapsed)
		}
	}
}

func TestResultsJSON(t *testing.T) {
	exps := runnerSubset(t)[:1]
	doc, err := ResultsJSON(Run(quick, exps, 1))
	if err != nil {
		t.Fatal(err)
	}
	var parsed []struct {
		ID        string     `json:"id"`
		Columns   []string   `json:"columns"`
		Rows      [][]string `json:"rows"`
		ElapsedMS float64    `json:"elapsed_ms"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("ResultsJSON emitted invalid JSON: %v\n%s", err, doc)
	}
	if len(parsed) != 1 || parsed[0].ID != "table1" {
		t.Fatalf("unexpected JSON shape: %+v", parsed)
	}
	if len(parsed[0].Rows) == 0 || len(parsed[0].Columns) == 0 {
		t.Errorf("JSON missing table payload: %+v", parsed[0])
	}
}
