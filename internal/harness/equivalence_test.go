package harness

import (
	"testing"

	"hierclust/internal/core"
	"hierclust/internal/reliability"
)

// TestTable2PaperScaleMultilevelEquivalence is the prerequisite the ROADMAP
// names for flipping the single-scale experiments (table2, fig5c) from the
// hard-coded single-level partitioner to the multilevel one: it pins, at
// the paper's full 1024-rank/64-node configuration, how the four Table II
// dimensions behave when the hierarchical strategy runs multilevel.
//
// Two regimes are covered:
//
//  1. Default options. The paper-scale node graph (64 nodes) sits below the
//     default CoarsenThreshold (128), where Partition guarantees the
//     multilevel flag is inert — so every metric must be EXACTLY equal.
//     This is the fact that makes the future flip safe: at paper scale the
//     golden tables cannot change.
//
//  2. Forced coarsening (CoarsenThreshold 16), the regime the flag exists
//     for. The clustering may legitimately differ; the documented tolerance
//     is that the multilevel evaluation stays within the paper's baseline
//     on all four dimensions and within bounded drift of single-level:
//     logged fraction and recovery fraction within 1.3×, catastrophe
//     probability within 2×, encode seconds within 2× (coarse clusters can
//     shift the L2 group-size distribution, which quantizes encode time).
//
// The golden files are NOT flipped in this PR; this test is the gate that
// makes the flip a deliberate, reviewable step.
func TestTable2PaperScaleMultilevelEquivalence(t *testing.T) {
	cfg := Config{} // zero value = the paper's full 1024-rank configuration
	cfg.normalize()
	r, err := tracedRig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evaluate := func(opts core.HierOptions) *core.Evaluation {
		t.Helper()
		h, err := core.Hierarchical(r.matrix, r.placement, opts)
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.Evaluate(h, r.matrix, r.placement, reliability.DefaultMix())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	base := evaluate(core.HierOptions{})

	// Regime 1: inert below the threshold — exact equality, bit for bit.
	ml := evaluate(core.HierOptions{Multilevel: true})
	if ml.LoggedFraction != base.LoggedFraction ||
		ml.RecoveryFraction != base.RecoveryFraction ||
		ml.EncodeSecondsPerGB != base.EncodeSecondsPerGB ||
		ml.CatastropheProb != base.CatastropheProb {
		t.Fatalf("multilevel at default threshold changed paper-scale metrics:\n single %+v\n multi  %+v",
			metricRow(base), metricRow(ml))
	}

	// Regime 2: forced coarsening — within baseline, bounded drift.
	deep := evaluate(core.HierOptions{Multilevel: true, CoarsenThreshold: 16})
	if ok, viol := deep.Meets(core.DefaultBaseline()); !ok {
		t.Fatalf("forced-coarsening multilevel leaves the paper baseline: %v", viol)
	}
	withinFactor := func(name string, got, want, factor float64) {
		t.Helper()
		if want == 0 {
			if got != 0 {
				t.Errorf("%s: got %g, single-level 0", name, got)
			}
			return
		}
		if r := got / want; r > factor || r < 1/factor {
			t.Errorf("%s: multilevel %g vs single-level %g (ratio %.3f outside 1/%g..%g)",
				name, got, want, r, factor, factor)
		}
	}
	withinFactor("logged fraction", deep.LoggedFraction, base.LoggedFraction, 1.3)
	withinFactor("recovery fraction", deep.RecoveryFraction, base.RecoveryFraction, 1.3)
	withinFactor("catastrophe probability", deep.CatastropheProb, base.CatastropheProb, 2)
	withinFactor("encode seconds/GB", deep.EncodeSecondsPerGB, base.EncodeSecondsPerGB, 2)
}

func metricRow(e *core.Evaluation) [4]float64 {
	return [4]float64{e.LoggedFraction, e.RecoveryFraction, e.EncodeSecondsPerGB, e.CatastropheProb}
}
