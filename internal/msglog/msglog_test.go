package msglog

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendAssignsSequentialSeqs(t *testing.T) {
	l := NewLog(3)
	if l.Sender() != 3 {
		t.Errorf("Sender = %d", l.Sender())
	}
	e0 := l.Append(7, 1, 0, []byte("a"))
	e1 := l.Append(7, 1, 0, []byte("bb"))
	e2 := l.Append(9, 1, 0, []byte("c"))
	if e0.Seq != 0 || e1.Seq != 1 {
		t.Errorf("seqs to 7 = %d,%d, want 0,1", e0.Seq, e1.Seq)
	}
	if e2.Seq != 0 {
		t.Errorf("seq to 9 = %d, want 0 (independent channel)", e2.Seq)
	}
	if l.Bytes() != 4 {
		t.Errorf("Bytes = %d, want 4", l.Bytes())
	}
	if l.Count() != 3 {
		t.Errorf("Count = %d, want 3", l.Count())
	}
}

func TestAdvanceInterleavesWithAppend(t *testing.T) {
	// Intra-cluster messages advance the channel seq without logging.
	l := NewLog(0)
	if s := l.Advance(5); s != 0 {
		t.Errorf("Advance = %d, want 0", s)
	}
	e := l.Append(5, 0, 0, []byte("x"))
	if e.Seq != 1 {
		t.Errorf("Append after Advance seq = %d, want 1", e.Seq)
	}
	if l.NextSeq(5) != 2 {
		t.Errorf("NextSeq = %d, want 2", l.NextSeq(5))
	}
	if l.Count() != 1 {
		t.Errorf("Count = %d, want 1 (Advance must not log)", l.Count())
	}
}

func TestAppendCopiesPayload(t *testing.T) {
	l := NewLog(0)
	buf := []byte{1, 2}
	l.Append(1, 0, 0, buf)
	buf[0] = 99
	got := l.Replay(1, 0)
	if got[0].Payload[0] != 1 {
		t.Error("log aliased caller's buffer")
	}
}

func TestReplayFromSeq(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 5; i++ {
		l.Append(2, 0, 0, []byte{byte(i)})
	}
	got := l.Replay(2, 3)
	if len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Errorf("Replay(2,3) = %+v", got)
	}
	if got := l.Replay(4, 0); got != nil {
		t.Errorf("Replay of unknown dest = %+v", got)
	}
}

func TestTrimByEpoch(t *testing.T) {
	l := NewLog(0)
	l.Append(1, 0, 0, make([]byte, 10)) // epoch 0
	l.Append(1, 0, 1, make([]byte, 20)) // epoch 1
	l.Append(2, 0, 0, make([]byte, 30)) // epoch 0
	freed := l.Trim(1)
	if freed != 40 {
		t.Errorf("Trim freed %d, want 40", freed)
	}
	if l.Bytes() != 20 || l.Count() != 1 {
		t.Errorf("after trim: %d bytes, %d entries", l.Bytes(), l.Count())
	}
	if d := l.Dests(); len(d) != 1 || d[0] != 1 {
		t.Errorf("Dests after trim = %v", d)
	}
	// Trimming must not disturb sequence counters.
	if l.NextSeq(1) != 2 || l.NextSeq(2) != 1 {
		t.Errorf("seq counters after trim: %d, %d", l.NextSeq(1), l.NextSeq(2))
	}
}

func TestSeqSnapshotRestore(t *testing.T) {
	l := NewLog(0)
	l.Append(1, 0, 0, []byte("a"))
	l.Append(1, 0, 0, []byte("b"))
	l.Append(2, 0, 0, []byte("c"))
	snap := l.SeqSnapshot()
	l.Append(1, 0, 0, []byte("d"))
	l.RestoreSeq(snap)
	if l.NextSeq(1) != 2 || l.NextSeq(2) != 1 {
		t.Errorf("restored seqs = %d, %d", l.NextSeq(1), l.NextSeq(2))
	}
	l.ResetSeq(1, 0)
	if l.NextSeq(1) != 0 {
		t.Errorf("ResetSeq failed: %d", l.NextSeq(1))
	}
	// snapshot is a copy, not a view
	snap[9] = 42
	if l.NextSeq(9) == 42 {
		t.Error("SeqSnapshot returned aliased map")
	}
}

func TestDedupAcceptRejectsDuplicates(t *testing.T) {
	d := NewDedup()
	ok, err := d.Accept(5, 0)
	if err != nil || !ok {
		t.Fatalf("first message: %v %v", ok, err)
	}
	ok, err = d.Accept(5, 1)
	if err != nil || !ok {
		t.Fatalf("second message: %v %v", ok, err)
	}
	ok, err = d.Accept(5, 0) // replayed duplicate
	if err != nil || ok {
		t.Fatalf("duplicate accepted: %v %v", ok, err)
	}
	if _, err = d.Accept(5, 7); err == nil {
		t.Error("sequence gap not detected")
	}
	if d.Cursor(5) != 2 {
		t.Errorf("Cursor = %d, want 2", d.Cursor(5))
	}
	// independent channels
	ok, err = d.Accept(6, 0)
	if err != nil || !ok {
		t.Errorf("other channel: %v %v", ok, err)
	}
}

func TestDedupSnapshotRestore(t *testing.T) {
	d := NewDedup()
	_, _ = d.Accept(1, 0)
	_, _ = d.Accept(1, 1)
	snap := d.Snapshot()
	_, _ = d.Accept(1, 2)
	d.Restore(snap)
	// After restore, seq 2 is new again (the rolled-back receiver will
	// legitimately re-receive it from replay).
	ok, err := d.Accept(1, 2)
	if err != nil || !ok {
		t.Errorf("post-restore accept: %v %v", ok, err)
	}
	snap[3] = 9
	if d.Cursor(3) == 9 {
		t.Error("Snapshot returned aliased map")
	}
}

func TestRecoveryHandshake(t *testing.T) {
	// End-to-end recovery semantics: receiver checkpoints its cursors,
	// keeps receiving, fails, restores, and replay from the sender's log
	// regenerates exactly the lost messages.
	sender := NewLog(0)
	recv := NewDedup()

	deliver := func(e Entry) bool {
		ok, err := recv.Accept(0, e.Seq)
		if err != nil {
			t.Fatalf("deliver: %v", err)
		}
		return ok
	}

	var delivered []byte
	// epoch 0: two messages, then a coordinated checkpoint
	for i := 0; i < 2; i++ {
		e := sender.Append(1, 0, 0, []byte{byte(i)})
		if deliver(e) {
			delivered = append(delivered, e.Payload[0])
		}
	}
	recvSnap := recv.Snapshot()
	senderSnap := sender.SeqSnapshot()
	_ = senderSnap

	// epoch 1: three more messages, then the receiver fails
	for i := 2; i < 5; i++ {
		e := sender.Append(1, 0, 1, []byte{byte(i)})
		if deliver(e) {
			delivered = append(delivered, e.Payload[0])
		}
	}

	// Failure: receiver rolls back to checkpoint.
	recv.Restore(recvSnap)
	rolledBack := delivered[:2]

	// Replay everything from the receiver's cursor.
	var replayed []byte
	for _, e := range sender.Replay(1, recv.Cursor(0)) {
		if deliver(e) {
			replayed = append(replayed, e.Payload[0])
		}
	}
	got := append(append([]byte{}, rolledBack...), replayed...)
	want := []byte{0, 1, 2, 3, 4}
	if string(got) != string(want) {
		t.Errorf("after recovery delivered %v, want %v", got, want)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := NewLog(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(dest int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(dest, 0, 0, []byte{1})
			}
		}(w)
	}
	wg.Wait()
	if l.Count() != 800 || l.Bytes() != 800 {
		t.Errorf("after concurrent appends: %d entries, %d bytes", l.Count(), l.Bytes())
	}
	for d := 0; d < 8; d++ {
		if l.NextSeq(d) != 100 {
			t.Errorf("dest %d seq = %d, want 100", d, l.NextSeq(d))
		}
	}
}

// Property: for any interleaving of appends across destinations, Replay
// returns entries in strictly increasing seq order with no gaps from the
// requested cursor.
func TestReplayOrderProperty(t *testing.T) {
	f := func(destsRaw []uint8, from uint8) bool {
		l := NewLog(0)
		for _, d := range destsRaw {
			l.Append(int(d%4), 0, 0, []byte{d})
		}
		for d := 0; d < 4; d++ {
			cursor := uint64(from) % (l.NextSeq(d) + 1)
			entries := l.Replay(d, cursor)
			want := cursor
			for _, e := range entries {
				if e.Seq != want {
					return false
				}
				want++
			}
			if want != l.NextSeq(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
