// Package msglog implements sender-based message logging (Johnson &
// Zwaenepoel, reference [14] of the paper), the ingredient hybrid
// checkpointing protocols use for inter-cluster messages. Each sender keeps
// the payload of every logged message in memory, stamped with a per-channel
// sequence number and the sender's checkpoint epoch. After a failure the
// surviving senders replay their logged payloads to the restarted cluster;
// receivers use sequence numbers to discard duplicates of messages they
// already delivered.
//
// The memory footprint of these logs is the paper's fourth optimization
// dimension: clusterings that log more than ~20% of traffic exhaust log
// memory between checkpoints (see internal/models.LogMemory).
package msglog

import (
	"fmt"
	"sort"
	"sync"
)

// Entry is one logged message.
type Entry struct {
	// Dest is the receiver's world rank.
	Dest int
	// Tag is the application tag the message was sent with.
	Tag int64
	// Seq is the per-(sender,dest) channel sequence number, starting at 0.
	Seq uint64
	// Epoch is the sender's checkpoint epoch at send time. Entries from
	// epochs at or before a stable checkpoint line are discardable.
	Epoch int
	// Payload is the message body (owned by the log).
	Payload []byte
}

// Log is one sender's message log. It is safe for concurrent use.
type Log struct {
	sender int

	mu      sync.Mutex
	byDest  map[int][]Entry
	nextSeq map[int]uint64
	bytes   int64
	count   int64
}

// NewLog creates the log for a sender rank.
func NewLog(sender int) *Log {
	return &Log{sender: sender, byDest: map[int][]Entry{}, nextSeq: map[int]uint64{}}
}

// Sender returns the owning rank.
func (l *Log) Sender() int { return l.sender }

// NextSeq returns the sequence number the next message to dest will carry,
// without logging anything. Senders stamp *every* message on a channel with
// consecutive sequence numbers (logged or not) so receivers can detect
// replay duplicates; only inter-cluster payloads are retained.
func (l *Log) NextSeq(dest int) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq[dest]
}

// Advance consumes the next sequence number for dest without retaining a
// payload — used for intra-cluster messages, which need sequencing but not
// logging.
func (l *Log) Advance(dest int) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.nextSeq[dest]
	l.nextSeq[dest] = s + 1
	return s
}

// Append logs a message payload to dest and returns the entry (with its
// assigned sequence number). The payload is copied.
//
// If an entry with the assigned sequence number is already retained — a
// rolled-back sender deterministically re-sending a message it logged
// before the failure — the existing entry is returned unchanged rather
// than duplicated (send-determinism guarantees equal payloads).
func (l *Log) Append(dest int, tag int64, epoch int, payload []byte) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.nextSeq[dest]
	l.nextSeq[dest] = s + 1
	for i := len(l.byDest[dest]) - 1; i >= 0; i-- {
		if e := l.byDest[dest][i]; e.Seq == s {
			return e
		}
	}
	e := Entry{Dest: dest, Tag: tag, Seq: s, Epoch: epoch, Payload: append([]byte(nil), payload...)}
	l.byDest[dest] = append(l.byDest[dest], e)
	l.bytes += int64(len(payload))
	l.count++
	return e
}

// Bytes returns the total logged payload bytes currently held.
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Count returns the number of retained entries.
func (l *Log) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Trim discards entries whose epoch is strictly below minEpoch: once every
// rank of the receiving cluster has a stable checkpoint of epoch E, messages
// sent in epochs < E can never be replayed and are freed. Returns the bytes
// freed.
func (l *Log) Trim(minEpoch int) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var freed int64
	for dest, entries := range l.byDest {
		kept := entries[:0]
		for _, e := range entries {
			if e.Epoch >= minEpoch {
				kept = append(kept, e)
			} else {
				freed += int64(len(e.Payload))
				l.count--
			}
		}
		if len(kept) == 0 {
			delete(l.byDest, dest)
		} else {
			l.byDest[dest] = append([]Entry(nil), kept...)
		}
	}
	l.bytes -= freed
	return freed
}

// Replay returns the retained entries destined to dest with Seq >= fromSeq,
// in sequence order — the messages a restarted receiver must be re-fed.
func (l *Log) Replay(dest int, fromSeq uint64) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Entry
	for _, e := range l.byDest[dest] {
		if e.Seq >= fromSeq {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dests returns the destinations with retained entries, ascending.
func (l *Log) Dests() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int, 0, len(l.byDest))
	for d := range l.byDest {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// ResetSeq rewinds the outgoing sequence counter for dest to seq. A sender
// that itself rolls back re-sends from its checkpointed counters so
// receivers see a consistent sequence stream.
func (l *Log) ResetSeq(dest int, seq uint64) {
	l.mu.Lock()
	l.nextSeq[dest] = seq
	l.mu.Unlock()
}

// SeqSnapshot returns a copy of all outgoing sequence counters, for
// inclusion in the sender's checkpoint.
func (l *Log) SeqSnapshot() map[int]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[int]uint64, len(l.nextSeq))
	for d, s := range l.nextSeq {
		out[d] = s
	}
	return out
}

// RestoreSeq replaces the outgoing counters with a checkpoint snapshot.
func (l *Log) RestoreSeq(snap map[int]uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq = make(map[int]uint64, len(snap))
	for d, s := range snap {
		l.nextSeq[d] = s
	}
}

// Dedup tracks, per incoming channel, the next expected sequence number and
// rejects replays of already-delivered messages. One Dedup lives at each
// receiver.
type Dedup struct {
	mu   sync.Mutex
	next map[int]uint64
}

// NewDedup returns an empty receiver-side duplicate filter.
func NewDedup() *Dedup {
	return &Dedup{next: map[int]uint64{}}
}

// Accept reports whether the message (src, seq) is new, advancing the
// channel cursor when it is. Channels are FIFO, so seq values arrive in
// order; a replayed duplicate carries a seq below the cursor.
func (d *Dedup) Accept(src int, seq uint64) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	next := d.next[src]
	switch {
	case seq == next:
		d.next[src] = next + 1
		return true, nil
	case seq < next:
		return false, nil // duplicate from replay
	default:
		return false, fmt.Errorf("msglog: sequence gap from %d: got %d, expected %d", src, seq, next)
	}
}

// Snapshot returns the channel cursors for inclusion in a checkpoint.
func (d *Dedup) Snapshot() map[int]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int]uint64, len(d.next))
	for s, v := range d.next {
		out[s] = v
	}
	return out
}

// Restore replaces the cursors with a checkpoint snapshot.
func (d *Dedup) Restore(snap map[int]uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.next = make(map[int]uint64, len(snap))
	for s, v := range snap {
		d.next[s] = v
	}
}

// Cursor returns the next expected sequence number from src.
func (d *Dedup) Cursor(src int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.next[src]
}
