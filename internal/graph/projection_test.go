package graph

import (
	"runtime"
	"testing"
)

// The cross-level gain-cache projection is a pure shortcut: a vertex whose
// coarse image converged interior gets its single-entry cache written
// directly (same ascending neighbor summation order, hence the same bits)
// and skips its first-pass evaluation; boundary-image vertices rebuild
// exactly as the unseeded path does. Disabling the projection must therefore
// change nothing — on every golden graph, at serial and parallel worker
// counts.
func TestCacheProjectionBitIdentity(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	defer func() { cacheProjectionOff = false }()
	for _, tc := range goldenGraphs() {
		for _, workers := range []int{1, 8} {
			opts := tc.opts
			opts.Multilevel = true
			opts.Workers = workers
			cacheProjectionOff = false
			seeded, err := Partition(tc.g, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			cacheProjectionOff = true
			rebuilt, err := Partition(tc.g, opts)
			if err != nil {
				t.Fatalf("%s workers=%d (projection off): %v", tc.name, workers, err)
			}
			cacheProjectionOff = false
			for v := range rebuilt {
				if seeded[v] != rebuilt[v] {
					t.Fatalf("%s workers=%d: vertex %d assigned %d seeded, %d with full rebuild",
						tc.name, workers, v, seeded[v], rebuilt[v])
				}
			}
		}
	}
}

// On a graph whose converged clusters are large relative to vertex degree,
// most fine vertices have interior coarse images: the projection must mark
// them interior (boundary flag 0) so the seeded build takes the single-entry
// path. This pins the seeding machinery actually engaging, not just being
// bit-identical by never firing.
func TestCacheProjectionMarksInterior(t *testing.T) {
	g := stencil2D(16384, 128)
	opts := PartitionOptions{MinSize: 16, TargetSize: 64, Multilevel: true}
	if err := opts.normalize(g.N()); err != nil {
		t.Fatal(err)
	}
	g.ensure()
	ar := newPartArena(g)
	defer ar.release()
	part, err := multilevelPartition(g, opts, ar)
	if err != nil {
		t.Fatal(err)
	}
	if NumParts(part) < 2 {
		t.Fatal("degenerate partition, test proves nothing")
	}
	// Reconstruct the finest level's boundary census from the assignment:
	// with TargetSize 64 on a stencil, interior vertices dominate.
	interior := 0
	for v := 0; v < g.N(); v++ {
		cols, _ := g.row(v)
		inSame := true
		for _, c := range cols {
			if part[int(c)] != part[v] {
				inSame = false
				break
			}
		}
		if inSame {
			interior++
		}
	}
	if interior*2 < g.N() {
		t.Fatalf("only %d/%d vertices interior: clusters too fragmented for the projection to matter", interior, g.N())
	}
}
