package graph

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// The multilevel pipeline: heavy-edge-matching coarsening, greedy partition
// of the coarsest graph, and projection back up with the incremental-gain
// refinement run at every level. This is the standard answer of large-graph
// practice (METIS-family partitioners) to the two weaknesses of single-level
// greedy growth: the growth loop is inherently serial, and its local view
// misses community structure that only appears after contraction. Matching
// caps merged vertex weight at TargetSize, so coarse vertices are embryonic
// clusters; the coarsest greedy growth then works on a graph a few hundred
// vertices wide regardless of the input size.
//
// Everything is deterministic by construction: matching proposals are pure
// functions of the frozen CSR and the previous round's state, written to
// per-vertex slots, so the assignment is bit-identical at any worker count.
// All scratch state lives in a per-Partition arena (arena.go) sized once at
// the finest level; a level allocates only the four arrays that must outlive
// it for projection (cmap, vertex weights, and the coarse CSR itself).

// mlLevel is one rung of the coarsening ladder.
type mlLevel struct {
	g *Graph
	// vw[v] = number of original (finest-level) vertices inside v; nil at
	// the finest level (unit weights).
	vw []int
	// cmap[v] = vertex of the next-coarser level's graph containing v; nil
	// on the coarsest level.
	cmap []int32
}

// multilevelPartition runs the coarsen/partition/uncoarsen pipeline. The
// caller has normalized opts, ensured g is frozen, and checked
// n > CoarsenThreshold.
func multilevelPartition(g *Graph, opts PartitionOptions, ar *partArena) ([]int, error) {
	levels := make([]*mlLevel, 1, 24)
	levels[0] = &mlLevel{g: g}
	for {
		cur := levels[len(levels)-1]
		if cur.g.N() <= opts.CoarsenThreshold {
			break
		}
		if opts.cancelled() {
			return nil, ErrCancelled
		}
		li := len(levels) - 1
		setPhase("match", li)
		match, matched := heavyEdgeMatching(cur.g, cur.vw, opts, ar)
		// Stop when matching stalls — nothing matched, or the graph would
		// shrink by less than 10% (each matched pair removes one vertex):
		// a further level costs full matching + contraction + refinement
		// passes for almost no reduction.
		if matched == 0 || matched/2 < cur.g.N()/10 {
			clearPhase()
			break
		}
		setPhase("contract", li)
		coarse, cmap, cvw, err := contract(cur.g, cur.vw, match, matched, opts, ar)
		clearPhase()
		if err != nil {
			return nil, err
		}
		cur.cmap = cmap
		levels = append(levels, &mlLevel{g: coarse, vw: cvw})
	}

	coarsest := levels[len(levels)-1]
	// markBoundary when a finer level exists: the coarsest refinement's
	// converged boundary flags seed the next level's gain-cache build.
	part := singleLevel(coarsest.g, opts, coarsest.vw, ar, len(levels)-1, len(levels) > 1)

	// Project back up, refining at every level: the coarse assignment seeds
	// each finer level, and boundary moves that only make sense at finer
	// granularity are recovered by the same incremental-gain refinement the
	// single-level path runs. Intermediate levels get a trimmed pass budget
	// — their mistakes are still correctable below, and the finest level
	// keeps the caller's full budget for the moves that actually count.
	// The per-level assignment ping-pongs between two arena buffers: the
	// read side is either singleLevel's freshly compacted slice or the
	// other buffer, never the write side.
	//
	// Refinement state projects down with the assignment: the coarser
	// level's converged boundary flags (in ar.state, written by the
	// markBoundary pass) ride through cmap as a cacheSeed, so the finer
	// cache build skips the cluster gathers and the first-pass evaluation
	// for every vertex whose coarse image was interior — on well-clustered
	// graphs, almost all of them. Each level's refinement then records its
	// own flags for the level below (li > 0); the flags are read only
	// during the first pass and rewritten only at convergence, so one
	// buffer serves the whole ladder.
	for li := len(levels) - 2; li >= 0; li-- {
		if opts.cancelled() {
			return nil, ErrCancelled
		}
		l := levels[li]
		coarseN := levels[li+1].g.N()
		fine := ar.projA[:l.g.N()]
		if li%2 == 1 {
			fine = ar.projB[:l.g.N()]
		}
		// One fused loop projects the assignment and accumulates the
		// per-cluster weights; the cluster count comes from the coarse
		// assignment (every coarse id has a fine preimage), keeping the
		// max-scan off the longer fine array.
		k := 0
		for _, p := range part[:coarseN] {
			if p >= k {
				k = p + 1
			}
		}
		sizes := ar.sizesBuf[:k]
		clear(sizes)
		cmap := l.cmap
		if l.vw == nil {
			for v := range fine {
				p := part[cmap[v]]
				fine[v] = p
				sizes[p]++
			}
		} else {
			for v := range fine {
				p := part[cmap[v]]
				fine[v] = p
				sizes[p] += l.vw[v]
			}
		}
		part = fine
		lvlOpts := opts
		if li > 0 && lvlOpts.RefinePasses > 2 {
			lvlOpts.RefinePasses = 2
		}
		seed := &cacheSeed{cmap: cmap, boundary: ar.state[:coarseN]}
		if cacheProjectionOff {
			seed = nil
		}
		setPhase("refine", li)
		refineSeeded(l.g, part, sizes, lvlOpts, l.vw, ar, seed, li > 0)
		clearPhase()
	}
	if opts.cancelled() {
		return nil, ErrCancelled
	}
	return compact(part), nil
}

// cacheProjectionOff disables the cross-level gain-cache projection, forcing
// every level's full rebuild. Test-only: the bit-identity tests pin the
// seeded path against this reference.
var cacheProjectionOff bool

// mergeSmallWeighted is mergeSmall for the weighted (multilevel) path:
// same policy — fold every under-MinSize cluster into the neighbor it
// communicates with most, respecting MaxSize when possible, MinSize being
// the hard constraint — but indexed. Cluster members live in linked lists
// and merged ids resolve through a union-find, so each merge touches only
// the small cluster's own edges instead of rescanning the whole graph;
// weighted growth can leave thousands of matching-leftover small clusters
// where the unit path leaves at most one. Connection weights accumulate in
// an epoch-stamped flat array (one slot per cluster id) instead of a
// per-merge hash map; the winner is an order-independent maximum, so the
// flat scan picks exactly the cluster the map iteration did.
func mergeSmallWeighted(g *Graph, part []int, sizes []int, opts PartitionOptions, ar *partArena) ([]int, []int) {
	n := g.N()
	k := len(sizes)
	head := ar.head[:k]
	tail := ar.tail[:k]
	for i := range head {
		head[i], tail[i] = -1, -1
	}
	next := ar.next[:n]
	for v := n - 1; v >= 0; v-- { // prepend descending → lists ascend
		id := part[v]
		next[v] = head[id]
		head[id] = int32(v)
		if tail[id] == -1 {
			tail[id] = int32(v)
		}
	}
	parent := ar.parent[:k]
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(id int32) int32 {
		for parent[id] != id {
			parent[id] = parent[parent[id]] // path halving
			id = parent[id]
		}
		return id
	}
	active := 0
	queue := ar.queue[:0]
	for id := 0; id < k; id++ {
		if sizes[id] > 0 {
			active++
			if sizes[id] < opts.MinSize {
				queue = append(queue, int32(id))
			}
		}
	}
	connW := ar.mergeW[:k]
	stamp := ar.mergeStamp[:k]
	for qi := 0; qi < len(queue); qi++ {
		small := find(queue[qi])
		if sizes[small] == 0 || sizes[small] >= opts.MinSize {
			continue // already merged away or grown past the bound
		}
		if active <= 1 {
			break // nothing to merge with
		}
		ar.mergeEpoch++
		epoch := ar.mergeEpoch
		touched := ar.touched[:0]
		for v := head[small]; v != -1; v = next[v] {
			cols, ws := g.row(int(v))
			for i, c := range cols {
				if root := find(int32(part[c])); root != small {
					if stamp[root] != epoch {
						stamp[root] = epoch
						connW[root] = 0
						touched = append(touched, root)
					}
					connW[root] += ws[i]
				}
			}
		}
		target := int32(-1)
		bestW := -1.0
		for _, id := range touched {
			w := connW[id]
			fits := opts.MaxSize == 0 || sizes[id]+sizes[small] <= opts.MaxSize
			if fits && (w > bestW || (w == bestW && (target == -1 || id < target))) {
				target, bestW = id, w
			}
		}
		if target == -1 { // no fitting neighbor: relax MaxSize, then fall
			for _, id := range touched { // back to smallest cluster overall
				w := connW[id]
				if w > bestW || (w == bestW && (target == -1 || id < target)) {
					target, bestW = id, w
				}
			}
		}
		if target == -1 {
			for id := 0; id < k; id++ {
				root := int32(id)
				if parent[root] != root || root == small || sizes[root] == 0 {
					continue
				}
				if target == -1 || sizes[root] < sizes[target] {
					target = root
				}
			}
		}
		if target == -1 {
			break
		}
		// Union: target survives; concat the member lists.
		parent[small] = target
		sizes[target] += sizes[small]
		sizes[small] = 0
		if head[target] == -1 {
			head[target], tail[target] = head[small], tail[small]
		} else {
			next[tail[target]] = head[small]
			tail[target] = tail[small]
		}
		active--
		if sizes[target] < opts.MinSize {
			queue = append(queue, target)
		}
	}
	for v := range part {
		part[v] = int(find(int32(part[v])))
	}
	return part, sizes
}

// weightedSizesInto sums vertex weights per part id into buf.
func weightedSizesInto(buf []int, part []int, vw []int) []int {
	sizes := buf[:NumParts(part)]
	clear(sizes)
	for v, p := range part {
		sizes[p] += vweight(vw, v)
	}
	return sizes
}

// matchCoin deterministically splits vertices into proposers (true) and
// acceptors (false) per round, by a splitmix-style hash. A naive symmetric
// handshake ("everyone proposes to their heaviest neighbor") deadlocks on
// uniform-weight graphs — every stencil vertex proposes to the same-side
// neighbor and almost nothing is mutual — while the coin breaks the
// symmetry with no randomness at run time: the role of (vertex, round) is a
// pure function, identical on every machine and worker count.
func matchCoin(v int, round int) bool {
	x := uint64(v)*0x9e3779b97f4a7c15 + uint64(round+1)*0xbf58476d1ce4e5b9
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x&1 == 1
}

// heavyEdgeMatching computes a matching preferring heavy edges via
// deterministic proposer/acceptor rounds: each round the coin splits the
// unmatched vertices, proposers pick their heaviest unmatched acceptor
// neighbor within the TargetSize weight cap, acceptors take their heaviest
// incoming proposal, and agreeing pairs bind. Every phase writes only
// per-vertex slots from read-only state, so the matching — and hence the
// partition — never depends on the worker count. match[v] is the partner
// vertex, or -1 when v stays single; matched counts the non-single vertices
// so the caller can detect a stall before contracting.
//
// Per round the phases walk a worklist of the still-unmatched vertices
// (descending fast on structured graphs), with each vertex's role for the
// round folded into one byte — 0 unmatched acceptor, 1 unmatched proposer,
// 2 matched — so the hot neighbor-eligibility test is a single load instead
// of a coin re-hash plus a match lookup. cand[x] is kept -1 for every
// matched x, which lets later rounds skip the full reset the original
// implementation paid. Acceptance scatters forward from the proposers: each
// proposer challenges its chosen acceptor's slot as it proposes, so no pass
// ever rescans an acceptor's adjacency. In parallel the challenge is a CAS
// loop — the slot converges to the maximum by (proposal weight, then lowest
// proposer index), a total order, so the winner is independent of arrival
// order and identical to the serial scatter's. A challenger reads a rival's
// candW only after loading the rival's index from the accept slot the rival
// published with its CAS, which orders the read after the write.
func heavyEdgeMatching(g *Graph, vw []int, opts PartitionOptions, ar *partArena) (match []int32, matched int) {
	n := g.N()
	match = ar.match[:n]
	for i := range match {
		match[i] = -1
	}
	cand := ar.cand[:n]
	accept := ar.accept[:n]
	candW := ar.candW[:n]
	state := ar.state[:n]
	work := ar.work[:n]
	nextWork := ar.work2[:n]
	maxW := opts.TargetSize
	// A vertex too heavy to pair with even the lightest possible partner
	// (weight 1) can never match: take it out of the worklist for the whole
	// level and mark it ineligible, so neither the round passes nor the
	// neighbor scans ever revisit it. At the near-saturated coarse levels
	// this removes the majority of the graph — including the whole stall
	// round that otherwise computes a matching just to discard it. When the
	// weight cap fits in six bits (every practical TargetSize) each
	// eligible vertex's weight is packed into the high bits of its state
	// byte, making the proposer scan's eligibility test a single load:
	// role in the low two bits (0 acceptor, 1 proposer, 2 matched,
	// 3 ineligible), weight above.
	packed := vw != nil && maxW <= 63
	nwork := 0
	for u := 0; u < n; u++ {
		w := vweight(vw, u)
		if w+1 > maxW {
			state[u] = 3
			// The parallel acceptor phase scans neighbors' cand slots, and
			// an ineligible vertex never passes through the phase-1 reset:
			// clear it here or a stale id (arena reuse, earlier level)
			// could read as a live proposal and bind a false match.
			cand[u] = -1
			continue
		}
		if packed {
			state[u] = uint8(w << 2)
		} else {
			state[u] = 0
		}
		work[nwork] = int32(u)
		nwork++
	}
	// With unit vertex weights any pair weighs 2: the TargetSize cap either
	// never binds or always does, so the eligibility test drops out of the
	// inner loop entirely.
	unitFits := vw == nil && maxW >= 2
	if effectiveWorkers(n, opts.Workers) <= 1 {
		matched = serialMatchingRounds(g, vw, opts, ar, match, work[:nwork], unitFits, packed)
		return match, matched
	}
	for round := 0; round < opts.MatchingRounds && nwork > 0; round++ {
		parallelVertexRanges(nwork, opts.Workers, func(lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				u := work[wi]
				accept[u] = -1
				if matchCoin(int(u), round) {
					state[u] = state[u]&^3 | 1
				} else {
					state[u] &^= 3
				}
			}
		})
		// Proposal phase: proposers pick their heaviest eligible acceptor
		// and immediately challenge that acceptor's slot. Ascending columns
		// make the first strictly heavier neighbor the smallest-indexed
		// one, so ties break low without an explicit comparison. (A
		// self-loop's state is 1 or 2 here — u is in the worklist as a
		// proposer — so the state test also rejects v == u.) The challenge
		// CAS-maximizes accept[best] by (weight, then lowest index): a
		// rival's weight is its candW slot, written before the rival's CAS
		// published its index, so the acquire on the slot load makes the
		// read safe. The converged winner is the same
		// heaviest-proposal-lowest-index one the retired acceptor-side
		// adjacency rescan computed, one full parallel pass cheaper.
		parallelVertexRanges(nwork, opts.Workers, func(lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				u := int(work[wi])
				cand[u] = -1
				if state[u]&3 != 1 {
					continue
				}
				cols, ws := g.row(u)
				best, bestW := int32(-1), -1.0
				switch {
				case unitFits:
					for i, c := range cols {
						if state[c] == 0 && ws[i] > bestW {
							best, bestW = c, ws[i]
						}
					}
				case packed:
					wu := vweight(vw, u)
					for i, c := range cols {
						s := state[c]
						if s&3 != 0 || wu+int(s>>2) > maxW {
							continue
						}
						if ws[i] > bestW {
							best, bestW = c, ws[i]
						}
					}
				default:
					wu := vweight(vw, u)
					for i, c := range cols {
						if state[c]&3 != 0 {
							continue
						}
						if wu+vweight(vw, int(c)) > maxW {
							continue
						}
						if ws[i] > bestW {
							best, bestW = c, ws[i]
						}
					}
				}
				cand[u] = best
				candW[u] = bestW
				if best < 0 {
					continue
				}
				slot := &accept[best]
				for {
					cur := atomic.LoadInt32(slot)
					if cur >= 0 {
						curW := candW[cur]
						if curW > bestW || (curW == bestW && cur < int32(u)) {
							break // standing rival wins
						}
					}
					if atomic.CompareAndSwapInt32(slot, cur, int32(u)) {
						break
					}
				}
			}
		})
		// Phase 3: bind agreeing pairs; each vertex writes only its own
		// match/cand/state slots. An accepted proposer always binds
		// symmetrically: accept[v] = u implies cand[u] = v. Newly matched
		// vertices zero their cand slot to uphold the worklist invariant.
		var progressed atomic.Bool
		parallelVertexRanges(nwork, opts.Workers, func(lo, hi int) {
			any := false
			for wi := lo; wi < hi; wi++ {
				u := work[wi]
				if state[u]&3 == 1 {
					if v := cand[u]; v >= 0 && accept[v] == u {
						match[u] = v
						cand[u] = -1
						state[u] = state[u]&^3 | 2
						any = true
					}
				} else if p := accept[u]; p >= 0 {
					match[u] = p
					cand[u] = -1
					state[u] = state[u]&^3 | 2
					any = true
				}
			}
			if any {
				progressed.Store(true)
			}
		})
		if !progressed.Load() {
			break
		}
		// Rebuild the worklist (ascending, deterministic) for the next
		// round; matched vertices leave it forever.
		nw := 0
		for wi := 0; wi < nwork; wi++ {
			if u := work[wi]; match[u] == -1 {
				nextWork[nw] = u
				nw++
			}
		}
		work, nextWork = nextWork, work
		nwork = nw
	}
	for _, m := range match {
		if m != -1 {
			matched++
		}
	}
	return match, matched
}

// serialMatchingRounds is heavyEdgeMatching's single-worker form: the same
// rounds, proposals, and bindings, but with the phases fused and the
// worklist segregated by role. Each round keeps the still-unmatched
// vertices in two ascending lists — this round's proposers and acceptors —
// so no pass pays the unpredictable per-vertex role branch. Pass one walks
// the proposers, picks each one's heaviest eligible acceptor, and
// immediately challenges that acceptor's current-best slot (proposer order
// is ascending and the challenge is strict >, so the lowest-index proposer
// wins weight ties: exactly the winner the parallel form's
// ascending-column acceptor scan finds). Pass two binds each segment's
// agreeing pairs in place; a final merge of the two survivor streams flips
// the next round's coins while restoring the global ascending order the
// challenge tie-break depends on. accept slots are validated by a
// monotonically increasing round stamp instead of being reset. The
// computed matching is identical to the parallel form's.
func serialMatchingRounds(g *Graph, vw []int, opts PartitionOptions, ar *partArena, match []int32, eligible []int32, unitFits, packed bool) (matched int) {
	n := g.N()
	cand := ar.cand[:n]
	accept := ar.accept[:n]
	acceptRound := ar.acceptRound[:n]
	candW := ar.candW[:n]
	state := ar.state[:n]
	maxW := opts.TargetSize
	props, accs := ar.workP[:n], ar.workA[:n]
	propsB, accsB := ar.work2[:n], ar.work[:n]
	np, na := 0, 0
	for _, u := range eligible {
		if matchCoin(int(u), 0) {
			state[u] = state[u]&^3 | 1
			props[np] = u
			np++
		} else {
			state[u] &^= 3
			accs[na] = u
			na++
		}
	}
	for round := 0; round < opts.MatchingRounds && np+na > 0; round++ {
		ar.matchRound++
		stamp := ar.matchRound
		// Pass 1: proposers pick and challenge.
		for pi := 0; pi < np; pi++ {
			u := int(props[pi])
			cols, ws := g.row(u)
			best, bestW := int32(-1), -1.0
			switch {
			case unitFits:
				for i, c := range cols {
					if state[c] == 0 && ws[i] > bestW {
						best, bestW = c, ws[i]
					}
				}
			case packed:
				wu := vweight(vw, u)
				for i, c := range cols {
					s := state[c]
					if s&3 != 0 || wu+int(s>>2) > maxW {
						continue
					}
					if ws[i] > bestW {
						best, bestW = c, ws[i]
					}
				}
			default:
				wu := vweight(vw, u)
				for i, c := range cols {
					if state[c]&3 != 0 {
						continue
					}
					if wu+vweight(vw, int(c)) > maxW {
						continue
					}
					if ws[i] > bestW {
						best, bestW = c, ws[i]
					}
				}
			}
			cand[u] = best
			candW[u] = bestW
			if best >= 0 {
				if acceptRound[best] != stamp {
					acceptRound[best] = stamp
					accept[best] = int32(u)
				} else if bestW > candW[accept[best]] {
					accept[best] = int32(u)
				}
			}
		}
		// Pass 2: bind each segment in place; survivors compact to the
		// segment prefix, preserving ascending order.
		progressed := false
		nw := 0
		for pi := 0; pi < np; pi++ {
			u := props[pi]
			if v := cand[u]; v >= 0 && acceptRound[v] == stamp && accept[v] == u {
				match[u] = v
				state[u] = state[u]&^3 | 2
				cand[u] = -1
				progressed = true
				continue
			}
			props[nw] = u
			nw++
		}
		np = nw
		nw = 0
		for ai := 0; ai < na; ai++ {
			v := accs[ai]
			if acceptRound[v] == stamp {
				if p := accept[v]; p >= 0 {
					match[v] = p
					state[v] = state[v]&^3 | 2
					cand[v] = -1
					progressed = true
					continue
				}
			}
			accs[nw] = v
			nw++
		}
		na = nw
		if !progressed {
			break
		}
		// Merge the two ascending survivor streams, flipping next-round
		// coins on the way; the merged order is the global ascending order
		// the next challenge pass ties-breaks by.
		pi, ai, np2, na2 := 0, 0, 0, 0
		for pi < np || ai < na {
			var u int32
			if ai >= na || (pi < np && props[pi] < accs[ai]) {
				u = props[pi]
				pi++
			} else {
				u = accs[ai]
				ai++
			}
			if matchCoin(int(u), round+1) {
				state[u] = state[u]&^3 | 1
				propsB[np2] = u
				np2++
			} else {
				state[u] &^= 3
				accsB[na2] = u
				na2++
			}
		}
		props, propsB = propsB, props
		accs, accsB = accsB, accs
		np, na = np2, na2
	}
	for _, m := range match {
		if m != -1 {
			matched++
		}
	}
	return matched
}

// contract collapses matched pairs into single vertices, returning the
// coarse graph, the fine→coarse vertex map, and the coarse vertex weights
// (original-vertex counts). Intra-pair edges become self-loops — they can
// never be cut, but they keep coarse strengths comparable for seed ordering,
// mirroring Quotient. The coarse rows are written directly from the match
// slots in one traversal of the fine adjacency (capacity rows filled in
// parallel, coalesced in place, then compacted into an exact-size CSR); the
// staging rows live in the arena and the resulting graph skips FromCSR's
// validation scan, which is redundant for rows sorted by construction.
//
// When the coarse graph lands at or under CoarsenThreshold it is the
// ladder's final level and the only one whose aggregates (strengths for the
// greedy growth's seed order, total/edge count) are ever read; contraction
// then emits them directly, fused into the compaction pass while the rows
// are cache-hot, instead of leaving the deferred finishFreeze to re-traverse
// the whole CSR cold. Intermediate levels keep the deferred (never-taken)
// path — emitting per level would add a full serial pass per level for
// values nothing reads.
func contract(g *Graph, vw []int, match []int32, matched int, opts PartitionOptions, ar *partArena) (*Graph, []int32, []int, error) {
	n := g.N()
	nc := n - matched/2
	cmap := ar.i32s.take(n)
	cvw := ar.ints.take(nc)
	// One pass over the match slots numbers the coarse vertices, records
	// each one's constituents (mem2 -1 when single), sums its weight, and
	// accumulates the capacity-row prefix — a coarse row holds at most the
	// combined degree of its constituents. A pair is handled entirely at
	// its smaller endpoint (the partner is known from the match slot), so
	// the fused pass needs no second sweep; only cmap of the larger
	// endpoint is filled when reached, for the gather below.
	mem1 := ar.mem1[:nc]
	mem2 := ar.mem2[:nc]
	capPtr := ar.capPtr[:nc+1]
	capPtr[0] = 0
	i := 0
	for u := 0; u < n; u++ {
		m := int(match[u])
		if m != -1 && m < u {
			cmap[u] = cmap[m] // pair already handled at its smaller endpoint
			continue
		}
		if i == nc {
			i++ // would overflow the promised count; fail below
			break
		}
		cmap[u] = int32(i)
		mem1[i] = int32(u)
		d := g.rowptr[u+1] - g.rowptr[u]
		if m == -1 {
			mem2[i] = -1
			cvw[i] = vweight(vw, u)
		} else { // m > u: fold the partner in now
			mem2[i] = int32(m)
			cvw[i] = vweight(vw, u) + vweight(vw, m)
			d += g.rowptr[m+1] - g.rowptr[m]
		}
		capPtr[i+1] = capPtr[i] + d
		i++
	}
	if i != nc {
		// matched must count exactly the paired vertices; anything else
		// means the matching broke its own symmetry invariant.
		return nil, nil, nil, fmt.Errorf("graph: contract numbered %d coarse vertices, matching promised %d", i, nc)
	}
	col := ar.cooCol(capPtr[nc])
	w := ar.cooW(capPtr[nc])
	cnt := ar.cnt[:nc]
	parallelVertexRanges(nc, opts.Workers, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			base := capPtr[c]
			k := int64(0)
			gather := func(u int32) {
				cols, ws := g.row(int(u))
				for i, cc := range cols {
					tc := cmap[cc]
					// Intra-coarse fine edges appear in both constituent
					// rows; keep the smaller endpoint's copy so the coarse
					// self-loop counts each undirected edge once.
					if int(tc) == c && cc < u {
						continue
					}
					col[base+k], w[base+k] = tc, ws[i]
					k++
				}
			}
			gather(mem1[c])
			if mem2[c] != -1 {
				gather(mem2[c])
			}
			span := col[base : base+k]
			spanW := w[base : base+k]
			sortPairsStable(span, spanW)
			// Coalesce duplicates in place; stable sort keeps gather order
			// within a column, so weight sums are deterministic.
			write := int64(0)
			for i := int64(0); i < k; i++ {
				if write > 0 && span[write-1] == span[i] {
					spanW[write-1] += spanW[i]
				} else {
					span[write], spanW[write] = span[i], spanW[i]
					write++
				}
			}
			cnt[c] = int32(write)
		}
	})
	rowptr := ar.i64s.take(nc + 1)
	rowptr[0] = 0
	for c := 0; c < nc; c++ {
		rowptr[c+1] = rowptr[c] + int64(cnt[c])
	}
	m := rowptr[nc]
	fcol := ar.i32s.take(int(m))
	fbuf := ar.f64s.take(int(m) + nc)
	fw := fbuf[:m]
	strength := fbuf[m:]
	if nc <= opts.CoarsenThreshold {
		// Final level: fuse the aggregate pass into the compaction while
		// the rows are hot. The loop shape — per-row ascending strength
		// sums, one global running total over col >= row entries in
		// (row, index) order — is exactly finishFreeze's, so every emitted
		// float is bit-identical to the deferred pass it replaces.
		var total float64
		nedges := 0
		for c := 0; c < nc; c++ {
			copy(fcol[rowptr[c]:rowptr[c+1]], col[capPtr[c]:capPtr[c]+int64(cnt[c])])
			copy(fw[rowptr[c]:rowptr[c+1]], w[capPtr[c]:capPtr[c]+int64(cnt[c])])
			var s float64
			for i := rowptr[c]; i < rowptr[c+1]; i++ {
				s += fw[i]
				if int(fcol[i]) >= c {
					total += fw[i]
					nedges++
				}
			}
			strength[c] = s
		}
		coarse := newFrozenCSR(nc, rowptr, fcol, fw, strength)
		coarse.adoptAggregates(total, nedges)
		return coarse, cmap, cvw, nil
	}
	for c := 0; c < nc; c++ {
		copy(fcol[rowptr[c]:rowptr[c+1]], col[capPtr[c]:capPtr[c]+int64(cnt[c])])
		copy(fw[rowptr[c]:rowptr[c+1]], w[capPtr[c]:capPtr[c]+int64(cnt[c])])
	}
	return newFrozenCSR(nc, rowptr, fcol, fw, strength), cmap, cvw, nil
}

// sortPairsStable stably sorts the parallel (col, w) arrays by column:
// insertion sort for the short rows contraction produces, library stable
// sort beyond that.
func sortPairsStable(col []int32, w []float64) {
	n := len(col)
	if n <= 48 {
		for i := 1; i < n; i++ {
			c, wt := col[i], w[i]
			j := i - 1
			for j >= 0 && col[j] > c {
				col[j+1], w[j+1] = col[j], w[j]
				j--
			}
			col[j+1], w[j+1] = c, wt
		}
		return
	}
	sort.Stable(&pairSorter{col: col, w: w})
}

type pairSorter struct {
	col []int32
	w   []float64
}

func (p *pairSorter) Len() int           { return len(p.col) }
func (p *pairSorter) Less(i, j int) bool { return p.col[i] < p.col[j] }
func (p *pairSorter) Swap(i, j int) {
	p.col[i], p.col[j] = p.col[j], p.col[i]
	p.w[i], p.w[j] = p.w[j], p.w[i]
}

// mlChunk is the fixed vertex-range chunk size of parallelVertexRanges.
// Fixed — not derived from the worker count — so chunk boundaries, and
// anything a caller could accidentally make depend on them, never change
// with parallelism.
const mlChunk = 4096

// effectiveWorkers resolves the worker count parallelVertexRanges will use
// for an n-element range: 0 means GOMAXPROCS, an explicit count is capped at
// GOMAXPROCS (the pools are CPU-bound, so more workers than P's only buys
// scheduling overhead — notably, a Workers: 8 request on a single-core
// container now runs the cheaper serial paths instead of time-slicing eight
// goroutines), and a range under one chunk never splits. The cap never
// affects results: every parallel phase is bit-identical at any worker
// count by construction.
func effectiveWorkers(n, workers int) int {
	if maxp := runtime.GOMAXPROCS(0); workers <= 0 || workers > maxp {
		workers = maxp
	}
	if nchunks := (n + mlChunk - 1) / mlChunk; workers > nchunks {
		workers = nchunks
	}
	return workers
}

// parallelVertexRanges runs fn over [0,n) in fixed chunks on a small worker
// pool (workers 0 = GOMAXPROCS). Callers must write only to per-vertex
// slots derived from read-only inputs, which makes the serial and parallel
// executions indistinguishable.
func parallelVertexRanges(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nchunks := (n + mlChunk - 1) / mlChunk
	workers = effectiveWorkers(n, workers)
	if workers <= 1 {
		fn(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1) - 1)
				if c >= nchunks {
					return
				}
				lo := c * mlChunk
				hi := lo + mlChunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}
