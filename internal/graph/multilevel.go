package graph

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// The multilevel pipeline: heavy-edge-matching coarsening, greedy partition
// of the coarsest graph, and projection back up with the incremental-gain
// refinement run at every level. This is the standard answer of large-graph
// practice (METIS-family partitioners) to the two weaknesses of single-level
// greedy growth: the growth loop is inherently serial, and its local view
// misses community structure that only appears after contraction. Matching
// caps merged vertex weight at TargetSize, so coarse vertices are embryonic
// clusters; the coarsest greedy growth then works on a graph a few hundred
// vertices wide regardless of the input size.
//
// Everything is deterministic by construction: matching proposals are pure
// functions of the frozen CSR and the previous round's state, written to
// per-vertex slots, so the assignment is bit-identical at any worker count.

// mlLevel is one rung of the coarsening ladder.
type mlLevel struct {
	g *Graph
	// vw[v] = number of original (finest-level) vertices inside v; nil at
	// the finest level (unit weights).
	vw []int
	// cmap[v] = vertex of the next-coarser level's graph containing v; nil
	// on the coarsest level.
	cmap []int
}

// multilevelPartition runs the coarsen/partition/uncoarsen pipeline. The
// caller has normalized opts, ensured g is frozen, and checked
// n > CoarsenThreshold.
func multilevelPartition(g *Graph, opts PartitionOptions) ([]int, error) {
	levels := []*mlLevel{{g: g}}
	for {
		cur := levels[len(levels)-1]
		if cur.g.N() <= opts.CoarsenThreshold {
			break
		}
		match, matched := heavyEdgeMatching(cur.g, cur.vw, opts)
		// Stop when matching stalls — nothing matched, or the graph would
		// shrink by less than 10% (each matched pair removes one vertex):
		// a further level costs full matching + contraction + refinement
		// passes for almost no reduction.
		if matched == 0 || matched/2 < cur.g.N()/10 {
			break
		}
		coarse, cmap, cvw, err := contract(cur.g, cur.vw, match, opts.Workers)
		if err != nil {
			return nil, err
		}
		cur.cmap = cmap
		levels = append(levels, &mlLevel{g: coarse, vw: cvw})
	}

	coarsest := levels[len(levels)-1]
	part := singleLevel(coarsest.g, opts, coarsest.vw)

	// Project back up, refining at every level: the coarse assignment seeds
	// each finer level, and boundary moves that only make sense at finer
	// granularity are recovered by the same incremental-gain refinement the
	// single-level path runs. Intermediate levels get a trimmed pass budget
	// — their mistakes are still correctable below, and the finest level
	// keeps the caller's full budget for the moves that actually count.
	for li := len(levels) - 2; li >= 0; li-- {
		l := levels[li]
		fine := make([]int, l.g.N())
		for v := range fine {
			fine[v] = part[l.cmap[v]]
		}
		part = fine
		sizes := weightedSizes(part, l.vw)
		lvlOpts := opts
		if li > 0 && lvlOpts.RefinePasses > 2 {
			lvlOpts.RefinePasses = 2
		}
		refine(l.g, part, sizes, lvlOpts, l.vw)
	}
	return compact(part), nil
}

// mergeSmallWeighted is mergeSmall for the weighted (multilevel) path:
// same policy — fold every under-MinSize cluster into the neighbor it
// communicates with most, respecting MaxSize when possible, MinSize being
// the hard constraint — but indexed. Cluster members live in linked lists
// and merged ids resolve through a union-find, so each merge touches only
// the small cluster's own edges instead of rescanning the whole graph;
// weighted growth can leave thousands of matching-leftover clusters where
// the unit path leaves at most one.
func mergeSmallWeighted(g *Graph, part []int, sizes []int, opts PartitionOptions) ([]int, []int) {
	n := g.N()
	k := len(sizes)
	head := make([]int32, k)
	tail := make([]int32, k)
	for i := range head {
		head[i], tail[i] = -1, -1
	}
	next := make([]int32, n)
	for v := n - 1; v >= 0; v-- { // prepend descending → lists ascend
		id := part[v]
		next[v] = head[id]
		head[id] = int32(v)
		if tail[id] == -1 {
			tail[id] = int32(v)
		}
	}
	parent := make([]int32, k)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(id int32) int32 {
		for parent[id] != id {
			parent[id] = parent[parent[id]] // path halving
			id = parent[id]
		}
		return id
	}
	active := 0
	var queue []int32
	for id := 0; id < k; id++ {
		if sizes[id] > 0 {
			active++
			if sizes[id] < opts.MinSize {
				queue = append(queue, int32(id))
			}
		}
	}
	conn := map[int32]float64{}
	for qi := 0; qi < len(queue); qi++ {
		small := find(queue[qi])
		if sizes[small] == 0 || sizes[small] >= opts.MinSize {
			continue // already merged away or grown past the bound
		}
		if active <= 1 {
			break // nothing to merge with
		}
		clear(conn)
		for v := head[small]; v != -1; v = next[v] {
			cols, ws := g.row(int(v))
			for i, c := range cols {
				if root := find(int32(part[c])); root != small {
					conn[root] += ws[i]
				}
			}
		}
		target := int32(-1)
		bestW := -1.0
		for id, w := range conn {
			fits := opts.MaxSize == 0 || sizes[id]+sizes[small] <= opts.MaxSize
			if fits && (w > bestW || (w == bestW && (target == -1 || id < target))) {
				target, bestW = id, w
			}
		}
		if target == -1 { // no fitting neighbor: relax MaxSize, then fall
			for id, w := range conn { // back to smallest cluster overall
				if w > bestW || (w == bestW && (target == -1 || id < target)) {
					target, bestW = id, w
				}
			}
		}
		if target == -1 {
			for id := 0; id < k; id++ {
				root := int32(id)
				if parent[root] != root || root == small || sizes[root] == 0 {
					continue
				}
				if target == -1 || sizes[root] < sizes[target] {
					target = root
				}
			}
		}
		if target == -1 {
			break
		}
		// Union: target survives; concat the member lists.
		parent[small] = target
		sizes[target] += sizes[small]
		sizes[small] = 0
		if head[target] == -1 {
			head[target], tail[target] = head[small], tail[small]
		} else {
			next[tail[target]] = head[small]
			tail[target] = tail[small]
		}
		active--
		if sizes[target] < opts.MinSize {
			queue = append(queue, target)
		}
	}
	for v := range part {
		part[v] = int(find(int32(part[v])))
	}
	return part, sizes
}

// weightedSizes sums vertex weights per part id.
func weightedSizes(part []int, vw []int) []int {
	sizes := make([]int, NumParts(part))
	for v, p := range part {
		sizes[p] += vweight(vw, v)
	}
	return sizes
}

// matchCoin deterministically splits vertices into proposers (true) and
// acceptors (false) per round, by a splitmix-style hash. A naive symmetric
// handshake ("everyone proposes to their heaviest neighbor") deadlocks on
// uniform-weight graphs — every stencil vertex proposes to the same-side
// neighbor and almost nothing is mutual — while the coin breaks the
// symmetry with no randomness at run time: the role of (vertex, round) is a
// pure function, identical on every machine and worker count.
func matchCoin(v int, round int) bool {
	x := uint64(v)*0x9e3779b97f4a7c15 + uint64(round+1)*0xbf58476d1ce4e5b9
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x&1 == 1
}

// heavyEdgeMatching computes a matching preferring heavy edges via
// deterministic proposer/acceptor rounds: each round the coin splits the
// unmatched vertices, proposers pick their heaviest unmatched acceptor
// neighbor within the TargetSize weight cap, acceptors take their heaviest
// incoming proposal, and agreeing pairs bind. Every phase writes only
// per-vertex slots from read-only state, so the matching — and hence the
// partition — never depends on the worker count. match[v] is the partner
// vertex, or -1 when v stays single; matched counts the non-single vertices
// so the caller can detect a stall before contracting.
func heavyEdgeMatching(g *Graph, vw []int, opts PartitionOptions) (match []int32, matched int) {
	n := g.N()
	match = make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	cand := make([]int32, n)   // proposer → chosen acceptor
	accept := make([]int32, n) // acceptor → chosen proposer
	maxW := opts.TargetSize
	for round := 0; round < opts.MatchingRounds; round++ {
		// Phase 1: proposers pick their heaviest eligible acceptor.
		// Ascending columns make the first strictly heavier neighbor the
		// smallest-indexed one, so ties break low without an explicit
		// comparison.
		parallelVertexRanges(n, opts.Workers, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				cand[u] = -1
				if match[u] != -1 || !matchCoin(u, round) {
					continue
				}
				wu := vweight(vw, u)
				cols, ws := g.row(u)
				best, bestW := int32(-1), -1.0
				for i, c := range cols {
					v := int(c)
					if v == u || match[v] != -1 || matchCoin(v, round) {
						continue
					}
					if wu+vweight(vw, v) > maxW {
						continue
					}
					if ws[i] > bestW {
						best, bestW = c, ws[i]
					}
				}
				cand[u] = best
			}
		})
		// Phase 2: acceptors take their heaviest incoming proposal (cand
		// of a non-proposer is -1, so the scan is self-filtering).
		parallelVertexRanges(n, opts.Workers, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				accept[v] = -1
				if match[v] != -1 || matchCoin(v, round) {
					continue
				}
				cols, ws := g.row(v)
				best, bestW := int32(-1), -1.0
				for i, c := range cols {
					if int(c) != v && cand[c] == int32(v) && ws[i] > bestW {
						best, bestW = c, ws[i]
					}
				}
				accept[v] = best
			}
		})
		// Phase 3: bind agreeing pairs; each vertex writes only its own
		// match slot. An accepted proposer always binds symmetrically:
		// accept[v] = u implies cand[u] = v.
		var progressed atomic.Bool
		parallelVertexRanges(n, opts.Workers, func(lo, hi int) {
			any := false
			for u := lo; u < hi; u++ {
				if match[u] != -1 {
					continue
				}
				if matchCoin(u, round) {
					if v := cand[u]; v >= 0 && accept[v] == int32(u) {
						match[u] = v
						any = true
					}
				} else if p := accept[u]; p >= 0 {
					match[u] = p
					any = true
				}
			}
			if any {
				progressed.Store(true)
			}
		})
		if !progressed.Load() {
			break
		}
	}
	for _, m := range match {
		if m != -1 {
			matched++
		}
	}
	return match, matched
}

// contract collapses matched pairs into single vertices, returning the
// coarse graph, the fine→coarse vertex map, and the coarse vertex weights
// (original-vertex counts). Intra-pair edges become self-loops — they can
// never be cut, but they keep coarse strengths comparable for seed ordering,
// mirroring Quotient. The coarse CSR is assembled directly (capacity rows
// filled in parallel, then compacted) — staging through AddEdge re-sorted
// the whole edge set per level and dominated the multilevel profile.
func contract(g *Graph, vw []int, match []int32, workers int) (*Graph, []int, []int, error) {
	n := g.N()
	cmap := make([]int, n)
	nc := 0
	for u := 0; u < n; u++ {
		m := int(match[u])
		if m == -1 || u < m {
			cmap[u] = nc
			nc++
		} else {
			cmap[u] = cmap[m] // m < u already numbered
		}
	}
	cvw := make([]int, nc)
	// mem1/mem2 are each coarse vertex's constituents (mem2 -1 when single).
	mem1 := make([]int32, nc)
	mem2 := make([]int32, nc)
	for c := range mem1 {
		mem1[c], mem2[c] = -1, -1
	}
	for u := 0; u < n; u++ { // ascending, so mem1 < mem2
		c := cmap[u]
		if mem1[c] == -1 {
			mem1[c] = int32(u)
		} else {
			mem2[c] = int32(u)
		}
		cvw[c] += vweight(vw, u)
	}
	// Capacity rows: each coarse row holds at most the combined degree of
	// its constituents. Fill in parallel, coalesce per row, then compact.
	capPtr := make([]int64, nc+1)
	for c := 0; c < nc; c++ {
		d := g.rowptr[mem1[c]+1] - g.rowptr[mem1[c]]
		if m := mem2[c]; m != -1 {
			d += g.rowptr[m+1] - g.rowptr[m]
		}
		capPtr[c+1] = capPtr[c] + d
	}
	col := make([]int32, capPtr[nc])
	w := make([]float64, capPtr[nc])
	cnt := make([]int32, nc)
	parallelVertexRanges(nc, workers, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			base := capPtr[c]
			k := int64(0)
			gather := func(u int32) {
				cols, ws := g.row(int(u))
				for i, cc := range cols {
					tc := cmap[cc]
					// Intra-coarse fine edges appear in both constituent
					// rows; keep the smaller endpoint's copy so the coarse
					// self-loop counts each undirected edge once.
					if tc == c && cc < u {
						continue
					}
					col[base+k], w[base+k] = int32(tc), ws[i]
					k++
				}
			}
			gather(mem1[c])
			if mem2[c] != -1 {
				gather(mem2[c])
			}
			span := col[base : base+k]
			spanW := w[base : base+k]
			sortPairsStable(span, spanW)
			// Coalesce duplicates in place; stable sort keeps gather order
			// within a column, so weight sums are deterministic.
			write := int64(0)
			for i := int64(0); i < k; i++ {
				if write > 0 && span[write-1] == span[i] {
					spanW[write-1] += spanW[i]
				} else {
					span[write], spanW[write] = span[i], spanW[i]
					write++
				}
			}
			cnt[c] = int32(write)
		}
	})
	rowptr := make([]int64, nc+1)
	for c := 0; c < nc; c++ {
		rowptr[c+1] = rowptr[c] + int64(cnt[c])
	}
	fcol := make([]int32, rowptr[nc])
	fw := make([]float64, rowptr[nc])
	for c := 0; c < nc; c++ {
		copy(fcol[rowptr[c]:rowptr[c+1]], col[capPtr[c]:capPtr[c]+int64(cnt[c])])
		copy(fw[rowptr[c]:rowptr[c+1]], w[capPtr[c]:capPtr[c]+int64(cnt[c])])
	}
	coarse, err := FromCSR(nc, rowptr, fcol, fw)
	if err != nil {
		return nil, nil, nil, err
	}
	return coarse, cmap, cvw, nil
}

// sortPairsStable stably sorts the parallel (col, w) arrays by column:
// insertion sort for the short rows contraction produces, library stable
// sort beyond that.
func sortPairsStable(col []int32, w []float64) {
	n := len(col)
	if n <= 48 {
		for i := 1; i < n; i++ {
			c, wt := col[i], w[i]
			j := i - 1
			for j >= 0 && col[j] > c {
				col[j+1], w[j+1] = col[j], w[j]
				j--
			}
			col[j+1], w[j+1] = c, wt
		}
		return
	}
	sort.Stable(&pairSorter{col: col, w: w})
}

type pairSorter struct {
	col []int32
	w   []float64
}

func (p *pairSorter) Len() int           { return len(p.col) }
func (p *pairSorter) Less(i, j int) bool { return p.col[i] < p.col[j] }
func (p *pairSorter) Swap(i, j int) {
	p.col[i], p.col[j] = p.col[j], p.col[i]
	p.w[i], p.w[j] = p.w[j], p.w[i]
}

// mlChunk is the fixed vertex-range chunk size of parallelVertexRanges.
// Fixed — not derived from the worker count — so chunk boundaries, and
// anything a caller could accidentally make depend on them, never change
// with parallelism.
const mlChunk = 4096

// parallelVertexRanges runs fn over [0,n) in fixed chunks on a small worker
// pool (workers 0 = GOMAXPROCS). Callers must write only to per-vertex
// slots derived from read-only inputs, which makes the serial and parallel
// executions indistinguishable.
func parallelVertexRanges(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nchunks := (n + mlChunk - 1) / mlChunk
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nchunks {
		workers = nchunks
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1) - 1)
				if c >= nchunks {
					return
				}
				lo := c * mlChunk
				hi := lo + mlChunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}
