package graph

import (
	"math/rand"
	"testing"
)

// randomIntGraph builds a connected random graph with integer weights —
// integer so that the incremental gain cache's additions and subtractions
// are exact and the cut-monotonicity invariant is testable without float
// tolerance.
func randomIntGraph(seed int64, n int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i+1 < n; i++ { // spanning path keeps it connected
		_ = g.AddEdge(i, i+1, float64(rng.Intn(100)+1))
	}
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = g.AddEdge(u, v, float64(rng.Intn(50)+1))
		}
	}
	return g
}

// The refinement invariant: every additional refinement pass can only keep
// or lower the cut weight, never raise it. Partition with RefinePasses = p
// runs exactly p sweeps over the same greedy seed assignment, so sweeping
// p+1 times must produce a cut no worse than p times.
func TestRefineNeverIncreasesCut(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := randomIntGraph(seed, 48)
		prev := -1.0
		for passes := 1; passes <= 6; passes++ {
			part, err := Partition(g, PartitionOptions{MinSize: 4, TargetSize: 4, RefinePasses: passes})
			if err != nil {
				t.Fatal(err)
			}
			cut, err := g.CutWeight(part)
			if err != nil {
				t.Fatal(err)
			}
			if prev >= 0 && cut > prev {
				t.Errorf("seed %d: cut rose from %g to %g at %d passes", seed, prev, cut, passes)
			}
			prev = cut
		}
	}
}

// The incremental gain cache must leave refinement decisions identical to
// recomputing every vertex's cluster connections from scratch each sweep:
// verify that after refinement no vertex still has a strictly better
// cluster available (a fixed point of the recomputed gains), when passes
// are plentiful enough to converge.
func TestRefineReachesFixedPoint(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := randomIntGraph(seed, 40)
		opts := PartitionOptions{MinSize: 4, TargetSize: 4, RefinePasses: 64}
		part, err := Partition(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		sizes := PartSizes(part)
		for v := 0; v < g.N(); v++ {
			if sizes[part[v]] <= opts.MinSize {
				continue // not movable
			}
			conn := map[int]float64{}
			for _, u := range g.Neighbors(v) {
				if u != v {
					conn[part[u]] += g.Weight(v, u)
				}
			}
			for id, w := range conn {
				if id != part[v] && w > conn[part[v]] {
					t.Errorf("seed %d: vertex %d still improvable: cluster %d weight %g > own %g",
						seed, v, id, w, conn[part[v]])
				}
			}
		}
	}
}

// AddEdge after a query (freeze) must transparently thaw and refreeze with
// the new edge incorporated.
func TestAddEdgeAfterFreeze(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(0, 1, 2)
	if got := g.Weight(0, 1); got != 2 { // freezes
		t.Fatalf("Weight = %g, want 2", got)
	}
	if err := g.AddEdge(0, 1, 3); err != nil { // thaw + restage
		t.Fatal(err)
	}
	_ = g.AddEdge(2, 3, 7)
	if got := g.Weight(0, 1); got != 5 {
		t.Errorf("Weight(0,1) after refreeze = %g, want 5", got)
	}
	if got := g.Weight(2, 3); got != 7 {
		t.Errorf("Weight(2,3) after refreeze = %g, want 7", got)
	}
	if got := g.TotalWeight(); got != 12 {
		t.Errorf("TotalWeight = %g, want 12", got)
	}
}

func TestFromCSRValidation(t *testing.T) {
	// Valid 2-vertex graph with one edge of weight 3.
	g, err := FromCSR(2, []int64{0, 1, 2}, []int32{1, 0}, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(0, 1) != 3 || g.Strength(0) != 3 || g.TotalWeight() != 3 {
		t.Errorf("FromCSR graph: weight %g strength %g total %g", g.Weight(0, 1), g.Strength(0), g.TotalWeight())
	}
	if _, err := FromCSR(2, []int64{0, 1}, []int32{1}, []float64{1}); err == nil {
		t.Error("accepted short rowptr")
	}
	if _, err := FromCSR(2, []int64{0, 1, 2}, []int32{5, 0}, []float64{1, 1}); err == nil {
		t.Error("accepted out-of-range column")
	}
	if _, err := FromCSR(2, []int64{0, 2, 2}, []int32{1, 1}, []float64{1, 1}); err == nil {
		t.Error("accepted duplicate columns")
	}
	if _, err := FromCSR(2, []int64{0, 2, 1}, []int32{0, 1}, []float64{1, 1}); err == nil {
		t.Error("accepted decreasing rowptr")
	}
}
