package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel region commit. The speculative refinement's serial commit
// walk is the critical path once the scans run wide; when the decided moves
// fall into mutually independent regions, the walks of those regions can run
// concurrently and still produce every bit the serial walk produces.
//
// Soundness rests on a closure invariant computed by planRegions: a region
// owns every piece of state its walk can read or write. With MaxSize == 0
// (decide never reads a foreign cluster's size) a committing vertex v
// touches exactly part/sizes/clusterTouch of clusters reachable through its
// neighborhood, and the gain spans and nbrTouch stamps of its neighbors. So
// a region must be closed under two relations: graph adjacency (a move
// rewrites every neighbor's span, and a touched neighbor may move in turn —
// the serial walk re-decides it at its turn) and cluster co-membership (a
// move resizes its source and target clusters, and a resize can flip any
// member's MinSize gate). planRegions claims the movers' closure under both;
// anything unclaimed is provably untouched for the whole pass. Two regions
// share no vertex, no edge, and no cluster, hence no state.
//
// Order equivalence: the serial walk visits vertices ascending; restricted
// to one region's vertices that is exactly the region's shadow order, and
// the interleaving with other regions is unobservable (no shared state).
// Move stamps are drawn from disjoint per-region counter windows laid out in
// region order, each sized by its shadow (a vertex commits at most once per
// pass), so every stamp comparison — always within one region's events, or
// across passes — orders exactly as the shared serial counter would.
// MaxSize != 0 breaks the ownership argument (decide reads foreign sizes),
// so regions are disabled there.

// Region-commit modes. regionAuto engages only when the mover set is sparse
// (the closure has a chance of splitting) on speculative refinements;
// regionOff always uses the serial walk; regionForce commits through regions
// whenever a plan exists, even a single region — for tests pinning the
// region walk against the serial one.
const (
	regionAuto = iota
	regionOff
	regionForce
)

// regionCommitMode selects the commit strategy. Written only by tests,
// before the runs they compare; production code leaves it on regionAuto.
var regionCommitMode = regionAuto

// regionPlanHook, when non-nil, observes every adopted plan (region count,
// claimed vertex count). Test-only.
var regionPlanHook func(regions, claimed int)

// regionsEligible gates the planning attempt: regions need movers to
// commit, MaxSize == 0 for the ownership argument, and (in auto mode) a
// sparse mover set on a speculative refinement — a dense mover front almost
// always closes into one region, and the plan's O(n) sweeps would be pure
// overhead on top of the serial walk.
func regionsEligible(nMovers, n, maxSize int, speculative bool) bool {
	if regionCommitMode == regionOff || maxSize != 0 || nMovers == 0 {
		return false
	}
	if regionCommitMode == regionForce {
		return true
	}
	return speculative && nMovers*16 <= n
}

// regionPlan is a partition of the potential movers' closure into
// independent regions. Region r's shadow — its claimed vertices, ascending —
// is buf[starts[r]:starts[r+1]]; claimed[v] is v's region, -1 when no region
// touches v. All storage is arena scratch (the matching worklists, free
// during refinement), valid until the next planRegions on the same arena.
type regionPlan struct {
	buf     []int32
	starts  []int32
	claimed []int32
	nr      int
	ok      bool
}

// shadow returns region r's claimed vertices in ascending order.
func (p *regionPlan) shadow(r int) []int32 { return p.buf[p.starts[r]:p.starts[r+1]] }

// planRegions computes the independent regions of the decided moves: the
// connected components, under graph adjacency and cluster co-membership, of
// the closure seeded at every vertex with desire[v] >= 0. It is exact — the
// fixpoint, not a bounded approximation — and allocation-free. A closure
// larger than maxClaim reports !ok (the plan would hand most of the graph to
// one walker anyway; the serial walk is better). Planning runs on the
// calling goroutine, so region numbering (ascending by first mover) and the
// plan itself never depend on the worker count.
func planRegions(g *Graph, part []int, k int, desire []int32, ar *partArena, maxClaim int) regionPlan {
	n := len(part)
	claimed := ar.cand[:n]
	for i := range claimed {
		claimed[i] = -1
	}
	clusterSeen := ar.accept[:k]
	for i := range clusterSeen {
		clusterSeen[i] = 0
	}
	// Cluster member lists (head/next are the weighted-merge scratch, free
	// during refinement): claiming a cluster walks its members once.
	head := ar.head[:k]
	for i := range head {
		head[i] = -1
	}
	next := ar.next[:n]
	for v := n - 1; v >= 0; v-- {
		id := part[v]
		next[v] = head[id]
		head[id] = int32(v)
	}
	stack := ar.work[:0]
	total := 0
	nr := int32(0)
	for v0 := 0; v0 < n; v0++ {
		if desire[v0] < 0 || claimed[v0] != -1 {
			continue
		}
		r := nr
		nr++
		claimed[v0] = r
		total++
		stack = append(stack, int32(v0))
		for len(stack) > 0 {
			v := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			if total > maxClaim {
				return regionPlan{}
			}
			if c := part[v]; clusterSeen[c] == 0 {
				clusterSeen[c] = 1
				for u := head[c]; u != -1; u = next[u] {
					if claimed[u] == -1 {
						claimed[u] = r
						total++
						stack = append(stack, u)
					}
				}
			}
			cols, _ := g.row(v)
			for _, c := range cols {
				if claimed[c] == -1 {
					claimed[c] = r
					total++
					stack = append(stack, c)
				}
			}
		}
	}
	if nr == 0 || int(nr)+1 > len(ar.work2) {
		return regionPlan{}
	}
	// Counting sort by region: one ascending vertex scan groups each
	// region's shadow contiguously while preserving vertex order within it.
	starts := ar.work2[:nr+1]
	for i := range starts {
		starts[i] = 0
	}
	for v := 0; v < n; v++ {
		if r := claimed[v]; r >= 0 {
			starts[r+1]++
		}
	}
	for r := int32(0); r < nr; r++ {
		starts[r+1] += starts[r]
	}
	cursor := ar.workP[:nr]
	copy(cursor, starts[:nr])
	buf := ar.workA[:total]
	for v := 0; v < n; v++ {
		if r := claimed[v]; r >= 0 {
			buf[cursor[r]] = int32(v)
			cursor[r]++
		}
	}
	return regionPlan{buf: buf, starts: starts, claimed: claimed, nr: int(nr), ok: true}
}

// parallelItems runs fn(0..n-1) on a small worker pool (workers 0 =
// GOMAXPROCS; explicit counts are capped at GOMAXPROCS, matching
// effectiveWorkers). Items must be mutually independent; with one worker
// the calls run in index order on the calling goroutine.
func parallelItems(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if maxp := runtime.GOMAXPROCS(0); workers <= 0 || workers > maxp {
		workers = maxp
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
