package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// This file retains the pre-optimization reference implementations of the
// partitioner's hot phases — hash-map frontier growth, two-pass contraction,
// map-based small-cluster merging — exactly as they ran before the arena /
// flat-frontier rewrite. The property tests below pin the optimized paths
// bit-identical to them: the partitioner sits inside evaluations whose
// outputs are compared byte-for-byte, so "faster" is only acceptable when
// it is also "identical".

// growReference is the historical grow: a fresh hash-map frontier per seed,
// scanned linearly for the heaviest (then lowest-index) candidate.
func growReference(g *Graph, opts PartitionOptions, vw []int) ([]int, []int) {
	g.ensureAggregates()
	n := g.N()
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := g.strength[order[a]], g.strength[order[b]]
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	next := 0
	sizes := []int{}
	fallbackCursor := 0
	for _, seed := range order {
		if part[seed] != -1 {
			continue
		}
		id := next
		next++
		part[seed] = id
		size := vweight(vw, seed)
		if size >= opts.TargetSize {
			sizes = append(sizes, size)
			continue
		}
		conn := map[int]float64{}
		seedCols, seedWs := g.row(seed)
		for i, c := range seedCols {
			if part[c] == -1 {
				conn[int(c)] += seedWs[i]
			}
		}
		for size < opts.TargetSize {
			best, bestW := -1, -1.0
			for v, w := range conn {
				if opts.MaxSize != 0 && size+vweight(vw, v) > opts.MaxSize {
					continue
				}
				if w > bestW || (w == bestW && (best == -1 || v < best)) {
					best, bestW = v, w
				}
			}
			if best == -1 {
				if vw != nil {
					break
				}
				for fallbackCursor < n {
					if part[order[fallbackCursor]] == -1 {
						best = order[fallbackCursor]
						break
					}
					fallbackCursor++
				}
				if best == -1 {
					break
				}
			}
			part[best] = id
			delete(conn, best)
			size += vweight(vw, best)
			cols, ws := g.row(best)
			for i, c := range cols {
				if part[c] == -1 {
					conn[int(c)] += ws[i]
				}
			}
		}
		sizes = append(sizes, size)
	}
	return part, sizes
}

// contractReference is the historical two-pass contraction: one pass to
// number coarse vertices, one to collect constituents and weights, one to
// size the capacity rows, then the gather — each its own traversal, with
// per-level allocations, finishing through the validating FromCSR.
func contractReference(g *Graph, vw []int, match []int32) (*Graph, []int32, []int, error) {
	n := g.N()
	cmap := make([]int32, n)
	nc := 0
	for u := 0; u < n; u++ {
		m := int(match[u])
		if m == -1 || u < m {
			cmap[u] = int32(nc)
			nc++
		} else {
			cmap[u] = cmap[m]
		}
	}
	cvw := make([]int, nc)
	mem1 := make([]int32, nc)
	mem2 := make([]int32, nc)
	for c := range mem1 {
		mem1[c], mem2[c] = -1, -1
	}
	for u := 0; u < n; u++ {
		c := cmap[u]
		if mem1[c] == -1 {
			mem1[c] = int32(u)
		} else {
			mem2[c] = int32(u)
		}
		cvw[c] += vweight(vw, u)
	}
	capPtr := make([]int64, nc+1)
	for c := 0; c < nc; c++ {
		d := g.rowptr[mem1[c]+1] - g.rowptr[mem1[c]]
		if m := mem2[c]; m != -1 {
			d += g.rowptr[m+1] - g.rowptr[m]
		}
		capPtr[c+1] = capPtr[c] + d
	}
	col := make([]int32, capPtr[nc])
	w := make([]float64, capPtr[nc])
	cnt := make([]int32, nc)
	for c := 0; c < nc; c++ {
		base := capPtr[c]
		k := int64(0)
		gather := func(u int32) {
			cols, ws := g.row(int(u))
			for i, cc := range cols {
				tc := cmap[cc]
				if int(tc) == c && cc < u {
					continue
				}
				col[base+k], w[base+k] = tc, ws[i]
				k++
			}
		}
		gather(mem1[c])
		if mem2[c] != -1 {
			gather(mem2[c])
		}
		span := col[base : base+k]
		spanW := w[base : base+k]
		sortPairsStable(span, spanW)
		write := int64(0)
		for i := int64(0); i < k; i++ {
			if write > 0 && span[write-1] == span[i] {
				spanW[write-1] += spanW[i]
			} else {
				span[write], spanW[write] = span[i], spanW[i]
				write++
			}
		}
		cnt[c] = int32(write)
	}
	rowptr := make([]int64, nc+1)
	for c := 0; c < nc; c++ {
		rowptr[c+1] = rowptr[c] + int64(cnt[c])
	}
	fcol := make([]int32, rowptr[nc])
	fw := make([]float64, rowptr[nc])
	for c := 0; c < nc; c++ {
		copy(fcol[rowptr[c]:rowptr[c+1]], col[capPtr[c]:capPtr[c]+int64(cnt[c])])
		copy(fw[rowptr[c]:rowptr[c+1]], w[capPtr[c]:capPtr[c]+int64(cnt[c])])
	}
	coarse, err := FromCSR(nc, rowptr, fcol, fw)
	if err != nil {
		return nil, nil, nil, err
	}
	return coarse, cmap, cvw, nil
}

// mergeSmallWeightedReference is the historical map-based weighted merge.
func mergeSmallWeightedReference(g *Graph, part []int, sizes []int, opts PartitionOptions) ([]int, []int) {
	n := g.N()
	k := len(sizes)
	head := make([]int32, k)
	tail := make([]int32, k)
	for i := range head {
		head[i], tail[i] = -1, -1
	}
	next := make([]int32, n)
	for v := n - 1; v >= 0; v-- {
		id := part[v]
		next[v] = head[id]
		head[id] = int32(v)
		if tail[id] == -1 {
			tail[id] = int32(v)
		}
	}
	parent := make([]int32, k)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(id int32) int32 {
		for parent[id] != id {
			parent[id] = parent[parent[id]]
			id = parent[id]
		}
		return id
	}
	active := 0
	var queue []int32
	for id := 0; id < k; id++ {
		if sizes[id] > 0 {
			active++
			if sizes[id] < opts.MinSize {
				queue = append(queue, int32(id))
			}
		}
	}
	conn := map[int32]float64{}
	for qi := 0; qi < len(queue); qi++ {
		small := find(queue[qi])
		if sizes[small] == 0 || sizes[small] >= opts.MinSize {
			continue
		}
		if active <= 1 {
			break
		}
		clear(conn)
		for v := head[small]; v != -1; v = next[v] {
			cols, ws := g.row(int(v))
			for i, c := range cols {
				if root := find(int32(part[c])); root != small {
					conn[root] += ws[i]
				}
			}
		}
		target := int32(-1)
		bestW := -1.0
		for id, w := range conn {
			fits := opts.MaxSize == 0 || sizes[id]+sizes[small] <= opts.MaxSize
			if fits && (w > bestW || (w == bestW && (target == -1 || id < target))) {
				target, bestW = id, w
			}
		}
		if target == -1 {
			for id, w := range conn {
				if w > bestW || (w == bestW && (target == -1 || id < target)) {
					target, bestW = id, w
				}
			}
		}
		if target == -1 {
			for id := 0; id < k; id++ {
				root := int32(id)
				if parent[root] != root || root == small || sizes[root] == 0 {
					continue
				}
				if target == -1 || sizes[root] < sizes[target] {
					target = root
				}
			}
		}
		if target == -1 {
			break
		}
		parent[small] = target
		sizes[target] += sizes[small]
		sizes[small] = 0
		if head[target] == -1 {
			head[target], tail[target] = head[small], tail[small]
		} else {
			next[tail[target]] = head[small]
			tail[target] = tail[small]
		}
		active--
		if sizes[target] < opts.MinSize {
			queue = append(queue, target)
		}
	}
	for v := range part {
		part[v] = int(find(int32(part[v])))
	}
	return part, sizes
}

// randomWeightedGraph builds a connected graph with float weights whose
// binary expansions do not terminate — any reordering of additions, or any
// divergence in selection order, shows up as a changed bit.
func randomWeightedGraph(seed int64, n int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i+1 < n; i++ {
		_ = g.AddEdge(i, i+1, 0.1+rng.Float64()*99)
	}
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = g.AddEdge(u, v, 0.1+rng.Float64()*49)
		}
	}
	return g
}

// Property: flat-frontier growth (epoch-stamped weights + frontier list)
// produces identical seeds, assignments, and sizes to the retained hash-map
// reference on random weighted graphs — unit weights and multilevel-style
// vertex weights, with and without MaxSize.
func TestGrowMatchesHashMapReference(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		n := 200 + int(seed)*97
		g := randomWeightedGraph(seed, n)
		g.ensure()
		var vw []int
		if seed%2 == 0 { // alternate: weighted path with capped weights
			rng := rand.New(rand.NewSource(seed * 13))
			vw = make([]int, n)
			for i := range vw {
				vw[i] = 1 + rng.Intn(4)
			}
		}
		for _, opts := range []PartitionOptions{
			{MinSize: 4, TargetSize: 4},
			{MinSize: 2, TargetSize: 6, MaxSize: 8},
		} {
			if err := opts.normalize(n); err != nil {
				t.Fatal(err)
			}
			ar := newPartArena(g)
			gotPart, gotSizes := grow(g, opts, vw, ar)
			wantPart, wantSizes := growReference(g, opts, vw)
			for v := range wantPart {
				if gotPart[v] != wantPart[v] {
					t.Fatalf("seed %d opts %+v: vertex %d assigned %d, reference %d",
						seed, opts, v, gotPart[v], wantPart[v])
				}
			}
			if len(gotSizes) != len(wantSizes) {
				t.Fatalf("seed %d: %d clusters, reference %d", seed, len(gotSizes), len(wantSizes))
			}
			for id := range wantSizes {
				if gotSizes[id] != wantSizes[id] {
					t.Fatalf("seed %d: cluster %d size %d, reference %d", seed, id, gotSizes[id], wantSizes[id])
				}
			}
			ar.release()
		}
	}
}

// Property: the fused single-traversal contraction produces a coarse graph
// byte-identical (rowptr, columns, weights, vertex map, vertex weights) to
// the retained two-pass implementation, on every partition test graph.
func TestContractFusedMatchesTwoPass(t *testing.T) {
	for _, tc := range goldenGraphs() {
		g := tc.g
		opts := tc.opts
		if err := opts.normalize(g.N()); err != nil {
			t.Fatal(err)
		}
		g.ensure()
		ar := newPartArena(g)
		var vw []int
		for level := 0; level < 3; level++ {
			match, matched := heavyEdgeMatching(g, vw, opts, ar)
			if matched == 0 {
				break
			}
			fused, cmap, cvw, err := contract(g, vw, match, matched, opts, ar)
			if err != nil {
				t.Fatalf("%s L%d: fused: %v", tc.name, level, err)
			}
			ref, refCmap, refCvw, err := contractReference(g, vw, match)
			if err != nil {
				t.Fatalf("%s L%d: reference: %v", tc.name, level, err)
			}
			if fused.N() != ref.N() {
				t.Fatalf("%s L%d: fused %d coarse vertices, reference %d", tc.name, level, fused.N(), ref.N())
			}
			for v := range refCmap {
				if cmap[v] != refCmap[v] {
					t.Fatalf("%s L%d: cmap[%d] = %d, reference %d", tc.name, level, v, cmap[v], refCmap[v])
				}
			}
			for c := range refCvw {
				if cvw[c] != refCvw[c] {
					t.Fatalf("%s L%d: cvw[%d] = %d, reference %d", tc.name, level, c, cvw[c], refCvw[c])
				}
			}
			for u := 0; u <= ref.N(); u++ {
				if fused.rowptr[u] != ref.rowptr[u] {
					t.Fatalf("%s L%d: rowptr[%d] = %d, reference %d", tc.name, level, u, fused.rowptr[u], ref.rowptr[u])
				}
			}
			for i := range ref.col {
				if fused.col[i] != ref.col[i] || fused.w[i] != ref.w[i] {
					t.Fatalf("%s L%d: entry %d = (%d, %v), reference (%d, %v)",
						tc.name, level, i, fused.col[i], fused.w[i], ref.col[i], ref.w[i])
				}
			}
			g, vw = ref, refCvw // descend on the reference graph
		}
		ar.release()
	}
}

// Property: the epoch-stamped flat-array weighted merge matches the
// retained map-based merge exactly, starting from real weighted growths.
func TestMergeSmallWeightedMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		n := 300 + int(seed)*61
		g := randomWeightedGraph(seed, n)
		g.ensure()
		rng := rand.New(rand.NewSource(seed * 7))
		vw := make([]int, n)
		for i := range vw {
			vw[i] = 1 + rng.Intn(4)
		}
		opts := PartitionOptions{MinSize: 6, TargetSize: 6}
		if err := opts.normalize(n); err != nil {
			t.Fatal(err)
		}
		ar := newPartArena(g)
		part, sizes := grow(g, opts, vw, ar)
		refPart := append([]int(nil), part...)
		refSizes := append([]int(nil), sizes...)
		gotPart, gotSizes := mergeSmallWeighted(g, part, sizes, opts, ar)
		wantPart, wantSizes := mergeSmallWeightedReference(g, refPart, refSizes, opts)
		for v := range wantPart {
			if gotPart[v] != wantPart[v] {
				t.Fatalf("seed %d: vertex %d in cluster %d, reference %d", seed, v, gotPart[v], wantPart[v])
			}
		}
		for id := range wantSizes {
			if gotSizes[id] != wantSizes[id] {
				t.Fatalf("seed %d: cluster %d size %d, reference %d", seed, id, gotSizes[id], wantSizes[id])
			}
		}
		ar.release()
	}
}
