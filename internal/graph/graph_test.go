package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func ring(n int, w float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		_ = g.AddEdge(i, (i+1)%n, w)
	}
	return g
}

// path returns a path graph 0-1-2-...-n-1, the topology of the tsunami
// application's slab-decomposed communication.
func path(n int, w float64) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		_ = g.AddEdge(i, i+1, w)
	}
	return g
}

func TestAddEdgeAndWeight(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0, 1.5); err != nil {
		t.Fatal(err)
	}
	if got := g.Weight(0, 1); got != 4 {
		t.Errorf("Weight(0,1) = %g, want 4", got)
	}
	if got := g.Weight(1, 0); got != 4 {
		t.Errorf("Weight(1,0) = %g, want 4 (undirected)", got)
	}
	if got := g.Weight(2, 3); got != 0 {
		t.Errorf("Weight(2,3) = %g, want 0", got)
	}
	if err := g.AddEdge(0, 9, 1); err == nil {
		t.Error("AddEdge accepted out-of-range vertex")
	}
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Error("AddEdge accepted negative vertex")
	}
	// zero-weight edges are ignored
	if err := g.AddEdge(2, 3, 0); err != nil {
		t.Fatal(err)
	}
	if g.Degree(2) != 0 {
		t.Error("zero-weight AddEdge created an edge")
	}
}

func TestSelfLoop(t *testing.T) {
	g := New(2)
	_ = g.AddEdge(0, 0, 3)
	if got := g.Weight(0, 0); got != 3 {
		t.Errorf("self-loop weight = %g, want 3", got)
	}
	if g.Degree(0) != 0 {
		t.Errorf("Degree with only a self-loop = %d, want 0", g.Degree(0))
	}
	if g.Strength(0) != 3 {
		t.Errorf("Strength = %g, want 3", g.Strength(0))
	}
	if g.TotalWeight() != 3 {
		t.Errorf("TotalWeight = %g, want 3", g.TotalWeight())
	}
}

func TestDegreeStrengthTotals(t *testing.T) {
	g := ring(5, 2)
	for i := 0; i < 5; i++ {
		if g.Degree(i) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", i, g.Degree(i))
		}
		if g.Strength(i) != 4 {
			t.Errorf("Strength(%d) = %g, want 4", i, g.Strength(i))
		}
	}
	if g.TotalWeight() != 10 {
		t.Errorf("TotalWeight = %g, want 10", g.TotalWeight())
	}
	if g.EdgeCount() != 5 {
		t.Errorf("EdgeCount = %d, want 5", g.EdgeCount())
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 4 {
		t.Errorf("Neighbors(0) = %v, want [1 4]", nb)
	}
}

func TestQuotient(t *testing.T) {
	// Process graph: 4 procs, 2 per node; heavy intra-node, light inter.
	g := New(4)
	_ = g.AddEdge(0, 1, 10) // node 0 internal
	_ = g.AddEdge(2, 3, 10) // node 1 internal
	_ = g.AddEdge(1, 2, 1)  // crossing
	q, err := g.Quotient([]int{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Weight(0, 1); got != 1 {
		t.Errorf("quotient cross weight = %g, want 1", got)
	}
	if got := q.Weight(0, 0); got != 10 {
		t.Errorf("quotient self-loop(0) = %g, want 10", got)
	}
	if _, err := g.Quotient([]int{0, 0, 1}, 2); err == nil {
		t.Error("Quotient accepted short mapping")
	}
	if _, err := g.Quotient([]int{0, 0, 1, 5}, 2); err == nil {
		t.Error("Quotient accepted out-of-range part id")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(1, 2, 1)
	_ = g.AddEdge(4, 5, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components = %v, want 3 components", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Errorf("first component = %v, want [0 1 2]", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != 3 {
		t.Errorf("second component = %v, want [3]", comps[1])
	}
}

func TestCutWeight(t *testing.T) {
	g := path(8, 1)
	cut, err := g.CutWeight([]int{0, 0, 0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Errorf("cut = %g, want 1 (single crossing edge)", cut)
	}
	cut, _ = g.CutWeight([]int{0, 1, 0, 1, 0, 1, 0, 1})
	if cut != 7 {
		t.Errorf("alternating cut = %g, want 7 (all edges)", cut)
	}
	if _, err := g.CutWeight([]int{0}); err == nil {
		t.Error("CutWeight accepted short assignment")
	}
}

func TestModularityTwoCliques(t *testing.T) {
	// Two 4-cliques joined by one edge: the canonical high-modularity graph.
	g := New(8)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			_ = g.AddEdge(a, b, 1)
			_ = g.AddEdge(a+4, b+4, 1)
		}
	}
	_ = g.AddEdge(3, 4, 1)
	good, err := g.Modularity([]int{0, 0, 0, 0, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := g.Modularity([]int{0, 1, 0, 1, 0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if good <= bad {
		t.Errorf("modularity: community split %g should exceed alternating split %g", good, bad)
	}
	if good < 0.3 || good > 0.6 {
		t.Errorf("two-clique modularity = %g, want ~0.42", good)
	}
	single, _ := g.Modularity(make([]int, 8))
	if math.Abs(single) > 1e-12 {
		t.Errorf("single-cluster modularity = %g, want 0", single)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g := New(3)
	q, err := g.Modularity([]int{0, 1, 2})
	if err != nil || q != 0 {
		t.Errorf("edgeless modularity = %g, %v; want 0, nil", q, err)
	}
	if _, err := g.Modularity([]int{0}); err == nil {
		t.Error("Modularity accepted short assignment")
	}
}

func TestDegreeDistribution(t *testing.T) {
	g := path(5, 1) // degrees 1,2,2,2,1
	st := g.DegreeDistribution()
	if st.Min != 1 || st.Max != 2 {
		t.Errorf("min/max = %d/%d, want 1/2", st.Min, st.Max)
	}
	if math.Abs(st.Mean-1.6) > 1e-12 {
		t.Errorf("mean = %g, want 1.6", st.Mean)
	}
	if st.Hist[1] != 2 || st.Hist[2] != 3 {
		t.Errorf("hist = %v, want [_ 2 3]", st.Hist)
	}
	empty := New(0)
	if st := empty.DegreeDistribution(); st.Max != 0 || st.Mean != 0 {
		t.Errorf("empty graph stats = %+v", st)
	}
}

func TestPartitionPathGraph(t *testing.T) {
	// A 16-vertex path partitioned with MinSize=4 should yield contiguous
	// runs: the minimal cut for bounded sizes.
	g := path(16, 1)
	part, err := Partition(g, PartitionOptions{MinSize: 4, TargetSize: 4, MaxSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if NumParts(part) != 4 {
		t.Fatalf("parts = %d, want 4 (assignment %v)", NumParts(part), part)
	}
	for _, s := range PartSizes(part) {
		if s != 4 {
			t.Fatalf("sizes = %v, want all 4", PartSizes(part))
		}
	}
	cut, _ := g.CutWeight(part)
	if cut != 3 {
		t.Errorf("path cut = %g, want 3 (assignment %v)", cut, part)
	}
	// Contiguity: every part's members must be consecutive integers.
	for _, mem := range Members(part) {
		for i := 1; i < len(mem); i++ {
			if mem[i] != mem[i-1]+1 {
				t.Errorf("non-contiguous part %v on a path graph", mem)
			}
		}
	}
}

func TestPartitionRespectsMinSize(t *testing.T) {
	g := ring(10, 1)
	part, err := Partition(g, PartitionOptions{MinSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range PartSizes(part) {
		if s < 3 {
			t.Errorf("part %d has size %d < MinSize 3 (%v)", id, s, part)
		}
	}
}

func TestPartitionSingleCluster(t *testing.T) {
	g := ring(4, 1)
	part, err := Partition(g, PartitionOptions{MinSize: 4, TargetSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if NumParts(part) != 1 {
		t.Errorf("want single part, got %v", part)
	}
}

func TestPartitionDisconnected(t *testing.T) {
	// Two disconnected 4-cliques with MinSize 4: each clique becomes a part.
	g := New(8)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			_ = g.AddEdge(a, b, 1)
			_ = g.AddEdge(a+4, b+4, 1)
		}
	}
	part, err := Partition(g, PartitionOptions{MinSize: 4, TargetSize: 4, MaxSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if NumParts(part) != 2 {
		t.Fatalf("parts = %d, want 2", NumParts(part))
	}
	cut, _ := g.CutWeight(part)
	if cut != 0 {
		t.Errorf("cut = %g, want 0 for disconnected cliques (%v)", cut, part)
	}
}

func TestPartitionErrors(t *testing.T) {
	g := ring(4, 1)
	if _, err := Partition(g, PartitionOptions{MinSize: 8}); err == nil {
		t.Error("Partition accepted MinSize > N")
	}
	if _, err := Partition(g, PartitionOptions{MinSize: 2, TargetSize: 1}); err == nil {
		t.Error("Partition accepted TargetSize < MinSize")
	}
	if _, err := Partition(g, PartitionOptions{MinSize: 2, TargetSize: 2, MaxSize: 1}); err == nil {
		t.Error("Partition accepted MaxSize < TargetSize")
	}
	empty := New(0)
	part, err := Partition(empty, PartitionOptions{})
	if err != nil || len(part) != 0 {
		t.Errorf("empty partition = %v, %v", part, err)
	}
}

func TestPartitionImprovesOverRandom(t *testing.T) {
	// On a community-structured graph the partitioner must beat a random
	// assignment of equal part sizes.
	rng := rand.New(rand.NewSource(7))
	const k, groups = 8, 6
	g := New(k * groups)
	for grp := 0; grp < groups; grp++ {
		base := grp * k
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				if rng.Float64() < 0.8 {
					_ = g.AddEdge(base+a, base+b, 1+rng.Float64())
				}
			}
		}
	}
	for i := 0; i < 40; i++ { // sparse random inter-group noise
		u, v := rng.Intn(k*groups), rng.Intn(k*groups)
		if u/k != v/k {
			_ = g.AddEdge(u, v, 0.2)
		}
	}
	part, err := Partition(g, PartitionOptions{MinSize: k, TargetSize: k, MaxSize: k})
	if err != nil {
		t.Fatal(err)
	}
	cut, _ := g.CutWeight(part)
	randPart := make([]int, k*groups)
	for i := range randPart {
		randPart[i] = i % groups
	}
	randCut, _ := g.CutWeight(randPart)
	if cut >= randCut {
		t.Errorf("partitioner cut %g not better than round-robin cut %g", cut, randCut)
	}
}

// Property: Partition always returns a dense assignment covering all
// vertices with every part size >= MinSize (when feasible).
func TestPartitionInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw, minRaw uint8) bool {
		n := int(nRaw%40) + 8
		min := int(minRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = g.AddEdge(u, v, rng.Float64()*10)
			}
		}
		part, err := Partition(g, PartitionOptions{MinSize: min, TargetSize: min})
		if err != nil {
			return false
		}
		if len(part) != n {
			return false
		}
		sizes := PartSizes(part)
		for _, s := range sizes {
			if s < min {
				return false
			}
		}
		total := 0
		for _, s := range sizes {
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the quotient graph preserves total weight.
func TestQuotientWeightProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 4
		rng := rand.New(rand.NewSource(seed))
		g := New(n)
		for i := 0; i < 2*n; i++ {
			_ = g.AddEdge(rng.Intn(n), rng.Intn(n), float64(rng.Intn(100)))
		}
		parts := 3
		pmap := make([]int, n)
		for i := range pmap {
			pmap[i] = rng.Intn(parts)
		}
		q, err := g.Quotient(pmap, parts)
		if err != nil {
			return false
		}
		return math.Abs(q.TotalWeight()-g.TotalWeight()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
