package graph

import (
	"math/rand"
	"runtime"
	"testing"
)

// The parallel region commit must produce exactly the serial walk's result —
// same assignment, same sizes, same cut — at any worker count. These tests
// build graphs whose decided moves provably split into several independent
// regions (disjoint components with isolated bad seams) and pin the region
// path (regionForce) against the serial path (regionOff).

// regionTestGraph builds one graph of `comps` disjoint 16-vertex path
// components with a randomly placed, randomly weighted heavy seam each —
// guaranteed movers — on top of a large stable ballast path (blocks of four
// at MinSize 4 cannot move: the reliability gate blocks every candidate).
// Returns the graph, the initial assignment, and its weighted sizes.
func regionTestGraph(rng *rand.Rand, comps int) (*Graph, []int, []int) {
	const ballast = 5984 // blocks of 4 → 1496 stable clusters
	const csize = 16
	n := ballast + comps*csize
	g := New(n)
	part := make([]int, n)
	for v := 0; v < ballast; v++ {
		if v+1 < ballast {
			_ = g.AddEdge(v, v+1, 1)
		}
		part[v] = v / 4
	}
	nextID := ballast / 4
	for c := 0; c < comps; c++ {
		base := ballast + c*csize
		// Split the component into two clusters at a random seam and put a
		// heavy edge across it: the seam vertex strictly prefers the far
		// side, and both clusters stay above MinSize so the move is legal.
		split := 6 + rng.Intn(5) // 6..10
		for i := 0; i < csize-1; i++ {
			w := 1.0
			if i == split-1 {
				w = float64(5 + rng.Intn(16))
			}
			_ = g.AddEdge(base+i, base+i+1, w)
		}
		// A few extra random intra-component edges so several vertices can
		// cascade, not just the seam vertex.
		for e := 0; e < 4; e++ {
			u, v := rng.Intn(csize), rng.Intn(csize)
			if u != v {
				_ = g.AddEdge(base+u, base+v, float64(1+rng.Intn(8)))
			}
		}
		for i := 0; i < csize; i++ {
			if i < split {
				part[base+i] = nextID
			} else {
				part[base+i] = nextID + 1
			}
		}
		nextID += 2
	}
	g.ensure()
	sizes := weightedSizesInto(make([]int, n), part, nil)
	return g, part, sizes
}

// refineWithMode runs refine on fresh copies under the given commit mode and
// worker count, returning the refined assignment and sizes.
func refineWithMode(t *testing.T, g *Graph, part, sizes []int, workers, mode int) ([]int, []int) {
	t.Helper()
	prev := regionCommitMode
	regionCommitMode = mode
	defer func() { regionCommitMode = prev }()
	cp := append([]int(nil), part...)
	cs := append([]int(nil), sizes...)
	opts := PartitionOptions{MinSize: 4, TargetSize: 4, Workers: workers}
	if err := opts.normalize(g.N()); err != nil {
		t.Fatal(err)
	}
	ar := newPartArena(g)
	defer ar.release()
	refine(g, cp, cs, opts, nil, ar)
	return cp, cs
}

func TestRegionCommitMatchesSerialWalk(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	for seed := int64(0); seed < 5; seed++ {
		g, part, sizes := regionTestGraph(rand.New(rand.NewSource(seed)), 10)
		if g.N() < refineParallelMin {
			t.Fatal("graph below refineParallelMin, regions would never engage")
		}
		refPart, refSizes := refineWithMode(t, g, part, sizes, 1, regionOff)
		refCut, err := g.CutWeight(refPart)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			for _, mode := range []int{regionOff, regionForce} {
				plans, maxRegions := 0, 0
				regionPlanHook = func(regions, claimed int) {
					plans++
					if regions > maxRegions {
						maxRegions = regions
					}
					if claimed > g.N()/4+16 {
						t.Errorf("seed %d workers=%d: plan claimed %d vertices, beyond the budget", seed, workers, claimed)
					}
				}
				gotPart, gotSizes := refineWithMode(t, g, part, sizes, workers, mode)
				regionPlanHook = nil
				for v := range refPart {
					if gotPart[v] != refPart[v] {
						t.Fatalf("seed %d workers=%d mode=%d: vertex %d in cluster %d, serial walk %d",
							seed, workers, mode, v, gotPart[v], refPart[v])
					}
				}
				for id := range refSizes {
					if gotSizes[id] != refSizes[id] {
						t.Fatalf("seed %d workers=%d mode=%d: cluster %d size %d, serial walk %d",
							seed, workers, mode, id, gotSizes[id], refSizes[id])
					}
				}
				cut, err := g.CutWeight(gotPart)
				if err != nil {
					t.Fatal(err)
				}
				if cut != refCut {
					t.Fatalf("seed %d workers=%d mode=%d: cut %g, serial walk %g", seed, workers, mode, cut, refCut)
				}
				// Speculative refinement (workers > 1 here, with GOMAXPROCS
				// raised) must actually adopt region plans under force: the
				// movers sit in disjoint components.
				if mode == regionForce && workers > 1 {
					if plans == 0 {
						t.Fatalf("seed %d workers=%d: no region plan adopted under force", seed, workers)
					}
					if maxRegions < 2 {
						t.Fatalf("seed %d workers=%d: movers in 10 disjoint components never split into >= 2 regions (max %d)",
							seed, workers, maxRegions)
					}
				}
			}
		}
	}
}

// The auto gate must never engage regions when MaxSize is set (the ownership
// argument requires decide to read no foreign cluster sizes), and regionOff
// must always win.
func TestRegionsEligibleGates(t *testing.T) {
	if regionsEligible(10, 100000, 6, true) {
		t.Fatal("regions engaged with MaxSize set")
	}
	if regionsEligible(0, 100000, 0, true) {
		t.Fatal("regions engaged with no movers")
	}
	if regionsEligible(10, 100, 0, true) {
		t.Fatal("auto gate engaged on a dense mover front")
	}
	if !regionsEligible(10, 100000, 0, true) {
		t.Fatal("auto gate rejected a sparse mover front")
	}
	if regionsEligible(10, 100000, 0, false) {
		t.Fatal("auto gate engaged on a non-speculative refinement")
	}
	prev := regionCommitMode
	regionCommitMode = regionOff
	if regionsEligible(10, 100000, 0, true) {
		regionCommitMode = prev
		t.Fatal("regionOff did not disable regions")
	}
	regionCommitMode = prev
}
