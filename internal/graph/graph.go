// Package graph provides the weighted undirected graphs and the
// size-constrained partitioning algorithm behind the paper's L1 clustering.
//
// The failure-containment clustering of the paper (following Ropars et al.,
// Euro-Par 2011 [24]) partitions the *node-based* communication graph so
// that the weight of edges crossing cluster boundaries — the bytes that must
// be message-logged — is minimized, subject to bounds on cluster size.
// The package also computes the network measures that motivated the
// hierarchical design (§IV-A): Newman modularity and degree distributions,
// the "functional segregation" and "degree distribution" markers of brain
// networks.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a weighted undirected graph on vertices 0..N-1 stored as an
// adjacency map per vertex. Self-loops are permitted (they count toward
// vertex strength but can never be cut). Edge weights are float64 so they
// can carry byte counts of arbitrary magnitude.
type Graph struct {
	n   int
	adj []map[int]float64
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	g := &Graph{n: n, adj: make([]map[int]float64, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]float64)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge adds w to the weight of the undirected edge {u,v}. Adding a
// negative total weight is the caller's responsibility to avoid; weights
// represent communication volumes and are expected non-negative.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range 0..%d", u, v, g.n-1)
	}
	if w == 0 {
		return nil
	}
	g.adj[u][v] += w
	if u != v {
		g.adj[v][u] += w
	}
	return nil
}

// Weight returns the weight of edge {u,v}, 0 if absent.
func (g *Graph) Weight(u, v int) float64 {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0
	}
	return g.adj[u][v]
}

// Neighbors returns the neighbors of u (including u itself if self-looped)
// in ascending order.
func (g *Graph) Neighbors(u int) []int {
	if u < 0 || u >= g.n {
		return nil
	}
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Degree returns the number of distinct neighbors of u, not counting a
// self-loop.
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= g.n {
		return 0
	}
	d := len(g.adj[u])
	if _, ok := g.adj[u][u]; ok {
		d--
	}
	return d
}

// Strength returns the total weight incident to u. A self-loop counts once.
func (g *Graph) Strength(u int) float64 {
	if u < 0 || u >= g.n {
		return 0
	}
	var s float64
	for _, w := range g.adj[u] {
		s += w
	}
	return s
}

// TotalWeight returns the sum of all edge weights (each undirected edge
// counted once; self-loops counted once).
func (g *Graph) TotalWeight() float64 {
	var t float64
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			if v >= u {
				t += w
			}
		}
	}
	return t
}

// EdgeCount returns the number of distinct undirected edges, self-loops
// included.
func (g *Graph) EdgeCount() int {
	c := 0
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if v >= u {
				c++
			}
		}
	}
	return c
}

// Quotient collapses the graph along part: vertices with the same part id
// become one vertex; edge weights between parts accumulate, intra-part
// weights become self-loops. part must assign each vertex an id in
// 0..parts-1. This converts a process-level communication graph into the
// node-based graph the paper partitions.
func (g *Graph) Quotient(part []int, parts int) (*Graph, error) {
	if len(part) != g.n {
		return nil, fmt.Errorf("graph: quotient map has %d entries for %d vertices", len(part), g.n)
	}
	q := New(parts)
	for u := 0; u < g.n; u++ {
		pu := part[u]
		if pu < 0 || pu >= parts {
			return nil, fmt.Errorf("graph: vertex %d mapped to part %d out of range 0..%d", u, pu, parts-1)
		}
		for v, w := range g.adj[u] {
			if v < u {
				continue // count each undirected edge once
			}
			pv := part[v]
			if pv < 0 || pv >= parts {
				return nil, fmt.Errorf("graph: vertex %d mapped to part %d out of range 0..%d", v, pv, parts-1)
			}
			if err := q.AddEdge(pu, pv, w); err != nil {
				return nil, err
			}
		}
	}
	return q, nil
}

// Components returns the connected components as sorted vertex lists,
// ordered by smallest contained vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// CutWeight returns the total weight of edges whose endpoints lie in
// different parts under the given assignment. Self-loops never contribute.
// This is exactly the volume of communication that a failure-containment
// protocol with clusters = parts must log.
func (g *Graph) CutWeight(part []int) (float64, error) {
	if len(part) != g.n {
		return 0, fmt.Errorf("graph: assignment has %d entries for %d vertices", len(part), g.n)
	}
	var cut float64
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			if v > u && part[u] != part[v] {
				cut += w
			}
		}
	}
	return cut, nil
}

// Modularity returns the Newman modularity Q of the partition: the fraction
// of weight inside parts minus the expectation of that fraction under a
// degree-preserving random rewiring. High Q is the "functional segregation"
// property the paper borrows from brain-network analysis.
func (g *Graph) Modularity(part []int) (float64, error) {
	if len(part) != g.n {
		return 0, fmt.Errorf("graph: assignment has %d entries for %d vertices", len(part), g.n)
	}
	m2 := 0.0 // total degree = 2m (self-loops count twice here, per Newman)
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			m2 += w
			if v == u {
				m2 += w
			}
		}
	}
	if m2 == 0 {
		return 0, nil
	}
	intra := map[int]float64{}    // weight fully inside each part (doubled)
	strength := map[int]float64{} // total strength per part
	for u := 0; u < g.n; u++ {
		for v, w := range g.adj[u] {
			du := w
			if v == u {
				du = 2 * w
			}
			strength[part[u]] += du
			if part[u] == part[v] {
				intra[part[u]] += du
			}
		}
	}
	var q float64
	for p, in := range intra {
		q += in / m2
		_ = p
	}
	for _, s := range strength {
		q -= (s / m2) * (s / m2)
	}
	return q, nil
}

// DegreeStats summarizes a graph's degree distribution — the paper's second
// brain-network marker of resilience.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// Hist[d] = number of vertices with degree d, for d in 0..Max.
	Hist []int
}

// DegreeDistribution computes degree statistics over all vertices.
func (g *Graph) DegreeDistribution() DegreeStats {
	st := DegreeStats{Min: 0, Max: 0}
	if g.n == 0 {
		return st
	}
	st.Min = g.n // sentinel above any possible degree
	total := 0
	degs := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		d := g.Degree(u)
		degs[u] = d
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(total) / float64(g.n)
	st.Hist = make([]int, st.Max+1)
	for _, d := range degs {
		st.Hist[d]++
	}
	return st
}
