// Package graph provides the weighted undirected graphs and the
// size-constrained partitioning algorithm behind the paper's L1 clustering.
//
// The failure-containment clustering of the paper (following Ropars et al.,
// Euro-Par 2011 [24]) partitions the *node-based* communication graph so
// that the weight of edges crossing cluster boundaries — the bytes that must
// be message-logged — is minimized, subject to bounds on cluster size.
// The package also computes the network measures that motivated the
// hierarchical design (§IV-A): Newman modularity and degree distributions,
// the "functional segregation" and "degree distribution" markers of brain
// networks.
//
// Storage is two-phase: AddEdge stages edges in coordinate (COO) form, and
// the first query freezes them into compressed-sparse-row (CSR) adjacency —
// sorted neighbor arrays with O(deg) iteration, O(log deg) weight lookup,
// and per-vertex strengths cached at freeze time. CSR keeps the partitioner
// and the network measures cache-friendly on graphs with 10⁴–10⁵ vertices,
// where the previous map-per-vertex layout thrashed. Adding an edge after a
// freeze thaws the graph back to COO transparently.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Graph is a weighted undirected graph on vertices 0..N-1. Self-loops are
// permitted (they count toward vertex strength but can never be cut). Edge
// weights are float64 so they can carry byte counts of arbitrary magnitude.
//
// Concurrent reads of a Graph are safe (the lazy freeze is mutex-guarded);
// AddEdge must not race with readers or other AddEdge calls.
type Graph struct {
	n int

	mu     sync.Mutex
	frozen atomic.Bool

	// Staged edges (COO), in AddEdge call order.
	eu, ev []int32
	ew     []float64

	// Frozen CSR adjacency: row u is col/w[rowptr[u]:rowptr[u+1]], columns
	// strictly ascending (duplicates coalesced at freeze time).
	rowptr   []int64
	col      []int32
	w        []float64
	strength []float64
	total    float64
	nedges   int
	// agg records whether finishFreeze has computed the cached aggregates.
	// Graphs built by newFrozenCSR defer it: intermediate multilevel
	// coarse graphs never ask for strengths or totals, and the coarsest
	// one asks exactly once (via ensureAggregates, single-goroutine use
	// only — see newFrozenCSR).
	agg bool
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n}
}

// FromCSR builds an already-frozen graph directly from CSR adjacency,
// skipping the staging phase — the zero-copy entry point for callers (like
// the trace package) that produce adjacency in bulk. The rows must describe
// a symmetric adjacency with strictly ascending, in-range columns; rowptr
// must have n+1 monotonically non-decreasing entries starting at 0. Symmetry
// itself is trusted, not verified.
func FromCSR(n int, rowptr []int64, col []int32, w []float64) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if len(rowptr) != n+1 || rowptr[0] != 0 || rowptr[n] != int64(len(col)) || len(col) != len(w) {
		return nil, fmt.Errorf("graph: inconsistent CSR shape (n=%d, rowptr=%d, col=%d, w=%d)",
			n, len(rowptr), len(col), len(w))
	}
	for u := 0; u < n; u++ {
		if rowptr[u+1] < rowptr[u] {
			return nil, fmt.Errorf("graph: rowptr decreases at vertex %d", u)
		}
		for i := rowptr[u]; i < rowptr[u+1]; i++ {
			if col[i] < 0 || int(col[i]) >= n {
				return nil, fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", u, col[i])
			}
			if i > rowptr[u] && col[i] <= col[i-1] {
				return nil, fmt.Errorf("graph: vertex %d has unsorted or duplicate neighbors", u)
			}
		}
	}
	g := &Graph{n: n, rowptr: rowptr, col: col, w: w}
	g.finishFreeze()
	g.frozen.Store(true)
	return g, nil
}

// newFrozenCSR is FromCSR for rows that are sorted, in-range, and symmetric
// by construction (the multilevel contraction): it skips the validation
// scan, which costs a full pass over every entry per coarsening level, and
// defers the aggregate pass (strengths, totals) until something asks —
// intermediate coarse levels never do. Strengths are then computed into the
// caller's buffer so a level adds no hidden allocation. The caller must
// guarantee the CSR invariants FromCSR checks, and, unlike FromCSR graphs,
// must not share the graph across goroutines before the first aggregate
// read (the lazy fill is unsynchronized).
func newFrozenCSR(n int, rowptr []int64, col []int32, w []float64, strength []float64) *Graph {
	g := &Graph{n: n, rowptr: rowptr, col: col, w: w, strength: strength[:n]}
	g.frozen.Store(true)
	return g
}

// adoptAggregates installs caller-computed aggregates (total weight, edge
// count) on a newFrozenCSR graph whose strength buffer the caller has
// already filled, marking the aggregate pass done so ensureAggregates never
// rescans. The multilevel contraction emits these for each coarse graph
// while its rows are still cache-hot, with the exact summation order of
// finishFreeze, so the values are bit-identical to the deferred pass.
func (g *Graph) adoptAggregates(total float64, nedges int) {
	g.total, g.nedges = total, nedges
	g.agg = true
}

// ensureAggregates freezes the graph and fills the cached aggregates if a
// newFrozenCSR constructor deferred them.
func (g *Graph) ensureAggregates() {
	g.ensure()
	if !g.agg {
		g.finishFreeze()
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge adds w to the weight of the undirected edge {u,v}. Adding a
// negative total weight is the caller's responsibility to avoid; weights
// represent communication volumes and are expected non-negative.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range 0..%d", u, v, g.n-1)
	}
	if w == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.frozen.Load() {
		g.thawLocked()
	}
	g.eu = append(g.eu, int32(u))
	g.ev = append(g.ev, int32(v))
	g.ew = append(g.ew, w)
	return nil
}

// thawLocked converts the frozen CSR back into staged COO edges so AddEdge
// can accumulate again. Caller holds g.mu.
func (g *Graph) thawLocked() {
	for u := 0; u < g.n; u++ {
		for i := g.rowptr[u]; i < g.rowptr[u+1]; i++ {
			if int(g.col[i]) >= u { // each undirected edge once
				g.eu = append(g.eu, int32(u))
				g.ev = append(g.ev, g.col[i])
				g.ew = append(g.ew, g.w[i])
			}
		}
	}
	g.rowptr, g.col, g.w, g.strength = nil, nil, nil, nil
	g.total, g.nedges = 0, 0
	g.agg = false
	g.frozen.Store(false)
}

// ensure freezes the staged edges into CSR form if needed. All read paths
// call it; the atomic fast path makes it free once frozen.
func (g *Graph) ensure() {
	if g.frozen.Load() {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.frozen.Load() {
		return
	}
	g.freezeLocked()
	g.frozen.Store(true)
}

// freezeLocked builds the CSR adjacency from the staged edges with a
// counting sort, then sorts each row stably by column and coalesces
// duplicates — stable order keeps weight accumulation in AddEdge call
// order, so repeated AddEdge calls sum exactly as they always did.
func (g *Graph) freezeLocked() {
	deg := make([]int64, g.n+1)
	for i := range g.eu {
		deg[g.eu[i]+1]++
		if g.eu[i] != g.ev[i] {
			deg[g.ev[i]+1]++
		}
	}
	rowptr := make([]int64, g.n+1)
	for u := 0; u < g.n; u++ {
		rowptr[u+1] = rowptr[u] + deg[u+1]
	}
	nnz := rowptr[g.n]
	col := make([]int32, nnz)
	w := make([]float64, nnz)
	fill := make([]int64, g.n)
	put := func(u, v int32, wt float64) {
		pos := rowptr[u] + fill[u]
		col[pos], w[pos] = v, wt
		fill[u]++
	}
	for i := range g.eu {
		put(g.eu[i], g.ev[i], g.ew[i])
		if g.eu[i] != g.ev[i] {
			put(g.ev[i], g.eu[i], g.ew[i])
		}
	}
	// Sort each row stably by column (stable keeps same-column entries in
	// AddEdge call order, so the coalescing sums accumulate exactly as the
	// old map layout did), then coalesce duplicates in place.
	newPtr := make([]int64, g.n+1)
	write := int64(0)
	var order []int
	var tmpC []int32
	var tmpW []float64
	for u := 0; u < g.n; u++ {
		lo, hi := rowptr[u], rowptr[u+1]
		m := int(hi - lo)
		if cap(order) < m {
			order = make([]int, m)
			tmpC = make([]int32, m)
			tmpW = make([]float64, m)
		}
		order = order[:m]
		for i := range order {
			order[i] = i
		}
		row := col[lo:hi]
		rowW := w[lo:hi]
		sort.SliceStable(order, func(i, j int) bool { return row[order[i]] < row[order[j]] })
		tmpC = tmpC[:m]
		tmpW = tmpW[:m]
		for i, o := range order {
			tmpC[i], tmpW[i] = row[o], rowW[o]
		}
		start := write
		for i := 0; i < m; i++ {
			if write > start && col[write-1] == tmpC[i] {
				w[write-1] += tmpW[i]
			} else {
				col[write], w[write] = tmpC[i], tmpW[i]
				write++
			}
		}
		newPtr[u+1] = write
	}
	g.rowptr = newPtr
	g.col = col[:write]
	g.w = w[:write]
	g.eu, g.ev, g.ew = nil, nil, nil
	g.finishFreeze()
}

// finishFreeze computes the cached aggregates (strength, total weight,
// edge count) from the frozen CSR arrays.
func (g *Graph) finishFreeze() {
	g.agg = true
	if g.strength == nil {
		g.strength = make([]float64, g.n)
	}
	g.total = 0
	g.nedges = 0
	for u := 0; u < g.n; u++ {
		var s float64
		for i := g.rowptr[u]; i < g.rowptr[u+1]; i++ {
			s += g.w[i]
			if int(g.col[i]) >= u {
				g.total += g.w[i]
				g.nedges++
			}
		}
		g.strength[u] = s
	}
}

// row returns vertex u's frozen adjacency (columns ascending). Callers must
// have called ensure().
func (g *Graph) row(u int) ([]int32, []float64) {
	lo, hi := g.rowptr[u], g.rowptr[u+1]
	return g.col[lo:hi], g.w[lo:hi]
}

// Weight returns the weight of edge {u,v}, 0 if absent — O(log deg) on the
// frozen adjacency.
func (g *Graph) Weight(u, v int) float64 {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0
	}
	g.ensure()
	cols, ws := g.row(u)
	i := sort.Search(len(cols), func(i int) bool { return cols[i] >= int32(v) })
	if i < len(cols) && cols[i] == int32(v) {
		return ws[i]
	}
	return 0
}

// Neighbors returns the neighbors of u (including u itself if self-looped)
// in ascending order.
func (g *Graph) Neighbors(u int) []int {
	if u < 0 || u >= g.n {
		return nil
	}
	g.ensure()
	cols, _ := g.row(u)
	out := make([]int, len(cols))
	for i, c := range cols {
		out[i] = int(c)
	}
	return out
}

// Degree returns the number of distinct neighbors of u, not counting a
// self-loop.
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= g.n {
		return 0
	}
	g.ensure()
	cols, _ := g.row(u)
	d := len(cols)
	i := sort.Search(len(cols), func(i int) bool { return cols[i] >= int32(u) })
	if i < len(cols) && cols[i] == int32(u) {
		d--
	}
	return d
}

// Strength returns the total weight incident to u. A self-loop counts once.
func (g *Graph) Strength(u int) float64 {
	if u < 0 || u >= g.n {
		return 0
	}
	g.ensureAggregates()
	return g.strength[u]
}

// TotalWeight returns the sum of all edge weights (each undirected edge
// counted once; self-loops counted once).
func (g *Graph) TotalWeight() float64 {
	g.ensureAggregates()
	return g.total
}

// EdgeCount returns the number of distinct undirected edges, self-loops
// included.
func (g *Graph) EdgeCount() int {
	g.ensureAggregates()
	return g.nedges
}

// Quotient collapses the graph along part: vertices with the same part id
// become one vertex; edge weights between parts accumulate, intra-part
// weights become self-loops. part must assign each vertex an id in
// 0..parts-1. This converts a process-level communication graph into the
// node-based graph the paper partitions.
func (g *Graph) Quotient(part []int, parts int) (*Graph, error) {
	if len(part) != g.n {
		return nil, fmt.Errorf("graph: quotient map has %d entries for %d vertices", len(part), g.n)
	}
	g.ensure()
	q := New(parts)
	for u := 0; u < g.n; u++ {
		pu := part[u]
		if pu < 0 || pu >= parts {
			return nil, fmt.Errorf("graph: vertex %d mapped to part %d out of range 0..%d", u, pu, parts-1)
		}
		cols, ws := g.row(u)
		for i, c := range cols {
			v := int(c)
			if v < u {
				continue // count each undirected edge once
			}
			pv := part[v]
			if pv < 0 || pv >= parts {
				return nil, fmt.Errorf("graph: vertex %d mapped to part %d out of range 0..%d", v, pv, parts-1)
			}
			if err := q.AddEdge(pu, pv, ws[i]); err != nil {
				return nil, err
			}
		}
	}
	return q, nil
}

// Components returns the connected components as sorted vertex lists,
// ordered by smallest contained vertex.
func (g *Graph) Components() [][]int {
	g.ensure()
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			cols, _ := g.row(u)
			for _, c := range cols {
				if !seen[c] {
					seen[c] = true
					stack = append(stack, int(c))
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// CutWeight returns the total weight of edges whose endpoints lie in
// different parts under the given assignment. Self-loops never contribute.
// This is exactly the volume of communication that a failure-containment
// protocol with clusters = parts must log.
func (g *Graph) CutWeight(part []int) (float64, error) {
	if len(part) != g.n {
		return 0, fmt.Errorf("graph: assignment has %d entries for %d vertices", len(part), g.n)
	}
	g.ensure()
	var cut float64
	for u := 0; u < g.n; u++ {
		cols, ws := g.row(u)
		for i, c := range cols {
			if int(c) > u && part[u] != part[c] {
				cut += ws[i]
			}
		}
	}
	return cut, nil
}

// Modularity returns the Newman modularity Q of the partition: the fraction
// of weight inside parts minus the expectation of that fraction under a
// degree-preserving random rewiring. High Q is the "functional segregation"
// property the paper borrows from brain-network analysis.
func (g *Graph) Modularity(part []int) (float64, error) {
	if len(part) != g.n {
		return 0, fmt.Errorf("graph: assignment has %d entries for %d vertices", len(part), g.n)
	}
	g.ensure()
	m2 := 0.0 // total degree = 2m (self-loops count twice here, per Newman)
	for u := 0; u < g.n; u++ {
		cols, ws := g.row(u)
		for i, c := range cols {
			m2 += ws[i]
			if int(c) == u {
				m2 += ws[i]
			}
		}
	}
	if m2 == 0 {
		return 0, nil
	}
	intra := map[int]float64{}    // weight fully inside each part (doubled)
	strength := map[int]float64{} // total strength per part
	for u := 0; u < g.n; u++ {
		cols, ws := g.row(u)
		for i, c := range cols {
			du := ws[i]
			if int(c) == u {
				du = 2 * ws[i]
			}
			strength[part[u]] += du
			if part[u] == part[c] {
				intra[part[u]] += du
			}
		}
	}
	var q float64
	for _, in := range intra {
		q += in / m2
	}
	for _, s := range strength {
		q -= (s / m2) * (s / m2)
	}
	return q, nil
}

// DegreeStats summarizes a graph's degree distribution — the paper's second
// brain-network marker of resilience.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// Hist[d] = number of vertices with degree d, for d in 0..Max.
	Hist []int
}

// DegreeDistribution computes degree statistics over all vertices.
func (g *Graph) DegreeDistribution() DegreeStats {
	st := DegreeStats{Min: 0, Max: 0}
	if g.n == 0 {
		return st
	}
	g.ensure()
	st.Min = g.n // sentinel above any possible degree
	total := 0
	degs := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		d := g.Degree(u)
		degs[u] = d
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(total) / float64(g.n)
	st.Hist = make([]int, st.Max+1)
	for _, d := range degs {
		st.Hist[d]++
	}
	return st
}
