package graph

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// stencil2D builds a w-wide 2-D grid with heavy horizontal and lighter
// vertical edges — the node-graph shape of the synthetic scaling rigs.
func stencil2D(n, w int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		if i+1 < n && (i+1)%w != 0 {
			_ = g.AddEdge(i, i+1, 1000)
		}
		if i+w < n {
			_ = g.AddEdge(i, i+w, 800)
		}
	}
	return g
}

// checkAssignment verifies the Partition contract: dense coverage and the
// MinSize (always) / MaxSize (when set) bounds.
func checkAssignment(t *testing.T, name string, part []int, n int, opts PartitionOptions) {
	t.Helper()
	if len(part) != n {
		t.Fatalf("%s: assignment covers %d of %d vertices", name, len(part), n)
	}
	seen := make([]bool, NumParts(part))
	for v, p := range part {
		if p < 0 || p >= len(seen) {
			t.Fatalf("%s: vertex %d has id %d outside dense range", name, v, p)
		}
		seen[p] = true
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("%s: part id %d unused (not dense)", name, id)
		}
	}
	min := opts.MinSize
	if min <= 0 {
		min = 1
	}
	for id, s := range PartSizes(part) {
		if s < min {
			t.Errorf("%s: part %d has size %d < MinSize %d", name, id, s, min)
		}
		if opts.MaxSize != 0 && s > opts.MaxSize {
			t.Errorf("%s: part %d has size %d > MaxSize %d", name, id, s, opts.MaxSize)
		}
	}
}

// The acceptance property of the multilevel path: on every graph the
// existing partition tests exercise — and on the structured large graphs the
// scaling rigs produce — the multilevel cut is never worse than the
// single-level cut, and the same size bounds hold.
func TestMultilevelCutNoWorseThanSingleLevel(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		opts PartitionOptions
	}{
		{"path16", path(16, 1), PartitionOptions{MinSize: 4, TargetSize: 4, MaxSize: 4}},
		{"ring10", ring(10, 1), PartitionOptions{MinSize: 3}},
		{"ring4", ring(4, 1), PartitionOptions{MinSize: 4, TargetSize: 4}},
		{"ring1024", ring(1024, 1000), PartitionOptions{MinSize: 4, TargetSize: 4}},
		{"stencil4096", stencil2D(4096, 64), PartitionOptions{MinSize: 4, TargetSize: 4}},
		{"stencil16384", stencil2D(16384, 128), PartitionOptions{MinSize: 4, TargetSize: 4}},
		{"stencil16384-t16", stencil2D(16384, 128), PartitionOptions{MinSize: 4, TargetSize: 16}},
	}
	// The community graph of TestPartitionImprovesOverRandom.
	rng := rand.New(rand.NewSource(7))
	const k, groups = 8, 6
	comm := New(k * groups)
	for grp := 0; grp < groups; grp++ {
		base := grp * k
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				if rng.Float64() < 0.8 {
					_ = comm.AddEdge(base+a, base+b, 1+rng.Float64())
				}
			}
		}
	}
	for i := 0; i < 40; i++ {
		u, v := rng.Intn(k*groups), rng.Intn(k*groups)
		if u/k != v/k {
			_ = comm.AddEdge(u, v, 0.2)
		}
	}
	cases = append(cases, struct {
		name string
		g    *Graph
		opts PartitionOptions
	}{"community48", comm, PartitionOptions{MinSize: k, TargetSize: k, MaxSize: k}})
	// Random graphs at a scale where coarsening engages for real.
	for seed := int64(1); seed <= 3; seed++ {
		rg := randomIntGraph(seed, 2048)
		cases = append(cases, struct {
			name string
			g    *Graph
			opts PartitionOptions
		}{"random2048", rg, PartitionOptions{MinSize: 4, TargetSize: 4}})
	}

	for _, tc := range cases {
		single, err := Partition(tc.g, tc.opts)
		if err != nil {
			t.Fatalf("%s: single-level: %v", tc.name, err)
		}
		mlOpts := tc.opts
		mlOpts.Multilevel = true
		multi, err := Partition(tc.g, mlOpts)
		if err != nil {
			t.Fatalf("%s: multilevel: %v", tc.name, err)
		}
		checkAssignment(t, tc.name, multi, tc.g.N(), tc.opts)
		cs, _ := tc.g.CutWeight(single)
		cm, _ := tc.g.CutWeight(multi)
		if cm > cs {
			t.Errorf("%s: multilevel cut %g worse than single-level %g", tc.name, cm, cs)
		}
	}
}

// Below CoarsenThreshold the multilevel flag is inert: the assignment must
// be identical to single-level, not merely no worse.
func TestMultilevelIdenticalBelowThreshold(t *testing.T) {
	g := randomIntGraph(3, 100) // 100 <= default threshold 128
	single, err := Partition(g, PartitionOptions{MinSize: 4, TargetSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Partition(g, PartitionOptions{MinSize: 4, TargetSize: 4, Multilevel: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range single {
		if single[v] != multi[v] {
			t.Fatalf("vertex %d: single-level id %d != multilevel id %d (threshold fallback must be exact)",
				v, single[v], multi[v])
		}
	}
}

// The multilevel assignment must be bit-identical at any worker count and
// across repeated runs — the partitioner sits inside evaluations whose
// outputs are compared byte-for-byte.
func TestMultilevelWorkerInvariance(t *testing.T) {
	// Raise GOMAXPROCS so the capped worker counts stay distinct and the
	// parallel phases actually engage on single-core hosts.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	g := stencil2D(8192, 128)
	var ref []int
	for _, workers := range []int{1, 2, 3, 8} {
		part, err := Partition(g, PartitionOptions{
			MinSize: 4, TargetSize: 4, Multilevel: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = part
			continue
		}
		for v := range ref {
			if ref[v] != part[v] {
				t.Fatalf("workers=%d: vertex %d assigned %d, want %d", workers, v, part[v], ref[v])
			}
		}
	}
	again, err := Partition(g, PartitionOptions{
		MinSize: 4, TargetSize: 4, Multilevel: true, Workers: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range ref {
		if ref[v] != again[v] {
			t.Fatalf("repeat run diverged at vertex %d", v)
		}
	}
}

// Matching invariants: symmetry, no self-matches, and the TargetSize weight
// cap (coarse vertices are embryonic clusters and must stay mergeable).
func TestHeavyEdgeMatchingInvariants(t *testing.T) {
	g := randomIntGraph(11, 600)
	g.ensure()
	opts := PartitionOptions{MinSize: 4, TargetSize: 4}
	if err := opts.normalize(g.N()); err != nil {
		t.Fatal(err)
	}
	ar := newPartArena(g)
	match, matched := heavyEdgeMatching(g, nil, opts, ar)
	count := 0
	for u, m := range match {
		if m == -1 {
			continue
		}
		count++
		if int(m) == u {
			t.Fatalf("vertex %d matched to itself", u)
		}
		if match[m] != int32(u) {
			t.Fatalf("matching not symmetric: match[%d]=%d but match[%d]=%d", u, m, m, match[m])
		}
		if g.Weight(u, int(m)) == 0 {
			t.Fatalf("matched pair {%d,%d} shares no edge", u, m)
		}
	}
	if count != matched {
		t.Fatalf("matched count %d != scan count %d", matched, count)
	}
	if matched == 0 {
		t.Fatal("matching found nothing on a connected graph")
	}
	// Contract and confirm weights: every coarse vertex within TargetSize.
	_, cmap, cvw, err := contract(g, nil, match, matched, opts, ar)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range cvw {
		if w < 1 || w > opts.TargetSize {
			t.Fatalf("coarse vertex weight %d outside 1..%d", w, opts.TargetSize)
		}
	}
	total := 0
	for _, w := range cvw {
		total += w
	}
	if total != g.N() {
		t.Fatalf("coarse weights sum to %d, want %d", total, g.N())
	}
	for v, c := range cmap {
		if c < 0 || int(c) >= len(cvw) {
			t.Fatalf("vertex %d mapped to out-of-range coarse vertex %d", v, c)
		}
	}
}

// An ineligible (never-matchable) vertex skips the worklist, so nothing
// resets its cand slot — but the parallel acceptor phase scans neighbors'
// cand slots. A recycled arena can hand matching a cand array full of
// plausible vertex ids; if ineligible slots are not cleared, a stale id
// reads as a live proposal and binds an asymmetric, cap-violating match.
// This pins the fix on the parallel path (weighted level wide enough that
// Workers>1 engages it) against the serial path's result.
func TestHeavyEdgeMatchingIneligibleStaleCand(t *testing.T) {
	// Two P's so effectiveWorkers(n, 2) == 2 even on a one-core host.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	n := 3 * mlChunk // wide enough for effectiveWorkers(n, 2) == 2
	g := stencil2D(n, 128)
	g.ensure()
	opts := PartitionOptions{MinSize: 4, TargetSize: 4}
	if err := opts.normalize(n); err != nil {
		t.Fatal(err)
	}
	vw := make([]int, n)
	for i := range vw {
		if i%2 == 0 {
			vw[i] = 4 // saturated: 4+1 > TargetSize, ineligible
		} else {
			vw[i] = 1
		}
	}
	run := func(workers int) []int32 {
		o := opts
		o.Workers = workers
		ar := newPartArena(g)
		defer ar.release()
		// Poison cand as a recycled arena would: every slot names a
		// plausible neighbor.
		for i := range ar.cand[:n] {
			ar.cand[i] = int32((i + 1) % n)
		}
		match, _ := heavyEdgeMatching(g, vw, o, ar)
		out := make([]int32, n)
		copy(out, match)
		return out
	}
	serial := run(1)
	parallel := run(2)
	for u := 0; u < n; u++ {
		if parallel[u] != serial[u] {
			t.Fatalf("vertex %d: parallel match %d, serial %d (stale cand leaked into a binding)",
				u, parallel[u], serial[u])
		}
		m := parallel[u]
		if m == -1 {
			continue
		}
		if vw[u]+1 > opts.TargetSize {
			t.Fatalf("ineligible vertex %d got matched to %d", u, m)
		}
		if parallel[m] != int32(u) {
			t.Fatalf("asymmetric match: match[%d]=%d but match[%d]=%d", u, m, m, parallel[m])
		}
		if vw[u]+vw[m] > opts.TargetSize {
			t.Fatalf("pair {%d,%d} weight %d bursts cap %d", u, m, vw[u]+vw[m], opts.TargetSize)
		}
	}
}

// contract must preserve total edge weight (intra-pair edges become
// self-loops, never vanish) — the invariant behind cut comparisons across
// levels.
func TestContractPreservesTotalWeight(t *testing.T) {
	g := randomIntGraph(5, 500)
	g.ensure()
	opts := PartitionOptions{MinSize: 4, TargetSize: 4}
	if err := opts.normalize(g.N()); err != nil {
		t.Fatal(err)
	}
	ar := newPartArena(g)
	match, matched := heavyEdgeMatching(g, nil, opts, ar)
	coarse, _, _, err := contract(g, nil, match, matched, opts, ar)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := coarse.TotalWeight(), g.TotalWeight(); got != want {
		t.Fatalf("coarse total weight %g, want %g", got, want)
	}
}

// Property: multilevel keeps the Partition invariants on random graphs even
// with a tiny CoarsenThreshold forcing real coarsening at small sizes.
func TestMultilevelInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw, minRaw uint8) bool {
		n := int(nRaw%60) + 16
		min := int(minRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = g.AddEdge(u, v, float64(rng.Intn(100)+1))
			}
		}
		part, err := Partition(g, PartitionOptions{
			MinSize: min, TargetSize: min, Multilevel: true, CoarsenThreshold: 8,
		})
		if err != nil {
			return false
		}
		if len(part) != n {
			return false
		}
		total := 0
		for _, s := range PartSizes(part) {
			if s < min {
				return false
			}
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
