package graph

import (
	"errors"
	"fmt"
	"math"
)

// PartitionOptions bounds the clusters produced by Partition.
//
// The paper's L1 clustering uses MinSize = 4 (nodes) so that erasure-code
// groups can be distributed across at least four physical nodes inside every
// cluster, and relies on the cost function to keep clusters small enough that
// few processes restart after a failure.
type PartitionOptions struct {
	// MinSize is the minimum vertices per part (>=1).
	MinSize int
	// MaxSize caps vertices per part; 0 means unbounded.
	MaxSize int
	// TargetSize is the size the greedy growth aims for; if 0 it defaults
	// to MinSize (grow just enough, letting refinement enlarge clusters
	// only when it reduces the cut).
	TargetSize int
	// RefinePasses bounds the Kernighan–Lin style refinement sweeps;
	// if 0 a default of 8 is used.
	RefinePasses int

	// Multilevel enables the coarsen/partition/uncoarsen pipeline:
	// heavy-edge matching collapses the graph level by level until it has
	// at most CoarsenThreshold vertices, the coarsest graph is partitioned
	// with the greedy growth, and the assignment is projected back up with
	// the incremental-gain refinement run at every level. The matching
	// rounds parallelize over the frozen CSR; results are identical at any
	// worker count. Off, or on a graph with at most CoarsenThreshold
	// vertices, Partition produces exactly the single-level result.
	Multilevel bool
	// CoarsenThreshold stops coarsening once the graph has at most this
	// many vertices; 0 means 128.
	CoarsenThreshold int
	// MatchingRounds bounds the handshake rounds of each heavy-edge
	// matching; 0 means 4.
	MatchingRounds int
	// Workers bounds the worker pool of the parallel phases (matching,
	// contraction, refinement scans); 0 = GOMAXPROCS. The assignment
	// never depends on it.
	Workers int
	// Cancel, when non-nil, is polled between coarsening levels and
	// refinement passes; once it returns true, Partition abandons the work
	// and returns ErrCancelled. It must be cheap (an atomic load or
	// ctx.Err()) and is never consulted for results — an uncancelled run
	// is bit-identical with or without it.
	Cancel func() bool
}

// ErrCancelled is returned by Partition when PartitionOptions.Cancel
// reported an abort; match with errors.Is.
var ErrCancelled = errors.New("graph: partition cancelled")

// cancelled reports a caller-requested abort.
func (o *PartitionOptions) cancelled() bool { return o.Cancel != nil && o.Cancel() }

func (o *PartitionOptions) normalize(n int) error {
	if o.MinSize <= 0 {
		o.MinSize = 1
	}
	if o.TargetSize == 0 {
		o.TargetSize = o.MinSize
	}
	if o.TargetSize < o.MinSize {
		return fmt.Errorf("graph: TargetSize %d below MinSize %d", o.TargetSize, o.MinSize)
	}
	if o.MaxSize != 0 && o.MaxSize < o.TargetSize {
		return fmt.Errorf("graph: MaxSize %d below TargetSize %d", o.MaxSize, o.TargetSize)
	}
	if o.MinSize > n && n > 0 {
		return fmt.Errorf("graph: MinSize %d exceeds vertex count %d", o.MinSize, n)
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 8
	}
	if o.CoarsenThreshold <= 0 {
		o.CoarsenThreshold = 128
	}
	if o.MatchingRounds <= 0 {
		o.MatchingRounds = 4
	}
	return nil
}

// vweight returns the weight of vertex v under vw; nil means unit weights
// (the single-level path and the finest multilevel level).
func vweight(vw []int, v int) int {
	if vw == nil {
		return 1
	}
	return vw[v]
}

// Partition splits g into clusters of bounded size while minimizing the
// weight of cut edges (the message-logging volume). It implements the
// strategy of the paper's reference [24]: greedy region growing seeded at
// high-traffic vertices, followed by boundary refinement that moves vertices
// between clusters whenever that lowers the cut without violating the size
// bounds. With Multilevel set (and a graph above CoarsenThreshold) the
// growth runs on a heavy-edge-coarsened graph instead and the refinement
// repeats at every level on the way back up — the same contract, better
// cuts, and parallel matching on large graphs. It returns part[v] = cluster
// id, with ids dense in 0..K-1.
func Partition(g *Graph, opts PartitionOptions) ([]int, error) {
	n := g.N()
	if err := opts.normalize(n); err != nil {
		return nil, err
	}
	if n == 0 {
		return []int{}, nil
	}
	g.ensure()
	ar := newPartArena(g)
	defer ar.release()
	if opts.Multilevel && n > opts.CoarsenThreshold {
		return multilevelPartition(g, opts, ar)
	}
	part := singleLevel(g, opts, nil, ar)
	if opts.cancelled() {
		return nil, ErrCancelled
	}
	return part, nil
}

// singleLevel is the growth → merge → refine pipeline on one graph, with
// cluster sizes measured in vertex weight (vw nil = unit weights, the
// original single-level behavior; multilevel coarse graphs pass the number
// of original vertices inside each coarse vertex).
func singleLevel(g *Graph, opts PartitionOptions, vw []int, ar *partArena) []int {
	part, sizes := grow(g, opts, vw, ar)
	if vw == nil {
		part, sizes = mergeSmall(g, part, sizes, opts)
	} else {
		// Weighted growth can leave many undersized clusters (matching
		// leftovers); the indexed merge handles thousands of them without
		// mergeSmall's per-merge full-graph scans.
		part, sizes = mergeSmallWeighted(g, part, sizes, opts, ar)
	}
	refine(g, part, sizes, opts, vw, ar)
	return compact(part)
}

// sortSeedsByStrength orders all vertices by strength descending, index
// ascending, via a stable LSD radix sort over the inverted IEEE-754 bit
// patterns — strengths are non-negative, so their bit patterns order
// exactly like their values, and stability turns "index ascending" into a
// free tie-break. The result is the identical total order the comparison
// sort produced, without its half-million comparator calls on 100k-vertex
// graphs. Byte positions that are constant across all keys (most of the
// exponent bytes in practice) skip their scatter pass. Returns the sorted
// slice, which is one of the two ping-pong buffers.
func sortSeedsByStrength(strength []float64, order, orderB []int, keys, keysB []uint64) []int {
	n := len(strength)
	for i := 0; i < n; i++ {
		order[i] = i
		keys[i] = ^math.Float64bits(strength[i])
	}
	var count [256]int
	for shift := 0; shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for i := 0; i < n; i++ {
			count[byte(keys[i]>>shift)]++
		}
		if n > 0 && count[byte(keys[0]>>shift)] == n {
			continue // constant byte: the pass would be the identity
		}
		pos := 0
		for b := 0; b < 256; b++ {
			c := count[b]
			count[b] = pos
			pos += c
		}
		for i := 0; i < n; i++ {
			b := byte(keys[i] >> shift)
			j := count[b]
			count[b]++
			keysB[j] = keys[i]
			orderB[j] = order[i]
		}
		keys, keysB = keysB, keys
		order, orderB = orderB, order
	}
	return order
}

// grow performs greedy region growing seeded at high-strength vertices,
// returning the raw (non-compacted) assignment and per-id sizes in weight
// units. Both returned slices are arena-backed; callers own them until the
// next grow on the same arena.
//
// The frontier is flat: connection weights accumulate in an epoch-stamped
// per-vertex array (one epoch per seed, so resets are free) and the
// frontier members sit in a shared list, scanned per pick for the maximum
// (weight desc, vertex asc) — the same total order, over the same candidate
// set, as the historical per-seed hash map's iteration, so every pick is
// identical; only the hashing, per-seed allocation, and tombstone deletes
// are gone. Assigned members are skipped in place, exactly like the map's
// deleted keys.
func grow(g *Graph, opts PartitionOptions, vw []int, ar *partArena) ([]int, []int) {
	g.ensureAggregates() // seed ordering reads strengths
	n := g.N()
	part := ar.growPart[:n]
	for i := range part {
		part[i] = -1
	}

	// Seeds in decreasing strength order: heavy communicators first, so the
	// densest neighborhoods are kept together. The index tie-break makes
	// the order total, so any sort algorithm (or the radix sort here)
	// produces the same seeds.
	order := sortSeedsByStrength(g.strength, ar.order[:n], ar.orderB[:n], ar.keysA[:n], ar.keysB[:n])

	next := 0
	sizes := ar.growSizes[:0]
	connW := ar.growW[:n]
	stamp := ar.growStamp[:n]
	list := ar.growList[:0]
	// addNeighbors folds u's unassigned neighbors into the frontier.
	addNeighbors := func(u int, epoch int32) {
		cols, ws := g.row(u)
		for i, c := range cols {
			v := int(c)
			if part[v] != -1 {
				continue
			}
			if stamp[v] != epoch {
				stamp[v] = epoch
				connW[v] = ws[i]
				list = append(list, c)
			} else {
				connW[v] += ws[i]
			}
		}
	}
	// fallback scans order for any unassigned vertex; assignments only grow,
	// so a monotonic cursor keeps the total fallback cost O(n).
	fallbackCursor := 0
	for _, seed := range order {
		if part[seed] != -1 {
			continue
		}
		id := next
		next++
		part[seed] = id
		size := vweight(vw, seed)
		if size >= opts.TargetSize {
			// Already at target (a saturated multilevel coarse vertex):
			// skip the frontier bookkeeping entirely.
			sizes = append(sizes, size)
			continue
		}
		ar.growEpoch++
		epoch := ar.growEpoch
		list = list[:0]
		addNeighbors(seed, epoch)
		for size < opts.TargetSize {
			best, bestW := -1, -1.0
			for _, v32 := range list {
				v := int(v32)
				if part[v] != -1 {
					continue // already inside some cluster
				}
				if opts.MaxSize != 0 && size+vweight(vw, v) > opts.MaxSize {
					continue // would burst the hard cap
				}
				if w := connW[v]; w > bestW || (w == bestW && (best == -1 || v < best)) {
					best, bestW = v, w
				}
			}
			if best == -1 {
				if vw != nil {
					// Weighted (multilevel) growth: no unassigned neighbor
					// is available or fits. Pulling a distant vertex here
					// would fabricate a non-contiguous cluster; stopping
					// leaves any undersized cluster to mergeSmall, which
					// folds it into its most-connected — adjacent —
					// neighbor instead.
					break
				}
				// Disconnected from every unassigned vertex: pull in the
				// strongest remaining vertex so every cluster reaches the
				// target (reliability requires the minimum size even for
				// isolated vertices).
				for fallbackCursor < n {
					if part[order[fallbackCursor]] == -1 {
						best = order[fallbackCursor]
						break
					}
					fallbackCursor++
				}
				if best == -1 {
					break // nothing left anywhere
				}
			}
			part[best] = id
			size += vweight(vw, best)
			addNeighbors(best, epoch)
		}
		sizes = append(sizes, size)
	}
	return part, sizes
}

// mergeSmall folds every cluster below MinSize into the neighboring cluster
// it communicates with most. If every candidate would exceed MaxSize the
// bound is relaxed for that merge: the paper treats MinSize (reliability) as
// the hard constraint and MaxSize (restart cost) as the soft one.
func mergeSmall(g *Graph, part []int, sizes []int, opts PartitionOptions) ([]int, []int) {
	for {
		small := -1
		for id, s := range sizes {
			if s > 0 && s < opts.MinSize {
				small = id
				break
			}
		}
		if small == -1 {
			return part, sizes
		}
		if len(activeClusters(sizes)) == 1 {
			return part, sizes // nothing to merge with
		}
		// Connection weight from the small cluster to each other cluster.
		conn := map[int]float64{}
		for v := range part {
			if part[v] != small {
				continue
			}
			cols, ws := g.row(v)
			for i, c := range cols {
				if part[c] != small {
					conn[part[c]] += ws[i]
				}
			}
		}
		target := -1
		bestW := -1.0
		for id, w := range conn {
			fits := opts.MaxSize == 0 || sizes[id]+sizes[small] <= opts.MaxSize
			if fits && (w > bestW || (w == bestW && (target == -1 || id < target))) {
				target, bestW = id, w
			}
		}
		if target == -1 { // no fitting neighbor: relax MaxSize, then fall
			for id, w := range conn { // back to smallest cluster overall
				if w > bestW || (w == bestW && (target == -1 || id < target)) {
					target, bestW = id, w
				}
			}
		}
		if target == -1 {
			for id, s := range sizes {
				if id != small && s > 0 && (target == -1 || s < sizes[target]) {
					target = id
				}
			}
		}
		if target == -1 {
			return part, sizes
		}
		for v := range part {
			if part[v] == small {
				part[v] = target
			}
		}
		sizes[target] += sizes[small]
		sizes[small] = 0
	}
}

func activeClusters(sizes []int) []int {
	var out []int
	for id, s := range sizes {
		if s > 0 {
			out = append(out, id)
		}
	}
	return out
}

// refineParallelMin is the vertex count below which refine always runs its
// plain serial sweep: the speculative scan's fork/join overhead only pays
// off on graphs with tens of thousands of vertices.
const refineParallelMin = 4096

// refine performs boundary-move passes: each vertex may move to the
// neighboring cluster it communicates with most if the move strictly lowers
// the cut and keeps both clusters within the size bounds.
//
// The per-vertex connection weights (vertex → adjacent cluster → weight) are
// built once in O(E) and then maintained incrementally: moving v from
// cluster a to cluster b only touches the cached entries of v's neighbors.
// The cache lives in flat arrays spanned by the CSR row pointers — a vertex
// touches at most deg(v) distinct clusters, so its row span always has room
// — because one map per vertex (the previous layout) cost more to build
// than the moves it served on 100k-vertex graphs, and the multilevel path
// rebuilds the cache at every level. The arrays come from the arena, so
// those per-level rebuilds reuse one finest-level allocation.
//
// Sizes are in weight units: moving v shifts vweight(vw, v), and the size
// bounds hold in the same units (unit weights reproduce the historical
// vertex-count behavior exactly).
//
// With more than one worker and a large enough graph, each pass runs as a
// speculative parallel scan plus a serial commit (see the comment there);
// the committed moves are exactly the serial sweep's, in the same order, so
// the assignment never depends on the worker count.
func refine(g *Graph, part []int, sizes []int, opts PartitionOptions, vw []int, ar *partArena) {
	n := g.N()
	// connID/connW/connCnt[rowptr[v]:rowptr[v]+connLen[v]] = (cluster,
	// weight, contributing neighbors) entries of v, unordered; lookups scan
	// the span. An entry lives exactly while some neighbor contributes to
	// it, so occupancy never exceeds deg(v) — the span always has room.
	// With exact weight arithmetic (integer-valued byte counts, every graph
	// this repository builds) the cached weights equal the historical
	// per-vertex map cache exactly.
	nnz := g.rowptr[n]
	connID := ar.connID[:nnz]
	connW := ar.connW[:nnz]
	connCnt := ar.connCnt[:nnz]
	connLen := ar.connLen[:n]
	rowptr := g.rowptr
	find := func(v int, id int) int {
		lo := rowptr[v]
		span := connID[lo : lo+int64(connLen[v])]
		for i := range span {
			if span[i] == int32(id) {
				return int(lo) + i
			}
		}
		return -1
	}
	add := func(v int, id int, w float64) {
		if i := find(v, id); i >= 0 {
			connW[i] += w
			connCnt[i]++
			return
		}
		pos := rowptr[v] + int64(connLen[v])
		connID[pos], connW[pos], connCnt[pos] = int32(id), w, 1
		connLen[v]++
	}
	// sub removes one neighbor's weight from v's cluster-id entry, dropping
	// the entry with its last contributor.
	sub := func(v int, id int, w float64) {
		i := find(v, id)
		if i < 0 {
			return
		}
		connW[i] -= w
		connCnt[i]--
		if connCnt[i] == 0 {
			last := rowptr[v] + int64(connLen[v]) - 1
			connID[i], connW[i], connCnt[i] = connID[last], connW[last], connCnt[last]
			connLen[v]--
		}
	}
	// The initial cache build writes only vertex v's own span from
	// read-only state (part and v's row), so it parallelizes chunk-wise
	// with no effect on the result. The body is the add() path hand-inlined
	// over int offsets: this loop is the hottest in the multilevel profile
	// (it reruns at every level of the ladder).
	parallelVertexRanges(n, opts.Workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			base := int(rowptr[v])
			ln := 0
			cols, ws := g.row(v)
			for i, c := range cols {
				if int(c) == v {
					continue
				}
				id := int32(part[c])
				pos := -1
				for j := 0; j < ln; j++ {
					if connID[base+j] == id {
						pos = base + j
						break
					}
				}
				if pos >= 0 {
					connW[pos] += ws[i]
					connCnt[pos]++
				} else {
					pos = base + ln
					connID[pos], connW[pos], connCnt[pos] = id, ws[i], 1
					ln++
				}
			}
			connLen[v] = int32(ln)
		}
	})

	// decide returns the cluster the serial sweep would move v to right
	// now, or -1: the heaviest adjacent cluster that fits MaxSize, if its
	// weight strictly beats v's connection to its own cluster and leaving
	// keeps the source above MinSize. One span pass finds both the own
	// weight and the best candidate; the candidate maximum is ordered by
	// (weight desc, id asc), which reproduces the historical two-pass
	// scan's pick exactly — candidates at or below the own weight lose the
	// final strict comparison either way.
	maxSize := opts.MaxSize
	decide := func(v int) int {
		from := part[v]
		wv := vweight(vw, v)
		if sizes[from]-wv < opts.MinSize {
			return -1 // removing v would break the reliability bound
		}
		var own float64
		bestTo, bestW := -1, -1.0
		base := int(rowptr[v])
		for i := 0; i < int(connLen[v]); i++ {
			id, w := int(connID[base+i]), connW[base+i]
			if id == from {
				own = w
				continue
			}
			if maxSize != 0 && sizes[id]+wv > maxSize {
				continue
			}
			if w > bestW || (w == bestW && id < bestTo) {
				bestTo, bestW = id, w
			}
		}
		if bestW > own {
			return bestTo
		}
		return -1
	}

	speculative := effectiveWorkers(n, opts.Workers) > 1 && n >= refineParallelMin
	var desire []int32
	if speculative {
		desire = ar.desire[:n]
	}
	// Move stamps: nbrTouch[v] is the move counter when v's gain span last
	// changed, clusterTouch[c] when cluster c's size last changed, and
	// lastEval[v] the counter when v last evaluated to "no move" (-1 when v
	// has never evaluated, or its last evaluation moved it). A vertex whose
	// stamps are all at or before its lastEval would re-derive the same
	// "no move" from identical inputs, so converged sweeps skip it after a
	// cheap integer scan — the bulk of every pass after the first.
	nbrTouch := ar.nbrTouch[:n]
	clusterTouch := ar.clusterTouch[:len(sizes)]
	lastEval := ar.lastEval[:n]
	clear(nbrTouch)
	clear(clusterTouch)
	for i := range lastEval {
		lastEval[i] = -1
	}
	moveCount := int32(0)
	// stillNoMove reports whether v's previous "no move" decision is still
	// derivable from unchanged inputs as of stamp `since`. Those inputs are
	// v's gain span (nbrTouch) and the size of v's own cluster (the MinSize
	// gate); other clusters' sizes only enter decide through the MaxSize
	// cap, so the span's cluster stamps need scanning only when a cap is
	// set — with MaxSize 0 (the paper's L1 configuration) the check is two
	// loads.
	stillNoMove := func(v int, since int32) bool {
		if since < 0 || nbrTouch[v] > since || clusterTouch[part[v]] > since {
			return false
		}
		if maxSize != 0 {
			base := int(rowptr[v])
			for i := 0; i < int(connLen[v]); i++ {
				if clusterTouch[connID[base+i]] > since {
					return false
				}
			}
		}
		return true
	}
	// commit applies the move v → to and maintains the incremental caches:
	// every neighbor of v sees v's weight shift from cluster `from` to
	// `to`; the stamps record what the move invalidated.
	commit := func(v, to int) {
		from := part[v]
		wv := vweight(vw, v)
		part[v] = to
		sizes[from] -= wv
		sizes[to] += wv
		moveCount++
		clusterTouch[from] = moveCount
		clusterTouch[to] = moveCount
		cols, ws := g.row(v)
		for i, c := range cols {
			u := int(c)
			if u == v {
				continue
			}
			sub(u, from, ws[i])
			add(u, to, ws[i])
			nbrTouch[u] = moveCount
		}
	}

	for pass := 0; pass < opts.RefinePasses; pass++ {
		if opts.cancelled() {
			// Abandon mid-refinement: the caller observes Cancel itself and
			// discards the partition, so the half-refined state never leaks.
			return
		}
		moved := false
		if !speculative {
			for v := 0; v < n; v++ {
				if stillNoMove(v, lastEval[v]) {
					continue
				}
				if to := decide(v); to >= 0 {
					commit(v, to)
					lastEval[v] = -1
					moved = true
				} else {
					lastEval[v] = moveCount
				}
			}
			if !moved {
				return
			}
			continue
		}
		// Speculative pass: a parallel scan precomputes every vertex's
		// move against the pass-start state (per-vertex slot writes only),
		// then the serial commit walks vertices in the sweep order and
		// trusts a precomputed decision exactly when none of its inputs —
		// v's gain span, the size of v's cluster, or the size of any
		// adjacent cluster — changed since the scan, which the move stamps
		// witness. A stale vertex is re-decided serially. Every committed
		// move is therefore the move the serial sweep would have made at
		// that vertex, in the same order: the result is bit-identical at
		// any worker count, while the float-heavy gain evaluation runs
		// parallel (and, after the first converging passes, almost no
		// vertex is ever stale).
		passStart := moveCount
		parallelVertexRanges(n, opts.Workers, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if stillNoMove(v, lastEval[v]) {
					desire[v] = -1 // unchanged inputs re-derive "no move"
					continue
				}
				desire[v] = int32(decide(v))
			}
		})
		for v := 0; v < n; v++ {
			to := int(desire[v])
			if moveCount != passStart && !stillNoMove(v, passStart) {
				to = decide(v) // inputs changed after the scan
			}
			if to >= 0 {
				commit(v, to)
				lastEval[v] = -1
				moved = true
			} else {
				lastEval[v] = moveCount
			}
		}
		if !moved {
			return
		}
	}
}

// compact renumbers cluster ids densely in order of first appearance. Raw
// ids are bounded by the grown-cluster count (≤ the vertex count), so the
// remap is a flat table rather than a hash map.
func compact(part []int) []int {
	max := -1
	for _, p := range part {
		if p > max {
			max = p
		}
	}
	remap := make([]int, max+1)
	for i := range remap {
		remap[i] = -1
	}
	out := make([]int, len(part))
	next := 0
	for i, p := range part {
		if remap[p] == -1 {
			remap[p] = next
			next++
		}
		out[i] = remap[p]
	}
	return out
}

// NumParts returns the number of distinct parts in a dense assignment.
func NumParts(part []int) int {
	max := -1
	for _, p := range part {
		if p > max {
			max = p
		}
	}
	return max + 1
}

// PartSizes returns the size of each part of a dense assignment.
func PartSizes(part []int) []int {
	sizes := make([]int, NumParts(part))
	for _, p := range part {
		sizes[p]++
	}
	return sizes
}

// Members returns, for each part id, the sorted vertices assigned to it.
func Members(part []int) [][]int {
	out := make([][]int, NumParts(part))
	for v, p := range part {
		out[p] = append(out[p], v)
	}
	return out
}
