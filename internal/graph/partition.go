package graph

import (
	"fmt"
	"sort"
)

// PartitionOptions bounds the clusters produced by Partition.
//
// The paper's L1 clustering uses MinSize = 4 (nodes) so that erasure-code
// groups can be distributed across at least four physical nodes inside every
// cluster, and relies on the cost function to keep clusters small enough that
// few processes restart after a failure.
type PartitionOptions struct {
	// MinSize is the minimum vertices per part (>=1).
	MinSize int
	// MaxSize caps vertices per part; 0 means unbounded.
	MaxSize int
	// TargetSize is the size the greedy growth aims for; if 0 it defaults
	// to MinSize (grow just enough, letting refinement enlarge clusters
	// only when it reduces the cut).
	TargetSize int
	// RefinePasses bounds the Kernighan–Lin style refinement sweeps;
	// if 0 a default of 8 is used.
	RefinePasses int
}

func (o *PartitionOptions) normalize(n int) error {
	if o.MinSize <= 0 {
		o.MinSize = 1
	}
	if o.TargetSize == 0 {
		o.TargetSize = o.MinSize
	}
	if o.TargetSize < o.MinSize {
		return fmt.Errorf("graph: TargetSize %d below MinSize %d", o.TargetSize, o.MinSize)
	}
	if o.MaxSize != 0 && o.MaxSize < o.TargetSize {
		return fmt.Errorf("graph: MaxSize %d below TargetSize %d", o.MaxSize, o.TargetSize)
	}
	if o.MinSize > n && n > 0 {
		return fmt.Errorf("graph: MinSize %d exceeds vertex count %d", o.MinSize, n)
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 8
	}
	return nil
}

// Partition splits g into clusters of bounded size while minimizing the
// weight of cut edges (the message-logging volume). It implements the
// strategy of the paper's reference [24]: greedy region growing seeded at
// high-traffic vertices, followed by boundary refinement that moves vertices
// between clusters whenever that lowers the cut without violating the size
// bounds. It returns part[v] = cluster id, with ids dense in 0..K-1.
func Partition(g *Graph, opts PartitionOptions) ([]int, error) {
	n := g.N()
	if err := opts.normalize(n); err != nil {
		return nil, err
	}
	if n == 0 {
		return []int{}, nil
	}

	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}

	// Seeds in decreasing strength order: heavy communicators first, so the
	// densest neighborhoods are kept together.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := g.Strength(order[a]), g.Strength(order[b])
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})

	next := 0
	sizes := []int{}
	for _, seed := range order {
		if part[seed] != -1 {
			continue
		}
		id := next
		next++
		part[seed] = id
		size := 1
		// conn[v] = weight connecting unassigned v to the growing cluster.
		conn := map[int]float64{}
		for v, w := range g.adj[seed] {
			if part[v] == -1 {
				conn[v] += w
			}
		}
		for size < opts.TargetSize {
			best, bestW := -1, -1.0
			for v, w := range conn {
				if w > bestW || (w == bestW && (best == -1 || v < best)) {
					best, bestW = v, w
				}
			}
			if best == -1 {
				// Disconnected from every unassigned vertex: pull in the
				// strongest remaining vertex so every cluster reaches the
				// target (reliability requires the minimum size even for
				// isolated vertices).
				for _, v := range order {
					if part[v] == -1 {
						best = v
						break
					}
				}
				if best == -1 {
					break // nothing left anywhere
				}
			}
			part[best] = id
			delete(conn, best)
			size++
			for v, w := range g.adj[best] {
				if part[v] == -1 {
					conn[v] += w
				}
			}
		}
		sizes = append(sizes, size)
	}

	// Merge undersized clusters (only the last-grown cluster can be small)
	// into their most-connected neighbor, respecting MaxSize when possible.
	part, sizes = mergeSmall(g, part, sizes, opts)

	refine(g, part, sizes, opts)

	return compact(part), nil
}

// mergeSmall folds every cluster below MinSize into the neighboring cluster
// it communicates with most. If every candidate would exceed MaxSize the
// bound is relaxed for that merge: the paper treats MinSize (reliability) as
// the hard constraint and MaxSize (restart cost) as the soft one.
func mergeSmall(g *Graph, part []int, sizes []int, opts PartitionOptions) ([]int, []int) {
	for {
		small := -1
		for id, s := range sizes {
			if s > 0 && s < opts.MinSize {
				small = id
				break
			}
		}
		if small == -1 {
			return part, sizes
		}
		if len(activeClusters(sizes)) == 1 {
			return part, sizes // nothing to merge with
		}
		// Connection weight from the small cluster to each other cluster.
		conn := map[int]float64{}
		for v := range part {
			if part[v] != small {
				continue
			}
			for u, w := range g.adj[v] {
				if part[u] != small {
					conn[part[u]] += w
				}
			}
		}
		target := -1
		bestW := -1.0
		for id, w := range conn {
			fits := opts.MaxSize == 0 || sizes[id]+sizes[small] <= opts.MaxSize
			if fits && (w > bestW || (w == bestW && (target == -1 || id < target))) {
				target, bestW = id, w
			}
		}
		if target == -1 { // no fitting neighbor: relax MaxSize, then fall
			for id, w := range conn { // back to smallest cluster overall
				if w > bestW || (w == bestW && (target == -1 || id < target)) {
					target, bestW = id, w
				}
			}
		}
		if target == -1 {
			for id, s := range sizes {
				if id != small && s > 0 && (target == -1 || s < sizes[target]) {
					target = id
				}
			}
		}
		if target == -1 {
			return part, sizes
		}
		for v := range part {
			if part[v] == small {
				part[v] = target
			}
		}
		sizes[target] += sizes[small]
		sizes[small] = 0
	}
}

func activeClusters(sizes []int) []int {
	var out []int
	for id, s := range sizes {
		if s > 0 {
			out = append(out, id)
		}
	}
	return out
}

// refine performs boundary-move passes: each vertex may move to the
// neighboring cluster it communicates with most if the move strictly lowers
// the cut and keeps both clusters within the size bounds.
func refine(g *Graph, part []int, sizes []int, opts PartitionOptions) {
	for pass := 0; pass < opts.RefinePasses; pass++ {
		moved := false
		for v := 0; v < g.N(); v++ {
			from := part[v]
			if sizes[from] <= opts.MinSize {
				continue // removing v would break the reliability bound
			}
			// Weight from v to each adjacent cluster.
			conn := map[int]float64{}
			for u, w := range g.adj[v] {
				if u != v {
					conn[part[u]] += w
				}
			}
			own := conn[from]
			bestTo, bestW := -1, own
			for id, w := range conn {
				if id == from {
					continue
				}
				if opts.MaxSize != 0 && sizes[id]+1 > opts.MaxSize {
					continue
				}
				if w > bestW || (w == bestW && bestTo != -1 && id < bestTo) {
					bestTo, bestW = id, w
				}
			}
			if bestTo != -1 && bestW > own {
				part[v] = bestTo
				sizes[from]--
				sizes[bestTo]++
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}

// compact renumbers cluster ids densely in order of first appearance.
func compact(part []int) []int {
	remap := map[int]int{}
	out := make([]int, len(part))
	for i, p := range part {
		id, ok := remap[p]
		if !ok {
			id = len(remap)
			remap[p] = id
		}
		out[i] = id
	}
	return out
}

// NumParts returns the number of distinct parts in a dense assignment.
func NumParts(part []int) int {
	max := -1
	for _, p := range part {
		if p > max {
			max = p
		}
	}
	return max + 1
}

// PartSizes returns the size of each part of a dense assignment.
func PartSizes(part []int) []int {
	sizes := make([]int, NumParts(part))
	for _, p := range part {
		sizes[p]++
	}
	return sizes
}

// Members returns, for each part id, the sorted vertices assigned to it.
func Members(part []int) [][]int {
	out := make([][]int, NumParts(part))
	for v, p := range part {
		out[p] = append(out[p], v)
	}
	return out
}
