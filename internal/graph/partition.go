package graph

import (
	"fmt"
	"sort"
)

// PartitionOptions bounds the clusters produced by Partition.
//
// The paper's L1 clustering uses MinSize = 4 (nodes) so that erasure-code
// groups can be distributed across at least four physical nodes inside every
// cluster, and relies on the cost function to keep clusters small enough that
// few processes restart after a failure.
type PartitionOptions struct {
	// MinSize is the minimum vertices per part (>=1).
	MinSize int
	// MaxSize caps vertices per part; 0 means unbounded.
	MaxSize int
	// TargetSize is the size the greedy growth aims for; if 0 it defaults
	// to MinSize (grow just enough, letting refinement enlarge clusters
	// only when it reduces the cut).
	TargetSize int
	// RefinePasses bounds the Kernighan–Lin style refinement sweeps;
	// if 0 a default of 8 is used.
	RefinePasses int
}

func (o *PartitionOptions) normalize(n int) error {
	if o.MinSize <= 0 {
		o.MinSize = 1
	}
	if o.TargetSize == 0 {
		o.TargetSize = o.MinSize
	}
	if o.TargetSize < o.MinSize {
		return fmt.Errorf("graph: TargetSize %d below MinSize %d", o.TargetSize, o.MinSize)
	}
	if o.MaxSize != 0 && o.MaxSize < o.TargetSize {
		return fmt.Errorf("graph: MaxSize %d below TargetSize %d", o.MaxSize, o.TargetSize)
	}
	if o.MinSize > n && n > 0 {
		return fmt.Errorf("graph: MinSize %d exceeds vertex count %d", o.MinSize, n)
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 8
	}
	return nil
}

// Partition splits g into clusters of bounded size while minimizing the
// weight of cut edges (the message-logging volume). It implements the
// strategy of the paper's reference [24]: greedy region growing seeded at
// high-traffic vertices, followed by boundary refinement that moves vertices
// between clusters whenever that lowers the cut without violating the size
// bounds. It returns part[v] = cluster id, with ids dense in 0..K-1.
func Partition(g *Graph, opts PartitionOptions) ([]int, error) {
	n := g.N()
	if err := opts.normalize(n); err != nil {
		return nil, err
	}
	if n == 0 {
		return []int{}, nil
	}
	g.ensure()

	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}

	// Seeds in decreasing strength order: heavy communicators first, so the
	// densest neighborhoods are kept together.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := g.strength[order[a]], g.strength[order[b]]
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})

	next := 0
	sizes := []int{}
	// fallback scans order for any unassigned vertex; assignments only grow,
	// so a monotonic cursor keeps the total fallback cost O(n).
	fallbackCursor := 0
	for _, seed := range order {
		if part[seed] != -1 {
			continue
		}
		id := next
		next++
		part[seed] = id
		size := 1
		// conn[v] = weight connecting unassigned v to the growing cluster.
		conn := map[int]float64{}
		seedCols, seedWs := g.row(seed)
		for i, c := range seedCols {
			if part[c] == -1 {
				conn[int(c)] += seedWs[i]
			}
		}
		for size < opts.TargetSize {
			best, bestW := -1, -1.0
			for v, w := range conn {
				if w > bestW || (w == bestW && (best == -1 || v < best)) {
					best, bestW = v, w
				}
			}
			if best == -1 {
				// Disconnected from every unassigned vertex: pull in the
				// strongest remaining vertex so every cluster reaches the
				// target (reliability requires the minimum size even for
				// isolated vertices).
				for fallbackCursor < n {
					if part[order[fallbackCursor]] == -1 {
						best = order[fallbackCursor]
						break
					}
					fallbackCursor++
				}
				if best == -1 {
					break // nothing left anywhere
				}
			}
			part[best] = id
			delete(conn, best)
			size++
			cols, ws := g.row(best)
			for i, c := range cols {
				if part[c] == -1 {
					conn[int(c)] += ws[i]
				}
			}
		}
		sizes = append(sizes, size)
	}

	// Merge undersized clusters (only the last-grown cluster can be small)
	// into their most-connected neighbor, respecting MaxSize when possible.
	part, sizes = mergeSmall(g, part, sizes, opts)

	refine(g, part, sizes, opts)

	return compact(part), nil
}

// mergeSmall folds every cluster below MinSize into the neighboring cluster
// it communicates with most. If every candidate would exceed MaxSize the
// bound is relaxed for that merge: the paper treats MinSize (reliability) as
// the hard constraint and MaxSize (restart cost) as the soft one.
func mergeSmall(g *Graph, part []int, sizes []int, opts PartitionOptions) ([]int, []int) {
	for {
		small := -1
		for id, s := range sizes {
			if s > 0 && s < opts.MinSize {
				small = id
				break
			}
		}
		if small == -1 {
			return part, sizes
		}
		if len(activeClusters(sizes)) == 1 {
			return part, sizes // nothing to merge with
		}
		// Connection weight from the small cluster to each other cluster.
		conn := map[int]float64{}
		for v := range part {
			if part[v] != small {
				continue
			}
			cols, ws := g.row(v)
			for i, c := range cols {
				if part[c] != small {
					conn[part[c]] += ws[i]
				}
			}
		}
		target := -1
		bestW := -1.0
		for id, w := range conn {
			fits := opts.MaxSize == 0 || sizes[id]+sizes[small] <= opts.MaxSize
			if fits && (w > bestW || (w == bestW && (target == -1 || id < target))) {
				target, bestW = id, w
			}
		}
		if target == -1 { // no fitting neighbor: relax MaxSize, then fall
			for id, w := range conn { // back to smallest cluster overall
				if w > bestW || (w == bestW && (target == -1 || id < target)) {
					target, bestW = id, w
				}
			}
		}
		if target == -1 {
			for id, s := range sizes {
				if id != small && s > 0 && (target == -1 || s < sizes[target]) {
					target = id
				}
			}
		}
		if target == -1 {
			return part, sizes
		}
		for v := range part {
			if part[v] == small {
				part[v] = target
			}
		}
		sizes[target] += sizes[small]
		sizes[small] = 0
	}
}

func activeClusters(sizes []int) []int {
	var out []int
	for id, s := range sizes {
		if s > 0 {
			out = append(out, id)
		}
	}
	return out
}

// refine performs boundary-move passes: each vertex may move to the
// neighboring cluster it communicates with most if the move strictly lowers
// the cut and keeps both clusters within the size bounds.
//
// The per-vertex connection weights (vertex → adjacent cluster → weight) are
// built once in O(E) and then maintained incrementally: moving v from
// cluster a to cluster b only touches the cached entries of v's neighbors.
// The previous implementation rebuilt every vertex's map on every sweep,
// which dominated partitioning time on large node graphs.
func refine(g *Graph, part []int, sizes []int, opts PartitionOptions) {
	n := g.N()
	conn := make([]map[int]float64, n)
	for v := 0; v < n; v++ {
		m := map[int]float64{}
		cols, ws := g.row(v)
		for i, c := range cols {
			if int(c) != v {
				m[part[c]] += ws[i]
			}
		}
		conn[v] = m
	}
	for pass := 0; pass < opts.RefinePasses; pass++ {
		moved := false
		for v := 0; v < n; v++ {
			from := part[v]
			if sizes[from] <= opts.MinSize {
				continue // removing v would break the reliability bound
			}
			cm := conn[v]
			own := cm[from]
			bestTo, bestW := -1, own
			for id, w := range cm {
				if id == from {
					continue
				}
				if opts.MaxSize != 0 && sizes[id]+1 > opts.MaxSize {
					continue
				}
				if w > bestW || (w == bestW && bestTo != -1 && id < bestTo) {
					bestTo, bestW = id, w
				}
			}
			if bestTo != -1 && bestW > own {
				part[v] = bestTo
				sizes[from]--
				sizes[bestTo]++
				moved = true
				// Incremental update: every neighbor of v sees v's weight
				// shift from cluster `from` to `bestTo`.
				cols, ws := g.row(v)
				for i, c := range cols {
					u := int(c)
					if u == v {
						continue
					}
					cu := conn[u]
					if nw := cu[from] - ws[i]; nw == 0 {
						delete(cu, from)
					} else {
						cu[from] = nw
					}
					cu[bestTo] += ws[i]
				}
			}
		}
		if !moved {
			return
		}
	}
}

// compact renumbers cluster ids densely in order of first appearance.
func compact(part []int) []int {
	remap := map[int]int{}
	out := make([]int, len(part))
	for i, p := range part {
		id, ok := remap[p]
		if !ok {
			id = len(remap)
			remap[p] = id
		}
		out[i] = id
	}
	return out
}

// NumParts returns the number of distinct parts in a dense assignment.
func NumParts(part []int) int {
	max := -1
	for _, p := range part {
		if p > max {
			max = p
		}
	}
	return max + 1
}

// PartSizes returns the size of each part of a dense assignment.
func PartSizes(part []int) []int {
	sizes := make([]int, NumParts(part))
	for _, p := range part {
		sizes[p]++
	}
	return sizes
}

// Members returns, for each part id, the sorted vertices assigned to it.
func Members(part []int) [][]int {
	out := make([][]int, NumParts(part))
	for v, p := range part {
		out[p] = append(out[p], v)
	}
	return out
}
