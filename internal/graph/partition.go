package graph

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// PartitionOptions bounds the clusters produced by Partition.
//
// The paper's L1 clustering uses MinSize = 4 (nodes) so that erasure-code
// groups can be distributed across at least four physical nodes inside every
// cluster, and relies on the cost function to keep clusters small enough that
// few processes restart after a failure.
type PartitionOptions struct {
	// MinSize is the minimum vertices per part (>=1).
	MinSize int
	// MaxSize caps vertices per part; 0 means unbounded.
	MaxSize int
	// TargetSize is the size the greedy growth aims for; if 0 it defaults
	// to MinSize (grow just enough, letting refinement enlarge clusters
	// only when it reduces the cut).
	TargetSize int
	// RefinePasses bounds the Kernighan–Lin style refinement sweeps;
	// if 0 a default of 8 is used.
	RefinePasses int

	// Multilevel enables the coarsen/partition/uncoarsen pipeline:
	// heavy-edge matching collapses the graph level by level until it has
	// at most CoarsenThreshold vertices, the coarsest graph is partitioned
	// with the greedy growth, and the assignment is projected back up with
	// the incremental-gain refinement run at every level. The matching
	// rounds parallelize over the frozen CSR; results are identical at any
	// worker count. Off, or on a graph with at most CoarsenThreshold
	// vertices, Partition produces exactly the single-level result.
	Multilevel bool
	// CoarsenThreshold stops coarsening once the graph has at most this
	// many vertices; 0 means 128.
	CoarsenThreshold int
	// MatchingRounds bounds the handshake rounds of each heavy-edge
	// matching; 0 means 4.
	MatchingRounds int
	// Workers bounds the worker pool of the parallel phases (matching,
	// contraction, refinement scans); 0 = GOMAXPROCS. The assignment
	// never depends on it.
	Workers int
	// Cancel, when non-nil, is polled between coarsening levels and
	// refinement passes; once it returns true, Partition abandons the work
	// and returns ErrCancelled. It must be cheap (an atomic load or
	// ctx.Err()) and is never consulted for results — an uncancelled run
	// is bit-identical with or without it.
	Cancel func() bool
}

// ErrCancelled is returned by Partition when PartitionOptions.Cancel
// reported an abort; match with errors.Is.
var ErrCancelled = errors.New("graph: partition cancelled")

// cancelled reports a caller-requested abort.
func (o *PartitionOptions) cancelled() bool { return o.Cancel != nil && o.Cancel() }

func (o *PartitionOptions) normalize(n int) error {
	if o.MinSize <= 0 {
		o.MinSize = 1
	}
	if o.TargetSize == 0 {
		o.TargetSize = o.MinSize
	}
	if o.TargetSize < o.MinSize {
		return fmt.Errorf("graph: TargetSize %d below MinSize %d", o.TargetSize, o.MinSize)
	}
	if o.MaxSize != 0 && o.MaxSize < o.TargetSize {
		return fmt.Errorf("graph: MaxSize %d below TargetSize %d", o.MaxSize, o.TargetSize)
	}
	if o.MinSize > n && n > 0 {
		return fmt.Errorf("graph: MinSize %d exceeds vertex count %d", o.MinSize, n)
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 8
	}
	if o.CoarsenThreshold <= 0 {
		o.CoarsenThreshold = 128
	}
	if o.MatchingRounds <= 0 {
		o.MatchingRounds = 4
	}
	return nil
}

// vweight returns the weight of vertex v under vw; nil means unit weights
// (the single-level path and the finest multilevel level).
func vweight(vw []int, v int) int {
	if vw == nil {
		return 1
	}
	return vw[v]
}

// Partition splits g into clusters of bounded size while minimizing the
// weight of cut edges (the message-logging volume). It implements the
// strategy of the paper's reference [24]: greedy region growing seeded at
// high-traffic vertices, followed by boundary refinement that moves vertices
// between clusters whenever that lowers the cut without violating the size
// bounds. With Multilevel set (and a graph above CoarsenThreshold) the
// growth runs on a heavy-edge-coarsened graph instead and the refinement
// repeats at every level on the way back up — the same contract, better
// cuts, and parallel matching on large graphs. It returns part[v] = cluster
// id, with ids dense in 0..K-1.
func Partition(g *Graph, opts PartitionOptions) ([]int, error) {
	n := g.N()
	if err := opts.normalize(n); err != nil {
		return nil, err
	}
	if n == 0 {
		return []int{}, nil
	}
	g.ensure()
	ar := newPartArena(g)
	defer ar.release()
	if opts.Multilevel && n > opts.CoarsenThreshold {
		return multilevelPartition(g, opts, ar)
	}
	part := singleLevel(g, opts, nil, ar, 0, false)
	if opts.cancelled() {
		return nil, ErrCancelled
	}
	return part, nil
}

// singleLevel is the growth → merge → refine pipeline on one graph, with
// cluster sizes measured in vertex weight (vw nil = unit weights, the
// original single-level behavior; multilevel coarse graphs pass the number
// of original vertices inside each coarse vertex). level tags the pprof
// phase labels; markBoundary asks refine to record per-vertex boundary
// flags for the cross-level gain-cache projection (multilevel coarsest
// level only).
func singleLevel(g *Graph, opts PartitionOptions, vw []int, ar *partArena, level int, markBoundary bool) []int {
	setPhase("grow", level)
	part, sizes := grow(g, opts, vw, ar)
	if vw == nil {
		part, sizes = mergeSmall(g, part, sizes, opts)
	} else {
		// Weighted growth can leave many undersized clusters (matching
		// leftovers); the indexed merge handles thousands of them without
		// mergeSmall's per-merge full-graph scans.
		part, sizes = mergeSmallWeighted(g, part, sizes, opts, ar)
	}
	setPhase("refine", level)
	refineSeeded(g, part, sizes, opts, vw, ar, nil, markBoundary)
	clearPhase()
	return compact(part)
}

// sortSeedsByStrength orders all vertices by strength descending, index
// ascending, via a stable LSD radix sort over the inverted IEEE-754 bit
// patterns — strengths are non-negative, so their bit patterns order
// exactly like their values, and stability turns "index ascending" into a
// free tie-break. The result is the identical total order the comparison
// sort produced, without its half-million comparator calls on 100k-vertex
// graphs. Byte positions that are constant across all keys (most of the
// exponent bytes in practice) skip their scatter pass. Returns the sorted
// slice, which is one of the two ping-pong buffers.
func sortSeedsByStrength(strength []float64, order, orderB []int, keys, keysB []uint64) []int {
	n := len(strength)
	for i := 0; i < n; i++ {
		order[i] = i
		keys[i] = ^math.Float64bits(strength[i])
	}
	var count [256]int
	for shift := 0; shift < 64; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for i := 0; i < n; i++ {
			count[byte(keys[i]>>shift)]++
		}
		if n > 0 && count[byte(keys[0]>>shift)] == n {
			continue // constant byte: the pass would be the identity
		}
		pos := 0
		for b := 0; b < 256; b++ {
			c := count[b]
			count[b] = pos
			pos += c
		}
		for i := 0; i < n; i++ {
			b := byte(keys[i] >> shift)
			j := count[b]
			count[b]++
			keysB[j] = keys[i]
			orderB[j] = order[i]
		}
		keys, keysB = keysB, keys
		order, orderB = orderB, order
	}
	return order
}

// grow performs greedy region growing seeded at high-strength vertices,
// returning the raw (non-compacted) assignment and per-id sizes in weight
// units. Both returned slices are arena-backed; callers own them until the
// next grow on the same arena.
//
// The frontier is flat: connection weights accumulate in an epoch-stamped
// per-vertex array (one epoch per seed, so resets are free) and the
// frontier members sit in a shared list, scanned per pick for the maximum
// (weight desc, vertex asc) — the same total order, over the same candidate
// set, as the historical per-seed hash map's iteration, so every pick is
// identical; only the hashing, per-seed allocation, and tombstone deletes
// are gone. Assigned members are skipped in place, exactly like the map's
// deleted keys.
func grow(g *Graph, opts PartitionOptions, vw []int, ar *partArena) ([]int, []int) {
	g.ensureAggregates() // seed ordering reads strengths
	n := g.N()
	part := ar.growPart[:n]
	for i := range part {
		part[i] = -1
	}

	// Seeds in decreasing strength order: heavy communicators first, so the
	// densest neighborhoods are kept together. The index tie-break makes
	// the order total, so any sort algorithm (or the radix sort here)
	// produces the same seeds.
	order := sortSeedsByStrength(g.strength, ar.order[:n], ar.orderB[:n], ar.keysA[:n], ar.keysB[:n])

	next := 0
	sizes := ar.growSizes[:0]
	connW := ar.growW[:n]
	stamp := ar.growStamp[:n]
	list := ar.growList[:0]
	// addNeighbors folds u's unassigned neighbors into the frontier.
	addNeighbors := func(u int, epoch int32) {
		cols, ws := g.row(u)
		for i, c := range cols {
			v := int(c)
			if part[v] != -1 {
				continue
			}
			if stamp[v] != epoch {
				stamp[v] = epoch
				connW[v] = ws[i]
				list = append(list, c)
			} else {
				connW[v] += ws[i]
			}
		}
	}
	// fallback scans order for any unassigned vertex; assignments only grow,
	// so a monotonic cursor keeps the total fallback cost O(n).
	fallbackCursor := 0
	for _, seed := range order {
		if part[seed] != -1 {
			continue
		}
		id := next
		next++
		part[seed] = id
		size := vweight(vw, seed)
		if size >= opts.TargetSize {
			// Already at target (a saturated multilevel coarse vertex):
			// skip the frontier bookkeeping entirely.
			sizes = append(sizes, size)
			continue
		}
		ar.growEpoch++
		epoch := ar.growEpoch
		list = list[:0]
		addNeighbors(seed, epoch)
		for size < opts.TargetSize {
			best, bestW := -1, -1.0
			for _, v32 := range list {
				v := int(v32)
				if part[v] != -1 {
					continue // already inside some cluster
				}
				if opts.MaxSize != 0 && size+vweight(vw, v) > opts.MaxSize {
					continue // would burst the hard cap
				}
				if w := connW[v]; w > bestW || (w == bestW && (best == -1 || v < best)) {
					best, bestW = v, w
				}
			}
			if best == -1 {
				if vw != nil {
					// Weighted (multilevel) growth: no unassigned neighbor
					// is available or fits. Pulling a distant vertex here
					// would fabricate a non-contiguous cluster; stopping
					// leaves any undersized cluster to mergeSmall, which
					// folds it into its most-connected — adjacent —
					// neighbor instead.
					break
				}
				// Disconnected from every unassigned vertex: pull in the
				// strongest remaining vertex so every cluster reaches the
				// target (reliability requires the minimum size even for
				// isolated vertices).
				for fallbackCursor < n {
					if part[order[fallbackCursor]] == -1 {
						best = order[fallbackCursor]
						break
					}
					fallbackCursor++
				}
				if best == -1 {
					break // nothing left anywhere
				}
			}
			part[best] = id
			size += vweight(vw, best)
			addNeighbors(best, epoch)
		}
		sizes = append(sizes, size)
	}
	return part, sizes
}

// mergeSmall folds every cluster below MinSize into the neighboring cluster
// it communicates with most. If every candidate would exceed MaxSize the
// bound is relaxed for that merge: the paper treats MinSize (reliability) as
// the hard constraint and MaxSize (restart cost) as the soft one.
func mergeSmall(g *Graph, part []int, sizes []int, opts PartitionOptions) ([]int, []int) {
	for {
		small := -1
		for id, s := range sizes {
			if s > 0 && s < opts.MinSize {
				small = id
				break
			}
		}
		if small == -1 {
			return part, sizes
		}
		if len(activeClusters(sizes)) == 1 {
			return part, sizes // nothing to merge with
		}
		// Connection weight from the small cluster to each other cluster.
		conn := map[int]float64{}
		for v := range part {
			if part[v] != small {
				continue
			}
			cols, ws := g.row(v)
			for i, c := range cols {
				if part[c] != small {
					conn[part[c]] += ws[i]
				}
			}
		}
		target := -1
		bestW := -1.0
		for id, w := range conn {
			fits := opts.MaxSize == 0 || sizes[id]+sizes[small] <= opts.MaxSize
			if fits && (w > bestW || (w == bestW && (target == -1 || id < target))) {
				target, bestW = id, w
			}
		}
		if target == -1 { // no fitting neighbor: relax MaxSize, then fall
			for id, w := range conn { // back to smallest cluster overall
				if w > bestW || (w == bestW && (target == -1 || id < target)) {
					target, bestW = id, w
				}
			}
		}
		if target == -1 {
			for id, s := range sizes {
				if id != small && s > 0 && (target == -1 || s < sizes[target]) {
					target = id
				}
			}
		}
		if target == -1 {
			return part, sizes
		}
		for v := range part {
			if part[v] == small {
				part[v] = target
			}
		}
		sizes[target] += sizes[small]
		sizes[small] = 0
	}
}

func activeClusters(sizes []int) []int {
	var out []int
	for id, s := range sizes {
		if s > 0 {
			out = append(out, id)
		}
	}
	return out
}

// refineParallelMin is the vertex count below which refine always runs its
// plain serial sweep: the speculative scan's fork/join overhead only pays
// off on graphs with tens of thousands of vertices.
const refineParallelMin = 4096

// cacheSeed carries the cross-level gain-cache projection into refine: cmap
// maps each vertex of this level to its image in the next-coarser graph, and
// boundary holds the coarser level's per-vertex boundary flags, extracted
// from its converged gain cache (see markBoundary below). A vertex whose
// image was interior — every coarse neighbor inside its own cluster — has,
// after projection, every fine neighbor inside its own cluster too, so its
// gain span is a single own-cluster entry summed in neighbor order without
// reading one part[] slot, and its first-pass decision is "no move" without
// evaluation. Boundary-image vertices rebuild exactly as the unseeded path
// does, so the seeded cache is bit-identical to the full rebuild.
type cacheSeed struct {
	cmap     []int32
	boundary []uint8
}

// refine performs boundary-move passes with a full (unseeded) cache build
// and no boundary extraction — the historical entry point.
func refine(g *Graph, part []int, sizes []int, opts PartitionOptions, vw []int, ar *partArena) {
	refineSeeded(g, part, sizes, opts, vw, ar, nil, false)
}

// refineSeeded performs boundary-move passes: each vertex may move to the
// neighboring cluster it communicates with most if the move strictly lowers
// the cut and keeps both clusters within the size bounds.
//
// The per-vertex connection weights (vertex → adjacent cluster → weight) are
// built once in O(E) and then maintained incrementally: moving v from
// cluster a to cluster b only touches the cached entries of v's neighbors.
// The cache lives in flat arrays spanned by the CSR row pointers — a vertex
// touches at most deg(v) distinct clusters, so its row span always has room
// — because one map per vertex (the previous layout) cost more to build
// than the moves it served on 100k-vertex graphs, and the multilevel path
// rebuilds the cache at every level. The arrays come from the arena, so
// those per-level rebuilds reuse one finest-level allocation. A non-nil
// seed shortcuts the build for vertices whose coarse image was interior
// (see cacheSeed); markBoundary records this level's own boundary flags
// into ar.state at convergence, seeding the next-finer level.
//
// Sizes are in weight units: moving v shifts vweight(vw, v), and the size
// bounds hold in the same units (unit weights reproduce the historical
// vertex-count behavior exactly).
//
// Every pass decides moves against pass-start state (the first pass fused
// into the cache build itself) and then commits them: either through the
// serial walk, or — when the decided moves split into independent regions —
// through the parallel region commit (region_commit.go). Both commit forms
// produce exactly the serial sweep's moves in the serial sweep's order, so
// the assignment never depends on the worker count.
// refineState is the refinement's working state, embedded in the arena so
// the pass bodies can be methods instead of closures. The closure layout
// heap-allocated every helper plus a cell for each variable the escaping
// scan closures shared — about ten allocations per level, re-paid at every
// level of the multilevel ladder; a method value on the arena-resident state
// costs one. refineSeeded clears the struct on return so a pooled arena
// never pins a finished graph.
type refineState struct {
	g     *Graph
	part  []int
	sizes []int
	vw    []int
	ar    *partArena
	seed  *cacheSeed

	// connID/connW/connCnt[rowptr[v]:rowptr[v]+connLen[v]] = (cluster,
	// weight, contributing neighbors) entries of v, unordered; lookups scan
	// the span. An entry lives exactly while some neighbor contributes to
	// it, so occupancy never exceeds deg(v) — the span always has room.
	// With exact weight arithmetic (integer-valued byte counts, every graph
	// this repository builds) the cached weights equal the historical
	// per-vertex map cache exactly.
	rowptr  []int64
	connID  []int32
	connW   []float64
	connCnt []int32
	connLen []int32

	// Move stamps: nbrTouch[v] is the move counter when v's gain span last
	// changed, clusterTouch[c] when cluster c's size last changed, and
	// lastEval[v] the counter when v last evaluated to "no move" (-1 when v
	// has never evaluated, or its last evaluation moved it). A vertex whose
	// stamps are all at or before its lastEval would re-derive the same
	// "no move" from identical inputs, so converged sweeps skip it after a
	// cheap integer scan — the bulk of every pass after the first.
	desire       []int32
	nbrTouch     []int32
	clusterTouch []int32
	lastEval     []int32

	n            int
	minSize      int
	maxSize      int
	workers      int
	speculative  bool
	regionFailed bool
	moveCount    int32
	movers       int32 // accessed atomically: per-pass decided-mover count
}

func (rs *refineState) find(v, id int) int {
	lo := rs.rowptr[v]
	span := rs.connID[lo : lo+int64(rs.connLen[v])]
	for i := range span {
		if span[i] == int32(id) {
			return int(lo) + i
		}
	}
	return -1
}

func (rs *refineState) add(v, id int, w float64) {
	if i := rs.find(v, id); i >= 0 {
		rs.connW[i] += w
		rs.connCnt[i]++
		return
	}
	pos := rs.rowptr[v] + int64(rs.connLen[v])
	rs.connID[pos], rs.connW[pos], rs.connCnt[pos] = int32(id), w, 1
	rs.connLen[v]++
}

// sub removes one neighbor's weight from v's cluster-id entry, dropping
// the entry with its last contributor.
func (rs *refineState) sub(v, id int, w float64) {
	i := rs.find(v, id)
	if i < 0 {
		return
	}
	rs.connW[i] -= w
	rs.connCnt[i]--
	if rs.connCnt[i] == 0 {
		last := rs.rowptr[v] + int64(rs.connLen[v]) - 1
		rs.connID[i], rs.connW[i], rs.connCnt[i] = rs.connID[last], rs.connW[last], rs.connCnt[last]
		rs.connLen[v]--
	}
}

// decide returns the cluster the serial sweep would move v to right
// now, or -1: the heaviest adjacent cluster that fits MaxSize, if its
// weight strictly beats v's connection to its own cluster and leaving
// keeps the source above MinSize. One span pass finds both the own
// weight and the best candidate; the candidate maximum is ordered by
// (weight desc, id asc), which reproduces the historical two-pass
// scan's pick exactly — candidates at or below the own weight lose the
// final strict comparison either way.
func (rs *refineState) decide(v int) int {
	from := rs.part[v]
	wv := vweight(rs.vw, v)
	if rs.sizes[from]-wv < rs.minSize {
		return -1 // removing v would break the reliability bound
	}
	var own float64
	bestTo, bestW := -1, -1.0
	base := int(rs.rowptr[v])
	for i := 0; i < int(rs.connLen[v]); i++ {
		id, w := int(rs.connID[base+i]), rs.connW[base+i]
		if id == from {
			own = w
			continue
		}
		if rs.maxSize != 0 && rs.sizes[id]+wv > rs.maxSize {
			continue
		}
		if w > bestW || (w == bestW && id < bestTo) {
			bestTo, bestW = id, w
		}
	}
	if bestW > own {
		return bestTo
	}
	return -1
}

// stillNoMove reports whether v's previous "no move" decision is still
// derivable from unchanged inputs as of stamp `since`. Those inputs are
// v's gain span (nbrTouch) and the size of v's own cluster (the MinSize
// gate); other clusters' sizes only enter decide through the MaxSize
// cap, so the span's cluster stamps need scanning only when a cap is
// set — with MaxSize 0 (the paper's L1 configuration) the check is two
// loads.
func (rs *refineState) stillNoMove(v int, since int32) bool {
	if since < 0 || rs.nbrTouch[v] > since || rs.clusterTouch[rs.part[v]] > since {
		return false
	}
	if rs.maxSize != 0 {
		base := int(rs.rowptr[v])
		for i := 0; i < int(rs.connLen[v]); i++ {
			if rs.clusterTouch[rs.connID[base+i]] > since {
				return false
			}
		}
	}
	return true
}

// commit applies the move v → to and maintains the incremental caches:
// every neighbor of v sees v's weight shift from cluster `from` to
// `to`; the stamps record what the move invalidated. The counter is a
// pointer so the parallel region commit can stamp each region from its
// own disjoint counter range.
func (rs *refineState) commit(v, to int, mc *int32) {
	from := rs.part[v]
	wv := vweight(rs.vw, v)
	rs.part[v] = to
	rs.sizes[from] -= wv
	rs.sizes[to] += wv
	*mc++
	rs.clusterTouch[from] = *mc
	rs.clusterTouch[to] = *mc
	cols, ws := rs.g.row(v)
	for i, c := range cols {
		u := int(c)
		if u == v {
			continue
		}
		rs.sub(u, from, ws[i])
		rs.add(u, to, ws[i])
		rs.nbrTouch[u] = *mc
	}
}

// buildDecide builds the gain cache and, on speculative refinements,
// fuses the first pass's move decisions into the build: it writes
// vertex v's span from read-only state (part and v's row) and
// immediately decides v's pass-1 move while the span is still hot —
// one pass where the build and the first speculative scan used to be
// two. It writes only per-vertex slots, so it parallelizes chunk-wise
// with no effect on the result. (Serial refinements skip the fused
// decisions: their first sweep decides each vertex at its turn, with
// earlier commits visible, so pass-start decisions would be wasted.)
// The build body is the add() path hand-inlined over int offsets: this
// loop is the hottest in the multilevel profile (it reruns at every
// level of the ladder). A seeded (interior-image) vertex skips both
// the part[] gathers and the decision.
func (rs *refineState) buildDecide(lo, hi int) {
	seed := rs.seed
	connID, connW, connCnt, connLen := rs.connID, rs.connW, rs.connCnt, rs.connLen
	nm := int32(0)
	for v := lo; v < hi; v++ {
		base := int(rs.rowptr[v])
		cols, ws := rs.g.row(v)
		if seed != nil && seed.boundary[seed.cmap[v]] == 0 {
			// Interior coarse image: every neighbor shares v's cluster.
			// The single-entry sum runs in the same ascending neighbor
			// order as the full build, so the bits match exactly; the
			// decision is "no move" by construction (no foreign entry).
			var s float64
			cnt := int32(0)
			for i, c := range cols {
				if int(c) == v {
					continue
				}
				s += ws[i]
				cnt++
			}
			if cnt > 0 {
				connID[base], connW[base], connCnt[base] = int32(rs.part[v]), s, cnt
				connLen[v] = 1
			} else {
				connLen[v] = 0
			}
			rs.desire[v] = -1
			continue
		}
		ln := 0
		for i, c := range cols {
			if int(c) == v {
				continue
			}
			id := int32(rs.part[c])
			pos := -1
			for j := 0; j < ln; j++ {
				if connID[base+j] == id {
					pos = base + j
					break
				}
			}
			if pos >= 0 {
				connW[pos] += ws[i]
				connCnt[pos]++
			} else {
				pos = base + ln
				connID[pos], connW[pos], connCnt[pos] = id, ws[i], 1
				ln++
			}
		}
		connLen[v] = int32(ln)
		if !rs.speculative {
			continue
		}
		if d := int32(rs.decide(v)); d >= 0 {
			rs.desire[v] = d
			nm++
		} else {
			rs.desire[v] = -1
		}
	}
	if nm != 0 {
		atomic.AddInt32(&rs.movers, nm)
	}
}

// scan is the speculative per-pass scan for passes after the first:
// every vertex's move is precomputed against the pass-start state
// (per-vertex slot writes only).
func (rs *refineState) scan(lo, hi int) {
	nm := int32(0)
	for v := lo; v < hi; v++ {
		if rs.stillNoMove(v, rs.lastEval[v]) {
			rs.desire[v] = -1 // unchanged inputs re-derive "no move"
			continue
		}
		if d := int32(rs.decide(v)); d >= 0 {
			rs.desire[v] = d
			nm++
		} else {
			rs.desire[v] = -1
		}
	}
	if nm != 0 {
		atomic.AddInt32(&rs.movers, nm)
	}
}

// serialWalk commits a scanned pass: it walks vertices in the sweep
// order and trusts a precomputed decision exactly when none of its
// inputs — v's gain span, the size of v's cluster, or the size of any
// adjacent cluster — changed since the scan, which the move stamps
// witness. A stale vertex is re-decided serially. Every committed move
// is therefore the move the serial sweep would have made at that
// vertex, in the same order: the result is bit-identical at any worker
// count, while the float-heavy gain evaluation runs parallel (and,
// after the first converging passes, almost no vertex is ever stale).
func (rs *refineState) serialWalk() bool {
	moved := false
	passStart := rs.moveCount
	for v := 0; v < rs.n; v++ {
		to := int(rs.desire[v])
		if rs.moveCount != passStart && !rs.stillNoMove(v, passStart) {
			to = rs.decide(v) // inputs changed after the scan
		}
		if to >= 0 {
			rs.commit(v, to, &rs.moveCount)
			rs.lastEval[v] = -1
			moved = true
		} else {
			rs.lastEval[v] = rs.moveCount
		}
	}
	return moved
}

// regionWalk commits one region's shadow exactly as serialWalk commits
// the whole vertex range, stamping from the region's disjoint counter
// window. Every input a shadow vertex can read — its gain span, its
// own cluster's size, any cluster it is adjacent to — is owned by its
// region (the planner's closure invariant), so concurrent regions
// never observe each other and the committed moves are the serial
// walk's, region by region.
func (rs *refineState) regionWalk(shadow []int32, base, passStart int32) bool {
	mc := base
	moved := false
	for _, v32 := range shadow {
		v := int(v32)
		to := int(rs.desire[v])
		if mc != base && !rs.stillNoMove(v, passStart) {
			to = rs.decide(v)
		}
		if to >= 0 {
			rs.commit(v, to, &mc)
			rs.lastEval[v] = -1
			moved = true
		} else {
			rs.lastEval[v] = mc
		}
	}
	return moved
}

// regionCommit plans and, when the decided moves split into at least
// two mutually independent regions, commits them concurrently. It
// reports whether it committed; false falls back to the serial walk.
// One failed plan latches the fallback for the rest of this refinement
// — the closure only grows as moves churn the same neighborhoods, so
// retrying every pass would pay the O(n) planning sweep for nothing.
func (rs *refineState) regionCommit(nMovers int) (bool, bool) {
	if rs.regionFailed || !regionsEligible(nMovers, rs.n, rs.maxSize, rs.speculative) {
		return false, false
	}
	plan := planRegions(rs.g, rs.part, len(rs.sizes), rs.desire, rs.ar, rs.n/4+16)
	minRegions := 2
	if regionCommitMode == regionForce {
		minRegions = 1
	}
	if !plan.ok || plan.nr < minRegions {
		rs.regionFailed = true
		return false, false
	}
	if regionPlanHook != nil {
		regionPlanHook(plan.nr, len(plan.buf))
	}
	passStart := rs.moveCount
	// Each region stamps from a disjoint window sized by its shadow (a
	// vertex commits at most once per pass) and laid out in region
	// order — the plan's starts array is exactly that prefix — so stamp
	// comparisons, always between events of one region or across
	// passes, order exactly as the serial walk's shared counter does.
	var anyMoved atomic.Bool
	parallelItems(plan.nr, rs.workers, func(r int) {
		if rs.regionWalk(plan.shadow(r), passStart+plan.starts[r], passStart) {
			anyMoved.Store(true)
		}
	})
	rs.moveCount = passStart + plan.starts[plan.nr]
	// A vertex no region claimed saw none of its inputs change this
	// pass; its standing "no move" is re-dated to the end of the pass,
	// exactly as the serial walk would have left it order-wise.
	claimed := plan.claimed
	endCount := rs.moveCount
	lastEval := rs.lastEval
	parallelVertexRanges(rs.n, rs.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if claimed[v] == -1 {
				lastEval[v] = endCount
			}
		}
	})
	return true, anyMoved.Load()
}

func refineSeeded(g *Graph, part []int, sizes []int, opts PartitionOptions, vw []int, ar *partArena, seed *cacheSeed, markBoundary bool) {
	n := g.N()
	nnz := g.rowptr[n]
	rs := &ar.ref
	*rs = refineState{
		g: g, part: part, sizes: sizes, vw: vw, ar: ar, seed: seed,
		rowptr:  g.rowptr,
		connID:  ar.connID[:nnz],
		connW:   ar.connW[:nnz],
		connCnt: ar.connCnt[:nnz],
		connLen: ar.connLen[:n],

		desire:       ar.desire[:n],
		nbrTouch:     ar.nbrTouch[:n],
		clusterTouch: ar.clusterTouch[:len(sizes)],
		lastEval:     ar.lastEval[:n],

		n:           n,
		minSize:     opts.MinSize,
		maxSize:     opts.MaxSize,
		workers:     opts.Workers,
		speculative: effectiveWorkers(n, opts.Workers) > 1 && n >= refineParallelMin,
	}
	clear(rs.nbrTouch)
	clear(rs.clusterTouch)
	for i := range rs.lastEval {
		rs.lastEval[i] = -1
	}
	// The method values are hoisted out of the pass loop: each evaluation
	// allocates one funcval (the bound receiver escapes into the worker
	// goroutines), so hoisting caps the refinement at two such allocations.
	buildFn, scanFn := rs.buildDecide, rs.scan

passes:
	for pass := 0; pass < opts.RefinePasses; pass++ {
		if opts.cancelled() {
			// Abandon mid-refinement: the caller observes Cancel itself and
			// discards the partition, so the half-refined state never leaks.
			*rs = refineState{}
			return
		}
		moved := false
		switch {
		case !rs.speculative:
			// Small or single-worker graphs: build the cache once, then
			// plain serial sweeps deciding each vertex at its turn, with
			// earlier commits immediately visible — no walk overhead.
			if pass == 0 {
				parallelVertexRanges(n, opts.Workers, buildFn)
			}
			for v := 0; v < n; v++ {
				if rs.stillNoMove(v, rs.lastEval[v]) {
					continue
				}
				if to := rs.decide(v); to >= 0 {
					rs.commit(v, to, &rs.moveCount)
					rs.lastEval[v] = -1
					moved = true
				} else {
					rs.lastEval[v] = rs.moveCount
				}
			}
			if !moved {
				break passes
			}
			continue
		case pass == 0:
			atomic.StoreInt32(&rs.movers, 0)
			parallelVertexRanges(n, opts.Workers, buildFn)
		default:
			atomic.StoreInt32(&rs.movers, 0)
			parallelVertexRanges(n, opts.Workers, scanFn)
		}
		committed, regionMoved := rs.regionCommit(int(atomic.LoadInt32(&rs.movers)))
		if committed {
			moved = regionMoved
		} else {
			moved = rs.serialWalk()
		}
		if !moved {
			break passes
		}
	}

	if markBoundary {
		// Record which vertices still touch a foreign cluster in the
		// converged cache: a vertex whose span is empty, or a single entry
		// for its own cluster, has every neighbor at home. The flags are
		// cluster-id-agnostic (only the own/foreign distinction survives),
		// so the caller may compact ids afterwards. ar.state is free here —
		// all matching finished before the first refinement.
		bnd := ar.state[:n]
		for v := 0; v < n; v++ {
			ln := int(rs.connLen[v])
			if ln == 0 || (ln == 1 && int(rs.connID[rs.rowptr[v]]) == part[v]) {
				bnd[v] = 0
			} else {
				bnd[v] = 1
			}
		}
	}
	// Drop every reference so the pooled arena does not pin this graph (or
	// its partition) beyond the refinement that used them.
	*rs = refineState{}
}

// compact renumbers cluster ids densely in order of first appearance. Raw
// ids are bounded by the grown-cluster count (≤ the vertex count), so the
// remap is a flat table rather than a hash map.
func compact(part []int) []int {
	max := -1
	for _, p := range part {
		if p > max {
			max = p
		}
	}
	remap := make([]int, max+1)
	for i := range remap {
		remap[i] = -1
	}
	out := make([]int, len(part))
	next := 0
	for i, p := range part {
		if remap[p] == -1 {
			remap[p] = next
			next++
		}
		out[i] = remap[p]
	}
	return out
}

// NumParts returns the number of distinct parts in a dense assignment.
func NumParts(part []int) int {
	max := -1
	for _, p := range part {
		if p > max {
			max = p
		}
	}
	return max + 1
}

// PartSizes returns the size of each part of a dense assignment.
func PartSizes(part []int) []int {
	sizes := make([]int, NumParts(part))
	for _, p := range part {
		sizes[p]++
	}
	return sizes
}

// Members returns, for each part id, the sorted vertices assigned to it.
func Members(part []int) [][]int {
	out := make([][]int, NumParts(part))
	for v, p := range part {
		out[p] = append(out[p], v)
	}
	return out
}
