package graph

import (
	"fmt"
	"slices"
)

// PartitionOptions bounds the clusters produced by Partition.
//
// The paper's L1 clustering uses MinSize = 4 (nodes) so that erasure-code
// groups can be distributed across at least four physical nodes inside every
// cluster, and relies on the cost function to keep clusters small enough that
// few processes restart after a failure.
type PartitionOptions struct {
	// MinSize is the minimum vertices per part (>=1).
	MinSize int
	// MaxSize caps vertices per part; 0 means unbounded.
	MaxSize int
	// TargetSize is the size the greedy growth aims for; if 0 it defaults
	// to MinSize (grow just enough, letting refinement enlarge clusters
	// only when it reduces the cut).
	TargetSize int
	// RefinePasses bounds the Kernighan–Lin style refinement sweeps;
	// if 0 a default of 8 is used.
	RefinePasses int

	// Multilevel enables the coarsen/partition/uncoarsen pipeline:
	// heavy-edge matching collapses the graph level by level until it has
	// at most CoarsenThreshold vertices, the coarsest graph is partitioned
	// with the greedy growth, and the assignment is projected back up with
	// the incremental-gain refinement run at every level. The matching
	// rounds parallelize over the frozen CSR; results are identical at any
	// worker count. Off, or on a graph with at most CoarsenThreshold
	// vertices, Partition produces exactly the single-level result.
	Multilevel bool
	// CoarsenThreshold stops coarsening once the graph has at most this
	// many vertices; 0 means 128.
	CoarsenThreshold int
	// MatchingRounds bounds the handshake rounds of each heavy-edge
	// matching; 0 means 4.
	MatchingRounds int
	// Workers bounds the matching worker pool (0 = GOMAXPROCS). The
	// assignment never depends on it.
	Workers int
}

func (o *PartitionOptions) normalize(n int) error {
	if o.MinSize <= 0 {
		o.MinSize = 1
	}
	if o.TargetSize == 0 {
		o.TargetSize = o.MinSize
	}
	if o.TargetSize < o.MinSize {
		return fmt.Errorf("graph: TargetSize %d below MinSize %d", o.TargetSize, o.MinSize)
	}
	if o.MaxSize != 0 && o.MaxSize < o.TargetSize {
		return fmt.Errorf("graph: MaxSize %d below TargetSize %d", o.MaxSize, o.TargetSize)
	}
	if o.MinSize > n && n > 0 {
		return fmt.Errorf("graph: MinSize %d exceeds vertex count %d", o.MinSize, n)
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 8
	}
	if o.CoarsenThreshold <= 0 {
		o.CoarsenThreshold = 128
	}
	if o.MatchingRounds <= 0 {
		o.MatchingRounds = 4
	}
	return nil
}

// vweight returns the weight of vertex v under vw; nil means unit weights
// (the single-level path and the finest multilevel level).
func vweight(vw []int, v int) int {
	if vw == nil {
		return 1
	}
	return vw[v]
}

// Partition splits g into clusters of bounded size while minimizing the
// weight of cut edges (the message-logging volume). It implements the
// strategy of the paper's reference [24]: greedy region growing seeded at
// high-traffic vertices, followed by boundary refinement that moves vertices
// between clusters whenever that lowers the cut without violating the size
// bounds. With Multilevel set (and a graph above CoarsenThreshold) the
// growth runs on a heavy-edge-coarsened graph instead and the refinement
// repeats at every level on the way back up — the same contract, better
// cuts, and parallel matching on large graphs. It returns part[v] = cluster
// id, with ids dense in 0..K-1.
func Partition(g *Graph, opts PartitionOptions) ([]int, error) {
	n := g.N()
	if err := opts.normalize(n); err != nil {
		return nil, err
	}
	if n == 0 {
		return []int{}, nil
	}
	g.ensure()
	if opts.Multilevel && n > opts.CoarsenThreshold {
		return multilevelPartition(g, opts)
	}
	return singleLevel(g, opts, nil), nil
}

// singleLevel is the growth → merge → refine pipeline on one graph, with
// cluster sizes measured in vertex weight (vw nil = unit weights, the
// original single-level behavior; multilevel coarse graphs pass the number
// of original vertices inside each coarse vertex).
func singleLevel(g *Graph, opts PartitionOptions, vw []int) []int {
	part, sizes := grow(g, opts, vw)
	if vw == nil {
		part, sizes = mergeSmall(g, part, sizes, opts)
	} else {
		// Weighted growth can leave many undersized clusters (matching
		// leftovers); the indexed merge handles thousands of them without
		// mergeSmall's per-merge full-graph scans.
		part, sizes = mergeSmallWeighted(g, part, sizes, opts)
	}
	refine(g, part, sizes, opts, vw)
	return compact(part)
}

// grow performs greedy region growing seeded at high-strength vertices,
// returning the raw (non-compacted) assignment and per-id sizes in weight
// units.
func grow(g *Graph, opts PartitionOptions, vw []int) ([]int, []int) {
	n := g.N()
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}

	// Seeds in decreasing strength order: heavy communicators first, so the
	// densest neighborhoods are kept together. The index tie-break makes
	// the order total, so any sort algorithm produces the same seeds; the
	// generic sort avoids sort.Slice's reflection swaps, which dominated
	// grow on 100k-vertex graphs.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		sa, sb := g.strength[a], g.strength[b]
		if sa != sb {
			if sa > sb {
				return -1
			}
			return 1
		}
		return a - b
	})

	next := 0
	sizes := []int{}
	// fallback scans order for any unassigned vertex; assignments only grow,
	// so a monotonic cursor keeps the total fallback cost O(n).
	fallbackCursor := 0
	for _, seed := range order {
		if part[seed] != -1 {
			continue
		}
		id := next
		next++
		part[seed] = id
		size := vweight(vw, seed)
		if size >= opts.TargetSize {
			// Already at target (a saturated multilevel coarse vertex):
			// skip the frontier bookkeeping entirely.
			sizes = append(sizes, size)
			continue
		}
		// conn[v] = weight connecting unassigned v to the growing cluster.
		conn := map[int]float64{}
		seedCols, seedWs := g.row(seed)
		for i, c := range seedCols {
			if part[c] == -1 {
				conn[int(c)] += seedWs[i]
			}
		}
		for size < opts.TargetSize {
			best, bestW := -1, -1.0
			for v, w := range conn {
				if opts.MaxSize != 0 && size+vweight(vw, v) > opts.MaxSize {
					continue // weighted vertex would burst the hard cap
				}
				if w > bestW || (w == bestW && (best == -1 || v < best)) {
					best, bestW = v, w
				}
			}
			if best == -1 {
				if vw != nil {
					// Weighted (multilevel) growth: no unassigned neighbor
					// is available or fits. Pulling a distant vertex here
					// would fabricate a non-contiguous cluster; stopping
					// leaves any undersized cluster to mergeSmall, which
					// folds it into its most-connected — adjacent —
					// neighbor instead.
					break
				}
				// Disconnected from every unassigned vertex: pull in the
				// strongest remaining vertex so every cluster reaches the
				// target (reliability requires the minimum size even for
				// isolated vertices).
				for fallbackCursor < n {
					if part[order[fallbackCursor]] == -1 {
						best = order[fallbackCursor]
						break
					}
					fallbackCursor++
				}
				if best == -1 {
					break // nothing left anywhere
				}
			}
			part[best] = id
			delete(conn, best)
			size += vweight(vw, best)
			cols, ws := g.row(best)
			for i, c := range cols {
				if part[c] == -1 {
					conn[int(c)] += ws[i]
				}
			}
		}
		sizes = append(sizes, size)
	}
	return part, sizes
}

// mergeSmall folds every cluster below MinSize into the neighboring cluster
// it communicates with most. If every candidate would exceed MaxSize the
// bound is relaxed for that merge: the paper treats MinSize (reliability) as
// the hard constraint and MaxSize (restart cost) as the soft one.
func mergeSmall(g *Graph, part []int, sizes []int, opts PartitionOptions) ([]int, []int) {
	for {
		small := -1
		for id, s := range sizes {
			if s > 0 && s < opts.MinSize {
				small = id
				break
			}
		}
		if small == -1 {
			return part, sizes
		}
		if len(activeClusters(sizes)) == 1 {
			return part, sizes // nothing to merge with
		}
		// Connection weight from the small cluster to each other cluster.
		conn := map[int]float64{}
		for v := range part {
			if part[v] != small {
				continue
			}
			cols, ws := g.row(v)
			for i, c := range cols {
				if part[c] != small {
					conn[part[c]] += ws[i]
				}
			}
		}
		target := -1
		bestW := -1.0
		for id, w := range conn {
			fits := opts.MaxSize == 0 || sizes[id]+sizes[small] <= opts.MaxSize
			if fits && (w > bestW || (w == bestW && (target == -1 || id < target))) {
				target, bestW = id, w
			}
		}
		if target == -1 { // no fitting neighbor: relax MaxSize, then fall
			for id, w := range conn { // back to smallest cluster overall
				if w > bestW || (w == bestW && (target == -1 || id < target)) {
					target, bestW = id, w
				}
			}
		}
		if target == -1 {
			for id, s := range sizes {
				if id != small && s > 0 && (target == -1 || s < sizes[target]) {
					target = id
				}
			}
		}
		if target == -1 {
			return part, sizes
		}
		for v := range part {
			if part[v] == small {
				part[v] = target
			}
		}
		sizes[target] += sizes[small]
		sizes[small] = 0
	}
}

func activeClusters(sizes []int) []int {
	var out []int
	for id, s := range sizes {
		if s > 0 {
			out = append(out, id)
		}
	}
	return out
}

// refine performs boundary-move passes: each vertex may move to the
// neighboring cluster it communicates with most if the move strictly lowers
// the cut and keeps both clusters within the size bounds.
//
// The per-vertex connection weights (vertex → adjacent cluster → weight) are
// built once in O(E) and then maintained incrementally: moving v from
// cluster a to cluster b only touches the cached entries of v's neighbors.
// The cache lives in flat arrays spanned by the CSR row pointers — a vertex
// touches at most deg(v) distinct clusters, so its row span always has room
// — because one map per vertex (the previous layout) cost more to build
// than the moves it served on 100k-vertex graphs, and the multilevel path
// rebuilds the cache at every level.
//
// Sizes are in weight units: moving v shifts vweight(vw, v), and the size
// bounds hold in the same units (unit weights reproduce the historical
// vertex-count behavior exactly).
func refine(g *Graph, part []int, sizes []int, opts PartitionOptions, vw []int) {
	n := g.N()
	// connID/connW/connCnt[rowptr[v]:rowptr[v]+connLen[v]] = (cluster,
	// weight, contributing neighbors) entries of v, unordered; lookups scan
	// the span. An entry lives exactly while some neighbor contributes to
	// it, so occupancy never exceeds deg(v) — the span always has room.
	// With exact weight arithmetic (integer-valued byte counts, every graph
	// this repository builds) the cached weights equal the historical
	// per-vertex map cache exactly.
	nnz := g.rowptr[n]
	connID := make([]int32, nnz)
	connW := make([]float64, nnz)
	connCnt := make([]int32, nnz)
	connLen := make([]int32, n)
	find := func(v int, id int) int {
		lo := g.rowptr[v]
		span := connID[lo : lo+int64(connLen[v])]
		for i := range span {
			if span[i] == int32(id) {
				return int(lo) + i
			}
		}
		return -1
	}
	add := func(v int, id int, w float64) {
		if i := find(v, id); i >= 0 {
			connW[i] += w
			connCnt[i]++
			return
		}
		pos := g.rowptr[v] + int64(connLen[v])
		connID[pos], connW[pos], connCnt[pos] = int32(id), w, 1
		connLen[v]++
	}
	// sub removes one neighbor's weight from v's cluster-id entry, dropping
	// the entry with its last contributor.
	sub := func(v int, id int, w float64) {
		i := find(v, id)
		if i < 0 {
			return
		}
		connW[i] -= w
		connCnt[i]--
		if connCnt[i] == 0 {
			last := g.rowptr[v] + int64(connLen[v]) - 1
			connID[i], connW[i], connCnt[i] = connID[last], connW[last], connCnt[last]
			connLen[v]--
		}
	}
	for v := 0; v < n; v++ {
		cols, ws := g.row(v)
		for i, c := range cols {
			if int(c) != v {
				add(v, part[c], ws[i])
			}
		}
	}
	for pass := 0; pass < opts.RefinePasses; pass++ {
		moved := false
		for v := 0; v < n; v++ {
			from := part[v]
			wv := vweight(vw, v)
			if sizes[from]-wv < opts.MinSize {
				continue // removing v would break the reliability bound
			}
			var own float64
			if i := find(v, from); i >= 0 {
				own = connW[i]
			}
			bestTo, bestW := -1, own
			lo := g.rowptr[v]
			for i := int64(0); i < int64(connLen[v]); i++ {
				id, w := int(connID[lo+i]), connW[lo+i]
				if id == from {
					continue
				}
				if opts.MaxSize != 0 && sizes[id]+wv > opts.MaxSize {
					continue
				}
				if w > bestW || (w == bestW && bestTo != -1 && id < bestTo) {
					bestTo, bestW = id, w
				}
			}
			if bestTo != -1 && bestW > own {
				part[v] = bestTo
				sizes[from] -= wv
				sizes[bestTo] += wv
				moved = true
				// Incremental update: every neighbor of v sees v's weight
				// shift from cluster `from` to `bestTo`.
				cols, ws := g.row(v)
				for i, c := range cols {
					u := int(c)
					if u == v {
						continue
					}
					sub(u, from, ws[i])
					add(u, bestTo, ws[i])
				}
			}
		}
		if !moved {
			return
		}
	}
}

// compact renumbers cluster ids densely in order of first appearance. Raw
// ids are bounded by the grown-cluster count (≤ the vertex count), so the
// remap is a flat table rather than a hash map.
func compact(part []int) []int {
	max := -1
	for _, p := range part {
		if p > max {
			max = p
		}
	}
	remap := make([]int, max+1)
	for i := range remap {
		remap[i] = -1
	}
	out := make([]int, len(part))
	next := 0
	for i, p := range part {
		if remap[p] == -1 {
			remap[p] = next
			next++
		}
		out[i] = remap[p]
	}
	return out
}

// NumParts returns the number of distinct parts in a dense assignment.
func NumParts(part []int) int {
	max := -1
	for _, p := range part {
		if p > max {
			max = p
		}
	}
	return max + 1
}

// PartSizes returns the size of each part of a dense assignment.
func PartSizes(part []int) []int {
	sizes := make([]int, NumParts(part))
	for _, p := range part {
		sizes[p]++
	}
	return sizes
}

// Members returns, for each part id, the sorted vertices assigned to it.
func Members(part []int) [][]int {
	out := make([][]int, NumParts(part))
	for v, p := range part {
		out[p] = append(out[p], v)
	}
	return out
}
