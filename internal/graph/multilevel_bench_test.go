package graph

import (
	"testing"
)

// Phase benchmarks for the multilevel serial pipeline on the 131,072-node
// stencil of BenchmarkPartition100k (the node-graph shape of a 2M-rank
// machine). They exist so serial-gap work can see where a millisecond goes
// without reconstructing pprof sessions; the package-external benchmarks in
// the repository root remain the gated numbers.

func benchGraph() *Graph {
	g := stencil2D(131072, 256)
	g.ensure()
	return g
}

func benchOpts() PartitionOptions {
	opts := PartitionOptions{MinSize: 4, TargetSize: 4, Multilevel: true, Workers: 1}
	_ = opts.normalize(131072)
	return opts
}

func BenchmarkPhaseMatching(b *testing.B) {
	g := benchGraph()
	opts := benchOpts()
	ar := newPartArena(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heavyEdgeMatching(g, nil, opts, ar)
	}
}

func BenchmarkPhaseContract(b *testing.B) {
	g := benchGraph()
	opts := benchOpts()
	ar := newPartArena(g)
	match, matched := heavyEdgeMatching(g, nil, opts, ar)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar.reset()
		if _, _, _, err := contract(g, nil, match, matched, opts, ar); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhaseRefineFinest(b *testing.B) {
	g := benchGraph()
	opts := benchOpts()
	ar := newPartArena(g)
	part, err := Partition(g, PartitionOptions{MinSize: 4, TargetSize: 4, Multilevel: true, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	sizes := weightedSizesInto(ar.sizesBuf, part, nil)
	buf := make([]int, len(part))
	szbuf := make([]int, len(sizes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, part)
		copy(szbuf, sizes)
		refine(g, buf, szbuf, opts, nil, ar)
	}
}

func BenchmarkPhaseGrowCoarsest(b *testing.B) {
	// Approximate the coarsest graph by contracting twice.
	g := benchGraph()
	opts := benchOpts()
	ar := newPartArena(g)
	var vw []int
	for level := 0; level < 2; level++ {
		match, matched := heavyEdgeMatching(g, vw, opts, ar)
		coarse, _, cvw, err := contract(g, vw, match, matched, opts, ar)
		if err != nil {
			b.Fatal(err)
		}
		g, vw = coarse, cvw
	}
	b.Logf("coarsest: %d vertices, %d entries", g.N(), g.rowptr[g.N()])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grow(g, opts, vw, ar)
	}
}
