package graph

import (
	"math/rand"
	"runtime"
	"testing"
)

// The speculative parallel refinement must commit exactly the serial
// sweep's moves in the serial sweep's order, no matter how its scan chunks
// interleave. These tests pin that at GOMAXPROCS=2 — the smallest setting
// where the worker cap (effectiveWorkers never exceeds GOMAXPROCS) still
// lets the speculative path engage, and on a one-CPU host the most
// adversarial: both P's time-slice one core, so every handoff is a forced
// preemption point — across worker counts 1, 2, and 8 (8 exercising the
// cap), on graphs large enough to clear refineParallelMin.

// refineWithWorkers runs refine on a fresh copy of part/sizes.
func refineWithWorkers(g *Graph, part, sizes []int, opts PartitionOptions, vw []int, workers int) []int {
	cp := append([]int(nil), part...)
	cs := append([]int(nil), sizes...)
	opts.Workers = workers
	ar := newPartArena(g)
	defer ar.release()
	refine(g, cp, cs, opts, vw, ar)
	return cp
}

func TestRefineParallelWorkerInvariance(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"stencil8192", stencil2D(8192, 128)},
		{"randomWeighted6k", randomWeightedGraph(3, 6000)},
		{"randomInt5k", randomIntGraph(9, 5000)},
	}
	for _, tc := range graphs {
		g := tc.g
		g.ensure()
		if g.N() < refineParallelMin {
			t.Fatalf("%s: graph below refineParallelMin, test would not exercise speculation", tc.name)
		}
		opts := PartitionOptions{MinSize: 4, TargetSize: 4, Workers: 1}
		if err := opts.normalize(g.N()); err != nil {
			t.Fatal(err)
		}
		// A deliberately unconverged starting partition (round-robin
		// blocks) forces many moves, exercising the staleness
		// re-decide path, not just the all-fresh fast path.
		part := make([]int, g.N())
		for v := range part {
			part[v] = v / 4
		}
		sizes := weightedSizesInto(make([]int, g.N()), part, nil)
		ref := refineWithWorkers(g, part, sizes, opts, nil, 1)
		for _, workers := range []int{2, 8} {
			got := refineWithWorkers(g, part, sizes, opts, nil, workers)
			for v := range ref {
				if got[v] != ref[v] {
					t.Fatalf("%s: workers=%d vertex %d in cluster %d, serial %d",
						tc.name, workers, v, got[v], ref[v])
				}
			}
		}
		// Same invariance with a MaxSize cap, which switches the
		// staleness check to the span-scanning form.
		optsCap := PartitionOptions{MinSize: 2, TargetSize: 4, MaxSize: 6, Workers: 1}
		if err := optsCap.normalize(g.N()); err != nil {
			t.Fatal(err)
		}
		refCap := refineWithWorkers(g, part, sizes, optsCap, nil, 1)
		for _, workers := range []int{2, 8} {
			got := refineWithWorkers(g, part, sizes, optsCap, nil, workers)
			for v := range refCap {
				if got[v] != refCap[v] {
					t.Fatalf("%s: MaxSize workers=%d vertex %d in cluster %d, serial %d",
						tc.name, workers, v, got[v], refCap[v])
				}
			}
		}
	}
}

// End-to-end at GOMAXPROCS=2: the full multilevel partition is bit-identical
// at 1, 2, and 8 workers even when every parallel phase is forced to
// interleave on (at most) two P's sharing one core.
func TestMultilevelWorkerInvarianceSingleCore(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	g := stencil2D(16384, 128)
	rng := rand.New(rand.NewSource(4))
	// Perturb some weights so refinement has real decisions to make.
	for i := 0; i < 2000; i++ {
		u := rng.Intn(16384 - 1)
		_ = g.AddEdge(u, u+1, float64(rng.Intn(500)))
	}
	var ref []int
	for _, workers := range []int{1, 2, 8} {
		part, err := Partition(g, PartitionOptions{
			MinSize: 4, TargetSize: 4, Multilevel: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = part
			continue
		}
		for v := range ref {
			if part[v] != ref[v] {
				t.Fatalf("workers=%d: vertex %d assigned %d, want %d", workers, v, part[v], ref[v])
			}
		}
	}
}
