package graph

import "sync"

// The partition arena: every scratch buffer the partitioning pipeline needs,
// sized once from the finest-level graph and resliced for each coarser level.
// Before the arena, the multilevel path re-allocated its matching slots,
// contraction staging rows, refinement gain caches, and per-seed frontier
// maps at every level of the ladder — the dominant allocation sites of the
// partition profile. Arenas are recycled through a sync.Pool across
// Partition calls (the scaling pipeline partitions node graphs of one shape
// over and over), so steady state allocates nothing but the returned
// assignment and the per-level coarse CSR carvings; the public API stays
// stateless.
//
// Buffers are carved from a handful of typed slabs (one allocation each)
// rather than allocated individually. A few pairs share backing memory
// across phases that can never overlap in time; those aliases are spelled
// out at the field definitions.

// partArena holds the scratch state of one Partition call.
type partArena struct {
	n0   int   // per-vertex buffer capacity (finest level of the sizing graph)
	nnz0 int64 // per-edge buffer capacity

	// --- matching (per level; reused, the level is never wider than n0) ---
	match  []int32 // matched partner per vertex, -1 when single
	cand   []int32 // proposer → chosen acceptor
	accept []int32 // acceptor → chosen proposer
	candW  []float64
	// state holds each vertex's per-round role in the low two bits
	// (0 acceptor, 1 proposer, 2 matched, 3 never-matchable) and, on
	// weighted levels with a six-bit-sized cap, its weight above them.
	state []uint8
	work  []int32 // unmatched-vertex worklist (ping)
	work2 []int32 // unmatched-vertex worklist (pong)
	// workP/workA are the serial rounds' segregated proposer/acceptor
	// lists (ping; work/work2 serve as their pong buffers there).
	workP []int32
	workA []int32
	// acceptRound stamps accept[v] entries with the round that wrote them,
	// so the fused serial rounds never pay a reset pass. The counter never
	// rewinds within an arena lifetime (see reset).
	acceptRound []int32
	matchRound  int32

	// --- contraction (after matching within a level; mem1/mem2/cnt are
	// distinct from the matching buffers because match must stay live) ---
	mem1, mem2 []int32 // constituent fine vertices per coarse vertex
	cnt        []int32 // coalesced row lengths
	capPtr     []int64 // capacity-row prefix sums

	// --- greedy growth (coarsest graph / single level) ---
	order     []int    // seed order
	orderB    []int    // radix-sort ping-pong
	keysA     []uint64 // radix-sort keys
	keysB     []uint64
	growPart  []int     // raw assignment under construction
	growSizes []int     // per-cluster weights (append-grown, capacity n0)
	growW     []float64 // epoch-stamped frontier connection weights
	growStamp []int32
	growEpoch int32
	growList  []int32 // current seed's frontier members

	// --- small-cluster merge (weighted path) ---
	head, tail []int32 // cluster member lists
	next       []int32
	parent     []int32 // cluster union-find
	queue      []int32 // under-MinSize work queue (capacity 2·n0)
	mergeW     []float64
	mergeStamp []int32
	touched    []int32
	mergeEpoch int32

	// --- refinement ---
	connID  []int32   // aliases cooCol: contraction staging columns
	connW   []float64 // aliases cooW: contraction staging weights
	connCnt []int32
	connLen []int32
	desire  []int32 // speculative per-vertex move targets
	// nbrTouch/clusterTouch are move stamps recording when a vertex's gain
	// span or a cluster's size last changed; lastEval records when a vertex
	// last evaluated to "no move". Together they let converged sweeps skip
	// re-deciding vertices whose inputs cannot have changed.
	nbrTouch     []int32
	clusterTouch []int32
	lastEval     []int32

	// ref is the refinement's method receiver (see refineState): keeping it
	// inside the arena means the per-level refinements share one heap object
	// instead of allocating a closure environment per level.
	ref refineState

	// --- projection ---
	projA, projB []int // ping-pong assignment buffers
	sizesBuf     []int // per-level cluster weights

	// --- per-level persistent carving ---
	ints slab[int]     // coarse vertex weights
	i64s slab[int64]   // coarse rowptr
	i32s slab[int32]   // cmap + coarse columns
	f64s slab[float64] // coarse weights + strengths
}

// slab carves exact-size slices from a chunked backing buffer, so the
// hierarchy's persistent per-level arrays (which must all stay live through
// projection and therefore cannot share one reusable buffer) still cost
// O(1) allocations instead of O(levels × arrays). Resetting rewinds the
// offset: the previous Partition call's carvings are dead by then.
type slab[T any] struct {
	full  []T
	off   int
	chunk int
}

func (s *slab[T]) take(k int) []T {
	if s.off+k > len(s.full) {
		n := s.chunk
		if n < k {
			n = k
		}
		// Carvings from the replaced buffer stay alive through their own
		// references; only future takes use the new one.
		s.full = make([]T, n)
		s.off = 0
	}
	out := s.full[s.off : s.off+k : s.off+k]
	s.off += k
	return out
}

var arenaPool sync.Pool

// newPartArena returns an arena big enough for g (which must be frozen),
// reusing a pooled one when it fits. Callers hand it back with release.
func newPartArena(g *Graph) *partArena {
	n := g.N()
	nnz := g.rowptr[n]
	if v := arenaPool.Get(); v != nil {
		ar := v.(*partArena)
		if ar.n0 >= n && int64(ar.nnz0) >= nnz {
			ar.reset()
			return ar
		}
		// Too small for this graph; drop it and size a fresh one.
	}
	return buildArena(n, nnz)
}

// release recycles the arena. Nothing returned by Partition aliases arena
// memory (assignments are compacted into fresh slices), so the next call
// may reuse everything.
func (ar *partArena) release() { arenaPool.Put(ar) }

// reset prepares a pooled arena for its next Partition call. Epoch-stamped
// buffers need no clearing — epochs increase monotonically across calls, so
// stale stamps can never collide — until an epoch counter nears overflow,
// when the stamps are wiped and the counter rewinds.
func (ar *partArena) reset() {
	ar.ints.off = 0
	ar.i64s.off = 0
	ar.i32s.off = 0
	ar.f64s.off = 0
	const epochLimit = 1 << 30
	if ar.growEpoch > epochLimit {
		clear(ar.growStamp)
		ar.growEpoch = 0
	}
	if ar.mergeEpoch > epochLimit {
		clear(ar.mergeStamp)
		ar.mergeEpoch = 0
	}
	if ar.matchRound > epochLimit {
		clear(ar.acceptRound)
		ar.matchRound = 0
	}
}

func buildArena(n int, nnz int64) *partArena {
	ar := &partArena{n0: n, nnz0: nnz}

	i32 := make([]int32, 26*n)
	grab32 := func() []int32 { s := i32[:n:n]; i32 = i32[n:]; return s }
	ar.match = grab32()
	ar.cand = grab32()
	ar.accept = grab32()
	ar.work = grab32()
	ar.work2 = grab32()
	ar.workP = grab32()
	ar.workA = grab32()
	ar.mem1 = grab32()
	ar.mem2 = grab32()
	ar.cnt = grab32()
	ar.growStamp = grab32()
	ar.head = grab32()
	ar.tail = grab32()
	ar.next = grab32()
	ar.parent = grab32()
	ar.mergeStamp = grab32()
	ar.touched = grab32()[:0]
	ar.connLen = grab32()
	ar.desire = grab32()
	ar.nbrTouch = grab32()
	ar.clusterTouch = grab32()
	ar.lastEval = grab32()
	ar.acceptRound = grab32()
	ar.growList = grab32()[:0]
	ar.queue = i32[: 0 : 2*n] // bounded by initial smalls + one re-queue per merge

	f64 := make([]float64, 3*n)
	ar.candW, ar.growW, ar.mergeW = f64[:n:n], f64[n:2*n:2*n], f64[2*n:]

	ints := make([]int, 7*n)
	ar.order, ar.orderB = ints[:n:n], ints[n:2*n:2*n]
	ar.growPart = ints[2*n : 3*n : 3*n]
	ar.growSizes = ints[3*n : 3*n : 4*n]
	ar.projA, ar.projB = ints[4*n:5*n:5*n], ints[5*n:6*n:6*n]
	ar.sizesBuf = ints[6*n:]

	keys := make([]uint64, 2*n)
	ar.keysA, ar.keysB = keys[:n:n], keys[n:]

	nnzI32 := make([]int32, 2*nnz)
	ar.connID, ar.connCnt = nnzI32[:nnz:nnz], nnzI32[nnz:]
	ar.connW = make([]float64, nnz)
	ar.state = make([]uint8, n)
	ar.capPtr = make([]int64, n+1)

	// Persistent per-level arrays shrink by at least 10% per level (the
	// coarsening stall bound), so chunks sized from the finest level
	// amortize the whole ladder into a few allocations.
	ar.ints.chunk = 2 * n
	ar.i64s.chunk = n + 1
	ar.i32s.chunk = int(nnz) + 2*n
	ar.f64s.chunk = int(nnz) + n
	return ar
}

// cooCol/cooW are the contraction staging buffers. They share memory with
// the refinement gain cache: every contraction of the ladder completes
// before the first refinement runs, and the single-level path never
// contracts at all.
func (ar *partArena) cooCol(n int64) []int32 { return ar.connID[:n] }
func (ar *partArena) cooW(n int64) []float64 { return ar.connW[:n] }
