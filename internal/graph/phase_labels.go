package graph

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
)

// Phase labels attribute partition CPU time to pipeline phases
// (match/contract/grow/refine, tagged with the multilevel level) in pprof
// profiles, so a -cpuprofile run answers "which phase, which level" without
// guessing from symbols. Labels are applied as goroutine labels — worker
// goroutines spawned inside a phase inherit them — and every call allocates,
// so they are off by default and toggled only by profiling entry points
// (hcrun -cpuprofile); the hot path pays one atomic load per phase
// transition and zero allocations.

var phaseLabelsOn atomic.Bool

// SetPhaseLabels toggles runtime/pprof phase labels on the partition
// pipeline. Enable it together with CPU profiling; leave it off otherwise —
// each phase transition allocates while labels are on.
func SetPhaseLabels(on bool) { phaseLabelsOn.Store(on) }

// setPhase labels the calling goroutine (and workers it spawns) with
// phase=name level=<level> until the next setPhase or clearPhase.
func setPhase(name string, level int) {
	if !phaseLabelsOn.Load() {
		return
	}
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("phase", name, "level", strconv.Itoa(level))))
}

// clearPhase removes the phase labels from the calling goroutine.
func clearPhase() {
	if !phaseLabelsOn.Load() {
		return
	}
	pprof.SetGoroutineLabels(context.Background())
}
