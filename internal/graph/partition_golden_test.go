package graph

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/partition_golden.json from the current implementation")

// goldenGraphs enumerates every partition test graph the package exercises,
// including float-weighted random graphs whose refinement gains are only
// bit-identical when every floating-point accumulation happens in the exact
// historical order. The golden file pins the assignment of each one, for
// both the single-level and the multilevel path, so performance work on the
// partitioner can never silently change an output bit.
func goldenGraphs() []struct {
	name string
	g    *Graph
	opts PartitionOptions
} {
	cases := []struct {
		name string
		g    *Graph
		opts PartitionOptions
	}{
		{"path16", path(16, 1), PartitionOptions{MinSize: 4, TargetSize: 4, MaxSize: 4}},
		{"ring10", ring(10, 1), PartitionOptions{MinSize: 3}},
		{"ring4", ring(4, 1), PartitionOptions{MinSize: 4, TargetSize: 4}},
		{"ring1024", ring(1024, 1000), PartitionOptions{MinSize: 4, TargetSize: 4}},
		{"stencil4096", stencil2D(4096, 64), PartitionOptions{MinSize: 4, TargetSize: 4}},
		{"stencil16384", stencil2D(16384, 128), PartitionOptions{MinSize: 4, TargetSize: 4}},
		{"stencil16384-t16", stencil2D(16384, 128), PartitionOptions{MinSize: 4, TargetSize: 16}},
		{"stencil8192", stencil2D(8192, 128), PartitionOptions{MinSize: 4, TargetSize: 4}},
	}
	// The community graph of TestPartitionImprovesOverRandom.
	rng := rand.New(rand.NewSource(7))
	const k, groups = 8, 6
	comm := New(k * groups)
	for grp := 0; grp < groups; grp++ {
		base := grp * k
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				if rng.Float64() < 0.8 {
					_ = comm.AddEdge(base+a, base+b, 1+rng.Float64())
				}
			}
		}
	}
	for i := 0; i < 40; i++ {
		u, v := rng.Intn(k*groups), rng.Intn(k*groups)
		if u/k != v/k {
			_ = comm.AddEdge(u, v, 0.2)
		}
	}
	cases = append(cases, struct {
		name string
		g    *Graph
		opts PartitionOptions
	}{"community48", comm, PartitionOptions{MinSize: k, TargetSize: k, MaxSize: k}})
	for seed := int64(1); seed <= 3; seed++ {
		cases = append(cases, struct {
			name string
			g    *Graph
			opts PartitionOptions
		}{fmt.Sprintf("random2048-s%d", seed), randomIntGraph(seed, 2048), PartitionOptions{MinSize: 4, TargetSize: 4}})
	}
	// Float-weighted random graphs: weights with non-terminating binary
	// expansions make any reordering of additions visible.
	for seed := int64(10); seed <= 12; seed++ {
		frng := rand.New(rand.NewSource(seed))
		n := 1500
		fg := New(n)
		for i := 0; i+1 < n; i++ {
			_ = fg.AddEdge(i, i+1, 0.1+frng.Float64()*99)
		}
		for i := 0; i < 3*n; i++ {
			u, v := frng.Intn(n), frng.Intn(n)
			if u != v {
				_ = fg.AddEdge(u, v, 0.1+frng.Float64()*49)
			}
		}
		cases = append(cases, struct {
			name string
			g    *Graph
			opts PartitionOptions
		}{fmt.Sprintf("randfloat1500-s%d", seed), fg, PartitionOptions{MinSize: 4, TargetSize: 4}})
	}
	// A tiny coarsen threshold forces a deep ladder even at modest size.
	cases = append(cases, struct {
		name string
		g    *Graph
		opts PartitionOptions
	}{"random2048-deep", randomIntGraph(9, 2048), PartitionOptions{MinSize: 4, TargetSize: 4, CoarsenThreshold: 16}})
	return cases
}

// hashAssignment folds a dense assignment into a stable 64-bit fingerprint.
func hashAssignment(part []int) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range part {
		v := uint64(p)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestPartitionGolden pins the exact assignment of both partitioner paths on
// every test graph, at several worker counts. Any change to a recorded hash
// means an output bit changed — which this repository treats as a breaking
// change for the partitioner, since evaluations are compared byte-for-byte.
// Regenerate deliberately with: go test ./internal/graph -run Golden -update
func TestPartitionGolden(t *testing.T) {
	// Raise GOMAXPROCS so the worker counts stay distinct under the
	// effectiveWorkers cap and the parallel phases run on one-core hosts.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	goldenPath := filepath.Join("testdata", "partition_golden.json")
	got := map[string]string{}
	for _, tc := range goldenGraphs() {
		single, err := Partition(tc.g, tc.opts)
		if err != nil {
			t.Fatalf("%s: single-level: %v", tc.name, err)
		}
		got[tc.name+"/single"] = hashAssignment(single)
		for _, workers := range []int{1, 2, 8} {
			mlOpts := tc.opts
			mlOpts.Multilevel = true
			mlOpts.Workers = workers
			multi, err := Partition(tc.g, mlOpts)
			if err != nil {
				t.Fatalf("%s: multilevel workers=%d: %v", tc.name, workers, err)
			}
			got[fmt.Sprintf("%s/multilevel/w%d", tc.name, workers)] = hashAssignment(multi)
		}
	}
	// All worker counts must agree before we even consult the golden file.
	for _, tc := range goldenGraphs() {
		ref := got[tc.name+"/multilevel/w1"]
		for _, workers := range []int{2, 8} {
			key := fmt.Sprintf("%s/multilevel/w%d", tc.name, workers)
			if got[key] != ref {
				t.Errorf("%s: workers=%d hash %s != workers=1 hash %s", tc.name, workers, got[key], ref)
			}
		}
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", goldenPath, len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] == "" {
			t.Errorf("golden entry %s no longer produced", k)
			continue
		}
		if got[k] != want[k] {
			t.Errorf("%s: assignment hash %s, golden %s (output bit changed)", k, got[k], want[k])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("case %s missing from golden file (regenerate with -update)", k)
		}
	}
}
