// Package erasure implements the erasure codes the paper layers under its
// multi-level checkpointing: bit-wise XOR parity and Reed–Solomon coding
// over GF(2^8), plus the group encoder that runs them in parallel across an
// encoding cluster (the L2 clusters of the hierarchical scheme).
//
// The Reed–Solomon code is systematic: an encoding group of k checkpoint
// blocks produces m parity blocks such that any k of the k+m blocks
// reconstruct the originals. Encoding cost grows linearly with k, which is
// the empirical law behind the paper's Figure 3b and Table II encode times
// (51 s, 102 s, 204 s per GB at k = 8, 16, 32).
package erasure

import "fmt"

// gf256 uses the AES polynomial x^8+x^4+x^3+x+1 (0x11b) with generator 3.
const gfPoly = 0x11b

var (
	gfExp [512]byte // gfExp[i] = 3^i, doubled to skip mod 255 in mul
	gfLog [256]byte // gfLog[gfExp[i]] = i
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		// x *= 3 in GF(2^8): (x<<1 mod poly) ^ x
		x2 := x << 1
		if x2&0x100 != 0 {
			x2 ^= gfPoly
		}
		x = (x2 ^ x) & 0xff
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	initMulTable()
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv returns a/b. Division by zero panics: it indicates a broken decode
// matrix, which is a programming error, not an input error.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: GF(256) division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a.
func gfInv(a byte) byte {
	if a == 0 {
		panic("erasure: GF(256) inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// gfPow returns a^n.
func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (int(gfLog[a]) * n) % 255
	if l < 0 {
		l += 255
	}
	return gfExp[l]
}

// mulSlice computes dst[i] ^= c*src[i] for all i; the inner loop of every
// Reed–Solomon encode and decode. dst and src must have equal length.
// c == 1 takes the 64-bit-word XOR fast path; other coefficients use the
// precomputed 256-entry row of gfMulTable.
func mulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("erasure: mulSlice length mismatch %d != %d", len(src), len(dst)))
	}
	switch c {
	case 0:
		return
	case 1:
		xorWords(src, dst)
	default:
		// Byte-wise via the 8-bit table: mulSlice serves the small-row
		// matrix algebra; the bulk coding paths go through encodeRow,
		// whose plans carry the 16-bit double tables.
		tbl := mulRow(c)
		for i, s := range src {
			dst[i] ^= tbl[s]
		}
	}
}

// xorSlice computes dst[i] ^= src[i], 8 bytes at a time.
func xorSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("erasure: xorSlice length mismatch %d != %d", len(src), len(dst)))
	}
	xorWords(src, dst)
}
