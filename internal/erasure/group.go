package erasure

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// AlphaSecPerGBMember is the calibrated encoding cost constant derived from
// the paper's Table II: encoding 1 GB in a group of k members takes
// alpha·k seconds (204 s at k=32, 102 s at k=16, 51 s at k=8 — all equal to
// 6.375 s per GB per member; the hierarchical 25 s at k=4 matches within 2%).
const AlphaSecPerGBMember = 6.375

// ModelEncodeSeconds returns the modeled wall-clock seconds to erasure-code
// `bytes` of checkpoint data per process in a group of groupSize members,
// at the paper's calibration. This is the extrapolation used to report
// paper-scale (1 GB) encode times from MiB-scale runs.
func ModelEncodeSeconds(groupSize int, bytes int64) float64 {
	const gb = 1e9
	return AlphaSecPerGBMember * float64(groupSize) * float64(bytes) / gb
}

// GroupResult reports one group encode: the parity produced and the time it
// took, plus the modeled time at paper scale for the same group size.
type GroupResult struct {
	Parity    [][]byte
	Elapsed   time.Duration
	ModelTime time.Duration // ModelEncodeSeconds for the same shape
}

// GroupEncoder erasure-codes the checkpoint blocks of one encoding group
// (an L2 cluster) using Reed–Solomon, chunking the shards and encoding
// chunks concurrently the way FTI's per-node encoder processes do.
type GroupEncoder struct {
	rs        *RS
	chunkSize int
	workers   int
}

// NewGroupEncoder builds an encoder for groups of k data shards and m
// parity shards. chunkSize 0 defaults to 64 KiB; workers 0 defaults to
// GOMAXPROCS.
func NewGroupEncoder(k, m, chunkSize, workers int) (*GroupEncoder, error) {
	rs, err := NewRS(k, m)
	if err != nil {
		return nil, err
	}
	if chunkSize <= 0 {
		chunkSize = 64 << 10
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &GroupEncoder{rs: rs, chunkSize: chunkSize, workers: workers}, nil
}

// Encode produces parity for the group's data shards. All shards must have
// equal length. The returned GroupResult owns freshly allocated parity.
// Callers encoding repeatedly should prefer NewStream, which reuses parity
// buffers across calls.
func (ge *GroupEncoder) Encode(data [][]byte) (*GroupResult, error) {
	size, err := ge.checkData(data)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, ge.rs.m)
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	return ge.encodeTimed(data, parity, size)
}

// EncodeInto encodes into caller-provided parity buffers, allocating
// nothing: each parity slice must match the data shard length and is
// overwritten. Stream.Encode layers buffer ownership on top of this entry
// point; callers managing their own buffers use it directly.
func (ge *GroupEncoder) EncodeInto(data, parity [][]byte) (*GroupResult, error) {
	size, err := ge.checkData(data)
	if err != nil {
		return nil, err
	}
	if len(parity) != ge.rs.m {
		return nil, fmt.Errorf("erasure: got %d parity buffers, encoder built for %d", len(parity), ge.rs.m)
	}
	for i, p := range parity {
		if len(p) != size {
			return nil, fmt.Errorf("erasure: parity buffer %d size %d != shard size %d", i, len(p), size)
		}
	}
	return ge.encodeTimed(data, parity, size)
}

func (ge *GroupEncoder) checkData(data [][]byte) (int, error) {
	if len(data) != ge.rs.k {
		return 0, fmt.Errorf("erasure: group has %d shards, encoder built for %d", len(data), ge.rs.k)
	}
	size := 0
	if len(data) > 0 {
		size = len(data[0])
	}
	for i, d := range data {
		if len(d) != size {
			return 0, fmt.Errorf("erasure: shard %d size %d != %d", i, len(d), size)
		}
	}
	return size, nil
}

func (ge *GroupEncoder) encodeTimed(data, parity [][]byte, size int) (*GroupResult, error) {
	start := time.Now()
	if err := ge.encodeChunked(data, parity, size); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	return &GroupResult{
		Parity:    parity,
		Elapsed:   elapsed,
		ModelTime: time.Duration(ModelEncodeSeconds(ge.rs.k, int64(size)) * float64(time.Second)),
	}, nil
}

// Stream is a single-goroutine encoding session that owns its parity
// buffers, growing them on demand and reusing them across Encode calls.
// Results alias the internal buffers: they are valid until the next Encode.
type Stream struct {
	ge     *GroupEncoder
	parity [][]byte
}

// NewStream starts a buffer-reusing encode session. Streams are not safe
// for concurrent use; the encoder itself still chunks each encode across
// its worker pool.
func (ge *GroupEncoder) NewStream() *Stream {
	return &Stream{ge: ge, parity: make([][]byte, ge.rs.m)}
}

// Encode encodes one group, reusing the stream's parity buffers. The
// returned parity is overwritten by the next call.
func (s *Stream) Encode(data [][]byte) (*GroupResult, error) {
	size, err := s.ge.checkData(data)
	if err != nil {
		return nil, err
	}
	for i := range s.parity {
		if cap(s.parity[i]) < size {
			s.parity[i] = make([]byte, size)
		}
		s.parity[i] = s.parity[i][:size]
	}
	return s.ge.EncodeInto(data, s.parity)
}

func (ge *GroupEncoder) encodeChunked(data, parity [][]byte, size int) error {
	nchunks := (size + ge.chunkSize - 1) / ge.chunkSize
	if nchunks <= 1 || ge.workers == 1 {
		return ge.rs.Encode(data, parity)
	}
	type job struct{ lo, hi int }
	jobs := make(chan job, nchunks)
	for c := 0; c < nchunks; c++ {
		lo := c * ge.chunkSize
		hi := lo + ge.chunkSize
		if hi > size {
			hi = size
		}
		jobs <- job{lo, hi}
	}
	close(jobs)

	workers := ge.workers
	if workers > nchunks {
		workers = nchunks
	}
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dsub := make([][]byte, len(data))
			psub := make([][]byte, len(parity))
			for j := range jobs {
				for i, d := range data {
					dsub[i] = d[j.lo:j.hi]
				}
				for i, p := range parity {
					psub[i] = p[j.lo:j.hi]
				}
				if err := ge.rs.Encode(dsub, psub); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	return <-errc // nil if empty
}

// Reconstruct rebuilds the group after erasures; see RS.Reconstruct for the
// shard layout (k data then m parity, nil = lost).
func (ge *GroupEncoder) Reconstruct(shards [][]byte) error {
	return ge.rs.Reconstruct(shards)
}

// Tolerance returns the number of simultaneous shard losses the group
// survives (= m).
func (ge *GroupEncoder) Tolerance() int { return ge.rs.m }
