package erasure

import (
	"errors"
	"fmt"
)

// XOR is the single-parity bit-wise XOR code the paper cites as the cheap
// alternative to Reed–Solomon: one parity shard, tolerating exactly one
// erasure per group. Encoding is a plain XOR reduction, roughly an order of
// magnitude cheaper per byte than RS with large m.
type XOR struct {
	k int
}

// NewXOR returns a single-parity codec over k data shards.
func NewXOR(k int) (*XOR, error) {
	if k <= 0 {
		return nil, fmt.Errorf("erasure: XOR group size %d must be positive", k)
	}
	return &XOR{k: k}, nil
}

// K returns the number of data shards.
func (x *XOR) K() int { return x.k }

// Encode writes the XOR of all data shards into parity.
func (x *XOR) Encode(data [][]byte, parity []byte) error {
	if len(data) != x.k {
		return fmt.Errorf("erasure: got %d shards, want %d", len(data), x.k)
	}
	for i := range parity {
		parity[i] = 0
	}
	for _, d := range data {
		if len(d) != len(parity) {
			return fmt.Errorf("erasure: shard size %d != parity size %d", len(d), len(parity))
		}
		xorSlice(d, parity)
	}
	return nil
}

// Reconstruct rebuilds at most one missing shard. shards has k+1 entries
// (k data then parity); exactly the nil entries are missing.
func (x *XOR) Reconstruct(shards [][]byte) error {
	if len(shards) != x.k+1 {
		return fmt.Errorf("erasure: got %d shards, want %d", len(shards), x.k+1)
	}
	missing := -1
	size := -1
	for i, s := range shards {
		if s == nil {
			if missing != -1 {
				return ErrTooManyErasures
			}
			missing = i
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("erasure: shard %d size %d != %d", i, len(s), size)
		}
	}
	if missing == -1 {
		return nil
	}
	if size == -1 {
		return errors.New("erasure: no surviving shards")
	}
	out := make([]byte, size)
	for i, s := range shards {
		if i != missing {
			xorSlice(s, out)
		}
	}
	shards[missing] = out
	return nil
}
