package erasure

import "fmt"

// matrix is a dense matrix over GF(2^8), rows × cols.
type matrix struct {
	rows, cols int
	data       []byte // row-major
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m *matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m *matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }
func (m *matrix) row(r int) []byte     { return m.data[r*m.cols : (r+1)*m.cols] }
func (m *matrix) swapRows(a, b int) {
	ra, rb := m.row(a), m.row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// identity returns the n×n identity matrix.
func identity(n int) *matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// vandermonde returns the rows×cols matrix with entry (r,c) = r^c, whose
// square submatrices built from distinct evaluation points are invertible —
// the classical Reed–Solomon construction.
func vandermonde(rows, cols int) *matrix {
	m := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gfPow(byte(r), c))
		}
	}
	return m
}

// mul returns m × other.
func (m *matrix) mul(other *matrix) (*matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("erasure: matrix dims %dx%d × %dx%d", m.rows, m.cols, other.rows, other.cols)
	}
	out := newMatrix(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			a := m.at(r, k)
			if a == 0 {
				continue
			}
			logA := int(gfLog[a])
			orow := other.row(k)
			outRow := out.row(r)
			for c, b := range orow {
				if b != 0 {
					outRow[c] ^= gfExp[logA+int(gfLog[b])]
				}
			}
		}
	}
	return out, nil
}

// invert returns the inverse via Gauss–Jordan elimination, or an error if m
// is singular or non-square.
func (m *matrix) invert() (*matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("erasure: cannot invert %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	work := newMatrix(n, n)
	copy(work.data, m.data)
	inv := identity(n)

	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, fmt.Errorf("erasure: singular matrix at column %d", col)
		}
		if pivot != col {
			work.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		p := work.at(col, col)
		if p != 1 {
			pi := gfInv(p)
			scaleRow(work.row(col), pi)
			scaleRow(inv.row(col), pi)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.at(r, col)
			if f == 0 {
				continue
			}
			addScaledRow(work.row(col), work.row(r), f)
			addScaledRow(inv.row(col), inv.row(r), f)
		}
	}
	return inv, nil
}

func scaleRow(row []byte, c byte) {
	for i, v := range row {
		row[i] = gfMul(v, c)
	}
}

// addScaledRow computes dst ^= c*src.
func addScaledRow(src, dst []byte, c byte) {
	mulSlice(c, src, dst)
}

// subMatrix extracts the rows listed in rowIdx.
func (m *matrix) subMatrix(rowIdx []int) *matrix {
	out := newMatrix(len(rowIdx), m.cols)
	for i, r := range rowIdx {
		copy(out.row(i), m.row(r))
	}
	return out
}
