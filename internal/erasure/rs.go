package erasure

import (
	"errors"
	"fmt"
)

// ErrTooManyErasures is returned when fewer than k shards of a (k,m)
// Reed–Solomon group survive: the failure is catastrophic for this group in
// the sense of the paper's reliability model.
var ErrTooManyErasures = errors.New("erasure: too many erasures to reconstruct")

// RS is a systematic Reed–Solomon codec with k data shards and m parity
// shards over GF(2^8). Any k of the k+m shards reconstruct all data.
type RS struct {
	k, m int
	// enc is the (k+m)×k encoding matrix whose top k×k block is identity.
	enc *matrix
	// parityPlans[p] is the precompiled table plan of parity row p: one
	// 256-entry multiplication table per coefficient, built once here so
	// every Encode walks tables instead of the log/exp pair.
	parityPlans [][]rowPlan
}

// NewRS builds a codec for k data and m parity shards. k+m must not exceed
// 256 (field size) and both must be positive (m may be 0 for a degenerate
// no-parity group, used by baselines).
func NewRS(k, m int) (*RS, error) {
	if k <= 0 {
		return nil, fmt.Errorf("erasure: k = %d must be positive", k)
	}
	if m < 0 {
		return nil, fmt.Errorf("erasure: m = %d must be non-negative", m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("erasure: k+m = %d exceeds GF(256) limit", k+m)
	}
	v := vandermonde(k+m, k)
	top := v.subMatrix(seq(0, k))
	topInv, err := top.invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: building systematic matrix: %w", err)
	}
	enc, err := v.mul(topInv)
	if err != nil {
		return nil, err
	}
	plans := make([][]rowPlan, m)
	for p := 0; p < m; p++ {
		plans[p] = makePlan(enc.row(k + p))
	}
	return &RS{k: k, m: m, enc: enc, parityPlans: plans}, nil
}

// K returns the number of data shards.
func (r *RS) K() int { return r.k }

// M returns the number of parity shards.
func (r *RS) M() int { return r.m }

// Encode computes the m parity shards for k equally sized data shards.
// data must hold exactly k slices of identical length; parity must hold m
// slices of that same length (they are overwritten).
func (r *RS) Encode(data, parity [][]byte) error {
	if err := r.checkShards(data, r.k); err != nil {
		return err
	}
	if err := r.checkShards(parity, r.m); err != nil {
		return err
	}
	if r.m > 0 && len(data) > 0 && len(parity[0]) != len(data[0]) {
		return fmt.Errorf("erasure: parity shard size %d != data shard size %d", len(parity[0]), len(data[0]))
	}
	for p := 0; p < r.m; p++ {
		encodeRow(r.parityPlans[p], data, parity[p])
	}
	return nil
}

// Verify reports whether the parity shards are consistent with the data
// shards.
func (r *RS) Verify(data, parity [][]byte) (bool, error) {
	if err := r.checkShards(data, r.k); err != nil {
		return false, err
	}
	if err := r.checkShards(parity, r.m); err != nil {
		return false, err
	}
	if r.m == 0 {
		return true, nil
	}
	fresh := make([][]byte, r.m)
	for i := range fresh {
		fresh[i] = make([]byte, len(parity[i]))
	}
	if err := r.Encode(data, fresh); err != nil {
		return false, err
	}
	for i := range fresh {
		if len(fresh[i]) != len(parity[i]) {
			return false, nil
		}
		for j := range fresh[i] {
			if fresh[i][j] != parity[i][j] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct rebuilds missing shards in place. shards must hold k+m
// entries: index 0..k-1 data, k..k+m-1 parity; nil entries are the erasures.
// On success every entry is non-nil and correct. It fails with
// ErrTooManyErasures when fewer than k shards survive.
func (r *RS) Reconstruct(shards [][]byte) error {
	if len(shards) != r.k+r.m {
		return fmt.Errorf("erasure: got %d shards, want %d", len(shards), r.k+r.m)
	}
	var present []int
	size := -1
	for i, s := range shards {
		if s != nil {
			present = append(present, i)
			if size == -1 {
				size = len(s)
			} else if len(s) != size {
				return fmt.Errorf("erasure: shard %d size %d != %d", i, len(s), size)
			}
		}
	}
	if len(present) == r.k+r.m {
		return nil // nothing missing
	}
	if len(present) < r.k {
		return ErrTooManyErasures
	}

	// Choose k surviving rows, invert that submatrix: decode = sub^-1.
	rows := present[:r.k]
	sub := r.enc.subMatrix(rows)
	dec, err := sub.invert()
	if err != nil {
		return fmt.Errorf("erasure: decode matrix singular: %w", err)
	}

	// Rebuild missing data shards: data[d] = dec.row(d) · surviving shards.
	var missingData []int
	for d := 0; d < r.k; d++ {
		if shards[d] == nil {
			missingData = append(missingData, d)
		}
	}
	survivors := make([][]byte, len(rows))
	for j, src := range rows {
		survivors[j] = shards[src]
	}
	for _, d := range missingData {
		out := make([]byte, size)
		// 8-bit plans: decode coefficients are data-dependent one-shots,
		// not worth building (and permanently caching) 16-bit tables for.
		encodeRow(makePlan8(dec.row(d)), survivors, out)
		shards[d] = out
	}
	// Rebuild missing parity from (now complete) data.
	for p := 0; p < r.m; p++ {
		if shards[r.k+p] != nil {
			continue
		}
		out := make([]byte, size)
		encodeRow(r.parityPlans[p], shards[:r.k], out)
		shards[r.k+p] = out
	}
	return nil
}

func (r *RS) checkShards(shards [][]byte, want int) error {
	if len(shards) != want {
		return fmt.Errorf("erasure: got %d shards, want %d", len(shards), want)
	}
	for i := 1; i < len(shards); i++ {
		if len(shards[i]) != len(shards[0]) {
			return fmt.Errorf("erasure: shard %d size %d != shard 0 size %d", i, len(shards[i]), len(shards[0]))
		}
	}
	return nil
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
