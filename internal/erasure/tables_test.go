package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// naiveMul is an independent GF(256) reference multiply: Russian-peasant
// carryless multiplication reduced by the AES polynomial, sharing no code
// or tables with the kernels under test.
func naiveMul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b // 0x11b mod x^8
		}
		b >>= 1
	}
	return p
}

// kernelSizes covers the word-loop boundaries: empty, sub-word, word-exact,
// word+tail, the 16-byte unroll boundary, and larger odd lengths.
var kernelSizes = []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1023, 4096, 4097}

func TestGFMulTableMatchesNaive(t *testing.T) {
	for c := 0; c < 256; c++ {
		for x := 0; x < 256; x++ {
			if got, want := gfMulTable[c][x], naiveMul(byte(c), byte(x)); got != want {
				t.Fatalf("gfMulTable[%d][%d] = %d, want %d", c, x, got, want)
			}
		}
	}
}

func TestMulRow16MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 16; trial++ {
		c := byte(rng.Intn(256))
		t16 := mulRow16(c)
		for probe := 0; probe < 4096; probe++ {
			x := uint16(rng.Intn(65536))
			want := uint16(naiveMul(c, byte(x))) | uint16(naiveMul(c, byte(x>>8)))<<8
			if t16[x] != want {
				t.Fatalf("mulRow16(%d)[%#x] = %#x, want %#x", c, x, t16[x], want)
			}
		}
	}
}

// TestMulSliceMatchesNaive is the satellite property test: the table-driven
// mulSlice must match the naive reference byte for byte over random
// coefficients and lengths, including odd, non-word-aligned sizes.
func TestMulSliceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, size := range kernelSizes {
		for trial := 0; trial < 8; trial++ {
			c := byte(rng.Intn(256))
			src := make([]byte, size)
			dst := make([]byte, size)
			rng.Read(src)
			rng.Read(dst)
			want := make([]byte, size)
			for i := range want {
				want[i] = dst[i] ^ naiveMul(c, src[i])
			}
			mulSlice(c, src, dst)
			if !bytes.Equal(dst, want) {
				t.Fatalf("mulSlice(c=%d, len=%d) mismatch", c, size)
			}
		}
	}
}

func TestMulTabKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, size := range kernelSizes {
		for trial := 0; trial < 8; trial++ {
			c := byte(2 + rng.Intn(254)) // kernels only run for c > 1
			src := make([]byte, size)
			dst := make([]byte, size)
			rng.Read(src)
			rng.Read(dst)

			want := make([]byte, size)
			for i := range want {
				want[i] = naiveMul(c, src[i])
			}
			wantXor := make([]byte, size)
			for i := range wantXor {
				wantXor[i] = dst[i] ^ want[i]
			}

			// Both the 16-bit (encode) and 8-bit (decode) plan kernels
			// must match the reference.
			for name, plan := range map[string][]rowPlan{
				"makePlan":  makePlan([]byte{c}),
				"makePlan8": makePlan8([]byte{c}),
			} {
				got := make([]byte, size)
				mulTabAssign(&plan[0], src, got)
				if !bytes.Equal(got, want) {
					t.Fatalf("mulTabAssign(%s, c=%d, len=%d) mismatch", name, c, size)
				}
				gotXor := append([]byte(nil), dst...)
				mulTabXor(&plan[0], src, gotXor)
				if !bytes.Equal(gotXor, wantXor) {
					t.Fatalf("mulTabXor(%s, c=%d, len=%d) mismatch", name, c, size)
				}
			}
		}
	}
}

func TestXorWordsOddSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, size := range kernelSizes {
		src := make([]byte, size)
		dst := make([]byte, size)
		rng.Read(src)
		rng.Read(dst)
		want := make([]byte, size)
		for i := range want {
			want[i] = src[i] ^ dst[i]
		}
		xorSlice(src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("xorSlice(len=%d) mismatch", size)
		}
	}
}

// TestEncodeRowMatchesNaive exercises the full row kernel — zero, one, and
// table coefficients mixed — against a byte-wise reference.
func TestEncodeRowMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, size := range kernelSizes {
		for trial := 0; trial < 8; trial++ {
			k := 1 + rng.Intn(6)
			coeffs := make([]byte, k)
			for i := range coeffs {
				// Bias towards the special cases 0 and 1.
				switch rng.Intn(4) {
				case 0:
					coeffs[i] = 0
				case 1:
					coeffs[i] = 1
				default:
					coeffs[i] = byte(rng.Intn(256))
				}
			}
			shards := make([][]byte, k)
			for i := range shards {
				shards[i] = make([]byte, size)
				rng.Read(shards[i])
			}
			want := make([]byte, size)
			for i := 0; i < size; i++ {
				var acc byte
				for d := 0; d < k; d++ {
					acc ^= naiveMul(coeffs[d], shards[d][i])
				}
				want[i] = acc
			}
			for name, plan := range map[string][]rowPlan{
				"makePlan":  makePlan(coeffs),
				"makePlan8": makePlan8(coeffs),
			} {
				out := make([]byte, size)
				rng.Read(out) // must be overwritten, not accumulated into
				encodeRow(plan, shards, out)
				if !bytes.Equal(out, want) {
					t.Fatalf("encodeRow(%s, k=%d, len=%d, coeffs=%v) mismatch", name, k, size, coeffs)
				}
			}
		}
	}
}

// ---------- NewRS limits and m=0 regression ----------

func TestNewRSFieldLimit(t *testing.T) {
	if _, err := NewRS(128, 128); err != nil {
		t.Errorf("NewRS(128,128) (k+m=256, the field limit) rejected: %v", err)
	}
	if _, err := NewRS(128, 129); err == nil {
		t.Error("NewRS(128,129) (k+m=257) accepted")
	}
	if _, err := NewRS(255, 2); err == nil {
		t.Error("NewRS(255,2) accepted")
	}
}

func TestRSZeroParityRoundTrip(t *testing.T) {
	rs, err := NewRS(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	data := randShards(rng, 4, 33)
	orig := make([][]byte, 4)
	for i := range data {
		orig[i] = append([]byte(nil), data[i]...)
	}
	if err := rs.Encode(data, [][]byte{}); err != nil {
		t.Fatalf("m=0 Encode: %v", err)
	}
	ok, err := rs.Verify(data, [][]byte{})
	if err != nil || !ok {
		t.Fatalf("m=0 Verify = %v, %v; want true", ok, err)
	}
	shards := make([][]byte, 4)
	copy(shards, data)
	if err := rs.Reconstruct(shards); err != nil {
		t.Fatalf("m=0 Reconstruct with all present: %v", err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Errorf("m=0 round trip corrupted shard %d", i)
		}
	}
}

// ---------- streaming group encode ----------

func TestEncodeIntoMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ge, err := NewGroupEncoder(4, 2, 16<<10, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, 4, 100_001) // odd size crosses chunk boundaries
	want, err := ge.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	parity := [][]byte{make([]byte, 100_001), make([]byte, 100_001)}
	got, err := ge.EncodeInto(data, parity)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Parity {
		if !bytes.Equal(got.Parity[i], want.Parity[i]) {
			t.Fatalf("EncodeInto parity %d differs from Encode", i)
		}
	}
	if &parity[0][0] != &got.Parity[0][0] {
		t.Error("EncodeInto did not use the caller's buffers")
	}
}

func TestEncodeIntoValidation(t *testing.T) {
	ge, _ := NewGroupEncoder(2, 1, 0, 0)
	data := [][]byte{make([]byte, 8), make([]byte, 8)}
	if _, err := ge.EncodeInto(data, [][]byte{}); err == nil {
		t.Error("EncodeInto accepted wrong parity count")
	}
	if _, err := ge.EncodeInto(data, [][]byte{make([]byte, 7)}); err == nil {
		t.Error("EncodeInto accepted short parity buffer")
	}
}

func TestStreamReusesBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	ge, err := NewGroupEncoder(3, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := ge.NewStream()
	var prev *byte
	for round := 0; round < 3; round++ {
		data := randShards(rng, 3, 50_000)
		res, err := stream.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		// Correctness vs the one-shot path.
		want, err := ge.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Parity {
			if !bytes.Equal(res.Parity[i], want.Parity[i]) {
				t.Fatalf("round %d: stream parity %d differs", round, i)
			}
		}
		if prev != nil && prev != &res.Parity[0][0] {
			t.Error("stream did not reuse its parity buffer across calls")
		}
		prev = &res.Parity[0][0]
	}
	// Shrinking then growing within capacity keeps reusing; a larger shard
	// forces reallocation but must stay correct.
	big := randShards(rng, 3, 80_000)
	res, err := stream.Encode(big)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ge.Encode(big)
	for i := range want.Parity {
		if !bytes.Equal(res.Parity[i], want.Parity[i]) {
			t.Fatalf("grown stream parity %d differs", i)
		}
	}
}
