package erasure

import (
	"encoding/binary"
	"sync"
)

// gfMulTable[c][x] = c·x over GF(2^8). 64 KiB total: each row is a 256-byte
// lookup table that turns the log/exp multiply of the inner coding loop into
// a single L1-resident load per byte. Populated from gfExp/gfLog by
// initMulTable, which gf256.go's init calls after building the log tables.
var gfMulTable [256][256]byte

func initMulTable() {
	for c := 1; c < 256; c++ {
		logC := int(gfLog[c])
		row := &gfMulTable[c]
		for x := 1; x < 256; x++ {
			row[x] = gfExp[logC+int(gfLog[x])]
		}
	}
}

// mulRow returns the 256-entry multiplication table of coefficient c.
func mulRow(c byte) *[256]byte { return &gfMulTable[c] }

// mul16 caches the 16-bit double tables: mul16[c][x] holds the two products
// c·(x&0xff) | c·(x>>8)<<8, so one L2-resident load multiplies two source
// bytes at once — half the table traffic of the byte-wise kernel, which is
// the bottleneck on a single core. Tables are 128 KiB each and are built
// lazily, once per coefficient per process, under mul16Mu; the hot loops
// only ever touch pointers handed out at plan-build time, so they run
// lock-free.
var (
	mul16Mu sync.Mutex
	mul16   [256]*[65536]uint16
)

// mulRow16 returns (building if needed) the 16-bit double table of c.
func mulRow16(c byte) *[65536]uint16 {
	mul16Mu.Lock()
	defer mul16Mu.Unlock()
	if t := mul16[c]; t != nil {
		return t
	}
	row := &gfMulTable[c]
	t := new([65536]uint16)
	for hi := 0; hi < 256; hi++ {
		h := uint16(row[hi]) << 8
		base := hi << 8
		for lo := 0; lo < 256; lo++ {
			t[base|lo] = h | uint16(row[lo])
		}
	}
	mul16[c] = t
	return t
}

// rowPlan is one precompiled term of a matrix-row · shards product: the
// coefficient plus its multiplication tables. Plans are built once per
// codec (NewRS) or once per decode matrix, so the hot loop never touches
// gfLog or the table-build lock.
type rowPlan struct {
	c     byte
	tbl   *[256]byte
	tbl16 *[65536]uint16
}

// makePlan compiles one matrix row into per-coefficient table plans with
// the 16-bit double tables — for long-lived plans (the parity rows compiled
// once in NewRS), where the one-time 128 KiB build amortizes over every
// encode. Coefficients 0 and 1 need no tables (skip and XOR fast paths).
func makePlan(coeffs []byte) []rowPlan {
	plan := make([]rowPlan, len(coeffs))
	for i, c := range coeffs {
		plan[i].c = c
		if c > 1 {
			plan[i].tbl = mulRow(c)
			plan[i].tbl16 = mulRow16(c)
		}
	}
	return plan
}

// makePlan8 compiles a one-shot plan using only the always-resident 8-bit
// tables. Decode matrices have data-dependent coefficients, so building
// (and permanently caching) 16-bit tables for them would cost a 64Ki-entry
// build per fresh coefficient and grow process memory without bound; the
// word-packed 8-bit kernel needs neither.
func makePlan8(coeffs []byte) []rowPlan {
	plan := make([]rowPlan, len(coeffs))
	for i, c := range coeffs {
		plan[i].c = c
		if c > 1 {
			plan[i].tbl = mulRow(c)
		}
	}
	return plan
}

// encodeRow computes out = Σ plan[d].c · shards[d], overwriting out. The
// first nonzero term is assigned rather than accumulated, which saves the
// zeroing pass over out that the log/exp kernel needed. c == 1 terms take
// the 64-bit-word XOR/copy fast path; other coefficients run the packed
// 16-bit table kernel.
func encodeRow(plan []rowPlan, shards [][]byte, out []byte) {
	first := true
	for d, p := range plan {
		if p.c == 0 {
			continue
		}
		src := shards[d]
		switch {
		case first && p.c == 1:
			copy(out, src)
		case first:
			mulTabAssign(&p, src, out)
		case p.c == 1:
			xorWords(src, out)
		default:
			mulTabXor(&p, src, out)
		}
		first = false
	}
	if first {
		for i := range out {
			out[i] = 0
		}
	}
}

// mulTab16 computes one 64-bit word of table products: byte j of the result
// is c·(byte j of s). The four 16-bit lookups replace eight byte lookups,
// halving load-port traffic — the dominant cost of the scalar kernel.
func mulTab16(t *[65536]uint16, s uint64) uint64 {
	return uint64(t[uint16(s)]) |
		uint64(t[uint16(s>>16)])<<16 |
		uint64(t[uint16(s>>32)])<<32 |
		uint64(t[uint16(s>>48)])<<48
}

// mulTab8 is the 8-bit-table word kernel used by one-shot (decode) plans:
// eight byte lookups packed into one word, still one source load and one
// destination store per eight bytes.
func mulTab8(t *[256]byte, s uint64) uint64 {
	return uint64(t[byte(s)]) |
		uint64(t[byte(s>>8)])<<8 |
		uint64(t[byte(s>>16)])<<16 |
		uint64(t[byte(s>>24)])<<24 |
		uint64(t[byte(s>>32)])<<32 |
		uint64(t[byte(s>>40)])<<40 |
		uint64(t[byte(s>>48)])<<48 |
		uint64(t[byte(s>>56)])<<56
}

// mulTabAssign computes dst[i] = c·src[i], 16 bytes per iteration.
func mulTabAssign(p *rowPlan, src, dst []byte) {
	dst = dst[:len(src)]
	i := 0
	if t16 := p.tbl16; t16 != nil {
		for ; i+16 <= len(src); i += 16 {
			v0 := mulTab16(t16, binary.LittleEndian.Uint64(src[i:]))
			v1 := mulTab16(t16, binary.LittleEndian.Uint64(src[i+8:]))
			binary.LittleEndian.PutUint64(dst[i:], v0)
			binary.LittleEndian.PutUint64(dst[i+8:], v1)
		}
	} else {
		for ; i+8 <= len(src); i += 8 {
			binary.LittleEndian.PutUint64(dst[i:], mulTab8(p.tbl, binary.LittleEndian.Uint64(src[i:])))
		}
	}
	for ; i < len(src); i++ {
		dst[i] = p.tbl[src[i]]
	}
}

// mulTabXor computes dst[i] ^= c·src[i], 16 bytes per iteration.
func mulTabXor(p *rowPlan, src, dst []byte) {
	dst = dst[:len(src)]
	i := 0
	if t16 := p.tbl16; t16 != nil {
		for ; i+16 <= len(src); i += 16 {
			v0 := mulTab16(t16, binary.LittleEndian.Uint64(src[i:]))
			v1 := mulTab16(t16, binary.LittleEndian.Uint64(src[i+8:]))
			binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^v0)
			binary.LittleEndian.PutUint64(dst[i+8:], binary.LittleEndian.Uint64(dst[i+8:])^v1)
		}
	} else {
		for ; i+8 <= len(src); i += 8 {
			v := mulTab8(p.tbl, binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^v)
		}
	}
	for ; i < len(src); i++ {
		dst[i] ^= p.tbl[src[i]]
	}
}

// xorWords computes dst ^= src 8 bytes at a time, with a byte-wise tail for
// non-word-aligned lengths. len(src) must not exceed len(dst).
func xorWords(src, dst []byte) {
	i := 0
	for ; i+8 <= len(src); i += 8 {
		v := binary.LittleEndian.Uint64(src[i:]) ^ binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for ; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}
