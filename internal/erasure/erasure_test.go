package erasure

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ---------- GF(256) field axioms ----------

func TestGFTablesConsistent(t *testing.T) {
	// exp and log must be mutual inverses over the nonzero field.
	seen := map[byte]bool{}
	for i := 0; i < 255; i++ {
		v := gfExp[i]
		if seen[v] {
			t.Fatalf("gfExp not a permutation: %d repeats", v)
		}
		seen[v] = true
		if gfLog[v] != byte(i) {
			t.Fatalf("gfLog[gfExp[%d]] = %d, want %d", i, gfLog[v], i)
		}
	}
	if seen[0] {
		t.Fatal("gfExp generated zero")
	}
}

func TestGFMulProperties(t *testing.T) {
	f := func(a, b, c byte) bool {
		// commutativity, associativity, distributivity over XOR (field add)
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			return false
		}
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGFIdentityAndInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		b := byte(a)
		if gfMul(b, 1) != b {
			t.Fatalf("%d * 1 != %d", a, a)
		}
		if gfMul(b, gfInv(b)) != 1 {
			t.Fatalf("%d * inv(%d) != 1", a, a)
		}
		if gfDiv(b, b) != 1 {
			t.Fatalf("%d / %d != 1", a, a)
		}
	}
	if gfMul(0, 77) != 0 || gfMul(77, 0) != 0 {
		t.Error("multiplication by zero broken")
	}
}

func TestGFDivMulRoundTrip(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return gfMul(gfDiv(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGFPow(t *testing.T) {
	if gfPow(5, 0) != 1 {
		t.Error("a^0 != 1")
	}
	if gfPow(0, 3) != 0 {
		t.Error("0^3 != 0")
	}
	for a := 1; a < 256; a++ {
		want := byte(1)
		for n := 0; n < 6; n++ {
			if gfPow(byte(a), n) != want {
				t.Fatalf("gfPow(%d,%d) = %d, want %d", a, n, gfPow(byte(a), n), want)
			}
			want = gfMul(want, byte(a))
		}
	}
}

func TestGFPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("gfDiv by zero", func() { gfDiv(3, 0) })
	mustPanic("gfInv of zero", func() { gfInv(0) })
	mustPanic("mulSlice mismatch", func() { mulSlice(1, make([]byte, 2), make([]byte, 3)) })
	mustPanic("xorSlice mismatch", func() { xorSlice(make([]byte, 2), make([]byte, 3)) })
}

// ---------- matrix algebra ----------

func TestMatrixInvertIdentity(t *testing.T) {
	id := identity(5)
	inv, err := id.invert()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inv.data, id.data) {
		t.Error("identity inverse != identity")
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		m := newMatrix(n, n)
		for {
			for i := range m.data {
				m.data[i] = byte(rng.Intn(256))
			}
			if _, err := m.invert(); err == nil {
				break
			}
		}
		inv, err := m.invert()
		if err != nil {
			t.Fatal(err)
		}
		prod, err := m.mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(prod.data, identity(n).data) {
			t.Fatalf("m * m^-1 != I for n=%d", n)
		}
	}
}

func TestMatrixSingular(t *testing.T) {
	m := newMatrix(2, 2) // zero matrix
	if _, err := m.invert(); err == nil {
		t.Error("inverted a singular matrix")
	}
	rect := newMatrix(2, 3)
	if _, err := rect.invert(); err == nil {
		t.Error("inverted a non-square matrix")
	}
	a := newMatrix(2, 2)
	b := newMatrix(3, 2)
	if _, err := a.mul(b); err == nil {
		t.Error("multiplied mismatched matrices")
	}
}

func TestVandermondeSubmatricesInvertible(t *testing.T) {
	v := vandermonde(8, 4)
	// any 4 distinct rows must be invertible
	rows := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {0, 2, 5, 7}, {1, 3, 4, 6}}
	for _, rs := range rows {
		if _, err := v.subMatrix(rs).invert(); err != nil {
			t.Errorf("vandermonde rows %v not invertible: %v", rs, err)
		}
	}
}

// ---------- Reed–Solomon ----------

func randShards(rng *rand.Rand, k, size int) [][]byte {
	d := make([][]byte, k)
	for i := range d {
		d[i] = make([]byte, size)
		rng.Read(d[i])
	}
	return d
}

func TestRSEncodeDecodeAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const k, m, size = 4, 2, 256
	rs, err := NewRS(k, m)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, k, size)
	parity := make([][]byte, m)
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	if err := rs.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	ok, err := rs.Verify(data, parity)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v; want true", ok, err)
	}

	// Every way of losing exactly m=2 of the 6 shards must reconstruct.
	all := append(append([][]byte{}, data...), parity...)
	for a := 0; a < k+m; a++ {
		for b := a + 1; b < k+m; b++ {
			shards := make([][]byte, k+m)
			for i := range shards {
				if i != a && i != b {
					shards[i] = append([]byte(nil), all[i]...)
				}
			}
			if err := rs.Reconstruct(shards); err != nil {
				t.Fatalf("Reconstruct losing {%d,%d}: %v", a, b, err)
			}
			for i := range shards {
				if !bytes.Equal(shards[i], all[i]) {
					t.Fatalf("shard %d wrong after losing {%d,%d}", i, a, b)
				}
			}
		}
	}
}

func TestRSTooManyErasures(t *testing.T) {
	rs, _ := NewRS(3, 2)
	data := randShards(rand.New(rand.NewSource(2)), 3, 64)
	parity := [][]byte{make([]byte, 64), make([]byte, 64)}
	if err := rs.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{data[0], nil, nil, nil, parity[1]} // 2 survive < k=3
	if err := rs.Reconstruct(shards); !errors.Is(err, ErrTooManyErasures) {
		t.Errorf("err = %v, want ErrTooManyErasures", err)
	}
}

func TestRSNoErasures(t *testing.T) {
	rs, _ := NewRS(2, 1)
	data := randShards(rand.New(rand.NewSource(3)), 2, 16)
	parity := [][]byte{make([]byte, 16)}
	_ = rs.Encode(data, parity)
	shards := [][]byte{data[0], data[1], parity[0]}
	if err := rs.Reconstruct(shards); err != nil {
		t.Errorf("Reconstruct with nothing missing: %v", err)
	}
}

func TestRSVerifyDetectsCorruption(t *testing.T) {
	rs, _ := NewRS(4, 2)
	data := randShards(rand.New(rand.NewSource(4)), 4, 128)
	parity := [][]byte{make([]byte, 128), make([]byte, 128)}
	_ = rs.Encode(data, parity)
	data[2][17] ^= 0xff
	ok, err := rs.Verify(data, parity)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Verify accepted corrupted data")
	}
}

func TestRSParameterValidation(t *testing.T) {
	if _, err := NewRS(0, 1); err == nil {
		t.Error("NewRS accepted k=0")
	}
	if _, err := NewRS(4, -1); err == nil {
		t.Error("NewRS accepted m<0")
	}
	if _, err := NewRS(200, 100); err == nil {
		t.Error("NewRS accepted k+m>256")
	}
	rs, _ := NewRS(2, 1)
	if err := rs.Encode([][]byte{{1}}, [][]byte{{0}}); err == nil {
		t.Error("Encode accepted wrong shard count")
	}
	if err := rs.Encode([][]byte{{1}, {2, 3}}, [][]byte{{0}}); err == nil {
		t.Error("Encode accepted ragged shards")
	}
	if err := rs.Reconstruct(make([][]byte, 2)); err == nil {
		t.Error("Reconstruct accepted wrong shard count")
	}
	if err := rs.Reconstruct([][]byte{{1}, {2, 3}, nil}); err == nil {
		t.Error("Reconstruct accepted ragged shards")
	}
}

func TestRSZeroParity(t *testing.T) {
	// m=0 groups are legal degenerate baselines: no protection at all.
	rs, err := NewRS(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rand.New(rand.NewSource(5)), 3, 8)
	if err := rs.Encode(data, [][]byte{}); err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{data[0], data[1], nil}
	if err := rs.Reconstruct(shards); !errors.Is(err, ErrTooManyErasures) {
		t.Errorf("m=0 reconstruct of erasure: err = %v, want ErrTooManyErasures", err)
	}
}

// Property: random (k, m, erasure pattern with <= m losses) always round-trips.
func TestRSRoundTripProperty(t *testing.T) {
	f := func(seed int64, kRaw, mRaw uint8, sizeRaw uint16) bool {
		k := int(kRaw%8) + 1
		m := int(mRaw%4) + 1
		size := int(sizeRaw%512) + 1
		rng := rand.New(rand.NewSource(seed))
		rs, err := NewRS(k, m)
		if err != nil {
			return false
		}
		data := randShards(rng, k, size)
		parity := make([][]byte, m)
		for i := range parity {
			parity[i] = make([]byte, size)
		}
		if err := rs.Encode(data, parity); err != nil {
			return false
		}
		all := append(append([][]byte{}, data...), parity...)
		shards := make([][]byte, k+m)
		for i := range shards {
			shards[i] = append([]byte(nil), all[i]...)
		}
		// erase up to m random shards
		nerase := rng.Intn(m + 1)
		for e := 0; e < nerase; e++ {
			shards[rng.Intn(k+m)] = nil
		}
		if err := rs.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], all[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// ---------- XOR ----------

func TestXORRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, err := NewXOR(4)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, 4, 100)
	parity := make([]byte, 100)
	if err := x.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	for lost := 0; lost < 5; lost++ {
		shards := make([][]byte, 5)
		for i := 0; i < 4; i++ {
			shards[i] = append([]byte(nil), data[i]...)
		}
		shards[4] = append([]byte(nil), parity...)
		want := append([]byte(nil), shards[lost]...)
		shards[lost] = nil
		if err := x.Reconstruct(shards); err != nil {
			t.Fatalf("lost %d: %v", lost, err)
		}
		if !bytes.Equal(shards[lost], want) {
			t.Fatalf("lost %d: wrong reconstruction", lost)
		}
	}
}

func TestXORTwoErasuresFail(t *testing.T) {
	x, _ := NewXOR(3)
	shards := [][]byte{nil, nil, {1}, {2}}
	if err := x.Reconstruct(shards); !errors.Is(err, ErrTooManyErasures) {
		t.Errorf("err = %v, want ErrTooManyErasures", err)
	}
}

func TestXORValidation(t *testing.T) {
	if _, err := NewXOR(0); err == nil {
		t.Error("NewXOR accepted k=0")
	}
	x, _ := NewXOR(2)
	if err := x.Encode([][]byte{{1}}, []byte{0}); err == nil {
		t.Error("Encode accepted wrong count")
	}
	if err := x.Encode([][]byte{{1}, {2, 3}}, []byte{0}); err == nil {
		t.Error("Encode accepted ragged shards")
	}
	if err := x.Reconstruct([][]byte{{1}, {2}}); err == nil {
		t.Error("Reconstruct accepted wrong count")
	}
	if err := x.Reconstruct([][]byte{{1}, {2, 3}, {4}}); err == nil {
		t.Error("Reconstruct accepted ragged shards")
	}
	// nothing missing is fine
	if err := x.Reconstruct([][]byte{{1}, {3}, {2}}); err != nil {
		t.Errorf("no-missing reconstruct: %v", err)
	}
}

// ---------- group encoder & model ----------

func TestGroupEncoderMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k, m, size = 4, 2, 200_000
	ge, err := NewGroupEncoder(k, m, 16<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := randShards(rng, k, size)
	res, err := ge.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := NewRS(k, m)
	want := [][]byte{make([]byte, size), make([]byte, size)}
	_ = rs.Encode(data, want)
	for i := range want {
		if !bytes.Equal(res.Parity[i], want[i]) {
			t.Fatalf("parallel parity %d != serial parity", i)
		}
	}
	if ge.Tolerance() != m {
		t.Errorf("Tolerance = %d, want %d", ge.Tolerance(), m)
	}
}

func TestGroupEncoderReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ge, _ := NewGroupEncoder(4, 1, 0, 0)
	data := randShards(rng, 4, 10_000)
	res, err := ge.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{data[0], nil, data[2], data[3], res.Parity[0]}
	if err := ge.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if len(shards[1]) != 10_000 {
		t.Error("reconstructed shard has wrong size")
	}
}

func TestGroupEncoderValidation(t *testing.T) {
	if _, err := NewGroupEncoder(0, 1, 0, 0); err == nil {
		t.Error("accepted k=0")
	}
	ge, _ := NewGroupEncoder(2, 1, 0, 0)
	if _, err := ge.Encode([][]byte{{1}}); err == nil {
		t.Error("accepted wrong shard count")
	}
	if _, err := ge.Encode([][]byte{{1}, {2, 3}}); err == nil {
		t.Error("accepted ragged shards")
	}
}

func TestModelEncodeSeconds(t *testing.T) {
	// The model must reproduce the paper's Table II encode column exactly.
	cases := []struct {
		k    int
		want float64
	}{
		{32, 204}, {16, 102}, {8, 51},
	}
	for _, c := range cases {
		got := ModelEncodeSeconds(c.k, 1e9)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ModelEncodeSeconds(%d, 1GB) = %g, want %g", c.k, got, c.want)
		}
	}
	// k=4 ⇒ 25.5s, the paper rounds to 25s.
	if got := ModelEncodeSeconds(4, 1e9); math.Abs(got-25.5) > 1e-9 {
		t.Errorf("ModelEncodeSeconds(4, 1GB) = %g, want 25.5", got)
	}
	// linearity in bytes
	if got := ModelEncodeSeconds(8, 5e8); math.Abs(got-25.5) > 1e-9 {
		t.Errorf("ModelEncodeSeconds(8, 0.5GB) = %g, want 25.5", got)
	}
}
