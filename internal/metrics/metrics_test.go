package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(2)
	g := r.Gauge("test_inflight", "a gauge")
	g.Set(5)
	g.Dec()
	r.GaugeFunc("test_entries", "a gauge func", func() float64 { return 7 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_total a counter",
		"# TYPE test_total counter",
		"test_total 3",
		"# TYPE test_inflight gauge",
		"test_inflight 4",
		"test_entries 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 || g.Value() != 4 {
		t.Fatalf("Value() = %d / %d, want 3 / 4", c.Value(), g.Value())
	}
}

func TestCounterFuncExposition(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("ext_errors_total", "errors counted elsewhere", func() float64 { return 12 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ext_errors_total counter",
		"ext_errors_total 12",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "endpoint", "status")
	v.With("evaluate", "200").Add(2)
	v.With("evaluate", "429").Inc()
	// Same label values resolve to the same series.
	v.With("evaluate", "200").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `req_total{endpoint="evaluate",status="200"} 3`) {
		t.Errorf("missing 200 series:\n%s", out)
	}
	if !strings.Contains(out, `req_total{endpoint="evaluate",status="429"} 1`) {
		t.Errorf("missing 429 series:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "", "path")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 55.65; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary 0.1 (le is inclusive)
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 55.65",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVecMergesLeLabel(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("eval_seconds", "", []float64{1}, "source")
	v.With("tsunami").Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `eval_seconds_bucket{source="tsunami",le="1"} 1`) {
		t.Errorf("le label not merged into series labels:\n%s", out)
	}
	if !strings.Contains(out, `eval_seconds_count{source="tsunami"} 1`) {
		t.Errorf("missing labeled count:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	r.Counter("0bad-name", "")
}

func TestWrongLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("arity_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity did not panic")
		}
	}()
	v.With("only-one")
}

// TestConcurrentUse hammers every metric kind from many goroutines while
// scraping concurrently — the registry's concurrency-safety contract,
// meaningful under -race (the CI test job always runs with it).
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	cv := r.CounterVec("conc_vec_total", "", "worker")
	hv := r.HistogramVec("conc_seconds", "", []float64{0.5, 1}, "worker")
	r.GaugeFunc("conc_fn", "", func() float64 { return float64(g.Value()) })

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Inc()
				cv.With(label).Inc()
				hv.With(label).Observe(float64(i) / iters)
				g.Dec()
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	for w := 0; w < workers; w++ {
		label := string(rune('a' + w))
		if got := cv.With(label).Value(); got != iters {
			t.Fatalf("vec counter %q = %d, want %d", label, got, iters)
		}
		if got := hv.With(label).Count(); got != iters {
			t.Fatalf("histogram %q count = %d, want %d", label, got, iters)
		}
	}
}
