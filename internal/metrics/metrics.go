// Package metrics is a small, dependency-free instrumentation registry
// for the hcserve evaluation service: counters, gauges, and fixed-bucket
// histograms, with optional label dimensions, exposed in the Prometheus
// text format (version 0.0.4) by Registry.WritePrometheus.
//
// The package deliberately implements the minimal subset of the Prometheus
// data model the repository needs — no client library dependency, no
// push/pull machinery, no dynamic label cardinality protection beyond what
// the caller wires. All metric operations (Inc, Add, Set, Observe, With)
// are safe for concurrent use, lock-free on the hot path (atomics), and
// may race freely with WritePrometheus; the exposition is a point-in-time
// snapshot with no cross-metric consistency guarantee, exactly like a real
// Prometheus scrape. A concurrency test pins this under the race detector.
//
// Registration (Counter, Gauge, Histogram, *Vec, GaugeFunc) is intended
// for startup: registering the same name twice, or an invalid name or
// label, panics — a mis-wired metric is a programmer error that should
// fail loudly in the first test that touches it, not ship a silent gap in
// observability.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds, in seconds. They
// span sub-millisecond cache hits through multi-second traced tsunami
// runs at paper scale.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry holds a named set of metric families and renders them in the
// Prometheus text exposition format. The zero value is not usable;
// construct with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric family: a type, help text, a label schema,
// and the live series.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", or "histogram"
	labels []string

	mu      sync.RWMutex
	series  map[string]metric // key = joined, escaped label values
	fn      func() float64    // GaugeFunc families only
	buckets []float64         // histogram families only
}

// metric is the value side of one labeled series.
type metric interface {
	// write renders the series (with the pre-rendered label block) as one
	// or more exposition lines.
	write(w io.Writer, name, labelBlock string) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register installs a family, panicking on duplicate or invalid names —
// see the package comment for why registration fails loudly.
func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("metrics: metric %q registered twice", f.name))
	}
	f.series = map[string]metric{}
	r.families[f.name] = f
	return f
}

// validName reports whether s is a legal Prometheus metric or label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// Counter registers and returns an unlabeled monotonically increasing
// counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: "counter"})
	c := &Counter{}
	f.series[""] = c
	return c
}

// CounterVec registers a counter family with the given label dimensions;
// series materialize on first With.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: CounterVec %q needs at least one label (use Counter)", name))
	}
	return &CounterVec{f: r.register(&family{name: name, help: help, typ: "counter", labels: labels})}
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, typ: "gauge"})
	g := &Gauge{}
	f.series[""] = g
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time — the bridge for values already tracked elsewhere (cache entry
// counts, queue lengths). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", fn: fn})
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for monotonic totals already counted elsewhere (the
// trace cache's own error counters). fn must be safe for concurrent use
// and must never decrease.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "counter", fn: fn})
}

// Histogram registers and returns an unlabeled histogram with the given
// ascending upper bounds (DefBuckets when empty). A +Inf bucket is always
// appended.
func (r *Registry) Histogram(name, help string, buckets ...float64) *Histogram {
	b := checkBuckets(name, buckets)
	f := r.register(&family{name: name, help: help, typ: "histogram", buckets: b})
	h := newHistogram(b)
	f.series[""] = h
	return h
}

// HistogramVec registers a histogram family with label dimensions; series
// materialize on first With. buckets nil means DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: HistogramVec %q needs at least one label (use Histogram)", name))
	}
	b := checkBuckets(name, buckets)
	return &HistogramVec{f: r.register(&family{name: name, help: help, typ: "histogram", labels: labels, buckets: b})}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly ascending", name))
		}
	}
	return append([]float64(nil), buckets...)
}

// Counter is a monotonically increasing integer counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labelBlock string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labelBlock, c.v.Load())
	return err
}

// Gauge is an integer value that can go up and down (in-flight requests,
// queue occupancy, cache entries).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer, name, labelBlock string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labelBlock, g.v.Load())
	return err
}

// Histogram counts observations into fixed cumulative buckets and tracks
// their sum — the Prometheus histogram model, answering quantile queries
// at scrape time via histogram_quantile.
type Histogram struct {
	upper  []float64 // ascending; +Inf is implicit as counts[len(upper)]
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bucket whose upper bound contains v.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

func (h *Histogram) write(w io.Writer, name, labelBlock string) error {
	// Bucket lines carry the le label merged into the series' label block.
	cum := uint64(0)
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		if err := writeBucket(w, name, labelBlock, formatFloat(ub), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.upper)].Load()
	if err := writeBucket(w, name, labelBlock, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelBlock, formatFloat(h.sum.load())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelBlock, h.count.Load())
	return err
}

func writeBucket(w io.Writer, name, labelBlock, le string, cum uint64) error {
	var block string
	if labelBlock == "" {
		block = `{le="` + le + `"}`
	} else {
		block = strings.TrimSuffix(labelBlock, "}") + `,le="` + le + `"}`
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, block, cum)
	return err
}

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per registered
// label, in registration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	m := v.f.with(values, func() metric { return &Counter{} })
	return m.(*Counter)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	m := v.f.with(values, func() metric { return newHistogram(v.f.buckets) })
	return m.(*Histogram)
}

// with resolves (creating if needed) the series for the given label values.
func (f *family) with(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelBlock(f.labels, values)
	f.mu.RLock()
	m, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m = mk()
	f.series[key] = m
	return m
}

// labelBlock renders `{a="x",b="y"}` with escaped values; it doubles as
// the series map key, so equal label sets share a series.
func labelBlock(labels, values []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition-format label escapes.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip representation; integers without a trailing .0 are fine).
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in the text exposition
// format, families sorted by name and series sorted by label block, so
// output is deterministic for tests and diffable between scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		if f.fn != nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn())); err != nil {
				return err
			}
			continue
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]metric, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.RUnlock()
		for i, k := range keys {
			if err := series[i].write(w, f.name, k); err != nil {
				return err
			}
		}
	}
	return nil
}

// escapeHelp applies the exposition-format help-text escapes.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
