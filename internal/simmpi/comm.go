package simmpi

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Comm is a communicator: an ordered group of world ranks with its own rank
// numbering and an isolated tag space. The zero communicator of a Proc
// spans the world. Split carves sub-communicators, which is how the
// checkpoint library separates application ranks from encoder ranks
// (FTI's communicator replacement described in §V of the paper).
type Comm struct {
	proc  *Proc
	ctx   int64 // context id isolating this communicator's internal tags
	group []int // group[i] = world rank of communicator rank i
	rank  int   // this proc's rank within the communicator
	seq   int64 // per-proc collective sequence number (same at all ranks)
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(r int) (int, error) {
	if r < 0 || r >= len(c.group) {
		return 0, fmt.Errorf("simmpi: rank %d out of communicator range 0..%d", r, len(c.group)-1)
	}
	return c.group[r], nil
}

// Group returns a copy of the communicator's world-rank membership.
func (c *Comm) Group() []int {
	return append([]int(nil), c.group...)
}

// userTag embeds the communicator context into a user tag so identical tags
// on different communicators cannot match each other.
func (c *Comm) userTag(tag Tag) (Tag, error) {
	if tag < 0 {
		return 0, fmt.Errorf("simmpi: user tag %d must be non-negative", tag)
	}
	return Tag(c.ctx<<32) | (tag & 0xffffffff), nil
}

// itag builds an internal collective tag unique to (communicator, collective
// instance, round). All ranks of a communicator execute collectives in the
// same order, so seq agrees across ranks.
func (c *Comm) itag(seq int64, round int) Tag {
	return -(1 + Tag(c.ctx)<<40 + Tag(seq)<<12 + Tag(round))
}

// Send delivers data to communicator rank dst with a non-negative tag.
// Sends are eager: the payload is copied and the call returns immediately.
func (c *Comm) Send(dst int, tag Tag, data []byte) error {
	wdst, err := c.WorldRank(dst)
	if err != nil {
		return err
	}
	t, err := c.userTag(tag)
	if err != nil {
		return err
	}
	return c.proc.send(wdst, t, data)
}

// Recv blocks until a message from communicator rank src with the given tag
// arrives and returns its payload.
func (c *Comm) Recv(src int, tag Tag) ([]byte, error) {
	wsrc, err := c.WorldRank(src)
	if err != nil {
		return nil, err
	}
	t, err := c.userTag(tag)
	if err != nil {
		return nil, err
	}
	return c.proc.recv(wsrc, t)
}

// SendRecv sends to dst and receives from src, either order; safe from
// deadlock under the eager send model.
func (c *Comm) SendRecv(dst int, sendTag Tag, data []byte, src int, recvTag Tag) ([]byte, error) {
	if err := c.Send(dst, sendTag, data); err != nil {
		return nil, err
	}
	return c.Recv(src, recvTag)
}

// Request represents a pending nonblocking operation.
type Request struct {
	done chan struct{}
	data []byte
	err  error
}

// Wait blocks until the operation completes, returning the received payload
// for receives (nil for sends).
func (r *Request) Wait() ([]byte, error) {
	<-r.done
	return r.data, r.err
}

// Isend starts a nonblocking send. Under the eager model the send completes
// immediately; the request exists for API symmetry with MPI code.
func (c *Comm) Isend(dst int, tag Tag, data []byte) *Request {
	req := &Request{done: make(chan struct{})}
	req.err = c.Send(dst, tag, data)
	close(req.done)
	return req
}

// Irecv starts a nonblocking receive completed by Wait.
func (c *Comm) Irecv(src int, tag Tag) *Request {
	req := &Request{done: make(chan struct{})}
	go func() {
		req.data, req.err = c.Recv(src, tag)
		close(req.done)
	}()
	return req
}

// WaitAll waits on every request and returns the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Split partitions the communicator by color: ranks passing equal colors
// land in the same new communicator, ordered by (key, old rank). Every rank
// of c must call Split (it is collective). A negative color returns a nil
// communicator for that rank, as MPI_UNDEFINED does.
func (c *Comm) Split(color, key int) (*Comm, error) {
	// Exchange (color, key) with everyone via allgather.
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(int64(color)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(int64(key)))
	all, err := c.Allgather(buf[:])
	if err != nil {
		return nil, err
	}
	type entry struct{ color, key, rank int }
	entries := make([]entry, len(all))
	for i, b := range all {
		entries[i] = entry{
			color: int(int64(binary.LittleEndian.Uint64(b[0:8]))),
			key:   int(int64(binary.LittleEndian.Uint64(b[8:16]))),
			rank:  i,
		}
	}
	if color < 0 {
		return nil, nil
	}
	var mine []entry
	for _, e := range entries {
		if e.color == color {
			mine = append(mine, e)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	group := make([]int, len(mine))
	newRank := -1
	for i, e := range mine {
		group[i] = c.group[e.rank]
		if e.rank == c.rank {
			newRank = i
		}
	}
	// Context id: derived deterministically from parent ctx, the split
	// sequence number, and the color, so every member computes the same id
	// and different colors get disjoint tag spaces.
	ctx := c.ctx*1009 + c.seq*31 + int64(color) + 1
	return &Comm{proc: c.proc, ctx: ctx, group: group, rank: newRank}, nil
}
