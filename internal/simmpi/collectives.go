package simmpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ReduceOp combines two payloads into one; it must be associative and
// commutative, and must not retain or modify its inputs beyond the returned
// slice (which may alias a).
type ReduceOp func(a, b []byte) ([]byte, error)

// OpSumFloat64 adds payloads interpreted as little-endian []float64.
func OpSumFloat64(a, b []byte) ([]byte, error) {
	if len(a) != len(b) || len(a)%8 != 0 {
		return nil, fmt.Errorf("simmpi: float64 sum over %d and %d bytes", len(a), len(b))
	}
	out := make([]byte, len(a))
	for i := 0; i < len(a); i += 8 {
		x := math.Float64frombits(binary.LittleEndian.Uint64(a[i:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(b[i:]))
		binary.LittleEndian.PutUint64(out[i:], math.Float64bits(x+y))
	}
	return out, nil
}

// OpMaxFloat64 takes the element-wise maximum of []float64 payloads.
func OpMaxFloat64(a, b []byte) ([]byte, error) {
	if len(a) != len(b) || len(a)%8 != 0 {
		return nil, fmt.Errorf("simmpi: float64 max over %d and %d bytes", len(a), len(b))
	}
	out := make([]byte, len(a))
	for i := 0; i < len(a); i += 8 {
		x := math.Float64frombits(binary.LittleEndian.Uint64(a[i:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(b[i:]))
		binary.LittleEndian.PutUint64(out[i:], math.Float64bits(math.Max(x, y)))
	}
	return out, nil
}

// OpSumInt64 adds payloads interpreted as little-endian []int64.
func OpSumInt64(a, b []byte) ([]byte, error) {
	if len(a) != len(b) || len(a)%8 != 0 {
		return nil, fmt.Errorf("simmpi: int64 sum over %d and %d bytes", len(a), len(b))
	}
	out := make([]byte, len(a))
	for i := 0; i < len(a); i += 8 {
		x := int64(binary.LittleEndian.Uint64(a[i:]))
		y := int64(binary.LittleEndian.Uint64(b[i:]))
		binary.LittleEndian.PutUint64(out[i:], uint64(x+y))
	}
	return out, nil
}

// Barrier blocks until every rank of the communicator has entered it.
// It uses the dissemination algorithm: ceil(log2 n) rounds of pairwise
// notifications.
func (c *Comm) Barrier() error {
	seq := c.seq
	c.seq++
	n := len(c.group)
	if n == 1 {
		return nil
	}
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		to := (c.rank + dist) % n
		from := (c.rank - dist + n) % n
		wto := c.group[to]
		wfrom := c.group[from]
		if err := c.proc.send(wto, c.itag(seq, round), nil); err != nil {
			return err
		}
		if _, err := c.proc.recv(wfrom, c.itag(seq, round)); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's payload to every rank using a binomial tree and
// returns each rank's copy.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	seq := c.seq
	c.seq++
	n := len(c.group)
	if root < 0 || root >= n {
		return nil, fmt.Errorf("simmpi: bcast root %d out of range 0..%d", root, n-1)
	}
	// Work in a rotated rank space where root is 0: receive from the parent
	// obtained by clearing our lowest set bit, then forward to children at
	// every bit position below it.
	vrank := (c.rank - root + n) % n
	var buf []byte
	mask := 1
	if vrank == 0 {
		buf = append([]byte(nil), data...)
		for mask < n {
			mask <<= 1
		}
	} else {
		for mask < n {
			if vrank&mask != 0 {
				parent := ((vrank &^ mask) + root) % n
				b, err := c.proc.recv(c.group[parent], c.itag(seq, 0))
				if err != nil {
					return nil, err
				}
				buf = b
				break
			}
			mask <<= 1
		}
	}
	for mask >>= 1; mask >= 1; mask >>= 1 {
		child := vrank | mask
		if child != vrank && child < n {
			dst := (child + root) % n
			if err := c.proc.send(c.group[dst], c.itag(seq, 0), buf); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// Reduce combines all payloads with op, delivering the result to root
// (nil elsewhere). Binomial-tree reduction in rotated rank space.
func (c *Comm) Reduce(root int, data []byte, op ReduceOp) ([]byte, error) {
	seq := c.seq
	c.seq++
	n := len(c.group)
	if root < 0 || root >= n {
		return nil, fmt.Errorf("simmpi: reduce root %d out of range 0..%d", root, n-1)
	}
	vrank := (c.rank - root + n) % n
	acc := append([]byte(nil), data...)
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % n
			if err := c.proc.send(c.group[parent], c.itag(seq, mask), acc); err != nil {
				return nil, err
			}
			return nil, nil // contribution forwarded; done
		}
		child := vrank | mask
		if child < n {
			b, err := c.proc.recv(c.group[(child+root)%n], c.itag(seq, mask))
			if err != nil {
				return nil, err
			}
			acc, err = op(acc, b)
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// Allreduce combines all payloads with op and delivers the result to every
// rank. Implemented as Reduce to rank 0 followed by Bcast, the layout MPICH2
// uses for medium payloads.
func (c *Comm) Allreduce(data []byte, op ReduceOp) ([]byte, error) {
	red, err := c.Reduce(0, data, op)
	if err != nil {
		return nil, err
	}
	return c.Bcast(0, red)
}

// Gather collects every rank's payload at root; result[i] is rank i's
// payload at root, nil at other ranks.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	seq := c.seq
	c.seq++
	n := len(c.group)
	if root < 0 || root >= n {
		return nil, fmt.Errorf("simmpi: gather root %d out of range 0..%d", root, n-1)
	}
	if c.rank != root {
		if err := c.proc.send(c.group[root], c.itag(seq, c.rank), data); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([][]byte, n)
	out[root] = append([]byte(nil), data...)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		b, err := c.proc.recv(c.group[r], c.itag(seq, r))
		if err != nil {
			return nil, err
		}
		out[r] = b
	}
	return out, nil
}

// Allgather collects every rank's payload at every rank using recursive
// doubling: in round k each rank exchanges its accumulated block set with
// the partner rank^2^k. This is the MPICH2 algorithm whose power-of-two
// partner pattern is visible as diagonals in the paper's Figure 5b.
// For non-power-of-two sizes it falls back to gather+bcast.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	n := len(c.group)
	if n&(n-1) != 0 {
		return c.allgatherFallback(data)
	}
	seq := c.seq
	c.seq++
	// blocks[i] holds rank i's payload once known.
	blocks := make([][]byte, n)
	blocks[c.rank] = append([]byte(nil), data...)
	have := []int{c.rank} // ranks whose blocks we hold, in acquisition order
	for round, dist := 0, 1; dist < n; round, dist = round+1, dist*2 {
		partner := c.rank ^ dist
		payload := packBlocks(blocks, have)
		if err := c.proc.send(c.group[partner], c.itag(seq, round), payload); err != nil {
			return nil, err
		}
		b, err := c.proc.recv(c.group[partner], c.itag(seq, round))
		if err != nil {
			return nil, err
		}
		got, err := unpackBlocks(b)
		if err != nil {
			return nil, err
		}
		for r, blk := range got {
			if blocks[r] == nil {
				blocks[r] = blk
				have = append(have, r)
			}
		}
	}
	return blocks, nil
}

func (c *Comm) allgatherFallback(data []byte) ([][]byte, error) {
	got, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	payload := []byte(nil)
	if c.rank == 0 {
		payload = packBlocks(got, seqInts(len(got)))
	}
	b, err := c.Bcast(0, payload)
	if err != nil {
		return nil, err
	}
	blocks, err := unpackBlocks(b)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(c.group))
	for r, blk := range blocks {
		out[r] = blk
	}
	return out, nil
}

// Scatter distributes parts[i] from root to rank i and returns each rank's
// part. parts is only read at root.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	seq := c.seq
	c.seq++
	n := len(c.group)
	if root < 0 || root >= n {
		return nil, fmt.Errorf("simmpi: scatter root %d out of range 0..%d", root, n-1)
	}
	if c.rank == root {
		if len(parts) != n {
			return nil, fmt.Errorf("simmpi: scatter got %d parts for %d ranks", len(parts), n)
		}
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			if err := c.proc.send(c.group[r], c.itag(seq, r), parts[r]); err != nil {
				return nil, err
			}
		}
		return append([]byte(nil), parts[root]...), nil
	}
	return c.proc.recv(c.group[root], c.itag(seq, c.rank))
}

// Alltoall sends parts[i] to rank i and returns the payloads received from
// every rank (result[i] from rank i). Pairwise-exchange algorithm.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	seq := c.seq
	c.seq++
	n := len(c.group)
	if len(parts) != n {
		return nil, fmt.Errorf("simmpi: alltoall got %d parts for %d ranks", len(parts), n)
	}
	out := make([][]byte, n)
	out[c.rank] = append([]byte(nil), parts[c.rank]...)
	for step := 1; step < n; step++ {
		dst := (c.rank + step) % n
		src := (c.rank - step + n) % n
		if err := c.proc.send(c.group[dst], c.itag(seq, step), parts[dst]); err != nil {
			return nil, err
		}
		b, err := c.proc.recv(c.group[src], c.itag(seq, step))
		if err != nil {
			return nil, err
		}
		out[src] = b
	}
	return out, nil
}

// packBlocks serializes the listed (rank, block) pairs.
func packBlocks(blocks [][]byte, ranks []int) []byte {
	size := 4
	for _, r := range ranks {
		size += 8 + len(blocks[r])
	}
	out := make([]byte, 0, size)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(ranks)))
	out = append(out, hdr[:4]...)
	for _, r := range ranks {
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(r))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(blocks[r])))
		out = append(out, hdr[:8]...)
		out = append(out, blocks[r]...)
	}
	return out
}

func unpackBlocks(b []byte) (map[int][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("simmpi: truncated block set (%d bytes)", len(b))
	}
	count := int(binary.LittleEndian.Uint32(b[:4]))
	b = b[4:]
	out := make(map[int][]byte, count)
	for i := 0; i < count; i++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("simmpi: truncated block header")
		}
		r := int(binary.LittleEndian.Uint32(b[0:4]))
		sz := int(binary.LittleEndian.Uint32(b[4:8]))
		b = b[8:]
		if len(b) < sz {
			return nil, fmt.Errorf("simmpi: truncated block body")
		}
		out[r] = append([]byte(nil), b[:sz]...)
		b = b[sz:]
	}
	return out, nil
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
