// Package simmpi is the message-passing substrate standing in for MPI
// (MPICH2 in the paper). Ranks run as goroutines inside one process and
// exchange byte payloads through mailboxes with MPI-style (source, tag)
// matching. Point-to-point sends are eager and buffered — a send never
// blocks — which is the communication model the paper's protocols assume
// (sender-based logging requires the sender to retain payloads anyway).
//
// Collective operations are implemented on top of point-to-point messages
// using the textbook algorithms MPICH2 uses at these scales: binomial-tree
// broadcast and reduce, recursive-doubling allgather/allreduce, dissemination
// barrier, and pairwise all-to-all. Because collectives decompose into
// point-to-point traffic, a Tracer observing sends reproduces exactly the
// patterns of the paper's Figure 5b, including the power-of-two allgather
// diagonals.
package simmpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Tag distinguishes messages between the same (source, destination) pair.
// User code must use non-negative tags; negative tags are reserved for
// collectives.
type Tag int64

// ErrAborted is returned from communication calls after any rank in the
// world has failed: the world tears down rather than deadlocking.
var ErrAborted = errors.New("simmpi: world aborted")

// Tracer observes every point-to-point payload, including those generated
// internally by collectives. Implementations must be safe for concurrent
// use; src and dst are world ranks.
type Tracer interface {
	Record(src, dst int, bytes int)
}

// Options configures a World.
type Options struct {
	// Tracer, if non-nil, observes all sends.
	Tracer Tracer
}

// World owns the mailboxes of a set of ranks.
type World struct {
	size    int
	tracer  Tracer
	boxes   []*mailbox
	aborted atomic.Bool
	ctxSeq  atomic.Int64 // allocator for communicator context ids
}

type message struct {
	src  int
	tag  Tag
	data []byte
}

type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrAborted
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Broadcast()
	return nil
}

// take blocks until a message with the given source and tag is available,
// then removes and returns it. Matching is FIFO per (src, tag) pair.
func (mb *mailbox) take(src int, tag Tag) ([]byte, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if m.src == src && m.tag == tag {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m.data, nil
			}
		}
		if mb.closed {
			return nil, ErrAborted
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// NewWorld creates a world of size ranks. Use Run to execute rank bodies, or
// Proc to drive ranks from externally managed goroutines.
func NewWorld(size int, opts Options) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("simmpi: world size %d must be positive", size)
	}
	w := &World{size: size, tracer: opts.Tracer, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w, nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Abort marks the world failed and unblocks every pending receive with
// ErrAborted.
func (w *World) Abort() {
	if w.aborted.CompareAndSwap(false, true) {
		for _, b := range w.boxes {
			b.close()
		}
	}
}

// Aborted reports whether the world has been torn down.
func (w *World) Aborted() bool { return w.aborted.Load() }

// Proc returns the handle rank uses for communication. Each rank must be
// driven from a single goroutine.
func (w *World) Proc(rank int) (*Proc, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("simmpi: rank %d out of range 0..%d", rank, w.size-1)
	}
	p := &Proc{world: w, rank: rank}
	group := make([]int, w.size)
	for i := range group {
		group[i] = i
	}
	p.comm = &Comm{proc: p, ctx: 0, group: group, rank: rank}
	return p, nil
}

// Run executes body once per rank, each in its own goroutine, and waits for
// all of them. The first non-nil error aborts the world (unblocking the
// others) and is returned.
func Run(size int, opts Options, body func(p *Proc) error) error {
	w, err := NewWorld(size, opts)
	if err != nil {
		return err
	}
	return w.Run(body)
}

// Run executes body once per rank of an existing world. See Run (package
// function) for semantics.
func (w *World) Run(body func(p *Proc) error) error {
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	for r := 0; r < w.size; r++ {
		p, err := w.Proc(r)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := body(p); err != nil {
				errOnce.Do(func() {
					firstErr = fmt.Errorf("simmpi: rank %d: %w", p.rank, err)
					w.Abort()
				})
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Proc is a rank's endpoint in a world.
type Proc struct {
	world *World
	rank  int
	comm  *Comm
}

// Rank returns the world rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.world.size }

// World returns the communicator spanning all ranks.
func (p *Proc) Comm() *Comm { return p.comm }

// send delivers data to the world-rank dst with an internal or user tag.
// The payload is copied, making eager buffered semantics safe for callers
// that reuse buffers.
func (p *Proc) send(dst int, tag Tag, data []byte) error {
	if dst < 0 || dst >= p.world.size {
		return fmt.Errorf("simmpi: send to rank %d out of range 0..%d", dst, p.world.size-1)
	}
	if p.world.aborted.Load() {
		return ErrAborted
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	if err := p.world.boxes[dst].put(message{src: p.rank, tag: tag, data: buf}); err != nil {
		return err
	}
	if t := p.world.tracer; t != nil {
		t.Record(p.rank, dst, len(data))
	}
	return nil
}

// recv blocks for a message from world-rank src with the given tag.
func (p *Proc) recv(src int, tag Tag) ([]byte, error) {
	if src < 0 || src >= p.world.size {
		return nil, fmt.Errorf("simmpi: recv from rank %d out of range 0..%d", src, p.world.size-1)
	}
	return p.world.boxes[p.rank].take(src, tag)
}
