package simmpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestCollectivesAgainstReferenceProperty drives every collective with
// random world sizes, roots, and payloads, and checks the results against
// straightforward reference computations.
func TestCollectivesAgainstReferenceProperty(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 131))
		n := 1 + rng.Intn(12)
		root := rng.Intn(n)
		payloads := make([][]byte, n)
		values := make([]float64, n)
		for r := 0; r < n; r++ {
			payloads[r] = make([]byte, 1+rng.Intn(64))
			rng.Read(payloads[r])
			values[r] = math.Round(rng.Float64() * 1000)
		}
		var sum float64
		for _, v := range values {
			sum += v
		}

		err := Run(n, Options{}, func(p *Proc) error {
			c := p.Comm()
			me := c.Rank()

			// Bcast: everyone ends with root's payload.
			got, err := c.Bcast(root, payloads[root])
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payloads[root]) {
				return fmt.Errorf("bcast: rank %d got wrong payload", me)
			}

			// Allgather: everyone ends with everyone's payload.
			all, err := c.Allgather(payloads[me])
			if err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if !bytes.Equal(all[r], payloads[r]) {
					return fmt.Errorf("allgather: rank %d block %d wrong", me, r)
				}
			}

			// Allreduce sum of one float64 per rank.
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, math.Float64bits(values[me]))
			red, err := c.Allreduce(buf, OpSumFloat64)
			if err != nil {
				return err
			}
			if got := math.Float64frombits(binary.LittleEndian.Uint64(red)); got != sum {
				return fmt.Errorf("allreduce: rank %d got %g, want %g", me, got, sum)
			}

			// Gather at root.
			g, err := c.Gather(root, payloads[me])
			if err != nil {
				return err
			}
			if me == root {
				for r := 0; r < n; r++ {
					if !bytes.Equal(g[r], payloads[r]) {
						return fmt.Errorf("gather: block %d wrong at root", r)
					}
				}
			} else if g != nil {
				return fmt.Errorf("gather: non-root rank %d got data", me)
			}

			// Alltoall with deterministic per-pair payloads.
			parts := make([][]byte, n)
			for d := 0; d < n; d++ {
				parts[d] = []byte{byte(me), byte(d), byte(me ^ d)}
			}
			a2a, err := c.Alltoall(parts)
			if err != nil {
				return err
			}
			for s := 0; s < n; s++ {
				want := []byte{byte(s), byte(me), byte(s ^ me)}
				if !bytes.Equal(a2a[s], want) {
					return fmt.Errorf("alltoall: rank %d slot %d = %v, want %v", me, s, a2a[s], want)
				}
			}

			// Scatter from root.
			var sparts [][]byte
			if me == root {
				sparts = make([][]byte, n)
				for r := 0; r < n; r++ {
					sparts[r] = payloads[r]
				}
			}
			sp, err := c.Scatter(root, sparts)
			if err != nil {
				return err
			}
			if !bytes.Equal(sp, payloads[me]) {
				return fmt.Errorf("scatter: rank %d wrong part", me)
			}

			return c.Barrier()
		})
		if err != nil {
			t.Fatalf("trial %d (n=%d root=%d): %v", trial, n, root, err)
		}
	}
}

// TestCollectiveSequences runs several different collectives back to back
// on the same communicator, which exercises the per-communicator sequence
// numbering that keeps rounds from cross-matching.
func TestCollectiveSequences(t *testing.T) {
	const n = 8
	err := Run(n, Options{}, func(p *Proc) error {
		c := p.Comm()
		for i := 0; i < 10; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			out, err := c.Bcast(i%n, []byte{byte(i)})
			if err != nil {
				return err
			}
			if out[0] != byte(i) {
				return fmt.Errorf("round %d: bcast returned %d", i, out[0])
			}
			all, err := c.Allgather([]byte{byte(c.Rank() + i)})
			if err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if all[r][0] != byte(r+i) {
					return fmt.Errorf("round %d: allgather block %d = %d", i, r, all[r][0])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNestedSplitCollectives splits twice and runs collectives on the
// grandchild communicators.
func TestNestedSplitCollectives(t *testing.T) {
	const n = 16
	err := Run(n, Options{}, func(p *Proc) error {
		c := p.Comm()
		half, err := c.Split(p.Rank()/8, p.Rank())
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/4, half.Rank())
		if err != nil {
			return err
		}
		if quarter.Size() != 4 {
			return fmt.Errorf("grandchild size = %d", quarter.Size())
		}
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, math.Float64bits(1))
		out, err := quarter.Allreduce(buf, OpSumFloat64)
		if err != nil {
			return err
		}
		if got := math.Float64frombits(binary.LittleEndian.Uint64(out)); got != 4 {
			return fmt.Errorf("grandchild allreduce = %g", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
