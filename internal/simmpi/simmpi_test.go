package simmpi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
)

// countingTracer records total bytes and message count per (src,dst).
type countingTracer struct {
	mu    sync.Mutex
	bytes map[[2]int]int
	msgs  int
}

func newCountingTracer() *countingTracer {
	return &countingTracer{bytes: map[[2]int]int{}}
}

func (t *countingTracer) Record(src, dst, n int) {
	t.mu.Lock()
	t.bytes[[2]int{src, dst}] += n
	t.msgs++
	t.mu.Unlock()
}

func f64s(vals ...float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func readF64(b []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
}

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		c := p.Comm()
		switch p.Rank() {
		case 0:
			return c.Send(1, 7, []byte("hello"))
		case 1:
			b, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if string(b) != "hello" {
				return fmt.Errorf("got %q", b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	// Messages with different tags must not match, regardless of order.
	err := Run(2, Options{}, func(p *Proc) error {
		c := p.Comm()
		if p.Rank() == 0 {
			if err := c.Send(1, 1, []byte("one")); err != nil {
				return err
			}
			return c.Send(1, 2, []byte("two"))
		}
		b2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		b1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(b1) != "one" || string(b2) != "two" {
			return fmt.Errorf("tag mismatch: %q %q", b1, b2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerTag(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		c := p.Comm()
		if p.Rank() == 0 {
			for i := 0; i < 50; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 50; i++ {
			b, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if b[0] != byte(i) {
				return fmt.Errorf("message %d arrived as %d", i, b[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		c := p.Comm()
		if p.Rank() == 0 {
			buf := []byte{1, 2, 3}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not affect the in-flight message
			return c.Send(1, 1, nil)
		}
		if _, err := c.Recv(0, 1); err != nil {
			return err
		}
		b, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if b[0] != 1 {
			return fmt.Errorf("payload mutated after send: %v", b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		c := p.Comm()
		if p.Rank() == 0 {
			r1 := c.Isend(1, 5, []byte("a"))
			r2 := c.Isend(1, 6, []byte("b"))
			return WaitAll(r1, r2)
		}
		r6 := c.Irecv(0, 6)
		r5 := c.Irecv(0, 5)
		b5, err := r5.Wait()
		if err != nil {
			return err
		}
		b6, err := r6.Wait()
		if err != nil {
			return err
		}
		if string(b5) != "a" || string(b6) != "b" {
			return fmt.Errorf("got %q %q", b5, b6)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvExchange(t *testing.T) {
	// Simultaneous neighbor exchange, the stencil pattern.
	err := Run(4, Options{}, func(p *Proc) error {
		c := p.Comm()
		n := c.Size()
		right := (c.Rank() + 1) % n
		left := (c.Rank() - 1 + n) % n
		got, err := c.SendRecv(right, 9, []byte{byte(c.Rank())}, left, 9)
		if err != nil {
			return err
		}
		if got[0] != byte(left) {
			return fmt.Errorf("rank %d received %d, want %d", c.Rank(), got[0], left)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankValidation(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		c := p.Comm()
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("send to rank 5 accepted")
		}
		if _, err := c.Recv(-1, 0); err == nil {
			return errors.New("recv from rank -1 accepted")
		}
		if err := c.Send(0, -3, nil); err == nil {
			return errors.New("negative user tag accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorld(0, Options{}); err == nil {
		t.Error("NewWorld accepted size 0")
	}
	w, _ := NewWorld(1, Options{})
	if _, err := w.Proc(1); err == nil {
		t.Error("Proc accepted out-of-range rank")
	}
}

func TestAbortUnblocksReceivers(t *testing.T) {
	err := Run(3, Options{}, func(p *Proc) error {
		c := p.Comm()
		if p.Rank() == 0 {
			return errors.New("rank 0 exploded")
		}
		// Ranks 1 and 2 wait for a message that never comes; the abort
		// must unblock them with ErrAborted rather than deadlocking.
		_, err := c.Recv(0, 0)
		if errors.Is(err, ErrAborted) {
			return nil
		}
		return fmt.Errorf("recv returned %v, want ErrAborted", err)
	})
	if err == nil || err.Error() != "simmpi: rank 0: rank 0 exploded" {
		t.Fatalf("Run error = %v", err)
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		var mu sync.Mutex
		arrived := 0
		err := Run(n, Options{}, func(p *Proc) error {
			c := p.Comm()
			mu.Lock()
			arrived++
			mu.Unlock()
			if err := c.Barrier(); err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			if arrived != n {
				return fmt.Errorf("rank %d passed barrier with only %d/%d arrived", p.Rank(), arrived, n)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 16} {
		for root := 0; root < n; root += max(1, n/3) {
			payload := []byte(fmt.Sprintf("payload-from-%d", root))
			err := Run(n, Options{}, func(p *Proc) error {
				c := p.Comm()
				var in []byte
				if c.Rank() == root {
					in = payload
				}
				out, err := c.Bcast(root, in)
				if err != nil {
					return err
				}
				if !bytes.Equal(out, payload) {
					return fmt.Errorf("rank %d got %q", c.Rank(), out)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
		}
	}
}

func TestBcastRootValidation(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		if _, err := p.Comm().Bcast(7, nil); err == nil {
			return errors.New("bcast accepted root 7")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 8, 11} {
		err := Run(n, Options{}, func(p *Proc) error {
			c := p.Comm()
			out, err := c.Reduce(0, f64s(float64(c.Rank()+1)), OpSumFloat64)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				want := float64(n*(n+1)) / 2
				if got := readF64(out, 0); got != want {
					return fmt.Errorf("sum = %g, want %g", got, want)
				}
			} else if out != nil {
				return fmt.Errorf("non-root rank %d got %v", c.Rank(), out)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAllreduceSumAndMax(t *testing.T) {
	const n = 8
	err := Run(n, Options{}, func(p *Proc) error {
		c := p.Comm()
		out, err := c.Allreduce(f64s(float64(c.Rank()), 1), OpSumFloat64)
		if err != nil {
			return err
		}
		if got := readF64(out, 0); got != 28 { // 0+..+7
			return fmt.Errorf("allreduce sum = %g, want 28", got)
		}
		if got := readF64(out, 1); got != n {
			return fmt.Errorf("allreduce count = %g, want %d", got, n)
		}
		out, err = c.Allreduce(f64s(float64(c.Rank()%3)), OpMaxFloat64)
		if err != nil {
			return err
		}
		if got := readF64(out, 0); got != 2 {
			return fmt.Errorf("allreduce max = %g, want 2", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpSumInt64(t *testing.T) {
	a := make([]byte, 8)
	b := make([]byte, 8)
	neg := int64(-5)
	binary.LittleEndian.PutUint64(a, uint64(neg))
	binary.LittleEndian.PutUint64(b, 12)
	out, err := OpSumInt64(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.LittleEndian.Uint64(out)); got != 7 {
		t.Errorf("sum = %d, want 7", got)
	}
	if _, err := OpSumInt64(a, []byte{1}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := OpSumFloat64(a, []byte{1}); err == nil {
		t.Error("OpSumFloat64 accepted mismatched lengths")
	}
	if _, err := OpMaxFloat64(a, []byte{1}); err == nil {
		t.Error("OpMaxFloat64 accepted mismatched lengths")
	}
}

func TestGather(t *testing.T) {
	const n = 5
	err := Run(n, Options{}, func(p *Proc) error {
		c := p.Comm()
		out, err := c.Gather(2, []byte{byte(c.Rank() * 10)})
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if out != nil {
				return fmt.Errorf("non-root got %v", out)
			}
			return nil
		}
		for r := 0; r < n; r++ {
			if out[r][0] != byte(r*10) {
				return fmt.Errorf("gather[%d] = %d", r, out[r][0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherPowerOfTwoAndNot(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 3, 6, 12} {
		err := Run(n, Options{}, func(p *Proc) error {
			c := p.Comm()
			out, err := c.Allgather([]byte(fmt.Sprintf("r%d", c.Rank())))
			if err != nil {
				return err
			}
			if len(out) != n {
				return fmt.Errorf("allgather returned %d blocks", len(out))
			}
			for r := 0; r < n; r++ {
				if string(out[r]) != fmt.Sprintf("r%d", r) {
					return fmt.Errorf("block %d = %q", r, out[r])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAllgatherRecursiveDoublingPattern(t *testing.T) {
	// For a power-of-two size the trace must show each rank talking only to
	// partners at XOR distances 1,2,4,... — the Fig. 5b diagonal pattern.
	tr := newCountingTracer()
	const n = 8
	err := Run(n, Options{Tracer: tr}, func(p *Proc) error {
		_, err := p.Comm().Allgather([]byte{byte(p.Rank())})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for pair := range tr.bytes {
		d := pair[0] ^ pair[1]
		if d != 1 && d != 2 && d != 4 {
			t.Errorf("allgather communicated %d->%d (xor distance %d); want powers of two", pair[0], pair[1], d)
		}
	}
	if tr.msgs != n*3 { // log2(8)=3 rounds, one send per rank per round
		t.Errorf("message count = %d, want %d", tr.msgs, n*3)
	}
}

func TestScatter(t *testing.T) {
	const n = 4
	err := Run(n, Options{}, func(p *Proc) error {
		c := p.Comm()
		var parts [][]byte
		if c.Rank() == 1 {
			for r := 0; r < n; r++ {
				parts = append(parts, []byte{byte(r + 100)})
			}
		}
		got, err := c.Scatter(1, parts)
		if err != nil {
			return err
		}
		if got[0] != byte(c.Rank()+100) {
			return fmt.Errorf("rank %d got %d", c.Rank(), got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterValidation(t *testing.T) {
	err := Run(2, Options{}, func(p *Proc) error {
		c := p.Comm()
		if c.Rank() == 0 {
			if _, err := c.Scatter(0, [][]byte{{1}}); err == nil {
				return errors.New("scatter accepted short parts")
			}
			// unblock rank 1 which waits in its (valid) scatter call
			return c.Send(1, 0, nil)
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		err := Run(n, Options{}, func(p *Proc) error {
			c := p.Comm()
			parts := make([][]byte, n)
			for r := range parts {
				parts[r] = []byte{byte(c.Rank()), byte(r)}
			}
			got, err := c.Alltoall(parts)
			if err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if got[r][0] != byte(r) || got[r][1] != byte(c.Rank()) {
					return fmt.Errorf("rank %d slot %d = %v", c.Rank(), r, got[r])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestSplit(t *testing.T) {
	// 8 ranks split into even/odd; even comm reverses order via key.
	err := Run(8, Options{}, func(p *Proc) error {
		c := p.Comm()
		color := p.Rank() % 2
		key := p.Rank()
		if color == 0 {
			key = -p.Rank() // reverse ordering for the even group
		}
		sub, err := c.Split(color, key)
		if err != nil {
			return err
		}
		if sub.Size() != 4 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		// Check translated membership.
		want := map[int][]int{
			0: {6, 4, 2, 0}, // reversed evens
			1: {1, 3, 5, 7},
		}
		g := sub.Group()
		for i, wr := range want[color] {
			if g[i] != wr {
				return fmt.Errorf("color %d group = %v", color, g)
			}
		}
		// The sub-communicator must work for collectives.
		out, err := sub.Allreduce(f64s(1), OpSumFloat64)
		if err != nil {
			return err
		}
		if got := readF64(out, 0); got != 4 {
			return fmt.Errorf("sub allreduce = %g", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefined(t *testing.T) {
	err := Run(4, Options{}, func(p *Proc) error {
		c := p.Comm()
		color := 0
		if p.Rank() == 3 {
			color = -1 // opt out
		}
		sub, err := c.Split(color, p.Rank())
		if err != nil {
			return err
		}
		if p.Rank() == 3 {
			if sub != nil {
				return errors.New("opted-out rank received a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size = %d, want 3", sub.Size())
		}
		return sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagIsolationAcrossComms(t *testing.T) {
	// The same user tag on world and a split comm must not cross-match.
	err := Run(2, Options{}, func(p *Proc) error {
		c := p.Comm()
		sub, err := c.Split(0, p.Rank())
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := c.Send(1, 42, []byte("world")); err != nil {
				return err
			}
			return sub.Send(1, 42, []byte("sub"))
		}
		bs, err := sub.Recv(0, 42)
		if err != nil {
			return err
		}
		bw, err := c.Recv(0, 42)
		if err != nil {
			return err
		}
		if string(bs) != "sub" || string(bw) != "world" {
			return fmt.Errorf("cross-communicator tag leak: %q %q", bs, bw)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTracerSeesPayloadBytes(t *testing.T) {
	tr := newCountingTracer()
	err := Run(2, Options{Tracer: tr}, func(p *Proc) error {
		c := p.Comm()
		if p.Rank() == 0 {
			return c.Send(1, 0, make([]byte, 1000))
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.bytes[[2]int{0, 1}]; got != 1000 {
		t.Errorf("traced bytes = %d, want 1000", got)
	}
}

func TestLargeWorldStencilSweep(t *testing.T) {
	// 256 ranks doing 10 iterations of neighbor exchange + allreduce:
	// a smoke test that the runtime scales to the experiment sizes.
	const n, iters = 256, 10
	err := Run(n, Options{}, func(p *Proc) error {
		c := p.Comm()
		for it := 0; it < iters; it++ {
			if c.Rank() > 0 {
				if err := c.Send(c.Rank()-1, Tag(it), []byte{1}); err != nil {
					return err
				}
			}
			if c.Rank() < n-1 {
				if err := c.Send(c.Rank()+1, Tag(it), []byte{1}); err != nil {
					return err
				}
				if _, err := c.Recv(c.Rank()+1, Tag(it)); err != nil {
					return err
				}
			}
			if c.Rank() > 0 {
				if _, err := c.Recv(c.Rank()-1, Tag(it)); err != nil {
					return err
				}
			}
			if _, err := c.Allreduce(f64s(1), OpSumFloat64); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
