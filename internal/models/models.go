// Package models collects the analytic performance models the paper's
// clustering study leans on: the optimal checkpoint-interval formula
// (Young/Daly), the message-log memory-footprint model that motivates the
// "log at most 20% of traffic" requirement, and a multi-level waste model
// used to compare checkpoint configurations (the cost-function role of the
// paper's references [3] and [24]).
package models

import (
	"fmt"
	"math"
)

// YoungInterval returns Young's first-order optimal checkpoint interval
// sqrt(2·C·M) for checkpoint cost C and MTBF M (both in seconds).
func YoungInterval(checkpointCost, mtbf float64) float64 {
	if checkpointCost <= 0 || mtbf <= 0 {
		return 0
	}
	return math.Sqrt(2 * checkpointCost * mtbf)
}

// DalyInterval returns Daly's higher-order optimum, which corrects Young's
// formula when the checkpoint cost is not small relative to the MTBF.
func DalyInterval(checkpointCost, mtbf float64) float64 {
	if checkpointCost <= 0 || mtbf <= 0 {
		return 0
	}
	if checkpointCost < 2*mtbf {
		x := checkpointCost / (2 * mtbf)
		return math.Sqrt(2*checkpointCost*mtbf) * (1 + math.Sqrt(x)/3 + x/9) // Daly 2006
	}
	return mtbf
}

// WasteFraction returns the expected fraction of machine time lost to fault
// tolerance for a periodic checkpoint scheme: interval T, checkpoint cost C,
// restart cost R, MTBF M, assuming exponential failures and an average of
// half an interval of lost work per failure.
func WasteFraction(interval, checkpointCost, restartCost, mtbf float64) (float64, error) {
	if interval <= 0 || mtbf <= 0 {
		return 0, fmt.Errorf("models: interval %g and mtbf %g must be positive", interval, mtbf)
	}
	if checkpointCost < 0 || restartCost < 0 {
		return 0, fmt.Errorf("models: negative costs C=%g R=%g", checkpointCost, restartCost)
	}
	// checkpoint overhead per unit work + failure loss per unit time
	ckpt := checkpointCost / (interval + checkpointCost)
	failLoss := (restartCost + interval/2) / mtbf
	w := ckpt + failLoss
	if w > 1 {
		w = 1
	}
	return w, nil
}

// LogMemory models sender-based message-log growth: an application
// communicating commBytesPerSec per process, of which loggedFraction
// crosses cluster boundaries, fills log memory at that product rate.
type LogMemory struct {
	// CommBytesPerSec is each process's outbound communication rate.
	CommBytesPerSec float64
	// LoggedFraction is the share of traffic crossing cluster boundaries.
	LoggedFraction float64
	// Budget is the memory available for logs per process, in bytes.
	Budget float64
}

// FillTime returns the seconds until the log budget is exhausted (+Inf when
// nothing is logged). Log memory is reclaimed at each coordinated
// checkpoint, so FillTime must exceed the checkpoint interval for the
// protocol to be sustainable — the quantitative form of the paper's "log at
// most 20%" requirement.
func (l *LogMemory) FillTime() float64 {
	rate := l.CommBytesPerSec * l.LoggedFraction
	if rate <= 0 {
		return math.Inf(1)
	}
	return l.Budget / rate
}

// Sustainable reports whether logging survives a checkpoint interval.
func (l *LogMemory) Sustainable(checkpointInterval float64) bool {
	return l.FillTime() >= checkpointInterval
}

// MultiLevel models a multi-level checkpoint scheme in the style of FTI/SCR:
// each level has a cost to take a checkpoint and a probability that a
// failure requires at least that level to recover.
type MultiLevel struct {
	// Costs[i] is the seconds to take a level-i checkpoint.
	Costs []float64
	// Frequency[i] is how many level-i checkpoints are taken per level-
	// (i+1) checkpoint (the innermost level is taken most often).
	Frequency []int
	// RecoveryProb[i] is the probability that a random failure is
	// recoverable at level i but not below.
	RecoveryProb []float64
	// RestartCosts[i] is the seconds to restart from level i.
	RestartCosts []float64
}

// Validate reports structural errors.
func (m *MultiLevel) Validate() error {
	n := len(m.Costs)
	if n == 0 {
		return fmt.Errorf("models: multi-level scheme has no levels")
	}
	if len(m.Frequency) != n || len(m.RecoveryProb) != n || len(m.RestartCosts) != n {
		return fmt.Errorf("models: level arrays disagree: %d costs, %d freq, %d prob, %d restart",
			n, len(m.Frequency), len(m.RecoveryProb), len(m.RestartCosts))
	}
	var p float64
	for i, f := range m.Frequency {
		if f <= 0 {
			return fmt.Errorf("models: level %d frequency %d must be positive", i, f)
		}
		if m.Costs[i] < 0 || m.RestartCosts[i] < 0 || m.RecoveryProb[i] < 0 {
			return fmt.Errorf("models: level %d has negative parameters", i)
		}
		p += m.RecoveryProb[i]
	}
	if p > 1+1e-9 {
		return fmt.Errorf("models: recovery probabilities sum to %g > 1", p)
	}
	return nil
}

// CycleCost returns the checkpointing seconds spent per full outer cycle
// (one checkpoint of the outermost level and all nested inner checkpoints).
func (m *MultiLevel) CycleCost() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	// Count level-i checkpoints per outer cycle: product of frequencies of
	// the levels above it.
	total := 0.0
	mult := 1
	for i := len(m.Costs) - 1; i >= 0; i-- {
		total += float64(mult) * m.Costs[i] * float64(m.Frequency[i])
		mult *= m.Frequency[i]
	}
	return total, nil
}

// ExpectedRestart returns the mean restart cost over the failure mix.
func (m *MultiLevel) ExpectedRestart() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	var c float64
	for i, p := range m.RecoveryProb {
		c += p * m.RestartCosts[i]
	}
	return c, nil
}

// EncodeThroughputGBps converts a measured encode duration for a byte count
// into GB/s, for reporting measured encode rates next to the paper's
// seconds-per-GB numbers.
func EncodeThroughputGBps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / 1e9 / seconds
}
