package models

import (
	"math"
	"testing"
	"testing/quick"
)

func TestYoungInterval(t *testing.T) {
	// C=50s, M=3600s: sqrt(2*50*3600) = 600s
	if got := YoungInterval(50, 3600); math.Abs(got-600) > 1e-9 {
		t.Errorf("YoungInterval = %g, want 600", got)
	}
	if YoungInterval(0, 100) != 0 || YoungInterval(10, 0) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestDalyIntervalReducesToYoungForSmallC(t *testing.T) {
	young := YoungInterval(1, 1e6)
	daly := DalyInterval(1, 1e6)
	if math.Abs(daly-young)/young > 0.01 {
		t.Errorf("Daly %g should approach Young %g for C<<M", daly, young)
	}
	// for large C it saturates at the MTBF
	if got := DalyInterval(5000, 100); got != 100 {
		t.Errorf("DalyInterval(C>2M) = %g, want MTBF", got)
	}
	if DalyInterval(0, 100) != 0 {
		t.Error("degenerate input should yield 0")
	}
}

func TestWasteFraction(t *testing.T) {
	// interval 600, C 50, R 100, M 3600:
	// ckpt = 50/650; fail = (100+300)/3600
	w, err := WasteFraction(600, 50, 100, 3600)
	if err != nil {
		t.Fatal(err)
	}
	want := 50.0/650.0 + 400.0/3600.0
	if math.Abs(w-want) > 1e-12 {
		t.Errorf("waste = %g, want %g", w, want)
	}
	if _, err := WasteFraction(0, 1, 1, 1); err == nil {
		t.Error("accepted zero interval")
	}
	if _, err := WasteFraction(1, -1, 1, 1); err == nil {
		t.Error("accepted negative cost")
	}
	// saturation at 1
	w, _ = WasteFraction(1, 1000, 1000, 1)
	if w != 1 {
		t.Errorf("waste = %g, want capped at 1", w)
	}
}

func TestWasteMinimizedNearYoung(t *testing.T) {
	// The Young interval should be close to the argmin of WasteFraction.
	const c, m = 50.0, 3600.0
	young := YoungInterval(c, m)
	wy, _ := WasteFraction(young, c, 0, m)
	for _, factor := range []float64{0.25, 0.5, 2, 4} {
		w, _ := WasteFraction(young*factor, c, 0, m)
		if w < wy-1e-3 {
			t.Errorf("waste at %g×Young (%g) below waste at Young (%g)", factor, w, wy)
		}
	}
}

func TestLogMemory(t *testing.T) {
	l := &LogMemory{CommBytesPerSec: 100e6, LoggedFraction: 0.2, Budget: 2e9}
	// 20 MB/s logged, 2 GB budget → 100 s
	if got := l.FillTime(); math.Abs(got-100) > 1e-9 {
		t.Errorf("FillTime = %g, want 100", got)
	}
	if !l.Sustainable(99) || l.Sustainable(101) {
		t.Error("Sustainable threshold wrong")
	}
	idle := &LogMemory{CommBytesPerSec: 100, LoggedFraction: 0, Budget: 1}
	if !math.IsInf(idle.FillTime(), 1) {
		t.Error("zero logging should never fill")
	}
}

func TestLogMemoryFractionMonotone(t *testing.T) {
	f := func(fracRaw uint8) bool {
		fa := float64(fracRaw%100) / 100
		fb := fa + 0.01
		la := &LogMemory{CommBytesPerSec: 1e6, LoggedFraction: fa, Budget: 1e9}
		lb := &LogMemory{CommBytesPerSec: 1e6, LoggedFraction: fb, Budget: 1e9}
		return lb.FillTime() <= la.FillTime()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func validScheme() *MultiLevel {
	return &MultiLevel{
		Costs:        []float64{2, 10, 60}, // local, RS-encode, PFS
		Frequency:    []int{8, 4, 1},       // 8 locals per encode, 4 encodes per PFS
		RecoveryProb: []float64{0.55, 0.40, 0.04},
		RestartCosts: []float64{5, 30, 300},
	}
}

func TestMultiLevelValidate(t *testing.T) {
	if err := validScheme().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := validScheme()
	bad.Frequency[0] = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero frequency")
	}
	bad2 := validScheme()
	bad2.RecoveryProb = []float64{0.9, 0.9, 0.9}
	if err := bad2.Validate(); err == nil {
		t.Error("accepted probabilities summing over 1")
	}
	bad3 := validScheme()
	bad3.Costs = bad3.Costs[:2]
	if err := bad3.Validate(); err == nil {
		t.Error("accepted mismatched level arrays")
	}
	empty := &MultiLevel{}
	if err := empty.Validate(); err == nil {
		t.Error("accepted empty scheme")
	}
	neg := validScheme()
	neg.RestartCosts[1] = -1
	if err := neg.Validate(); err == nil {
		t.Error("accepted negative restart cost")
	}
}

func TestMultiLevelCycleCost(t *testing.T) {
	m := validScheme()
	// Outer cycle: 1 PFS ckpt (60), 4 encodes (4*10), each encode preceded
	// by 8 locals → 32 locals (32*2).
	got, err := m.CycleCost()
	if err != nil {
		t.Fatal(err)
	}
	want := 60.0 + 4*10.0 + 32*2.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("CycleCost = %g, want %g", got, want)
	}
	bad := &MultiLevel{}
	if _, err := bad.CycleCost(); err == nil {
		t.Error("CycleCost accepted invalid scheme")
	}
}

func TestMultiLevelExpectedRestart(t *testing.T) {
	m := validScheme()
	got, err := m.ExpectedRestart()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.55*5 + 0.40*30 + 0.04*300
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedRestart = %g, want %g", got, want)
	}
	bad := &MultiLevel{}
	if _, err := bad.ExpectedRestart(); err == nil {
		t.Error("ExpectedRestart accepted invalid scheme")
	}
}

func TestCheaperInnerLevelsReduceCycleCost(t *testing.T) {
	// The multi-level premise: moving checkpoints from PFS to local+encode
	// reduces cost versus PFS-only at equal total checkpoint count.
	multi := validScheme()
	costMulti, _ := multi.CycleCost()
	pfsOnly := &MultiLevel{
		Costs:        []float64{60},
		Frequency:    []int{37}, // same number of checkpoints in the cycle
		RecoveryProb: []float64{1},
		RestartCosts: []float64{300},
	}
	costPFS, _ := pfsOnly.CycleCost()
	if costMulti >= costPFS {
		t.Errorf("multi-level cycle %g not cheaper than PFS-only %g", costMulti, costPFS)
	}
}

func TestEncodeThroughputGBps(t *testing.T) {
	if got := EncodeThroughputGBps(2e9, 4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("throughput = %g, want 0.5", got)
	}
	if EncodeThroughputGBps(100, 0) != 0 {
		t.Error("zero seconds should yield 0")
	}
}
