package trace

import (
	"fmt"
	"math"
	"strings"
)

// Heatmap renders the byte matrix for human inspection, reproducing the
// log-scale communication heatmaps of the paper's Figures 5a/5b. Intensity
// buckets are logarithmic in bytes, matching the paper's 0.1..1e8 color bar.

// asciiShades orders glyphs from empty to densest.
var asciiShades = []byte(" .:-=+*#%@")

// ASCIIHeatmap renders at most maxDim rows/columns (downsampling by max
// when the matrix is larger), one glyph per cell, log-bucketed by bytes.
// Row = receiver, column = sender, origin at top-left, matching Fig. 5a's
// axes (sender on x, receiver on y).
func (m *Matrix) ASCIIHeatmap(maxDim int) string {
	if maxDim <= 0 {
		maxDim = 64
	}
	dim := m.N
	factor := 1
	for dim > maxDim {
		factor *= 2
		dim = (m.N + factor - 1) / factor
	}
	// Downsample by taking the max byte count in each factor×factor block.
	cells := make([][]int64, dim)
	var peak int64
	for i := range cells {
		cells[i] = make([]int64, dim)
	}
	for s := 0; s < m.N; s++ {
		for d, b := range m.Bytes[s] {
			if b == 0 {
				continue
			}
			cs, cd := s/factor, d/factor
			if b > cells[cd][cs] {
				cells[cd][cs] = b // row=receiver, col=sender
			}
			if b > peak {
				peak = b
			}
		}
	}
	if peak == 0 {
		peak = 1
	}
	logPeak := math.Log1p(float64(peak))
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d x %d ranks (cell = %d ranks), peak %d bytes\n", m.N, m.N, factor, peak)
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			b := cells[r][c]
			if b == 0 {
				sb.WriteByte(asciiShades[0])
				continue
			}
			level := math.Log1p(float64(b)) / logPeak
			idx := 1 + int(level*float64(len(asciiShades)-2)+0.5)
			if idx >= len(asciiShades) {
				idx = len(asciiShades) - 1
			}
			sb.WriteByte(asciiShades[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// PGM renders the full matrix as a binary-ascii PGM (portable graymap)
// image, one pixel per (sender, receiver) cell with log-scaled intensity —
// directly viewable or convertible, for regenerating Fig. 5a/5b plots.
func (m *Matrix) PGM() string {
	var peak int64
	for _, row := range m.Bytes {
		for _, b := range row {
			if b > peak {
				peak = b
			}
		}
	}
	if peak == 0 {
		peak = 1
	}
	logPeak := math.Log1p(float64(peak))
	var sb strings.Builder
	fmt.Fprintf(&sb, "P2\n%d %d\n255\n", m.N, m.N)
	for r := 0; r < m.N; r++ { // row = receiver
		for c := 0; c < m.N; c++ { // col = sender
			b := m.Bytes[c][r]
			v := 0
			if b > 0 {
				v = int(math.Log1p(float64(b)) / logPeak * 255)
				if v == 0 {
					v = 1
				}
			}
			if c > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Submatrix returns the traffic among ranks [lo, hi), re-indexed from 0 —
// the zoom operation of Figure 5b (first 68 ranks).
func (m *Matrix) Submatrix(lo, hi int) (*Matrix, error) {
	if lo < 0 || hi > m.N || lo >= hi {
		return nil, fmt.Errorf("trace: submatrix [%d,%d) of %d ranks", lo, hi, m.N)
	}
	out := NewMatrix(hi - lo)
	for s := lo; s < hi; s++ {
		for d := lo; d < hi; d++ {
			if m.Bytes[s][d] != 0 || m.Msgs[s][d] != 0 {
				out.setCell(s-lo, d-lo, m.Bytes[s][d], m.Msgs[s][d])
			}
		}
	}
	return out, nil
}
