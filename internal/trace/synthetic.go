package trace

import "fmt"

// Synthetic communication-matrix generation. The paper's traces come from
// instrumented tsunami runs, which caps the evaluable scale at whatever the
// simulated MPI runtime can execute (§V stops at 1024 ranks). The patterns
// those traces exhibit — nearest-neighbor ghost exchange from a 1-D slab or
// 2-D block domain decomposition — are regular enough to generate directly
// in CSR form, so clustering and reliability evaluation can run at 100k+
// ranks without a trace run.

// SyntheticPattern selects the generated communication structure.
type SyntheticPattern int

const (
	// Stencil1D is a 1-D slab decomposition: rank r exchanges ghost rows
	// with r-1 and r+1 — the tsunami application's pattern.
	Stencil1D SyntheticPattern = iota
	// Stencil2D is a 2-D block decomposition on a Width-wide grid: rank r
	// exchanges with r±1 (same grid row) and r±Width (adjacent rows).
	Stencil2D
)

// SyntheticOptions tunes the generated trace. The zero value produces a
// 1-D stencil with the tsunami run's default volume.
type SyntheticOptions struct {
	// Pattern is the communication structure (default Stencil1D).
	Pattern SyntheticPattern
	// Width is the grid width for Stencil2D; 0 derives a near-square grid.
	// Ignored for Stencil1D.
	Width int
	// Iterations is the number of exchange rounds (default 100, the
	// paper's traced iteration count).
	Iterations int
	// BytesPerMsg is the payload of one neighbor exchange message
	// (default 1536 = 3 ghost rows × 64 columns × 8 bytes, matching the
	// quick-scale tsunami ghost exchange).
	BytesPerMsg int64
}

func (o *SyntheticOptions) normalize(n int) error {
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if o.BytesPerMsg <= 0 {
		o.BytesPerMsg = 1536
	}
	if o.Pattern == Stencil2D {
		if o.Width == 0 {
			w := 1
			for (w<<1)*(w<<1) <= n {
				w <<= 1
			}
			o.Width = w
		}
		if o.Width <= 0 || o.Width > n {
			return fmt.Errorf("trace: synthetic grid width %d out of range 1..%d", o.Width, n)
		}
	}
	return nil
}

// Synthetic generates a deterministic communication matrix for n ranks
// directly in CSR form — O(n) memory and time, no message-passing run
// required. Both directions of every exchange are recorded, mirroring what
// a Recorder would capture from a real stencil run.
func Synthetic(n int, opts SyntheticOptions) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: synthetic trace needs at least 1 rank, got %d", n)
	}
	if err := opts.normalize(n); err != nil {
		return nil, err
	}
	bytes := opts.BytesPerMsg * int64(opts.Iterations)
	msgs := int64(opts.Iterations)

	c := &CSR{n: n, rowPtr: make([]int64, n+1)}
	neighbors := func(r int) []int {
		switch opts.Pattern {
		case Stencil2D:
			w := opts.Width
			out := make([]int, 0, 4)
			if r-w >= 0 {
				out = append(out, r-w)
			}
			if r%w != 0 {
				out = append(out, r-1)
			}
			if r%w != w-1 && r+1 < n {
				out = append(out, r+1)
			}
			if r+w < n {
				out = append(out, r+w)
			}
			return out
		default: // Stencil1D
			out := make([]int, 0, 2)
			if r > 0 {
				out = append(out, r-1)
			}
			if r+1 < n {
				out = append(out, r+1)
			}
			return out
		}
	}
	for r := 0; r < n; r++ {
		nb := neighbors(r) // ascending by construction
		for _, d := range nb {
			c.col = append(c.col, int32(d))
			c.bytes = append(c.bytes, bytes)
			c.msgs = append(c.msgs, msgs)
			c.totalBytes += bytes
			c.totalMsgs += msgs
		}
		c.rowPtr[r+1] = int64(len(c.col))
	}
	return c, nil
}
