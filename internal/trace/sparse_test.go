package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hierclust/internal/topology"
)

// randomMatrices builds the same random traffic into a dense Matrix and a
// SparseBuilder, returning both views.
func randomMatrices(t *testing.T, seed int64, n, adds int) (*Matrix, *CSR) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dense := NewMatrix(n)
	sparse := NewSparseBuilder(n)
	for i := 0; i < adds; i++ {
		s, d := rng.Intn(n), rng.Intn(n)
		b := int64(rng.Intn(10_000) + 1)
		if err := dense.Add(s, d, b); err != nil {
			t.Fatal(err)
		}
		if err := sparse.Add(s, d, b); err != nil {
			t.Fatal(err)
		}
	}
	return dense, sparse.Freeze()
}

func randomPart(rng *rand.Rand, n, parts int) []int {
	part := make([]int, n)
	for i := range part {
		part[i] = rng.Intn(parts)
	}
	return part
}

// Property: the dense and CSR paths agree on every metric the clustering
// pipeline consumes — totals, cut bytes, logged fraction — and on the
// derived graphs (cut weight, modularity, total weight).
func TestCSRDenseEquivalenceProperty(t *testing.T) {
	f := func(seed int64, nRaw, addsRaw uint8) bool {
		n := int(nRaw%30) + 2
		adds := int(addsRaw) + 1
		dense, csr := randomMatrices(t, seed, n, adds)
		if dense.TotalBytes() != csr.TotalBytes() || dense.TotalMsgs() != csr.TotalMsgs() {
			t.Logf("totals: dense %d/%d, csr %d/%d", dense.TotalBytes(), dense.TotalMsgs(), csr.TotalBytes(), csr.TotalMsgs())
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		part := randomPart(rng, n, 3)
		dc, err1 := dense.CutBytes(part)
		sc, err2 := csr.CutBytes(part)
		if err1 != nil || err2 != nil || dc != sc {
			t.Logf("cut: dense %d (%v), csr %d (%v)", dc, err1, sc, err2)
			return false
		}
		dl, _ := dense.LoggedFraction(part)
		sl, _ := csr.LoggedFraction(part)
		if dl != sl {
			t.Logf("logged: dense %g csr %g", dl, sl)
			return false
		}
		dg, sg := dense.ToGraph(), csr.ToGraph()
		if dg.TotalWeight() != sg.TotalWeight() || dg.EdgeCount() != sg.EdgeCount() {
			t.Logf("graphs: weight %g/%g edges %d/%d", dg.TotalWeight(), sg.TotalWeight(), dg.EdgeCount(), sg.EdgeCount())
			return false
		}
		dcw, _ := dg.CutWeight(part)
		scw, _ := sg.CutWeight(part)
		if dcw != scw {
			t.Logf("graph cut: %g vs %g", dcw, scw)
			return false
		}
		dm, _ := dg.Modularity(part)
		sm, _ := sg.Modularity(part)
		diff := dm - sm
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-9 {
			t.Logf("modularity: %g vs %g", dm, sm)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: round-tripping through the conversions preserves every cell.
func TestCSRConversionRoundTrip(t *testing.T) {
	dense, csr := randomMatrices(t, 42, 17, 300)
	back := csr.ToDense()
	for s := 0; s < dense.N; s++ {
		for d := 0; d < dense.N; d++ {
			if back.Bytes[s][d] != dense.Bytes[s][d] || back.Msgs[s][d] != dense.Msgs[s][d] {
				t.Fatalf("cell (%d,%d) mismatch after round trip", s, d)
			}
			cb, cm := csr.At(s, d)
			if cb != dense.Bytes[s][d] || cm != dense.Msgs[s][d] {
				t.Fatalf("At(%d,%d) = %d/%d, want %d/%d", s, d, cb, cm, dense.Bytes[s][d], dense.Msgs[s][d])
			}
		}
	}
	viaDense := dense.ToCSR()
	if viaDense.NNZ() != csr.NNZ() || viaDense.TotalBytes() != csr.TotalBytes() {
		t.Fatalf("ToCSR: nnz %d/%d bytes %d/%d", viaDense.NNZ(), csr.NNZ(), viaDense.TotalBytes(), csr.TotalBytes())
	}
}

func TestCSRNodeGraphMatchesDense(t *testing.T) {
	mach := &topology.Machine{Name: "t", Nodes: 8}
	p, err := topology.Block(mach, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	dense, csr := randomMatrices(t, 7, 32, 400)
	dg, err := dense.NodeGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := csr.NodeGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if dg.N() != sg.N() {
		t.Fatalf("node graphs differ in size: %d vs %d", dg.N(), sg.N())
	}
	for u := 0; u < dg.N(); u++ {
		for v := 0; v < dg.N(); v++ {
			if dg.Weight(u, v) != sg.Weight(u, v) {
				t.Fatalf("node weight (%d,%d): dense %g csr %g", u, v, dg.Weight(u, v), sg.Weight(u, v))
			}
		}
	}
}

func TestCSRSymmetrize(t *testing.T) {
	b := NewSparseBuilder(4)
	_ = b.Add(0, 1, 10)
	_ = b.Add(1, 0, 5)
	_ = b.Add(2, 3, 7)
	_ = b.Add(1, 1, 3) // self-loop
	sym := b.Freeze().Symmetrize()
	check := func(s, d int, want int64) {
		t.Helper()
		got, _ := sym.At(s, d)
		if got != want {
			t.Errorf("sym(%d,%d) = %d, want %d", s, d, got, want)
		}
	}
	check(0, 1, 15)
	check(1, 0, 15)
	check(2, 3, 7)
	check(3, 2, 7)
	check(1, 1, 3)
	// Totals sum every stored cell (both directions), keeping
	// CutBytes/TotalBytes a true fraction.
	if sym.TotalBytes() != 15+15+7+7+3 {
		t.Errorf("sym total = %d, want 47", sym.TotalBytes())
	}
	lf, err := sym.LoggedFraction([]int{0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if lf < 0 || lf > 1 {
		t.Errorf("symmetrized LoggedFraction = %g outside [0,1]", lf)
	}
}

// Zero-byte messages (empty-payload syncs) must behave identically on both
// paths: the cell records the message, and graph/node conversions drop it
// exactly like the dense implementations do.
func TestZeroByteMessageEquivalence(t *testing.T) {
	dense := NewMatrix(6)
	sparse := NewSparseBuilder(6)
	for _, m := range [][2]int{{0, 1}, {2, 3}, {2, 3}} {
		if err := dense.Add(m[0], m[1], 0); err != nil {
			t.Fatal(err)
		}
		if err := sparse.Add(m[0], m[1], 0); err != nil {
			t.Fatal(err)
		}
	}
	_ = dense.Add(4, 5, 100)
	_ = sparse.Add(4, 5, 100)
	csr := sparse.Freeze()
	if dense.TotalMsgs() != csr.TotalMsgs() || dense.TotalBytes() != csr.TotalBytes() {
		t.Fatalf("totals: %d/%d vs %d/%d", dense.TotalBytes(), dense.TotalMsgs(), csr.TotalBytes(), csr.TotalMsgs())
	}
	dg, sg := dense.ToGraph(), csr.ToGraph()
	if dg.EdgeCount() != sg.EdgeCount() || len(dg.Components()) != len(sg.Components()) {
		t.Errorf("graphs diverge on zero-byte cells: edges %d/%d components %d/%d",
			dg.EdgeCount(), sg.EdgeCount(), len(dg.Components()), len(sg.Components()))
	}
	mach := &topology.Machine{Name: "t", Nodes: 3}
	p, err := topology.Block(mach, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := dense.NodeMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := csr.NodeCSR(p)
	if err != nil {
		t.Fatal(err)
	}
	if dn.TotalMsgs() != sn.TotalMsgs() || dn.TotalBytes() != sn.TotalBytes() {
		t.Errorf("node aggregation diverges: %d/%d vs %d/%d",
			dn.TotalBytes(), dn.TotalMsgs(), sn.TotalBytes(), sn.TotalMsgs())
	}
}

func TestSparseRecorderMatchesRecorder(t *testing.T) {
	dense := NewRecorder(8)
	sparse := NewSparseRecorder(8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		s, d, b := rng.Intn(8), rng.Intn(8), rng.Intn(1000)+1
		dense.Record(s, d, b)
		sparse.Record(s, d, b)
	}
	dense.Record(9, 0, 10) // out of range: both must ignore
	sparse.Record(9, 0, 10)
	m, c := dense.Matrix(), sparse.Freeze()
	if m.TotalBytes() != c.TotalBytes() || m.TotalMsgs() != c.TotalMsgs() {
		t.Fatalf("recorder totals differ: %d/%d vs %d/%d", m.TotalBytes(), m.TotalMsgs(), c.TotalBytes(), c.TotalMsgs())
	}
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if cb, cm := c.At(s, d); cb != m.Bytes[s][d] || cm != m.Msgs[s][d] {
				t.Fatalf("cell (%d,%d): %d/%d vs %d/%d", s, d, cb, cm, m.Bytes[s][d], m.Msgs[s][d])
			}
		}
	}
}

func TestCSRSerializeRoundTrip(t *testing.T) {
	dense, csr := randomMatrices(t, 11, 13, 150)
	var denseBuf, csrBuf bytes.Buffer
	if _, err := dense.WriteTo(&denseBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := csr.WriteTo(&csrBuf); err != nil {
		t.Fatal(err)
	}
	// CSR written bytes must be readable by both readers.
	fromCSRBytes, err := ReadMatrix(bytes.NewReader(csrBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sparseFromDense, err := ReadCSR(bytes.NewReader(denseBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if fromCSRBytes.TotalBytes() != dense.TotalBytes() || sparseFromDense.TotalBytes() != dense.TotalBytes() {
		t.Fatalf("serialized totals differ: %d / %d / %d",
			fromCSRBytes.TotalBytes(), sparseFromDense.TotalBytes(), dense.TotalBytes())
	}
	for s := 0; s < dense.N; s++ {
		for d := 0; d < dense.N; d++ {
			if fromCSRBytes.Bytes[s][d] != dense.Bytes[s][d] {
				t.Fatalf("dense reader cell (%d,%d) mismatch", s, d)
			}
			if b, m := sparseFromDense.At(s, d); b != dense.Bytes[s][d] || m != dense.Msgs[s][d] {
				t.Fatalf("sparse reader cell (%d,%d) mismatch", s, d)
			}
		}
	}
}

func TestSyntheticStencil1D(t *testing.T) {
	const n, iters = 16, 10
	var perMsg int64 = 100
	c, err := Synthetic(n, SyntheticOptions{Iterations: iters, BytesPerMsg: perMsg})
	if err != nil {
		t.Fatal(err)
	}
	// 2(n-1) directed neighbor pairs, each carrying iters messages.
	wantPairs := 2 * (n - 1)
	if c.NNZ() != wantPairs {
		t.Errorf("nnz = %d, want %d", c.NNZ(), wantPairs)
	}
	if c.TotalMsgs() != int64(wantPairs)*iters {
		t.Errorf("total msgs = %d, want %d", c.TotalMsgs(), int64(wantPairs)*iters)
	}
	if c.TotalBytes() != int64(wantPairs)*iters*perMsg {
		t.Errorf("total bytes = %d, want %d", c.TotalBytes(), int64(wantPairs)*iters*perMsg)
	}
	for r := 0; r < n; r++ {
		for d := 0; d < n; d++ {
			b, _ := c.At(r, d)
			adjacent := d == r-1 || d == r+1
			if adjacent && b != perMsg*iters {
				t.Errorf("pair (%d,%d) = %d bytes, want %d", r, d, b, perMsg*iters)
			}
			if !adjacent && b != 0 {
				t.Errorf("non-neighbor pair (%d,%d) carries %d bytes", r, d, b)
			}
		}
	}
}

func TestSyntheticStencil2D(t *testing.T) {
	const n, w = 24, 6 // 4 rows x 6 cols
	c, err := Synthetic(n, SyntheticOptions{Pattern: Stencil2D, Width: w, Iterations: 1, BytesPerMsg: 1})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		row, col := r/w, r%w
		for d := 0; d < n; d++ {
			b, _ := c.At(r, d)
			dr, dc := d/w, d%w
			vertical := dc == col && (dr == row-1 || dr == row+1)
			horizontal := dr == row && (dc == col-1 || dc == col+1)
			if (vertical || horizontal) != (b > 0) {
				t.Errorf("pair (%d,%d): bytes=%d, vertical=%v horizontal=%v", r, d, b, vertical, horizontal)
			}
		}
	}
	// Symmetric pattern: every directed edge has its reverse.
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			sb, _ := c.At(s, d)
			db, _ := c.At(d, s)
			if sb != db {
				t.Errorf("asymmetric synthetic pair (%d,%d): %d vs %d", s, d, sb, db)
			}
		}
	}
}

func TestSyntheticErrors(t *testing.T) {
	if _, err := Synthetic(0, SyntheticOptions{}); err == nil {
		t.Error("accepted 0 ranks")
	}
	if _, err := Synthetic(4, SyntheticOptions{Pattern: Stencil2D, Width: 9}); err == nil {
		t.Error("accepted width > ranks")
	}
}

// Running totals must survive every in-package mutation path.
func TestRunningTotalsConsistency(t *testing.T) {
	dense, _ := randomMatrices(t, 99, 10, 100)
	recount := func(m *Matrix) (int64, int64) {
		var b, ms int64
		for s := 0; s < m.N; s++ {
			for d := 0; d < m.N; d++ {
				b += m.Bytes[s][d]
				ms += m.Msgs[s][d]
			}
		}
		return b, ms
	}
	check := func(label string, m *Matrix) {
		t.Helper()
		b, ms := recount(m)
		if m.TotalBytes() != b || m.TotalMsgs() != ms {
			t.Errorf("%s: running totals %d/%d, recount %d/%d", label, m.TotalBytes(), m.TotalMsgs(), b, ms)
		}
	}
	check("add", dense)
	sub, err := dense.Submatrix(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	check("submatrix", sub)
	mach := &topology.Machine{Name: "t", Nodes: 5}
	p, err := topology.Block(mach, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := dense.NodeMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	check("nodematrix", nm)
	var buf bytes.Buffer
	if _, err := dense.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	check("serialize", back)
}
