package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"hierclust/internal/simmpi"
	"hierclust/internal/topology"
)

func stencilMatrix(n int, perMsg int64) *Matrix {
	// rank±1 neighbor exchange, the tsunami pattern.
	m := NewMatrix(n)
	for r := 0; r+1 < n; r++ {
		_ = m.Add(r, r+1, perMsg)
		_ = m.Add(r+1, r, perMsg)
	}
	return m
}

func TestAddAndTotals(t *testing.T) {
	m := NewMatrix(3)
	if err := m.Add(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(2, 0, 7); err != nil {
		t.Fatal(err)
	}
	if m.TotalBytes() != 22 {
		t.Errorf("TotalBytes = %d, want 22", m.TotalBytes())
	}
	if m.TotalMsgs() != 3 {
		t.Errorf("TotalMsgs = %d, want 3", m.TotalMsgs())
	}
	if m.Bytes[0][1] != 15 || m.Msgs[0][1] != 2 {
		t.Errorf("cell (0,1) = %d bytes / %d msgs", m.Bytes[0][1], m.Msgs[0][1])
	}
	if err := m.Add(3, 0, 1); err == nil {
		t.Error("Add accepted out-of-range src")
	}
	if err := m.Add(0, -1, 1); err == nil {
		t.Error("Add accepted negative dst")
	}
}

func TestCutBytesAndLoggedFraction(t *testing.T) {
	// 8-rank stencil, clusters of 4: one crossing pair (3<->4) of 7 total.
	m := stencilMatrix(8, 100)
	part := []int{0, 0, 0, 0, 1, 1, 1, 1}
	cut, err := m.CutBytes(part)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 200 { // both directions
		t.Errorf("cut = %d, want 200", cut)
	}
	frac, err := m.LoggedFraction(part)
	if err != nil {
		t.Fatal(err)
	}
	want := 200.0 / 1400.0
	if math.Abs(frac-want) > 1e-12 {
		t.Errorf("logged fraction = %g, want %g", frac, want)
	}
	if _, err := m.CutBytes([]int{0}); err == nil {
		t.Error("CutBytes accepted short assignment")
	}
}

func TestLoggedFractionMatchesPaperSweetSpot(t *testing.T) {
	// The paper's Fig. 3a sweet spot: 1024 ranks, clusters of 32
	// => 31 crossing pairs of 1023 ≈ 3.0% of stencil traffic logged.
	m := stencilMatrix(1024, 1000)
	part := make([]int, 1024)
	for r := range part {
		part[r] = r / 32
	}
	frac, err := m.LoggedFraction(part)
	if err != nil {
		t.Fatal(err)
	}
	want := 31.0 / 1023.0
	if math.Abs(frac-want) > 1e-12 {
		t.Errorf("logged = %g, want %g", frac, want)
	}
}

func TestEmptyMatrixLoggedFraction(t *testing.T) {
	m := NewMatrix(4)
	frac, err := m.LoggedFraction([]int{0, 1, 2, 3})
	if err != nil || frac != 0 {
		t.Errorf("empty matrix logged = %g, %v; want 0, nil", frac, err)
	}
}

func TestToGraphSymmetric(t *testing.T) {
	m := NewMatrix(3)
	_ = m.Add(0, 1, 10)
	_ = m.Add(1, 0, 4)
	_ = m.Add(2, 2, 5) // self traffic
	g := m.ToGraph()
	if g.Weight(0, 1) != 14 {
		t.Errorf("graph weight(0,1) = %g, want 14", g.Weight(0, 1))
	}
	if g.Weight(2, 2) != 5 {
		t.Errorf("graph self-loop = %g, want 5", g.Weight(2, 2))
	}
}

func TestNodeMatrix(t *testing.T) {
	mach := &topology.Machine{Name: "t", Nodes: 2}
	p, err := topology.Block(mach, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := stencilMatrix(4, 10) // ranks 0,1 on node 0; 2,3 on node 1
	nm, err := m.NodeMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	if nm.N != 2 {
		t.Fatalf("node matrix size = %d, want 2", nm.N)
	}
	if nm.Bytes[0][0] != 20 { // 0<->1 both directions
		t.Errorf("intra-node 0 = %d, want 20", nm.Bytes[0][0])
	}
	if nm.Bytes[0][1] != 10 || nm.Bytes[1][0] != 10 { // 1->2 and 2->1
		t.Errorf("inter-node = %d/%d, want 10/10", nm.Bytes[0][1], nm.Bytes[1][0])
	}
	bad, _ := topology.Block(mach, 2, 1)
	if _, err := m.NodeMatrix(bad); err == nil {
		t.Error("NodeMatrix accepted mismatched placement")
	}
}

func TestRecorderWithSimmpi(t *testing.T) {
	rec := NewRecorder(4)
	err := simmpi.Run(4, simmpi.Options{Tracer: rec}, func(p *simmpi.Proc) error {
		c := p.Comm()
		n := c.Size()
		right := (c.Rank() + 1) % n
		left := (c.Rank() - 1 + n) % n
		_, err := c.SendRecv(right, 1, make([]byte, 64), left, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rec.Matrix()
	if m.TotalMsgs() != 4 {
		t.Errorf("TotalMsgs = %d, want 4", m.TotalMsgs())
	}
	if m.Bytes[0][1] != 64 {
		t.Errorf("0->1 bytes = %d, want 64", m.Bytes[0][1])
	}
	// ignores out-of-range gracefully
	rec.Record(99, 0, 1)
	if m.TotalMsgs() != 4 {
		t.Error("out-of-range record was accumulated")
	}
}

func TestCSV(t *testing.T) {
	m := NewMatrix(2)
	_ = m.Add(0, 1, 3)
	got := m.CSV()
	want := "0,3\n0,0\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTopPairs(t *testing.T) {
	m := NewMatrix(4)
	_ = m.Add(0, 1, 100)
	_ = m.Add(2, 3, 300)
	_ = m.Add(1, 0, 200)
	top := m.TopPairs(2)
	if len(top) != 2 || top[0].Bytes != 300 || top[1].Bytes != 200 {
		t.Errorf("TopPairs = %+v", top)
	}
	all := m.TopPairs(100)
	if len(all) != 3 {
		t.Errorf("TopPairs(100) returned %d entries", len(all))
	}
}

func TestASCIIHeatmap(t *testing.T) {
	m := stencilMatrix(8, 1000)
	art := m.ASCIIHeatmap(8)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Fatalf("heatmap has %d lines, want 9:\n%s", len(lines), art)
	}
	// The ±1 diagonals must be the only non-space cells.
	for r, line := range lines[1:] {
		for c := 0; c < 8; c++ {
			isDiag := c == r-1 || c == r+1
			filled := line[c] != ' '
			if isDiag != filled {
				t.Errorf("cell (%d,%d) filled=%v, want %v\n%s", r, c, filled, isDiag, art)
			}
		}
	}
}

func TestASCIIHeatmapDownsamples(t *testing.T) {
	m := stencilMatrix(256, 10)
	art := m.ASCIIHeatmap(64)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 65 {
		t.Errorf("downsampled heatmap has %d lines, want 65", len(lines))
	}
	empty := NewMatrix(4)
	if got := empty.ASCIIHeatmap(0); !strings.Contains(got, "4 x 4") {
		t.Errorf("empty heatmap header missing: %q", got)
	}
}

func TestPGM(t *testing.T) {
	m := stencilMatrix(4, 100)
	pgm := m.PGM()
	if !strings.HasPrefix(pgm, "P2\n4 4\n255\n") {
		t.Errorf("PGM header wrong: %q", pgm[:20])
	}
	lines := strings.Split(strings.TrimRight(pgm, "\n"), "\n")
	if len(lines) != 3+4 {
		t.Errorf("PGM has %d lines, want 7", len(lines))
	}
}

func TestSubmatrix(t *testing.T) {
	m := stencilMatrix(10, 5)
	sub, err := m.Submatrix(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N != 4 {
		t.Fatalf("sub.N = %d, want 4", sub.N)
	}
	if sub.Bytes[0][1] != 5 { // was (2,3)
		t.Errorf("sub(0,1) = %d, want 5", sub.Bytes[0][1])
	}
	if _, err := m.Submatrix(5, 5); err == nil {
		t.Error("Submatrix accepted empty range")
	}
	if _, err := m.Submatrix(-1, 3); err == nil {
		t.Error("Submatrix accepted negative lo")
	}
	if _, err := m.Submatrix(0, 99); err == nil {
		t.Error("Submatrix accepted hi > N")
	}
}

// Property: LoggedFraction is within [0,1] and monotone under merging
// clusters (merging two clusters can only reduce the cut).
func TestLoggedFractionMergeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 4
		m := NewMatrix(n)
		rng := seed
		next := func() int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := rng >> 33
			if v < 0 {
				v = -v
			}
			return v
		}
		for i := 0; i < 3*n; i++ {
			s := int(next()) % n
			d := int(next()) % n
			_ = m.Add(s, d, next()%1000+1)
		}
		part := make([]int, n)
		for i := range part {
			part[i] = int(next()) % 4
		}
		f1, err := m.LoggedFraction(part)
		if err != nil || f1 < 0 || f1 > 1 {
			return false
		}
		merged := make([]int, n)
		for i, p := range part {
			if p == 3 {
				p = 2 // merge clusters 2 and 3
			}
			merged[i] = p
		}
		f2, err := m.LoggedFraction(merged)
		if err != nil {
			return false
		}
		return f2 <= f1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
