package trace

import (
	"math/rand"
	"strings"
	"testing"
)

func randomSparse(seed int64, n, pairs int) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n)
	for i := 0; i < pairs; i++ {
		_ = m.Add(rng.Intn(n), rng.Intn(n), int64(rng.Intn(1_000_000)+1))
	}
	return m
}

// At full resolution (no downsampling) the sparse PGM must be byte-identical
// to the dense renderer — same axes, same log intensity scale.
func TestCSRPGMMatchesDenseAtFullResolution(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		m := randomSparse(seed, 40, 120)
		dense := m.PGM()
		sparse := m.ToCSR().PGM(40)
		if dense != sparse {
			t.Fatalf("seed %d: sparse PGM diverges from dense:\ndense:\n%.200s\nsparse:\n%.200s", seed, dense, sparse)
		}
	}
}

// Downsampling must bound the pixel grid and keep the PGM well-formed, with
// intensity only where the matrix has traffic.
func TestCSRPGMDownsample(t *testing.T) {
	c, err := Synthetic(4096, SyntheticOptions{Pattern: Stencil2D, Width: 16})
	if err != nil {
		t.Fatal(err)
	}
	pgm := c.PGM(64)
	if !strings.HasPrefix(pgm, "P2\n64 64\n255\n") {
		t.Fatalf("downsampled header = %q", pgm[:20])
	}
	rows := strings.Split(strings.TrimSuffix(pgm, "\n"), "\n")
	if len(rows) != 3+64 {
		t.Fatalf("PGM has %d lines, want %d", len(rows), 3+64)
	}
	for i, row := range rows[3:] {
		if cells := strings.Fields(row); len(cells) != 64 {
			t.Fatalf("PGM row %d has %d cells, want 64", i, len(cells))
		}
	}
	// The stencil diagonal must survive pooling: every pixel row on the
	// main diagonal has traffic.
	for r := 0; r < 64; r++ {
		cells := strings.Fields(rows[3+r])
		if cells[r] == "0" {
			t.Fatalf("diagonal pixel (%d,%d) empty; pooling lost the stencil structure", r, r)
		}
	}
}

// The sparse Submatrix must agree with the dense zoom cell for cell.
func TestCSRSubmatrixMatchesDense(t *testing.T) {
	m := randomSparse(9, 60, 200)
	denseZoom, err := m.Submatrix(8, 40)
	if err != nil {
		t.Fatal(err)
	}
	sparseZoom, err := m.ToCSR().Submatrix(8, 40)
	if err != nil {
		t.Fatal(err)
	}
	if sparseZoom.Ranks() != denseZoom.N {
		t.Fatalf("zoom ranks = %d, want %d", sparseZoom.Ranks(), denseZoom.N)
	}
	for s := 0; s < denseZoom.N; s++ {
		for d := 0; d < denseZoom.N; d++ {
			b, ms := sparseZoom.At(s, d)
			if b != denseZoom.Bytes[s][d] || ms != denseZoom.Msgs[s][d] {
				t.Fatalf("zoom cell (%d,%d) = %d/%d, want %d/%d", s, d, b, ms, denseZoom.Bytes[s][d], denseZoom.Msgs[s][d])
			}
		}
	}
	if _, err := m.ToCSR().Submatrix(40, 8); err == nil {
		t.Error("accepted inverted bounds")
	}
	if _, err := m.ToCSR().Submatrix(0, 61); err == nil {
		t.Error("accepted out-of-range bound")
	}
}

// The sparse CSV lists exactly the stored pairs with a header line.
func TestCSRCSV(t *testing.T) {
	m := NewMatrix(4)
	_ = m.Add(0, 1, 100)
	_ = m.Add(2, 3, 50)
	_ = m.Add(2, 3, 25)
	got := m.ToCSR().CSV()
	want := "src,dst,bytes,msgs\n0,1,100,1\n2,3,75,2\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
