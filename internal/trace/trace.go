// Package trace records and analyzes communication matrices — who sent how
// many bytes to whom — the raw material of every clustering decision in the
// paper. The paper instruments MPICH2 to collect this matrix for the tsunami
// application (Figs. 5a/5b); here a Recorder plugs into simmpi's Tracer hook
// and produces the same artifact.
//
// Two storage layouts implement the shared Comm read interface: the dense
// Matrix (natural for heatmaps and submatrix zooms) and the sparse CSR
// (O(n + nnz) memory, the layout that scales the pipeline to 100k+ ranks).
// Both serialize to the same HCTR binary format via WriteTo, and ReadCSR
// reads either. A frozen matrix — a CSR, or a Matrix once recording ends —
// is immutable: every consumer (partitioning, evaluation, caching) only
// reads, so one trace may back any number of concurrent evaluations. This
// immutability is a pinned repository invariant; the trace cache in
// pkg/hierclust depends on it.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hierclust/internal/graph"
	"hierclust/internal/topology"
)

// Comm is the read-side view of a communication matrix shared by the dense
// Matrix and the sparse CSR: everything the clustering pipeline needs
// (totals, cut volumes, graph conversion) without committing callers to a
// storage layout. Dense matrices stay the natural fit for heatmaps and
// submatrix zooms; CSR scales the same pipeline to 100k+ ranks where an n×n
// array would not fit in memory.
type Comm interface {
	// Ranks returns the number of ranks the matrix covers.
	Ranks() int
	// TotalBytes returns the total traffic volume.
	TotalBytes() int64
	// TotalMsgs returns the total message count.
	TotalMsgs() int64
	// CutBytes returns the bytes crossing cluster boundaries under part.
	CutBytes(part []int) (int64, error)
	// LoggedFraction returns CutBytes/TotalBytes (0 for an empty trace).
	LoggedFraction(part []int) (float64, error)
	// ToGraph converts to an undirected weighted graph (both directions
	// summed), the partitioner's input.
	ToGraph() *graph.Graph
	// NodeGraph aggregates the rank matrix under a placement and returns
	// the undirected node-based graph the L1 partitioner consumes.
	NodeGraph(p *topology.Placement) (*graph.Graph, error)
}

// Matrix is a dense communication matrix: Bytes[s][d] counts payload bytes
// sent from rank s to rank d, Msgs[s][d] counts messages. Matrices are
// directed; use Symmetrize or ToGraph for undirected views.
//
// Mutate cells through Add (or the in-package helpers), not by writing the
// exported slices directly: TotalBytes/TotalMsgs are maintained as running
// totals rather than rescanning the n×n array per call.
type Matrix struct {
	N     int
	Bytes [][]int64
	Msgs  [][]int64

	totalBytes int64
	totalMsgs  int64
}

var _ Comm = (*Matrix)(nil)

// NewMatrix returns an all-zero n×n matrix.
func NewMatrix(n int) *Matrix {
	m := &Matrix{N: n, Bytes: make([][]int64, n), Msgs: make([][]int64, n)}
	for i := 0; i < n; i++ {
		m.Bytes[i] = make([]int64, n)
		m.Msgs[i] = make([]int64, n)
	}
	return m
}

// Ranks returns the number of ranks the matrix covers.
func (m *Matrix) Ranks() int { return m.N }

// Add accumulates one message of the given size.
func (m *Matrix) Add(src, dst int, bytes int64) error {
	if src < 0 || src >= m.N || dst < 0 || dst >= m.N {
		return fmt.Errorf("trace: message %d->%d outside %d-rank matrix", src, dst, m.N)
	}
	m.Bytes[src][dst] += bytes
	m.Msgs[src][dst]++
	m.totalBytes += bytes
	m.totalMsgs++
	return nil
}

// setCell overwrites one cell, keeping the running totals consistent. All
// in-package writers that bypass Add (deserialization, submatrix extraction,
// node aggregation) must go through it.
func (m *Matrix) setCell(src, dst int, bytes, msgs int64) {
	m.totalBytes += bytes - m.Bytes[src][dst]
	m.totalMsgs += msgs - m.Msgs[src][dst]
	m.Bytes[src][dst] = bytes
	m.Msgs[src][dst] = msgs
}

// addCell accumulates into one cell, keeping the running totals consistent.
func (m *Matrix) addCell(src, dst int, bytes, msgs int64) {
	m.Bytes[src][dst] += bytes
	m.Msgs[src][dst] += msgs
	m.totalBytes += bytes
	m.totalMsgs += msgs
}

// TotalBytes returns the total traffic volume.
func (m *Matrix) TotalBytes() int64 { return m.totalBytes }

// TotalMsgs returns the total message count.
func (m *Matrix) TotalMsgs() int64 { return m.totalMsgs }

// CutBytes returns the bytes crossing cluster boundaries under part
// (part[r] = cluster of rank r) — exactly the volume a hybrid protocol
// with those clusters must log.
func (m *Matrix) CutBytes(part []int) (int64, error) {
	if len(part) != m.N {
		return 0, fmt.Errorf("trace: assignment has %d entries for %d ranks", len(part), m.N)
	}
	var cut int64
	for s := 0; s < m.N; s++ {
		for d, b := range m.Bytes[s] {
			if b != 0 && part[s] != part[d] {
				cut += b
			}
		}
	}
	return cut, nil
}

// LoggedFraction returns CutBytes/TotalBytes, the paper's "message logging
// overhead" metric. A matrix with no traffic logs nothing (0).
func (m *Matrix) LoggedFraction(part []int) (float64, error) {
	total := m.TotalBytes()
	if total == 0 {
		return 0, nil
	}
	cut, err := m.CutBytes(part)
	if err != nil {
		return 0, err
	}
	return float64(cut) / float64(total), nil
}

// ToGraph converts the matrix to an undirected weighted graph (summing both
// directions), the input of the partitioner.
func (m *Matrix) ToGraph() *graph.Graph {
	g := graph.New(m.N)
	for s := 0; s < m.N; s++ {
		for d := s; d < m.N; d++ {
			w := float64(m.Bytes[s][d])
			if d != s {
				w += float64(m.Bytes[d][s])
			}
			if w > 0 {
				_ = g.AddEdge(s, d, w)
			}
		}
	}
	return g
}

// NodeMatrix aggregates the rank matrix into a node-based matrix under a
// placement: entry (a,b) sums traffic from ranks on node a to ranks on node
// b. The paper's L1 partitioning runs on this aggregated view so that all
// processes of a node land in one cluster.
func (m *Matrix) NodeMatrix(p *topology.Placement) (*Matrix, error) {
	if p.NumRanks() != m.N {
		return nil, fmt.Errorf("trace: placement has %d ranks, matrix %d", p.NumRanks(), m.N)
	}
	used := p.UsedNodes()
	nm := NewMatrix(len(used))
	idx := map[topology.NodeID]int{}
	for i, n := range used {
		idx[n] = i
	}
	for s := 0; s < m.N; s++ {
		ns := idx[p.NodeOf(topology.Rank(s))]
		for d, b := range m.Bytes[s] {
			if b == 0 {
				continue
			}
			nd := idx[p.NodeOf(topology.Rank(d))]
			nm.addCell(ns, nd, b, m.Msgs[s][d])
		}
	}
	return nm, nil
}

// NodeGraph aggregates the rank matrix under the placement and returns the
// undirected node graph (Comm interface; see CSR.NodeGraph for the sparse
// equivalent).
func (m *Matrix) NodeGraph(p *topology.Placement) (*graph.Graph, error) {
	nm, err := m.NodeMatrix(p)
	if err != nil {
		return nil, err
	}
	return nm.ToGraph(), nil
}

// Recorder is a concurrency-safe simmpi.Tracer accumulating into a Matrix.
type Recorder struct {
	mu sync.Mutex
	m  *Matrix
}

// NewRecorder returns a recorder for n ranks.
func NewRecorder(n int) *Recorder {
	return &Recorder{m: NewMatrix(n)}
}

// Record implements simmpi.Tracer. Out-of-range ranks are ignored rather
// than failing mid-run; the matrix dimension is fixed at creation.
func (r *Recorder) Record(src, dst, bytes int) {
	r.mu.Lock()
	_ = r.m.Add(src, dst, int64(bytes))
	r.mu.Unlock()
}

// Matrix returns the accumulated matrix. Callers must not race this with
// an active run.
func (r *Recorder) Matrix() *Matrix { return r.m }

// CSV renders the byte matrix as comma-separated values (one row per
// sender), suitable for external plotting of Figs. 5a/5b.
func (m *Matrix) CSV() string {
	var sb strings.Builder
	for s := 0; s < m.N; s++ {
		for d := 0; d < m.N; d++ {
			if d > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", m.Bytes[s][d])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TopPairs returns the k heaviest directed rank pairs, descending by bytes;
// useful when inspecting a trace's dominant pattern.
type Pair struct {
	Src, Dst int
	Bytes    int64
}

// TopPairs returns up to k heaviest sender→receiver pairs.
func (m *Matrix) TopPairs(k int) []Pair {
	var pairs []Pair
	for s := 0; s < m.N; s++ {
		for d, b := range m.Bytes[s] {
			if b > 0 {
				pairs = append(pairs, Pair{s, d, b})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Bytes != pairs[j].Bytes {
			return pairs[i].Bytes > pairs[j].Bytes
		}
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	if len(pairs) > k {
		pairs = pairs[:k]
	}
	return pairs
}
