package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSerializeRoundTrip(t *testing.T) {
	m := stencilMatrix(16, 1234)
	_ = m.Add(3, 9, 42)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != m.N {
		t.Fatalf("N = %d, want %d", got.N, m.N)
	}
	for s := 0; s < m.N; s++ {
		for d := 0; d < m.N; d++ {
			if got.Bytes[s][d] != m.Bytes[s][d] || got.Msgs[s][d] != m.Msgs[s][d] {
				t.Fatalf("cell (%d,%d) mismatch", s, d)
			}
		}
	}
}

func TestSerializeEmpty(t *testing.T) {
	m := NewMatrix(4)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 16 { // header only
		t.Errorf("empty matrix serialized to %d bytes, want 16", buf.Len())
	}
	got, err := ReadMatrix(&buf)
	if err != nil || got.N != 4 || got.TotalBytes() != 0 {
		t.Errorf("empty round trip: %v, %v", got, err)
	}
}

func TestReadMatrixRejectsGarbage(t *testing.T) {
	if _, err := ReadMatrix(strings.NewReader("not a trace file at all")); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := ReadMatrix(strings.NewReader("HC")); err == nil {
		t.Error("accepted truncated header")
	}
	// right magic, wrong version
	bad := []byte("HCTR\x09\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00")
	if _, err := ReadMatrix(bytes.NewReader(bad)); err == nil {
		t.Error("accepted unknown version")
	}
	// truncated records
	m := stencilMatrix(4, 10)
	var buf bytes.Buffer
	_, _ = m.WriteTo(&buf)
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadMatrix(bytes.NewReader(cut)); err == nil {
		t.Error("accepted truncated body")
	}
	// out-of-range pair
	evil := []byte("HCTR\x01\x00\x00\x00\x02\x00\x00\x00\x01\x00\x00\x00" +
		"\x07\x00\x00\x00\x00\x00\x00\x00" + // src 7 of 2 ranks
		"\x01\x00\x00\x00\x00\x00\x00\x00" +
		"\x01\x00\x00\x00\x00\x00\x00\x00")
	if _, err := ReadMatrix(bytes.NewReader(evil)); err == nil {
		t.Error("accepted out-of-range pair")
	}
}

func TestSerializeSparseIsCompact(t *testing.T) {
	// A 512-rank stencil has ~1022 nonzero cells: the sparse file must be
	// a small fraction of the dense 512×512 representation.
	m := stencilMatrix(512, 100)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dense := 512 * 512 * 16
	if buf.Len() > dense/8 {
		t.Errorf("sparse encoding %d bytes vs dense %d — not compact", buf.Len(), dense)
	}
}

// Property: any random sparse matrix round-trips exactly.
func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(n)
		for i := 0; i < 2*n; i++ {
			_ = m.Add(rng.Intn(n), rng.Intn(n), int64(rng.Intn(1_000_000)+1))
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadMatrix(&buf)
		if err != nil || got.N != n {
			return false
		}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if got.Bytes[s][d] != m.Bytes[s][d] || got.Msgs[s][d] != m.Msgs[s][d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
