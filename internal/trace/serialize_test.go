package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSerializeRoundTrip(t *testing.T) {
	m := stencilMatrix(16, 1234)
	_ = m.Add(3, 9, 42)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != m.N {
		t.Fatalf("N = %d, want %d", got.N, m.N)
	}
	for s := 0; s < m.N; s++ {
		for d := 0; d < m.N; d++ {
			if got.Bytes[s][d] != m.Bytes[s][d] || got.Msgs[s][d] != m.Msgs[s][d] {
				t.Fatalf("cell (%d,%d) mismatch", s, d)
			}
		}
	}
}

func TestSerializeEmpty(t *testing.T) {
	m := NewMatrix(4)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 16 { // header only
		t.Errorf("empty matrix serialized to %d bytes, want 16", buf.Len())
	}
	got, err := ReadMatrix(&buf)
	if err != nil || got.N != 4 || got.TotalBytes() != 0 {
		t.Errorf("empty round trip: %v, %v", got, err)
	}
}

func TestReadMatrixRejectsGarbage(t *testing.T) {
	if _, err := ReadMatrix(strings.NewReader("not a trace file at all")); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := ReadMatrix(strings.NewReader("HC")); err == nil {
		t.Error("accepted truncated header")
	}
	// right magic, wrong version
	bad := []byte("HCTR\x09\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00")
	if _, err := ReadMatrix(bytes.NewReader(bad)); err == nil {
		t.Error("accepted unknown version")
	}
	// truncated records
	m := stencilMatrix(4, 10)
	var buf bytes.Buffer
	_, _ = m.WriteTo(&buf)
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadMatrix(bytes.NewReader(cut)); err == nil {
		t.Error("accepted truncated body")
	}
	// out-of-range pair
	evil := []byte("HCTR\x01\x00\x00\x00\x02\x00\x00\x00\x01\x00\x00\x00" +
		"\x07\x00\x00\x00\x00\x00\x00\x00" + // src 7 of 2 ranks
		"\x01\x00\x00\x00\x00\x00\x00\x00" +
		"\x01\x00\x00\x00\x00\x00\x00\x00")
	if _, err := ReadMatrix(bytes.NewReader(evil)); err == nil {
		t.Error("accepted out-of-range pair")
	}
}

func TestSerializeSparseIsCompact(t *testing.T) {
	// A 512-rank stencil has ~1022 nonzero cells: the sparse file must be
	// a small fraction of the dense 512×512 representation.
	m := stencilMatrix(512, 100)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dense := 512 * 512 * 16
	if buf.Len() > dense/8 {
		t.Errorf("sparse encoding %d bytes vs dense %d — not compact", buf.Len(), dense)
	}
}

// Property: any random sparse matrix round-trips exactly.
func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(n)
		for i := 0; i < 2*n; i++ {
			_ = m.Add(rng.Intn(n), rng.Intn(n), int64(rng.Intn(1_000_000)+1))
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadMatrix(&buf)
		if err != nil || got.N != n {
			return false
		}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if got.Bytes[s][d] != m.Bytes[s][d] || got.Msgs[s][d] != m.Msgs[s][d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReadOptionsMaxRanks covers the configurable plausibility bound: the
// default rejects headers past 2^22 ranks with a typed error, and a raised
// bound admits them.
func TestReadOptionsMaxRanks(t *testing.T) {
	// An empty trace claiming n ranks: header only, nnz = 0.
	header := func(n uint32) []byte {
		b := []byte("HCTR\x01\x00\x00\x00")
		b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		return append(b, 0, 0, 0, 0)
	}

	over := uint32(DefaultMaxRanks + 1)
	for name, read := range map[string]func([]byte, ...ReadOptions) error{
		"ReadMatrix": func(b []byte, opts ...ReadOptions) error {
			_, err := ReadMatrix(bytes.NewReader(b), opts...)
			return err
		},
		"ReadCSR": func(b []byte, opts ...ReadOptions) error {
			_, err := ReadCSR(bytes.NewReader(b), opts...)
			return err
		},
	} {
		t.Run(name, func(t *testing.T) {
			err := read(header(over))
			if err == nil {
				t.Fatal("default bound admitted 2^22+1 ranks")
			}
			var rce *RankCountError
			if !errors.As(err, &rce) {
				t.Fatalf("error is %T, want *RankCountError: %v", err, err)
			}
			if rce.Ranks != int(over) || rce.Max != DefaultMaxRanks {
				t.Fatalf("RankCountError = %+v, want Ranks=%d Max=%d", rce, over, DefaultMaxRanks)
			}
			// The same bound, explicitly configured lower.
			err = read(header(1024), ReadOptions{MaxRanks: 512})
			if !errors.As(err, &rce) || rce.Max != 512 {
				t.Fatalf("custom bound not applied: %v", err)
			}
		})
	}

	// ReadCSR allocates O(n), so a raised bound is actually usable at
	// 2^22+1 ranks (dense ReadMatrix would need ~140 TB for this header).
	got, err := ReadCSR(bytes.NewReader(header(over)), ReadOptions{MaxRanks: 1 << 23})
	if err != nil {
		t.Fatalf("raised bound still rejected: %v", err)
	}
	if got.Ranks() != int(over) {
		t.Fatalf("Ranks = %d, want %d", got.Ranks(), over)
	}
}
