package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSerializeRoundTrip(t *testing.T) {
	m := stencilMatrix(16, 1234)
	_ = m.Add(3, 9, 42)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != m.N {
		t.Fatalf("N = %d, want %d", got.N, m.N)
	}
	for s := 0; s < m.N; s++ {
		for d := 0; d < m.N; d++ {
			if got.Bytes[s][d] != m.Bytes[s][d] || got.Msgs[s][d] != m.Msgs[s][d] {
				t.Fatalf("cell (%d,%d) mismatch", s, d)
			}
		}
	}
}

func TestSerializeEmpty(t *testing.T) {
	m := NewMatrix(4)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 16 { // header only
		t.Errorf("empty matrix serialized to %d bytes, want 16", buf.Len())
	}
	got, err := ReadMatrix(&buf)
	if err != nil || got.N != 4 || got.TotalBytes() != 0 {
		t.Errorf("empty round trip: %v, %v", got, err)
	}
}

func TestReadMatrixRejectsGarbage(t *testing.T) {
	if _, err := ReadMatrix(strings.NewReader("not a trace file at all")); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := ReadMatrix(strings.NewReader("HC")); err == nil {
		t.Error("accepted truncated header")
	}
	// right magic, wrong version
	bad := []byte("HCTR\x09\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00")
	if _, err := ReadMatrix(bytes.NewReader(bad)); err == nil {
		t.Error("accepted unknown version")
	}
	// truncated records
	m := stencilMatrix(4, 10)
	var buf bytes.Buffer
	_, _ = m.WriteTo(&buf)
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadMatrix(bytes.NewReader(cut)); err == nil {
		t.Error("accepted truncated body")
	}
	// out-of-range pair
	evil := []byte("HCTR\x01\x00\x00\x00\x02\x00\x00\x00\x01\x00\x00\x00" +
		"\x07\x00\x00\x00\x00\x00\x00\x00" + // src 7 of 2 ranks
		"\x01\x00\x00\x00\x00\x00\x00\x00" +
		"\x01\x00\x00\x00\x00\x00\x00\x00")
	if _, err := ReadMatrix(bytes.NewReader(evil)); err == nil {
		t.Error("accepted out-of-range pair")
	}
}

func TestSerializeSparseIsCompact(t *testing.T) {
	// A 512-rank stencil has ~1022 nonzero cells: the sparse file must be
	// a small fraction of the dense 512×512 representation.
	m := stencilMatrix(512, 100)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dense := 512 * 512 * 16
	if buf.Len() > dense/8 {
		t.Errorf("sparse encoding %d bytes vs dense %d — not compact", buf.Len(), dense)
	}
}

// Property: any random sparse matrix round-trips exactly.
func TestSerializeRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(n)
		for i := 0; i < 2*n; i++ {
			_ = m.Add(rng.Intn(n), rng.Intn(n), int64(rng.Intn(1_000_000)+1))
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadMatrix(&buf)
		if err != nil || got.N != n {
			return false
		}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if got.Bytes[s][d] != m.Bytes[s][d] || got.Msgs[s][d] != m.Msgs[s][d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReadOptionsMaxRanks covers the configurable plausibility bound: the
// default rejects headers past 2^22 ranks with a typed error, and a raised
// bound admits them.
func TestReadOptionsMaxRanks(t *testing.T) {
	// An empty trace claiming n ranks: header only, nnz = 0.
	header := func(n uint32) []byte {
		b := []byte("HCTR\x01\x00\x00\x00")
		b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		return append(b, 0, 0, 0, 0)
	}

	over := uint32(DefaultMaxRanks + 1)
	for name, read := range map[string]func([]byte, ...ReadOptions) error{
		"ReadMatrix": func(b []byte, opts ...ReadOptions) error {
			_, err := ReadMatrix(bytes.NewReader(b), opts...)
			return err
		},
		"ReadCSR": func(b []byte, opts ...ReadOptions) error {
			_, err := ReadCSR(bytes.NewReader(b), opts...)
			return err
		},
	} {
		t.Run(name, func(t *testing.T) {
			err := read(header(over))
			if err == nil {
				t.Fatal("default bound admitted 2^22+1 ranks")
			}
			var rce *RankCountError
			if !errors.As(err, &rce) {
				t.Fatalf("error is %T, want *RankCountError: %v", err, err)
			}
			if rce.Ranks != int(over) || rce.Max != DefaultMaxRanks {
				t.Fatalf("RankCountError = %+v, want Ranks=%d Max=%d", rce, over, DefaultMaxRanks)
			}
			// The same bound, explicitly configured lower.
			err = read(header(1024), ReadOptions{MaxRanks: 512})
			if !errors.As(err, &rce) || rce.Max != 512 {
				t.Fatalf("custom bound not applied: %v", err)
			}
		})
	}

	// ReadCSR allocates O(n), so a raised bound is actually usable at
	// 2^22+1 ranks (dense ReadMatrix would need ~140 TB for this header).
	got, err := ReadCSR(bytes.NewReader(header(over)), ReadOptions{MaxRanks: 1 << 23})
	if err != nil {
		t.Fatalf("raised bound still rejected: %v", err)
	}
	if got.Ranks() != int(over) {
		t.Fatalf("Ranks = %d, want %d", got.Ranks(), over)
	}
}

// TestTraceVersionSelection pins the compatibility contract: writers stay
// on the v1 header for every pair count a uint32 can carry and switch to v2
// exactly at overflow.
func TestTraceVersionSelection(t *testing.T) {
	cases := []struct {
		nnz  int64
		want uint32
	}{
		{0, 1}, {1, 1}, {1 << 20, 1},
		{math.MaxUint32, 1},
		{math.MaxUint32 + 1, 2},
		{1 << 40, 2},
	}
	for _, tc := range cases {
		if got := traceVersionFor(tc.nnz); got != tc.want {
			t.Errorf("traceVersionFor(%d) = %d, want %d", tc.nnz, got, tc.want)
		}
	}
}

// Every trace this repository can materialize has nnz far below uint32, so
// written files must stay byte-identical to the historical v1 encoding.
func TestWriteToStaysV1(t *testing.T) {
	m := stencilMatrix(8, 100)
	var dense, sparse bytes.Buffer
	if _, err := m.WriteTo(&dense); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ToCSR().WriteTo(&sparse); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"dense": &dense, "sparse": &sparse} {
		hdr := buf.Bytes()
		if len(hdr) < 16 {
			t.Fatalf("%s: short output", name)
		}
		if v := binary.LittleEndian.Uint32(hdr[4:]); v != 1 {
			t.Errorf("%s writer used version %d for a small trace, want 1", name, v)
		}
	}
}

// writeV2 emits a hand-rolled v2 document with the given records — the
// shape a megarank writer will produce — so both readers' v2 paths are
// exercised without materializing 4B pairs.
func writeV2(n int, recs [][4]int64) []byte {
	var buf bytes.Buffer
	hdr := make([]byte, 20)
	copy(hdr, "HCTR")
	binary.LittleEndian.PutUint32(hdr[4:], 2)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(n))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(len(recs)))
	buf.Write(hdr)
	rec := make([]byte, 24)
	for _, r := range recs {
		binary.LittleEndian.PutUint32(rec[0:], uint32(r[0]))
		binary.LittleEndian.PutUint32(rec[4:], uint32(r[1]))
		binary.LittleEndian.PutUint64(rec[8:], uint64(r[2]))
		binary.LittleEndian.PutUint64(rec[16:], uint64(r[3]))
		buf.Write(rec)
	}
	return buf.Bytes()
}

// TestReadV2Trace: both readers must accept a v2 header and reproduce the
// cells exactly.
func TestReadV2Trace(t *testing.T) {
	doc := writeV2(6, [][4]int64{
		{0, 1, 1000, 3},
		{4, 5, 42, 1},
		{5, 0, 7, 7},
	})
	m, err := ReadMatrix(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadMatrix rejected v2: %v", err)
	}
	c, err := ReadCSR(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("ReadCSR rejected v2: %v", err)
	}
	for _, want := range [][4]int64{{0, 1, 1000, 3}, {4, 5, 42, 1}, {5, 0, 7, 7}} {
		if m.Bytes[want[0]][want[1]] != want[2] || m.Msgs[want[0]][want[1]] != want[3] {
			t.Errorf("dense cell (%d,%d) = %d/%d, want %d/%d",
				want[0], want[1], m.Bytes[want[0]][want[1]], m.Msgs[want[0]][want[1]], want[2], want[3])
		}
		b, ms := c.At(int(want[0]), int(want[1]))
		if b != want[2] || ms != want[3] {
			t.Errorf("CSR cell (%d,%d) = %d/%d, want %d/%d", want[0], want[1], b, ms, want[2], want[3])
		}
	}
	// A v2 document round-trips back out as v1 (its nnz fits uint32) and
	// still carries the same cells — the interchange contract.
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(buf.Bytes()[4:]); v != 1 {
		t.Errorf("re-written small trace used version %d, want 1", v)
	}
	c2, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.TotalBytes() != c.TotalBytes() || c2.TotalMsgs() != c.TotalMsgs() {
		t.Error("v2→v1 round trip changed totals")
	}
}

// Corrupt v2 headers must fail cleanly: truncated nnz field, out-of-range
// records, implausible pair counts.
func TestReadV2TraceErrors(t *testing.T) {
	doc := writeV2(4, [][4]int64{{0, 1, 10, 1}})
	if _, err := ReadCSR(bytes.NewReader(doc[:14])); err == nil {
		t.Error("accepted truncated v2 header")
	}
	bad := writeV2(4, [][4]int64{{0, 9, 10, 1}}) // dst outside n
	if _, err := ReadCSR(bytes.NewReader(bad)); err == nil {
		t.Error("accepted out-of-range v2 record")
	}
	huge := writeV2(4, nil)
	binary.LittleEndian.PutUint64(huge[12:], math.MaxUint64) // nnz > int64
	if _, err := ReadCSR(bytes.NewReader(huge)); err == nil {
		t.Error("accepted implausible v2 pair count")
	}
}
