package trace

import (
	"fmt"
	"math"
	"strings"
)

// Figure-artifact rendering on the sparse path. The dense Matrix renderers
// (PGM, Submatrix, CSV) materialize O(n²) cells — fine for traced runs,
// impossible for the synthetic 100k+-rank scales. These CSR equivalents
// walk only the stored pairs, downsampling into a bounded pixel grid, so
// hcrun can dump fig5a/fig5b-style heatmaps at any rank count the sparse
// pipeline evaluates.

// PGM renders the matrix as an ASCII portable graymap of at most
// maxDim×maxDim pixels (0 = 1024). When the matrix is larger than the pixel
// grid, each pixel covers a factor×factor rank block and takes the block's
// maximum byte count — the same max-pooling and log intensity scale as the
// dense renderers, and the same axes (column = sender, row = receiver).
// Memory and time are O(pixels + nnz) regardless of rank count.
func (c *CSR) PGM(maxDim int) string {
	if maxDim <= 0 {
		maxDim = 1024
	}
	dim := c.n
	factor := 1
	for dim > maxDim {
		factor *= 2
		dim = (c.n + factor - 1) / factor
	}
	cells := make([]int64, dim*dim)
	var peak int64
	for s := 0; s < c.n; s++ {
		cs := s / factor
		for i := c.rowPtr[s]; i < c.rowPtr[s+1]; i++ {
			b := c.bytes[i]
			if b == 0 {
				continue
			}
			cd := int(c.col[i]) / factor
			if cell := &cells[cd*dim+cs]; b > *cell { // row=receiver, col=sender
				*cell = b
			}
			if b > peak {
				peak = b
			}
		}
	}
	if peak == 0 {
		peak = 1
	}
	logPeak := math.Log1p(float64(peak))
	var sb strings.Builder
	fmt.Fprintf(&sb, "P2\n%d %d\n255\n", dim, dim)
	for r := 0; r < dim; r++ {
		for col := 0; col < dim; col++ {
			b := cells[r*dim+col]
			v := 0
			if b > 0 {
				v = int(math.Log1p(float64(b)) / logPeak * 255)
				if v == 0 {
					v = 1
				}
			}
			if col > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Submatrix returns the traffic among ranks [lo, hi), re-indexed from 0 —
// the zoom operation of Figure 5b — touching only the stored pairs.
func (c *CSR) Submatrix(lo, hi int) (*CSR, error) {
	if lo < 0 || hi > c.n || lo >= hi {
		return nil, fmt.Errorf("trace: submatrix [%d,%d) of %d ranks", lo, hi, c.n)
	}
	out := &CSR{n: hi - lo, rowPtr: make([]int64, hi-lo+1)}
	for s := lo; s < hi; s++ {
		for i := c.rowPtr[s]; i < c.rowPtr[s+1]; i++ {
			d := int(c.col[i])
			if d < lo || d >= hi {
				continue
			}
			out.col = append(out.col, int32(d-lo))
			out.bytes = append(out.bytes, c.bytes[i])
			out.msgs = append(out.msgs, c.msgs[i])
			out.totalBytes += c.bytes[i]
			out.totalMsgs += c.msgs[i]
		}
		out.rowPtr[s-lo+1] = int64(len(out.col))
	}
	return out, nil
}

// CSV renders the stored pairs as "src,dst,bytes,msgs" triplet lines —
// O(nnz) output where the dense CSV's n² grid would be unwritable at
// synthetic scales. Rows come out in (src, dst) order.
func (c *CSR) CSV() string {
	var sb strings.Builder
	sb.WriteString("src,dst,bytes,msgs\n")
	for s := 0; s < c.n; s++ {
		for i := c.rowPtr[s]; i < c.rowPtr[s+1]; i++ {
			fmt.Fprintf(&sb, "%d,%d,%d,%d\n", s, c.col[i], c.bytes[i], c.msgs[i])
		}
	}
	return sb.String()
}
