package trace

import (
	"fmt"
	"sort"
	"sync"

	"hierclust/internal/graph"
	"hierclust/internal/topology"
)

// The sparse path of the trace package. Real communication matrices are
// extremely sparse — a stencil application on n ranks touches O(n) pairs,
// not O(n²) — so the dense Matrix's n×n arrays are the scaling wall of the
// whole pipeline (100k ranks ≈ 160 GB). A SparseBuilder accumulates per-rank
// hash rows while recording and freezes into an immutable CSR whose memory
// is O(ranks + distinct pairs). Every downstream consumer the clustering
// pipeline needs (totals, cut volume, node aggregation, graph conversion)
// operates directly on the frozen CSR.

// sparseCell is one accumulating (bytes, msgs) pair.
type sparseCell struct {
	bytes int64
	msgs  int64
}

// SparseBuilder accumulates a communication matrix into per-rank hash rows.
// It is not concurrency-safe; wrap it in a SparseRecorder for tracing.
type SparseBuilder struct {
	n          int
	rows       []map[int32]sparseCell
	totalBytes int64
	totalMsgs  int64
}

// NewSparseBuilder returns an empty builder for n ranks.
func NewSparseBuilder(n int) *SparseBuilder {
	if n < 0 {
		n = 0
	}
	return &SparseBuilder{n: n, rows: make([]map[int32]sparseCell, n)}
}

// Ranks returns the number of ranks the builder covers.
func (b *SparseBuilder) Ranks() int { return b.n }

// Add accumulates one message of the given size.
func (b *SparseBuilder) Add(src, dst int, bytes int64) error {
	if src < 0 || src >= b.n || dst < 0 || dst >= b.n {
		return fmt.Errorf("trace: message %d->%d outside %d-rank matrix", src, dst, b.n)
	}
	b.addCell(src, dst, bytes, 1)
	return nil
}

// addCell accumulates into one cell, keeping the running totals consistent
// — the single place the accumulation invariant lives (mirrors
// Matrix.addCell). Bounds are the caller's responsibility.
func (b *SparseBuilder) addCell(src, dst int, bytes, msgs int64) {
	if b.rows[src] == nil {
		b.rows[src] = make(map[int32]sparseCell)
	}
	c := b.rows[src][int32(dst)]
	c.bytes += bytes
	c.msgs += msgs
	b.rows[src][int32(dst)] = c
	b.totalBytes += bytes
	b.totalMsgs += msgs
}

// set overwrites one cell (deserialization helper; totals stay consistent).
func (b *SparseBuilder) set(src, dst int, bytes, msgs int64) {
	if b.rows[src] == nil {
		b.rows[src] = make(map[int32]sparseCell)
	}
	old := b.rows[src][int32(dst)]
	b.totalBytes += bytes - old.bytes
	b.totalMsgs += msgs - old.msgs
	b.rows[src][int32(dst)] = sparseCell{bytes: bytes, msgs: msgs}
}

// Freeze compacts the builder into an immutable CSR. The builder remains
// usable; Freeze may be called again after further Adds.
func (b *SparseBuilder) Freeze() *CSR {
	c := &CSR{
		n:          b.n,
		rowPtr:     make([]int64, b.n+1),
		totalBytes: b.totalBytes,
		totalMsgs:  b.totalMsgs,
	}
	nnz := 0
	for _, row := range b.rows {
		nnz += len(row)
	}
	c.col = make([]int32, 0, nnz)
	c.bytes = make([]int64, 0, nnz)
	c.msgs = make([]int64, 0, nnz)
	var cols []int32
	for s, row := range b.rows {
		cols = cols[:0]
		for d := range row {
			cols = append(cols, d)
		}
		sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
		for _, d := range cols {
			cell := row[d]
			c.col = append(c.col, d)
			c.bytes = append(c.bytes, cell.bytes)
			c.msgs = append(c.msgs, cell.msgs)
		}
		c.rowPtr[s+1] = int64(len(c.col))
	}
	return c
}

// SparseRecorder is a concurrency-safe simmpi.Tracer accumulating into a
// SparseBuilder — the sparse counterpart of Recorder for machines where a
// dense matrix would not fit.
type SparseRecorder struct {
	mu sync.Mutex
	b  *SparseBuilder
}

// NewSparseRecorder returns a sparse recorder for n ranks.
func NewSparseRecorder(n int) *SparseRecorder {
	return &SparseRecorder{b: NewSparseBuilder(n)}
}

// Record implements simmpi.Tracer. Out-of-range ranks are ignored, matching
// Recorder's behavior.
func (r *SparseRecorder) Record(src, dst, bytes int) {
	r.mu.Lock()
	_ = r.b.Add(src, dst, int64(bytes))
	r.mu.Unlock()
}

// Freeze returns the accumulated matrix in CSR form. Callers must not race
// this with an active run.
func (r *SparseRecorder) Freeze() *CSR {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.b.Freeze()
}

// CSR is an immutable communication matrix in compressed-sparse-row form:
// row s occupies col/bytes/msgs[rowPtr[s]:rowPtr[s+1]], columns ascending.
// Memory is O(n + nnz), the property that lets the clustering pipeline
// evaluate 100k+ rank machines.
type CSR struct {
	n      int
	rowPtr []int64
	col    []int32
	bytes  []int64
	msgs   []int64

	totalBytes int64
	totalMsgs  int64
}

var _ Comm = (*CSR)(nil)

// Ranks returns the number of ranks the matrix covers.
func (c *CSR) Ranks() int { return c.n }

// NNZ returns the number of stored (nonzero) directed pairs.
func (c *CSR) NNZ() int { return len(c.col) }

// TotalBytes returns the total traffic volume.
func (c *CSR) TotalBytes() int64 { return c.totalBytes }

// TotalMsgs returns the total message count.
func (c *CSR) TotalMsgs() int64 { return c.totalMsgs }

// At returns the (bytes, msgs) cell for the directed pair (src, dst) in
// O(log deg) via binary search, (0, 0) when absent or out of range.
func (c *CSR) At(src, dst int) (int64, int64) {
	if src < 0 || src >= c.n || dst < 0 || dst >= c.n {
		return 0, 0
	}
	lo, hi := c.rowPtr[src], c.rowPtr[src+1]
	row := c.col[lo:hi]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(dst) })
	if i < len(row) && row[i] == int32(dst) {
		return c.bytes[lo+int64(i)], c.msgs[lo+int64(i)]
	}
	return 0, 0
}

// CutBytes returns the bytes crossing cluster boundaries under part, in
// O(nnz) — the dense equivalent scans n² cells.
func (c *CSR) CutBytes(part []int) (int64, error) {
	if len(part) != c.n {
		return 0, fmt.Errorf("trace: assignment has %d entries for %d ranks", len(part), c.n)
	}
	var cut int64
	for s := 0; s < c.n; s++ {
		ps := part[s]
		for i := c.rowPtr[s]; i < c.rowPtr[s+1]; i++ {
			if part[c.col[i]] != ps {
				cut += c.bytes[i]
			}
		}
	}
	return cut, nil
}

// LoggedFraction returns CutBytes/TotalBytes, the paper's message-logging
// overhead metric. An empty trace logs nothing (0).
func (c *CSR) LoggedFraction(part []int) (float64, error) {
	if c.totalBytes == 0 {
		return 0, nil
	}
	cut, err := c.CutBytes(part)
	if err != nil {
		return 0, err
	}
	return float64(cut) / float64(c.totalBytes), nil
}

// symmetrized merges each row with the matching transpose row, yielding the
// undirected structure (u,v) -> bytes(u,v)+bytes(v,u) with diagonals kept
// once. It is the shared kernel of Symmetrize and ToGraph and runs in
// O(n + nnz).
func (c *CSR) symmetrized() (rowPtr []int64, col []int32, bytes, msgs []int64) {
	// Build the transpose in CSR form with a counting sort.
	tPtr := make([]int64, c.n+1)
	for _, d := range c.col {
		tPtr[d+1]++
	}
	for i := 0; i < c.n; i++ {
		tPtr[i+1] += tPtr[i]
	}
	tCol := make([]int32, len(c.col))
	tIdx := make([]int64, len(c.col)) // index into c.bytes/c.msgs
	fill := make([]int64, c.n)
	for s := 0; s < c.n; s++ {
		for i := c.rowPtr[s]; i < c.rowPtr[s+1]; i++ {
			d := c.col[i]
			pos := tPtr[d] + fill[d]
			tCol[pos] = int32(s)
			tIdx[pos] = i
			fill[d]++
		}
	}
	// Merge row u of the matrix with row u of the transpose; both are
	// sorted by column, so the union is a linear merge.
	rowPtr = make([]int64, c.n+1)
	col = make([]int32, 0, len(c.col))
	bytes = make([]int64, 0, len(c.col))
	msgs = make([]int64, 0, len(c.col))
	for u := 0; u < c.n; u++ {
		a, aEnd := c.rowPtr[u], c.rowPtr[u+1]
		t, tEnd := tPtr[u], tPtr[u+1]
		for a < aEnd || t < tEnd {
			var v int32
			var b, m int64
			switch {
			case t >= tEnd || (a < aEnd && c.col[a] < tCol[t]):
				v, b, m = c.col[a], c.bytes[a], c.msgs[a]
				a++
			case a >= aEnd || tCol[t] < c.col[a]:
				v, b, m = tCol[t], c.bytes[tIdx[t]], c.msgs[tIdx[t]]
				t++
			default: // both directions present
				v = c.col[a]
				if v == int32(u) { // diagonal appears in both; count once
					b, m = c.bytes[a], c.msgs[a]
				} else {
					b = c.bytes[a] + c.bytes[tIdx[t]]
					m = c.msgs[a] + c.msgs[tIdx[t]]
				}
				a++
				t++
			}
			col = append(col, v)
			bytes = append(bytes, b)
			msgs = append(msgs, m)
		}
		rowPtr[u+1] = int64(len(col))
	}
	return rowPtr, col, bytes, msgs
}

// Symmetrize returns the undirected view: entry (u,v) holds the summed
// traffic of both directions (diagonal kept once). The result is a
// symmetric CSR whose totals — like every Comm implementation's — sum all
// stored cells, so off-diagonal traffic is counted once per stored
// direction and CutBytes/TotalBytes stays a fraction in [0,1]; halve
// TotalBytes (excluding the diagonal) to recover the undirected volume.
func (c *CSR) Symmetrize() *CSR {
	rowPtr, col, bytes, msgs := c.symmetrized()
	out := &CSR{n: c.n, rowPtr: rowPtr, col: col, bytes: bytes, msgs: msgs}
	for i := range out.bytes {
		out.totalBytes += out.bytes[i]
		out.totalMsgs += out.msgs[i]
	}
	return out
}

// ToGraph converts the matrix to an undirected weighted graph (summing both
// directions) without materializing a dense intermediate: the symmetrized
// CSR rows are handed to the graph package as finished adjacency. Cells
// with messages but zero bytes are dropped, matching the dense
// Matrix.ToGraph (which only adds positive-weight edges).
func (c *CSR) ToGraph() *graph.Graph {
	symPtr, symCol, symBytes, _ := c.symmetrized()
	rowPtr := make([]int64, c.n+1)
	col := symCol[:0]
	w := make([]float64, 0, len(symCol))
	for u := 0; u < c.n; u++ {
		for i := symPtr[u]; i < symPtr[u+1]; i++ {
			if symBytes[i] > 0 {
				col = append(col, symCol[i])
				w = append(w, float64(symBytes[i]))
			}
		}
		rowPtr[u+1] = int64(len(col))
	}
	g, err := graph.FromCSR(c.n, rowPtr, col, w)
	if err != nil {
		// symmetrized guarantees sorted, in-range, symmetric rows; an error
		// here is a bug in this package, not a runtime condition.
		panic(fmt.Sprintf("trace: internal CSR->graph conversion: %v", err))
	}
	return g
}

// NodeCSR aggregates the rank matrix into a node-based matrix under a
// placement, in CSR form: entry (a,b) sums traffic from ranks on used node
// a to ranks on used node b (indices follow p.UsedNodes() order, matching
// the dense NodeMatrix).
func (c *CSR) NodeCSR(p *topology.Placement) (*CSR, error) {
	if p.NumRanks() != c.n {
		return nil, fmt.Errorf("trace: placement has %d ranks, matrix %d", p.NumRanks(), c.n)
	}
	used := p.UsedNodes()
	idx := map[topology.NodeID]int{}
	for i, n := range used {
		idx[n] = i
	}
	b := NewSparseBuilder(len(used))
	for s := 0; s < c.n; s++ {
		ns := idx[p.NodeOf(topology.Rank(s))]
		for i := c.rowPtr[s]; i < c.rowPtr[s+1]; i++ {
			if c.bytes[i] == 0 {
				continue // match the dense NodeMatrix: byte-less cells drop
			}
			nd := idx[p.NodeOf(topology.Rank(int(c.col[i])))]
			b.addCell(ns, int(nd), c.bytes[i], c.msgs[i])
		}
	}
	return b.Freeze(), nil
}

// NodeGraph aggregates under the placement and converts to the undirected
// node graph in one sparse pass (Comm interface).
func (c *CSR) NodeGraph(p *topology.Placement) (*graph.Graph, error) {
	nc, err := c.NodeCSR(p)
	if err != nil {
		return nil, err
	}
	return nc.ToGraph(), nil
}

// TopPairs returns up to k heaviest sender→receiver pairs, matching the
// dense Matrix.TopPairs ordering.
func (c *CSR) TopPairs(k int) []Pair {
	var pairs []Pair
	for s := 0; s < c.n; s++ {
		for i := c.rowPtr[s]; i < c.rowPtr[s+1]; i++ {
			if c.bytes[i] > 0 {
				pairs = append(pairs, Pair{s, int(c.col[i]), c.bytes[i]})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Bytes != pairs[j].Bytes {
			return pairs[i].Bytes > pairs[j].Bytes
		}
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	if len(pairs) > k {
		pairs = pairs[:k]
	}
	return pairs
}

// ToDense expands to a dense Matrix — for tests and small matrices only;
// this is exactly the O(n²) allocation the CSR path exists to avoid.
func (c *CSR) ToDense() *Matrix {
	m := NewMatrix(c.n)
	for s := 0; s < c.n; s++ {
		for i := c.rowPtr[s]; i < c.rowPtr[s+1]; i++ {
			m.setCell(s, int(c.col[i]), c.bytes[i], c.msgs[i])
		}
	}
	return m
}

// ToCSR compacts the dense matrix into CSR form.
func (m *Matrix) ToCSR() *CSR {
	c := &CSR{
		n:          m.N,
		rowPtr:     make([]int64, m.N+1),
		totalBytes: m.totalBytes,
		totalMsgs:  m.totalMsgs,
	}
	nnz := 0
	for s := 0; s < m.N; s++ {
		for d := range m.Bytes[s] {
			if m.Bytes[s][d] != 0 || m.Msgs[s][d] != 0 {
				nnz++
			}
		}
	}
	c.col = make([]int32, 0, nnz)
	c.bytes = make([]int64, 0, nnz)
	c.msgs = make([]int64, 0, nnz)
	for s := 0; s < m.N; s++ {
		for d := range m.Bytes[s] {
			if m.Bytes[s][d] != 0 || m.Msgs[s][d] != 0 {
				c.col = append(c.col, int32(d))
				c.bytes = append(c.bytes, m.Bytes[s][d])
				c.msgs = append(c.msgs, m.Msgs[s][d])
			}
		}
		c.rowPtr[s+1] = int64(len(c.col))
	}
	return c
}
