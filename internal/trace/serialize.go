package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The on-disk format is a compact sparse binary encoding:
//
//	magic "HCTR" | uint32 version | uint32 N | uint32 nnz |
//	nnz × { uint32 src | uint32 dst | int64 bytes | int64 msgs }
//
// so a 1088-rank tsunami trace (≈220k messages but only ≈5k distinct pairs)
// costs ~120 KB instead of the 9.5 MB dense CSV.

const (
	traceMagic   = "HCTR"
	traceVersion = 1
)

// DefaultMaxRanks is the rank-count plausibility bound applied by ReadMatrix
// and ReadCSR when the caller passes no ReadOptions. A corrupt or hostile
// header claiming more ranks than this is rejected before any allocation.
const DefaultMaxRanks = 1 << 22

// ReadOptions tunes trace deserialization. The zero value reproduces the
// historical behavior (DefaultMaxRanks).
type ReadOptions struct {
	// MaxRanks bounds the rank count a trace header may claim; 0 means
	// DefaultMaxRanks. Raise it to read traces from machines beyond 2^22
	// ranks; the reader allocates O(MaxRanks) for CSR and O(MaxRanks²)
	// for dense matrices, so the bound is the caller's allocation budget.
	MaxRanks int
}

func (o *ReadOptions) maxRanks() int {
	if o == nil || o.MaxRanks <= 0 {
		return DefaultMaxRanks
	}
	return o.MaxRanks
}

// RankCountError reports a trace header whose rank count falls outside the
// configured plausibility bound. Callers distinguishing "corrupt file" from
// "bound too low for this machine" can errors.As for it and inspect Max.
type RankCountError struct {
	// Ranks is the rank count the header claimed.
	Ranks int
	// Max is the bound in effect (ReadOptions.MaxRanks or DefaultMaxRanks).
	Max int
}

func (e *RankCountError) Error() string {
	return fmt.Sprintf("trace: header claims %d ranks, outside plausibility bound %d (raise ReadOptions.MaxRanks for larger machines)", e.Ranks, e.Max)
}

// checkRanks applies the plausibility bound from opts (first entry wins;
// both readers accept at most one).
func checkRanks(n int, opts []ReadOptions) error {
	max := DefaultMaxRanks
	if len(opts) > 0 {
		max = opts[0].maxRanks()
	}
	if n < 0 || n > max {
		return &RankCountError{Ranks: n, Max: max}
	}
	return nil
}

// WriteTo serializes the matrix in sparse binary form.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	nnz := 0
	for s := 0; s < m.N; s++ {
		for _, b := range m.Bytes[s] {
			if b != 0 {
				nnz++
			}
		}
	}
	hdr := make([]byte, 4+4+4+4)
	copy(hdr, traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.N))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(nnz))
	n, err := bw.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, err
	}
	rec := make([]byte, 4+4+8+8)
	for s := 0; s < m.N; s++ {
		for d, b := range m.Bytes[s] {
			if b == 0 {
				continue
			}
			binary.LittleEndian.PutUint32(rec[0:], uint32(s))
			binary.LittleEndian.PutUint32(rec[4:], uint32(d))
			binary.LittleEndian.PutUint64(rec[8:], uint64(b))
			binary.LittleEndian.PutUint64(rec[16:], uint64(m.Msgs[s][d]))
			n, err := bw.Write(rec)
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadMatrix deserializes a matrix written by WriteTo. An optional
// ReadOptions raises the rank-count plausibility bound for large machines.
func ReadMatrix(r io.Reader, opts ...ReadOptions) (*Matrix, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint32(hdr[8:]))
	nnz := int(binary.LittleEndian.Uint32(hdr[12:]))
	if err := checkRanks(n, opts); err != nil {
		return nil, err
	}
	m := NewMatrix(n)
	rec := make([]byte, 24)
	for i := 0; i < nnz; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: reading record %d/%d: %w", i, nnz, err)
		}
		s := int(binary.LittleEndian.Uint32(rec[0:]))
		d := int(binary.LittleEndian.Uint32(rec[4:]))
		if s < 0 || s >= n || d < 0 || d >= n {
			return nil, fmt.Errorf("trace: record %d has pair (%d,%d) outside %d ranks", i, s, d, n)
		}
		m.setCell(s, d,
			int64(binary.LittleEndian.Uint64(rec[8:])),
			int64(binary.LittleEndian.Uint64(rec[16:])))
	}
	return m, nil
}

// WriteTo serializes the CSR matrix in the same sparse binary form as the
// dense WriteTo; the two are interchangeable on disk.
func (c *CSR) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	hdr := make([]byte, 4+4+4+4)
	copy(hdr, traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(c.n))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(c.NNZ()))
	n, err := bw.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, err
	}
	rec := make([]byte, 4+4+8+8)
	for s := 0; s < c.n; s++ {
		for i := c.rowPtr[s]; i < c.rowPtr[s+1]; i++ {
			binary.LittleEndian.PutUint32(rec[0:], uint32(s))
			binary.LittleEndian.PutUint32(rec[4:], uint32(c.col[i]))
			binary.LittleEndian.PutUint64(rec[8:], uint64(c.bytes[i]))
			binary.LittleEndian.PutUint64(rec[16:], uint64(c.msgs[i]))
			n, err := bw.Write(rec)
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadCSR deserializes a matrix written by either WriteTo into sparse form,
// never materializing the dense n×n array — the right reader for large-
// machine traces. An optional ReadOptions raises the rank-count bound.
func ReadCSR(r io.Reader, opts ...ReadOptions) (*CSR, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint32(hdr[8:]))
	nnz := int(binary.LittleEndian.Uint32(hdr[12:]))
	if err := checkRanks(n, opts); err != nil {
		return nil, err
	}
	b := NewSparseBuilder(n)
	rec := make([]byte, 24)
	for i := 0; i < nnz; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: reading record %d/%d: %w", i, nnz, err)
		}
		s := int(binary.LittleEndian.Uint32(rec[0:]))
		d := int(binary.LittleEndian.Uint32(rec[4:]))
		if s < 0 || s >= n || d < 0 || d >= n {
			return nil, fmt.Errorf("trace: record %d has pair (%d,%d) outside %d ranks", i, s, d, n)
		}
		b.set(s, d,
			int64(binary.LittleEndian.Uint64(rec[8:])),
			int64(binary.LittleEndian.Uint64(rec[16:])))
	}
	return b.Freeze(), nil
}
