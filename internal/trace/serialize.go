package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The on-disk format is a compact sparse binary encoding:
//
//	v1: magic "HCTR" | uint32 version=1 | uint32 N | uint32 nnz
//	v2: magic "HCTR" | uint32 version=2 | uint32 N | uint64 nnz
//	then nnz × { uint32 src | uint32 dst | int64 bytes | int64 msgs }
//
// so a 1088-rank tsunami trace (≈220k messages but only ≈5k distinct pairs)
// costs ~120 KB instead of the 9.5 MB dense CSV.
//
// Writers emit the v2 header only when the pair count overflows uint32
// (~4.3B distinct pairs — megarank machines), so every trace a v1-only
// reader could represent stays byte-identical to what it always was; both
// readers accept both versions.

const (
	traceMagic    = "HCTR"
	traceVersion1 = 1
	traceVersion2 = 2
)

// traceVersionFor returns the lowest on-disk version whose header can carry
// the pair count.
func traceVersionFor(nnz int64) uint32 {
	if nnz > math.MaxUint32 {
		return traceVersion2
	}
	return traceVersion1
}

// writeTraceHeader emits the version-appropriate header for n ranks and nnz
// stored pairs.
func writeTraceHeader(w io.Writer, n int, nnz int64) (int64, error) {
	ver := traceVersionFor(nnz)
	var hdr []byte
	if ver == traceVersion1 {
		hdr = make([]byte, 4+4+4+4)
		binary.LittleEndian.PutUint32(hdr[12:], uint32(nnz))
	} else {
		hdr = make([]byte, 4+4+4+8)
		binary.LittleEndian.PutUint64(hdr[12:], uint64(nnz))
	}
	copy(hdr, traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], ver)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(n))
	written, err := w.Write(hdr)
	return int64(written), err
}

// readTraceHeader parses a v1 or v2 header, applying the rank-count
// plausibility bound from opts.
func readTraceHeader(r io.Reader, opts []ReadOptions) (n int, nnz int64, err error) {
	pre := make([]byte, 12)
	if _, err := io.ReadFull(r, pre); err != nil {
		return 0, 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(pre[:4]) != traceMagic {
		return 0, 0, fmt.Errorf("trace: bad magic %q", pre[:4])
	}
	ver := binary.LittleEndian.Uint32(pre[4:])
	n = int(binary.LittleEndian.Uint32(pre[8:]))
	switch ver {
	case traceVersion1:
		var raw [4]byte
		if _, err := io.ReadFull(r, raw[:]); err != nil {
			return 0, 0, fmt.Errorf("trace: reading header: %w", err)
		}
		nnz = int64(binary.LittleEndian.Uint32(raw[:]))
	case traceVersion2:
		var raw [8]byte
		if _, err := io.ReadFull(r, raw[:]); err != nil {
			return 0, 0, fmt.Errorf("trace: reading header: %w", err)
		}
		u := binary.LittleEndian.Uint64(raw[:])
		if u > math.MaxInt64 {
			return 0, 0, fmt.Errorf("trace: header claims %d pairs, beyond any plausible trace", u)
		}
		nnz = int64(u)
	default:
		return 0, 0, fmt.Errorf("trace: unsupported version %d", ver)
	}
	if err := checkRanks(n, opts); err != nil {
		return 0, 0, err
	}
	return n, nnz, nil
}

// DefaultMaxRanks is the rank-count plausibility bound applied by ReadMatrix
// and ReadCSR when the caller passes no ReadOptions. A corrupt or hostile
// header claiming more ranks than this is rejected before any allocation.
const DefaultMaxRanks = 1 << 22

// ReadOptions tunes trace deserialization. The zero value reproduces the
// historical behavior (DefaultMaxRanks).
type ReadOptions struct {
	// MaxRanks bounds the rank count a trace header may claim; 0 means
	// DefaultMaxRanks. Raise it to read traces from machines beyond 2^22
	// ranks; the reader allocates O(MaxRanks) for CSR and O(MaxRanks²)
	// for dense matrices, so the bound is the caller's allocation budget.
	MaxRanks int
}

func (o *ReadOptions) maxRanks() int {
	if o == nil || o.MaxRanks <= 0 {
		return DefaultMaxRanks
	}
	return o.MaxRanks
}

// RankCountError reports a trace header whose rank count falls outside the
// configured plausibility bound. Callers distinguishing "corrupt file" from
// "bound too low for this machine" can errors.As for it and inspect Max.
type RankCountError struct {
	// Ranks is the rank count the header claimed.
	Ranks int
	// Max is the bound in effect (ReadOptions.MaxRanks or DefaultMaxRanks).
	Max int
}

func (e *RankCountError) Error() string {
	return fmt.Sprintf("trace: header claims %d ranks, outside plausibility bound %d (raise ReadOptions.MaxRanks for larger machines)", e.Ranks, e.Max)
}

// checkRanks applies the plausibility bound from opts (first entry wins;
// both readers accept at most one).
func checkRanks(n int, opts []ReadOptions) error {
	max := DefaultMaxRanks
	if len(opts) > 0 {
		max = opts[0].maxRanks()
	}
	if n < 0 || n > max {
		return &RankCountError{Ranks: n, Max: max}
	}
	return nil
}

// WriteTo serializes the matrix in sparse binary form.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	nnz := int64(0)
	for s := 0; s < m.N; s++ {
		for _, b := range m.Bytes[s] {
			if b != 0 {
				nnz++
			}
		}
	}
	n, err := writeTraceHeader(bw, m.N, nnz)
	written += n
	if err != nil {
		return written, err
	}
	rec := make([]byte, 4+4+8+8)
	for s := 0; s < m.N; s++ {
		for d, b := range m.Bytes[s] {
			if b == 0 {
				continue
			}
			binary.LittleEndian.PutUint32(rec[0:], uint32(s))
			binary.LittleEndian.PutUint32(rec[4:], uint32(d))
			binary.LittleEndian.PutUint64(rec[8:], uint64(b))
			binary.LittleEndian.PutUint64(rec[16:], uint64(m.Msgs[s][d]))
			n, err := bw.Write(rec)
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadMatrix deserializes a matrix written by WriteTo (either header
// version). An optional ReadOptions raises the rank-count plausibility
// bound for large machines.
func ReadMatrix(r io.Reader, opts ...ReadOptions) (*Matrix, error) {
	br := bufio.NewReader(r)
	n, nnz, err := readTraceHeader(br, opts)
	if err != nil {
		return nil, err
	}
	m := NewMatrix(n)
	rec := make([]byte, 24)
	for i := int64(0); i < nnz; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: reading record %d/%d: %w", i, nnz, err)
		}
		s := int(binary.LittleEndian.Uint32(rec[0:]))
		d := int(binary.LittleEndian.Uint32(rec[4:]))
		if s < 0 || s >= n || d < 0 || d >= n {
			return nil, fmt.Errorf("trace: record %d has pair (%d,%d) outside %d ranks", i, s, d, n)
		}
		m.setCell(s, d,
			int64(binary.LittleEndian.Uint64(rec[8:])),
			int64(binary.LittleEndian.Uint64(rec[16:])))
	}
	return m, nil
}

// WriteTo serializes the CSR matrix in the same sparse binary form as the
// dense WriteTo; the two are interchangeable on disk.
func (c *CSR) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := writeTraceHeader(bw, c.n, int64(c.NNZ()))
	written += n
	if err != nil {
		return written, err
	}
	rec := make([]byte, 4+4+8+8)
	for s := 0; s < c.n; s++ {
		for i := c.rowPtr[s]; i < c.rowPtr[s+1]; i++ {
			binary.LittleEndian.PutUint32(rec[0:], uint32(s))
			binary.LittleEndian.PutUint32(rec[4:], uint32(c.col[i]))
			binary.LittleEndian.PutUint64(rec[8:], uint64(c.bytes[i]))
			binary.LittleEndian.PutUint64(rec[16:], uint64(c.msgs[i]))
			n, err := bw.Write(rec)
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadCSR deserializes a matrix written by either WriteTo (either header
// version) into sparse form, never materializing the dense n×n array — the
// right reader for large-machine traces. An optional ReadOptions raises the
// rank-count bound.
func ReadCSR(r io.Reader, opts ...ReadOptions) (*CSR, error) {
	br := bufio.NewReader(r)
	n, nnz, err := readTraceHeader(br, opts)
	if err != nil {
		return nil, err
	}
	b := NewSparseBuilder(n)
	rec := make([]byte, 24)
	for i := int64(0); i < nnz; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: reading record %d/%d: %w", i, nnz, err)
		}
		s := int(binary.LittleEndian.Uint32(rec[0:]))
		d := int(binary.LittleEndian.Uint32(rec[4:]))
		if s < 0 || s >= n || d < 0 || d >= n {
			return nil, fmt.Errorf("trace: record %d has pair (%d,%d) outside %d ranks", i, s, d, n)
		}
		b.set(s, d,
			int64(binary.LittleEndian.Uint64(rec[8:])),
			int64(binary.LittleEndian.Uint64(rec[16:])))
	}
	return b.Freeze(), nil
}
