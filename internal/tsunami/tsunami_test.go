package tsunami

import (
	"math"
	"testing"

	"hierclust/internal/checkpoint"
	"hierclust/internal/hybrid"
	"hierclust/internal/simmpi"
	"hierclust/internal/topology"
	"hierclust/internal/trace"
)

func smallParams(ranks int) Params {
	p := DefaultParams(ranks)
	p.NX, p.NY = 48, 48
	p.Source = Source{CX: 24, CY: 24, Amplitude: 2, Sigma: 4}
	return p
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams(4)
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := good
	bad.NY = 100 // not divisible by 4? 100/4=25, fine; use ranks mismatch
	bad.Ranks = 7
	if err := bad.Validate(); err == nil {
		t.Error("accepted NY not divisible by ranks")
	}
	bad = good
	bad.Dt = 100
	if err := bad.Validate(); err == nil {
		t.Error("accepted CFL violation")
	}
	bad = good
	bad.NX = 1
	if err := bad.Validate(); err == nil {
		t.Error("accepted tiny grid")
	}
	bad = good
	bad.Depth = -1
	if err := bad.Validate(); err == nil {
		t.Error("accepted negative depth")
	}
	if _, err := NewSolver(good, 99); err == nil {
		t.Error("accepted out-of-range rank")
	}
}

func TestMassConservationReflective(t *testing.T) {
	app, err := NewFTApp(smallParams(4))
	if err != nil {
		t.Fatal(err)
	}
	m0 := app.TotalMass()
	if err := app.RunSequential(100); err != nil {
		t.Fatal(err)
	}
	m1 := app.TotalMass()
	if rel := math.Abs(m1-m0) / math.Abs(m0); rel > 1e-9 {
		t.Errorf("mass drifted by %.3g relative (from %g to %g)", rel, m0, m1)
	}
}

func TestMassConservationPeriodic(t *testing.T) {
	p := smallParams(1)
	p.Boundary = Periodic
	app, err := NewFTApp(p)
	if err != nil {
		t.Fatal(err)
	}
	m0 := app.TotalMass()
	if err := app.RunSequential(50); err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(app.TotalMass()-m0) / math.Abs(m0); rel > 1e-10 {
		t.Errorf("periodic mass drift %.3g", rel)
	}
}

func TestEnergyDissipates(t *testing.T) {
	// Lax–Friedrichs is dissipative: energy must never grow.
	app, err := NewFTApp(smallParams(4))
	if err != nil {
		t.Fatal(err)
	}
	prev := app.TotalEnergy()
	for i := 0; i < 20; i++ {
		if err := app.RunSequential(5); err != nil {
			t.Fatal(err)
		}
		e := app.TotalEnergy()
		if e > prev*(1+1e-12) {
			t.Fatalf("energy grew from %g to %g at step %d", prev, e, (i+1)*5)
		}
		prev = e
	}
}

func TestWavePropagatesOutward(t *testing.T) {
	p := smallParams(4)
	app, err := NewFTApp(p)
	if err != nil {
		t.Fatal(err)
	}
	centerRank := 2 // row 24 lives in slab 2 (rows 24..35)
	center0 := app.Solver(centerRank).Eta(0, 24)
	if err := app.RunSequential(30); err != nil {
		t.Fatal(err)
	}
	center1 := app.Solver(centerRank).Eta(0, 24)
	if center1 >= center0 {
		t.Errorf("central elevation did not decay: %g -> %g", center0, center1)
	}
	// Some wave must have reached the first slab (far from the source).
	var maxFar float64
	s0 := app.Solver(0)
	for j := 0; j < s0.Rows(); j++ {
		for i := 0; i < p.NX; i++ {
			if v := math.Abs(s0.Eta(j, i)); v > maxFar {
				maxFar = v
			}
		}
	}
	if maxFar == 0 {
		t.Error("no wave energy reached distant slabs after 30 steps")
	}
}

func TestDecompositionMatchesSingleRank(t *testing.T) {
	// The decomposed run must reproduce the single-slab run exactly:
	// ghost exchange is numerically transparent.
	whole, err := NewFTApp(smallParams(1))
	if err != nil {
		t.Fatal(err)
	}
	split, err := NewFTApp(smallParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := whole.RunSequential(40); err != nil {
		t.Fatal(err)
	}
	if err := split.RunSequential(40); err != nil {
		t.Fatal(err)
	}
	p := smallParams(4)
	rows := p.NY / 4
	for r := 0; r < 4; r++ {
		for j := 0; j < rows; j++ {
			for i := 0; i < p.NX; i++ {
				a := split.Solver(r).Eta(j, i)
				b := whole.Solver(0).Eta(r*rows+j, i)
				if a != b {
					t.Fatalf("eta mismatch at rank %d row %d col %d: %g != %g", r, j, i, a, b)
				}
			}
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	app, err := NewFTApp(smallParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := app.RunSequential(10); err != nil {
		t.Fatal(err)
	}
	snap, err := app.Snapshot(2)
	if err != nil {
		t.Fatal(err)
	}
	// run further, then restore and compare a fresh run from the snapshot
	if err := app.RunSequential(5); err != nil {
		t.Fatal(err)
	}
	if err := app.Restore(2, snap); err != nil {
		t.Fatal(err)
	}
	s := app.Solver(2)
	if s.Iter() != 10 {
		t.Errorf("restored iter = %d, want 10", s.Iter())
	}
	if err := app.Restore(2, snap[:5]); err == nil {
		t.Error("accepted truncated snapshot")
	}
}

func TestFTAppUnderHybridProtocolWithFailure(t *testing.T) {
	// End-to-end: the real application under the real protocol with a
	// node failure must match the failure-free field bit-for-bit.
	p := smallParams(8)
	mach := &topology.Machine{
		Name: "t", Nodes: 4,
		SSDWriteBps: 1e9, SSDReadBps: 1e9, PFSWriteBps: 1e9, PFSReadBps: 1e9, NetBps: 1e9,
	}
	place, err := topology.Block(mach, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	clusters := make([]int, 8)
	for r := range clusters {
		clusters[r] = r / 4 // 2 clusters of 4 ranks (2 nodes each)
	}
	groups := [][]topology.Rank{
		{0, 2}, {1, 3}, // cluster 0: transversal over nodes 0,1
		{4, 6}, {5, 7}, // cluster 1: transversal over nodes 2,3
	}
	app, err := NewFTApp(p)
	if err != nil {
		t.Fatal(err)
	}
	run, err := hybrid.NewRunner(hybrid.Config{
		Placement:       place,
		Clusters:        clusters,
		Groups:          groups,
		CheckpointEvery: 5,
		Level:           checkpoint.L3Encoded,
	}, app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run.Run(20, map[int][]topology.NodeID{12: {1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 1 || rep.Failures[0].RestartedRanks != 4 {
		t.Fatalf("failure handling: %+v", rep.Failures)
	}

	ref, err := NewFTApp(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunSequential(20); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		for j := 0; j < app.Solver(r).Rows(); j++ {
			for i := 0; i < p.NX; i++ {
				if app.Solver(r).Eta(j, i) != ref.Solver(r).Eta(j, i) {
					t.Fatalf("rank %d cell (%d,%d) diverged after recovery", r, j, i)
				}
			}
		}
	}
}

func TestRunTracedProducesDoubleDiagonal(t *testing.T) {
	p := smallParams(8)
	rec := trace.NewRecorder(8)
	masses, err := RunTraced(TracedOptions{Params: p, Iterations: 10, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(masses) != 8 {
		t.Fatalf("masses = %v", masses)
	}
	m := rec.Matrix()
	// Ghost traffic dominates: for every adjacent pair both directions
	// must carry the boundary rows; beyond ±1 only the Allgather init.
	ghostBytes := int64(3 * p.NX * 8 * 10)
	for r := 0; r+1 < 8; r++ {
		if m.Bytes[r][r+1] < ghostBytes {
			t.Errorf("traffic %d->%d = %d, want >= %d", r, r+1, m.Bytes[r][r+1], ghostBytes)
		}
		if m.Bytes[r+1][r] < ghostBytes {
			t.Errorf("traffic %d->%d = %d, want >= %d", r+1, r, m.Bytes[r+1][r], ghostBytes)
		}
	}
	// distance >1 pairs must carry only tiny init traffic
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d || s == d+1 || s == d-1 {
				continue
			}
			if m.Bytes[s][d] > 1000 {
				t.Errorf("unexpected heavy traffic %d->%d: %d bytes", s, d, m.Bytes[s][d])
			}
		}
	}
}

func TestRunTracedMatchesSequentialMass(t *testing.T) {
	p := smallParams(4)
	masses, err := RunTraced(TracedOptions{Params: p, Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewFTApp(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.RunSequential(15); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if math.Abs(masses[r]-seq.Solver(r).Mass()) > 1e-6 {
			t.Errorf("rank %d traced mass %g != sequential %g", r, masses[r], seq.Solver(r).Mass())
		}
	}
}

func TestRunTracedWithEncoders(t *testing.T) {
	p := smallParams(8)
	// 8 app ranks, 2 per node → 4 nodes → world = 8 + 4 encoders = 12.
	world := 12
	rec := trace.NewRecorder(world)
	_, err := RunTraced(TracedOptions{
		Params: p, Iterations: 10,
		ProcsPerNode: 2, EncoderRanks: true,
		CheckpointEvery: 5, CheckpointBytes: 4096,
		Tracer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rec.Matrix()
	// Encoder world ranks are 0, 3, 6, 9 (stride ProcsPerNode+1).
	// Application ranks must have sent checkpoints to their encoder.
	if m.Bytes[1][0] < 2*4096 { // app world-rank 1 -> encoder 0, 2 rounds
		t.Errorf("app->encoder traffic = %d, want >= %d", m.Bytes[1][0], 2*4096)
	}
	// Encoders exchange parity among themselves (4-node group 0..3).
	if m.Bytes[0][3] < 2*4096 {
		t.Errorf("encoder->encoder traffic = %d, want >= %d", m.Bytes[0][3], 2*4096)
	}
	// The app double diagonal sits at world ranks skipping encoders:
	// app 0 (world 1) ↔ app 1 (world 2).
	if m.Bytes[1][2] == 0 || m.Bytes[2][1] == 0 {
		t.Error("application diagonal missing in encoder layout")
	}
}

func TestRunTracedValidation(t *testing.T) {
	p := smallParams(4)
	if _, err := RunTraced(TracedOptions{Params: p, Iterations: 0}); err == nil {
		t.Error("accepted 0 iterations")
	}
	bad := TracedOptions{Params: p, Iterations: 5, EncoderRanks: true}
	if _, err := RunTraced(bad); err == nil {
		t.Error("accepted EncoderRanks without ProcsPerNode")
	}
	bad.ProcsPerNode = 3 // 4 ranks not divisible by 3
	if _, err := RunTraced(bad); err == nil {
		t.Error("accepted indivisible ProcsPerNode")
	}
}

func TestTracedDeterminism(t *testing.T) {
	p := smallParams(4)
	a, err := RunTraced(TracedOptions{Params: p, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTraced(TracedOptions{Params: p, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("nondeterministic mass at rank %d: %g != %g", r, a[r], b[r])
		}
	}
}

var _ simmpi.Tracer = (*trace.Recorder)(nil)
