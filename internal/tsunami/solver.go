// Package tsunami implements the stencil application of the paper's
// evaluation (reference [1], Arce-Acuna & Aoki's real-time tsunami
// simulation): a 2-D linearized shallow-water solver over a sea region,
// decomposed into horizontal slabs, one per rank. Each iteration every rank
// exchanges boundary rows with ranks ±1 — the "blue double diagonal" that
// dominates the communication matrix of the paper's Figure 5b.
//
// The numerics use the Lax–Friedrichs scheme for the linearized long-wave
// equations (∂η/∂t = -H∇·u, ∂u/∂t = -g∇η): dissipative but
// unconditionally stable under the CFL bound, needing a single ghost-row
// exchange of all three fields per step, and exactly mass-conserving under
// periodic boundaries. The solver is deterministic, making it
// send-deterministic under the hybrid protocol.
package tsunami

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Boundary selects the global boundary condition.
type Boundary int

const (
	// Reflective mirrors the fields at the domain edge with the normal
	// velocity negated (a coastline): the paper's open-sea setting.
	Reflective Boundary = iota
	// Periodic wraps the domain in both directions; mass is conserved to
	// machine precision, which the invariant tests exploit.
	Periodic
)

// Params configures a global simulation.
type Params struct {
	// NX and NY are the global grid dimensions (columns, rows).
	NX, NY int
	// Ranks is the number of horizontal slabs; NY must divide evenly.
	Ranks int
	// Depth is the uniform water depth H (m).
	Depth float64
	// G is gravity (m/s²).
	G float64
	// Dx is the grid spacing (m).
	Dx float64
	// Dt is the time step (s); must satisfy the CFL bound
	// Dt ≤ Dx/(√2·√(G·H)).
	Dt float64
	// Boundary selects the edge condition.
	Boundary Boundary
	// Source is the initial Gaussian displacement.
	Source Source
}

// Source is a Gaussian initial surface displacement (the earthquake).
type Source struct {
	// CX, CY are the center in grid coordinates.
	CX, CY float64
	// Amplitude is the peak displacement (m).
	Amplitude float64
	// Sigma is the Gaussian width in cells.
	Sigma float64
}

// DefaultParams returns a stable mid-size configuration: a 256×256 sea at
// 4 km depth with a 2 m displacement, CFL ≈ 0.5.
func DefaultParams(ranks int) Params {
	p := Params{
		NX: 256, NY: 256, Ranks: ranks,
		Depth: 4000, G: 9.81, Dx: 1000,
		Boundary: Reflective,
		Source:   Source{CX: 128, CY: 128, Amplitude: 2, Sigma: 8},
	}
	c := math.Sqrt(p.G * p.Depth)
	p.Dt = 0.5 * p.Dx / (c * math.Sqrt2)
	return p
}

// TraceParams picks the tracing grid used by the paper-reproduction rigs:
// thin slabs keep the solver work proportional to the communication being
// traced. Full-scale runs (≥512 ranks) use a 256-wide sea so ghost rows
// dominate the trace the way the paper's real domain does; smaller runs
// shrink to 64 columns. Both the experiment harness and the public pipeline
// trace through this, so their matrices are identical at equal scales.
func TraceParams(ranks int) Params {
	p := DefaultParams(ranks)
	p.NX = 64
	if ranks >= 512 {
		p.NX = 256
	}
	p.NY = 2 * ranks
	p.Source = Source{CX: float64(p.NX) / 2, CY: float64(p.NY) / 2, Amplitude: 2, Sigma: float64(ranks) / 8}
	return p
}

// Validate reports configuration errors.
func (p *Params) Validate() error {
	if p.NX < 3 || p.NY < 3 {
		return fmt.Errorf("tsunami: grid %dx%d too small", p.NX, p.NY)
	}
	if p.Ranks <= 0 {
		return fmt.Errorf("tsunami: %d ranks", p.Ranks)
	}
	if p.NY%p.Ranks != 0 {
		return fmt.Errorf("tsunami: NY %d not divisible by %d ranks", p.NY, p.Ranks)
	}
	if p.NY/p.Ranks < 1 {
		return fmt.Errorf("tsunami: empty slabs")
	}
	if p.Depth <= 0 || p.G <= 0 || p.Dx <= 0 || p.Dt <= 0 {
		return fmt.Errorf("tsunami: non-positive physics parameters")
	}
	c := math.Sqrt(p.G * p.Depth)
	if p.Dt > p.Dx/(c*math.Sqrt2)+1e-12 {
		return fmt.Errorf("tsunami: Dt %g violates CFL bound %g", p.Dt, p.Dx/(c*math.Sqrt2))
	}
	return nil
}

// Solver holds one rank's slab: rows+2 ghost rows × NX cells of η, u, v.
type Solver struct {
	p         Params
	rank      int
	rows      int // interior rows
	y0        int // global index of first interior row
	eta, u, v []float64
	iter      int
}

// NewSolver builds rank's slab with the initial Gaussian applied.
func NewSolver(p Params, rank int) (*Solver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rank < 0 || rank >= p.Ranks {
		return nil, fmt.Errorf("tsunami: rank %d out of range 0..%d", rank, p.Ranks-1)
	}
	rows := p.NY / p.Ranks
	s := &Solver{
		p: p, rank: rank, rows: rows, y0: rank * rows,
		eta: make([]float64, (rows+2)*p.NX),
		u:   make([]float64, (rows+2)*p.NX),
		v:   make([]float64, (rows+2)*p.NX),
	}
	for j := 0; j < rows; j++ {
		gy := float64(s.y0 + j)
		for i := 0; i < p.NX; i++ {
			dx := float64(i) - p.Source.CX
			dy := gy - p.Source.CY
			s.eta[s.idx(j, i)] = p.Source.Amplitude *
				math.Exp(-(dx*dx+dy*dy)/(2*p.Source.Sigma*p.Source.Sigma))
		}
	}
	return s, nil
}

// idx maps interior row j (0-based) and column i to the flat offset;
// ghost rows are j=-1 and j=rows.
func (s *Solver) idx(j, i int) int { return (j+1)*s.p.NX + i }

// Rank returns the owning rank.
func (s *Solver) Rank() int { return s.rank }

// Rows returns the interior row count.
func (s *Solver) Rows() int { return s.rows }

// Iter returns the completed iteration count.
func (s *Solver) Iter() int { return s.iter }

// Eta returns the surface elevation at local row j, column i.
func (s *Solver) Eta(j, i int) float64 { return s.eta[s.idx(j, i)] }

// TopRows packs the first interior row of (η,u,v) — what the rank above
// (rank-1) needs as its bottom ghost.
func (s *Solver) TopRows() []byte { return s.packRow(0) }

// BottomRows packs the last interior row — the ghost for rank+1.
func (s *Solver) BottomRows() []byte { return s.packRow(s.rows - 1) }

func (s *Solver) packRow(j int) []byte {
	nx := s.p.NX
	out := make([]byte, 3*nx*8)
	for i := 0; i < nx; i++ {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(s.eta[s.idx(j, i)]))
		binary.LittleEndian.PutUint64(out[(nx+i)*8:], math.Float64bits(s.u[s.idx(j, i)]))
		binary.LittleEndian.PutUint64(out[(2*nx+i)*8:], math.Float64bits(s.v[s.idx(j, i)]))
	}
	return out
}

// SetTopGhost installs the neighbor row above (from rank-1's BottomRows).
func (s *Solver) SetTopGhost(data []byte) error { return s.unpackRow(-1, data) }

// SetBottomGhost installs the neighbor row below (from rank+1's TopRows).
func (s *Solver) SetBottomGhost(data []byte) error { return s.unpackRow(s.rows, data) }

func (s *Solver) unpackRow(j int, data []byte) error {
	nx := s.p.NX
	if len(data) != 3*nx*8 {
		return fmt.Errorf("tsunami: ghost row has %d bytes, want %d", len(data), 3*nx*8)
	}
	for i := 0; i < nx; i++ {
		s.eta[s.idx(j, i)] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		s.u[s.idx(j, i)] = math.Float64frombits(binary.LittleEndian.Uint64(data[(nx+i)*8:]))
		s.v[s.idx(j, i)] = math.Float64frombits(binary.LittleEndian.Uint64(data[(2*nx+i)*8:]))
	}
	return nil
}

// applyEdgeGhosts fills ghost rows at the global domain edges (only for the
// first and last slab) according to the boundary condition.
func (s *Solver) applyEdgeGhosts() {
	nx := s.p.NX
	if s.p.Boundary == Periodic {
		// Multi-rank periodic wrap is a cyclic exchange done by the caller;
		// a single slab wraps onto itself locally.
		if s.p.Ranks == 1 {
			for i := 0; i < nx; i++ {
				s.eta[s.idx(-1, i)] = s.eta[s.idx(s.rows-1, i)]
				s.u[s.idx(-1, i)] = s.u[s.idx(s.rows-1, i)]
				s.v[s.idx(-1, i)] = s.v[s.idx(s.rows-1, i)]
				s.eta[s.idx(s.rows, i)] = s.eta[s.idx(0, i)]
				s.u[s.idx(s.rows, i)] = s.u[s.idx(0, i)]
				s.v[s.idx(s.rows, i)] = s.v[s.idx(0, i)]
			}
		}
		return
	}
	if s.rank == 0 {
		for i := 0; i < nx; i++ {
			s.eta[s.idx(-1, i)] = s.eta[s.idx(0, i)]
			s.u[s.idx(-1, i)] = s.u[s.idx(0, i)]
			s.v[s.idx(-1, i)] = -s.v[s.idx(0, i)]
		}
	}
	if s.rank == s.p.Ranks-1 {
		for i := 0; i < nx; i++ {
			s.eta[s.idx(s.rows, i)] = s.eta[s.idx(s.rows-1, i)]
			s.u[s.idx(s.rows, i)] = s.u[s.idx(s.rows-1, i)]
			s.v[s.idx(s.rows, i)] = -s.v[s.idx(s.rows-1, i)]
		}
	}
}

// Step advances the slab one time step. Ghost rows must be current (via
// SetTopGhost/SetBottomGhost for interior boundaries; edge rows are filled
// from the boundary condition automatically).
func (s *Solver) Step() {
	s.applyEdgeGhosts()
	nx := s.p.NX
	lam := s.p.Dt / s.p.Dx
	gl, hl := s.p.G*lam, s.p.Depth*lam

	ne := make([]float64, len(s.eta))
	nu := make([]float64, len(s.u))
	nv := make([]float64, len(s.v))
	copy(ne, s.eta)
	copy(nu, s.u)
	copy(nv, s.v)

	xm := func(i int) int { // left neighbor with x boundary handling
		if i > 0 {
			return i - 1
		}
		if s.p.Boundary == Periodic {
			return nx - 1
		}
		return 0
	}
	xp := func(i int) int {
		if i < nx-1 {
			return i + 1
		}
		if s.p.Boundary == Periodic {
			return 0
		}
		return nx - 1
	}

	for j := 0; j < s.rows; j++ {
		for i := 0; i < nx; i++ {
			il, ir := xm(i), xp(i)
			c, cu, cd := s.idx(j, i), s.idx(j-1, i), s.idx(j+1, i)
			cl, cr := s.idx(j, il), s.idx(j, ir)

			uL, uR := s.u[cl], s.u[cr]
			// Reflective x edges negate the normal (u) velocity.
			if s.p.Boundary == Reflective {
				if i == 0 {
					uL = -s.u[c]
				}
				if i == nx-1 {
					uR = -s.u[c]
				}
			}
			etaL, etaR := s.eta[cl], s.eta[cr]
			if s.p.Boundary == Reflective {
				if i == 0 {
					etaL = s.eta[c]
				}
				if i == nx-1 {
					etaR = s.eta[c]
				}
			}

			avgEta := 0.25 * (etaL + etaR + s.eta[cu] + s.eta[cd])
			avgU := 0.25 * (uL + uR + s.u[cu] + s.u[cd])
			avgV := 0.25 * (s.v[cl] + s.v[cr] + s.v[cu] + s.v[cd])

			ne[c] = avgEta - 0.5*hl*((uR-uL)+(s.v[cd]-s.v[cu]))
			nu[c] = avgU - 0.5*gl*(etaR-etaL)
			nv[c] = avgV - 0.5*gl*(s.eta[cd]-s.eta[cu])
		}
	}
	s.eta, s.u, s.v = ne, nu, nv
	s.iter++
}

// Mass returns the slab's total surface displacement Ση·Dx².
func (s *Solver) Mass() float64 {
	var sum float64
	for j := 0; j < s.rows; j++ {
		for i := 0; i < s.p.NX; i++ {
			sum += s.eta[s.idx(j, i)]
		}
	}
	return sum * s.p.Dx * s.p.Dx
}

// Energy returns the slab's total energy ½Σ(g·η² + H(u²+v²))·Dx².
func (s *Solver) Energy() float64 {
	var sum float64
	for j := 0; j < s.rows; j++ {
		for i := 0; i < s.p.NX; i++ {
			c := s.idx(j, i)
			sum += s.p.G*s.eta[c]*s.eta[c] + s.p.Depth*(s.u[c]*s.u[c]+s.v[c]*s.v[c])
		}
	}
	return 0.5 * sum * s.p.Dx * s.p.Dx
}

// Snapshot serializes the interior fields and iteration counter.
func (s *Solver) Snapshot() ([]byte, error) {
	nx := s.p.NX
	out := make([]byte, 8+3*s.rows*nx*8)
	binary.LittleEndian.PutUint64(out[:8], uint64(s.iter))
	off := 8
	for _, field := range [][]float64{s.eta, s.u, s.v} {
		for j := 0; j < s.rows; j++ {
			for i := 0; i < nx; i++ {
				binary.LittleEndian.PutUint64(out[off:], math.Float64bits(field[s.idx(j, i)]))
				off += 8
			}
		}
	}
	return out, nil
}

// Restore replaces the interior fields and iteration counter from a
// snapshot. Ghost rows are cleared; they are refreshed before the next
// step by the exchange.
func (s *Solver) Restore(b []byte) error {
	nx := s.p.NX
	want := 8 + 3*s.rows*nx*8
	if len(b) != want {
		return fmt.Errorf("tsunami: snapshot is %d bytes, want %d", len(b), want)
	}
	s.iter = int(binary.LittleEndian.Uint64(b[:8]))
	off := 8
	for _, field := range [][]float64{s.eta, s.u, s.v} {
		for k := range field {
			field[k] = 0
		}
		for j := 0; j < s.rows; j++ {
			for i := 0; i < nx; i++ {
				field[s.idx(j, i)] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
				off += 8
			}
		}
	}
	return nil
}
