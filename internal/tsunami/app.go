package tsunami

import (
	"fmt"

	"hierclust/internal/hybrid"
)

// FTApp adapts a decomposed tsunami simulation to the hybrid protocol's App
// interface: Produce emits the boundary-row exchanges to ranks ±1 and
// Advance installs received ghosts and steps the slab. The solver is
// deterministic, so the application is send-deterministic as the protocol
// requires.
type FTApp struct {
	params  Params
	solvers []*Solver
}

// NewFTApp builds the per-rank solvers for a full simulation.
func NewFTApp(p Params) (*FTApp, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &FTApp{params: p, solvers: make([]*Solver, p.Ranks)}
	for r := 0; r < p.Ranks; r++ {
		s, err := NewSolver(p, r)
		if err != nil {
			return nil, err
		}
		a.solvers[r] = s
	}
	return a, nil
}

// Solver exposes rank r's slab (for diagnostics).
func (a *FTApp) Solver(r int) *Solver { return a.solvers[r] }

// upNeighbor returns the rank above r (-1 if none).
func (a *FTApp) upNeighbor(r int) int {
	if r > 0 {
		return r - 1
	}
	if a.params.Boundary == Periodic && a.params.Ranks > 1 {
		return a.params.Ranks - 1
	}
	return -1
}

func (a *FTApp) downNeighbor(r int) int {
	if r < a.params.Ranks-1 {
		return r + 1
	}
	if a.params.Boundary == Periodic && a.params.Ranks > 1 {
		return 0
	}
	return -1
}

// Produce implements hybrid.App: boundary rows to the neighbor slabs.
func (a *FTApp) Produce(rank, iter int) ([]hybrid.Message, error) {
	s := a.solvers[rank]
	if s.Iter() != iter {
		return nil, fmt.Errorf("tsunami: rank %d produce at iter %d but solver at %d", rank, iter, s.Iter())
	}
	var out []hybrid.Message
	if up := a.upNeighbor(rank); up >= 0 {
		out = append(out, hybrid.Message{Dest: up, Payload: s.TopRows()})
	}
	if down := a.downNeighbor(rank); down >= 0 {
		out = append(out, hybrid.Message{Dest: down, Payload: s.BottomRows()})
	}
	return out, nil
}

// Advance implements hybrid.App: install ghosts, then step.
func (a *FTApp) Advance(rank, iter int, inbox []hybrid.Message) error {
	s := a.solvers[rank]
	if s.Iter() != iter {
		return fmt.Errorf("tsunami: rank %d advance at iter %d but solver at %d", rank, iter, s.Iter())
	}
	for _, m := range inbox {
		switch m.Src {
		case a.upNeighbor(rank):
			if err := s.SetTopGhost(m.Payload); err != nil {
				return err
			}
		case a.downNeighbor(rank):
			if err := s.SetBottomGhost(m.Payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("tsunami: rank %d received ghost from non-neighbor %d", rank, m.Src)
		}
	}
	s.Step()
	return nil
}

// Snapshot implements hybrid.App.
func (a *FTApp) Snapshot(rank int) ([]byte, error) { return a.solvers[rank].Snapshot() }

// Restore implements hybrid.App.
func (a *FTApp) Restore(rank int, b []byte) error { return a.solvers[rank].Restore(b) }

// TotalMass sums all slabs' mass.
func (a *FTApp) TotalMass() float64 {
	var m float64
	for _, s := range a.solvers {
		m += s.Mass()
	}
	return m
}

// TotalEnergy sums all slabs' energy.
func (a *FTApp) TotalEnergy() float64 {
	var e float64
	for _, s := range a.solvers {
		e += s.Energy()
	}
	return e
}

// RunSequential advances the whole simulation without any protocol — the
// failure-free ground truth used by tests and examples.
func (a *FTApp) RunSequential(iters int) error {
	for it := 0; it < iters; it++ {
		type ghost struct {
			rank int
			top  bool
			data []byte
		}
		var ghosts []ghost
		for r := 0; r < a.params.Ranks; r++ {
			if up := a.upNeighbor(r); up >= 0 {
				ghosts = append(ghosts, ghost{rank: up, top: false, data: a.solvers[r].TopRows()})
			}
			if down := a.downNeighbor(r); down >= 0 {
				ghosts = append(ghosts, ghost{rank: down, top: true, data: a.solvers[r].BottomRows()})
			}
		}
		for _, g := range ghosts {
			var err error
			if g.top {
				err = a.solvers[g.rank].SetTopGhost(g.data)
			} else {
				err = a.solvers[g.rank].SetBottomGhost(g.data)
			}
			if err != nil {
				return err
			}
		}
		for r := 0; r < a.params.Ranks; r++ {
			a.solvers[r].Step()
		}
	}
	return nil
}
