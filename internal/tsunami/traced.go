package tsunami

import (
	"fmt"

	"hierclust/internal/simmpi"
)

// TracedOptions configures a concurrent traced run of the tsunami
// simulation on the simmpi runtime, reproducing the execution the paper
// traced for Figures 5a/5b.
type TracedOptions struct {
	// Params configures the solver; Params.Ranks application ranks run.
	Params Params
	// Iterations is the number of stencil steps (the paper used 100).
	Iterations int
	// ProcsPerNode is the number of application ranks per node in the
	// world layout; used only when EncoderRanks is set.
	ProcsPerNode int
	// EncoderRanks adds one FTI-style encoder process per node: world
	// rank layout becomes [enc, app×ProcsPerNode] repeating, so encoder
	// processes sit at world ranks ≡ 0 (mod ProcsPerNode+1) — ranks 0,
	// 17, 34, 51... in the paper's 16-app-procs-per-node run.
	EncoderRanks bool
	// CheckpointEvery triggers an encoder round every so many iterations
	// (0 disables). Each application rank sends its checkpoint-sized
	// payload to its node's encoder, and encoders exchange parity blocks
	// with the other encoders of their 4-node group.
	CheckpointEvery int
	// CheckpointBytes is the per-rank checkpoint payload for encoder
	// rounds.
	CheckpointBytes int
	// Tracer observes all traffic.
	Tracer simmpi.Tracer
}

// worldLayout computes the world size and the role of each world rank.
// With encoders, each node block is [encoder, app, app, ...].
func worldLayout(o *TracedOptions) (worldSize int, appOf []int, encOf []int, err error) {
	n := o.Params.Ranks
	if !o.EncoderRanks {
		appOf = make([]int, n)
		for i := range appOf {
			appOf[i] = i
		}
		return n, appOf, nil, nil
	}
	if o.ProcsPerNode <= 0 {
		return 0, nil, nil, fmt.Errorf("tsunami: EncoderRanks requires ProcsPerNode")
	}
	if n%o.ProcsPerNode != 0 {
		return 0, nil, nil, fmt.Errorf("tsunami: %d app ranks not divisible by %d per node", n, o.ProcsPerNode)
	}
	nodes := n / o.ProcsPerNode
	worldSize = n + nodes
	appOf = make([]int, n)     // app rank -> world rank
	encOf = make([]int, nodes) // node -> world rank of its encoder
	w := 0
	a := 0
	for nd := 0; nd < nodes; nd++ {
		encOf[nd] = w
		w++
		for k := 0; k < o.ProcsPerNode; k++ {
			appOf[a] = w
			a++
			w++
		}
	}
	return worldSize, appOf, encOf, nil
}

// RunTraced executes the tsunami simulation concurrently on simmpi with
// every rank a goroutine, reproducing the paper's traced execution: an
// MPI_Allgather during initialization (FTI init), the ±1 boundary
// exchanges of the stencil, and — when encoders are enabled — the
// application→encoder checkpoint traffic plus encoder↔encoder parity
// exchanges. Returns the per-rank final mass for verification.
func RunTraced(o TracedOptions) ([]float64, error) {
	if err := o.Params.Validate(); err != nil {
		return nil, err
	}
	if o.Iterations <= 0 {
		return nil, fmt.Errorf("tsunami: %d iterations", o.Iterations)
	}
	worldSize, appOf, encOf, err := worldLayout(&o)
	if err != nil {
		return nil, err
	}
	// Reverse map world rank -> app rank (-1 for encoders).
	appRank := make([]int, worldSize)
	for i := range appRank {
		appRank[i] = -1
	}
	for a, w := range appOf {
		appRank[w] = a
	}

	// Tag conventions: ghost rows use tagOf(iteration, direction);
	// checkpoint posts use 200, acks 202, encoder parity 300+round.
	masses := make([]float64, o.Params.Ranks)
	err = simmpi.Run(worldSize, simmpi.Options{Tracer: o.Tracer}, func(p *simmpi.Proc) error {
		comm := p.Comm()
		// FTI initialization: every process joins an Allgather (the
		// power-of-two diagonals of Fig. 5b).
		if _, err := comm.Allgather([]byte{byte(p.Rank())}); err != nil {
			return err
		}
		a := appRank[p.Rank()]
		if a == -1 {
			return runEncoder(comm, p.Rank(), &o, encOf, appOf)
		}
		return runAppRank(comm, a, &o, appOf, encOf, masses)
	})
	if err != nil {
		return nil, err
	}
	return masses, nil
}

func runAppRank(comm *simmpi.Comm, a int, o *TracedOptions, appOf, encOf []int, masses []float64) error {
	s, err := NewSolver(o.Params, a)
	if err != nil {
		return err
	}
	n := o.Params.Ranks
	for it := 0; it < o.Iterations; it++ {
		var upReq, downReq *simmpi.Request
		if a > 0 {
			if err := comm.Send(appOf[a-1], tagOf(it, true), s.TopRows()); err != nil {
				return err
			}
			upReq = comm.Irecv(appOf[a-1], tagOf(it, false))
		}
		if a < n-1 {
			if err := comm.Send(appOf[a+1], tagOf(it, false), s.BottomRows()); err != nil {
				return err
			}
			downReq = comm.Irecv(appOf[a+1], tagOf(it, true))
		}
		if upReq != nil {
			b, err := upReq.Wait()
			if err != nil {
				return err
			}
			if err := s.SetTopGhost(b); err != nil {
				return err
			}
		}
		if downReq != nil {
			b, err := downReq.Wait()
			if err != nil {
				return err
			}
			if err := s.SetBottomGhost(b); err != nil {
				return err
			}
		}
		s.Step()

		if o.EncoderRanks && o.CheckpointEvery > 0 && (it+1)%o.CheckpointEvery == 0 {
			// Send the checkpoint to this node's encoder and wait for the
			// ack (FTI's local post + encode handshake).
			node := a / o.ProcsPerNode
			enc := encOf[node]
			if err := comm.Send(enc, 200, make([]byte, o.CheckpointBytes)); err != nil {
				return err
			}
			if _, err := comm.Recv(enc, 202); err != nil {
				return err
			}
		}
	}
	masses[a] = s.Mass()
	return nil
}

// tagOf disambiguates ghost messages by iteration and direction.
func tagOf(it int, up bool) simmpi.Tag {
	t := simmpi.Tag(1000 + 2*it)
	if up {
		t++
	}
	return t
}

func runEncoder(comm *simmpi.Comm, worldRank int, o *TracedOptions, encOf, appOf []int) error {
	if o.CheckpointEvery <= 0 {
		return nil
	}
	// Which node is this encoder's? encOf is ascending.
	node := -1
	for nd, w := range encOf {
		if w == worldRank {
			node = nd
			break
		}
	}
	if node == -1 {
		return fmt.Errorf("tsunami: world rank %d not an encoder", worldRank)
	}
	nodes := len(encOf)
	group4 := node / 4 // encoders cooperate in 4-node groups
	lo := group4 * 4
	hi := lo + 4
	if hi > nodes {
		hi = nodes
	}
	rounds := o.Iterations / o.CheckpointEvery
	for round := 0; round < rounds; round++ {
		// Collect checkpoints from this node's application ranks.
		for k := 0; k < o.ProcsPerNode; k++ {
			a := node*o.ProcsPerNode + k
			if _, err := comm.Recv(appOf[a], 200); err != nil {
				return err
			}
		}
		// Exchange parity-sized blocks with the other encoders of the
		// group (the isolated points at encoder intersections in Fig. 5b).
		parity := make([]byte, o.CheckpointBytes)
		for other := lo; other < hi; other++ {
			if other == node {
				continue
			}
			if err := comm.Send(encOf[other], simmpi.Tag(300+round), parity); err != nil {
				return err
			}
		}
		for other := lo; other < hi; other++ {
			if other == node {
				continue
			}
			if _, err := comm.Recv(encOf[other], simmpi.Tag(300+round)); err != nil {
				return err
			}
		}
		// Ack the application ranks.
		for k := 0; k < o.ProcsPerNode; k++ {
			a := node*o.ProcsPerNode + k
			if err := comm.Send(appOf[a], 202, nil); err != nil {
				return err
			}
		}
	}
	return nil
}
