package reliability

import (
	"context"
	"errors"
	"testing"
	"time"

	"hierclust/internal/racedetect"
	"hierclust/internal/topology"
)

// mcForcingFixture builds a model and group layout that force the Monte
// Carlo path for every f >= 2 on a 2048-node machine: 150 single-node
// tolerance-1 groups push the union bound past 0.1, and one group with
// non-uniform per-node member counts invalidates the disjoint-span closed
// form (see flatten). Enumeration is out for C(2048, f>=2) > ExactLimit.
func mcForcingFixture(samples int) (*Model, []Group) {
	loss := make([]float64, 48)
	for i := range loss {
		loss[i] = 1
	}
	mdl := &Model{Nodes: 2048, Mix: Mix{NodeLoss: loss}, MonteCarloSamples: samples}
	mdl.Mix.Normalize()

	var groups []Group
	for i := 0; i < 150; i++ {
		groups = append(groups, Group{MembersOn: map[topology.NodeID]int{topology.NodeID(i): 2}, Tolerance: 1})
	}
	groups = append(groups, Group{
		MembersOn: map[topology.NodeID]int{150: 2, 151: 1},
		Tolerance: 1,
	})
	return mdl, groups
}

// TestCatastropheProbCtxCancelMidMonteCarlo pins the model's cancellation
// latency: cancelling a multi-second sampling run must make it return
// ctx.Err() within the chunk-polling bound, not after finishing the
// samples.
func TestCatastropheProbCtxCancelMidMonteCarlo(t *testing.T) {
	mdl, groups := mcForcingFixture(5_000_000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := mdl.CatastropheProbCtx(ctx, groups)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // well inside the first sampling rounds
	start := time.Now()
	cancel()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled CatastropheProbCtx did not return within 30s")
	}
	lat := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call returned %v, want context.Canceled", err)
	}
	bound := 100 * time.Millisecond
	if racedetect.Enabled {
		bound = time.Second
	}
	if lat > bound {
		t.Fatalf("cancel→return latency %v exceeds %v", lat, bound)
	}
}

// TestCatastropheProbCtxPreCancelled: a context cancelled before the call
// returns immediately with its error and no partial result.
func TestCatastropheProbCtxPreCancelled(t *testing.T) {
	mdl, groups := mcForcingFixture(5_000_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	p, err := mdl.CatastropheProbCtx(ctx, groups)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled call returned %v, want context.Canceled", err)
	}
	if p != 0 {
		t.Fatalf("pre-cancelled call returned probability %g, want 0", p)
	}
	if lat := time.Since(start); lat > time.Second {
		t.Fatalf("pre-cancelled call took %v", lat)
	}
}

// TestCatastropheProbCtxUncancelledIdentical: threading a live context
// through the sampling loops must not change a single bit of the result
// relative to the context-free call.
func TestCatastropheProbCtxUncancelledIdentical(t *testing.T) {
	mdl, groups := mcForcingFixture(20_000)
	ref, err := mdl.CatastropheProb(groups)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := mdl.CatastropheProbCtx(ctx, groups)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("context-threaded result %g != context-free result %g", got, ref)
	}
}
