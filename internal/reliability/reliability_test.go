package reliability

import (
	"math"
	"testing"

	"hierclust/internal/topology"
)

func machine(nodes, ppn int) (*topology.Machine, *topology.Placement) {
	m := &topology.Machine{Name: "t", Nodes: nodes}
	p, err := topology.Block(m, nodes*ppn, ppn)
	if err != nil {
		panic(err)
	}
	return m, p
}

func TestCombinations(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {64, 2, 2016}, {64, 3, 41664},
		{4, 5, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := combinations(c.n, c.k); math.Abs(got-c.want) > 1e-9*math.Max(1, c.want) {
			t.Errorf("C(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestMixValidateNormalize(t *testing.T) {
	m := DefaultMix()
	if err := m.Validate(); err != nil {
		t.Fatalf("default mix invalid: %v", err)
	}
	sum := m.Transient
	for _, p := range m.NodeLoss {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("default mix sums to %g", sum)
	}
	bad := Mix{Transient: -1}
	if err := bad.Validate(); err == nil {
		t.Error("accepted negative transient")
	}
	bad2 := Mix{NodeLoss: []float64{-0.1}}
	if err := bad2.Validate(); err == nil {
		t.Error("accepted negative node loss")
	}
	zero := Mix{}
	if err := zero.Validate(); err == nil {
		t.Error("accepted all-zero mix")
	}
	zero.Normalize() // must not panic or divide by zero
}

func TestGroupFromRanks(t *testing.T) {
	_, p := machine(4, 4)
	g := GroupFromRanks(p, []topology.Rank{0, 4, 8, 12}) // one per node
	if g.NodeSpan() != 4 {
		t.Errorf("NodeSpan = %d, want 4", g.NodeSpan())
	}
	if g.Tolerance != 2 {
		t.Errorf("Tolerance = %d, want 2 (half group)", g.Tolerance)
	}
	g2 := GroupFromRanks(p, []topology.Rank{0, 1, 2, 3}) // all on node 0
	if g2.NodeSpan() != 1 || g2.MembersOn[0] != 4 {
		t.Errorf("co-located group: %+v", g2)
	}
}

func TestDestroyedBy(t *testing.T) {
	g := Group{MembersOn: map[topology.NodeID]int{0: 2, 1: 2}, Tolerance: 2}
	if g.destroyedBy([]topology.NodeID{0}) {
		t.Error("losing 2 of 4 with tolerance 2 destroyed the group")
	}
	if !g.destroyedBy([]topology.NodeID{0, 1}) {
		t.Error("losing all members did not destroy the group")
	}
	if g.destroyedBy([]topology.NodeID{7}) {
		t.Error("losing an unrelated node destroyed the group")
	}
}

func TestExactConditionalHandComputed(t *testing.T) {
	// One group: 1 member on node 0, tolerance 0. With 1 failure among 4
	// nodes, P = 1/4; with 2 failures, P = C(3,1)/C(4,2) = 3/6 = 1/2.
	groups := []Group{{MembersOn: map[topology.NodeID]int{0: 1}, Tolerance: 0}}
	if got := exactConditional(flatten(groups, 4), 4, 1, 1, nil); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("f=1: %g, want 0.25", got)
	}
	if got := exactConditional(flatten(groups, 4), 4, 2, 1, nil); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("f=2: %g, want 0.5", got)
	}
}

func TestGroupConditionalMatchesExact(t *testing.T) {
	// The per-group closed form must agree with brute-force enumeration.
	groups := []Group{{MembersOn: map[topology.NodeID]int{0: 2, 3: 1, 5: 1}, Tolerance: 2}}
	for f := 1; f <= 4; f++ {
		exact := exactConditional(flatten(groups, 8), 8, f, 1, nil)
		closed := groupConditional(&groups[0], 8, f, 1, nil)
		if math.Abs(exact-closed) > 1e-12 {
			t.Errorf("f=%d: exact %g != closed-form %g", f, exact, closed)
		}
	}
}

func TestUnionBoundOverlapsCap(t *testing.T) {
	// Two identical always-destroyed groups: union bound caps at 1.
	g := Group{MembersOn: map[topology.NodeID]int{0: 4}, Tolerance: 0}
	groups := []Group{g, g}
	// Any failure including node 0 destroys both; with n=2,f=1: each group
	// P=1/2, sum = 1.0 (capped).
	if got := unionBoundConditional(groups, 2, 1, 1, nil); got != 1 {
		t.Errorf("union bound = %g, want capped 1", got)
	}
}

func TestMonteCarloAgreesWithExact(t *testing.T) {
	groups := []Group{
		{MembersOn: map[topology.NodeID]int{0: 1, 1: 1, 2: 1}, Tolerance: 1},
		{MembersOn: map[topology.NodeID]int{3: 1, 4: 1, 5: 1}, Tolerance: 1},
	}
	exact := exactConditional(flatten(groups, 10), 10, 3, 1, nil)
	mc := monteCarloConditional(flatten(groups, 10), 10, 3, 400_000, 1, 1, nil)
	if math.Abs(exact-mc) > 0.01 {
		t.Errorf("monte carlo %g vs exact %g", mc, exact)
	}
}

func TestCatastropheProbValidation(t *testing.T) {
	mdl := &Model{Nodes: 0, Mix: DefaultMix()}
	if _, err := mdl.CatastropheProb(nil); err == nil {
		t.Error("accepted 0-node model")
	}
	mdl = &Model{Nodes: 4, Mix: Mix{Transient: -1}}
	if _, err := mdl.CatastropheProb(nil); err == nil {
		t.Error("accepted invalid mix")
	}
}

// The four Table II reliability scenarios. 64 nodes, 16 procs per node,
// 1024 ranks, tolerance = half the group (FTI provisioning).

func tableIIGroups(strategy string) []Group {
	_, p := machine(64, 16)
	var groups []Group
	switch strategy {
	case "size-guided-8": // 8 consecutive ranks: half a node each
		for base := 0; base < 1024; base += 8 {
			var mem []topology.Rank
			for r := base; r < base+8; r++ {
				mem = append(mem, topology.Rank(r))
			}
			groups = append(groups, GroupFromRanks(p, mem))
		}
	case "naive-32": // 32 consecutive ranks: exactly 2 nodes
		for base := 0; base < 1024; base += 32 {
			var mem []topology.Rank
			for r := base; r < base+32; r++ {
				mem = append(mem, topology.Rank(r))
			}
			groups = append(groups, GroupFromRanks(p, mem))
		}
	case "distributed-16": // stride-16: 16 distinct nodes per group
		for g := 0; g < 64; g++ {
			var mem []topology.Rank
			for j := 0; j < 16; j++ {
				mem = append(mem, topology.Rank((g+j*64)%1024))
			}
			// force distinct nodes: ranks g, g+64, ... are 16 apart in
			// node numbering under block placement (64 ranks apart / 16
			// per node = 4 nodes apart) — recompute properly below.
			groups = append(groups, GroupFromRanks(p, mem))
		}
	case "hierarchical-64-4": // L1 = 4 nodes; L2 = i-th proc of each node
		for l1 := 0; l1 < 16; l1++ {
			nodes := []int{l1 * 4, l1*4 + 1, l1*4 + 2, l1*4 + 3}
			for i := 0; i < 16; i++ {
				var mem []topology.Rank
				for _, n := range nodes {
					mem = append(mem, topology.Rank(n*16+i))
				}
				groups = append(groups, GroupFromRanks(p, mem))
			}
		}
	}
	return groups
}

func TestCatastropheSizeGuided(t *testing.T) {
	// Whole group on one node: every node-loss failure is catastrophic,
	// so P(cat) = 1 - transient ≈ 0.95 (paper Table II: 0.95).
	mdl := &Model{Nodes: 64, Mix: DefaultMix()}
	p, err := mdl.CatastropheProb(tableIIGroups("size-guided-8"))
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.90 || p > 0.96 {
		t.Errorf("size-guided P(cat) = %g, want ≈0.95", p)
	}
}

func TestCatastropheNaive32(t *testing.T) {
	// Groups spanning 2 nodes with tolerance 16: only simultaneous loss of
	// both nodes kills a group. Paper Table II: ~1e-4.
	mdl := &Model{Nodes: 64, Mix: DefaultMix()}
	p, err := mdl.CatastropheProb(tableIIGroups("naive-32"))
	if err != nil {
		t.Fatal(err)
	}
	if p < 2e-5 || p > 5e-4 {
		t.Errorf("naive-32 P(cat) = %g, want ~1e-4", p)
	}
}

func TestCatastropheHierarchical(t *testing.T) {
	// Groups of 4 on 4 distinct nodes, tolerance 2: needs >=3 of an L1's
	// 4 nodes down. Paper Table II: ~1e-6.
	mdl := &Model{Nodes: 64, Mix: DefaultMix()}
	p, err := mdl.CatastropheProb(tableIIGroups("hierarchical-64-4"))
	if err != nil {
		t.Fatal(err)
	}
	if p < 2e-8 || p > 5e-5 {
		t.Errorf("hierarchical P(cat) = %g, want ~1e-6", p)
	}
}

func TestCatastropheDistributed(t *testing.T) {
	// Groups spanning many distinct nodes with tolerance 8: catastrophic
	// only under >=9 simultaneous node losses. Paper Table II: ~1e-15.
	mdl := &Model{Nodes: 64, Mix: DefaultMix()}
	p, err := mdl.CatastropheProb(tableIIGroups("distributed-16"))
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-9 {
		t.Errorf("distributed P(cat) = %g, want ≲1e-10", p)
	}
}

func TestReliabilityOrdering(t *testing.T) {
	// The paper's qualitative claim (Fig. 4a): distributed clustering is
	// orders of magnitude more reliable than non-distributed; hierarchical
	// sits between naive and distributed.
	mdl := &Model{Nodes: 64, Mix: DefaultMix()}
	get := func(s string) float64 {
		p, err := mdl.CatastropheProb(tableIIGroups(s))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	sg, nv, hc, db := get("size-guided-8"), get("naive-32"), get("hierarchical-64-4"), get("distributed-16")
	if !(db < hc && hc < nv && nv < sg) {
		t.Errorf("ordering violated: distributed %g < hierarchical %g < naive %g < size-guided %g",
			db, hc, nv, sg)
	}
	if sg/hc < 1e3 {
		t.Errorf("hierarchical (%g) not orders of magnitude better than size-guided (%g)", hc, sg)
	}
}

func TestFig4aDistributionGap(t *testing.T) {
	// Fig. 4a setting: 128 nodes x 8 procs, groups of 4/8/16, distributed
	// vs non-distributed. Distributed must win by orders of magnitude for
	// every size.
	m := &topology.Machine{Name: "t", Nodes: 128}
	p, err := topology.Block(m, 1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	mdl := &Model{Nodes: 128, Mix: DefaultMix()}
	for _, size := range []int{4, 8, 16} {
		var nonDist, dist []Group
		for base := 0; base < 1024; base += size {
			var mem []topology.Rank
			for r := base; r < base+size; r++ {
				mem = append(mem, topology.Rank(r))
			}
			nonDist = append(nonDist, GroupFromRanks(p, mem))
		}
		for g := 0; g < 1024/size; g++ {
			var mem []topology.Rank
			for j := 0; j < size; j++ {
				mem = append(mem, topology.Rank((g+j*(1024/size))%1024))
			}
			dist = append(dist, GroupFromRanks(p, mem))
		}
		pn, err := mdl.CatastropheProb(nonDist)
		if err != nil {
			t.Fatal(err)
		}
		pd, err := mdl.CatastropheProb(dist)
		if err != nil {
			t.Fatal(err)
		}
		if pd*100 > pn {
			t.Errorf("size %d: distributed %g not ≫ better than non-distributed %g", size, pd, pn)
		}
	}
}

func TestSystemMTBF(t *testing.T) {
	if got := SystemMTBF(1000, 100); got != 10 {
		t.Errorf("SystemMTBF = %g, want 10", got)
	}
	if got := SystemMTBF(0, 10); !math.IsInf(got, 1) {
		t.Errorf("SystemMTBF(0, 10) = %g, want +Inf", got)
	}
	if got := SystemMTBF(10, 0); !math.IsInf(got, 1) {
		t.Errorf("SystemMTBF(10, 0) = %g, want +Inf", got)
	}
}

func TestSchedule(t *testing.T) {
	times := Schedule(10, 1000, 42)
	if len(times) == 0 {
		t.Fatal("no failures scheduled over 100 MTBFs")
	}
	// Expect ~100 events; allow wide tolerance.
	if len(times) < 50 || len(times) > 200 {
		t.Errorf("scheduled %d failures over 100 MTBFs", len(times))
	}
	for i, ft := range times {
		if ft < 0 || ft >= 1000 {
			t.Fatalf("failure %d at %g outside horizon", i, ft)
		}
		if i > 0 && ft <= times[i-1] {
			t.Fatalf("times not increasing at %d", i)
		}
	}
	// deterministic
	again := Schedule(10, 1000, 42)
	if len(again) != len(times) {
		t.Error("Schedule not deterministic for equal seeds")
	}
	if got := Schedule(0, 10, 1); got != nil {
		t.Errorf("Schedule with mtbf=0 = %v", got)
	}
	if got := Schedule(10, 0, 1); got != nil {
		t.Errorf("Schedule with horizon=0 = %v", got)
	}
}
