// Package reliability implements the catastrophic-failure model the paper
// inherits from FTI (reference [3]): the probability that a failure event
// destroys more checkpoint blocks of some erasure-coded group than the code
// tolerates, making the application state unrecoverable from node-local
// storage.
//
// The model has two ingredients:
//
//  1. A failure mix: what fraction of failures are transient process
//     faults (no storage lost) versus simultaneous losses of f = 1, 2, 3...
//     compute nodes. The default mix encodes the paper's observation that
//     "most failures affect only one single node or a small set of nodes",
//     with the multi-node tail decaying roughly geometrically.
//
//  2. The placement of every encoding group's members across nodes, plus
//     the group's erasure tolerance. A group is destroyed when a failure
//     removes more members than the tolerance; the failure is catastrophic
//     when at least one group is destroyed.
//
// P(catastrophic) = Σ_f P(f) · P(some group destroyed | f random nodes fail).
// The conditional term is computed exactly by enumeration for small f and
// bounded by a per-group hypergeometric union bound (tight for rare events)
// for the tail, falling back to seeded Monte Carlo when the union bound is
// too loose to be meaningful.
//
// The hot paths are engineered for large machines: groups are flattened
// once per CatastropheProb call into sparse (node, count) spans — O(members)
// memory instead of the dense group×node rows that made 100k-node models
// impossible — single-node-fatal groups collapse into a per-node critical
// bitmap, per-group node bitsets answer "how many members failed" with
// masked popcounts, and both exact enumeration and Monte Carlo sampling
// shard across a worker pool in fixed chunks whose integer hit counts sum
// identically in any order, so parallel results are bit-identical to serial.
package reliability

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"hierclust/internal/topology"
)

// Mix is the failure-type distribution. Transient + Σ NodeLoss must be
// positive; Normalize scales it to sum to 1.
type Mix struct {
	// Transient is the probability that a failure is a process-level fault
	// losing no node storage (recoverable from the local checkpoint level,
	// never catastrophic for erasure groups).
	Transient float64
	// NodeLoss[i] is the probability that a failure destroys exactly i+1
	// whole nodes simultaneously.
	NodeLoss []float64
	// PairCorrelation is the fraction of two-node failures that hit a
	// power-supply-aligned pair (nodes 2i and 2i+1) rather than two
	// uniformly random nodes — the correlated-failure scenario of the
	// paper's §II-C2 ("two nodes sharing a power supply should be located
	// in the same cluster"). 0 disables correlation.
	PairCorrelation float64
}

// DefaultMix returns the calibrated failure mix used for the paper
// reproduction: 5% transient faults and a node-loss tail that reproduces
// Table II's reliability column (0.95 for single-node groups, ~1e-4 for
// two-node groups, ~1e-6 for the hierarchical 4-node groups, ≲1e-14 for
// 16-node distributed groups).
func DefaultMix() Mix {
	m := Mix{
		Transient: 0.05,
		NodeLoss:  []float64{0.9429, 6.3e-3, 6.6e-4, 6.6e-5, 6.6e-6, 6.6e-7, 6.6e-8, 6.6e-9, 6.6e-10},
	}
	m.Normalize()
	return m
}

// Normalize scales the mix to sum to exactly 1.
func (m *Mix) Normalize() {
	sum := m.Transient
	for _, p := range m.NodeLoss {
		sum += p
	}
	if sum <= 0 {
		return
	}
	m.Transient /= sum
	for i := range m.NodeLoss {
		m.NodeLoss[i] /= sum
	}
}

// Validate reports an error for impossible mixes.
func (m *Mix) Validate() error {
	if m.Transient < 0 {
		return fmt.Errorf("reliability: negative transient probability %g", m.Transient)
	}
	if m.PairCorrelation < 0 || m.PairCorrelation > 1 {
		return fmt.Errorf("reliability: PairCorrelation %g outside [0,1]", m.PairCorrelation)
	}
	sum := m.Transient
	for i, p := range m.NodeLoss {
		if p < 0 {
			return fmt.Errorf("reliability: negative P(%d-node loss) = %g", i+1, p)
		}
		sum += p
	}
	if sum == 0 {
		return fmt.Errorf("reliability: mix sums to zero")
	}
	return nil
}

// Group describes one erasure-encoding group: how many of its members live
// on each node, and how many member losses the code tolerates.
type Group struct {
	// MembersOn[n] is the number of group members hosted on node n.
	MembersOn map[topology.NodeID]int
	// Tolerance is the maximum number of simultaneously lost members the
	// group survives (the parity count m of an RS(k,m) code).
	Tolerance int
}

// GroupFromRanks builds a Group from member ranks under a placement, with
// tolerance = len(members)/2, FTI's half-group Reed–Solomon provisioning.
func GroupFromRanks(p *topology.Placement, members []topology.Rank) Group {
	g := Group{MembersOn: map[topology.NodeID]int{}, Tolerance: len(members) / 2}
	for _, r := range members {
		g.MembersOn[p.NodeOf(r)]++
	}
	return g
}

// destroyedBy reports whether losing exactly the nodes in failed destroys
// the group.
func (g *Group) destroyedBy(failed []topology.NodeID) bool {
	lost := 0
	for _, n := range failed {
		lost += g.MembersOn[n]
	}
	return lost > g.Tolerance
}

// NodeSpan returns the number of distinct nodes hosting group members.
func (g *Group) NodeSpan() int { return len(g.MembersOn) }

// Model computes catastrophe probabilities for a set of groups on a
// machine.
type Model struct {
	// Nodes is the total node count failures draw from.
	Nodes int
	// Mix is the failure-type distribution.
	Mix Mix
	// ExactLimit caps the number of failure-set enumerations per f before
	// switching to bounds/sampling; 0 means 100,000.
	ExactLimit int
	// MonteCarloSamples is used when neither enumeration nor the union
	// bound is adequate; 0 means 200,000. Sampling is seeded, sharded in
	// fixed deterministic chunks, and bit-identical at any worker count.
	MonteCarloSamples int
	// Workers bounds the worker pool for exact enumeration and Monte
	// Carlo sharding; 0 means GOMAXPROCS. Results do not depend on it.
	Workers int
}

// CatastropheProb returns P(catastrophic | a failure occurs) for the groups.
func (mdl *Model) CatastropheProb(groups []Group) (float64, error) {
	return mdl.CatastropheProbCtx(context.Background(), groups)
}

// cancelWatch converts a context into a flag the enumeration and sampling
// inner loops can poll for a few nanoseconds instead of a channel select
// per iteration. The returned stop is nil when the context can never be
// cancelled (no polling overhead at all); done releases the watcher.
func cancelWatch(ctx context.Context) (stop *atomic.Bool, done func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	stop = &atomic.Bool{}
	quit := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			stop.Store(true)
		case <-quit:
		}
	}()
	return stop, func() { close(quit) }
}

// CatastropheProbCtx is CatastropheProb with cancellation: a cancelled
// context makes the exact-enumeration and Monte Carlo worker loops bail
// out within a bounded number of inner iterations and the call return
// ctx.Err(). An uncancelled call is bit-identical to CatastropheProb —
// the stop flag is polled, never consulted for results.
func (mdl *Model) CatastropheProbCtx(ctx context.Context, groups []Group) (float64, error) {
	if mdl.Nodes <= 0 {
		return 0, fmt.Errorf("reliability: model has %d nodes", mdl.Nodes)
	}
	if err := mdl.Mix.Validate(); err != nil {
		return 0, err
	}
	stop, watchDone := cancelWatch(ctx)
	defer watchDone()
	exactLimit := mdl.ExactLimit
	if exactLimit == 0 {
		exactLimit = 100_000
	}
	samples := mdl.MonteCarloSamples
	if samples == 0 {
		samples = 200_000
	}
	workers := mdl.Workers
	// Flatten once per call: every failure-count branch (and the aligned-
	// pair correction) shares the same sparse group representation.
	fg := flatten(groups, mdl.Nodes)
	var total float64
	for i, pf := range mdl.Mix.NodeLoss {
		f := i + 1
		if pf == 0 || f > mdl.Nodes {
			continue
		}
		if stop != nil && stop.Load() {
			break // partial sums are discarded below
		}
		var pcat float64
		switch {
		case combinations(mdl.Nodes, f) <= float64(exactLimit):
			pcat = exactConditional(fg, mdl.Nodes, f, workers, stop)
		case fg.dpOK:
			// Disjoint uniform spans: exact closed form, no sampling.
			pcat = fg.disjointConditional(mdl.Nodes, f)
		default:
			ub := unionBoundConditional(groups, mdl.Nodes, f, workers, stop)
			if ub <= 0.1 {
				pcat = ub
			} else {
				pcat = monteCarloConditional(fg, mdl.Nodes, f, samples, int64(f)*7919, workers, stop)
			}
		}
		if f == 2 && mdl.Mix.PairCorrelation > 0 {
			// A share of double failures hits a power-supply pair rather
			// than two uniform nodes.
			aligned := alignedPairConditional(fg, mdl.Nodes)
			pcat = mdl.Mix.PairCorrelation*aligned + (1-mdl.Mix.PairCorrelation)*pcat
		}
		total += pf * pcat
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// alignedPairConditional returns P(some group destroyed | a uniformly random
// power-supply pair (2i, 2i+1) fails).
func alignedPairConditional(fg *flatGroups, n int) float64 {
	pairs := 0
	hits := 0
	bits := fg.newScratch()
	failed := make([]int, 2)
	for base := 0; base+1 < n; base += 2 {
		pairs++
		failed[0], failed[1] = base, base+1
		if fg.destroys(failed, bits) {
			hits++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(hits) / float64(pairs)
}

// flatGroups is the cache-friendly representation behind every hot
// enumeration and sampling loop. Instead of a dense [group][node] member
// table — O(groups·nodes) memory, the scaling wall of the old layout — each
// group keeps its sparse (node, count) span plus a bitset over its span
// words, and the failure set under test is a node bitset:
//
//   - critical[node] is set when some group loses more members than its
//     tolerance from that node alone, so any failure containing such a
//     node is catastrophic without touching a single group.
//   - byNode[node] lists the groups that need that node plus at least one
//     more failed node to die; membership loss is counted by testing the
//     group's span against the failed bitset (masked popcounts when all
//     span counts are equal, per-node count sums otherwise).
type flatGroups struct {
	n          int
	spanNodes  [][]int32 // sorted node ids hosting members, per group
	spanCounts [][]int32 // member counts parallel to spanNodes
	tolerance  []int32
	uniform    []int32   // >0: every span count equals this value
	maskWords  [][]int32 // word indices of the group's span bitset
	maskBits   [][]uint64
	critical   []bool    // node alone destroys some group
	byNode     [][]int32 // groups destroyable only with >=2 failed nodes

	// Disjoint-span reduction. Erasure-code layouts in practice (FTI's and
	// every strategy in this repository) place groups on node spans that
	// are pairwise disjoint or exactly identical, with the same member
	// count on every span node. Destruction then depends only on *how
	// many* nodes of each span fail, so the conditional catastrophe
	// probability has an exact product-form count (disjointConditional)
	// and the Monte Carlo fallback is never needed. dpOK reports whether
	// the reduction applies; dpSpans holds one (size, threshold) constraint
	// per distinct span, threshold = failed span nodes that destroy it.
	dpOK    bool
	dpSpans []dpSpan
}

// dpSpan is one disjoint-span constraint: a span of `size` nodes whose
// groups are destroyed once `thresh` of them fail.
type dpSpan struct {
	size   int
	thresh int32
}

func flatten(groups []Group, n int) *flatGroups {
	fg := &flatGroups{
		n:          n,
		spanNodes:  make([][]int32, len(groups)),
		spanCounts: make([][]int32, len(groups)),
		tolerance:  make([]int32, len(groups)),
		uniform:    make([]int32, len(groups)),
		maskWords:  make([][]int32, len(groups)),
		maskBits:   make([][]uint64, len(groups)),
		critical:   make([]bool, n),
		byNode:     make([][]int32, n),
		dpOK:       true,
	}
	owner := make([]int32, n) // node -> dpSpan index, -1 when unclaimed
	for i := range owner {
		owner[i] = -1
	}
	for gi := range groups {
		tol := int32(groups[gi].Tolerance)
		fg.tolerance[gi] = tol
		nodes := make([]int32, 0, len(groups[gi].MembersOn))
		for node := range groups[gi].MembersOn {
			if int(node) >= 0 && int(node) < n {
				nodes = append(nodes, int32(node))
			}
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		counts := make([]int32, len(nodes))
		var worst int64
		uniform := int32(-1)
		for i, node := range nodes {
			c := int32(groups[gi].MembersOn[topology.NodeID(node)])
			counts[i] = c
			worst += int64(c)
			if uniform == -1 {
				uniform = c
			} else if uniform != c {
				uniform = 0
			}
		}
		fg.spanNodes[gi] = nodes
		fg.spanCounts[gi] = counts
		if uniform > 0 {
			fg.uniform[gi] = uniform
			var words []int32
			var masks []uint64
			for _, node := range nodes { // nodes sorted, so words ascend
				w := node >> 6
				if len(words) == 0 || words[len(words)-1] != w {
					words = append(words, w)
					masks = append(masks, 0)
				}
				masks[len(masks)-1] |= 1 << (uint(node) & 63)
			}
			fg.maskWords[gi] = words
			fg.maskBits[gi] = masks
		}
		if worst <= int64(tol) {
			continue // no failure of any size can destroy this group
		}
		fg.addDPSpan(nodes, uniform, tol, owner)
		for i, node := range nodes {
			if counts[i] > tol {
				fg.critical[node] = true
			} else {
				fg.byNode[node] = append(fg.byNode[node], int32(gi))
			}
		}
	}
	return fg
}

// addDPSpan folds one destroyable group into the disjoint-span reduction,
// or invalidates it when the group's span overlaps another span partially
// or its per-node counts are not uniform.
func (fg *flatGroups) addDPSpan(nodes []int32, uniform, tol int32, owner []int32) {
	if !fg.dpOK {
		return
	}
	if uniform <= 0 || len(nodes) == 0 {
		fg.dpOK = false
		return
	}
	// Destroyed once j·uniform > tol, i.e. j >= tol/uniform + 1 failed
	// span nodes.
	thresh := tol/uniform + 1
	s := owner[nodes[0]]
	if s == -1 {
		for _, nd := range nodes {
			if owner[nd] != -1 {
				fg.dpOK = false // partial overlap with an existing span
				return
			}
		}
		idx := int32(len(fg.dpSpans))
		for _, nd := range nodes {
			owner[nd] = idx
		}
		fg.dpSpans = append(fg.dpSpans, dpSpan{size: len(nodes), thresh: thresh})
		return
	}
	if fg.dpSpans[s].size != len(nodes) {
		fg.dpOK = false
		return
	}
	for _, nd := range nodes {
		if owner[nd] != s {
			fg.dpOK = false
			return
		}
	}
	if thresh < fg.dpSpans[s].thresh {
		fg.dpSpans[s].thresh = thresh
	}
}

// disjointConditional returns the exact P(some group destroyed | f uniform
// random distinct node failures) for group sets that pass the disjoint-span
// reduction. It counts the safe failure sets with a generating-function
// convolution: each span of size s and threshold t contributes the
// polynomial Σ_{j<t} C(s,j)·x^j (ways to lose j of its nodes safely), the
// n-Σs unconstrained nodes contribute binomially at the end, and the
// coefficient sum at degree f over C(n,f) is the survival probability. Runs
// in O(spans·f·min(span,f)) — microseconds where enumeration needs hours
// and Monte Carlo needs megasamples.
func (fg *flatGroups) disjointConditional(n, f int) float64 {
	poly := make([]float64, f+1)
	next := make([]float64, f+1)
	poly[0] = 1
	constrained := 0
	for _, sp := range fg.dpSpans {
		constrained += sp.size
		maxJ := int(sp.thresh) - 1
		if maxJ > sp.size {
			maxJ = sp.size
		}
		if maxJ > f {
			maxJ = f
		}
		for d := range next {
			next[d] = 0
		}
		for j := 0; j <= maxJ; j++ {
			ways := combinations(sp.size, j)
			for d := j; d <= f; d++ {
				next[d] += poly[d-j] * ways
			}
		}
		poly, next = next, poly
	}
	free := n - constrained
	var safe float64
	for d := 0; d <= f; d++ {
		safe += poly[d] * combinations(free, f-d)
	}
	total := combinations(n, f)
	if total == 0 {
		return 0
	}
	p := 1 - safe/total
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// newScratch returns a zeroed failed-node bitset sized for the machine.
func (fg *flatGroups) newScratch() []uint64 {
	return make([]uint64, (fg.n+63)/64)
}

// lost returns the members the group loses given the failed-node bitset.
func (fg *flatGroups) lost(gi int32, failedBits []uint64) int32 {
	if u := fg.uniform[gi]; u > 0 {
		var pc int32
		words, masks := fg.maskWords[gi], fg.maskBits[gi]
		for k, w := range words {
			pc += int32(bits.OnesCount64(failedBits[w] & masks[k]))
		}
		return pc * u
	}
	var lost int32
	nodes, counts := fg.spanNodes[gi], fg.spanCounts[gi]
	for k, node := range nodes {
		if failedBits[node>>6]&(1<<(uint(node)&63)) != 0 {
			lost += counts[k]
		}
	}
	return lost
}

// destroys reports whether failing exactly the listed nodes destroys any
// group. failedBits is caller-owned zeroed scratch from newScratch; it is
// zeroed again before returning.
func (fg *flatGroups) destroys(failed []int, failedBits []uint64) bool {
	for _, node := range failed {
		if fg.critical[node] {
			return true
		}
	}
	for _, node := range failed {
		failedBits[node>>6] |= 1 << (uint(node) & 63)
	}
	hit := false
scan:
	for _, node := range failed {
		for _, gi := range fg.byNode[node] {
			if fg.lost(gi, failedBits) > fg.tolerance[gi] {
				hit = true
				break scan
			}
		}
	}
	for _, node := range failed {
		failedBits[node>>6] = 0
	}
	return hit
}

// resolveWorkers returns the effective pool size parallelChunks will use:
// workers (0 = GOMAXPROCS) capped by the chunk count, at least 1. Callers
// size per-worker scratch state with it.
func resolveWorkers(workers, nchunks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nchunks {
		workers = nchunks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelChunks runs fn(chunk, worker) for every chunk in [0, nchunks) on
// a pool of resolveWorkers(workers, nchunks) goroutines. Chunks are claimed
// dynamically; worker is a stable id < the resolved pool size, so callers
// can reuse per-worker scratch buffers without the results ever depending
// on scheduling (fn must write conclusions only to per-chunk state).
// A non-nil stop flag makes the pool abandon unclaimed chunks once set —
// the caller is cancelling and will discard the partial result.
func parallelChunks(nchunks, workers int, stop *atomic.Bool, fn func(chunk, worker int)) {
	workers = resolveWorkers(workers, nchunks)
	if workers <= 1 {
		for i := 0; i < nchunks; i++ {
			if stop != nil && stop.Load() {
				return
			}
			fn(i, 0)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if stop != nil && stop.Load() {
					return
				}
				i := next.Add(1) - 1
				if i >= int64(nchunks) {
					return
				}
				fn(int(i), worker)
			}
		}(w)
	}
	wg.Wait()
}

// exactConditional enumerates every f-subset of nodes and returns the
// fraction that destroys at least one group. The enumeration is chunked by
// the lexicographically first failed node: chunk v covers all subsets
// {v, ...} with the remaining f-1 nodes drawn from v+1..n-1, so chunks are
// disjoint, cover everything, and carry integer hit counts that sum to the
// same total in any order — the parallel result is bit-identical to serial.
// A set stop flag makes in-progress chunks break within 1024 subsets; the
// caller discards the partial result and reports cancellation.
func exactConditional(fg *flatGroups, n, f, workers int, stop *atomic.Bool) float64 {
	if f <= 0 || f > n {
		return 0
	}
	nchunks := n - f + 1
	hits := make([]int64, nchunks)
	sets := make([]int64, nchunks)
	// Per-worker scratch, reused across chunks: with one chunk per leading
	// node, per-chunk allocation would be O(n²/64) bitset churn at f=1.
	type exactState struct {
		idx     []int
		scratch []uint64
	}
	states := make([]*exactState, resolveWorkers(workers, nchunks))
	parallelChunks(nchunks, workers, stop, func(v, worker int) {
		st := states[worker]
		if st == nil {
			st = &exactState{idx: make([]int, f), scratch: fg.newScratch()}
			states[worker] = st
		}
		idx := st.idx
		idx[0] = v
		for i := 1; i < f; i++ {
			idx[i] = v + i
		}
		scratch := st.scratch
		var h, s int64
		for {
			if stop != nil && s&1023 == 1023 && stop.Load() {
				break
			}
			s++
			if fg.destroys(idx, scratch) {
				h++
			}
			// next combination with idx[0] fixed at v
			i := f - 1
			for i >= 1 && idx[i] == n-f+i {
				i--
			}
			if i < 1 {
				break
			}
			idx[i]++
			for j := i + 1; j < f; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
		hits[v], sets[v] = h, s
	})
	var hit, totalSets int64
	for i := range hits {
		hit += hits[i]
		totalSets += sets[i]
	}
	return float64(hit) / float64(totalSets)
}

// unionBoundConditional sums the exact per-group destruction probability
// over groups (an upper bound on the union, tight when events are rare).
func unionBoundConditional(groups []Group, n, f, workers int, stop *atomic.Bool) float64 {
	var sum float64
	for gi := range groups {
		if stop != nil && stop.Load() {
			break
		}
		sum += groupConditional(&groups[gi], n, f, workers, stop)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// groupConditional computes P(group destroyed | f uniform random distinct
// node failures) exactly, enumerating subsets of the group's node span when
// small and sampling otherwise.
func groupConditional(g *Group, n, f, workers int, stop *atomic.Bool) float64 {
	counts := make([]int, 0, len(g.MembersOn))
	for _, c := range g.MembersOn {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	s := len(counts)
	// Early exit: even the worst-case choice of f failed nodes cannot lose
	// more members than the tolerance.
	worst := 0
	for i := 0; i < f && i < s; i++ {
		worst += counts[i]
	}
	if worst <= g.Tolerance {
		return 0
	}
	denom := combinations(n, f)
	if denom == 0 {
		return 0
	}
	// Partition failure sets by their intersection with the span: for each
	// span subset of size j that loses > tolerance members, the remaining
	// f-j failures land outside the span, counted by C(n-s, f-j). Each
	// failure set is counted once, under its actual intersection.
	var hit float64
	maxJ := f
	if maxJ > s {
		maxJ = s
	}
	var work float64
	for j := 1; j <= maxJ; j++ {
		work += combinations(s, j)
	}
	if work > 2e6 {
		return monteCarloConditional(flatten([]Group{*g}, n), n, f, 100_000, int64(n)*31+int64(f), workers, stop)
	}
	idx := make([]int, maxJ)
	var steps int64
	for j := 1; j <= maxJ; j++ {
		outside := combinations(n-s, f-j)
		if outside == 0 {
			continue
		}
		for i := 0; i < j; i++ {
			idx[i] = i
		}
		sub := idx[:j]
		for {
			steps++
			if stop != nil && steps&4095 == 0 && stop.Load() {
				return 0 // cancelled; the caller discards the result
			}
			lost := 0
			for _, b := range sub {
				lost += counts[b]
			}
			if lost > g.Tolerance {
				hit += outside
			}
			i := j - 1
			for i >= 0 && sub[i] == s-j+i {
				i--
			}
			if i < 0 {
				break
			}
			sub[i]++
			for k := i + 1; k < j; k++ {
				sub[k] = sub[k-1] + 1
			}
		}
	}
	p := hit / denom
	if p > 1 {
		p = 1
	}
	return p
}

// mcChunkSamples is the fixed Monte Carlo shard size. The chunking is part
// of the estimator's definition, not a tuning knob: chunk c always draws
// the same mcChunkSamples subsets from its own RNG stream, so the summed
// hit count — and therefore the estimate — is identical whether chunks run
// on one goroutine or many.
const mcChunkSamples = 8192

// monteCarloConditional estimates the union probability by sampling
// f-subsets, sharded into fixed deterministic chunks with independent
// splitmix-seeded generators. A set stop flag makes in-progress chunks
// break within 512 samples (the caller discards the partial estimate).
func monteCarloConditional(fg *flatGroups, n, f, samples int, seed int64, workers int, stop *atomic.Bool) float64 {
	if samples <= 0 {
		return 0
	}
	nchunks := (samples + mcChunkSamples - 1) / mcChunkSamples
	hits := make([]int64, nchunks)
	// Per-worker buffers, reused across chunks. perm must restart at the
	// identity for every chunk — each chunk's sample stream is defined
	// independently of which worker ran the previous chunk.
	type mcState struct {
		perm    []int
		failed  []int
		scratch []uint64
	}
	states := make([]*mcState, resolveWorkers(workers, nchunks))
	parallelChunks(nchunks, workers, stop, func(c, worker int) {
		st := states[worker]
		if st == nil {
			st = &mcState{perm: make([]int, n), failed: make([]int, f), scratch: fg.newScratch()}
			states[worker] = st
		}
		count := mcChunkSamples
		if c == nchunks-1 {
			count = samples - c*mcChunkSamples
		}
		rng := newSplitMix(uint64(seed), uint64(c))
		perm := st.perm
		for i := range perm {
			perm[i] = i
		}
		failed := st.failed
		scratch := st.scratch
		var h int64
		for s := 0; s < count; s++ {
			if stop != nil && s&511 == 511 && stop.Load() {
				break
			}
			// partial Fisher–Yates for the first f positions
			for i := 0; i < f; i++ {
				j := i + rng.intn(n-i)
				perm[i], perm[j] = perm[j], perm[i]
				failed[i] = perm[i]
			}
			if fg.destroys(failed, scratch) {
				h++
			}
		}
		hits[c] = h
	})
	var hit int64
	for _, h := range hits {
		hit += h
	}
	return float64(hit) / float64(samples)
}

// splitMix is a splitmix64 generator — a few arithmetic ops per draw, far
// cheaper than math/rand's source in the sampling inner loop, and trivially
// seedable per chunk.
type splitMix struct{ state uint64 }

func newSplitMix(seed, chunk uint64) *splitMix {
	r := &splitMix{state: seed ^ (chunk+1)*0x9e3779b97f4a7c15}
	r.next() // decorrelate nearby seeds
	r.next()
	return r
}

func (r *splitMix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns an unbiased uniform int in [0, n) via Lemire's
// multiply-shift with rejection.
func (r *splitMix) intn(n int) int {
	un := uint64(n)
	v := r.next()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.next()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// combinations returns C(n,k) as float64 (0 when k<0 or k>n).
func combinations(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// SystemMTBF returns the system mean time between failures given a per-node
// MTBF and the node count, under independent exponential failures.
func SystemMTBF(nodeMTBF float64, nodes int) float64 {
	if nodes <= 0 || nodeMTBF <= 0 {
		return math.Inf(1)
	}
	return nodeMTBF / float64(nodes)
}

// Schedule draws failure times over [0, horizon) for a system with the
// given MTBF, using a seeded exponential process.
func Schedule(mtbf, horizon float64, seed int64) []float64 {
	if mtbf <= 0 || horizon <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var times []float64
	t := rng.ExpFloat64() * mtbf
	for t < horizon {
		times = append(times, t)
		t += rng.ExpFloat64() * mtbf
	}
	return times
}
