// Package reliability implements the catastrophic-failure model the paper
// inherits from FTI (reference [3]): the probability that a failure event
// destroys more checkpoint blocks of some erasure-coded group than the code
// tolerates, making the application state unrecoverable from node-local
// storage.
//
// The model has two ingredients:
//
//  1. A failure mix: what fraction of failures are transient process
//     faults (no storage lost) versus simultaneous losses of f = 1, 2, 3...
//     compute nodes. The default mix encodes the paper's observation that
//     "most failures affect only one single node or a small set of nodes",
//     with the multi-node tail decaying roughly geometrically.
//
//  2. The placement of every encoding group's members across nodes, plus
//     the group's erasure tolerance. A group is destroyed when a failure
//     removes more members than the tolerance; the failure is catastrophic
//     when at least one group is destroyed.
//
// P(catastrophic) = Σ_f P(f) · P(some group destroyed | f random nodes fail).
// The conditional term is computed exactly by enumeration for small f and
// bounded by a per-group hypergeometric union bound (tight for rare events)
// for the tail, falling back to seeded Monte Carlo when the union bound is
// too loose to be meaningful.
package reliability

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hierclust/internal/topology"
)

// Mix is the failure-type distribution. Transient + Σ NodeLoss must be
// positive; Normalize scales it to sum to 1.
type Mix struct {
	// Transient is the probability that a failure is a process-level fault
	// losing no node storage (recoverable from the local checkpoint level,
	// never catastrophic for erasure groups).
	Transient float64
	// NodeLoss[i] is the probability that a failure destroys exactly i+1
	// whole nodes simultaneously.
	NodeLoss []float64
	// PairCorrelation is the fraction of two-node failures that hit a
	// power-supply-aligned pair (nodes 2i and 2i+1) rather than two
	// uniformly random nodes — the correlated-failure scenario of the
	// paper's §II-C2 ("two nodes sharing a power supply should be located
	// in the same cluster"). 0 disables correlation.
	PairCorrelation float64
}

// DefaultMix returns the calibrated failure mix used for the paper
// reproduction: 5% transient faults and a node-loss tail that reproduces
// Table II's reliability column (0.95 for single-node groups, ~1e-4 for
// two-node groups, ~1e-6 for the hierarchical 4-node groups, ≲1e-14 for
// 16-node distributed groups).
func DefaultMix() Mix {
	m := Mix{
		Transient: 0.05,
		NodeLoss:  []float64{0.9429, 6.3e-3, 6.6e-4, 6.6e-5, 6.6e-6, 6.6e-7, 6.6e-8, 6.6e-9, 6.6e-10},
	}
	m.Normalize()
	return m
}

// Normalize scales the mix to sum to exactly 1.
func (m *Mix) Normalize() {
	sum := m.Transient
	for _, p := range m.NodeLoss {
		sum += p
	}
	if sum <= 0 {
		return
	}
	m.Transient /= sum
	for i := range m.NodeLoss {
		m.NodeLoss[i] /= sum
	}
}

// Validate reports an error for impossible mixes.
func (m *Mix) Validate() error {
	if m.Transient < 0 {
		return fmt.Errorf("reliability: negative transient probability %g", m.Transient)
	}
	if m.PairCorrelation < 0 || m.PairCorrelation > 1 {
		return fmt.Errorf("reliability: PairCorrelation %g outside [0,1]", m.PairCorrelation)
	}
	sum := m.Transient
	for i, p := range m.NodeLoss {
		if p < 0 {
			return fmt.Errorf("reliability: negative P(%d-node loss) = %g", i+1, p)
		}
		sum += p
	}
	if sum == 0 {
		return fmt.Errorf("reliability: mix sums to zero")
	}
	return nil
}

// Group describes one erasure-encoding group: how many of its members live
// on each node, and how many member losses the code tolerates.
type Group struct {
	// MembersOn[n] is the number of group members hosted on node n.
	MembersOn map[topology.NodeID]int
	// Tolerance is the maximum number of simultaneously lost members the
	// group survives (the parity count m of an RS(k,m) code).
	Tolerance int
}

// GroupFromRanks builds a Group from member ranks under a placement, with
// tolerance = len(members)/2, FTI's half-group Reed–Solomon provisioning.
func GroupFromRanks(p *topology.Placement, members []topology.Rank) Group {
	g := Group{MembersOn: map[topology.NodeID]int{}, Tolerance: len(members) / 2}
	for _, r := range members {
		g.MembersOn[p.NodeOf(r)]++
	}
	return g
}

// destroyedBy reports whether losing exactly the nodes in failed destroys
// the group.
func (g *Group) destroyedBy(failed []topology.NodeID) bool {
	lost := 0
	for _, n := range failed {
		lost += g.MembersOn[n]
	}
	return lost > g.Tolerance
}

// NodeSpan returns the number of distinct nodes hosting group members.
func (g *Group) NodeSpan() int { return len(g.MembersOn) }

// Model computes catastrophe probabilities for a set of groups on a
// machine.
type Model struct {
	// Nodes is the total node count failures draw from.
	Nodes int
	// Mix is the failure-type distribution.
	Mix Mix
	// ExactLimit caps the number of failure-set enumerations per f before
	// switching to bounds/sampling; 0 means 100,000.
	ExactLimit int
	// MonteCarloSamples is used when neither enumeration nor the union
	// bound is adequate; 0 means 200,000. Sampling is seeded and
	// deterministic.
	MonteCarloSamples int
}

// CatastropheProb returns P(catastrophic | a failure occurs) for the groups.
func (mdl *Model) CatastropheProb(groups []Group) (float64, error) {
	if mdl.Nodes <= 0 {
		return 0, fmt.Errorf("reliability: model has %d nodes", mdl.Nodes)
	}
	if err := mdl.Mix.Validate(); err != nil {
		return 0, err
	}
	exactLimit := mdl.ExactLimit
	if exactLimit == 0 {
		exactLimit = 100_000
	}
	samples := mdl.MonteCarloSamples
	if samples == 0 {
		samples = 200_000
	}
	var total float64
	for i, pf := range mdl.Mix.NodeLoss {
		f := i + 1
		if pf == 0 || f > mdl.Nodes {
			continue
		}
		var pcat float64
		switch {
		case combinations(mdl.Nodes, f) <= float64(exactLimit):
			pcat = exactConditional(groups, mdl.Nodes, f)
		default:
			ub := unionBoundConditional(groups, mdl.Nodes, f)
			if ub <= 0.1 {
				pcat = ub
			} else {
				pcat = monteCarloConditional(groups, mdl.Nodes, f, samples, int64(f)*7919)
			}
		}
		if f == 2 && mdl.Mix.PairCorrelation > 0 {
			// A share of double failures hits a power-supply pair rather
			// than two uniform nodes.
			aligned := alignedPairConditional(groups, mdl.Nodes)
			pcat = mdl.Mix.PairCorrelation*aligned + (1-mdl.Mix.PairCorrelation)*pcat
		}
		total += pf * pcat
	}
	return total, nil
}

// alignedPairConditional returns P(some group destroyed | a uniformly random
// power-supply pair (2i, 2i+1) fails).
func alignedPairConditional(groups []Group, n int) float64 {
	fg := flatten(groups, n)
	pairs := 0
	hits := 0
	for base := 0; base+1 < n; base += 2 {
		pairs++
		if fg.destroys([]int{base, base + 1}) {
			hits++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(hits) / float64(pairs)
}

// flatGroups is a cache-friendly representation for hot enumeration loops:
// members[g][node] = member count, plus per-node lists of affected groups.
type flatGroups struct {
	members   [][]int32 // [group][node]
	tolerance []int32
	byNode    [][]int32 // byNode[node] = groups with members there
}

func flatten(groups []Group, n int) *flatGroups {
	fg := &flatGroups{
		members:   make([][]int32, len(groups)),
		tolerance: make([]int32, len(groups)),
		byNode:    make([][]int32, n),
	}
	for gi := range groups {
		row := make([]int32, n)
		for node, c := range groups[gi].MembersOn {
			if int(node) >= 0 && int(node) < n {
				row[node] = int32(c)
				fg.byNode[node] = append(fg.byNode[node], int32(gi))
			}
		}
		fg.members[gi] = row
		fg.tolerance[gi] = int32(groups[gi].Tolerance)
	}
	return fg
}

// destroys reports whether failing exactly the listed nodes destroys any
// group, touching only groups with members on failed nodes.
func (fg *flatGroups) destroys(failed []int) bool {
	for _, node := range failed {
		for _, gi := range fg.byNode[node] {
			var lost int32
			row := fg.members[gi]
			for _, m := range failed {
				lost += row[m]
			}
			if lost > fg.tolerance[gi] {
				return true
			}
		}
	}
	return false
}

// exactConditional enumerates every f-subset of nodes and returns the
// fraction that destroys at least one group.
func exactConditional(groups []Group, n, f int) float64 {
	fg := flatten(groups, n)
	idx := make([]int, f)
	for i := range idx {
		idx[i] = i
	}
	var hits, totalSets float64
	for {
		totalSets++
		if fg.destroys(idx) {
			hits++
		}
		// next combination
		i := f - 1
		for i >= 0 && idx[i] == n-f+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < f; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return hits / totalSets
}

// unionBoundConditional sums the exact per-group destruction probability
// over groups (an upper bound on the union, tight when events are rare).
func unionBoundConditional(groups []Group, n, f int) float64 {
	var sum float64
	for gi := range groups {
		sum += groupConditional(&groups[gi], n, f)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// groupConditional computes P(group destroyed | f uniform random distinct
// node failures) exactly, enumerating subsets of the group's node span when
// small and sampling otherwise.
func groupConditional(g *Group, n, f int) float64 {
	counts := make([]int, 0, len(g.MembersOn))
	for _, c := range g.MembersOn {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	s := len(counts)
	// Early exit: even the worst-case choice of f failed nodes cannot lose
	// more members than the tolerance.
	worst := 0
	for i := 0; i < f && i < s; i++ {
		worst += counts[i]
	}
	if worst <= g.Tolerance {
		return 0
	}
	denom := combinations(n, f)
	if denom == 0 {
		return 0
	}
	// Partition failure sets by their intersection with the span: for each
	// span subset of size j that loses > tolerance members, the remaining
	// f-j failures land outside the span, counted by C(n-s, f-j). Each
	// failure set is counted once, under its actual intersection.
	var hit float64
	maxJ := f
	if maxJ > s {
		maxJ = s
	}
	var work float64
	for j := 1; j <= maxJ; j++ {
		work += combinations(s, j)
	}
	if work > 2e6 {
		return monteCarloConditional([]Group{*g}, n, f, 100_000, int64(n)*31+int64(f))
	}
	idx := make([]int, maxJ)
	for j := 1; j <= maxJ; j++ {
		outside := combinations(n-s, f-j)
		if outside == 0 {
			continue
		}
		for i := 0; i < j; i++ {
			idx[i] = i
		}
		sub := idx[:j]
		for {
			lost := 0
			for _, b := range sub {
				lost += counts[b]
			}
			if lost > g.Tolerance {
				hit += outside
			}
			i := j - 1
			for i >= 0 && sub[i] == s-j+i {
				i--
			}
			if i < 0 {
				break
			}
			sub[i]++
			for k := i + 1; k < j; k++ {
				sub[k] = sub[k-1] + 1
			}
		}
	}
	p := hit / denom
	if p > 1 {
		p = 1
	}
	return p
}

// monteCarloConditional estimates the union probability by sampling
// f-subsets with a fixed seed.
func monteCarloConditional(groups []Group, n, f, samples int, seed int64) float64 {
	fg := flatten(groups, n)
	rng := rand.New(rand.NewSource(seed))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	failed := make([]int, f)
	hits := 0
	for s := 0; s < samples; s++ {
		// partial Fisher–Yates for the first f positions
		for i := 0; i < f; i++ {
			j := i + rng.Intn(n-i)
			perm[i], perm[j] = perm[j], perm[i]
			failed[i] = perm[i]
		}
		if fg.destroys(failed) {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// combinations returns C(n,k) as float64 (0 when k<0 or k>n).
func combinations(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// SystemMTBF returns the system mean time between failures given a per-node
// MTBF and the node count, under independent exponential failures.
func SystemMTBF(nodeMTBF float64, nodes int) float64 {
	if nodes <= 0 || nodeMTBF <= 0 {
		return math.Inf(1)
	}
	return nodeMTBF / float64(nodes)
}

// Schedule draws failure times over [0, horizon) for a system with the
// given MTBF, using a seeded exponential process.
func Schedule(mtbf, horizon float64, seed int64) []float64 {
	if mtbf <= 0 || horizon <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var times []float64
	t := rng.ExpFloat64() * mtbf
	for t < horizon {
		times = append(times, t)
		t += rng.ExpFloat64() * mtbf
	}
	return times
}
