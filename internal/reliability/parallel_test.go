package reliability

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"hierclust/internal/topology"
)

// randomGroups builds groups with random spans and counts — generally
// overlapping and non-uniform, so the disjoint-span closed form does not
// apply and the enumeration/sampling paths are exercised.
func randomGroups(seed int64, n, k int) []Group {
	rng := rand.New(rand.NewSource(seed))
	groups := make([]Group, k)
	for i := range groups {
		span := rng.Intn(4) + 1
		g := Group{MembersOn: map[topology.NodeID]int{}}
		members := 0
		for j := 0; j < span; j++ {
			c := rng.Intn(3) + 1
			g.MembersOn[topology.NodeID(rng.Intn(n))] += c
			members += c
		}
		g.Tolerance = rng.Intn(members)
		groups[i] = g
	}
	return groups
}

// Exact enumeration must return bit-identical results at every worker
// count: the lexicographic chunks carry integer hit counts whose sum does
// not depend on scheduling.
func TestExactConditionalWorkerInvariance(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		groups := randomGroups(seed, 12, 6)
		fg := flatten(groups, 12)
		for f := 1; f <= 5; f++ {
			serial := exactConditional(fg, 12, f, 1, nil)
			for _, workers := range []int{2, 3, 8} {
				if got := exactConditional(fg, 12, f, workers, nil); got != serial {
					t.Errorf("seed %d f %d: workers=%d gave %v, serial %v", seed, f, workers, got, serial)
				}
			}
		}
	}
}

// Monte Carlo sharding must be bit-identical at every worker count and
// GOMAXPROCS setting: each fixed chunk owns its RNG stream and its integer
// hit count, so the summed estimate is scheduling-independent.
func TestMonteCarloWorkerInvariance(t *testing.T) {
	groups := randomGroups(3, 40, 10)
	fg := flatten(groups, 40)
	serial := monteCarloConditional(fg, 40, 4, 50_000, 17, 1, nil)
	for _, workers := range []int{2, 5, 16} {
		if got := monteCarloConditional(fg, 40, 4, 50_000, 17, workers, nil); got != serial {
			t.Errorf("workers=%d gave %v, serial %v", workers, got, serial)
		}
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	if got := monteCarloConditional(fg, 40, 4, 50_000, 17, 0, nil); got != serial {
		t.Errorf("GOMAXPROCS=2 workers=0 gave %v, serial %v", got, serial)
	}
}

// The full model must be bit-identical across worker counts.
func TestCatastropheProbWorkerInvariance(t *testing.T) {
	groups := randomGroups(9, 64, 20)
	want := -1.0
	for _, workers := range []int{1, 2, 7} {
		mdl := &Model{Nodes: 64, Mix: DefaultMix(), Workers: workers, ExactLimit: 5000}
		p, err := mdl.CatastropheProb(groups)
		if err != nil {
			t.Fatal(err)
		}
		if want < 0 {
			want = p
		} else if p != want {
			t.Errorf("workers=%d: %v != %v", workers, p, want)
		}
	}
}

// destroys (critical fast path + span bitsets) must agree with the naive
// per-group destroyedBy on random failure sets.
func TestDestroysMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		n := 20
		groups := randomGroups(seed, n, 8)
		fg := flatten(groups, n)
		scratch := fg.newScratch()
		rng := rand.New(rand.NewSource(seed * 101))
		for trial := 0; trial < 200; trial++ {
			f := rng.Intn(5) + 1
			failed := rng.Perm(n)[:f]
			nodeIDs := make([]topology.NodeID, f)
			for i, nd := range failed {
				nodeIDs[i] = topology.NodeID(nd)
			}
			naive := false
			for gi := range groups {
				if groups[gi].destroyedBy(nodeIDs) {
					naive = true
					break
				}
			}
			if got := fg.destroys(failed, scratch); got != naive {
				t.Fatalf("seed %d trial %d: destroys=%v, naive=%v (failed %v)", seed, trial, got, naive, failed)
			}
			for _, w := range scratch {
				if w != 0 {
					t.Fatal("destroys left scratch bits set")
				}
			}
		}
	}
}

// disjointGroups builds a layout that satisfies the disjoint-span
// reduction: spans tile the machine, counts are uniform per group, and some
// spans are shared by several groups.
func disjointGroups(seed int64, n int) []Group {
	rng := rand.New(rand.NewSource(seed))
	var groups []Group
	node := 0
	for node < n {
		span := rng.Intn(3) + 2
		if node+span > n {
			span = n - node
		}
		perSpan := rng.Intn(2) + 1 // groups sharing this span
		for g := 0; g < perSpan; g++ {
			count := rng.Intn(2) + 1
			gr := Group{MembersOn: map[topology.NodeID]int{}}
			for j := 0; j < span; j++ {
				gr.MembersOn[topology.NodeID(node+j)] = count
			}
			gr.Tolerance = rng.Intn(span*count + 1)
			groups = append(groups, gr)
		}
		node += span
		node += rng.Intn(2) // occasionally leave unconstrained nodes
	}
	return groups
}

// The disjoint-span closed form must agree exactly (to float tolerance)
// with brute-force enumeration wherever it applies.
func TestDisjointConditionalMatchesExact(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		n := 14
		groups := disjointGroups(seed, n)
		fg := flatten(groups, n)
		if !fg.dpOK {
			t.Fatalf("seed %d: disjoint layout rejected by reduction", seed)
		}
		for f := 1; f <= 6; f++ {
			exact := exactConditional(fg, n, f, 1, nil)
			closed := fg.disjointConditional(n, f)
			if math.Abs(exact-closed) > 1e-12 {
				t.Errorf("seed %d f %d: exact %v, closed form %v", seed, f, exact, closed)
			}
		}
	}
}

// The reduction must reject layouts it cannot represent: partial span
// overlap and non-uniform counts.
func TestDisjointReductionRejectsIrregular(t *testing.T) {
	overlap := []Group{
		{MembersOn: map[topology.NodeID]int{0: 1, 1: 1, 2: 1}, Tolerance: 1},
		{MembersOn: map[topology.NodeID]int{2: 1, 3: 1}, Tolerance: 0},
	}
	if flatten(overlap, 6).dpOK {
		t.Error("partial span overlap accepted")
	}
	nonUniform := []Group{
		{MembersOn: map[topology.NodeID]int{0: 2, 1: 1}, Tolerance: 1},
	}
	if flatten(nonUniform, 4).dpOK {
		t.Error("non-uniform counts accepted")
	}
	// Identical spans with uniform counts stay reducible.
	identical := []Group{
		{MembersOn: map[topology.NodeID]int{0: 1, 1: 1}, Tolerance: 1},
		{MembersOn: map[topology.NodeID]int{0: 2, 1: 2}, Tolerance: 1},
	}
	fg := flatten(identical, 4)
	if !fg.dpOK {
		t.Error("identical spans rejected")
	}
	if len(fg.dpSpans) != 1 {
		t.Errorf("identical spans not deduped: %d spans", len(fg.dpSpans))
	}
	// The second group dies with one node (2 > 1), so the shared span
	// threshold must be the tighter of the two.
	if fg.dpSpans[0].thresh != 1 {
		t.Errorf("span threshold = %d, want 1", fg.dpSpans[0].thresh)
	}
}

// A model whose groups pass the reduction must produce identical
// probabilities whether the tail uses the closed form or brute force —
// checked by comparing against a model with an enormous ExactLimit that
// forces enumeration everywhere feasible.
func TestModelClosedFormAgreesWithEnumeration(t *testing.T) {
	groups := disjointGroups(4, 12)
	closed := &Model{Nodes: 12, Mix: DefaultMix(), ExactLimit: 1} // force closed form
	brute := &Model{Nodes: 12, Mix: DefaultMix(), ExactLimit: 10_000_000}
	pc, err := closed.CatastropheProb(groups)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := brute.CatastropheProb(groups)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pc-pb) > 1e-12 {
		t.Errorf("closed form %v vs enumeration %v", pc, pb)
	}
}
