package checkpoint

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"hierclust/internal/storage"
	"hierclust/internal/topology"
)

// rig builds a machine with nodes×ppn ranks (block placement), storage, and
// an optional hierarchical-style grouping: groups of groupK ranks spread
// one-per-node across consecutive nodes.
func rig(t *testing.T, nodes, ppn, groupK int) (*topology.Placement, *storage.Cluster, *Manager) {
	t.Helper()
	mach := &topology.Machine{
		Name: "t", Nodes: nodes,
		SSDWriteBps: 360e6, SSDReadBps: 500e6,
		PFSWriteBps: 10e9, PFSReadBps: 10e9, NetBps: 8e9,
	}
	p, err := topology.Block(mach, nodes*ppn, ppn)
	if err != nil {
		t.Fatal(err)
	}
	cl := storage.NewCluster(mach)
	var groups [][]topology.Rank
	if groupK > 0 {
		// L2-style transversal groups: the i-th rank of each node in
		// blocks of groupK nodes.
		for base := 0; base+groupK <= nodes; base += groupK {
			for i := 0; i < ppn; i++ {
				var g []topology.Rank
				for nd := base; nd < base+groupK; nd++ {
					g = append(g, topology.Rank(nd*ppn+i))
				}
				groups = append(groups, g)
			}
		}
	}
	mgr, err := New(cl, p, groups)
	if err != nil {
		t.Fatal(err)
	}
	return p, cl, mgr
}

func blobs(p *topology.Placement, seed int64, size int) map[topology.Rank][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := map[topology.Rank][]byte{}
	for r := 0; r < p.NumRanks(); r++ {
		b := make([]byte, size+r%5) // slightly ragged sizes
		rng.Read(b)
		out[topology.Rank(r)] = b
	}
	return out
}

func TestNewValidation(t *testing.T) {
	mach := &topology.Machine{Name: "t", Nodes: 2}
	p, _ := topology.Block(mach, 4, 2)
	cl := storage.NewCluster(mach)
	if _, err := New(cl, p, [][]topology.Rank{{0}}); err == nil {
		t.Error("accepted singleton group")
	}
	if _, err := New(cl, p, [][]topology.Rank{{0, 99}}); err == nil {
		t.Error("accepted out-of-range member")
	}
	if _, err := New(cl, p, [][]topology.Rank{{0, 1}, {1, 2}}); err == nil {
		t.Error("accepted overlapping groups")
	}
	m, err := New(cl, p, [][]topology.Rank{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.GroupOf(0) != 0 || m.GroupOf(3) != -1 {
		t.Errorf("GroupOf: %d, %d", m.GroupOf(0), m.GroupOf(3))
	}
	g := m.Groups()
	g[0][0] = 99
	if m.Groups()[0][0] == 99 {
		t.Error("Groups returned aliased slice")
	}
}

func TestL1CheckpointRestore(t *testing.T) {
	p, _, mgr := rig(t, 4, 2, 0)
	data := blobs(p, 1, 100)
	res, err := mgr.Checkpoint(0, L1Local, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalWriteTime <= 0 {
		t.Error("no simulated local write time")
	}
	var ranks []topology.Rank
	for r := range data {
		ranks = append(ranks, r)
	}
	restored, err := mgr.Restore(0, ranks)
	if err != nil {
		t.Fatal(err)
	}
	for _, re := range restored {
		if re.Level != L1Local {
			t.Errorf("rank %d restored from %v, want L1", re.Rank, re.Level)
		}
		if !bytes.Equal(re.Data, data[re.Rank]) {
			t.Errorf("rank %d data mismatch", re.Rank)
		}
	}
}

func TestL1LostOnNodeFailure(t *testing.T) {
	p, cl, mgr := rig(t, 4, 2, 0)
	data := blobs(p, 2, 64)
	if _, err := mgr.Checkpoint(0, L1Local, data); err != nil {
		t.Fatal(err)
	}
	if err := cl.FailNode(1); err != nil {
		t.Fatal(err)
	}
	// Ranks 2,3 lived on node 1: L1-only checkpoints are unrecoverable.
	_, err := mgr.Restore(0, []topology.Rank{2})
	if !Unrecoverable(err) {
		t.Errorf("err = %v, want unrecoverable", err)
	}
	// Other ranks still restore locally.
	got, err := mgr.Restore(0, []topology.Rank{0, 7})
	if err != nil || len(got) != 2 {
		t.Errorf("surviving ranks failed to restore: %v", err)
	}
}

func TestL2PartnerSurvivesNodeFailure(t *testing.T) {
	p, cl, mgr := rig(t, 4, 2, 0)
	data := blobs(p, 3, 64)
	res, err := mgr.Checkpoint(0, L2Partner, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.PartnerTime <= 0 {
		t.Error("no simulated partner time")
	}
	_ = cl.FailNode(1)
	_ = cl.RepairNode(1) // node replaced, storage empty
	restored, err := mgr.Restore(0, []topology.Rank{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, re := range restored {
		if re.Level != L2Partner {
			t.Errorf("rank %d restored from %v, want L2-partner", re.Rank, re.Level)
		}
		if !bytes.Equal(re.Data, data[re.Rank]) {
			t.Errorf("rank %d data mismatch", re.Rank)
		}
	}
}

func TestL3EncodedSurvivesNodeFailure(t *testing.T) {
	// Groups of 4, one rank per node: losing any one node (both its ranks)
	// is recoverable by RS decode.
	p, cl, mgr := rig(t, 4, 2, 4)
	data := blobs(p, 4, 500)
	res, err := mgr.Checkpoint(0, L3Encoded, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.EncodeWallTime <= 0 || res.EncodeModelTime <= 0 {
		t.Error("missing encode times")
	}
	_ = cl.FailNode(2)
	_ = cl.RepairNode(2)
	// ranks 4,5 were on node 2
	restored, err := mgr.Restore(0, []topology.Rank{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, re := range restored {
		if re.Level != L3Encoded {
			t.Errorf("rank %d restored from %v, want L3-encoded", re.Rank, re.Level)
		}
		if !bytes.Equal(re.Data, data[re.Rank]) {
			t.Errorf("rank %d data mismatch", re.Rank)
		}
	}
}

func TestL3ToleratesHalfGroup(t *testing.T) {
	// Group of 4 across 4 nodes tolerates 2 node losses (RS(k,k)).
	p, cl, mgr := rig(t, 4, 1, 4)
	data := blobs(p, 5, 300)
	if _, err := mgr.Checkpoint(0, L3Encoded, data); err != nil {
		t.Fatal(err)
	}
	_ = cl.FailNode(0)
	_ = cl.FailNode(3)
	restored, err := mgr.Restore(0, []topology.Rank{0, 3})
	if err != nil {
		t.Fatalf("two losses should be tolerable: %v", err)
	}
	for _, re := range restored {
		if !bytes.Equal(re.Data, data[re.Rank]) {
			t.Errorf("rank %d data mismatch", re.Rank)
		}
	}
	// A third loss exceeds tolerance.
	_ = cl.FailNode(1)
	if _, err := mgr.Restore(0, []topology.Rank{0}); !Unrecoverable(err) {
		t.Errorf("3 of 4 nodes lost: err = %v, want unrecoverable", err)
	}
}

func TestL3CollocatedGroupDiesWithNode(t *testing.T) {
	// The paper's size-guided pathology: a group entirely on one node
	// cannot survive that node, despite paying full encoding cost.
	mach := &topology.Machine{Name: "t", Nodes: 2, SSDWriteBps: 1e9, SSDReadBps: 1e9, PFSWriteBps: 1e9, PFSReadBps: 1e9, NetBps: 1e9}
	p, _ := topology.Block(mach, 8, 4)
	cl := storage.NewCluster(mach)
	mgr, err := New(cl, p, [][]topology.Rank{{0, 1, 2, 3}, {4, 5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	data := blobs(p, 6, 100)
	if _, err := mgr.Checkpoint(0, L3Encoded, data); err != nil {
		t.Fatal(err)
	}
	_ = cl.FailNode(0)
	if _, err := mgr.Restore(0, []topology.Rank{0}); !Unrecoverable(err) {
		t.Errorf("co-located group survived its node: %v", err)
	}
}

func TestL4PFSSurvivesEverything(t *testing.T) {
	p, cl, mgr := rig(t, 4, 2, 0)
	data := blobs(p, 7, 64)
	res, err := mgr.Checkpoint(0, L4PFS, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.PFSTime <= 0 {
		t.Error("no simulated PFS time")
	}
	for n := 0; n < 4; n++ {
		_ = cl.FailNode(topology.NodeID(n))
	}
	restored, err := mgr.Restore(0, []topology.Rank{0, 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, re := range restored {
		if re.Level != L4PFS {
			t.Errorf("rank %d from %v, want L4-pfs", re.Rank, re.Level)
		}
		if !bytes.Equal(re.Data, data[re.Rank]) {
			t.Errorf("rank %d data mismatch", re.Rank)
		}
	}
}

func TestRestoreUnknownVersion(t *testing.T) {
	_, _, mgr := rig(t, 2, 1, 0)
	if _, err := mgr.Restore(9, []topology.Rank{0}); !Unrecoverable(err) {
		t.Errorf("unknown version err = %v", err)
	}
}

func TestCheckpointValidation(t *testing.T) {
	_, _, mgr := rig(t, 2, 1, 0)
	if _, err := mgr.Checkpoint(0, L1Local, nil); err == nil {
		t.Error("accepted empty data")
	}
	if _, err := mgr.Checkpoint(0, Level(9), map[topology.Rank][]byte{0: {1}}); err == nil {
		t.Error("accepted unknown level")
	}
	// L3 requires whole groups.
	p2, _, mgr2 := rig(t, 4, 1, 4)
	partial := map[topology.Rank][]byte{0: {1}}
	_ = p2
	if _, err := mgr2.Checkpoint(0, L3Encoded, partial); err == nil {
		t.Error("accepted partial group for L3")
	}
}

func TestGC(t *testing.T) {
	p, cl, mgr := rig(t, 4, 2, 4)
	for v := 0; v < 3; v++ {
		if _, err := mgr.Checkpoint(v, L3Encoded, blobs(p, int64(v), 50)); err != nil {
			t.Fatal(err)
		}
	}
	if got := mgr.Versions(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Versions = %v", got)
	}
	mgr.GC(2)
	if got := mgr.Versions(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Versions after GC = %v", got)
	}
	// all v<2 artifacts gone from every store
	for n := 0; n < 4; n++ {
		st, _ := cl.Local(topology.NodeID(n))
		for _, k := range st.Keys() {
			var a, b, c int
			if _, err := fmt.Sscanf(k, "l1/%d/%d", &a, &b); err == nil && b < 2 {
				t.Errorf("stale L1 key %q", k)
			}
			if _, err := fmt.Sscanf(k, "l3p/%d/%d/%d", &a, &b, &c); err == nil && c < 2 {
				t.Errorf("stale parity key %q", k)
			}
		}
	}
	// restoring the kept version still works
	if _, err := mgr.Restore(2, []topology.Rank{0}); err != nil {
		t.Errorf("restore after GC: %v", err)
	}
}

func TestChecksumDetectsTamperedLocal(t *testing.T) {
	p, cl, mgr := rig(t, 4, 1, 4)
	data := blobs(p, 8, 100)
	if _, err := mgr.Checkpoint(0, L3Encoded, data); err != nil {
		t.Fatal(err)
	}
	// Corrupt rank 1's local copy: restore must fall through to group
	// decode and still return correct data.
	st, _ := cl.Local(p.NodeOf(1))
	bad := append([]byte(nil), data[1]...)
	bad[0] ^= 0xff
	if _, err := st.Put("l1/1/0", bad); err != nil {
		t.Fatal(err)
	}
	restored, err := mgr.Restore(0, []topology.Rank{1})
	if err != nil {
		t.Fatal(err)
	}
	if restored[0].Level != L3Encoded {
		t.Errorf("restored from %v, want L3 (corrupted local)", restored[0].Level)
	}
	if !bytes.Equal(restored[0].Data, data[1]) {
		t.Error("group decode returned wrong data")
	}
}

func TestSimRestartTimeOrdering(t *testing.T) {
	_, _, mgr := rig(t, 4, 2, 4)
	const sz = int64(1 << 30)
	l1 := mgr.SimRestartTime(L1Local, sz, 8)
	l2 := mgr.SimRestartTime(L2Partner, sz, 8)
	l4 := mgr.SimRestartTime(L4PFS, sz, 8)
	if !(l1 < l2) {
		t.Errorf("L1 (%v) should be cheaper than L2 (%v)", l1, l2)
	}
	if !(l1 < l4) {
		t.Errorf("L1 (%v) should be cheaper than PFS (%v)", l1, l4)
	}
}

func TestMultipleVersionsIndependent(t *testing.T) {
	p, _, mgr := rig(t, 2, 2, 0)
	d0 := blobs(p, 10, 40)
	d1 := blobs(p, 11, 40)
	_, _ = mgr.Checkpoint(0, L1Local, d0)
	_, _ = mgr.Checkpoint(1, L1Local, d1)
	r0, err := mgr.Restore(0, []topology.Rank{0})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := mgr.Restore(1, []topology.Rank{0})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r0[0].Data, d0[0]) || !bytes.Equal(r1[0].Data, d1[0]) {
		t.Error("versions cross-contaminated")
	}
}

func TestLevelString(t *testing.T) {
	if L1Local.String() != "L1-local" || L4PFS.String() != "L4-pfs" {
		t.Error("level names wrong")
	}
	if Level(42).String() != "Level(42)" {
		t.Errorf("unknown level string = %q", Level(42).String())
	}
}
