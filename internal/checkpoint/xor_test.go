package checkpoint

import (
	"bytes"
	"fmt"
	"testing"

	"hierclust/internal/topology"
)

func TestL3XORSurvivesSingleNodeFailure(t *testing.T) {
	// Transversal groups of 4 across 4 nodes with XOR parity: losing any
	// one node other than the parity holder is recoverable.
	p, cl, mgr := rig(t, 4, 2, 4)
	data := blobs(p, 20, 300)
	res, err := mgr.Checkpoint(0, L3XOR, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != L3XOR {
		t.Errorf("result level = %v", res.Level)
	}
	// Node 2 hosts ranks 4,5; parity lives on node of group[0] (node 0).
	_ = cl.FailNode(2)
	_ = cl.RepairNode(2)
	restored, err := mgr.Restore(0, []topology.Rank{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, re := range restored {
		if re.Level != L3XOR {
			t.Errorf("rank %d restored from %v, want L3-xor", re.Rank, re.Level)
		}
		if !bytes.Equal(re.Data, data[re.Rank]) {
			t.Errorf("rank %d data mismatch", re.Rank)
		}
	}
}

func TestL3XORTwoNodeFailureUnrecoverable(t *testing.T) {
	// XOR tolerates one loss per group: two lost members are fatal —
	// the trade-off against RS(k,k) that makes XOR cheap.
	p, cl, mgr := rig(t, 4, 1, 4)
	data := blobs(p, 21, 100)
	if _, err := mgr.Checkpoint(0, L3XOR, data); err != nil {
		t.Fatal(err)
	}
	_ = cl.FailNode(1)
	_ = cl.FailNode(2)
	_ = cl.RepairNode(1)
	_ = cl.RepairNode(2)
	if _, err := mgr.Restore(0, []topology.Rank{1, 2}); !Unrecoverable(err) {
		t.Errorf("two XOR losses: err = %v, want unrecoverable", err)
	}
}

func TestL3XORParityNodeLoss(t *testing.T) {
	// Losing the parity-holding node loses parity AND that member's local
	// checkpoint; the member itself cannot be rebuilt (parity gone), but
	// the other members restore locally.
	p, cl, mgr := rig(t, 4, 1, 4)
	data := blobs(p, 22, 100)
	if _, err := mgr.Checkpoint(0, L3XOR, data); err != nil {
		t.Fatal(err)
	}
	_ = cl.FailNode(0) // parity holder for the single group {0,1,2,3}
	_ = cl.RepairNode(0)
	if _, err := mgr.Restore(0, []topology.Rank{0}); !Unrecoverable(err) {
		t.Errorf("parity-node loss should be unrecoverable for its member, got %v", err)
	}
	got, err := mgr.Restore(0, []topology.Rank{1, 2, 3})
	if err != nil {
		t.Fatalf("surviving members should restore locally: %v", err)
	}
	for _, re := range got {
		if re.Level != L1Local {
			t.Errorf("rank %d from %v, want L1", re.Rank, re.Level)
		}
	}
}

func TestL3XORFasterThanRS(t *testing.T) {
	// The reason XOR exists: encoding must be much cheaper than RS(k,k)
	// on the same data.
	p, _, mgrXOR := rig(t, 4, 2, 4)
	_, _, mgrRS := rig(t, 4, 2, 4)
	data := blobs(p, 23, 200_000)
	rx, err := mgrXOR.Checkpoint(0, L3XOR, data)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := mgrRS.Checkpoint(0, L3Encoded, data)
	if err != nil {
		t.Fatal(err)
	}
	if rx.EncodeWallTime >= rr.EncodeWallTime {
		t.Errorf("XOR encode %v not faster than RS %v", rx.EncodeWallTime, rr.EncodeWallTime)
	}
}

func TestL3XORGC(t *testing.T) {
	p, cl, mgr := rig(t, 4, 1, 4)
	for v := 0; v < 2; v++ {
		if _, err := mgr.Checkpoint(v, L3XOR, blobs(p, int64(v), 50)); err != nil {
			t.Fatal(err)
		}
	}
	mgr.GC(1)
	st, _ := cl.Local(0)
	for _, k := range st.Keys() {
		var g, vv int
		if _, err := fmt.Sscanf(k, "l3x/%d/%d", &g, &vv); err == nil && vv < 1 {
			t.Errorf("stale xor parity key %q", k)
		}
	}
	if _, err := mgr.Restore(1, []topology.Rank{0}); err != nil {
		t.Errorf("restore after GC: %v", err)
	}
}
