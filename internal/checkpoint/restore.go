package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"hierclust/internal/erasure"
	"hierclust/internal/storage"
	"hierclust/internal/topology"
)

// Restored describes how one rank was recovered.
type Restored struct {
	Rank  topology.Rank
	Level Level // the level that supplied the data
	Data  []byte
}

// Restore recovers the checkpoints of the given ranks at version, picking
// per rank the cheapest level that survived: local SSD, partner copy,
// Reed–Solomon group reconstruction, then PFS. It returns one Restored per
// requested rank or ErrUnrecoverable (wrapped) if any rank cannot be
// recovered.
func (m *Manager) Restore(version int, ranks []topology.Rank) ([]Restored, error) {
	out := make([]Restored, 0, len(ranks))
	// Group reconstructions are cached: rebuilding one member recovers all.
	rebuilt := map[int][][]byte{}
	for _, r := range ranks {
		meta, ok := m.meta[version][r]
		if !ok {
			return nil, fmt.Errorf("checkpoint: rank %d has no version-%d checkpoint: %w", r, version, ErrUnrecoverable)
		}
		if blob, ok := m.tryLocal(version, r, &meta); ok {
			out = append(out, Restored{Rank: r, Level: L1Local, Data: blob})
			continue
		}
		if blob, ok := m.tryPartner(version, r, &meta); ok {
			out = append(out, Restored{Rank: r, Level: L2Partner, Data: blob})
			continue
		}
		if blob, ok := m.tryGroupDecode(version, r, &meta, rebuilt); ok {
			out = append(out, Restored{Rank: r, Level: L3Encoded, Data: blob})
			continue
		}
		if blob, ok := m.tryXORDecode(version, r, &meta); ok {
			out = append(out, Restored{Rank: r, Level: L3XOR, Data: blob})
			continue
		}
		if blob, ok := m.tryPFS(version, r, &meta); ok {
			out = append(out, Restored{Rank: r, Level: L4PFS, Data: blob})
			continue
		}
		return nil, fmt.Errorf("checkpoint: rank %d version %d lost at all levels: %w", r, version, ErrUnrecoverable)
	}
	return out, nil
}

func (m *Manager) verify(meta *Meta, blob []byte) bool {
	return int64(len(blob)) == meta.Size && crc32.ChecksumIEEE(blob) == meta.Checksum
}

func (m *Manager) tryLocal(version int, r topology.Rank, meta *Meta) ([]byte, bool) {
	st, err := m.cluster.Local(m.placement.NodeOf(r))
	if err != nil {
		return nil, false
	}
	blob, _, err := st.Get(keyL1(r, version))
	if err != nil || !m.verify(meta, blob) {
		return nil, false
	}
	return blob, true
}

func (m *Manager) tryPartner(version int, r topology.Rank, meta *Meta) ([]byte, bool) {
	used := m.placement.UsedNodes()
	if len(used) < 2 {
		return nil, false
	}
	pos := -1
	home := m.placement.NodeOf(r)
	for i, n := range used {
		if n == home {
			pos = i
			break
		}
	}
	if pos == -1 {
		return nil, false
	}
	st, err := m.cluster.Local(used[(pos+1)%len(used)])
	if err != nil {
		return nil, false
	}
	blob, _, err := st.Get(keyL2(r, version))
	if err != nil || !m.verify(meta, blob) {
		return nil, false
	}
	return blob, true
}

func (m *Manager) tryPFS(version int, r topology.Rank, meta *Meta) ([]byte, bool) {
	blob, _, err := m.cluster.PFS().Get(keyPFS(r, version), 1)
	if err != nil || !m.verify(meta, blob) {
		return nil, false
	}
	return blob, true
}

// tryGroupDecode reconstructs r's checkpoint from its encoding group's
// surviving data and parity shards.
func (m *Manager) tryGroupDecode(version int, r topology.Rank, meta *Meta, cache map[int][][]byte) ([]byte, bool) {
	gi, ok := m.groupOf[r]
	if !ok {
		return nil, false
	}
	group := m.groups[gi]
	idx := -1
	for i, member := range group {
		if member == r {
			idx = i
			break
		}
	}
	if idx == -1 {
		return nil, false
	}
	shards, ok := cache[gi]
	if !ok {
		shards = m.collectGroupShards(version, gi)
		rs, err := m.codecFor(len(group))
		if err != nil {
			return nil, false
		}
		start := time.Now()
		err = rs.Reconstruct(shards)
		m.decodeWall += time.Since(start)
		if err != nil {
			cache[gi] = nil // remember the failure
			return nil, false
		}
		cache[gi] = shards
	}
	if shards == nil {
		return nil, false
	}
	blob, err := unpadShard(shards[idx])
	if err != nil || !m.verify(meta, blob) {
		return nil, false
	}
	return blob, true
}

// tryXORDecode rebuilds r's checkpoint from the group's single XOR parity
// shard, which requires every *other* member's local checkpoint to survive.
func (m *Manager) tryXORDecode(version int, r topology.Rank, meta *Meta) ([]byte, bool) {
	gi, ok := m.groupOf[r]
	if !ok {
		return nil, false
	}
	group := m.groups[gi]
	k := len(group)
	// Fetch the parity (lives on the first member's node).
	st, err := m.cluster.Local(m.placement.NodeOf(group[0]))
	if err != nil {
		return nil, false
	}
	parity, _, err := st.Get(keyXOR(gi, version))
	if err != nil {
		return nil, false
	}
	shards := make([][]byte, k+1)
	shards[k] = parity
	idx := -1
	for i, member := range group {
		if member == r {
			idx = i
			continue // the shard we are rebuilding
		}
		mst, err := m.cluster.Local(m.placement.NodeOf(member))
		if err != nil {
			return nil, false
		}
		blob, _, err := mst.Get(keyL1(member, version))
		if err != nil {
			return nil, false
		}
		if mmeta, ok := m.meta[version][member]; ok && !m.verify(&mmeta, blob) {
			return nil, false
		}
		p := make([]byte, len(parity))
		binary.LittleEndian.PutUint32(p[:4], uint32(len(blob)))
		copy(p[4:], blob)
		shards[i] = p
	}
	if idx == -1 {
		return nil, false
	}
	codec, err := erasure.NewXOR(k)
	if err != nil {
		return nil, false
	}
	start := time.Now()
	err = codec.Reconstruct(shards)
	m.decodeWall += time.Since(start)
	if err != nil {
		return nil, false
	}
	blob, err := unpadShard(shards[idx])
	if err != nil || !m.verify(meta, blob) {
		return nil, false
	}
	return blob, true
}

// collectGroupShards gathers the k padded data shards and k parity shards
// of a group, nil where lost. Data shards are re-padded from surviving L1
// checkpoints using the group's padded size (parity length).
func (m *Manager) collectGroupShards(version, gi int) [][]byte {
	group := m.groups[gi]
	k := len(group)
	shards := make([][]byte, 2*k)
	paddedLen := 0
	// Parity first: its length defines the padded shard size.
	for i, r := range group {
		st, err := m.cluster.Local(m.placement.NodeOf(r))
		if err != nil {
			continue
		}
		if p, _, err := st.Get(keyL3(gi, i, version)); err == nil {
			shards[k+i] = p
			if len(p) > paddedLen {
				paddedLen = len(p)
			}
		}
	}
	for i, r := range group {
		st, err := m.cluster.Local(m.placement.NodeOf(r))
		if err != nil {
			continue
		}
		blob, _, err := st.Get(keyL1(r, version))
		if err != nil {
			continue
		}
		// A shard that fails its integrity check is as lost as an erased
		// one: feeding it to the decoder would silently corrupt the group.
		if meta, ok := m.meta[version][r]; ok && !m.verify(&meta, blob) {
			continue
		}
		if paddedLen < len(blob)+4 {
			paddedLen = len(blob) + 4
		}
		p := make([]byte, paddedLen)
		binary.LittleEndian.PutUint32(p[:4], uint32(len(blob)))
		copy(p[4:], blob)
		shards[i] = p
	}
	// Normalize: all non-nil shards must share paddedLen (possible mismatch
	// when no parity survived but data shards differ — harmless, RS will
	// reject; re-pad to the common maximum).
	for i, s := range shards[:k] {
		if s != nil && len(s) != paddedLen {
			p := make([]byte, paddedLen)
			copy(p, s)
			shards[i] = p
		}
	}
	return shards
}

func unpadShard(p []byte) ([]byte, error) {
	if len(p) < 4 {
		return nil, errors.New("checkpoint: padded shard too short")
	}
	n := binary.LittleEndian.Uint32(p[:4])
	if int(n) > len(p)-4 {
		return nil, fmt.Errorf("checkpoint: padded length %d exceeds shard size %d", n, len(p)-4)
	}
	return p[4 : 4+n], nil
}

// GC removes all checkpoint artifacts of versions strictly below keep.
func (m *Manager) GC(keep int) {
	for v := range m.meta {
		if v >= keep {
			continue
		}
		for r := range m.meta[v] {
			node := m.placement.NodeOf(r)
			if st, err := m.cluster.Local(node); err == nil {
				_ = st.Delete(keyL1(r, v))
			}
			m.cluster.PFS().Delete(keyPFS(r, v))
		}
		// partner copies and parity can live on any node: sweep all.
		for _, n := range m.placement.UsedNodes() {
			st, err := m.cluster.Local(n)
			if err != nil || st.Failed() {
				continue
			}
			for _, key := range st.Keys() {
				var rr, vv, g, i int
				if _, err := fmt.Sscanf(key, "l2p/%d/%d", &rr, &vv); err == nil && vv == v {
					_ = st.Delete(key)
					continue
				}
				if _, err := fmt.Sscanf(key, "l3p/%d/%d/%d", &g, &i, &vv); err == nil && vv == v {
					_ = st.Delete(key)
					continue
				}
				if _, err := fmt.Sscanf(key, "l3x/%d/%d", &g, &vv); err == nil && vv == v {
					_ = st.Delete(key)
				}
			}
		}
		delete(m.meta, v)
	}
}

// Versions lists the versions with metadata, ascending.
func (m *Manager) Versions() []int {
	var out []int
	for v := range m.meta {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ { // insertion sort, tiny n
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Unrecoverable reports whether err indicates a catastrophic loss.
func Unrecoverable(err error) bool { return errors.Is(err, ErrUnrecoverable) }

// SimRestartTime estimates the simulated time to restore the given ranks
// from a level: local and partner reads stream from SSDs, group decode
// reads survivors and reconstructs, PFS reads contend.
func (m *Manager) SimRestartTime(level Level, bytesPerRank int64, ranks int) time.Duration {
	mach := m.placement.Machine()
	ssd := &storage.Device{Name: "ssd", ReadBps: mach.SSDReadBps, WriteBps: mach.SSDWriteBps}
	pfs := &storage.Device{Name: "pfs", ReadBps: mach.PFSReadBps, WriteBps: mach.PFSWriteBps}
	net := &storage.Device{Name: "net", ReadBps: mach.NetBps, WriteBps: mach.NetBps}
	perNode := int64(m.placement.MaxProcsPerNode())
	switch level {
	case L1Local:
		return ssd.ReadTime(bytesPerRank*perNode, 1)
	case L2Partner:
		return ssd.ReadTime(bytesPerRank*perNode, 1) + net.ReadTime(bytesPerRank*perNode, 1)
	case L3Encoded:
		k := 4
		if len(m.groups) > 0 {
			k = len(m.groups[0])
		}
		dec := time.Duration(erasure.ModelEncodeSeconds(k, bytesPerRank) * float64(time.Second))
		return ssd.ReadTime(bytesPerRank*perNode, 1) + dec
	default:
		return pfs.ReadTime(bytesPerRank*int64(ranks), ranks)
	}
}
