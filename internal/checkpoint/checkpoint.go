// Package checkpoint implements the multi-level checkpointing library of
// the paper's FTI substrate (reference [3]): application state is saved to
// node-local SSDs at high frequency, optionally replicated to a partner
// node, erasure-coded across an encoding group, or flushed to the parallel
// file system. A restart planner recovers each rank's state from the
// cheapest level that survived the failure.
//
// Level 3 uses the FTI Reed–Solomon layout: an encoding group of k members
// holds k data shards (the members' own checkpoints on their local SSDs)
// plus k parity shards (parity shard i on member i's node). Any k of the 2k
// shards reconstruct the group, so the group survives the loss of ⌊k/2⌋
// nodes — the "half group" tolerance assumed by the reliability model.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"hierclust/internal/erasure"
	"hierclust/internal/storage"
	"hierclust/internal/topology"
)

// Level identifies a protection level, cheapest first.
type Level int

const (
	// L1Local is a checkpoint on the rank's node-local SSD.
	L1Local Level = 1
	// L2Partner adds a copy on a partner node.
	L2Partner Level = 2
	// L3Encoded adds Reed–Solomon parity across the encoding group.
	L3Encoded Level = 3
	// L4PFS is a checkpoint on the parallel file system.
	L4PFS Level = 4
	// L3XOR adds single-parity XOR across the encoding group: k times
	// cheaper to encode than RS(k,k) but tolerating only one lost member
	// per group — the cheap codec the paper cites alongside Reed–Solomon
	// (§II-B.1, references [7][20]).
	L3XOR Level = 5
)

// String names the level as FTI does.
func (l Level) String() string {
	switch l {
	case L1Local:
		return "L1-local"
	case L2Partner:
		return "L2-partner"
	case L3Encoded:
		return "L3-encoded"
	case L3XOR:
		return "L3-xor"
	case L4PFS:
		return "L4-pfs"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ErrUnrecoverable is wrapped when no surviving level can restore a rank —
// the catastrophic failure of the paper's reliability dimension.
var ErrUnrecoverable = errors.New("checkpoint: unrecoverable")

// Meta records one rank's checkpoint for integrity checking.
type Meta struct {
	Rank     topology.Rank
	Version  int
	Level    Level
	Size     int64
	Checksum uint32
}

// Result reports the simulated cost of one checkpoint operation at paper
// scale plus, for encoded checkpoints, the measured encode wall time.
type Result struct {
	// Level actually taken.
	Level Level
	// LocalWriteTime is the simulated SSD time (max over nodes; ranks on
	// one node serialize on its SSD, nodes proceed in parallel).
	LocalWriteTime time.Duration
	// PartnerTime is the simulated network+write time of partner copies.
	PartnerTime time.Duration
	// EncodeWallTime is the measured wall-clock time of the real RS
	// encodes (groups run in parallel; this is the slowest group).
	EncodeWallTime time.Duration
	// EncodeModelTime is the modeled paper-scale encode time for the same
	// group size, per erasure.ModelEncodeSeconds.
	EncodeModelTime time.Duration
	// PFSTime is the simulated contended parallel-file-system time.
	PFSTime time.Duration
}

// Manager orchestrates multi-level checkpoints for a set of ranks placed on
// a storage cluster.
type Manager struct {
	cluster   *storage.Cluster
	placement *topology.Placement
	groups    [][]topology.Rank
	groupOf   map[topology.Rank]int
	meta      map[int]map[topology.Rank]Meta // version -> rank -> meta

	// Codec caches, keyed by group size: building an RS codec inverts a
	// k×k matrix and compiles the coefficient tables, so it is paid once
	// per group shape, not once per checkpoint round.
	streams map[int]*erasure.Stream
	codecs  map[int]*erasure.RS
	// pad holds the reusable padded-shard scratch buffers for encoding.
	pad [][]byte
	// decodeWall accumulates measured erasure reconstruction wall time
	// (RS and XOR group decodes); hybrid recovery drains it per failure
	// event.
	decodeWall time.Duration
}

// New creates a manager. groups lists the encoding groups (the L2 clusters
// of the hierarchical scheme) partitioning a subset of ranks; ranks outside
// any group simply cannot use L3. Every group needs at least 2 members.
func New(cluster *storage.Cluster, placement *topology.Placement, groups [][]topology.Rank) (*Manager, error) {
	m := &Manager{
		cluster:   cluster,
		placement: placement,
		groups:    make([][]topology.Rank, len(groups)),
		groupOf:   map[topology.Rank]int{},
		meta:      map[int]map[topology.Rank]Meta{},
		streams:   map[int]*erasure.Stream{},
		codecs:    map[int]*erasure.RS{},
	}
	for gi, g := range groups {
		if len(g) < 2 {
			return nil, fmt.Errorf("checkpoint: encoding group %d has %d members; need at least 2", gi, len(g))
		}
		m.groups[gi] = append([]topology.Rank(nil), g...)
		for _, r := range g {
			if int(r) < 0 || int(r) >= placement.NumRanks() {
				return nil, fmt.Errorf("checkpoint: group %d member rank %d out of range", gi, r)
			}
			if prev, dup := m.groupOf[r]; dup {
				return nil, fmt.Errorf("checkpoint: rank %d in groups %d and %d", r, prev, gi)
			}
			m.groupOf[r] = gi
		}
	}
	return m, nil
}

// Groups returns the encoding groups (not aliased).
func (m *Manager) Groups() [][]topology.Rank {
	out := make([][]topology.Rank, len(m.groups))
	for i, g := range m.groups {
		out[i] = append([]topology.Rank(nil), g...)
	}
	return out
}

// GroupOf returns the encoding-group index of rank r, or -1.
func (m *Manager) GroupOf(r topology.Rank) int {
	if gi, ok := m.groupOf[r]; ok {
		return gi
	}
	return -1
}

// streamFor returns the cached buffer-reusing encode stream for groups of k
// members (RS(k, k), the FTI layout).
func (m *Manager) streamFor(k int) (*erasure.Stream, error) {
	if s, ok := m.streams[k]; ok {
		return s, nil
	}
	enc, err := erasure.NewGroupEncoder(k, k, 0, 0)
	if err != nil {
		return nil, err
	}
	s := enc.NewStream()
	m.streams[k] = s
	return s, nil
}

// codecFor returns the cached RS(k, k) codec used by group reconstruction.
func (m *Manager) codecFor(k int) (*erasure.RS, error) {
	if rs, ok := m.codecs[k]; ok {
		return rs, nil
	}
	rs, err := erasure.NewRS(k, k)
	if err != nil {
		return nil, err
	}
	m.codecs[k] = rs
	return rs, nil
}

// padGroup gathers one encoding group's blobs from a checkpoint round and
// length-prefix-pads them to a common shard size in the manager's reusable
// scratch buffers (valid until the next call). skip reports that no member
// of the group checkpointed this round; a partially present group is an
// error.
func (m *Manager) padGroup(gi int, group []topology.Rank, version int, data map[topology.Rank][]byte) (padded [][]byte, skip bool, err error) {
	any := false
	for _, r := range group {
		if _, ok := data[r]; ok {
			any = true
			break
		}
	}
	if !any {
		return nil, true, nil
	}
	blobs := make([][]byte, len(group))
	maxLen := 0
	for i, r := range group {
		blob, ok := data[r]
		if !ok {
			return nil, false, fmt.Errorf("checkpoint: group %d member %d missing from version %d data", gi, r, version)
		}
		blobs[i] = blob
		if len(blob)+4 > maxLen {
			maxLen = len(blob) + 4
		}
	}
	return m.padShards(blobs, maxLen), false, nil
}

// padShards length-prefixes and pads the blobs to maxLen into the manager's
// reusable scratch buffers; the result is valid until the next call.
func (m *Manager) padShards(blobs [][]byte, maxLen int) [][]byte {
	for len(m.pad) < len(blobs) {
		m.pad = append(m.pad, nil)
	}
	out := make([][]byte, len(blobs))
	for i, blob := range blobs {
		if cap(m.pad[i]) < maxLen {
			m.pad[i] = make([]byte, maxLen)
		}
		p := m.pad[i][:maxLen]
		binary.LittleEndian.PutUint32(p[:4], uint32(len(blob)))
		n := copy(p[4:], blob)
		for j := 4 + n; j < maxLen; j++ {
			p[j] = 0
		}
		out[i] = p
	}
	return out
}

// DrainDecodeTime returns the erasure (RS or XOR) reconstruction wall time
// accumulated since the last drain (hybrid recovery reports it per failure
// event).
func (m *Manager) DrainDecodeTime() time.Duration {
	d := m.decodeWall
	m.decodeWall = 0
	return d
}

func keyL1(r topology.Rank, v int) string  { return fmt.Sprintf("l1/%d/%d", r, v) }
func keyL2(r topology.Rank, v int) string  { return fmt.Sprintf("l2p/%d/%d", r, v) }
func keyL3(g, i, v int) string             { return fmt.Sprintf("l3p/%d/%d/%d", g, i, v) }
func keyXOR(g, v int) string               { return fmt.Sprintf("l3x/%d/%d", g, v) }
func keyPFS(r topology.Rank, v int) string { return fmt.Sprintf("l4/%d/%d", r, v) }

// Checkpoint saves data (rank → blob) at the given version and level.
// Lower levels are implied: L3 also writes L1; L2 also writes L1.
func (m *Manager) Checkpoint(version int, level Level, data map[topology.Rank][]byte) (*Result, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("checkpoint: no data for version %d", version)
	}
	res := &Result{Level: level}
	metas := m.meta[version]
	if metas == nil {
		metas = map[topology.Rank]Meta{}
		m.meta[version] = metas
	}

	if level != L4PFS {
		if err := m.writeLocal(version, data, metas, level, res); err != nil {
			return nil, err
		}
	}
	switch level {
	case L1Local:
		// done
	case L2Partner:
		if err := m.writePartner(version, data, res); err != nil {
			return nil, err
		}
	case L3Encoded:
		if err := m.encodeGroups(version, data, res); err != nil {
			return nil, err
		}
	case L3XOR:
		if err := m.xorGroups(version, data, res); err != nil {
			return nil, err
		}
	case L4PFS:
		if err := m.writePFS(version, data, metas, res); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("checkpoint: unknown level %d", int(level))
	}
	return res, nil
}

// xorGroups computes one XOR parity shard per group and stores it on the
// node of the group's first member. A group survives any single member
// loss (and, because the parity lives on a member's node, the loss of any
// *other* node entirely).
func (m *Manager) xorGroups(version int, data map[topology.Rank][]byte, res *Result) error {
	for gi, group := range m.groups {
		padded, skip, err := m.padGroup(gi, group, version, data)
		if err != nil {
			return err
		}
		if skip {
			continue
		}
		codec, err := erasure.NewXOR(len(group))
		if err != nil {
			return err
		}
		parity := make([]byte, len(padded[0]))
		start := time.Now()
		if err := codec.Encode(padded, parity); err != nil {
			return fmt.Errorf("checkpoint: group %d xor encode: %w", gi, err)
		}
		if el := time.Since(start); el > res.EncodeWallTime {
			res.EncodeWallTime = el
		}
		st, err := m.cluster.Local(m.placement.NodeOf(group[0]))
		if err != nil {
			return err
		}
		if _, err := st.Put(keyXOR(gi, version), parity); err != nil {
			return fmt.Errorf("checkpoint: group %d xor parity: %w", gi, err)
		}
	}
	return nil
}

func (m *Manager) writeLocal(version int, data map[topology.Rank][]byte, metas map[topology.Rank]Meta, level Level, res *Result) error {
	perNode := map[topology.NodeID]time.Duration{}
	for r, blob := range data {
		st, err := m.cluster.Local(m.placement.NodeOf(r))
		if err != nil {
			return err
		}
		d, err := st.Put(keyL1(r, version), blob)
		if err != nil {
			return fmt.Errorf("checkpoint: L1 write rank %d: %w", r, err)
		}
		perNode[st.Node()] += d
		metas[r] = Meta{Rank: r, Version: version, Level: level, Size: int64(len(blob)), Checksum: crc32.ChecksumIEEE(blob)}
	}
	for _, d := range perNode {
		if d > res.LocalWriteTime {
			res.LocalWriteTime = d
		}
	}
	return nil
}

func (m *Manager) writePartner(version int, data map[topology.Rank][]byte, res *Result) error {
	used := m.placement.UsedNodes()
	if len(used) < 2 {
		return fmt.Errorf("checkpoint: partner copies need at least 2 nodes, have %d", len(used))
	}
	pos := map[topology.NodeID]int{}
	for i, n := range used {
		pos[n] = i
	}
	net := &storage.Device{Name: "net", ReadBps: m.placement.Machine().NetBps, WriteBps: m.placement.Machine().NetBps}
	perNode := map[topology.NodeID]time.Duration{}
	for r, blob := range data {
		home := m.placement.NodeOf(r)
		partner := used[(pos[home]+1)%len(used)]
		st, err := m.cluster.Local(partner)
		if err != nil {
			return err
		}
		d, err := st.Put(keyL2(r, version), blob)
		if err != nil {
			return fmt.Errorf("checkpoint: partner write rank %d: %w", r, err)
		}
		perNode[partner] += d + net.WriteTime(int64(len(blob)), 1)
	}
	for _, d := range perNode {
		if d > res.PartnerTime {
			res.PartnerTime = d
		}
	}
	return nil
}

func (m *Manager) encodeGroups(version int, data map[topology.Rank][]byte, res *Result) error {
	for gi, group := range m.groups {
		padded, skip, err := m.padGroup(gi, group, version, data)
		if err != nil {
			return err
		}
		if skip {
			continue
		}
		k := len(group)
		stream, err := m.streamFor(k)
		if err != nil {
			return fmt.Errorf("checkpoint: group %d encoder: %w", gi, err)
		}
		gres, err := stream.Encode(padded)
		if err != nil {
			return fmt.Errorf("checkpoint: group %d encode: %w", gi, err)
		}
		if gres.Elapsed > res.EncodeWallTime {
			res.EncodeWallTime = gres.Elapsed
		}
		if gres.ModelTime > res.EncodeModelTime {
			res.EncodeModelTime = gres.ModelTime
		}
		for i, r := range group {
			st, err := m.cluster.Local(m.placement.NodeOf(r))
			if err != nil {
				return err
			}
			if _, err := st.Put(keyL3(gi, i, version), gres.Parity[i]); err != nil {
				return fmt.Errorf("checkpoint: group %d parity %d: %w", gi, i, err)
			}
		}
	}
	return nil
}

func (m *Manager) writePFS(version int, data map[topology.Rank][]byte, metas map[topology.Rank]Meta, res *Result) error {
	sharing := len(m.placement.UsedNodes())
	for r, blob := range data {
		d, err := m.cluster.PFS().Put(keyPFS(r, version), blob, sharing)
		if err != nil {
			return err
		}
		if d > res.PFSTime {
			res.PFSTime = d
		}
		metas[r] = Meta{Rank: r, Version: version, Level: L4PFS, Size: int64(len(blob)), Checksum: crc32.ChecksumIEEE(blob)}
	}
	return nil
}
