#!/bin/sh
# hcserve_smoke.sh — build hcserve, start it, POST the quickstart scenario,
# and assert a 200 response carrying non-empty evaluations; then exercise
# POST /v1/evaluate-batch (NDJSON lines in input order, trace-level cache
# hit for a scenario sharing the quickstart trace) and the GET /metrics
# scrape. Finally, a chaos drill: restart the server with every trace-cache
# disk write failing (-fault tracecache.disk.write=error:1.0) and assert it
# degrades to memory-only — bit-identical evaluations, trace-hit from the
# fallback, degraded /healthz, error counters on /metrics.
# Used by CI and runnable locally: sh scripts/hcserve_smoke.sh
set -eu

ADDR="${HCSERVE_ADDR:-127.0.0.1:18080}"
BIN="$(mktemp -d)/hcserve"
go build -o "$BIN" ./cmd/hcserve

"$BIN" -addr "$ADDR" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener (up to ~10s).
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "hcserve_smoke: server never became healthy" >&2
        exit 1
    fi
    sleep 0.1
done

# The quickstart scenario comes from the server's own built-in list, so the
# smoke exercises /v1/scenarios and /v1/evaluate together.
SCENARIO="$(curl -sf "http://$ADDR/v1/scenarios" | jq '.[] | select(.name == "quickstart")')"
if [ -z "$SCENARIO" ]; then
    echo "hcserve_smoke: quickstart scenario missing from /v1/scenarios" >&2
    exit 1
fi

STATUS="$(printf '%s' "$SCENARIO" | curl -s -o /tmp/hcserve_smoke_response.json \
    -w '%{http_code}' -X POST -d @- "http://$ADDR/v1/evaluate")"
if [ "$STATUS" != "200" ]; then
    echo "hcserve_smoke: POST /v1/evaluate returned $STATUS" >&2
    cat /tmp/hcserve_smoke_response.json >&2
    exit 1
fi
COUNT="$(jq '.evaluations | length' /tmp/hcserve_smoke_response.json)"
if [ "$COUNT" -lt 1 ]; then
    echo "hcserve_smoke: empty evaluations" >&2
    cat /tmp/hcserve_smoke_response.json >&2
    exit 1
fi
echo "hcserve_smoke: ok ($COUNT evaluations)"
jq -r '.evaluations[] | "  \(.strategy): within_baseline=\(.within_baseline)"' /tmp/hcserve_smoke_response.json

# Batch: the quickstart scenario again (result-cache hit after the POST
# above) plus a renamed copy — different result key, same trace key, so the
# second element must evaluate without re-running the traced application
# ("trace-hit").
BATCH="$(printf '%s' "$SCENARIO" | jq -c '[., . * {"name": "quickstart-batch"}]')"
printf '%s' "$BATCH" | curl -sf -X POST -d @- \
    "http://$ADDR/v1/evaluate-batch" > /tmp/hcserve_smoke_batch.ndjson
LINES="$(wc -l < /tmp/hcserve_smoke_batch.ndjson)"
if [ "$LINES" -ne 2 ]; then
    echo "hcserve_smoke: batch returned $LINES NDJSON lines, want 2" >&2
    cat /tmp/hcserve_smoke_batch.ndjson >&2
    exit 1
fi
ORDER="$(jq -s -c 'map({index, status, cache})' /tmp/hcserve_smoke_batch.ndjson)"
WANT='[{"index":0,"status":200,"cache":"hit"},{"index":1,"status":200,"cache":"trace-hit"}]'
if [ "$ORDER" != "$WANT" ]; then
    echo "hcserve_smoke: batch lines $ORDER, want $WANT" >&2
    exit 1
fi
echo "hcserve_smoke: batch ok (result hit + trace-hit, in order)"

# Metrics: the scrape must expose the trace-cache hit the batch just made.
curl -sf "http://$ADDR/metrics" > /tmp/hcserve_smoke_metrics.txt
for want in \
    'hcserve_cache_hits_total{cache="trace"} 1' \
    'hcserve_batch_scenarios_total 2' \
    'hcserve_shed_total 0'; do
    if ! grep -qxF "$want" /tmp/hcserve_smoke_metrics.txt; then
        echo "hcserve_smoke: /metrics missing line: $want" >&2
        grep '^hcserve_' /tmp/hcserve_smoke_metrics.txt >&2 || true
        exit 1
    fi
done
echo "hcserve_smoke: metrics ok"

# Sweep drill: submit a 2x2 sweep (2 machine sizes x 2 strategy sets),
# poll the job to completion, and assert the NDJSON stream carries all 4
# cells in deterministic cell order with a nonzero plan dedup ratio.
SWEEP='{"name":"smoke-grid","base":{"name":"smoke-grid","machine":{"nodes":16},"placement":{"ranks":64,"procs_per_node":4},"trace":{"source":"synthetic","iterations":10},"strategies":[{"kind":"naive","size":8}]},"axes":{"machines":[{"nodes":16},{"nodes":8,"ranks":32,"procs_per_node":4}],"strategies":[[{"kind":"naive","size":8}],[{"kind":"hierarchical"}]]}}'
STATUS="$(printf '%s' "$SWEEP" | curl -s -o /tmp/hcserve_smoke_sweep.json \
    -w '%{http_code}' -X POST -d @- "http://$ADDR/v1/sweeps")"
if [ "$STATUS" != "202" ]; then
    echo "hcserve_smoke: POST /v1/sweeps returned $STATUS" >&2
    cat /tmp/hcserve_smoke_sweep.json >&2
    exit 1
fi
SWEEP_ID="$(jq -r '.id' /tmp/hcserve_smoke_sweep.json)"
i=0
while :; do
    curl -sf "http://$ADDR/v1/sweeps/$SWEEP_ID" > /tmp/hcserve_smoke_sweep.json
    [ "$(jq -r '.state' /tmp/hcserve_smoke_sweep.json)" != "running" ] && break
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "hcserve_smoke: sweep $SWEEP_ID never finished" >&2
        exit 1
    fi
    sleep 0.1
done
if [ "$(jq -r '.state' /tmp/hcserve_smoke_sweep.json)" != "completed" ] || \
   [ "$(jq -r '.cells.total' /tmp/hcserve_smoke_sweep.json)" != "4" ] || \
   [ "$(jq -r '.cells.failed' /tmp/hcserve_smoke_sweep.json)" != "0" ]; then
    echo "hcserve_smoke: sweep did not complete cleanly: $(cat /tmp/hcserve_smoke_sweep.json)" >&2
    exit 1
fi
if [ "$(jq -r '.plan.dedup_ratio > 0' /tmp/hcserve_smoke_sweep.json)" != "true" ]; then
    echo "hcserve_smoke: sweep dedup ratio not positive: $(cat /tmp/hcserve_smoke_sweep.json)" >&2
    exit 1
fi
curl -sf "http://$ADDR/v1/sweeps/$SWEEP_ID/results" > /tmp/hcserve_smoke_sweep.ndjson
CELLS="$(jq -s -c 'map({index, scenario, status})' /tmp/hcserve_smoke_sweep.ndjson)"
WANT='[{"index":0,"scenario":"smoke-grid/m0/s0","status":200},{"index":1,"scenario":"smoke-grid/m0/s1","status":200},{"index":2,"scenario":"smoke-grid/m1/s0","status":200},{"index":3,"scenario":"smoke-grid/m1/s1","status":200}]'
if [ "$CELLS" != "$WANT" ]; then
    echo "hcserve_smoke: sweep cells $CELLS" >&2
    echo "hcserve_smoke:          want $WANT" >&2
    exit 1
fi
echo "hcserve_smoke: sweep ok (4 cells in order, dedup $(jq -r '.plan.dedup_ratio' /tmp/hcserve_smoke_sweep.json))"

# Rerun the identical sweep through the hcrun client: every cell must now
# come straight from the result cache, and the client must exit 0 with the
# same 4 lines on stdout.
HCRUN="$(dirname "$BIN")/hcrun"
go build -o "$HCRUN" ./cmd/hcrun
printf '%s' "$SWEEP" > /tmp/hcserve_smoke_sweep_doc.json
"$HCRUN" -sweep /tmp/hcserve_smoke_sweep_doc.json -server "http://$ADDR" -poll 100ms \
    > /tmp/hcserve_smoke_sweep2.ndjson 2>/dev/null
if [ "$(jq -s -c 'map(.cache)' /tmp/hcserve_smoke_sweep2.ndjson)" != '["hit","hit","hit","hit"]' ]; then
    echo "hcserve_smoke: resubmitted sweep not fully cache-hit: $(jq -s -c 'map({scenario, cache})' /tmp/hcserve_smoke_sweep2.ndjson)" >&2
    exit 1
fi
echo "hcserve_smoke: sweep rerun ok (all 4 cells from cache via hcrun -sweep)"

# Chaos drill: a fresh server with a disk trace cache whose every write
# fails must keep serving, bit-identically, from its memory fallback.
kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
CHAOS_DIR="$(mktemp -d)"
"$BIN" -addr "$ADDR" -trace-cache-dir "$CHAOS_DIR" \
    -fault 'tracecache.disk.write=error:1.0' &
PID=$!
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "hcserve_smoke: chaos server never became healthy" >&2
        exit 1
    fi
    sleep 0.1
done

STATUS="$(printf '%s' "$SCENARIO" | curl -s -o /tmp/hcserve_smoke_chaos.json \
    -w '%{http_code}' -X POST -d @- "http://$ADDR/v1/evaluate")"
if [ "$STATUS" != "200" ]; then
    echo "hcserve_smoke: chaos POST /v1/evaluate returned $STATUS" >&2
    cat /tmp/hcserve_smoke_chaos.json >&2
    exit 1
fi
if [ "$(jq -S '.evaluations' /tmp/hcserve_smoke_chaos.json)" != \
     "$(jq -S '.evaluations' /tmp/hcserve_smoke_response.json)" ]; then
    echo "hcserve_smoke: degraded-mode evaluations differ from the clean run" >&2
    exit 1
fi

# A renamed copy shares the trace key: it must be served from the memory
# fallback without a second application run.
CACHE_HDR="$(printf '%s' "$SCENARIO" | jq -c '. * {"name": "quickstart-chaos"}' | \
    curl -s -o /dev/null -D - -X POST -d @- "http://$ADDR/v1/evaluate" | \
    tr -d '\r' | awk -F': ' 'tolower($1) == "x-hierclust-cache" {print $2}')"
if [ "$CACHE_HDR" != "trace-hit" ]; then
    echo "hcserve_smoke: chaos cache header '$CACHE_HDR', want trace-hit" >&2
    exit 1
fi

HEALTH="$(curl -sf "http://$ADDR/healthz")"
if [ "$(printf '%s' "$HEALTH" | jq -r '.status')" != "degraded" ] || \
   [ "$(printf '%s' "$HEALTH" | jq -r '.trace_cache.degraded')" != "true" ]; then
    echo "hcserve_smoke: healthz does not report degraded: $HEALTH" >&2
    exit 1
fi
if [ "$(printf '%s' "$HEALTH" | jq -r '.trace_cache.write_errors >= 3')" != "true" ]; then
    echo "hcserve_smoke: healthz write_errors not counted: $HEALTH" >&2
    exit 1
fi
curl -sf "http://$ADDR/metrics" > /tmp/hcserve_smoke_chaos_metrics.txt
if ! grep -qxF 'hcserve_trace_cache_degraded 1' /tmp/hcserve_smoke_chaos_metrics.txt; then
    echo "hcserve_smoke: /metrics missing hcserve_trace_cache_degraded 1" >&2
    exit 1
fi
if ! grep -q '^hcserve_trace_cache_write_errors_total [1-9]' /tmp/hcserve_smoke_chaos_metrics.txt; then
    echo "hcserve_smoke: /metrics missing trace-cache write errors" >&2
    exit 1
fi
if [ -n "$(ls "$CHAOS_DIR" 2>/dev/null)" ]; then
    echo "hcserve_smoke: failed writes left files behind: $(ls "$CHAOS_DIR")" >&2
    exit 1
fi
echo "hcserve_smoke: chaos drill ok (degraded, bit-identical, memory-only)"

# Restart drill: a server with a durable result cache is killed with
# SIGKILL (no drain, no flush window) and restarted over the same
# directory; the evaluation computed before the kill must come back as a
# result-cache hit, byte-identical, from the new process.
kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
RESTART_DIR="$(mktemp -d)"
start_restart_server() {
    "$BIN" -addr "$ADDR" -result-cache-dir "$RESTART_DIR/results" \
        -sweep-journal "$RESTART_DIR/sweeps.journal" &
    PID=$!
    i=0
    until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "hcserve_smoke: restart-drill server never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
}
start_restart_server

STATUS="$(printf '%s' "$SCENARIO" | curl -s -o /tmp/hcserve_smoke_restart1.json \
    -w '%{http_code}' -X POST -d @- "http://$ADDR/v1/evaluate")"
if [ "$STATUS" != "200" ]; then
    echo "hcserve_smoke: restart-drill POST /v1/evaluate returned $STATUS" >&2
    exit 1
fi

kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
start_restart_server

CACHE_HDR="$(printf '%s' "$SCENARIO" | \
    curl -s -o /tmp/hcserve_smoke_restart2.json -D - -X POST -d @- "http://$ADDR/v1/evaluate" | \
    tr -d '\r' | awk -F': ' 'tolower($1) == "x-hierclust-cache" {print $2}')"
if [ "$CACHE_HDR" != "hit" ]; then
    echo "hcserve_smoke: cache header after kill -9 restart is '$CACHE_HDR', want hit" >&2
    exit 1
fi
if ! cmp -s /tmp/hcserve_smoke_restart1.json /tmp/hcserve_smoke_restart2.json; then
    echo "hcserve_smoke: restarted result differs from the pre-kill result" >&2
    exit 1
fi
curl -sf "http://$ADDR/metrics" > /tmp/hcserve_smoke_restart_metrics.txt
if ! grep -qxF 'hcserve_result_cache_hits_total 1' /tmp/hcserve_smoke_restart_metrics.txt; then
    echo "hcserve_smoke: /metrics missing hcserve_result_cache_hits_total 1" >&2
    grep '^hcserve_result_cache' /tmp/hcserve_smoke_restart_metrics.txt >&2 || true
    exit 1
fi
echo "hcserve_smoke: restart drill ok (kill -9, warm result cache, bit-identical)"
