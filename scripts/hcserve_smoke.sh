#!/bin/sh
# hcserve_smoke.sh — build hcserve, start it, POST the quickstart scenario,
# and assert a 200 response carrying non-empty evaluations; then exercise
# POST /v1/evaluate-batch (NDJSON lines in input order, trace-level cache
# hit for a scenario sharing the quickstart trace) and the GET /metrics
# scrape. Used by CI and runnable locally: sh scripts/hcserve_smoke.sh
set -eu

ADDR="${HCSERVE_ADDR:-127.0.0.1:18080}"
BIN="$(mktemp -d)/hcserve"
go build -o "$BIN" ./cmd/hcserve

"$BIN" -addr "$ADDR" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener (up to ~10s).
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "hcserve_smoke: server never became healthy" >&2
        exit 1
    fi
    sleep 0.1
done

# The quickstart scenario comes from the server's own built-in list, so the
# smoke exercises /v1/scenarios and /v1/evaluate together.
SCENARIO="$(curl -sf "http://$ADDR/v1/scenarios" | jq '.[] | select(.name == "quickstart")')"
if [ -z "$SCENARIO" ]; then
    echo "hcserve_smoke: quickstart scenario missing from /v1/scenarios" >&2
    exit 1
fi

STATUS="$(printf '%s' "$SCENARIO" | curl -s -o /tmp/hcserve_smoke_response.json \
    -w '%{http_code}' -X POST -d @- "http://$ADDR/v1/evaluate")"
if [ "$STATUS" != "200" ]; then
    echo "hcserve_smoke: POST /v1/evaluate returned $STATUS" >&2
    cat /tmp/hcserve_smoke_response.json >&2
    exit 1
fi
COUNT="$(jq '.evaluations | length' /tmp/hcserve_smoke_response.json)"
if [ "$COUNT" -lt 1 ]; then
    echo "hcserve_smoke: empty evaluations" >&2
    cat /tmp/hcserve_smoke_response.json >&2
    exit 1
fi
echo "hcserve_smoke: ok ($COUNT evaluations)"
jq -r '.evaluations[] | "  \(.strategy): within_baseline=\(.within_baseline)"' /tmp/hcserve_smoke_response.json

# Batch: the quickstart scenario again (result-cache hit after the POST
# above) plus a renamed copy — different result key, same trace key, so the
# second element must evaluate without re-running the traced application
# ("trace-hit").
BATCH="$(printf '%s' "$SCENARIO" | jq -c '[., . * {"name": "quickstart-batch"}]')"
printf '%s' "$BATCH" | curl -sf -X POST -d @- \
    "http://$ADDR/v1/evaluate-batch" > /tmp/hcserve_smoke_batch.ndjson
LINES="$(wc -l < /tmp/hcserve_smoke_batch.ndjson)"
if [ "$LINES" -ne 2 ]; then
    echo "hcserve_smoke: batch returned $LINES NDJSON lines, want 2" >&2
    cat /tmp/hcserve_smoke_batch.ndjson >&2
    exit 1
fi
ORDER="$(jq -s -c 'map({index, status, cache})' /tmp/hcserve_smoke_batch.ndjson)"
WANT='[{"index":0,"status":200,"cache":"hit"},{"index":1,"status":200,"cache":"trace-hit"}]'
if [ "$ORDER" != "$WANT" ]; then
    echo "hcserve_smoke: batch lines $ORDER, want $WANT" >&2
    exit 1
fi
echo "hcserve_smoke: batch ok (result hit + trace-hit, in order)"

# Metrics: the scrape must expose the trace-cache hit the batch just made.
curl -sf "http://$ADDR/metrics" > /tmp/hcserve_smoke_metrics.txt
for want in \
    'hcserve_cache_hits_total{cache="trace"} 1' \
    'hcserve_batch_scenarios_total 2' \
    'hcserve_shed_total 0'; do
    if ! grep -qxF "$want" /tmp/hcserve_smoke_metrics.txt; then
        echo "hcserve_smoke: /metrics missing line: $want" >&2
        grep '^hcserve_' /tmp/hcserve_smoke_metrics.txt >&2 || true
        exit 1
    fi
done
echo "hcserve_smoke: metrics ok"
