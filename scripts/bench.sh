#!/bin/sh
# bench.sh runs the root benchmark suite and records a BENCH_<date>.json
# snapshot, the repository's performance trajectory. Knobs:
#
#   BENCH=RSEncode  restrict the benchmark regexp (default: .)
#   BENCHTIME=2s    per-benchmark time or iteration budget (default: 1s)
#   NOTE="..."      free-form note recorded in the snapshot
set -eu
cd "$(dirname "$0")/.."

stamp=$(date -u +%Y-%m-%d)
out="BENCH_${stamp}.json"
# Never clobber an earlier same-day snapshot: suffix with b, c, ... so the
# performance trajectory keeps every point and `ls | sort | tail -1` still
# finds the newest.
for suffix in b c d e f g; do
  [ -e "$out" ] || break
  out="BENCH_${stamp}${suffix}.json"
done
if [ -e "$out" ]; then
  echo "bench.sh: all snapshot names for ${stamp} are taken (through ${out}); refusing to overwrite" >&2
  exit 1
fi
raw=$(mktemp)
json=$(mktemp)
trap 'rm -f "$raw" "$json"' EXIT

# No pipeline: a failing benchmark run must abort the snapshot, and the
# snapshot file is only replaced once benchjson has fully succeeded.
go test -run '^$' -bench "${BENCH:-.}" -benchmem -benchtime "${BENCHTIME:-1s}" . > "$raw"
cat "$raw"
go run ./cmd/benchjson -date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" -note "${NOTE:-}" < "$raw" > "$json"
chmod 644 "$json" # mktemp creates 0600; the snapshot is a shared artifact
mv "$json" "$out"
echo "wrote $out" >&2
