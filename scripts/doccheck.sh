#!/bin/sh
# doccheck.sh — documentation hygiene gate, run by CI and `make doccheck`.
#
# 1. Every Go package must carry a package-level doc comment on a non-test
#    file (go list's {{.Doc}} is empty otherwise).
# 2. Every repo-relative markdown link in README.md, ROADMAP.md, CHANGES.md,
#    and docs/*.md must point at an existing file. External links
#    (http/https/mailto), in-page anchors, and GitHub-web-relative paths
#    (../../..., e.g. the Actions badge) are skipped.
set -eu
cd "$(dirname "$0")/.."
status=0

undocumented="$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)"
if [ -n "$undocumented" ]; then
    echo "doccheck: packages without a package doc comment:" >&2
    echo "$undocumented" | sed 's/^/    /' >&2
    status=1
fi

for f in README.md ROADMAP.md CHANGES.md docs/*.md; do
    [ -f "$f" ] || continue
    dir="$(dirname "$f")"
    # Extract the (target) halves of [text](target) links, one per line.
    targets="$(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')" || continue
    for t in $targets; do
        case "$t" in
        http://* | https://* | mailto:* | '#'* | ../../*) continue ;;
        esac
        t="${t%%#*}" # strip in-file anchors
        [ -n "$t" ] || continue
        if [ ! -e "$dir/$t" ]; then
            echo "doccheck: $f links to missing path: $t" >&2
            status=1
        fi
    done
done

if [ "$status" -eq 0 ]; then
    echo "doccheck: ok"
fi
exit $status
