package hierclust

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hierclust/internal/trace"
)

// traceScenario returns a small tsunami-traced scenario; strategies vary by
// name so result-level identity differs while the trace key is shared.
func traceScenario(name, kind string) *Scenario {
	return &Scenario{
		Name:       name,
		Machine:    MachineSpec{Nodes: 16},
		Placement:  PlacementSpec{Policy: "block", Ranks: 64, ProcsPerNode: 4},
		Trace:      TraceSpec{Source: "tsunami", Iterations: 5},
		Strategies: []StrategySpec{{Kind: kind}},
	}
}

func TestTraceKeySharedAcrossStrategies(t *testing.T) {
	a := traceScenario("a", "naive")
	a.Strategies[0].Size = 8
	b := traceScenario("b", "hierarchical")
	ka, oka := a.TraceKey()
	kb, okb := b.TraceKey()
	if !oka || !okb {
		t.Fatal("tsunami scenarios must be cacheable")
	}
	if ka != kb {
		t.Fatalf("scenarios differing only in name/strategies got different trace keys:\n%s\n%s", ka, kb)
	}
}

func TestTraceKeyResolvesDefaults(t *testing.T) {
	// tsunami: omitted iterations means 20, so explicit 20 shares the key.
	imp := traceScenario("imp", "naive")
	imp.Strategies[0].Size = 8
	imp.Trace.Iterations = 0
	exp := traceScenario("exp", "naive")
	exp.Strategies[0].Size = 8
	exp.Trace.Iterations = 20
	ki, _ := imp.TraceKey()
	ke, _ := exp.TraceKey()
	if ki != ke {
		t.Fatalf("implicit and explicit default iterations differ:\n%s\n%s", ki, ke)
	}

	// synthetic stencil2d: omitted width resolves to procs_per_node.
	syn := &Scenario{
		Name:       "s",
		Placement:  PlacementSpec{Ranks: 64, ProcsPerNode: 4},
		Trace:      TraceSpec{Source: "synthetic", Pattern: "stencil2d"},
		Strategies: []StrategySpec{{Kind: "hierarchical"}},
	}
	synW := &Scenario{
		Name:       "s",
		Placement:  PlacementSpec{Ranks: 64, ProcsPerNode: 4},
		Trace:      TraceSpec{Source: "synthetic", Pattern: "stencil2d", Width: 4},
		Strategies: []StrategySpec{{Kind: "hierarchical"}},
	}
	k1, _ := syn.TraceKey()
	k2, _ := synW.TraceKey()
	if k1 != k2 {
		t.Fatalf("derived and explicit width differ:\n%s\n%s", k1, k2)
	}

	// Different ranks must split the key.
	syn2 := *syn
	syn2.Placement.Ranks = 128
	k3, _ := syn2.TraceKey()
	if k1 == k3 {
		t.Fatal("different rank counts share a trace key")
	}
}

func TestTraceKeyFileNotCacheable(t *testing.T) {
	s := &Scenario{
		Name:       "f",
		Placement:  PlacementSpec{Ranks: 64, ProcsPerNode: 4},
		Trace:      TraceSpec{Source: "file", Path: "x.hctr"},
		Strategies: []StrategySpec{{Kind: "hierarchical"}},
	}
	if _, ok := s.TraceKey(); ok {
		t.Fatal("file source must not be cacheable")
	}
}

func TestMemoryTraceCacheLRU(t *testing.T) {
	c := NewMemoryTraceCache(2)
	ta, _ := trace.Synthetic(8, SyntheticOptions{})
	tb, _ := trace.Synthetic(16, SyntheticOptions{})
	tc2, _ := trace.Synthetic(32, SyntheticOptions{})
	c.Put("a", ta)
	c.Put("b", tb)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", tc2)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	got, ok := c.Get("a")
	if !ok || got.Ranks() != 8 {
		t.Fatalf("a lost or wrong: %v", ok)
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 2/1", st.Hits, st.Misses)
	}
}

func TestDiskTraceCacheRoundTripAndRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskTraceCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := trace.Synthetic(64, SyntheticOptions{Iterations: 7})
	c.Put("key-1", orig)

	got, ok := c.Get("key-1")
	if !ok {
		t.Fatal("disk cache missed a stored trace")
	}
	var a, b bytes.Buffer
	if _, err := orig.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := got.(*trace.CSR).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("round-tripped trace differs from the original")
	}

	// A fresh instance over the same dir re-indexes the stored trace.
	c2, err := NewDiskTraceCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("key-1"); !ok {
		t.Fatal("restarted cache lost the stored trace")
	}
	if st := c2.Stats(); st.Entries != 1 || st.Bytes == 0 {
		t.Fatalf("restart stats = %+v", st)
	}
}

func TestDiskTraceCacheEvictsToBudget(t *testing.T) {
	dir := t.TempDir()
	one, _ := trace.Synthetic(64, SyntheticOptions{})
	var sz bytes.Buffer
	_, _ = one.WriteTo(&sz)
	// Budget for two traces of this size, not three.
	c, err := NewDiskTraceCache(dir, int64(sz.Len()*2))
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", one)
	c.Put("b", one)
	c.Put("c", one)
	if _, ok := c.Get("a"); ok {
		t.Fatal("oldest entry survived over-budget insertion")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("newest entry evicted")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes > int64(sz.Len()*2) {
		t.Fatalf("stats after eviction = %+v", st)
	}

	files, _ := filepath.Glob(filepath.Join(dir, "*"+diskTraceExt))
	if len(files) != 2 {
		t.Fatalf("%d files on disk, want 2", len(files))
	}
}

func TestDiskTraceCacheCorruptFileIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskTraceCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	one, _ := trace.Synthetic(64, SyntheticOptions{})
	c.Put("a", one)
	// Truncate the stored file behind the cache's back.
	files, _ := filepath.Glob(filepath.Join(dir, "*"+diskTraceExt))
	if len(files) != 1 {
		t.Fatalf("%d files, want 1", len(files))
	}
	if err := os.WriteFile(files[0], []byte("HCTRgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("corrupt file reported as hit")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("corrupt entry not dropped: %+v", st)
	}
}

// TestPipelineTraceCacheHit runs two scenarios sharing one tsunami trace:
// the second must be served from the cache (TraceInfo reports the hit) and
// produce the same result it would have uncached — determinism is pinned
// elsewhere; here we check the cached path returns the identical matrix.
func TestPipelineTraceCacheHit(t *testing.T) {
	cache := NewMemoryTraceCache(4)
	pl := NewPipeline(WithWorkers(1), WithTraceCache(cache))
	plain := NewPipeline(WithWorkers(1))

	ctx1, info1 := WithTraceInfo(context.Background())
	res1, err := pl.Run(ctx1, traceScenario("first", "hierarchical"))
	if err != nil {
		t.Fatal(err)
	}
	if info1.Cache != "miss" {
		t.Fatalf("first run trace cache = %q, want miss", info1.Cache)
	}

	ctx2, info2 := WithTraceInfo(context.Background())
	sc2 := traceScenario("second", "naive")
	sc2.Strategies[0].Size = 8
	res2, err := pl.Run(ctx2, sc2)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Cache != "hit" {
		t.Fatalf("second run trace cache = %q, want hit", info2.Cache)
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", st)
	}

	// The cached-trace result matches an uncached evaluation exactly.
	ref, err := plain.Run(context.Background(), sc2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalBytes != ref.TotalBytes || res2.TotalMsgs != ref.TotalMsgs {
		t.Fatalf("cached trace totals differ: %+v vs %+v", res2, ref)
	}
	if res2.Evaluations[0].LoggedFraction != ref.Evaluations[0].LoggedFraction {
		t.Fatalf("cached evaluation differs: %+v vs %+v", res2.Evaluations[0], ref.Evaluations[0])
	}
	if res1.TotalBytes != res2.TotalBytes {
		t.Fatal("shared trace reports different totals")
	}
}

// TestPipelineJoinsInflightBuild pins the singleflight contract: a Run that
// misses the cache while the same trace is mid-build waits for that build
// and reports a hit, never starting a second application run.
func TestPipelineJoinsInflightBuild(t *testing.T) {
	cache := NewMemoryTraceCache(4)
	pl := NewPipeline(WithWorkers(1), WithTraceCache(cache))
	sc := traceScenario("join", "hierarchical")
	key, ok := sc.TraceKey()
	if !ok {
		t.Fatal("scenario not cacheable")
	}

	// Install a fake in-flight build for the scenario's key.
	comm, err := trace.Synthetic(64, SyntheticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := &traceFlight{done: make(chan struct{})}
	pl.flightMu.Lock()
	pl.flight[key] = f
	pl.flightMu.Unlock()

	type outcome struct {
		res  *Result
		info *TraceInfo
		err  error
	}
	got := make(chan outcome, 1)
	go func() {
		ctx, info := WithTraceInfo(context.Background())
		res, err := pl.Run(ctx, sc)
		got <- outcome{res, info, err}
	}()

	select {
	case o := <-got:
		t.Fatalf("Run completed without waiting for the in-flight build: %+v", o)
	case <-time.After(50 * time.Millisecond):
	}

	f.comm = comm
	pl.flightMu.Lock()
	delete(pl.flight, key)
	pl.flightMu.Unlock()
	close(f.done)

	o := <-got
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.info.Cache != "hit" {
		t.Fatalf("joined run trace cache = %q, want hit", o.info.Cache)
	}
	if o.res.TotalBytes != comm.TotalBytes() {
		t.Fatal("joined run did not use the in-flight build's trace")
	}

	// Cancellation releases a waiter blocked on an in-flight build.
	f2 := &traceFlight{done: make(chan struct{})}
	pl.flightMu.Lock()
	pl.flight[key] = f2
	pl.flightMu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := pl.Run(ctx, sc)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
}

// TestPipelineConcurrentSharedTrace stresses the cache + singleflight path
// under real concurrency; every run must succeed and agree on the trace.
func TestPipelineConcurrentSharedTrace(t *testing.T) {
	cache := NewMemoryTraceCache(4)
	pl := NewPipeline(WithWorkers(1), WithTraceCache(cache))
	const n = 6
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = pl.Run(context.Background(), traceScenario("conc", "hierarchical"))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].TotalBytes != results[0].TotalBytes {
			t.Fatal("concurrent runs disagree on the shared trace")
		}
	}
	if st := cache.Stats(); st.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.Entries)
	}
}
