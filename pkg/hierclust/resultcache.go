package hierclust

import (
	"fmt"
	"sync/atomic"

	"hierclust/internal/diskstore"
)

// The result cache is the restart-survival layer above the trace cache:
// rendered result documents are deterministic by canonical scenario key
// (Scenario.CacheKey), so a result computed before a crash is exactly the
// result after it. DiskResultCache persists those documents; hcserve
// mounts it beneath its in-memory result LRU (write-through on store,
// promote-on-hit on load) and hands it to sweep execution via
// SweepOptions.ResultCache, which is what lets a journaled sweep resume
// after kill -9 recomputing only the cells that never reached disk.

// ResultCacheStats is DiskResultCache's observability surface, mirroring
// TraceCacheStats for the serving layer's /healthz and /metrics.
type ResultCacheStats struct {
	// Hits and Misses count Get outcomes since construction.
	Hits, Misses int64
	// Entries and Bytes describe the on-disk index.
	Entries int
	Bytes   int64
	// ReadErrors and WriteErrors count failed disk operation *attempts*
	// (each retry of a transiently failing op counts).
	ReadErrors, WriteErrors int64
	// Quarantined counts corrupt files renamed to .bad.
	Quarantined int64
	// Degraded reports memory-only fallback mode.
	Degraded bool
	// MemEntries is the degraded-mode fallback's entry count.
	MemEntries int
}

// DiskResultCache is a size-bounded on-disk SweepResultCache: each result
// document is one checksummed file named by the SHA-256 of its canonical
// scenario key, evicted least-recently-used past the byte budget. It
// inherits internal/diskstore's full hardening — atomic temp+rename
// writes, capped-backoff retry with per-attempt error counters, corrupt
// files quarantined to .bad (the checksum frame catches corruption at
// read time), and consecutive-failure degradation to a bounded memory
// fallback with probe-based recovery — under the fault points
// resultcache.disk.{read,write,rename}.
type DiskResultCache struct {
	store  *diskstore.Store
	hits   atomic.Int64
	misses atomic.Int64
}

// diskResultExt names result-cache files; the payload is the rendered
// result document wrapped in the diskstore checksum frame.
const diskResultExt = ".hcres"

// NewDiskResultCache opens (creating if needed) a disk result cache
// rooted at dir, bounded to maxBytes of stored documents (<= 0 means
// 512 MiB). Existing files are indexed oldest-first by modification time
// — the restart-survival path; quarantined .bad files are ignored.
func NewDiskResultCache(dir string, maxBytes int64, opts ...DiskCacheOption) (*DiskResultCache, error) {
	if maxBytes <= 0 {
		maxBytes = 512 << 20
	}
	var cfg diskCacheConfig
	for _, o := range opts {
		o(&cfg)
	}
	st, err := diskstore.Open(diskstore.Options{
		Dir:      dir,
		Ext:      diskResultExt,
		MaxBytes: maxBytes,
		// Result documents are plain JSON with no self-validating frame,
		// so the store's checksum header does the corruption detection.
		Checksum:     true,
		FaultPrefix:  "resultcache.disk",
		DegradeAfter: cfg.degradeAfter,
		ProbeEvery:   cfg.probeEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("hierclust: result cache: %w", err)
	}
	return &DiskResultCache{store: st}, nil
}

// Get implements SweepResultCache. The returned slice never aliases
// cache-internal memory; callers own it.
func (c *DiskResultCache) Get(key string) ([]byte, bool) {
	doc, ok := c.store.Get(hashStem(key))
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return doc, true
}

// Put implements SweepResultCache. Documents are deterministic per key,
// so an existing entry is left untouched.
func (c *DiskResultCache) Put(key string, doc []byte) {
	c.store.Put(hashStem(key), doc)
}

// Stats returns lifetime counters, the index size, and the disk-health
// fields (error counts, quarantines, degraded mode).
func (c *DiskResultCache) Stats() ResultCacheStats {
	st := c.store.Stats()
	return ResultCacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Entries:     st.Entries,
		Bytes:       st.Bytes,
		ReadErrors:  st.ReadErrors,
		WriteErrors: st.WriteErrors,
		Quarantined: st.Quarantined,
		Degraded:    st.Degraded,
		MemEntries:  st.MemEntries,
	}
}
