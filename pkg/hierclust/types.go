package hierclust

import (
	"io"

	"hierclust/internal/core"
	"hierclust/internal/erasure"
	"hierclust/internal/graph"
	"hierclust/internal/reliability"
	"hierclust/internal/topology"
	"hierclust/internal/trace"
)

// The machine/placement layer: the physical structure of an HPC system and
// the mapping of application ranks onto it.
type (
	// Machine describes the fault-relevant physical structure of a
	// cluster: nodes, power-supply pairs, racks, storage bandwidths.
	Machine = topology.Machine
	// Placement maps application ranks to compute nodes.
	Placement = topology.Placement
	// Rank identifies an application process (MPI-style rank).
	Rank = topology.Rank
	// NodeID identifies a compute node within a Machine.
	NodeID = topology.NodeID
)

// The trace layer: who sent how many bytes to whom.
type (
	// Comm is the read-side view of a communication matrix, implemented
	// by both the dense Matrix and the sparse CSR.
	Comm = trace.Comm
	// Matrix is a dense communication matrix (natural for heatmaps and
	// submatrix zooms at traced scales).
	Matrix = trace.Matrix
	// CSR is a frozen sparse communication matrix (the representation
	// that scales the pipeline to 100k+ ranks).
	CSR = trace.CSR
	// TraceRecorder accumulates a Matrix from a message-passing run.
	TraceRecorder = trace.Recorder
	// SyntheticOptions tunes generated stencil traces.
	SyntheticOptions = trace.SyntheticOptions
	// SyntheticPattern selects the generated communication structure.
	SyntheticPattern = trace.SyntheticPattern
	// TraceReadOptions tunes trace deserialization (rank-count bound).
	TraceReadOptions = trace.ReadOptions
	// Graph is the undirected weighted communication graph consumed by
	// the partitioner and the brain-network measures (modularity, degree
	// distribution).
	Graph = graph.Graph
)

// Synthetic trace patterns.
const (
	// Stencil1D is a 1-D slab decomposition: rank r exchanges with r±1.
	Stencil1D = trace.Stencil1D
	// Stencil2D is a 2-D block decomposition on a Width-wide grid.
	Stencil2D = trace.Stencil2D
)

// The clustering/evaluation layer: the paper's contribution.
type (
	// Clustering is a complete clustering decision: L1 containment
	// clusters plus L2 erasure-encoding groups.
	Clustering = core.Clustering
	// HierOptions tunes the hierarchical two-level construction.
	HierOptions = core.HierOptions
	// Evaluation scores a clustering on the paper's four dimensions.
	Evaluation = core.Evaluation
	// Baseline is the paper's requirement envelope (§III).
	Baseline = core.Baseline
	// Mix is the failure-type distribution of the reliability model.
	Mix = reliability.Mix
)

// NewMachine is not needed: Machine is a plain struct; compose it directly
// or start from Tsubame2.

// Tsubame2 returns the paper's TSUBAME2 machine model (Table I constants).
func Tsubame2() *Machine { return topology.Tsubame2() }

// NewPlacement builds a placement from an explicit rank→node assignment.
func NewPlacement(m *Machine, nodeOf []NodeID) (*Placement, error) {
	return topology.NewPlacement(m, nodeOf)
}

// Block places ranks in consecutive blocks of procsPerNode per node — the
// topology-aware placement of the paper's runs.
func Block(m *Machine, nranks, procsPerNode int) (*Placement, error) {
	return topology.Block(m, nranks, procsPerNode)
}

// RoundRobin places consecutive ranks on consecutive nodes, wrapping.
func RoundRobin(m *Machine, nranks, usedNodes int) (*Placement, error) {
	return topology.RoundRobin(m, nranks, usedNodes)
}

// NewMatrix returns an all-zero dense n×n communication matrix; fill it
// with Matrix.Add to describe a custom application's traffic.
func NewMatrix(n int) *Matrix { return trace.NewMatrix(n) }

// NewTraceRecorder returns a concurrency-safe recorder for n ranks,
// pluggable as the Tracer of a traced application run.
func NewTraceRecorder(n int) *TraceRecorder { return trace.NewRecorder(n) }

// SyntheticTrace generates a deterministic stencil communication matrix for
// n ranks directly in sparse form — O(n) memory, no message-passing run.
func SyntheticTrace(n int, opts SyntheticOptions) (*CSR, error) {
	return trace.Synthetic(n, opts)
}

// ReadTrace deserializes a trace written by Matrix.WriteTo or CSR.WriteTo
// into sparse form without materializing a dense matrix. An optional
// TraceReadOptions raises the rank-count plausibility bound beyond the
// 2^22 default.
func ReadTrace(r io.Reader, opts ...TraceReadOptions) (*CSR, error) {
	return trace.ReadCSR(r, opts...)
}

// ReadTraceMatrix deserializes a trace into dense form (for heatmaps and
// zooms at traced scales).
func ReadTraceMatrix(r io.Reader, opts ...TraceReadOptions) (*Matrix, error) {
	return trace.ReadMatrix(r, opts...)
}

// Naive builds the paper's naive clustering: consecutive-rank clusters at
// the logging/recovery sweet spot, reused as encoding groups.
func Naive(nranks, size int) (*Clustering, error) { return core.Naive(nranks, size) }

// SizeGuided builds consecutive-rank clusters at the encoding sweet spot.
func SizeGuided(nranks, size int) (*Clustering, error) { return core.SizeGuided(nranks, size) }

// Distributed builds striped clusters whose members all live on different
// nodes under block placement.
func Distributed(nranks, size int) (*Clustering, error) { return core.Distributed(nranks, size) }

// Hierarchical builds the paper's two-level clustering from a communication
// matrix: graph-partitioned L1 containment clusters over the node graph,
// transversal L2 encoding groups inside each.
func Hierarchical(m Comm, p *Placement, opts HierOptions) (*Clustering, error) {
	return core.Hierarchical(m, p, opts)
}

// DefaultMix returns the calibrated failure mix of the paper reproduction.
func DefaultMix() Mix { return reliability.DefaultMix() }

// DefaultBaseline returns the paper's §III requirement envelope.
func DefaultBaseline() Baseline { return core.DefaultBaseline() }

// Evaluate scores a clustering against a communication matrix, a placement,
// and a failure mix on all four dimensions.
func Evaluate(c *Clustering, m Comm, p *Placement, mix Mix) (*Evaluation, error) {
	return core.Evaluate(c, m, p, mix)
}

// RecoveryFraction computes the expected fraction of ranks restarted after
// a uniformly random single-node failure.
func RecoveryFraction(c *Clustering, p *Placement) (float64, error) {
	return core.RecoveryFraction(c, p)
}

// RecoveryFractionProcess computes the expected restart fraction after a
// uniformly random single-process failure.
func RecoveryFractionProcess(c *Clustering) (float64, error) {
	return core.RecoveryFractionProcess(c)
}

// ModelEncodeSeconds returns the modeled Reed–Solomon encode time for one
// group member's bytes at the given group size (the paper-calibrated
// linear-in-k law).
func ModelEncodeSeconds(groupSize int, bytes int64) float64 {
	return erasure.ModelEncodeSeconds(groupSize, bytes)
}

// CompareTable renders evaluations as an aligned Table-II style comparison.
func CompareTable(evals []*Evaluation, b Baseline) string { return core.CompareTable(evals, b) }

// DimensionNames labels the four evaluation axes in Figure 5c order.
func DimensionNames() [4]string { return core.DimensionNames() }

// SetPartitionPhaseLabels toggles runtime/pprof goroutine labels on the
// multilevel partitioner's pipeline phases (match, contract, grow, refine,
// tagged with the coarsening level), so a CPU profile attributes time to
// phases instead of bare symbols. Enable it together with CPU profiling
// and leave it off otherwise: each phase transition allocates while labels
// are on, and the partitioner's hot path is allocation-free without them.
func SetPartitionPhaseLabels(on bool) { graph.SetPhaseLabels(on) }
