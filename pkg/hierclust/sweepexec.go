package hierclust

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hierclust/internal/faultinject"
)

// The sweep executor runs a compiled SweepPlan on a bounded worker pool.
// Shared DAG nodes (trace builds, clustering builds) are computed inline
// by whichever cell demands them first — a sync.Once per node — so every
// shared intermediate is built exactly once per run regardless of worker
// count or scheduling, and no worker ever blocks waiting for a slot it is
// itself supposed to fill. Per-cell results are byte-identical to running
// the expanded scenario through Pipeline.Run (the two paths share
// resultShell, buildClustering, and scoreClustering), at any worker count.
//
// Resumability is the result cache: every completed cell is Put under its
// Scenario.CacheKey before the executor moves on, so a killed or
// cancelled sweep that is re-submitted against the same cache completes
// only the remaining cells — the finished ones come back as "hit" without
// touching the DAG.
//
// Fault point (chaos drills): "sweep.cell" fires at the top of every
// computed cell (cache hits bypass it), failing that cell alone.

// SweepResultCache caches rendered per-cell result documents by scenario
// cache key. hcserve's result LRU implements it, which is what makes
// sweep cells hit — and warm — the same cache as single POST /v1/evaluate
// requests. Implementations must be safe for concurrent use.
type SweepResultCache interface {
	// Get returns the cached compact result document for key.
	Get(key string) ([]byte, bool)
	// Put stores a freshly rendered document.
	Put(key string, doc []byte)
}

// SweepOptions tunes one RunSweep call.
type SweepOptions struct {
	// Workers bounds concurrently executing cells; 0 means the pipeline's
	// worker budget (GOMAXPROCS when that is unset too). Results are
	// byte-identical at any worker count.
	Workers int
	// ResultCache, when non-nil, is consulted before computing a cell and
	// filled after — the resume mechanism. Cache hits bypass admission
	// and the sweep.cell fault point.
	ResultCache SweepResultCache
	// Acquire, when non-nil, is called before each computed cell; the
	// evaluation holds the returned release until the cell finishes.
	// hcserve wires its admission limiter here so sweep cells compete for
	// the same evaluation slots as interactive traffic. An Acquire error
	// fails the cell.
	Acquire func(ctx context.Context) (release func(), err error)
	// CellTimeout bounds one cell's evaluation, measured after admission;
	// 0 means no per-cell deadline. Shared node builds run under the
	// sweep's context, not the cell's, so one slow cell cannot poison a
	// shared trace for its siblings.
	CellTimeout time.Duration
	// OnCell, when non-nil, is called once per executed cell as it
	// finishes (any order; cells are identified by Index). It must be
	// safe for concurrent calls.
	OnCell func(SweepCellResult)
}

// SweepCellResult is the outcome of one cell.
type SweepCellResult struct {
	// Index is the cell's position in plan (expansion) order.
	Index int
	// Scenario is the expanded cell scenario's name.
	Scenario string
	// CacheKey is the cell's canonical result-cache key.
	CacheKey string
	// Cache reports how the cell was satisfied: "hit" (result cache, no
	// evaluation), "trace-hit" (evaluated; trace shared or cached), or
	// "miss" (evaluated; this cell's node performed the trace build).
	// The label is deterministic: the plan designates the builder cell,
	// not the scheduler.
	Cache string
	// Doc is the compact rendered Result JSON — byte-identical to the
	// document POST /v1/evaluate caches for the same scenario. nil when
	// Err is set.
	Doc []byte
	// Err is the cell's failure, if any.
	Err error
}

// SweepReport is the outcome of a RunSweep call.
type SweepReport struct {
	// Plan is the compiled DAG the run executed.
	Plan *SweepPlan
	// Cells holds every cell's result, in plan order. Cells never
	// dispatched (sweep cancelled first) carry the context error.
	Cells []SweepCellResult
	// TraceBuilds counts trace-node computations this run performed;
	// with every cell served from the result cache it is 0, and it never
	// exceeds Plan.TraceBuilds. PartitionBuilds is the same for
	// clustering builds.
	TraceBuilds     int64
	PartitionBuilds int64
	// CellsCompleted, CellsFromCache, and CellsFailed partition the
	// cells: evaluated this run, served from the result cache, and
	// failed (including cancelled).
	CellsCompleted int
	CellsFromCache int
	CellsFailed    int
}

// sweepTraceNode is one shared trace build.
type sweepTraceNode struct {
	once sync.Once
	comm Comm
	err  error
	info TraceInfo
}

// get computes the node on first demand (concurrent callers block until
// the computation finishes) and returns the shared trace.
func (n *sweepTraceNode) get(ctx context.Context, pl *Pipeline, sc *Scenario, placement *Placement, builds *atomic.Int64) (Comm, error) {
	n.once.Do(func() {
		defer recoverAsError(&n.err)
		builds.Add(1)
		ictx, info := WithTraceInfo(ctx)
		n.comm, n.err = pl.resolveTrace(ictx, sc, placement)
		n.info = *info
	})
	return n.comm, n.err
}

// sweepPartNode is one shared clustering build.
type sweepPartNode struct {
	once sync.Once
	c    *Clustering
	err  error
}

func (n *sweepPartNode) get(ctx context.Context, spec StrategySpec, comm Comm, placement *Placement, builds *atomic.Int64) (*Clustering, error) {
	n.once.Do(func() {
		defer recoverAsError(&n.err)
		builds.Add(1)
		n.c, n.err = buildClustering(ctx, spec, comm, placement)
	})
	return n.c, n.err
}

// RunSweep compiles and executes a sweep. Per-cell failures (a bad cell, a
// chaos fault, a per-cell timeout) land in that cell's result and the rest
// of the sweep proceeds; the returned error is non-nil only for a plan
// failure or sweep-level cancellation — and even then the partial report
// is returned, so callers can see which cells finished (and were cached)
// before the cut.
func (pl *Pipeline) RunSweep(ctx context.Context, sw *Sweep, opts SweepOptions) (*SweepReport, error) {
	plan, err := PlanSweep(sw)
	if err != nil {
		return nil, err
	}
	return pl.RunPlannedSweep(ctx, plan, opts)
}

// RunPlannedSweep executes an already compiled plan (hcserve plans at
// submission time to bound cell counts before accepting the job).
func (pl *Pipeline) RunPlannedSweep(ctx context.Context, plan *SweepPlan, opts SweepOptions) (*SweepReport, error) {
	report := &SweepReport{Plan: plan, Cells: make([]SweepCellResult, len(plan.Cells))}

	numTrace, numPart := 0, 0
	for i := range plan.Cells {
		if id := plan.Cells[i].TraceNode; id >= numTrace {
			numTrace = id + 1
		}
		for _, id := range plan.Cells[i].PartNodes {
			if id >= numPart {
				numPart = id + 1
			}
		}
	}
	traceNodes := make([]*sweepTraceNode, numTrace)
	for i := range traceNodes {
		traceNodes[i] = &sweepTraceNode{}
	}
	partNodes := make([]*sweepPartNode, numPart)
	for i := range partNodes {
		partNodes[i] = &sweepPartNode{}
	}

	budget := pl.workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = budget
	}
	if workers > len(plan.Cells) {
		workers = len(plan.Cells)
	}
	// Concurrent cells split the evaluation worker budget, like Run's
	// concurrent strategies; the split never changes a bit of output.
	evalWorkers := budget / workers
	if evalWorkers < 1 {
		evalWorkers = 1
	}

	var traceBuilds, partBuilds atomic.Int64
	var completed, cached, failed atomic.Int64
	dispatched := make([]bool, len(plan.Cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res := pl.runSweepCell(ctx, &plan.Cells[i], traceNodes, partNodes, &opts, evalWorkers, &traceBuilds, &partBuilds)
				report.Cells[i] = res
				switch {
				case res.Err != nil:
					failed.Add(1)
				case res.Cache == "hit":
					cached.Add(1)
				default:
					completed.Add(1)
				}
				if opts.OnCell != nil {
					opts.OnCell(res)
				}
			}
		}()
	}
	for i := range plan.Cells {
		if ctx.Err() != nil {
			break
		}
		dispatched[i] = true
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	report.TraceBuilds = traceBuilds.Load()
	report.PartitionBuilds = partBuilds.Load()
	report.CellsCompleted = int(completed.Load())
	report.CellsFromCache = int(cached.Load())
	report.CellsFailed = int(failed.Load())

	if err := ctx.Err(); err != nil {
		for i := range plan.Cells {
			if !dispatched[i] {
				report.Cells[i] = SweepCellResult{
					Index:    i,
					Scenario: plan.Cells[i].Scenario.Name,
					CacheKey: plan.Cells[i].CacheKey,
					Err:      err,
				}
				report.CellsFailed++
			}
		}
		return report, err
	}
	return report, nil
}

// runSweepCell executes one cell behind its own panic boundary.
func (pl *Pipeline) runSweepCell(ctx context.Context, cell *PlannedCell, traceNodes []*sweepTraceNode, partNodes []*sweepPartNode, opts *SweepOptions, evalWorkers int, traceBuilds, partBuilds *atomic.Int64) (res SweepCellResult) {
	res = SweepCellResult{Index: cell.Index, Scenario: cell.Scenario.Name, CacheKey: cell.CacheKey}
	defer recoverAsError(&res.Err)

	if opts.ResultCache != nil {
		if doc, ok := opts.ResultCache.Get(cell.CacheKey); ok {
			res.Cache, res.Doc = "hit", doc
			return res
		}
	}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	if opts.Acquire != nil {
		release, err := opts.Acquire(ctx)
		if err != nil {
			res.Err = err
			return res
		}
		defer release()
	}
	if err := faultinject.Hit("sweep.cell"); err != nil {
		res.Err = fmt.Errorf("hierclust: sweep cell %q: %w", cell.Scenario.Name, err)
		return res
	}

	// The per-cell deadline covers this cell's own evaluation work;
	// shared node builds run under the sweep context so a cell's timeout
	// cannot poison an intermediate its siblings still need.
	cellCtx := ctx
	cancel := func() {}
	if opts.CellTimeout > 0 {
		cellCtx, cancel = context.WithTimeout(ctx, opts.CellTimeout)
	}
	defer cancel()

	sc := cell.Scenario
	mach, err := sc.machine()
	if err != nil {
		res.Err = err
		return res
	}
	placement, err := sc.placement(mach)
	if err != nil {
		res.Err = err
		return res
	}

	var comm Comm
	if cell.TraceNode >= 0 {
		node := traceNodes[cell.TraceNode]
		comm, err = node.get(ctx, pl, sc, placement, traceBuilds)
		if err == nil {
			// Deterministic label: the plan-designated builder reports the
			// underlying build outcome; every sharer reports "trace-hit",
			// regardless of which worker actually reached the node first.
			if cell.TraceBuilder && node.info.Cache != "hit" {
				res.Cache = "miss"
			} else {
				res.Cache = "trace-hit"
			}
		}
	} else {
		traceBuilds.Add(1)
		ictx, info := WithTraceInfo(cellCtx)
		comm, err = pl.resolveTrace(ictx, sc, placement)
		if err == nil {
			res.Cache = "miss"
			if info.Cache == "hit" {
				res.Cache = "trace-hit"
			}
		}
	}
	if err != nil {
		res.Err = err
		return res
	}
	if comm.Ranks() != placement.NumRanks() {
		res.Err = fmt.Errorf("hierclust: scenario %q: trace covers %d ranks, placement %d",
			sc.Name, comm.Ranks(), placement.NumRanks())
		return res
	}

	mix := sc.Mix.Mix()
	baseline := sc.Baseline.Baseline()
	out := resultShell(sc, mach, placement, comm, baseline)
	for j, spec := range sc.Strategies {
		var c *Clustering
		if id := cell.PartNodes[j]; id >= 0 {
			c, err = partNodes[id].get(ctx, spec, comm, placement, partBuilds)
		} else {
			partBuilds.Add(1)
			c, err = buildClustering(cellCtx, spec, comm, placement)
		}
		if err == nil {
			out.Evaluations[j], err = scoreClustering(cellCtx, c, spec.Kind, comm, placement, mix, baseline, evalWorkers)
		}
		if err != nil {
			res.Err = fmt.Errorf("hierclust: scenario %q: strategy %q: %w", sc.Name, spec.Kind, err)
			return res
		}
	}

	doc, err := json.Marshal(out)
	if err != nil {
		res.Err = err
		return res
	}
	res.Doc = doc
	if opts.ResultCache != nil {
		opts.ResultCache.Put(cell.CacheKey, doc)
	}
	return res
}
