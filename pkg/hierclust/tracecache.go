package hierclust

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hierclust/internal/diskstore"
	"hierclust/internal/trace"
	"hierclust/internal/tsunami"
)

// Building a scenario's communication trace is the expensive half of many
// evaluations: a "tsunami" source runs the simulated MPI application —
// seconds of wall clock at paper scale — while everything downstream
// (cluster, evaluate) takes milliseconds. Scenarios that differ only in
// strategies, mix, or baseline share the *same* trace, so hcserve-style
// workloads re-run the application for no reason. The trace cache sits
// beneath the scenario-result cache and keys on exactly the inputs that
// determine the trace, so any scenario family sharing a trace pays for one
// application run.

// TraceKey returns the canonical cache key identifying the communication
// trace this scenario resolves to, and whether the trace is cacheable.
// Two scenarios with equal keys build bit-identical traces: the key folds
// in the source kind, the rank count, the iteration count (with source
// defaults resolved), and every generation parameter — the tsunami grid
// dimensions derived from the rank count, or the synthetic pattern, grid
// width (with the placement-derived default resolved), and message size.
//
// Source "file" is not cacheable (false): the bytes behind a path can
// change, so a path is not a value.
func (s *Scenario) TraceKey() (string, bool) {
	ranks := s.Placement.Ranks
	switch s.Trace.Source {
	case "tsunami":
		iters := s.Trace.Iterations
		if iters <= 0 {
			iters = 20
		}
		p := tsunami.TraceParams(ranks)
		return fmt.Sprintf("tsunami|ranks=%d|iters=%d|nx=%d|ny=%d", ranks, iters, p.NX, p.NY), true
	case "synthetic":
		iters := s.Trace.Iterations
		if iters <= 0 {
			iters = 100
		}
		bpm := s.Trace.BytesPerMsg
		if bpm <= 0 {
			bpm = 1536
		}
		pattern := s.Trace.Pattern
		if pattern == "" {
			pattern = "stencil1d"
		}
		width := 0
		if pattern == "stencil2d" {
			width = s.Trace.Width
			if width == 0 {
				width = s.Placement.ProcsPerNode
			}
		}
		return fmt.Sprintf("synthetic|ranks=%d|iters=%d|pattern=%s|width=%d|bpm=%d",
			ranks, iters, pattern, width, bpm), true
	}
	return "", false
}

// TraceCache caches built communication traces by TraceKey, beneath the
// scenario-result cache. Implementations must be safe for concurrent use
// and must treat stored traces as immutable — the pipeline hands out the
// same Comm to concurrent evaluations, which is sound because frozen CSR
// matrices and recorded dense matrices are never mutated after
// construction (the frozen-CSR immutability invariant the trace and graph
// packages pin).
type TraceCache interface {
	// Get returns the cached trace for key, if present.
	Get(key string) (Comm, bool)
	// Put stores a freshly built trace. Implementations may drop entries
	// (bounded capacity) or decline silently.
	Put(key string, c Comm)
}

// TraceCacheStats is the observability surface shared by the built-in
// TraceCache implementations.
type TraceCacheStats struct {
	// Hits and Misses count Get outcomes since construction.
	Hits, Misses int64
	// Entries is the current entry count.
	Entries int
	// Bytes is the stored size where the backend tracks one (disk);
	// 0 for the in-memory cache.
	Bytes int64

	// The remaining fields describe DiskTraceCache health; they stay zero
	// for the in-memory cache.

	// ReadErrors and WriteErrors count failed disk operation *attempts*
	// (each retry of a transiently failing op counts), the counters
	// hcserve exposes on /metrics for alerting.
	ReadErrors, WriteErrors int64
	// Quarantined counts corrupt cache files renamed to .bad instead of
	// deleted, preserved for post-mortem inspection.
	Quarantined int64
	// Degraded reports memory-only fallback mode: the disk failed
	// repeatedly and the cache serves from its bounded memory LRU until a
	// probe write succeeds.
	Degraded bool
	// MemEntries is the entry count of the degraded-mode memory fallback.
	MemEntries int
}

// MemoryTraceCache is a fixed-capacity in-memory LRU TraceCache. Traces
// are shared by reference (no copy), so hits cost nothing beyond a map
// lookup; capacity bounds entry count, not bytes — size it against the
// O(ranks + distinct pairs) CSR footprint of the machines you serve.
type MemoryTraceCache struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // front = most recently used
	byK  map[string]*list.Element
	hits atomic.Int64
	miss atomic.Int64
}

type memTraceEntry struct {
	key string
	c   Comm
}

// NewMemoryTraceCache returns an LRU trace cache holding up to capacity
// traces; capacity <= 0 disables caching (every Get misses).
func NewMemoryTraceCache(capacity int) *MemoryTraceCache {
	return &MemoryTraceCache{cap: capacity, ll: list.New(), byK: map[string]*list.Element{}}
}

// Get implements TraceCache.
func (c *MemoryTraceCache) Get(key string) (Comm, bool) {
	if c.cap <= 0 {
		c.miss.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		c.miss.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*memTraceEntry).c, true
}

// Put implements TraceCache.
func (c *MemoryTraceCache) Put(key string, comm Comm) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		// Traces are deterministic per key; keep the resident value.
		c.ll.MoveToFront(el)
		return
	}
	c.byK[key] = c.ll.PushFront(&memTraceEntry{key: key, c: comm})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byK, oldest.Value.(*memTraceEntry).key)
	}
}

// Stats returns lifetime counters and the current entry count.
func (c *MemoryTraceCache) Stats() TraceCacheStats {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return TraceCacheStats{Hits: c.hits.Load(), Misses: c.miss.Load(), Entries: n}
}

// DiskTraceCache is a size-bounded on-disk TraceCache: each trace is one
// HCTR file (the same serialization trace files use) named by the SHA-256
// of its key, evicted least-recently-used when the directory exceeds the
// byte budget. It survives process restarts — NewDiskTraceCache re-indexes
// whatever an earlier server left behind — which is what makes a fleet of
// hcserve replicas sharing a volume skip each other's application runs.
//
// The cache is engineered to degrade, not fail, when its disk does; the
// hardening lives in internal/diskstore (extracted from this cache so the
// result cache and sweep journal share it):
//
//   - Transient IO errors are retried with capped backoff; every failed
//     attempt is counted (Stats.ReadErrors/WriteErrors) so /metrics can
//     alarm before users notice.
//   - Corrupt files (decode failures) are quarantined — renamed to .bad,
//     preserving the bytes for post-mortem — and reported as misses. HCTR
//     is self-validating, so corruption is detected at decode time here
//     rather than by a store-level checksum, keeping the on-disk format
//     identical to plain trace files.
//   - After enough consecutive failed attempts the cache enters
//     memory-only degraded mode: disk is left alone, a bounded in-memory
//     LRU keeps serving the hottest traces (results stay bit-identical —
//     the fallback holds the exact serialized bytes), and a probe write
//     every probe interval retries the disk and clears the mode when it
//     succeeds. Stats.Degraded surfaces the mode in /healthz.
type DiskTraceCache struct {
	store *diskstore.Store
	hits  atomic.Int64
	miss  atomic.Int64
}

const (
	diskTraceExt  = ".hctr"
	quarantineExt = diskstore.QuarantineExt // appended to the cache filename, so .hctr.bad

	// diskOpAttempts is the store's transient-IO retry budget per
	// operation (chaos tests pin the exact error accounting to it).
	diskOpAttempts = diskstore.OpAttempts
)

// diskCacheConfig collects the tuning shared by the disk-backed caches
// (trace cache here, result cache in resultcache.go).
type diskCacheConfig struct {
	degradeAfter int
	probeEvery   time.Duration
}

// DiskCacheOption tunes a disk-backed cache (NewDiskTraceCache,
// NewDiskResultCache).
type DiskCacheOption func(*diskCacheConfig)

// DiskTraceCacheOption is the historical name of DiskCacheOption, kept so
// existing NewDiskTraceCache call sites read unchanged.
type DiskTraceCacheOption = DiskCacheOption

// WithDegradeAfter sets how many consecutive failed disk-operation
// attempts flip the cache into memory-only degraded mode; n <= 0 keeps
// the default (one fully retried-out operation).
func WithDegradeAfter(n int) DiskCacheOption {
	return func(c *diskCacheConfig) {
		if n > 0 {
			c.degradeAfter = n
		}
	}
}

// WithDegradedProbe sets how often a degraded cache lets one Put through
// to the disk to test for recovery; d <= 0 keeps the default (30s).
func WithDegradedProbe(d time.Duration) DiskCacheOption {
	return func(c *diskCacheConfig) {
		if d > 0 {
			c.probeEvery = d
		}
	}
}

// NewDiskTraceCache opens (creating if needed) a disk trace cache rooted
// at dir, bounded to maxBytes of stored traces (<= 0 means 256 MiB).
// Existing cache files are indexed oldest-first by modification time;
// quarantined .bad files are ignored.
func NewDiskTraceCache(dir string, maxBytes int64, opts ...DiskTraceCacheOption) (*DiskTraceCache, error) {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	var cfg diskCacheConfig
	for _, o := range opts {
		o(&cfg)
	}
	st, err := diskstore.Open(diskstore.Options{
		Dir:      dir,
		Ext:      diskTraceExt,
		MaxBytes: maxBytes,
		// HCTR validates itself on decode; no checksum frame, so cache
		// files stay byte-compatible with plain trace files (and with
		// caches written before the diskstore extraction).
		Checksum:     false,
		FaultPrefix:  "tracecache.disk",
		DegradeAfter: cfg.degradeAfter,
		ProbeEvery:   cfg.probeEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("hierclust: trace cache: %w", err)
	}
	return &DiskTraceCache{store: st}, nil
}

// hashStem maps a cache key to its filename stem.
func hashStem(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Get implements TraceCache, deserializing the stored trace into sparse
// (CSR) form. Transient read failures are retried with backoff and fall
// back to the store's memory LRU; a corrupt file is quarantined to .bad
// (bytes preserved for post-mortem) and reported as a miss; in degraded
// mode the disk is not touched at all.
func (c *DiskTraceCache) Get(key string) (Comm, bool) {
	stem := hashStem(key)
	data, ok := c.store.Get(stem)
	if !ok {
		c.miss.Add(1)
		return nil, false
	}
	// The bound exists to reject hostile headers; our own cache files
	// are trusted, so raise it well past any machine this repo models.
	csr, err := trace.ReadCSR(bytes.NewReader(data), trace.ReadOptions{MaxRanks: 1 << 26})
	if err != nil {
		// The disk read succeeded but the bytes are wrong: a content
		// problem, not a disk-health problem.
		c.store.Quarantine(stem)
		c.miss.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return csr, true
}

// Put implements TraceCache, serializing via the trace\'s WriteTo and
// handing the bytes to the store (temp file + rename, LRU eviction to the
// byte budget, retry/degrade on failure — a Put that cannot reach the disk
// keeps the bytes in the memory fallback so the build is not lost).
// Traces that cannot be serialized are declined silently.
func (c *DiskTraceCache) Put(key string, comm Comm) {
	w, ok := comm.(io.WriterTo)
	if !ok {
		return
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		return
	}
	c.store.Put(hashStem(key), buf.Bytes())
}

// Stats returns lifetime counters, the entry count, the stored bytes, and
// the disk-health fields (error counts, quarantines, degraded mode).
func (c *DiskTraceCache) Stats() TraceCacheStats {
	st := c.store.Stats()
	return TraceCacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.miss.Load(),
		Entries:     st.Entries,
		Bytes:       st.Bytes,
		ReadErrors:  st.ReadErrors,
		WriteErrors: st.WriteErrors,
		Quarantined: st.Quarantined,
		Degraded:    st.Degraded,
		MemEntries:  st.MemEntries,
	}
}

// TraceInfo reports, per Run, how the pipeline satisfied the scenario's
// trace. Attach one to the context with WithTraceInfo before Run and read
// it after — hcserve uses this to label the X-Hierclust-Cache header and
// its trace-cache metrics without changing Run's signature.
type TraceInfo struct {
	// Cache is "hit" (served from the trace cache, or joined an
	// in-flight build of the same trace — either way no new application
	// run started), "miss" (this Run built the trace), or "" (no trace
	// cache configured, or an uncacheable file source).
	Cache string
}

type traceInfoKey struct{}

// WithTraceInfo derives a context carrying a fresh TraceInfo that
// Pipeline.Run fills in.
func WithTraceInfo(ctx context.Context) (context.Context, *TraceInfo) {
	info := &TraceInfo{}
	return context.WithValue(ctx, traceInfoKey{}, info), info
}

func traceInfoFrom(ctx context.Context) *TraceInfo {
	info, _ := ctx.Value(traceInfoKey{}).(*TraceInfo)
	return info
}
