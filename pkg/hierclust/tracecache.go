package hierclust

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hierclust/internal/faultinject"
	"hierclust/internal/trace"
	"hierclust/internal/tsunami"
)

// Building a scenario's communication trace is the expensive half of many
// evaluations: a "tsunami" source runs the simulated MPI application —
// seconds of wall clock at paper scale — while everything downstream
// (cluster, evaluate) takes milliseconds. Scenarios that differ only in
// strategies, mix, or baseline share the *same* trace, so hcserve-style
// workloads re-run the application for no reason. The trace cache sits
// beneath the scenario-result cache and keys on exactly the inputs that
// determine the trace, so any scenario family sharing a trace pays for one
// application run.

// TraceKey returns the canonical cache key identifying the communication
// trace this scenario resolves to, and whether the trace is cacheable.
// Two scenarios with equal keys build bit-identical traces: the key folds
// in the source kind, the rank count, the iteration count (with source
// defaults resolved), and every generation parameter — the tsunami grid
// dimensions derived from the rank count, or the synthetic pattern, grid
// width (with the placement-derived default resolved), and message size.
//
// Source "file" is not cacheable (false): the bytes behind a path can
// change, so a path is not a value.
func (s *Scenario) TraceKey() (string, bool) {
	ranks := s.Placement.Ranks
	switch s.Trace.Source {
	case "tsunami":
		iters := s.Trace.Iterations
		if iters <= 0 {
			iters = 20
		}
		p := tsunami.TraceParams(ranks)
		return fmt.Sprintf("tsunami|ranks=%d|iters=%d|nx=%d|ny=%d", ranks, iters, p.NX, p.NY), true
	case "synthetic":
		iters := s.Trace.Iterations
		if iters <= 0 {
			iters = 100
		}
		bpm := s.Trace.BytesPerMsg
		if bpm <= 0 {
			bpm = 1536
		}
		pattern := s.Trace.Pattern
		if pattern == "" {
			pattern = "stencil1d"
		}
		width := 0
		if pattern == "stencil2d" {
			width = s.Trace.Width
			if width == 0 {
				width = s.Placement.ProcsPerNode
			}
		}
		return fmt.Sprintf("synthetic|ranks=%d|iters=%d|pattern=%s|width=%d|bpm=%d",
			ranks, iters, pattern, width, bpm), true
	}
	return "", false
}

// TraceCache caches built communication traces by TraceKey, beneath the
// scenario-result cache. Implementations must be safe for concurrent use
// and must treat stored traces as immutable — the pipeline hands out the
// same Comm to concurrent evaluations, which is sound because frozen CSR
// matrices and recorded dense matrices are never mutated after
// construction (the frozen-CSR immutability invariant the trace and graph
// packages pin).
type TraceCache interface {
	// Get returns the cached trace for key, if present.
	Get(key string) (Comm, bool)
	// Put stores a freshly built trace. Implementations may drop entries
	// (bounded capacity) or decline silently.
	Put(key string, c Comm)
}

// TraceCacheStats is the observability surface shared by the built-in
// TraceCache implementations.
type TraceCacheStats struct {
	// Hits and Misses count Get outcomes since construction.
	Hits, Misses int64
	// Entries is the current entry count.
	Entries int
	// Bytes is the stored size where the backend tracks one (disk);
	// 0 for the in-memory cache.
	Bytes int64

	// The remaining fields describe DiskTraceCache health; they stay zero
	// for the in-memory cache.

	// ReadErrors and WriteErrors count failed disk operation *attempts*
	// (each retry of a transiently failing op counts), the counters
	// hcserve exposes on /metrics for alerting.
	ReadErrors, WriteErrors int64
	// Quarantined counts corrupt cache files renamed to .bad instead of
	// deleted, preserved for post-mortem inspection.
	Quarantined int64
	// Degraded reports memory-only fallback mode: the disk failed
	// repeatedly and the cache serves from its bounded memory LRU until a
	// probe write succeeds.
	Degraded bool
	// MemEntries is the entry count of the degraded-mode memory fallback.
	MemEntries int
}

// MemoryTraceCache is a fixed-capacity in-memory LRU TraceCache. Traces
// are shared by reference (no copy), so hits cost nothing beyond a map
// lookup; capacity bounds entry count, not bytes — size it against the
// O(ranks + distinct pairs) CSR footprint of the machines you serve.
type MemoryTraceCache struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // front = most recently used
	byK  map[string]*list.Element
	hits atomic.Int64
	miss atomic.Int64
}

type memTraceEntry struct {
	key string
	c   Comm
}

// NewMemoryTraceCache returns an LRU trace cache holding up to capacity
// traces; capacity <= 0 disables caching (every Get misses).
func NewMemoryTraceCache(capacity int) *MemoryTraceCache {
	return &MemoryTraceCache{cap: capacity, ll: list.New(), byK: map[string]*list.Element{}}
}

// Get implements TraceCache.
func (c *MemoryTraceCache) Get(key string) (Comm, bool) {
	if c.cap <= 0 {
		c.miss.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		c.miss.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*memTraceEntry).c, true
}

// Put implements TraceCache.
func (c *MemoryTraceCache) Put(key string, comm Comm) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		// Traces are deterministic per key; keep the resident value.
		c.ll.MoveToFront(el)
		return
	}
	c.byK[key] = c.ll.PushFront(&memTraceEntry{key: key, c: comm})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byK, oldest.Value.(*memTraceEntry).key)
	}
}

// Stats returns lifetime counters and the current entry count.
func (c *MemoryTraceCache) Stats() TraceCacheStats {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return TraceCacheStats{Hits: c.hits.Load(), Misses: c.miss.Load(), Entries: n}
}

// DiskTraceCache is a size-bounded on-disk TraceCache: each trace is one
// HCTR file (the same serialization trace files use) named by the SHA-256
// of its key, evicted least-recently-used when the directory exceeds the
// byte budget. It survives process restarts — NewDiskTraceCache re-indexes
// whatever an earlier server left behind — which is what makes a fleet of
// hcserve replicas sharing a volume skip each other's application runs.
//
// The cache is engineered to degrade, not fail, when its disk does:
//
//   - Transient IO errors are retried with capped backoff; every failed
//     attempt is counted (Stats.ReadErrors/WriteErrors) so /metrics can
//     alarm before users notice.
//   - Corrupt files (decode failures) are quarantined — renamed to .bad,
//     preserving the bytes for post-mortem — and reported as misses.
//   - After degradeAfter consecutive failed attempts the cache enters
//     memory-only degraded mode: disk is left alone, a bounded in-memory
//     LRU keeps serving the hottest traces (results stay bit-identical —
//     the fallback holds the same immutable Comm values), and a probe
//     write every probeEvery retries the disk and clears the mode when it
//     succeeds. Stats.Degraded surfaces the mode in /healthz.
type DiskTraceCache struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64
	total    int64
	ll       *list.List // front = most recently used
	byK      map[string]*list.Element
	hits     atomic.Int64
	miss     atomic.Int64

	degradeAfter int           // consecutive failed attempts before memory-only
	probeEvery   time.Duration // how often a degraded cache re-tries the disk
	consecFails  atomic.Int32
	degraded     atomic.Bool
	degradedAt   atomic.Int64 // unix nanos; advanced when a probe is claimed
	readErrs     atomic.Int64
	writeErrs    atomic.Int64
	quarantined  atomic.Int64
	mem          *MemoryTraceCache // degraded-mode fallback
}

type diskTraceEntry struct {
	key  string // sha256 hex of the TraceKey (also the filename stem)
	size int64
}

const (
	diskTraceExt  = ".hctr"
	quarantineExt = ".bad" // appended to the cache filename, so .hctr.bad

	// Transient-IO retry policy: attempts per operation, with doubling
	// backoff capped well below any request deadline.
	diskOpAttempts      = 3
	diskRetryBackoff    = 2 * time.Millisecond
	diskRetryBackoffMax = 8 * time.Millisecond

	// defaultDegradeAfter failed attempts in a row flip to memory-only:
	// one fully retried-out operation is enough — a disk that ate all its
	// retries is not worth blocking requests on.
	defaultDegradeAfter = diskOpAttempts
	defaultProbeEvery   = 30 * time.Second

	// memFallbackCap bounds the degraded-mode LRU; traces are shared by
	// reference so this caps entry count, not bytes.
	memFallbackCap = 32
)

// DiskTraceCacheOption tunes NewDiskTraceCache.
type DiskTraceCacheOption func(*DiskTraceCache)

// WithDegradeAfter sets how many consecutive failed disk-operation
// attempts flip the cache into memory-only degraded mode; n <= 0 keeps
// the default (one fully retried-out operation).
func WithDegradeAfter(n int) DiskTraceCacheOption {
	return func(c *DiskTraceCache) {
		if n > 0 {
			c.degradeAfter = n
		}
	}
}

// WithDegradedProbe sets how often a degraded cache lets one Put through
// to the disk to test for recovery; d <= 0 keeps the default (30s).
func WithDegradedProbe(d time.Duration) DiskTraceCacheOption {
	return func(c *DiskTraceCache) {
		if d > 0 {
			c.probeEvery = d
		}
	}
}

// NewDiskTraceCache opens (creating if needed) a disk trace cache rooted
// at dir, bounded to maxBytes of stored traces (<= 0 means 256 MiB).
// Existing cache files are indexed oldest-first by modification time;
// quarantined .bad files are ignored.
func NewDiskTraceCache(dir string, maxBytes int64, opts ...DiskTraceCacheOption) (*DiskTraceCache, error) {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hierclust: trace cache dir: %w", err)
	}
	c := &DiskTraceCache{
		dir:          dir,
		maxBytes:     maxBytes,
		ll:           list.New(),
		byK:          map[string]*list.Element{},
		degradeAfter: defaultDegradeAfter,
		probeEvery:   defaultProbeEvery,
		mem:          NewMemoryTraceCache(memFallbackCap),
	}
	for _, o := range opts {
		o(c)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("hierclust: trace cache dir: %w", err)
	}
	type found struct {
		stem  string
		size  int64
		mtime int64
	}
	var olds []found
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != diskTraceExt {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		olds = append(olds, found{stem: name[:len(name)-len(diskTraceExt)], size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(olds, func(i, j int) bool { return olds[i].mtime < olds[j].mtime })
	for _, f := range olds {
		c.byK[f.stem] = c.ll.PushFront(&diskTraceEntry{key: f.stem, size: f.size})
		c.total += f.size
	}
	c.evictLocked()
	return c, nil
}

// hash maps a TraceKey to its filename stem.
func (c *DiskTraceCache) hash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (c *DiskTraceCache) path(stem string) string {
	return filepath.Join(c.dir, stem+diskTraceExt)
}

// permanentErr marks a disk error retrying cannot fix — a decode failure
// (the bytes are wrong, not the IO). retryDisk returns it immediately.
type permanentErr struct{ error }

func (e permanentErr) Unwrap() error { return e.error }

// isPermanentDiskErr reports errors retryDisk should not retry and the
// degradation trigger should not count: corruption (permanentErr) and
// vanished files (concurrent cleanup) are content/index problems, not
// disk-health problems.
func isPermanentDiskErr(err error) bool {
	if _, ok := err.(permanentErr); ok {
		return true
	}
	return os.IsNotExist(err)
}

// retryDisk runs op with capped-backoff retries, charging every failed
// transient attempt to errs and to the consecutive-failure degradation
// trigger. Permanent failures return immediately, uncharged.
func (c *DiskTraceCache) retryDisk(errs *atomic.Int64, op func() error) error {
	backoff := diskRetryBackoff
	var err error
	for attempt := 0; attempt < diskOpAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff < diskRetryBackoffMax {
				backoff *= 2
			}
		}
		err = op()
		if err == nil {
			return nil
		}
		if isPermanentDiskErr(err) {
			return err
		}
		errs.Add(1)
		c.noteFailure()
	}
	return err
}

// noteFailure records one failed disk attempt; degradeAfter of them in a
// row (no intervening success) flip the cache to memory-only.
func (c *DiskTraceCache) noteFailure() {
	if int(c.consecFails.Add(1)) >= c.degradeAfter && !c.degraded.Swap(true) {
		c.degradedAt.Store(time.Now().UnixNano())
	}
}

// noteSuccess records a successful disk operation, resetting the failure
// streak and leaving degraded mode (a disk success while degraded can only
// come from a recovery probe).
func (c *DiskTraceCache) noteSuccess() {
	c.consecFails.Store(0)
	c.degraded.Store(false)
}

// shouldProbe reports whether a degraded cache should let this Put through
// to the disk as a recovery probe. At most one caller wins per probeEvery
// window (CAS on the timestamp), so a degraded cache under load does not
// hammer a dead disk.
func (c *DiskTraceCache) shouldProbe() bool {
	at := c.degradedAt.Load()
	if time.Since(time.Unix(0, at)) < c.probeEvery {
		return false
	}
	return c.degradedAt.CompareAndSwap(at, time.Now().UnixNano())
}

// memGet consults the memory fallback and settles the hit/miss accounting
// for a Get the disk could not serve.
func (c *DiskTraceCache) memGet(key string) (Comm, bool) {
	if comm, ok := c.mem.Get(key); ok {
		c.hits.Add(1)
		return comm, true
	}
	c.miss.Add(1)
	return nil, false
}

// Get implements TraceCache, deserializing the stored trace into sparse
// (CSR) form. Transient read failures are retried with backoff and fall
// back to the memory LRU; a corrupt file is quarantined to .bad (bytes
// preserved for post-mortem) and reported as a miss; in degraded mode the
// disk is not touched at all.
func (c *DiskTraceCache) Get(key string) (Comm, bool) {
	if c.degraded.Load() {
		return c.memGet(key)
	}
	stem := c.hash(key)
	c.mu.Lock()
	el, ok := c.byK[stem]
	if !ok {
		c.mu.Unlock()
		// Not on disk — but a Put during an earlier failure window may
		// have landed the trace in the memory fallback.
		return c.memGet(key)
	}
	c.ll.MoveToFront(el)
	c.mu.Unlock()

	var csr *trace.CSR
	err := c.retryDisk(&c.readErrs, func() error {
		if err := faultinject.Hit("tracecache.disk.read"); err != nil {
			return err
		}
		f, err := os.Open(c.path(stem))
		if err != nil {
			return err
		}
		defer f.Close()
		// The bound exists to reject hostile headers; our own cache files
		// are trusted, so raise it well past any machine this repo models.
		out, err := trace.ReadCSR(f, trace.ReadOptions{MaxRanks: 1 << 26})
		if err != nil {
			return permanentErr{err}
		}
		csr = out
		return nil
	})
	switch {
	case err == nil:
		c.noteSuccess()
		c.hits.Add(1)
		return csr, true
	case os.IsNotExist(err):
		// Vanished behind our back (concurrent cleanup): index drift, not
		// a disk fault.
		c.dropIndex(stem)
	case isPermanentDiskErr(err):
		c.quarantine(stem)
	default:
		// Transient IO that survived every retry (already counted). Keep
		// the index entry — the bytes are probably fine, the IO was not.
	}
	return c.memGet(key)
}

// dropIndex removes a stem from the index only; the caller decides what
// happens to the file.
func (c *DiskTraceCache) dropIndex(stem string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[stem]; ok {
		c.total -= el.Value.(*diskTraceEntry).size
		c.ll.Remove(el)
		delete(c.byK, stem)
	}
}

// quarantine moves a corrupt cache file aside as <stem>.hctr.bad instead
// of deleting it — destroying the only evidence of how a trace got
// corrupted is how cache bugs stay unfixed. Operators sweep *.bad during
// hygiene (see docs/OPERATIONS.md).
func (c *DiskTraceCache) quarantine(stem string) {
	c.dropIndex(stem)
	if err := os.Rename(c.path(stem), c.path(stem)+quarantineExt); err != nil {
		// Cannot preserve it; remove so the stem is rebuildable.
		_ = os.Remove(c.path(stem))
	}
	c.quarantined.Add(1)
}

// Put implements TraceCache, serializing via the trace's WriteTo (write to
// a temp file, fsync-free rename into place) and evicting LRU entries
// until the byte budget holds. Transient write failures are retried with
// backoff; a Put that still fails keeps the trace in the memory fallback
// so the build is not lost. In degraded mode the disk is skipped entirely
// except for one recovery probe per probe interval. Traces that cannot be
// serialized are declined silently.
func (c *DiskTraceCache) Put(key string, comm Comm) {
	w, ok := comm.(io.WriterTo)
	if !ok {
		return
	}
	if c.degraded.Load() && !c.shouldProbe() {
		c.mem.Put(key, comm)
		return
	}
	stem := c.hash(key)
	c.mu.Lock()
	_, exists := c.byK[stem]
	c.mu.Unlock()
	if exists {
		return // deterministic per key: resident file is already right
	}

	var size int64
	err := c.retryDisk(&c.writeErrs, func() error {
		var aerr error
		size, aerr = c.writeAttempt(stem, w)
		return aerr
	})
	if err != nil {
		// The freshly built trace is too expensive to drop on the floor:
		// keep it in memory so the next request still skips the
		// application run, disk or no disk.
		c.mem.Put(key, comm)
		return
	}
	c.noteSuccess()

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byK[stem]; dup {
		return // concurrent Put of the same trace; file contents identical
	}
	c.byK[stem] = c.ll.PushFront(&diskTraceEntry{key: stem, size: size})
	c.total += size
	c.evictLocked()
}

// writeAttempt is one try at writing a cache file: temp file, serialize,
// close, rename into place. The write error and the rename error are
// tracked separately — a rename failure after a clean write is its own
// fault, not a silent no-op — and the temp file is removed on every
// failure path.
func (c *DiskTraceCache) writeAttempt(stem string, w io.WriterTo) (int64, error) {
	if err := faultinject.Hit("tracecache.disk.write"); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return 0, fmt.Errorf("create temp: %w", err)
	}
	size, err := w.WriteTo(tmp)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp.Name())
		return 0, fmt.Errorf("write: %w", err)
	}
	if err := faultinject.Hit("tracecache.disk.rename"); err != nil {
		_ = os.Remove(tmp.Name())
		return 0, fmt.Errorf("rename: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(stem)); err != nil {
		_ = os.Remove(tmp.Name())
		return 0, fmt.Errorf("rename: %w", err)
	}
	return size, nil
}

// evictLocked removes least-recently-used files until total <= maxBytes,
// always keeping at least the most recent entry (a single trace larger
// than the budget still caches — evicting it would defeat the point).
func (c *DiskTraceCache) evictLocked() {
	for c.total > c.maxBytes && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		e := oldest.Value.(*diskTraceEntry)
		c.ll.Remove(oldest)
		delete(c.byK, e.key)
		c.total -= e.size
		_ = os.Remove(c.path(e.key))
	}
}

// Stats returns lifetime counters, the entry count, the stored bytes, and
// the disk-health fields (error counts, quarantines, degraded mode).
func (c *DiskTraceCache) Stats() TraceCacheStats {
	c.mu.Lock()
	n, b := c.ll.Len(), c.total
	c.mu.Unlock()
	return TraceCacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.miss.Load(),
		Entries:     n,
		Bytes:       b,
		ReadErrors:  c.readErrs.Load(),
		WriteErrors: c.writeErrs.Load(),
		Quarantined: c.quarantined.Load(),
		Degraded:    c.degraded.Load(),
		MemEntries:  c.mem.Stats().Entries,
	}
}

// TraceInfo reports, per Run, how the pipeline satisfied the scenario's
// trace. Attach one to the context with WithTraceInfo before Run and read
// it after — hcserve uses this to label the X-Hierclust-Cache header and
// its trace-cache metrics without changing Run's signature.
type TraceInfo struct {
	// Cache is "hit" (served from the trace cache, or joined an
	// in-flight build of the same trace — either way no new application
	// run started), "miss" (this Run built the trace), or "" (no trace
	// cache configured, or an uncacheable file source).
	Cache string
}

type traceInfoKey struct{}

// WithTraceInfo derives a context carrying a fresh TraceInfo that
// Pipeline.Run fills in.
func WithTraceInfo(ctx context.Context) (context.Context, *TraceInfo) {
	info := &TraceInfo{}
	return context.WithValue(ctx, traceInfoKey{}, info), info
}

func traceInfoFrom(ctx context.Context) *TraceInfo {
	info, _ := ctx.Value(traceInfoKey{}).(*TraceInfo)
	return info
}
