package hierclust

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"hierclust/internal/trace"
	"hierclust/internal/tsunami"
)

// Building a scenario's communication trace is the expensive half of many
// evaluations: a "tsunami" source runs the simulated MPI application —
// seconds of wall clock at paper scale — while everything downstream
// (cluster, evaluate) takes milliseconds. Scenarios that differ only in
// strategies, mix, or baseline share the *same* trace, so hcserve-style
// workloads re-run the application for no reason. The trace cache sits
// beneath the scenario-result cache and keys on exactly the inputs that
// determine the trace, so any scenario family sharing a trace pays for one
// application run.

// TraceKey returns the canonical cache key identifying the communication
// trace this scenario resolves to, and whether the trace is cacheable.
// Two scenarios with equal keys build bit-identical traces: the key folds
// in the source kind, the rank count, the iteration count (with source
// defaults resolved), and every generation parameter — the tsunami grid
// dimensions derived from the rank count, or the synthetic pattern, grid
// width (with the placement-derived default resolved), and message size.
//
// Source "file" is not cacheable (false): the bytes behind a path can
// change, so a path is not a value.
func (s *Scenario) TraceKey() (string, bool) {
	ranks := s.Placement.Ranks
	switch s.Trace.Source {
	case "tsunami":
		iters := s.Trace.Iterations
		if iters <= 0 {
			iters = 20
		}
		p := tsunami.TraceParams(ranks)
		return fmt.Sprintf("tsunami|ranks=%d|iters=%d|nx=%d|ny=%d", ranks, iters, p.NX, p.NY), true
	case "synthetic":
		iters := s.Trace.Iterations
		if iters <= 0 {
			iters = 100
		}
		bpm := s.Trace.BytesPerMsg
		if bpm <= 0 {
			bpm = 1536
		}
		pattern := s.Trace.Pattern
		if pattern == "" {
			pattern = "stencil1d"
		}
		width := 0
		if pattern == "stencil2d" {
			width = s.Trace.Width
			if width == 0 {
				width = s.Placement.ProcsPerNode
			}
		}
		return fmt.Sprintf("synthetic|ranks=%d|iters=%d|pattern=%s|width=%d|bpm=%d",
			ranks, iters, pattern, width, bpm), true
	}
	return "", false
}

// TraceCache caches built communication traces by TraceKey, beneath the
// scenario-result cache. Implementations must be safe for concurrent use
// and must treat stored traces as immutable — the pipeline hands out the
// same Comm to concurrent evaluations, which is sound because frozen CSR
// matrices and recorded dense matrices are never mutated after
// construction (the frozen-CSR immutability invariant the trace and graph
// packages pin).
type TraceCache interface {
	// Get returns the cached trace for key, if present.
	Get(key string) (Comm, bool)
	// Put stores a freshly built trace. Implementations may drop entries
	// (bounded capacity) or decline silently.
	Put(key string, c Comm)
}

// TraceCacheStats is the observability surface shared by the built-in
// TraceCache implementations.
type TraceCacheStats struct {
	// Hits and Misses count Get outcomes since construction.
	Hits, Misses int64
	// Entries is the current entry count.
	Entries int
	// Bytes is the stored size where the backend tracks one (disk);
	// 0 for the in-memory cache.
	Bytes int64
}

// MemoryTraceCache is a fixed-capacity in-memory LRU TraceCache. Traces
// are shared by reference (no copy), so hits cost nothing beyond a map
// lookup; capacity bounds entry count, not bytes — size it against the
// O(ranks + distinct pairs) CSR footprint of the machines you serve.
type MemoryTraceCache struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // front = most recently used
	byK  map[string]*list.Element
	hits atomic.Int64
	miss atomic.Int64
}

type memTraceEntry struct {
	key string
	c   Comm
}

// NewMemoryTraceCache returns an LRU trace cache holding up to capacity
// traces; capacity <= 0 disables caching (every Get misses).
func NewMemoryTraceCache(capacity int) *MemoryTraceCache {
	return &MemoryTraceCache{cap: capacity, ll: list.New(), byK: map[string]*list.Element{}}
}

// Get implements TraceCache.
func (c *MemoryTraceCache) Get(key string) (Comm, bool) {
	if c.cap <= 0 {
		c.miss.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		c.miss.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*memTraceEntry).c, true
}

// Put implements TraceCache.
func (c *MemoryTraceCache) Put(key string, comm Comm) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		// Traces are deterministic per key; keep the resident value.
		c.ll.MoveToFront(el)
		return
	}
	c.byK[key] = c.ll.PushFront(&memTraceEntry{key: key, c: comm})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byK, oldest.Value.(*memTraceEntry).key)
	}
}

// Stats returns lifetime counters and the current entry count.
func (c *MemoryTraceCache) Stats() TraceCacheStats {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return TraceCacheStats{Hits: c.hits.Load(), Misses: c.miss.Load(), Entries: n}
}

// DiskTraceCache is a size-bounded on-disk TraceCache: each trace is one
// HCTR file (the same serialization trace files use) named by the SHA-256
// of its key, evicted least-recently-used when the directory exceeds the
// byte budget. It survives process restarts — NewDiskTraceCache re-indexes
// whatever an earlier server left behind — which is what makes a fleet of
// hcserve replicas sharing a volume skip each other's application runs.
type DiskTraceCache struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64
	total    int64
	ll       *list.List // front = most recently used
	byK      map[string]*list.Element
	hits     atomic.Int64
	miss     atomic.Int64
}

type diskTraceEntry struct {
	key  string // sha256 hex of the TraceKey (also the filename stem)
	size int64
}

const diskTraceExt = ".hctr"

// NewDiskTraceCache opens (creating if needed) a disk trace cache rooted
// at dir, bounded to maxBytes of stored traces (<= 0 means 256 MiB).
// Existing cache files are indexed oldest-first by modification time.
func NewDiskTraceCache(dir string, maxBytes int64) (*DiskTraceCache, error) {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hierclust: trace cache dir: %w", err)
	}
	c := &DiskTraceCache{dir: dir, maxBytes: maxBytes, ll: list.New(), byK: map[string]*list.Element{}}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("hierclust: trace cache dir: %w", err)
	}
	type found struct {
		stem  string
		size  int64
		mtime int64
	}
	var olds []found
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != diskTraceExt {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		olds = append(olds, found{stem: name[:len(name)-len(diskTraceExt)], size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(olds, func(i, j int) bool { return olds[i].mtime < olds[j].mtime })
	for _, f := range olds {
		c.byK[f.stem] = c.ll.PushFront(&diskTraceEntry{key: f.stem, size: f.size})
		c.total += f.size
	}
	c.evictLocked()
	return c, nil
}

// hash maps a TraceKey to its filename stem.
func (c *DiskTraceCache) hash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (c *DiskTraceCache) path(stem string) string {
	return filepath.Join(c.dir, stem+diskTraceExt)
}

// Get implements TraceCache, deserializing the stored trace into sparse
// (CSR) form. A file that fails to read — truncated write, concurrent
// cleanup — is dropped from the index and reported as a miss rather than
// surfacing an error into the evaluation.
func (c *DiskTraceCache) Get(key string) (Comm, bool) {
	stem := c.hash(key)
	c.mu.Lock()
	el, ok := c.byK[stem]
	if !ok {
		c.mu.Unlock()
		c.miss.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.mu.Unlock()

	f, err := os.Open(c.path(stem))
	if err != nil {
		c.drop(stem)
		c.miss.Add(1)
		return nil, false
	}
	defer f.Close()
	// The bound exists to reject hostile headers; our own cache files are
	// trusted, so raise it well past any machine this repo models.
	csr, err := trace.ReadCSR(f, trace.ReadOptions{MaxRanks: 1 << 26})
	if err != nil {
		c.drop(stem)
		c.miss.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return csr, true
}

// drop removes a stem from the index and disk (corrupt or vanished file).
func (c *DiskTraceCache) drop(stem string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[stem]; ok {
		c.total -= el.Value.(*diskTraceEntry).size
		c.ll.Remove(el)
		delete(c.byK, stem)
	}
	_ = os.Remove(c.path(stem))
}

// Put implements TraceCache, serializing via the trace's WriteTo (write to
// a temp file, fsync-free rename into place) and evicting LRU entries
// until the byte budget holds. Traces that cannot be serialized are
// declined silently.
func (c *DiskTraceCache) Put(key string, comm Comm) {
	w, ok := comm.(io.WriterTo)
	if !ok {
		return
	}
	stem := c.hash(key)
	c.mu.Lock()
	_, exists := c.byK[stem]
	c.mu.Unlock()
	if exists {
		return // deterministic per key: resident file is already right
	}

	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return
	}
	size, err := w.WriteTo(tmp)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil || os.Rename(tmp.Name(), c.path(stem)) != nil {
		_ = os.Remove(tmp.Name())
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byK[stem]; dup {
		return // concurrent Put of the same trace; file contents identical
	}
	c.byK[stem] = c.ll.PushFront(&diskTraceEntry{key: stem, size: size})
	c.total += size
	c.evictLocked()
}

// evictLocked removes least-recently-used files until total <= maxBytes,
// always keeping at least the most recent entry (a single trace larger
// than the budget still caches — evicting it would defeat the point).
func (c *DiskTraceCache) evictLocked() {
	for c.total > c.maxBytes && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		e := oldest.Value.(*diskTraceEntry)
		c.ll.Remove(oldest)
		delete(c.byK, e.key)
		c.total -= e.size
		_ = os.Remove(c.path(e.key))
	}
}

// Stats returns lifetime counters, the entry count, and the stored bytes.
func (c *DiskTraceCache) Stats() TraceCacheStats {
	c.mu.Lock()
	n, b := c.ll.Len(), c.total
	c.mu.Unlock()
	return TraceCacheStats{Hits: c.hits.Load(), Misses: c.miss.Load(), Entries: n, Bytes: b}
}

// TraceInfo reports, per Run, how the pipeline satisfied the scenario's
// trace. Attach one to the context with WithTraceInfo before Run and read
// it after — hcserve uses this to label the X-Hierclust-Cache header and
// its trace-cache metrics without changing Run's signature.
type TraceInfo struct {
	// Cache is "hit" (served from the trace cache, or joined an
	// in-flight build of the same trace — either way no new application
	// run started), "miss" (this Run built the trace), or "" (no trace
	// cache configured, or an uncacheable file source).
	Cache string
}

type traceInfoKey struct{}

// WithTraceInfo derives a context carrying a fresh TraceInfo that
// Pipeline.Run fills in.
func WithTraceInfo(ctx context.Context) (context.Context, *TraceInfo) {
	info := &TraceInfo{}
	return context.WithValue(ctx, traceInfoKey{}, info), info
}

func traceInfoFrom(ctx context.Context) *TraceInfo {
	info, _ := ctx.Value(traceInfoKey{}).(*TraceInfo)
	return info
}
