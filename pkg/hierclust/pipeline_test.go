package hierclust

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hierclust/internal/core"
	"hierclust/internal/reliability"
	"hierclust/internal/topology"
	"hierclust/internal/trace"
)

// syntheticScenario is the shared small test scenario: 256 ranks on 32
// nodes, generated 2-D stencil, all four built-in strategies.
func syntheticScenario() *Scenario {
	return &Scenario{
		Name:      "test-synthetic",
		Machine:   MachineSpec{Nodes: 32},
		Placement: PlacementSpec{Ranks: 256, ProcsPerNode: 8},
		Trace:     TraceSpec{Source: "synthetic", Pattern: "stencil2d"},
		Strategies: []StrategySpec{
			{Kind: "naive", Size: 32},
			{Kind: "size-guided", Size: 8},
			{Kind: "distributed", Size: 16},
			{Kind: "hierarchical"},
		},
	}
}

// TestPipelineMatchesCore pins the pipeline to the engine underneath it:
// every number in the result must equal a direct core.Evaluate of the same
// strategy on the same rig.
func TestPipelineMatchesCore(t *testing.T) {
	sc := syntheticScenario()
	res, err := NewPipeline().Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != 256 || res.Nodes != 32 {
		t.Fatalf("rig = %d ranks / %d nodes, want 256/32", res.Ranks, res.Nodes)
	}

	// Rebuild the rig by hand.
	mach, err := topology.Tsubame2().Subset(32)
	if err != nil {
		t.Fatal(err)
	}
	placement, err := topology.Block(mach, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trace.Synthetic(256, trace.SyntheticOptions{Pattern: trace.Stencil2D, Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	builds := []func() (*Clustering, error){
		func() (*Clustering, error) { return core.Naive(256, 32) },
		func() (*Clustering, error) { return core.SizeGuided(256, 8) },
		func() (*Clustering, error) { return core.Distributed(256, 16) },
		func() (*Clustering, error) { return core.Hierarchical(m, placement, core.HierOptions{}) },
	}
	for i, build := range builds {
		c, err := build()
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Evaluate(c, m, placement, reliability.DefaultMix())
		if err != nil {
			t.Fatal(err)
		}
		got := res.Evaluations[i]
		if got.Strategy != want.Name {
			t.Errorf("evaluation %d: strategy %q, want %q", i, got.Strategy, want.Name)
		}
		if got.LoggedFraction != want.LoggedFraction ||
			got.RecoveryFraction != want.RecoveryFraction ||
			got.EncodeSecondsPerGB != want.EncodeSecondsPerGB ||
			got.CatastropheProb != want.CatastropheProb {
			t.Errorf("evaluation %q diverges from core.Evaluate:\ngot  %+v\nwant %+v", got.Strategy, got, want)
		}
	}
}

// TestPipelineWorkerInvariance: results are bit-identical at any worker
// count (the reliability model's determinism contract, carried through).
func TestPipelineWorkerInvariance(t *testing.T) {
	sc := syntheticScenario()
	base, err := NewPipeline(WithWorkers(1)).Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		res, err := NewPipeline(WithWorkers(w)).Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("results differ between 1 and %d workers", w)
		}
	}
}

// TestPipelineFileSource: a serialized trace evaluates identically to the
// in-memory matrix it was written from.
func TestPipelineFileSource(t *testing.T) {
	m, err := trace.Synthetic(256, trace.SyntheticOptions{Pattern: trace.Stencil2D, Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.hctr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	mem := syntheticScenario()
	fromFile := syntheticScenario()
	fromFile.Name = "test-file"
	fromFile.Trace = TraceSpec{Source: "file", Path: path}

	want, err := NewPipeline().Run(context.Background(), mem)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewPipeline().Run(context.Background(), fromFile)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Evaluations, want.Evaluations) {
		t.Fatalf("file-sourced evaluations diverge from in-memory:\ngot  %+v\nwant %+v", got.Evaluations, want.Evaluations)
	}
}

// TestPipelineTsunamiMatchesTracedRun: the "tsunami" source traces through
// the same rig the experiment harness uses.
func TestPipelineTsunamiMatchesTracedRun(t *testing.T) {
	sc := &Scenario{
		Name:       "test-tsunami",
		Machine:    MachineSpec{Nodes: 8},
		Placement:  PlacementSpec{Ranks: 64, ProcsPerNode: 8},
		Trace:      TraceSpec{Source: "tsunami", Iterations: 5},
		Strategies: []StrategySpec{{Kind: "naive", Size: 8}},
	}
	res, err := NewPipeline().Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes == 0 || res.TotalMsgs == 0 {
		t.Fatalf("traced run produced an empty matrix: %+v", res)
	}
	// Same trace by hand.
	rec := NewTraceRecorder(64)
	if _, err := RunTracedTsunami(TracedTsunamiOptions{
		Params: TsunamiTraceParams(64), Iterations: 5, Tracer: rec,
	}); err != nil {
		t.Fatal(err)
	}
	if rec.Matrix().TotalBytes() != res.TotalBytes {
		t.Fatalf("pipeline traced %d bytes, direct run %d", res.TotalBytes, rec.Matrix().TotalBytes())
	}
}

func TestPipelineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewPipeline().Run(ctx, syntheticScenario()); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

func TestPipelineRejectsMismatchedTrace(t *testing.T) {
	m, err := trace.Synthetic(128, trace.SyntheticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "small.hctr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sc := syntheticScenario() // 256 ranks
	sc.Trace = TraceSpec{Source: "file", Path: path}
	if _, err := NewPipeline().Run(context.Background(), sc); err == nil {
		t.Fatal("a 128-rank trace evaluated against a 256-rank placement")
	}
}
