package hierclust

import (
	"context"
	"errors"
	"testing"
	"time"

	"hierclust/internal/faultinject"
	"hierclust/internal/racedetect"
)

// cancelLatencyBound is how quickly a cancelled Run must return. The
// production target is "well under 100ms"; the race detector slows the
// inner loops by an order of magnitude, so the bound scales with it.
func cancelLatencyBound() time.Duration {
	if racedetect.Enabled {
		return time.Second
	}
	return 100 * time.Millisecond
}

// chaosMCStrategy is a test-only strategy whose group layout forces the
// reliability model onto its slowest path — Monte Carlo sampling — so
// cancellation tests reliably catch Run mid-sampling:
//
//   - 150 single-node groups ({2i, 2i+1} under block ppn=2 placement, so
//     both members share node i; tolerance 1) are each destroyed whenever
//     their node fails, making the union bound ≈ 151·f/nodes > 0.1 for
//     every f ≥ 2 on a 2048-node machine.
//   - One "breaker" group {300, 301, 302} spans nodes 150 and 151 with
//     unequal member counts, which invalidates the disjoint-span closed
//     form for the whole model.
//
// With enumeration over C(2048, f≥2) too large, the closed form broken,
// and the union bound too loose, every multi-node failure count samples.
type chaosMCStrategy struct{}

func (chaosMCStrategy) Name() string { return "chaos-mc" }

func (chaosMCStrategy) Build(m Comm, p *Placement) (*Clustering, error) {
	n := p.NumRanks()
	c := &Clustering{Name: "chaos-mc", L1: make([]int, n)}
	for i := 0; i < 150; i++ {
		c.Groups = append(c.Groups, []Rank{Rank(2 * i), Rank(2*i + 1)})
	}
	c.Groups = append(c.Groups, []Rank{300, 301, 302})
	return c, nil
}

func init() {
	MustRegisterStrategy("chaos-mc", func(spec StrategySpec) (Strategy, error) {
		return chaosMCStrategy{}, nil
	})
}

// chaosMCScenario needs Monte Carlo rounds for every node-loss count in
// the mix, totalling seconds of sampling — far past any cancel point the
// tests pick.
func chaosMCScenario() *Scenario {
	loss := make([]float64, 48)
	for i := range loss {
		loss[i] = 1
	}
	return &Scenario{
		Name:       "cancel-mc",
		Machine:    MachineSpec{Nodes: 2048},
		Placement:  PlacementSpec{Policy: "block", Ranks: 4096, ProcsPerNode: 2},
		Trace:      TraceSpec{Source: "synthetic", Iterations: 2},
		Strategies: []StrategySpec{{Kind: "chaos-mc"}},
		Mix:        &MixSpec{NodeLoss: loss},
	}
}

// runCancelled starts Run, cancels it after warmup, and returns the error
// and the cancel→return latency.
func runCancelled(t *testing.T, sc *Scenario, warmup time.Duration) (error, time.Duration) {
	t.Helper()
	pl := NewPipeline(WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := pl.Run(ctx, sc)
		done <- err
	}()
	time.Sleep(warmup)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		return err, time.Since(start)
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled Run did not return within 30s")
		return nil, 0
	}
}

// TestPipelineRunCancelMidMonteCarlo pins the cancellation-latency
// contract on the reliability model's sampling loops: the chaos-mc layout
// forces ~47 Monte Carlo rounds of 200k samples (seconds of work), the
// test cancels 100ms in — long past trace generation, inside sampling —
// and Run must return context.Canceled within the latency bound.
func TestPipelineRunCancelMidMonteCarlo(t *testing.T) {
	err, lat := runCancelled(t, chaosMCScenario(), 100*time.Millisecond)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run returned %v, want context.Canceled", err)
	}
	if bound := cancelLatencyBound(); lat > bound {
		t.Fatalf("cancel→return latency %v exceeds %v", lat, bound)
	}
}

// TestPipelineRunCancelMidMultilevelPartition pins the same contract on
// the other long-running stage: the multilevel partitioner on a 64k-rank
// machine (tens of ms of coarsening/refinement). Cancelling 10ms in lands
// mid-partition; the partitioner polls between levels and refinement
// passes, so the return must stay within the latency bound rather than
// running the partition to completion.
func TestPipelineRunCancelMidMultilevelPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("64k-rank partition in -short mode")
	}
	sc := &Scenario{
		Name:      "cancel-ml",
		Machine:   MachineSpec{Nodes: 32768},
		Placement: PlacementSpec{Policy: "block", Ranks: 65536, ProcsPerNode: 2},
		Trace:     TraceSpec{Source: "synthetic", Iterations: 2},
		Strategies: []StrategySpec{
			{Kind: "hierarchical", Hier: &HierSpec{Multilevel: true}},
		},
	}
	err, lat := runCancelled(t, sc, 10*time.Millisecond)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run returned %v, want context.Canceled", err)
	}
	if bound := cancelLatencyBound(); lat > bound {
		t.Fatalf("cancel→return latency %v exceeds %v", lat, bound)
	}
}

// TestPipelineWorkerPanicIsolated pins the panic-isolation boundary: an
// injected panic in a strategy-evaluation worker surfaces as *PanicError
// on that Run, and the pipeline serves the next Run normally — with
// results bit-identical to a pipeline that never saw a panic.
func TestPipelineWorkerPanicIsolated(t *testing.T) {
	defer faultinject.DisarmAll()
	pl := NewPipeline(WithWorkers(2))
	sc := traceScenario("panic-run", "hierarchical")

	faultinject.Arm("pipeline.worker", faultinject.Fault{Kind: faultinject.KindPanic})
	_, err := pl.Run(context.Background(), sc)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run under injected worker panic returned %v, want *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("recovered PanicError carries no stack")
	}

	faultinject.DisarmAll()
	got, err := pl.Run(context.Background(), sc)
	if err != nil {
		t.Fatalf("Run after recovered panic failed: %v", err)
	}
	ref, err := NewPipeline(WithWorkers(1)).Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalBytes != ref.TotalBytes || got.Evaluations[0].Strategy != ref.Evaluations[0].Strategy {
		t.Fatalf("post-panic result differs from clean pipeline: %+v vs %+v", got, ref)
	}
	if got.Evaluations[0].CatastropheProb != ref.Evaluations[0].CatastropheProb ||
		got.Evaluations[0].LoggedFraction != ref.Evaluations[0].LoggedFraction {
		t.Fatalf("post-panic evaluation differs: %+v vs %+v", got.Evaluations[0], ref.Evaluations[0])
	}
}

// TestPipelineTraceBuildPanicIsolated pins the singleflight boundary: a
// panic inside the shared trace build is recovered, reported to the Run
// that owned the build, and does not poison the pipeline for later Runs.
func TestPipelineTraceBuildPanicIsolated(t *testing.T) {
	defer faultinject.DisarmAll()
	pl := NewPipeline(WithWorkers(1), WithTraceCache(NewMemoryTraceCache(4)))
	sc := traceScenario("trace-panic", "hierarchical")

	faultinject.Arm("pipeline.trace.build", faultinject.Fault{Kind: faultinject.KindPanic})
	_, err := pl.Run(context.Background(), sc)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run under injected trace-build panic returned %v, want *PanicError", err)
	}

	faultinject.DisarmAll()
	if _, err := pl.Run(context.Background(), sc); err != nil {
		t.Fatalf("Run after recovered trace-build panic failed: %v", err)
	}
}
