package hierclust

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// sweepBase is a small, fast base scenario for sweep tests: 64 ranks on 8
// nodes, one strategy (sweeps usually bring their own strategies axis).
func sweepBase() Scenario {
	return Scenario{
		Name:       "sweep-base",
		Machine:    MachineSpec{Nodes: 8},
		Placement:  PlacementSpec{Ranks: 64, ProcsPerNode: 8},
		Trace:      TraceSpec{Source: "synthetic", Pattern: "stencil2d"},
		Strategies: []StrategySpec{{Kind: "naive", Size: 8}},
	}
}

// allAxesSweep exercises every axis type at once.
func allAxesSweep() *Sweep {
	return &Sweep{
		Name: "all-axes",
		Base: sweepBase(),
		Axes: SweepAxes{
			Machines:   []MachinePoint{{Nodes: 8}, {Nodes: 16, Ranks: 128, ProcsPerNode: 8}},
			Placements: []string{"block", "round-robin"},
			Strategies: [][]StrategySpec{
				{{Kind: "naive", Size: 8}},
				{{Kind: "hierarchical"}, {Kind: "size-guided", Size: 8}},
			},
			Mixes: []MixSpec{
				{Transient: 0.05, NodeLoss: []float64{0.9, 0.05}},
				{Transient: 0.5, NodeLoss: []float64{0.5}},
			},
			Traces: []TracePoint{{Width: 4}, {Width: 8, BytesPerMsg: 2048}},
		},
	}
}

func TestSweepCellCount(t *testing.T) {
	sw := allAxesSweep()
	if n := sw.CellCount(); n != 2*2*2*2*2 {
		t.Fatalf("CellCount = %d, want 32", n)
	}
	if n := (&Sweep{Name: "one", Base: sweepBase()}).CellCount(); n != 1 {
		t.Fatalf("axis-less CellCount = %d, want 1", n)
	}
}

// TestSweepCellCountSaturates pins the overflow guard: axes whose product
// wraps int64 (four 65536-entry axes multiply to 2^64 ≡ 0) must saturate
// above SweepMaxCells, and Validate must reject the sweep before expanding
// 2^64 cells. Guards against an unauthenticated DoS via POST /v1/sweeps.
func TestSweepCellCountSaturates(t *testing.T) {
	const n = SweepMaxCells // 2^16 per axis, 4 axes → product wraps to 0
	sw := &Sweep{Name: "huge", Base: sweepBase()}
	sw.Axes.Machines = make([]MachinePoint, n)
	for i := range sw.Axes.Machines {
		sw.Axes.Machines[i] = MachinePoint{Nodes: i + 1}
	}
	sw.Axes.Placements = make([]string, n)
	sw.Axes.Mixes = make([]MixSpec, n)
	sw.Axes.Traces = make([]TracePoint, n)
	if got := sw.CellCount(); got <= SweepMaxCells {
		t.Fatalf("CellCount = %d, want > %d (saturated, not wrapped)", got, SweepMaxCells)
	}
	if err := sw.Validate(); err == nil {
		t.Fatal("Validate accepted a sweep whose cell count overflows int")
	}
	// A single over-long axis must also saturate rather than report its
	// exact (but bound-exceeding) product.
	one := &Sweep{Name: "long-axis", Base: sweepBase()}
	one.Axes.Placements = make([]string, SweepMaxCells+1)
	if got := one.CellCount(); got != SweepMaxCells+1 {
		t.Fatalf("single-axis CellCount = %d, want %d", got, SweepMaxCells+1)
	}
	if err := one.Validate(); err == nil {
		t.Fatal("Validate accepted an over-bound single axis")
	}
}

func TestSweepEncodeDecodeRoundTrip(t *testing.T) {
	sw := allAxesSweep()
	b1, err := EncodeSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSweep(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeSweep(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("encode/decode/encode is not byte-stable:\n%s\nvs\n%s", b1, b2)
	}
	k1, err := sw.SweepKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := dec.SweepKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("SweepKey changed across round trip:\n%s\nvs\n%s", k1, k2)
	}
}

func TestSweepDecodeRejectsUnknownFields(t *testing.T) {
	sw := &Sweep{Name: "typo", Base: sweepBase()}
	b, err := EncodeSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(b, []byte(`"axes"`), []byte(`"axis"`), 1)
	if !bytes.Contains(bad, []byte(`"axis"`)) {
		t.Fatal("test setup: no axes field to corrupt")
	}
	if _, err := DecodeSweep(bad); err == nil {
		t.Fatal("decoder accepted an unknown field")
	}
}

func TestSweepValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Sweep)
	}{
		{"no name", func(sw *Sweep) { sw.Name = "" }},
		{"future version", func(sw *Sweep) { sw.Version = SweepVersion + 1 }},
		{"bad machine point", func(sw *Sweep) { sw.Axes.Machines = []MachinePoint{{Nodes: 0}} }},
		{"empty strategy set", func(sw *Sweep) { sw.Axes.Strategies = [][]StrategySpec{{}} }},
		{"bad policy", func(sw *Sweep) { sw.Axes.Placements = []string{"scatter"} }},
		{"bad cell", func(sw *Sweep) { sw.Axes.Traces = []TracePoint{{Pattern: "torus"}} }},
		{"cell bound", func(sw *Sweep) {
			pts := make([]MachinePoint, 300)
			mixes := make([]MixSpec, 300)
			for i := range pts {
				pts[i] = MachinePoint{Nodes: i + 1}
				mixes[i] = MixSpec{Transient: 1}
			}
			sw.Axes.Machines = pts
			sw.Axes.Mixes = mixes
		}},
	}
	for _, tc := range cases {
		sw := allAxesSweep()
		tc.mut(sw)
		if err := sw.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid sweep", tc.name)
		}
	}
}

// TestSweepCellNamesAndOrder pins the expansion order (machines outermost,
// traces innermost) and the index-based naming scheme.
func TestSweepCellNamesAndOrder(t *testing.T) {
	sw := &Sweep{
		Name: "order",
		Base: sweepBase(),
		Axes: SweepAxes{
			Machines:   []MachinePoint{{Nodes: 8}, {Nodes: 16}},
			Strategies: [][]StrategySpec{{{Kind: "naive", Size: 8}}, {{Kind: "hierarchical"}}},
		},
	}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"sweep-base/m0/s0", "sweep-base/m0/s1",
		"sweep-base/m1/s0", "sweep-base/m1/s1",
	}
	if len(cells) != len(want) {
		t.Fatalf("expanded %d cells, want %d", len(cells), len(want))
	}
	for i, sc := range cells {
		if sc.Name != want[i] {
			t.Errorf("cell %d named %q, want %q", i, sc.Name, want[i])
		}
	}
	// Inactive axes contribute no name segment.
	if strings.Contains(cells[0].Name, "/p") || strings.Contains(cells[0].Name, "/x") || strings.Contains(cells[0].Name, "/t") {
		t.Errorf("inactive axes leaked into cell name %q", cells[0].Name)
	}
}

// TestSweepCellCacheKeyCoherence is the cache-key coherence property: for
// every cell of a sweep spanning every axis type, a hand-written scenario
// with the same content must produce the same CacheKey (so sweep cells hit
// and warm the same result cache as single evaluates).
func TestSweepCellCacheKeyCoherence(t *testing.T) {
	sw := allAxesSweep()
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 32 {
		t.Fatalf("expanded %d cells, want 32", len(cells))
	}
	i := 0
	for mi, m := range sw.Axes.Machines {
		for pi, pol := range sw.Axes.Placements {
			for si, set := range sw.Axes.Strategies {
				for xi, mix := range sw.Axes.Mixes {
					for ti, tp := range sw.Axes.Traces {
						// Hand-write the scenario this cell should equal,
						// from the documented semantics alone.
						hand := sweepBase()
						hand.Name = fmt.Sprintf("sweep-base/m%d/p%d/s%d/x%d/t%d", mi, pi, si, xi, ti)
						hand.Machine.Nodes = m.Nodes
						if m.Ranks > 0 {
							hand.Placement.Ranks = m.Ranks
						}
						if m.ProcsPerNode > 0 {
							hand.Placement.ProcsPerNode = m.ProcsPerNode
						}
						hand.Placement.Policy = pol
						hand.Strategies = set
						mixCopy := mix
						hand.Mix = &mixCopy
						if tp.Iterations > 0 {
							hand.Trace.Iterations = tp.Iterations
						}
						if tp.Pattern != "" {
							hand.Trace.Pattern = tp.Pattern
						}
						if tp.Width > 0 {
							hand.Trace.Width = tp.Width
						}
						if tp.BytesPerMsg > 0 {
							hand.Trace.BytesPerMsg = tp.BytesPerMsg
						}

						wantKey, err := hand.CacheKey()
						if err != nil {
							t.Fatalf("cell %d: hand-written CacheKey: %v", i, err)
						}
						gotKey, err := cells[i].CacheKey()
						if err != nil {
							t.Fatalf("cell %d: sweep cell CacheKey: %v", i, err)
						}
						if gotKey != wantKey {
							t.Errorf("cell %d (%s): sweep cell key diverges from hand-written scenario:\n%s\nvs\n%s",
								i, cells[i].Name, gotKey, wantKey)
						}
						i++
					}
				}
			}
		}
	}
}

// TestSweepCellsDoNotAliasBase: expanding must never mutate the base (or
// share mutable slices with it across cells).
func TestSweepCellsDoNotAliasBase(t *testing.T) {
	sw := allAxesSweep()
	before, err := EncodeScenario(&sw.Base)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	cells[0].Strategies[0].Size = 99
	cells[0].Mix.NodeLoss[0] = 0.123
	after, err := EncodeScenario(&sw.Base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("mutating an expanded cell changed the sweep base")
	}
	if cells[16].Mix.NodeLoss[0] == 0.123 {
		t.Fatal("cells share a NodeLoss slice")
	}
}

// TestPlanSweepTraceDedup: cells differing only in strategies/mixes share
// one trace node, and exactly the first referencing cell is the builder.
func TestPlanSweepTraceDedup(t *testing.T) {
	sw := &Sweep{
		Name: "dedup",
		Base: sweepBase(),
		Axes: SweepAxes{
			Strategies: [][]StrategySpec{{{Kind: "naive", Size: 8}}, {{Kind: "hierarchical"}}},
			Mixes: []MixSpec{
				{Transient: 0.05, NodeLoss: []float64{0.9}},
				{Transient: 0.5, NodeLoss: []float64{0.5}},
			},
		},
	}
	plan, err := PlanSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cells) != 4 {
		t.Fatalf("planned %d cells, want 4", len(plan.Cells))
	}
	if plan.TraceBuilds != 1 || plan.TraceRefs != 4 {
		t.Fatalf("trace builds/refs = %d/%d, want 1/4", plan.TraceBuilds, plan.TraceRefs)
	}
	builders := 0
	for _, c := range plan.Cells {
		if c.TraceNode != 0 {
			t.Fatalf("cell %d on trace node %d, want 0", c.Index, c.TraceNode)
		}
		if c.TraceBuilder {
			builders++
			if c.Index != 0 {
				t.Fatalf("cell %d designated trace builder, want cell 0", c.Index)
			}
		}
	}
	if builders != 1 {
		t.Fatalf("%d designated builders, want 1", builders)
	}
	// Partitions: strategy sets differ per cell but mixes don't affect the
	// clustering, so cells 0/1 (naive) share one node and cells 2/3
	// (hierarchical) share another.
	if plan.PartitionBuilds != 2 || plan.PartitionRefs != 4 {
		t.Fatalf("partition builds/refs = %d/%d, want 2/4", plan.PartitionBuilds, plan.PartitionRefs)
	}
	if plan.Cells[0].PartNodes[0] != plan.Cells[1].PartNodes[0] {
		t.Fatal("same-strategy cells did not share a partition node")
	}
	if plan.Cells[0].PartNodes[0] == plan.Cells[2].PartNodes[0] {
		t.Fatal("different-strategy cells shared a partition node")
	}
	if r := plan.DedupRatio(); r <= 0.5 || r >= 1 {
		t.Fatalf("dedup ratio = %g, want in (0.5, 1) for 3 builds / 8 refs", r)
	}
}

// TestPlanSweepFileTracePrivate: an uncacheable ("file") trace plans as a
// private build per cell — no sharing, no cross-cell poisoning.
func TestPlanSweepFileTracePrivate(t *testing.T) {
	base := sweepBase()
	base.Trace = TraceSpec{Source: "file", Path: "/tmp/nonexistent.hctr"}
	sw := &Sweep{
		Name: "private",
		Base: base,
		Axes: SweepAxes{
			Strategies: [][]StrategySpec{{{Kind: "naive", Size: 8}}, {{Kind: "hierarchical"}}},
		},
	}
	plan, err := PlanSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TraceBuilds != 2 || plan.TraceRefs != 2 {
		t.Fatalf("trace builds/refs = %d/%d, want 2/2 (private)", plan.TraceBuilds, plan.TraceRefs)
	}
	for _, c := range plan.Cells {
		if c.TraceNode != -1 || !c.TraceBuilder {
			t.Fatalf("cell %d: TraceNode=%d TraceBuilder=%v, want private builder", c.Index, c.TraceNode, c.TraceBuilder)
		}
		for _, pn := range c.PartNodes {
			if pn != -1 {
				t.Fatalf("cell %d: partition shared despite uncacheable trace", c.Index)
			}
		}
	}
	if r := plan.DedupRatio(); r != 0 {
		t.Fatalf("dedup ratio = %g, want 0", r)
	}
}
