package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hierclust/internal/faultinject"
	"hierclust/pkg/hierclust"
)

// These drills pin the tentpole contract of the durable result store +
// sweep journal: a sweep interrupted by process death (graceful drain or
// kill -9) resumes on restart under its original job id, recomputes only
// the cells that never reached disk, and streams results byte-identical
// to an uninterrupted run.

// drillSweepDoc is a 3 machines × 2 strategies grid (6 cells) small
// enough to pace with the sweep.cell latency fault.
func drillSweepDoc(name string) string {
	return fmt.Sprintf(`{
		"name": %q,
		"base": {
			"name": "drill-base",
			"machine": {"nodes": 16},
			"placement": {"ranks": 64, "procs_per_node": 4},
			"trace": {"source": "synthetic", "iterations": 10}
		},
		"axes": {
			"machines": [
				{"nodes": 16},
				{"nodes": 8, "ranks": 32, "procs_per_node": 4},
				{"nodes": 4, "ranks": 16, "procs_per_node": 4}
			],
			"strategies": [[{"kind": "naive", "size": 8}], [{"kind": "hierarchical"}]]
		}
	}`, name)
}

// pollSweepUntil polls the job's status until ok returns true, failing
// the test if the job reaches a terminal state (or the deadline) first.
func pollSweepUntil(t *testing.T, url, id string, ok func(*sweepStatusDoc) bool) *sweepStatusDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var doc sweepStatusDoc
		derr := json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if derr != nil {
			t.Fatal(derr)
		}
		if ok(&doc) {
			return &doc
		}
		if doc.State != "running" {
			t.Fatalf("sweep %s reached %q before the poll condition: %+v", id, doc.State, doc)
		}
		if time.Now().After(deadline) {
			t.Fatalf("poll condition never met: %+v", doc)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// cleanSweepReference runs the same sweep on a fresh in-process server
// with no persistence and returns its result lines — the uninterrupted
// run every drill compares against.
func cleanSweepReference(t *testing.T, doc string) []SweepCellLine {
	t.Helper()
	s := New(Options{CacheSize: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()
	job := submitSweep(t, ts.URL, doc)
	final := pollSweep(t, ts.URL, job.ID)
	if final.State != "completed" || final.Cells.Failed != 0 {
		t.Fatalf("reference run = %+v; want completed with 0 failed", final)
	}
	_, lines := sweepResults(t, ts.URL, job.ID)
	if !s.waitForSweeps(5 * time.Second) {
		t.Fatal("reference sweep goroutine did not exit")
	}
	return lines
}

// assertResumedMatchesReference checks byte-identity of every resumed
// cell document against the uninterrupted run.
func assertResumedMatchesReference(t *testing.T, got, want []SweepCellLine) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("resumed run streamed %d lines; reference has %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Status != http.StatusOK {
			t.Fatalf("resumed cell %d status = %d (%s)", i, got[i].Status, got[i].Error)
		}
		if !bytes.Equal(got[i].Result, want[i].Result) {
			t.Fatalf("resumed cell %d document differs from the uninterrupted run:\n%s\nvs\n%s",
				i, got[i].Result, want[i].Result)
		}
	}
}

// TestJournalDrainRestartResume drives the graceful-restart path fully
// in-process: a drained server writes no completion record for its
// running sweep, so the next server (same journal, same disk result
// cache) resumes the job under its original id, serves the already-done
// cells from disk, and completes with results byte-identical to an
// uninterrupted run.
func TestJournalDrainRestartResume(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "sweeps.journal")
	resultsDir := filepath.Join(dir, "results")

	rc1, err := hierclust.NewDiskResultCache(resultsDir, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Options{CacheSize: 4, MaxConcurrent: 1, ResultCache: rc1})
	if n, err := srv1.OpenSweepJournal(journalPath); err != nil || n != 0 {
		t.Fatalf("fresh journal: resumed %d, err %v", n, err)
	}
	ts1 := httptest.NewServer(srv1)

	// Pace computed cells so the drain lands mid-sweep; MaxConcurrent 1
	// serializes them, so "Completed >= 2" means exactly cells 0 and 1
	// reached the durable cache.
	faultinject.Arm("sweep.cell", faultinject.Fault{Kind: faultinject.KindLatency, Delay: 100 * time.Millisecond})

	doc := drillSweepDoc("drain-drill")
	job := submitSweep(t, ts1.URL, doc)
	if job.Cells.Total != 6 {
		t.Fatalf("planned %d cells; want 6", job.Cells.Total)
	}
	pre := pollSweepUntil(t, ts1.URL, job.ID, func(d *sweepStatusDoc) bool {
		return d.Cells.Completed >= 2
	})
	srv1.Drain()
	ts1.Close()
	if err := srv1.CloseSweepJournal(); err != nil {
		t.Fatal(err)
	}
	faultinject.DisarmAll()

	// The interrupted job must not have finished cleanly — that is the
	// point of draining mid-run.
	if st := srv1.lookupSweepJob(job.ID).currentState(); st != "cancelled" {
		t.Fatalf("drained job state = %q; want cancelled", st)
	}

	rc2, err := hierclust.NewDiskResultCache(resultsDir, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Options{CacheSize: 4, ResultCache: rc2})
	resumed, err := srv2.OpenSweepJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d jobs; want 1", resumed)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	final := pollSweep(t, ts2.URL, job.ID)
	if final.State != "completed" || final.Cells.Failed != 0 {
		t.Fatalf("resumed job = %+v; want completed with 0 failed", final)
	}
	if final.Cells.Cached < pre.Cells.Completed {
		t.Fatalf("resumed job served %d cells from cache; want >= %d (the cells done before the drain)",
			final.Cells.Cached, pre.Cells.Completed)
	}
	_, lines := sweepResults(t, ts2.URL, job.ID)
	assertResumedMatchesReference(t, lines, cleanSweepReference(t, doc))
	if !srv2.waitForSweeps(5 * time.Second) {
		t.Fatal("resumed sweep goroutine did not exit")
	}
}

// TestJournalCompletedAndForgottenJobsStayDone pins the completion
// records: a job that finished (or was DELETEd) before the restart must
// not be resurrected.
func TestJournalCompletedAndForgottenJobsStayDone(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "sweeps.journal")

	srv1 := New(Options{CacheSize: 16})
	if _, err := srv1.OpenSweepJournal(journalPath); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	done := submitSweep(t, ts1.URL, sweepDoc("finishes"))
	pollSweep(t, ts1.URL, done.ID)
	forgotten := submitSweep(t, ts1.URL, drillSweepDoc("forgotten"))
	pollSweep(t, ts1.URL, forgotten.ID)
	req, _ := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/sweeps/"+forgotten.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d; want 204", resp.StatusCode)
	}
	if !srv1.waitForSweeps(5 * time.Second) {
		t.Fatal("sweep goroutines did not exit")
	}
	ts1.Close()
	if err := srv1.CloseSweepJournal(); err != nil {
		t.Fatal(err)
	}

	srv2 := New(Options{CacheSize: 16})
	resumed, err := srv2.OpenSweepJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("resumed %d jobs; want 0 (both reached terminal records)", resumed)
	}
	if err := srv2.CloseSweepJournal(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartDrillChild is the helper process for
// TestChaosRestartSweepSurvivesKill: a real hcserve wired with the disk
// result cache and sweep journal, paced by a sweep.cell latency fault,
// serving until the parent kills the process. It skips unless spawned by
// the parent.
func TestRestartDrillChild(t *testing.T) {
	dir := os.Getenv("HCSERVE_DRILL_DIR")
	if os.Getenv("HCSERVE_RESTART_CHILD") != "1" || dir == "" {
		t.Skip("helper process for TestChaosRestartSweepSurvivesKill")
	}
	rc, err := hierclust.NewDiskResultCache(filepath.Join(dir, "results"), 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{CacheSize: 4, MaxConcurrent: 1, ResultCache: rc})
	if _, err := s.OpenSweepJournal(filepath.Join(dir, "sweeps.journal")); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm("sweep.cell", faultinject.Fault{Kind: faultinject.KindLatency, Delay: 250 * time.Millisecond})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Publish the address atomically so the parent never reads a partial
	// file.
	tmp := filepath.Join(dir, "addr.tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addr")); err != nil {
		t.Fatal(err)
	}
	_ = http.Serve(ln, s) // until SIGKILL
}

// startDrillChild execs this test binary as the drill server and waits
// for it to publish its address.
func startDrillChild(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	addrPath := filepath.Join(dir, "addr")
	_ = os.Remove(addrPath)
	cmd := exec.Command(os.Args[0], "-test.run", "^TestRestartDrillChild$")
	cmd.Env = append(os.Environ(), "HCSERVE_RESTART_CHILD=1", "HCSERVE_DRILL_DIR="+dir)
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(addrPath); err == nil {
			return cmd, "http://" + string(b)
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			t.Fatalf("drill child never published an address; output:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosRestartSweepSurvivesKill is the kill -9 drill: a real child
// process (this test binary re-exec'd, so it runs under the same -race
// build) accepts a sweep, is SIGKILLed mid-run, and is restarted over the
// same journal + disk result cache. The job must resume under its
// original id, serve the pre-kill cells from the durable cache, and
// finish with results byte-identical to an uninterrupted run.
func TestChaosRestartSweepSurvivesKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns helper processes")
	}
	dir := t.TempDir()

	child, url := startDrillChild(t, dir)
	doc := drillSweepDoc("kill-drill")
	job := submitSweep(t, url, doc)
	if job.Cells.Total != 6 {
		t.Fatalf("planned %d cells; want 6", job.Cells.Total)
	}
	// MaxConcurrent 1 + 250ms latency per computed cell: by "Completed
	// >= 2" the job is mid-run with at least four cells outstanding.
	pre := pollSweepUntil(t, url, job.ID, func(d *sweepStatusDoc) bool {
		return d.Cells.Completed >= 2
	})

	// kill -9: no drain, no journal record, possibly a torn final append.
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = child.Wait()

	_, url = startDrillChild(t, dir)
	final := pollSweep(t, url, job.ID)
	if final.State != "completed" || final.Cells.Failed != 0 {
		t.Fatalf("resumed job = %+v; want completed with 0 failed", final)
	}
	if final.Cells.Cached < pre.Cells.Completed {
		t.Fatalf("resumed job served %d cells from cache; want >= %d (the cells done before kill -9)",
			final.Cells.Cached, pre.Cells.Completed)
	}
	_, lines := sweepResults(t, url, job.ID)
	assertResumedMatchesReference(t, lines, cleanSweepReference(t, doc))
}
