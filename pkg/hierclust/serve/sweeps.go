package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hierclust/pkg/hierclust"
)

// Sweeps run as asynchronous jobs: POST /v1/sweeps validates and *plans*
// the sweep synchronously (so over-bound or malformed grids fail fast with
// a request-scoped error), then answers 202 with a job id while the cells
// execute in the background. GET /v1/sweeps/{id} reports progress,
// GET /v1/sweeps/{id}/results streams one NDJSON line per cell in
// deterministic plan order as each completes, and DELETE cancels a running
// job (or forgets a finished one). Cells acquire evaluation slots through
// the shared admission limiter in the background tier, so a sweep soaks up
// idle capacity without starving interactive traffic, and completed cells
// land in the same result cache that serves POST /v1/evaluate — which is
// both the cross-warming path and the resume mechanism: resubmitting an
// interrupted sweep re-evaluates only the cells the cache doesn't hold.
// With a durable result tier (Options.ResultCache) and a sweep journal
// (OpenSweepJournal) mounted, resume also survives process death: the
// journaled job restarts under its original id and its finished cells
// load back from disk.

// SweepCellLine is one NDJSON line of a GET /v1/sweeps/{id}/results
// response. The line shape mirrors BatchLine; Result for a 200 cell is
// byte-identical to the compact document POST /v1/evaluate caches for the
// same scenario.
type SweepCellLine struct {
	// Index is the cell's position in plan (expansion) order.
	Index int `json:"index"`
	// Scenario is the expanded cell scenario's name.
	Scenario string `json:"scenario"`
	// Status is the HTTP status the cell would have received from
	// POST /v1/evaluate (200, 422, 499 job cancelled, 500 recovered
	// panic, 503 drained, 504 deadline).
	Status int `json:"status"`
	// Cache is "hit", "trace-hit", or "miss" for a 200 cell.
	Cache string `json:"cache,omitempty"`
	// Result is the evaluation document for Status 200.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the failure message for non-200 statuses.
	Error string `json:"error,omitempty"`
}

// sweepStatusDoc is the GET /v1/sweeps/{id} (and POST /v1/sweeps) body.
type sweepStatusDoc struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"` // "running", "completed", "failed", "cancelled"
	Cells struct {
		Total     int `json:"total"`
		Done      int `json:"done"`
		Completed int `json:"completed"`
		Cached    int `json:"cached"`
		Failed    int `json:"failed"`
	} `json:"cells"`
	Plan struct {
		TraceBuilds     int     `json:"trace_builds"`
		TraceRefs       int     `json:"trace_refs"`
		PartitionBuilds int     `json:"partition_builds"`
		PartitionRefs   int     `json:"partition_refs"`
		DedupRatio      float64 `json:"dedup_ratio"`
	} `json:"plan"`
	ResultsURL string `json:"results_url"`
}

// sweepJob is one submitted sweep and its execution state.
type sweepJob struct {
	id     string
	name   string
	client string
	plan   *hierclust.SweepPlan
	cancel context.CancelFunc

	mu       sync.Mutex
	state    string
	lines    []SweepCellLine
	lineDone []chan struct{}
	closed   []bool
	done     int
	cached   int
	failed   int
}

func newSweepJob(id string, plan *hierclust.SweepPlan, client string, cancel context.CancelFunc) *sweepJob {
	j := &sweepJob{
		id:       id,
		name:     plan.Sweep.Name,
		client:   client,
		plan:     plan,
		cancel:   cancel,
		state:    "running",
		lines:    make([]SweepCellLine, len(plan.Cells)),
		lineDone: make([]chan struct{}, len(plan.Cells)),
		closed:   make([]bool, len(plan.Cells)),
	}
	for i := range j.lineDone {
		j.lineDone[i] = make(chan struct{})
	}
	return j
}

// setLine records a finished cell's line and releases its streamers.
func (j *sweepJob) setLine(i int, line SweepCellLine) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed[i] {
		return
	}
	j.lines[i] = line
	j.closed[i] = true
	j.done++
	switch {
	case line.Status != http.StatusOK:
		j.failed++
	case line.Cache == "hit":
		j.cached++
	}
	close(j.lineDone[i])
}

// finish marks the job's terminal state and fills any cell line the
// executor never delivered (cells undispatched at cancellation), so every
// results stream terminates.
func (j *sweepJob) finish(state string, fillStatus int, fillErr string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	for i := range j.lines {
		if j.closed[i] {
			continue
		}
		j.lines[i] = SweepCellLine{
			Index:    i,
			Scenario: j.plan.Cells[i].Scenario.Name,
			Status:   fillStatus,
			Error:    fillErr,
		}
		j.closed[i] = true
		j.done++
		j.failed++
		close(j.lineDone[i])
	}
}

func (j *sweepJob) statusDoc() *sweepStatusDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	doc := &sweepStatusDoc{ID: j.id, Name: j.name, State: j.state}
	doc.Cells.Total = len(j.lines)
	doc.Cells.Done = j.done
	doc.Cells.Cached = j.cached
	doc.Cells.Failed = j.failed
	doc.Cells.Completed = j.done - j.cached - j.failed
	doc.Plan.TraceBuilds = j.plan.TraceBuilds
	doc.Plan.TraceRefs = j.plan.TraceRefs
	doc.Plan.PartitionBuilds = j.plan.PartitionBuilds
	doc.Plan.PartitionRefs = j.plan.PartitionRefs
	doc.Plan.DedupRatio = j.plan.DedupRatio()
	doc.ResultsURL = "/v1/sweeps/" + j.id + "/results"
	return doc
}

func (j *sweepJob) currentState() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// runningSweeps counts jobs still executing.
func (s *Server) runningSweeps() int {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	n := 0
	for _, j := range s.sweepJobs {
		if j.currentState() == "running" {
			n++
		}
	}
	return n
}

// storeSweepJob registers a job, evicting the oldest finished job when the
// store is full. It fails when every retained job is still running, or when
// the server is draining. On success the job is accounted in sweepWG; the
// caller must spawn runSweepJob (which calls sweepWG.Done). Re-checking
// draining and calling Add under sweepMu — the same lock Drain holds while
// flipping the flag — guarantees no Add can race sweepWG.Wait, so no job
// goroutine outlives Drain.
func (s *Server) storeSweepJob(j *sweepJob) error {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if s.draining.Load() {
		return fmt.Errorf("%w; retry against another replica", errSweepDraining)
	}
	running := 0
	for _, job := range s.sweepJobs {
		if job.currentState() == "running" {
			running++
		}
	}
	if running >= s.maxSweeps {
		return fmt.Errorf("hierclust: %d sweep jobs already running (bound %d); retry after %ss",
			running, s.maxSweeps, s.retryAfter)
	}
	for len(s.sweepJobs) >= s.maxSweepJobs {
		evicted := false
		for i, id := range s.sweepOrder {
			if s.sweepJobs[id].currentState() != "running" {
				delete(s.sweepJobs, id)
				s.sweepOrder = append(s.sweepOrder[:i], s.sweepOrder[i+1:]...)
				// Evicted jobs are gone from the store, so they must be
				// closed out in the journal too or a restart would
				// resurrect them. (journalDone never takes sweepMu.)
				s.journalDone(id, "forgotten")
				evicted = true
				break
			}
		}
		if !evicted {
			return fmt.Errorf("hierclust: sweep job store full (%d jobs, all running); retry after %ss",
				len(s.sweepJobs), s.retryAfter)
		}
	}
	s.sweepJobs[j.id] = j
	s.sweepOrder = append(s.sweepOrder, j.id)
	s.sweepWG.Add(1)
	return nil
}

func (s *Server) lookupSweepJob(id string) *sweepJob {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	return s.sweepJobs[id]
}

func sweepJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter)
		s.writeError(w, http.StatusServiceUnavailable,
			errors.New("hierclust: server draining; retry against another replica"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBatchBody))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, fmt.Errorf("reading body: %w", err))
		return
	}
	sw, err := hierclust.DecodeSweep(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Same policy as decodeScenario: no server-side file paths over HTTP.
	if sw.Base.Trace.Source == "file" {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("hierclust: trace source \"file\" is not accepted over HTTP; inline a synthetic or tsunami source"))
		return
	}
	if n := sw.CellCount(); n > s.maxSweepCells {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("hierclust: sweep of %d cells exceeds the server's %d-cell bound", n, s.maxSweepCells))
		return
	}
	plan, err := hierclust.PlanSweep(sw)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	id, err := sweepJobID()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}

	// The job outlives this request: its context descends from the
	// server's sweep context (cancelled by Drain), not the request's.
	jobCtx, jobCancel := context.WithCancel(s.sweepCtx)
	job := newSweepJob(id, plan, clientKey(r), jobCancel)
	if err := s.storeSweepJob(job); err != nil {
		jobCancel()
		w.Header().Set("Retry-After", s.retryAfter)
		status := http.StatusTooManyRequests
		if errors.Is(err, errSweepDraining) {
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, status, err)
		return
	}

	// Journal the accepted sweep before the 202 leaves the server: once
	// the client sees the job id, the job survives kill -9.
	s.journalSubmitted(id, job.client, body)

	s.sweepJobsTotal.Inc()
	s.sweepCellsTotal.Add(uint64(len(plan.Cells)))
	s.sweepBuilds.Add(uint64(plan.TraceBuilds + plan.PartitionBuilds))
	s.sweepRefs.Add(uint64(plan.TraceRefs + plan.PartitionRefs))

	// storeSweepJob already did sweepWG.Add(1) for this goroutine.
	go s.runSweepJob(jobCtx, job)

	doc := job.statusDoc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/sweeps/"+id)
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// runSweepJob executes one job's plan in the background.
func (s *Server) runSweepJob(ctx context.Context, job *sweepJob) {
	defer s.sweepWG.Done()
	defer job.cancel()

	opts := hierclust.SweepOptions{
		ResultCache: serverResultCache{s},
		CellTimeout: s.evalTimeout,
		Acquire: func(ctx context.Context) (func(), error) {
			adm, release := s.lim.acquire(ctx, job.client, true)
			switch adm {
			case admitted:
				return release, nil
			case admissionDraining:
				return nil, errSweepDraining
			case admissionCancelled:
				return nil, ctx.Err()
			}
			// Background acquires are exempt from shedding; unreachable.
			return nil, errSweepShed
		},
		OnCell: func(res hierclust.SweepCellResult) {
			job.setLine(res.Index, s.renderSweepCell(ctx, res))
		},
	}

	_, err := s.pipeline.RunPlannedSweep(ctx, job.plan, opts)
	switch {
	case err == nil:
		job.finish("completed", 0, "") // no unfilled lines remain
		s.journalDone(job.id, "completed")
	case errors.Is(ctx.Err(), context.Canceled) && s.draining.Load():
		job.finish("cancelled", http.StatusServiceUnavailable,
			"hierclust: server draining; resubmit to resume from cache")
		// Deliberately NOT journaled as done: a drain is a restart from
		// the journal's point of view, so the next process resumes this
		// job where the result cache left off.
	case errors.Is(ctx.Err(), context.Canceled):
		job.finish("cancelled", statusClientClosed, "hierclust: sweep cancelled")
		s.journalDone(job.id, "cancelled")
	default:
		job.finish("failed", http.StatusInternalServerError, err.Error())
		s.journalDone(job.id, "failed")
	}
}

// serverResultCache adapts the server\'s tiered result cache (LRU over the
// optional durable tier) to the sweep executor\'s SweepResultCache.
type serverResultCache struct{ s *Server }

func (c serverResultCache) Get(key string) ([]byte, bool) { return c.s.cacheGet(key) }
func (c serverResultCache) Put(key string, doc []byte)    { c.s.cachePut(key, doc) }

var (
	errSweepDraining = errors.New("hierclust: server draining")
	errSweepShed     = errors.New("hierclust: admission shed")
)

// renderSweepCell maps one executor cell result onto its NDJSON line,
// ranking failures exactly like the single-evaluate endpoint.
func (s *Server) renderSweepCell(ctx context.Context, res hierclust.SweepCellResult) SweepCellLine {
	line := SweepCellLine{Index: res.Index, Scenario: res.Scenario}
	if res.Err == nil {
		line.Status = http.StatusOK
		line.Cache = res.Cache
		line.Result = res.Doc
		if res.Cache == "hit" {
			s.hits.Add(1)
			s.cacheHits.With("result").Inc()
			s.sweepCellHits.Inc()
		} else {
			s.misses.Add(1)
			s.cacheMisses.With("result").Inc()
			s.sweepCellsDone.Inc()
			switch res.Cache {
			case "trace-hit":
				s.cacheHits.With("trace").Inc()
			case "miss":
				s.cacheMisses.With("trace").Inc()
			}
		}
		return line
	}

	s.sweepCellsFail.Inc()
	var pe *hierclust.PanicError
	switch {
	case errors.As(res.Err, &pe):
		id := s.reportPanic(pe.Value, pe.Stack)
		line.Status = http.StatusInternalServerError
		line.Error = incidentErr(id).Error()
	case errors.Is(res.Err, errSweepDraining),
		ctx.Err() != nil && s.draining.Load():
		line.Status = http.StatusServiceUnavailable
		line.Error = "hierclust: server draining; resubmit to resume from cache"
	case ctx.Err() != nil:
		line.Status = statusClientClosed
		line.Error = "hierclust: sweep cancelled"
	case errors.Is(res.Err, context.DeadlineExceeded):
		s.timeoutsTotal.Inc()
		line.Status = http.StatusGatewayTimeout
		line.Error = fmt.Sprintf("hierclust: cell exceeded the server's %s deadline", s.evalTimeout)
	default:
		line.Status = http.StatusUnprocessableEntity
		line.Error = res.Err.Error()
	}
	return line
}

func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	job := s.lookupSweepJob(r.PathValue("id"))
	if job == nil {
		s.writeError(w, http.StatusNotFound, errors.New("hierclust: unknown sweep job"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(job.statusDoc())
}

func (s *Server) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	job := s.lookupSweepJob(r.PathValue("id"))
	if job == nil {
		s.writeError(w, http.StatusNotFound, errors.New("hierclust: unknown sweep job"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Hierclust-Sweep-Cells", strconv.Itoa(len(job.lines)))
	w.Header().Set("X-Hierclust-Sweep-Dedup", strconv.FormatFloat(job.plan.DedupRatio(), 'f', 4, 64))
	w.WriteHeader(http.StatusOK)

	// Stream strictly in plan order as cells land; finish() guarantees
	// every channel eventually closes, so the stream always terminates.
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i := range job.lineDone {
		select {
		case <-job.lineDone[i]:
		case <-r.Context().Done():
			return
		}
		job.mu.Lock()
		line := job.lines[i]
		job.mu.Unlock()
		if err := enc.Encode(&line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleSweepDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job := s.lookupSweepJob(id)
	if job == nil {
		s.writeError(w, http.StatusNotFound, errors.New("hierclust: unknown sweep job"))
		return
	}
	if job.currentState() == "running" {
		// Cancel and report the (now terminating) job; the store keeps it
		// so the client can still read partial results.
		job.cancel()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(job.statusDoc())
		return
	}
	s.sweepMu.Lock()
	delete(s.sweepJobs, id)
	for i, oid := range s.sweepOrder {
		if oid == id {
			s.sweepOrder = append(s.sweepOrder[:i], s.sweepOrder[i+1:]...)
			break
		}
	}
	s.sweepMu.Unlock()
	s.journalDone(id, "forgotten")
	w.WriteHeader(http.StatusNoContent)
}

// waitForSweeps blocks until no job is running — a test hook kept close
// to the job machinery (leakcheck requires every job goroutine to join).
func (s *Server) waitForSweeps(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for s.runningSweeps() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}
