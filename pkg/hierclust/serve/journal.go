package serve

import (
	"context"
	"encoding/json"
	"log"
	"sync"
	"sync/atomic"

	"hierclust/internal/diskstore"
	"hierclust/pkg/hierclust"
)

// The sweep journal is what makes accepted sweeps survive kill -9. Every
// POST /v1/sweeps appends the validated sweep document and its job id
// before the 202 leaves the server; every terminal state (completed,
// failed, cancelled via DELETE, forgotten via store eviction) appends a
// completion record. On startup, OpenSweepJournal replays the log: a
// submit with no matching completion is an interrupted job, and the
// server re-plans it and resumes it under its original id as background
// work. Combined with the durable result cache — which every finished
// cell reaches before it is reported done — a resumed sweep recomputes
// only the cells that never hit disk.
//
// A drain-cancelled job deliberately writes NO completion record: graceful
// shutdown is a restart from the journal's point of view, so the next
// process resumes the job. An explicit DELETE is a user decision and is
// final.
//
// The journal is an internal/diskstore.Journal: checksummed records
// appended with a single write + sync, and a corrupt tail (torn final
// append) quarantined to <path>.bad and truncated on open. Append
// failures after acceptance are counted (hcserve_sweep_journal_errors
// on /metrics) but do not fail the request — durability degrades before
// availability does, matching the disk caches.
const (
	sweepJournalSubmit byte = 1
	sweepJournalDone   byte = 2
)

// journalSubmit is the payload of a sweepJournalSubmit record.
type journalSubmit struct {
	ID     string          `json:"id"`
	Client string          `json:"client"`
	Sweep  json.RawMessage `json:"sweep"`
}

// journalDone is the payload of a sweepJournalDone record. State records
// why the job left the store: "completed", "failed", "cancelled", or
// "forgotten" (DELETE of a finished job, or bounded-store eviction).
type journalDone struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// journalCompactDeadMin is how many completed records accumulate before a
// compaction rewrite is worth the IO.
const journalCompactDeadMin = 32

// sweepJournal tracks the live (incomplete) submits alongside the on-disk
// log so it can compact: when completed records outnumber live ones the
// log is rewritten to just the live submits.
type sweepJournal struct {
	mu    sync.Mutex
	j     *diskstore.Journal
	live  map[string]*journalSubmit
	order []string // submit order among live ids
	dead  int      // records the next compaction would drop
	errs  atomic.Int64
}

// recordSubmit journals an accepted sweep before its 202 is written.
func (sj *sweepJournal) recordSubmit(id, client string, sweepDoc []byte) {
	payload, err := json.Marshal(&journalSubmit{ID: id, Client: client, Sweep: sweepDoc})
	if err != nil {
		sj.errs.Add(1)
		log.Printf("hcserve: sweep journal: encode submit %s: %v", id, err)
		return
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if err := sj.j.Append(sweepJournalSubmit, payload); err != nil {
		sj.errs.Add(1)
		log.Printf("hcserve: sweep journal: %v", err)
		return
	}
	sj.live[id] = &journalSubmit{ID: id, Client: client, Sweep: sweepDoc}
	sj.order = append(sj.order, id)
}

// recordDone journals a job's terminal state and compacts the log when
// completed records dominate it.
func (sj *sweepJournal) recordDone(id, state string) {
	payload, err := json.Marshal(&journalDone{ID: id, State: state})
	if err != nil {
		sj.errs.Add(1)
		log.Printf("hcserve: sweep journal: encode done %s: %v", id, err)
		return
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if err := sj.j.Append(sweepJournalDone, payload); err != nil {
		sj.errs.Add(1)
		log.Printf("hcserve: sweep journal: %v", err)
		return
	}
	sj.dropLiveLocked(id)
	sj.dead += 2 // the submit it closes plus the done record itself
	sj.compactLocked()
}

func (sj *sweepJournal) dropLiveLocked(id string) {
	if _, ok := sj.live[id]; !ok {
		return
	}
	delete(sj.live, id)
	for i, oid := range sj.order {
		if oid == id {
			sj.order = append(sj.order[:i], sj.order[i+1:]...)
			break
		}
	}
}

// compactLocked rewrites the log down to the live submits once the dead
// records both clear a floor and outnumber the live ones.
func (sj *sweepJournal) compactLocked() {
	if sj.dead < journalCompactDeadMin || sj.dead <= len(sj.live) {
		return
	}
	recs := make([]diskstore.Record, 0, len(sj.order))
	for _, id := range sj.order {
		payload, err := json.Marshal(sj.live[id])
		if err != nil {
			sj.errs.Add(1)
			return
		}
		recs = append(recs, diskstore.Record{Kind: sweepJournalSubmit, Payload: payload})
	}
	if err := sj.j.Rewrite(recs); err != nil {
		sj.errs.Add(1)
		log.Printf("hcserve: sweep journal: %v", err)
		return
	}
	sj.dead = 0
}

// journalSubmitted records an accepted sweep, when a journal is mounted.
func (s *Server) journalSubmitted(id, client string, sweepDoc []byte) {
	if s.journal != nil {
		s.journal.recordSubmit(id, client, sweepDoc)
	}
}

// journalDone records a terminal state, when a journal is mounted. Never
// call it for a drain cancellation — the missing completion record is
// exactly what makes the next process resume the job.
func (s *Server) journalDone(id, state string) {
	if s.journal != nil {
		s.journal.recordDone(id, state)
	}
}

// OpenSweepJournal mounts the crash-safe sweep journal at path and
// resumes every journaled job with no completion record: each one is
// re-decoded, re-planned, and started as a background job under its
// original id, so clients polling GET /v1/sweeps/{id} across the restart
// never notice beyond the pause. Returns how many jobs were resumed.
//
// Call it once, after New and before serving traffic; submissions
// accepted before the journal is mounted are not journaled.
func (s *Server) OpenSweepJournal(path string) (resumed int, err error) {
	j, recs, err := diskstore.OpenJournal(path)
	if err != nil {
		return 0, err
	}
	sj := &sweepJournal{j: j, live: map[string]*journalSubmit{}}
	for _, rec := range recs {
		switch rec.Kind {
		case sweepJournalSubmit:
			var sub journalSubmit
			if err := json.Unmarshal(rec.Payload, &sub); err != nil || sub.ID == "" {
				sj.dead++
				continue
			}
			sj.dropLiveLocked(sub.ID) // duplicate id: last submit wins
			sj.live[sub.ID] = &sub
			sj.order = append(sj.order, sub.ID)
		case sweepJournalDone:
			var done journalDone
			if err := json.Unmarshal(rec.Payload, &done); err != nil {
				sj.dead++
				continue
			}
			sj.dropLiveLocked(done.ID)
			sj.dead += 2
		default:
			sj.dead++
		}
	}
	s.journal = sj
	s.reg.CounterFunc("hcserve_sweep_journal_errors_total",
		"Sweep-journal append/rewrite failures (durability degraded; submissions still serve).",
		func() float64 { return float64(sj.errs.Load()) })
	s.reg.GaugeFunc("hcserve_sweep_journal_live",
		"Journaled sweep jobs with no completion record (would resume after a crash).",
		func() float64 {
			sj.mu.Lock()
			defer sj.mu.Unlock()
			return float64(len(sj.live))
		})

	// Resume interrupted jobs in submission order.
	for _, id := range append([]string(nil), sj.order...) {
		sub := sj.live[id]
		sw, derr := hierclust.DecodeSweep(sub.Sweep)
		if derr != nil {
			log.Printf("hcserve: sweep journal: job %s no longer decodes (%v); dropping", id, derr)
			sj.recordDone(id, "failed")
			continue
		}
		plan, perr := hierclust.PlanSweep(sw)
		if perr != nil {
			log.Printf("hcserve: sweep journal: job %s no longer plans (%v); dropping", id, perr)
			sj.recordDone(id, "failed")
			continue
		}
		jobCtx, jobCancel := context.WithCancel(s.sweepCtx)
		job := newSweepJob(id, plan, sub.Client, jobCancel)
		if serr := s.storeSweepJob(job); serr != nil {
			// Store full of running jobs (or draining): keep the submit
			// record so the next restart tries again.
			jobCancel()
			log.Printf("hcserve: sweep journal: job %s not resumed: %v", id, serr)
			continue
		}
		s.sweepJobsTotal.Inc()
		s.sweepCellsTotal.Add(uint64(len(plan.Cells)))
		s.sweepBuilds.Add(uint64(plan.TraceBuilds + plan.PartitionBuilds))
		s.sweepRefs.Add(uint64(plan.TraceRefs + plan.PartitionRefs))
		go s.runSweepJob(jobCtx, job)
		resumed++
	}
	if resumed > 0 {
		log.Printf("hcserve: sweep journal: resumed %d interrupted job(s) from %s", resumed, path)
	}
	return resumed, nil
}

// CloseSweepJournal closes the journal's append handle (tests; the server
// process normally holds it for life).
func (s *Server) CloseSweepJournal() error {
	if s.journal == nil {
		return nil
	}
	return s.journal.j.Close()
}
