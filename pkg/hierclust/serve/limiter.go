package serve

import (
	"context"
	"sync"
)

// admission is the outcome of limiter.acquire.
type admission int

const (
	// admitted: a slot is held; the caller must invoke the release func.
	admitted admission = iota
	// admissionShed: the wait queue is full — load-shed with 429.
	admissionShed
	// admissionDraining: the server is shutting down — reject with 503.
	admissionDraining
	// admissionCancelled: the request context ended while queued.
	admissionCancelled
)

// limiter is the admission controller for expensive evaluations: at most
// maxConcurrent pipeline runs execute at once, at most maxQueue more wait
// for a slot, and everything beyond that is shed immediately — queueing
// unboundedly under overload would trade a fast 429 (which a client can
// back off from) for unbounded latency on every request (which it cannot).
// This is the load-shedding / graceful-degradation shape of the HPC
// resilience pattern literature applied to the evaluation service itself.
//
// Two refinements keep the pool fair:
//
//   - Per-client share cap. Slots are accounted per client key (the
//     X-Hierclust-Client header, falling back to the remote address), and
//     one client never holds more than clientCap slots at once. A client
//     at its cap queues even while slots sit free, and a freed slot is
//     handed to the first *eligible* waiter, not blindly to the head of
//     the queue — so an aggressive batch client cannot starve everyone
//     else's interactive traffic.
//
//   - Background tier. Sweep-job cells acquire with background=true: they
//     are exempt from the queue bound (a sweep's own concurrency is
//     already bounded, and shedding its cells would only force a retry
//     loop) but are granted slots only when no eligible interactive
//     waiter exists. Interactive requests always cut ahead of sweeps.
//
// Cache hits never pass through the limiter: serving bytes from the result
// LRU is as cheap as the 429 would be.
type limiter struct {
	maxConc   int
	clientCap int
	maxQueue  int

	mu        sync.Mutex
	runningN  int
	held      map[string]int // client key -> held slots
	waiters   []*slotWaiter  // interactive FIFO
	bgWaiters []*slotWaiter  // background FIFO, granted after interactive

	drainOnce sync.Once
	draining  chan struct{} // closed once Drain is called
}

// slotWaiter is one queued acquire. A grant transfers the slot to the
// waiter under the limiter lock and closes ready; if the waiter gave up in
// the same instant (context cancelled, drain), it returns the slot.
type slotWaiter struct {
	client  string
	ready   chan struct{}
	granted bool
}

// newLimiter builds a limiter. clientCap <= 0 picks maxConcurrent-1 (so a
// single client always leaves one slot for everyone else), floored at 1.
func newLimiter(maxConcurrent, maxQueue, clientCap int) *limiter {
	if clientCap <= 0 {
		clientCap = maxConcurrent - 1
	}
	if clientCap < 1 {
		clientCap = 1
	}
	if clientCap > maxConcurrent {
		clientCap = maxConcurrent
	}
	return &limiter{
		maxConc:   maxConcurrent,
		clientCap: clientCap,
		maxQueue:  maxQueue,
		held:      map[string]int{},
		draining:  make(chan struct{}),
	}
}

// acquire claims an execution slot for client, queueing until one is
// available (bounded by maxQueue unless background). On admitted, release
// must be called exactly once; on any other outcome release is nil.
func (l *limiter) acquire(ctx context.Context, client string, background bool) (admission, func()) {
	select {
	case <-l.draining:
		return admissionDraining, nil
	default:
	}

	l.mu.Lock()
	if l.runningN < l.maxConc && l.held[client] < l.clientCap {
		l.runningN++
		l.held[client]++
		l.mu.Unlock()
		return admitted, func() { l.release(client) }
	}
	if !background && len(l.waiters) >= l.maxQueue {
		l.mu.Unlock()
		return admissionShed, nil
	}
	w := &slotWaiter{client: client, ready: make(chan struct{})}
	if background {
		l.bgWaiters = append(l.bgWaiters, w)
	} else {
		l.waiters = append(l.waiters, w)
	}
	l.mu.Unlock()

	select {
	case <-w.ready:
		return admitted, func() { l.release(client) }
	case <-ctx.Done():
		if l.abandon(w, background) {
			return admitted, func() { l.release(client) }
		}
		return admissionCancelled, nil
	case <-l.draining:
		if l.abandon(w, background) {
			return admitted, func() { l.release(client) }
		}
		return admissionDraining, nil
	}
}

// abandon removes a waiter that stopped waiting. It reports true when the
// waiter was granted a slot in the same instant — the select raced — in
// which case the caller owns the slot after all.
func (l *limiter) abandon(w *slotWaiter, background bool) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w.granted {
		return true
	}
	q := &l.waiters
	if background {
		q = &l.bgWaiters
	}
	for i, cand := range *q {
		if cand == w {
			*q = append((*q)[:i], (*q)[i+1:]...)
			break
		}
	}
	return false
}

// release frees client's slot and hands it to the first eligible waiter:
// interactive before background, skipping waiters whose client is at its
// cap. The hand-off happens under the lock, so the slot never transits
// through a state where a newcomer could barge past the queue.
func (l *limiter) release(client string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.runningN--
	if l.held[client] > 1 {
		l.held[client]--
	} else {
		delete(l.held, client)
	}
	l.grantLocked()
}

func (l *limiter) grantLocked() {
	if l.runningN >= l.maxConc {
		return
	}
	for _, q := range []*[]*slotWaiter{&l.waiters, &l.bgWaiters} {
		for i, w := range *q {
			if l.held[w.client] >= l.clientCap {
				continue
			}
			*q = append((*q)[:i], (*q)[i+1:]...)
			l.runningN++
			l.held[w.client]++
			w.granted = true
			close(w.ready)
			return
		}
	}
}

// queued returns the current number of interactive waiters.
func (l *limiter) queued() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.waiters)
}

// queuedBackground returns the current number of background (sweep-cell)
// waiters.
func (l *limiter) queuedBackground() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.bgWaiters)
}

// running returns the number of held execution slots.
func (l *limiter) running() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.runningN
}

// capacity returns the execution-slot count.
func (l *limiter) capacity() int { return l.maxConc }

// drain stops admitting new work: queued waiters are released with
// admissionDraining, future acquires fail fast, and already-running
// evaluations finish normally (http.Server.Shutdown waits for their
// handlers). Safe to call more than once.
func (l *limiter) drain() {
	l.drainOnce.Do(func() { close(l.draining) })
}
