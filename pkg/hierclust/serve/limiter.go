package serve

import (
	"context"
	"sync"
)

// admission is the outcome of limiter.acquire.
type admission int

const (
	// admitted: a slot is held; the caller must invoke the release func.
	admitted admission = iota
	// admissionShed: the wait queue is full — load-shed with 429.
	admissionShed
	// admissionDraining: the server is shutting down — reject with 503.
	admissionDraining
	// admissionCancelled: the request context ended while queued.
	admissionCancelled
)

// limiter is the admission controller for expensive evaluations: at most
// maxConcurrent pipeline runs execute at once, at most maxQueue more wait
// for a slot, and everything beyond that is shed immediately — queueing
// unboundedly under overload would trade a fast 429 (which a client can
// back off from) for unbounded latency on every request (which it cannot).
// This is the load-shedding / graceful-degradation shape of the HPC
// resilience pattern literature applied to the evaluation service itself.
//
// Cache hits never pass through the limiter: serving bytes from the result
// LRU is as cheap as the 429 would be.
type limiter struct {
	sem      chan struct{} // buffered to maxConcurrent; holding a token = running
	maxQueue int

	mu      sync.Mutex
	waiting int

	drainOnce sync.Once
	draining  chan struct{} // closed once Drain is called
}

func newLimiter(maxConcurrent, maxQueue int) *limiter {
	return &limiter{
		sem:      make(chan struct{}, maxConcurrent),
		maxQueue: maxQueue,
		draining: make(chan struct{}),
	}
}

// acquire claims an execution slot, queueing up to the wait bound. On
// admitted, release must be called exactly once; on any other outcome
// release is nil.
func (l *limiter) acquire(ctx context.Context) (admission, func()) {
	select {
	case <-l.draining:
		return admissionDraining, nil
	default:
	}
	// Fast path: a free slot, no queueing.
	select {
	case l.sem <- struct{}{}:
		return admitted, l.release
	default:
	}
	l.mu.Lock()
	if l.waiting >= l.maxQueue {
		l.mu.Unlock()
		return admissionShed, nil
	}
	l.waiting++
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		l.waiting--
		l.mu.Unlock()
	}()
	select {
	case l.sem <- struct{}{}:
		return admitted, l.release
	case <-ctx.Done():
		return admissionCancelled, nil
	case <-l.draining:
		return admissionDraining, nil
	}
}

func (l *limiter) release() { <-l.sem }

// queued returns the current number of waiters.
func (l *limiter) queued() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waiting
}

// running returns the number of held execution slots.
func (l *limiter) running() int { return len(l.sem) }

// drain stops admitting new work: queued waiters are released with
// admissionDraining, future acquires fail fast, and already-running
// evaluations finish normally (http.Server.Shutdown waits for their
// handlers). Safe to call more than once.
func (l *limiter) drain() {
	l.drainOnce.Do(func() { close(l.draining) })
}
