package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hierclust/pkg/hierclust"
)

// batchScenario renders a small synthetic scenario document.
func batchScenario(name, kind string, size int) string {
	spec := fmt.Sprintf(`{"kind":%q}`, kind)
	if size > 0 {
		spec = fmt.Sprintf(`{"kind":%q,"size":%d}`, kind, size)
	}
	return fmt.Sprintf(`{
		"name": %q,
		"machine": {"nodes": 16},
		"placement": {"ranks": 64, "procs_per_node": 4},
		"trace": {"source": "synthetic", "iterations": 10},
		"strategies": [%s]
	}`, name, spec)
}

// postBatch posts an NDJSON batch and decodes every line.
func postBatch(t *testing.T, url, body string) (*http.Response, []BatchLine) {
	t.Helper()
	resp, err := http.Post(url+"/v1/evaluate-batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch status = %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("batch content type = %q", ct)
	}
	var lines []BatchLine
	scan := bufio.NewScanner(resp.Body)
	scan.Buffer(make([]byte, 1<<20), 1<<20)
	for scan.Scan() {
		var l BatchLine
		if err := json.Unmarshal(scan.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scan.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

// TestBatchOrderingAndPartialFailure pins the core batch contract: one
// line per element, in input order, independent failure — a malformed
// element and an unbuildable element fail with the status the single
// endpoint would give, without touching their neighbors.
func TestBatchOrderingAndPartialFailure(t *testing.T) {
	_, ts := newTestServer(t)
	batch := "[" + strings.Join([]string{
		batchScenario("b-0", "naive", 8),
		// Valid JSON at the array level, but not a scenario (unknown field).
		`{"name":"b-1","machne":{}}`,
		batchScenario("b-2", "hierarchical", 0),
		// Validates but cannot build: too many ranks for the machine.
		`{"name":"b-3","machine":{"model":"tsubame2"},"placement":{"ranks":99999,"procs_per_node":4},"trace":{"source":"synthetic"},"strategies":[{"kind":"hierarchical"}]}`,
		batchScenario("b-4", "size-guided", 8),
	}, ",") + "]"
	resp, lines := postBatch(t, ts.URL, batch)

	if got := resp.Header.Get("X-Hierclust-Batch-Count"); got != "5" {
		t.Fatalf("batch count header = %q, want 5", got)
	}
	if len(lines) != 5 {
		t.Fatalf("%d NDJSON lines, want 5", len(lines))
	}
	wantStatus := []int{200, 400, 200, 422, 200}
	for i, l := range lines {
		if l.Index != i {
			t.Fatalf("line %d has index %d — output not in input order", i, l.Index)
		}
		if l.Status != wantStatus[i] {
			t.Fatalf("line %d status = %d (%s), want %d", i, l.Status, l.Error, wantStatus[i])
		}
		if l.Status == 200 {
			if l.Error != "" || len(l.Result) == 0 {
				t.Fatalf("line %d: 200 with error=%q result=%d bytes", i, l.Error, len(l.Result))
			}
			var res hierclust.Result
			if err := json.Unmarshal(l.Result, &res); err != nil {
				t.Fatalf("line %d result does not decode: %v", i, err)
			}
			if want := fmt.Sprintf("b-%d", i); res.Scenario != want {
				t.Fatalf("line %d result is scenario %q, want %q", i, res.Scenario, want)
			}
		} else if l.Error == "" || len(l.Result) != 0 {
			t.Fatalf("line %d: status %d with error=%q result=%d bytes", i, l.Status, l.Error, len(l.Result))
		}
	}
}

// TestBatchSharesResultCache re-POSTs an already-evaluated scenario inside
// a batch: the element must be answered from the result LRU.
func TestBatchSharesResultCache(t *testing.T) {
	_, ts := newTestServer(t)
	one := batchScenario("shared", "naive", 8)
	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(one))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, lines := postBatch(t, ts.URL, "["+one+"]")
	if len(lines) != 1 || lines[0].Cache != "hit" {
		t.Fatalf("batch element after single POST: %+v, want cache hit", lines)
	}

	// And the reverse: a batch miss populates the cache for the single
	// endpoint.
	two := batchScenario("shared-2", "size-guided", 8)
	_, lines = postBatch(t, ts.URL, "["+two+"]")
	if len(lines) != 1 || lines[0].Cache != "miss" {
		t.Fatalf("fresh batch element: %+v, want cache miss", lines)
	}
	resp2, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(two))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if got := resp2.Header.Get("X-Hierclust-Cache"); got != "hit" {
		t.Fatalf("single POST after batch = %q, want hit", got)
	}
}

func TestBatchRejectsBadBodies(t *testing.T) {
	s := New(Options{CacheSize: 4, MaxBatchScenarios: 2})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not an array", `{"name":"x"}`, http.StatusBadRequest},
		{"malformed array", `[{"name":`, http.StatusBadRequest},
		{"empty batch", `[]`, http.StatusBadRequest},
		{"over element bound", "[" + strings.Join([]string{
			batchScenario("a", "naive", 8), batchScenario("b", "naive", 8), batchScenario("c", "naive", 8),
		}, ",") + "]", http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/evaluate-batch", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// TestBatchStreamsBeforeCompletion pins the streaming shape: with element 0
// instantly servable from the result cache and element 1 blocked on the
// limiter, line 0 must arrive while line 1 is still pending.
func TestBatchStreamsBeforeCompletion(t *testing.T) {
	s := New(Options{CacheSize: 8, MaxConcurrent: 1, QueueDepth: 4})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	cached := batchScenario("streamed", "naive", 8)
	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(cached))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Occupy the only evaluation slot so the second element queues.
	adm, release := s.lim.acquire(context.Background(), "batch-test", false)
	if adm != admitted {
		t.Fatal("could not occupy the evaluation slot")
	}

	bresp, err := http.Post(ts.URL+"/v1/evaluate-batch", "application/json",
		strings.NewReader("["+cached+","+batchScenario("streamed-2", "hierarchical", 0)+"]"))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()

	reader := bufio.NewReader(bresp.Body)
	type lineOrErr struct {
		line string
		err  error
	}
	first := make(chan lineOrErr, 1)
	go func() {
		l, err := reader.ReadString('\n')
		first <- lineOrErr{l, err}
	}()
	select {
	case lo := <-first:
		if lo.err != nil {
			t.Fatalf("reading first line: %v", lo.err)
		}
		var l BatchLine
		if err := json.Unmarshal([]byte(lo.line), &l); err != nil {
			t.Fatal(err)
		}
		if l.Index != 0 || l.Cache != "hit" {
			t.Fatalf("first streamed line = %+v, want index 0 cache hit", l)
		}
	case <-time.After(5 * time.Second):
		release()
		t.Fatal("first line did not stream while the second element was blocked")
	}

	release()
	rest, err := io.ReadAll(reader)
	if err != nil {
		t.Fatal(err)
	}
	var l BatchLine
	if err := json.Unmarshal(rest, &l); err != nil {
		t.Fatalf("second line %q: %v", rest, err)
	}
	if l.Index != 1 || l.Status != 200 {
		t.Fatalf("second line = %+v", l)
	}
}
