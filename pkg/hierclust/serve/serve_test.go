package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hierclust/pkg/hierclust"
)

const testScenario = `{
	"name": "serve-test",
	"machine": {"nodes": 16},
	"placement": {"ranks": 64, "procs_per_node": 4},
	"trace": {"source": "synthetic", "iterations": 10},
	"strategies": [{"kind": "naive", "size": 8}, {"kind": "hierarchical"}]
}`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{CacheSize: 4})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestEvaluateEndpoint(t *testing.T) {
	s, ts := newTestServer(t)

	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(testScenario))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Hierclust-Cache"); got != "miss" {
		t.Fatalf("first request cache header = %q, want miss", got)
	}
	var res hierclust.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "serve-test" || len(res.Evaluations) != 2 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.Evaluations[0].Strategy != "naive-8" {
		t.Fatalf("first evaluation = %q, want naive-8", res.Evaluations[0].Strategy)
	}

	// Identical scenario → cache hit with identical bytes.
	resp2, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(testScenario))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if got := resp2.Header.Get("X-Hierclust-Cache"); got != "hit" {
		t.Fatalf("second request cache header = %q, want hit", got)
	}
	hits, misses, size := s.CacheStats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("cache stats = %d hits / %d misses / %d entries, want 1/1/1", hits, misses, size)
	}
}

func TestEvaluateRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", "{nope", http.StatusBadRequest},
		{"unknown field", `{"name":"x","machne":{}}`, http.StatusBadRequest},
		{"no strategies", `{"name":"x","machine":{"nodes":4},"placement":{"ranks":16,"procs_per_node":4},"trace":{"source":"synthetic"},"strategies":[]}`, http.StatusBadRequest},
		{"file source over HTTP", `{"name":"x","machine":{"nodes":4},"placement":{"ranks":16,"procs_per_node":4},"trace":{"source":"file","path":"/etc/passwd"},"strategies":[{"kind":"hierarchical"}]}`, http.StatusBadRequest},
		// Validates but cannot build: 1024 ranks at 4/node exceed 4 nodes.
		{"unbuildable placement", `{"name":"x","machine":{"model":"tsubame2"},"placement":{"ranks":99999,"procs_per_node":4},"trace":{"source":"synthetic"},"strategies":[{"kind":"hierarchical"}]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("error body missing: %v (%v)", e, err)
			}
		})
	}
}

func TestScenariosAndHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var scenarios []hierclust.Scenario
	if err := json.NewDecoder(resp.Body).Decode(&scenarios); err != nil {
		t.Fatal(err)
	}
	if len(scenarios) == 0 {
		t.Fatal("no built-in scenarios listed")
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", hresp.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz body: %v (%v)", h, err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("3")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite refresh")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// Capacity 0 disables caching entirely.
	off := newLRU(0)
	off.Put("a", []byte("1"))
	if _, ok := off.Get("a"); ok {
		t.Fatal("disabled cache returned a value")
	}
}
