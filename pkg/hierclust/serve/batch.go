package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
)

// POST /v1/evaluate-batch accepts a JSON array of scenario documents and
// streams one NDJSON line per element, in input order, as each completes —
// line i is written the moment elements 0..i are all done, so a client
// reading the stream sees results appear while later elements are still
// evaluating. Elements are independent: a malformed or failing element
// produces an error line (with the status the single endpoint would have
// answered) and the rest of the batch proceeds — partial failure is a
// per-line fact, not a request-level one.

// BatchLine is one NDJSON line of a /v1/evaluate-batch response.
type BatchLine struct {
	// Index is the element's position in the request array.
	Index int `json:"index"`
	// Status is the HTTP status this element would have received from
	// POST /v1/evaluate (200, 400, 422, 429, 499, 500 recovered panic,
	// 503, 504 server deadline exceeded).
	Status int `json:"status"`
	// Cache reports which cache level answered a successful element:
	// "hit", "trace-hit", or "miss" — the X-Hierclust-Cache values.
	Cache string `json:"cache,omitempty"`
	// Result is the evaluation document for Status 200.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the failure message for non-200 statuses.
	Error string `json:"error,omitempty"`
}

func (s *Server) handleEvaluateBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBatchBody))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, fmt.Errorf("reading body: %w", err))
		return
	}
	var raws []json.RawMessage
	if err := json.Unmarshal(body, &raws); err != nil {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("hierclust: batch body must be a JSON array of scenarios: %w", err))
		return
	}
	if len(raws) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("hierclust: empty batch"))
		return
	}
	if len(raws) > s.maxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("hierclust: batch of %d scenarios exceeds the %d-element bound", len(raws), s.maxBatch))
		return
	}
	s.batchTotal.Add(uint64(len(raws)))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Hierclust-Batch-Count", fmt.Sprint(len(raws)))
	w.WriteHeader(http.StatusOK)

	// Elements evaluate concurrently on a bounded pool; per-element
	// admission (result cache, limiter, 429 lines) happens inside
	// evaluateElement, so one batch competes for slots with every other
	// request rather than owning the server.
	lines := make([]BatchLine, len(raws))
	done := make([]chan struct{}, len(raws))
	idx := make(chan int, len(raws))
	for i := range raws {
		done[i] = make(chan struct{})
		idx <- i
	}
	close(idx)
	workers := s.lim.capacity()
	if workers > len(raws) {
		workers = len(raws)
	}
	for wkr := 0; wkr < workers; wkr++ {
		go func() {
			for i := range idx {
				lines[i] = s.evaluateElement(r, i, raws[i])
				close(done[i])
			}
		}()
	}

	// Stream strictly in input order, flushing per line so clients see
	// progress; a vanished client cancels r.Context(), which unblocks
	// queued elements and stops the writes.
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i := range lines {
		select {
		case <-done[i]:
		case <-r.Context().Done():
			return
		}
		if err := enc.Encode(&lines[i]); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// evaluateElement runs one batch element through decode → cache →
// admission → pipeline and renders its line. It is a panic isolation
// boundary: a panicking element becomes its own 500 line and the rest of
// the batch proceeds (the worker goroutine must survive to drain the
// remaining indices).
func (s *Server) evaluateElement(r *http.Request, i int, raw json.RawMessage) (line BatchLine) {
	defer func() {
		if v := recover(); v != nil {
			id := s.reportPanic(v, debug.Stack())
			line = BatchLine{Index: i, Status: http.StatusInternalServerError, Error: incidentErr(id).Error()}
		}
	}()
	sc, status, err := decodeScenario(raw)
	if err != nil {
		return BatchLine{Index: i, Status: status, Error: err.Error()}
	}
	doc, cacheState, status, err := s.evaluate(r, sc)
	if err != nil {
		return BatchLine{Index: i, Status: status, Error: err.Error()}
	}
	return BatchLine{Index: i, Status: http.StatusOK, Cache: cacheState, Result: doc}
}
