package serve

import (
	"testing"

	"hierclust/internal/leakcheck"
)

// TestMain asserts the suite — including the chaos tests that panic
// workers, time out evaluations, and drain mid-fault — leaks no
// goroutines.
func TestMain(m *testing.M) { leakcheck.Main(m) }
